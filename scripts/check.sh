#!/usr/bin/env bash
# Full verification: build + tests + the perf benchmark (which also
# cross-checks incremental vs full engine outcomes and refreshes
# BENCH_1.json).
set -euo pipefail
cd "$(dirname "$0")/.."
dune build @runtest
dune exec bench/main.exe -- perf
