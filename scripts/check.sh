#!/usr/bin/env bash
# Full verification: build + tests + the perf benchmark (which also
# cross-checks incremental vs full engine outcomes and refreshes
# BENCH_1.json), plus an observability smoke test, a guard on the
# no-sink instrumentation overhead, a kernel no-regression gate vs the
# committed BENCH_1.json, the propagation tightness table (BENCH_9.json,
# with an optimal-dominance gate and a plumbing-overhead guard), the
# hybrid backend table (BENCH_10.json, with pure-agreement/DES-dominance
# gates and a pay-for-use guard on the pure-CPA path), the
# kernel A/B + pool scaling benchmark
# (BENCH_6.json), the exploration checks (jobs-determinism byte diff +
# BENCH_3.json scaling sanity), the self-verification smoke
# (sanitizer + differential oracles on the paper system and a fixed-seed
# fuzz batch), and a serve-daemon smoke (warm session round over a Unix
# socket + clean SIGTERM drain).
set -euo pipefail
cd "$(dirname "$0")/.."
# Hard wall-clock ceiling: a hung fixed point or deadlocked pool must
# fail the check, not stall it (tune with CHECK_TIMEOUT_S).
timeout "${CHECK_TIMEOUT_S:-900}" dune build @runtest

# --- trace smoke test -------------------------------------------------
# An analyse run with --trace must produce a valid Chrome trace with
# balanced span begin/end events and one span per global iteration.
trace=$(mktemp /tmp/hem_trace.XXXXXX.json)
dune exec bin/hem_tool.exe -- analyse --trace "$trace" > /dev/null
jq -e '.traceEvents | length > 0' "$trace" > /dev/null
b=$(jq '[.traceEvents[] | select(.ph=="B")] | length' "$trace")
e=$(jq '[.traceEvents[] | select(.ph=="E")] | length' "$trace")
iters=$(jq '[.traceEvents[] | select(.ph=="B" and .name=="engine.iteration")] | length' "$trace")
if [ "$b" != "$e" ]; then
  echo "check: unbalanced trace spans ($b begin, $e end)" >&2
  exit 1
fi
if [ "$iters" -lt 1 ]; then
  echo "check: no engine.iteration span in trace" >&2
  exit 1
fi
rm -f "$trace"
echo "check: trace smoke test ok ($b spans, $iters iteration spans)"

# --- metrics snapshot smoke test --------------------------------------
# analyse --metrics must emit a JSON snapshot with the counter/gauge/
# histogram sections and populated iteration-latency percentiles.
metrics=$(mktemp /tmp/hem_metrics.XXXXXX.json)
dune exec bin/hem_tool.exe -- analyse --metrics "$metrics" > /dev/null
jq -e 'has("counters") and has("gauges") and has("histograms")' "$metrics" > /dev/null \
  || { echo "check: metrics snapshot missing top-level sections" >&2; exit 1; }
jq -e '.histograms["engine.iteration_ns"] | .count >= 1 and .p50 > 0 and .p99 >= .p50 and .max >= .p99' "$metrics" > /dev/null \
  || { echo "check: engine.iteration_ns histogram missing or inconsistent" >&2; exit 1; }
jq -e '.counters["busy_window.windows"] >= 1' "$metrics" > /dev/null \
  || { echo "check: busy_window.windows counter missing from snapshot" >&2; exit 1; }
rm -f "$metrics"
echo "check: metrics snapshot smoke ok"

# --- profiler smoke test ----------------------------------------------
# hem_tool profile must produce a collapsed-stack file with integer
# self-times whose leaves are rooted in the synthetic "analysis" span.
flame=$(mktemp /tmp/hem_flame.XXXXXX.txt)
dune exec bin/hem_tool.exe -- profile examples/paper.spec --flame "$flame" > /dev/null
if ! [ -s "$flame" ]; then
  echo "check: profile wrote an empty flamegraph file" >&2
  exit 1
fi
if grep -qvE '^.+ [0-9]+$' "$flame"; then
  echo "check: malformed collapsed-stack line in $flame" >&2
  grep -vE '^.+ [0-9]+$' "$flame" >&2
  exit 1
fi
if ! grep -q '^analysis' "$flame"; then
  echo "check: no analysis-rooted stack in flamegraph output" >&2
  exit 1
fi
rm -f "$flame"
echo "check: profile smoke ok (collapsed stacks well-formed)"

# --- convergence CSV byte-stability -----------------------------------
# The machine-readable convergence format carries analysis data only
# (no timing), so two runs must be byte-identical.
c1=$(mktemp) c2=$(mktemp)
dune exec bin/hem_tool.exe -- convergence --format csv > "$c1"
dune exec bin/hem_tool.exe -- convergence --format csv > "$c2"
if ! cmp -s "$c1" "$c2"; then
  echo "check: convergence --format csv is not byte-stable across runs" >&2
  diff "$c1" "$c2" >&2 || true
  exit 1
fi
rm -f "$c1" "$c2"
echo "check: convergence csv byte-stable"

# --- resilience smoke test --------------------------------------------
# A tiny deadline must degrade gracefully — widened-but-sound bounds,
# exit code 3 — and must never hang; an exhausted verify budget must
# stop with the same code after its completed prefix.
code=0
timeout 30 dune exec bin/hem_tool.exe -- analyse --deadline 0 \
  > /dev/null 2>&1 || code=$?
if [ "$code" != 3 ]; then
  echo "check: analyse --deadline 0 exited $code, expected 3 (degraded)" >&2
  exit 1
fi
code=0
timeout 30 dune exec bin/hem_tool.exe -- verify --budget 1 \
  > /dev/null 2>&1 || code=$?
if [ "$code" != 3 ]; then
  echo "check: verify --budget 1 exited $code, expected 3 (degraded)" >&2
  exit 1
fi
echo "check: resilience smoke ok (deadline and budget degrade with exit 3)"

# --- perf + no-sink overhead guard ------------------------------------
# The perf run rewrites BENCH_1.json; keep the previous numbers and make
# sure the instrumented-but-unsinked hot path has not regressed.  The
# default tolerance absorbs container timing noise — tighten with
# PERF_TOL_PCT=5 on a quiet machine, or skip with PERF_GUARD=0.
baseline=$(mktemp)
cp BENCH_1.json "$baseline"
dune exec bench/main.exe -- perf
if [ "${PERF_GUARD:-1}" = 1 ]; then
  tol="${PERF_TOL_PCT:-25}"
  old=$(jq '[.cases[].incremental_ms] | add' "$baseline")
  new=$(jq '[.cases[].incremental_ms] | add' BENCH_1.json)
  if ! awk -v old="$old" -v new="$new" -v tol="$tol" 'BEGIN {
    limit = old * (1 + tol / 100.0);
    printf "check: no-sink perf %.3f ms vs baseline %.3f ms (limit %.3f ms)\n",
      new, old, limit;
    exit !(new <= limit)
  }'; then
    echo "check: instrumentation overhead exceeds ${tol}% budget" >&2
    exit 1
  fi
fi
# --- kernel no-regression gate ----------------------------------------
# The committed BENCH_1.json numbers were produced with the batched
# curve kernels enabled; a fresh perf run must not fall more than
# KERNEL_TOL_PCT behind them on the kernel-heavy cases.  This catches a
# silently disabled or regressed kernel path (tolerance absorbs timing
# noise; skip with KERNEL_GUARD=0 on a very noisy machine).
if [ "${KERNEL_GUARD:-1}" = 1 ]; then
  ktol="${KERNEL_TOL_PCT:-10}"
  for case_name in chain_16 paper_flat_sem; do
    old=$(jq --arg n "$case_name" '[.cases[] | select(.name == $n)][0].full_ms' "$baseline")
    new=$(jq --arg n "$case_name" '[.cases[] | select(.name == $n)][0].full_ms' BENCH_1.json)
    if ! awk -v old="$old" -v new="$new" -v tol="$ktol" -v name="$case_name" 'BEGIN {
      limit = old * (1 + tol / 100.0);
      printf "check: kernel case %s %.3f ms vs baseline %.3f ms (limit %.3f ms)\n",
        name, new, old, limit;
      exit !(new <= limit)
    }'; then
      echo "check: kernel case ${case_name} regressed more than ${ktol}% vs committed BENCH_1.json" >&2
      exit 1
    fi
  done
fi
rm -f "$baseline"

# --- propagation tightness table (BENCH_9.json) -----------------------
# Refreshes BENCH_9.json.  The bench itself exits non-zero when the
# optimal propagation mode is looser than any single mode anywhere or
# never strictly tighter than the default theta-tau; here we re-assert
# the headline claims from the file, check every mode is accepted on
# the CLI, and — with the fresh BENCH_1.json still on disk from the
# perf run above — require the bench's kernel-path timings to sit
# within PROP_KERNEL_TOL_PCT of the same cases measured by perf (the
# propagation plumbing must not tax the default analysis path; skip
# with PROP_GUARD=0 on a noisy machine).
dune exec bench/main.exe -- propagation
jq -e '.strict_win_systems | length >= 1' BENCH_9.json > /dev/null \
  || { echo "check: optimal never strictly tighter than theta_tau" >&2; exit 1; }
jq -e '[.systems[].optimal_pointwise_le] | all' BENCH_9.json > /dev/null \
  || { echo "check: optimal looser than a single mode somewhere" >&2; exit 1; }
jq -e '[.systems[].elements[] | select(.optimal != null and .theta_tau != null)
        | .optimal <= .theta_tau] | all' BENCH_9.json > /dev/null \
  || { echo "check: per-element optimal vs theta_tau comparison failed" >&2; exit 1; }
for pmode in theta_tau jitter jitter_offset jitter_bmin busy_window optimal; do
  dune exec bin/hem_tool.exe -- analyse --propagation "$pmode" > /dev/null \
    || { echo "check: analyse --propagation $pmode failed" >&2; exit 1; }
done
if [ "${PROP_GUARD:-1}" = 1 ]; then
  ptol="${PROP_KERNEL_TOL_PCT:-10}"
  for case_name in chain_16 paper_flat_sem; do
    old=$(jq --arg n "$case_name" '[.cases[] | select(.name == $n)][0].full_ms' BENCH_1.json)
    new=$(jq --arg n "$case_name" '[.kernel[] | select(.name == $n)][0].full_ms' BENCH_9.json)
    if ! awk -v old="$old" -v new="$new" -v tol="$ptol" -v name="$case_name" 'BEGIN {
      limit = old * (1 + tol / 100.0);
      printf "check: propagation kernel case %s %.3f ms vs perf %.3f ms (limit %.3f ms)\n",
        name, new, old, limit;
      exit !(new <= limit)
    }'; then
      echo "check: propagation plumbing slows ${case_name} more than ${ptol}% vs perf run" >&2
      exit 1
    fi
  done
fi
echo "check: propagation tightness ok (strict wins: $(jq -cr '.strict_win_systems | join(", ")' BENCH_9.json))"

# --- hybrid backend table (BENCH_10.json) -----------------------------
# Refreshes BENCH_10.json.  The bench itself hard-fails when pure-RTC
# and pure-CPA bounds differ on the paper point system or any backend's
# bounds fall below DES observations; here we re-assert those claims
# from the file, require the paper system to stay fully bounded under
# the mixed backend, smoke the --backend flag and the (backend rtc)
# spec syntax end to end, and — with the fresh BENCH_1.json still on
# disk — require the pure-CPA kernel timings within HYBRID_KERNEL_TOL_PCT
# of the perf run (the conversion layer must be pay-for-use; skip with
# HYBRID_GUARD=0 on a noisy machine).
dune exec bench/main.exe -- hybrid
jq -e '.paper_pure_agreement == true' BENCH_10.json > /dev/null \
  || { echo "check: rtc and cpa bounds differ on the paper system" >&2; exit 1; }
jq -e '[.paper_dominance[]] | all' BENCH_10.json > /dev/null \
  || { echo "check: a backend's bounds fall below DES observations" >&2; exit 1; }
jq -e '[.systems[] | select(.name == "paper") | .backends[]
        | .bounded == .elements and .status == "converged"] | all' BENCH_10.json > /dev/null \
  || { echo "check: paper system not fully bounded under every backend" >&2; exit 1; }
for b in spec cpa rtc; do
  dune exec bin/hem_tool.exe -- analyse --backend "$b" > /dev/null \
    || { echo "check: analyse --backend $b failed" >&2; exit 1; }
done
dune exec bin/hem_tool.exe -- analyse --file examples/hybrid.spec > /dev/null \
  || { echo "check: mixed-backend spec file failed to analyse" >&2; exit 1; }
dune exec bin/hem_tool.exe -- verify --file examples/hybrid.spec > /dev/null \
  || { echo "check: mixed-backend spec file failed verification" >&2; exit 1; }
if [ "${HYBRID_GUARD:-1}" = 1 ]; then
  htol="${HYBRID_KERNEL_TOL_PCT:-10}"
  for case_name in chain_16 paper_flat_sem; do
    old=$(jq --arg n "$case_name" '[.cases[] | select(.name == $n)][0].full_ms' BENCH_1.json)
    new=$(jq --arg n "$case_name" '[.kernel[] | select(.name == $n)][0].full_ms' BENCH_10.json)
    if ! awk -v old="$old" -v new="$new" -v tol="$htol" -v name="$case_name" 'BEGIN {
      limit = old * (1 + tol / 100.0);
      printf "check: hybrid kernel case %s %.3f ms vs perf %.3f ms (limit %.3f ms)\n",
        name, new, old, limit;
      exit !(new <= limit)
    }'; then
      echo "check: backend plumbing slows ${case_name} more than ${htol}% vs perf run" >&2
      exit 1
    fi
  done
fi
echo "check: hybrid backends ok (pure agreement + DES dominance on paper, mixed spec analyses + verifies)"

# --- kernel A/B + pool scaling (BENCH_6.json) -------------------------
# Refreshes BENCH_6.json.  The bench itself asserts scalar and batched
# outcomes identical, allocation-free packed fast paths, and
# byte-identical sweep rows across jobs counts; here we check the
# headline claims: serial kernel speedup, the periodic-eval reduction,
# and that requesting more jobs than cores never costs (the pool clamps
# to the machine).
dune exec bench/main.exe -- scale
jq -e '[.kernels[] | select(.name == "chain_16")][0].speedup >= 2' BENCH_6.json > /dev/null \
  || { echo "check: chain_16 kernel speedup below 2x" >&2; exit 1; }
jq -e '[.kernels[] | select(.name == "paper_flat_sem")][0].periodic_eval_reduction >= 5' BENCH_6.json > /dev/null \
  || { echo "check: paper_flat_sem periodic-eval reduction below 5x" >&2; exit 1; }
jq -e '.pool.rows_identical == true' BENCH_6.json > /dev/null
jq -e '.allocation_bytes_per_call.eval_packed <= 1 and .allocation_bytes_per_call.count_lt_packed <= 1' BENCH_6.json > /dev/null \
  || { echo "check: packed periodic fast path allocates" >&2; exit 1; }
if ! jq -e '[.pool.runs[] | select(.jobs == 4)][0].speedup_vs_jobs1 >= 0.95' BENCH_6.json > /dev/null; then
  echo "check: pool at jobs=4 costs more than 5% vs jobs=1" >&2
  exit 1
fi
cores6=$(jq '.pool.cores' BENCH_6.json)
if [ "$cores6" -ge 2 ]; then
  if ! jq -e '[.pool.runs[] | select(.jobs == 2)][0].speedup_vs_jobs1 > 1' BENCH_6.json > /dev/null; then
    echo "check: no pool speedup at 2 domains on a ${cores6}-core machine" >&2
    exit 1
  fi
fi
echo "check: kernel scale ok (chain_16 $(jq '[.kernels[] | select(.name == "chain_16")][0].speedup' BENCH_6.json)x serial, $(jq '[.kernels[] | select(.name == "paper_flat_sem")][0].periodic_eval_reduction' BENCH_6.json)x fewer periodic evals, pool clamped to ${cores6} core(s))"

# --- exploration: determinism guard -----------------------------------
# The deterministic stdout of sweep/explore must be byte-identical at
# any job count (timing telemetry goes to stderr and is ignored here).
j1=$(mktemp) j4=$(mktemp)
dune exec bin/hem_tool.exe -- sweep --period S3=400..1500:100 \
  --cet-scale T3=90..114:2 --jobs 1 2> /dev/null > "$j1"
dune exec bin/hem_tool.exe -- sweep --period S3=400..1500:100 \
  --cet-scale T3=90..114:2 --jobs 4 2> /dev/null > "$j4"
if ! cmp -s "$j1" "$j4"; then
  echo "check: sweep output differs between --jobs 1 and --jobs 4" >&2
  diff "$j1" "$j4" >&2 || true
  exit 1
fi
variants=$(grep -c '^' "$j1")
rm -f "$j1" "$j4"
e1=$(mktemp) e4=$(mktemp)
dune exec bin/hem_tool.exe -- explore --jobs 1 2> /dev/null > "$e1"
dune exec bin/hem_tool.exe -- explore --jobs 4 2> /dev/null > "$e4"
if ! cmp -s "$e1" "$e4"; then
  echo "check: explore output differs between --jobs 1 and --jobs 4" >&2
  diff "$e1" "$e4" >&2 || true
  exit 1
fi
rm -f "$e1" "$e4"
echo "check: exploration determinism ok (sweep ${variants} lines + layout enumeration byte-identical at jobs 1 vs 4)"

# --- exploration: BENCH_3.json scaling sanity -------------------------
# Refreshes BENCH_3.json.  The bench itself asserts rows are identical
# across job counts; here we check the dedup structure and — only when
# the machine actually has 4 cores to spend — the scaling claim (>= 2x
# at 4 domains; with fewer cores the pool clamps the request, recorded
# per run as effective_jobs, and no 2x can materialise).
dune exec bench/main.exe -- explore
jq -e '.rows_identical == true' BENCH_3.json > /dev/null
jq -e '.variants >= 200 and .cache_hits > 0 and (.variants == .unique + .cache_hits)' BENCH_3.json > /dev/null
jq -e '[.runs[] | has("effective_jobs")] | all' BENCH_3.json > /dev/null \
  || { echo "check: BENCH_3.json runs missing effective_jobs" >&2; exit 1; }
cores=$(jq '.cores' BENCH_3.json)
if [ "$cores" -ge 4 ]; then
  if ! jq -e '[.runs[] | select(.jobs == 4)][0].speedup_vs_jobs1 >= 2' BENCH_3.json > /dev/null; then
    echo "check: explore speedup at 4 domains below 2x on a ${cores}-core machine" >&2
    exit 1
  fi
  echo "check: explore scaling ok ($(jq '[.runs[] | select(.jobs == 4)][0].speedup_vs_jobs1' BENCH_3.json)x at 4 domains, ${cores} cores)"
else
  echo "check: explore scaling assertion skipped (${cores} core(s); dedup + determinism still verified)"
fi

# --- self-verification ------------------------------------------------
# The sanitizer + differential oracles must pass on the paper system
# (zero violations, byte-identical engine/cache outcomes, bounds
# dominating the simulator) and on a fixed-seed batch of fuzzed systems.
dune exec bin/hem_tool.exe -- verify > /dev/null
echo "check: verify ok (paper system: sanitizer + oracles clean)"
dune exec bin/hem_tool.exe -- verify --fuzz 25 --seed 2026 --horizon 100000 > /dev/null
echo "check: verify ok (25 fuzzed systems, seed 2026)"

# --- serve daemon smoke -----------------------------------------------
# Full client/server round on a temp Unix socket: load a session, make a
# warm edit (which must reuse analyses from the resident fixed point),
# read outcomes and per-session metrics, close, then SIGTERM the daemon
# and require a clean (exit 0) drain.  The built binary is used directly
# so the backgrounded daemon does not contend for the dune build lock.
HEM=./_build/default/bin/hem_tool.exe
sock=$(mktemp -u /tmp/hem_serve.XXXXXX.sock)
servelog=$(mktemp /tmp/hem_serve.XXXXXX.log)
"$HEM" serve --socket "$sock" > "$servelog" 2>&1 &
serve_pid=$!
trap 'kill "$serve_pid" 2> /dev/null || true; rm -f "$sock" "$servelog"' EXIT
up=0
for _ in $(seq 1 100); do
  if "$HEM" client ping --socket "$sock" > /dev/null 2>&1; then up=1; break; fi
  sleep 0.05
done
if [ "$up" != 1 ]; then
  echo "check: serve daemon did not come up on $sock" >&2
  cat "$servelog" >&2
  exit 1
fi
sid=$("$HEM" client load --socket "$sock" --file examples/paper.spec | jq -r '.body.session')
if [ -z "$sid" ] || [ "$sid" = null ]; then
  echo "check: serve load returned no session id" >&2
  exit 1
fi
reused=$("$HEM" client edit --socket "$sock" --session "$sid" --task-priority t3=4 \
  | jq '.body.stats["resources-reused"]')
if [ "$reused" -lt 1 ]; then
  echo "check: warm edit reused $reused analyses, expected > 0" >&2
  exit 1
fi
"$HEM" client analyse --socket "$sock" --session "$sid" \
  | jq -e '.status == 0 and (.body.outcomes | length > 0)' > /dev/null \
  || { echo "check: serve analyse returned no outcomes" >&2; exit 1; }
"$HEM" client metrics --socket "$sock" --session "$sid" \
  | jq -e '.body.requests >= 2 and .body.counters["busy_window.windows"] >= 1
           and .body.process.counters["serve.requests"] >= 1' > /dev/null \
  || { echo "check: serve metrics missing per-session counters" >&2; exit 1; }
"$HEM" client close --socket "$sock" --session "$sid" > /dev/null
kill -TERM "$serve_pid"
code=0
wait "$serve_pid" || code=$?
if [ "$code" != 0 ]; then
  echo "check: serve daemon exited $code on SIGTERM, expected 0" >&2
  cat "$servelog" >&2
  exit 1
fi
trap - EXIT
rm -f "$sock" "$servelog"
echo "check: serve daemon smoke ok (warm edit reused ${reused} analyses, clean SIGTERM drain)"
echo "check: ok"
