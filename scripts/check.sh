#!/usr/bin/env bash
# Full verification: build + tests + the perf benchmark (which also
# cross-checks incremental vs full engine outcomes and refreshes
# BENCH_1.json), plus an observability smoke test and a guard on the
# no-sink instrumentation overhead.
set -euo pipefail
cd "$(dirname "$0")/.."
dune build @runtest

# --- trace smoke test -------------------------------------------------
# An analyse run with --trace must produce a valid Chrome trace with
# balanced span begin/end events and one span per global iteration.
trace=$(mktemp /tmp/hem_trace.XXXXXX.json)
dune exec bin/hem_tool.exe -- analyse --trace "$trace" > /dev/null
jq -e '.traceEvents | length > 0' "$trace" > /dev/null
b=$(jq '[.traceEvents[] | select(.ph=="B")] | length' "$trace")
e=$(jq '[.traceEvents[] | select(.ph=="E")] | length' "$trace")
iters=$(jq '[.traceEvents[] | select(.ph=="B" and .name=="engine.iteration")] | length' "$trace")
if [ "$b" != "$e" ]; then
  echo "check: unbalanced trace spans ($b begin, $e end)" >&2
  exit 1
fi
if [ "$iters" -lt 1 ]; then
  echo "check: no engine.iteration span in trace" >&2
  exit 1
fi
rm -f "$trace"
echo "check: trace smoke test ok ($b spans, $iters iteration spans)"

# --- perf + no-sink overhead guard ------------------------------------
# The perf run rewrites BENCH_1.json; keep the previous numbers and make
# sure the instrumented-but-unsinked hot path has not regressed.  The
# default tolerance absorbs container timing noise — tighten with
# PERF_TOL_PCT=5 on a quiet machine, or skip with PERF_GUARD=0.
baseline=$(mktemp)
cp BENCH_1.json "$baseline"
dune exec bench/main.exe -- perf
if [ "${PERF_GUARD:-1}" = 1 ]; then
  tol="${PERF_TOL_PCT:-25}"
  old=$(jq '[.cases[].incremental_ms] | add' "$baseline")
  new=$(jq '[.cases[].incremental_ms] | add' BENCH_1.json)
  if ! awk -v old="$old" -v new="$new" -v tol="$tol" 'BEGIN {
    limit = old * (1 + tol / 100.0);
    printf "check: no-sink perf %.3f ms vs baseline %.3f ms (limit %.3f ms)\n",
      new, old, limit;
    exit !(new <= limit)
  }'; then
    echo "check: instrumentation overhead exceeds ${tol}% budget" >&2
    exit 1
  fi
fi
rm -f "$baseline"
echo "check: ok"
