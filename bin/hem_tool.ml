(* Command-line front end: analyse or simulate the paper's reference
   system (and parametric variants) without writing OCaml.

   Commands:
     hem_tool analyse     [--mode flat|flat-stream|hem] [--s3-period N]
                          [--propagation MODE] [--backend spec|cpa|rtc]
                          [--trace FILE] [--trace-level spans|full]
                          [--deadline MS] [--budget N]
     hem_tool convergence [--s3-period N] [--file FILE] [--propagation MODE]
                          [--trace FILE]
     hem_tool simulate    [--horizon N] [--seed N] [--s3-period N]
     hem_tool figure4     [--max-dt N] [--step N]
     hem_tool scaling     [--signals N]
     hem_tool sweep       [--file SPEC] [--jobs N] [--period SRC=..]
                          [--cet-scale TASK=..] [--frame-priority F=..]
                          [--format table|csv|json]
     hem_tool explore     [--file SPEC] [--jobs N] [--bus B] [--max-frames K]
                          [+ sweep axes] [--format table|csv|json]
     hem_tool verify      [--file SPEC] [--fuzz N] [--seed N] [--horizon N]
                          [--no-selfcheck] [--deadline MS] [--budget N]
     hem_tool serve       (--socket PATH | --tcp PORT [--host H]) [--jobs N]
                          [--propagation MODE] [--max-sessions N]
                          [--max-frame BYTES] [--queue N] [--deadline MS]
                          [--budget N] [--drain-ms MS]
     hem_tool client      (load/edit/analyse/metrics/close/ping/shutdown)
                          (--socket PATH | --tcp PORT) [op args]

   Exit codes: 0 success, 1 error (invalid spec, cycle, I/O), 3 graceful
   degradation (deadline, budget, or divergence — printed bounds are
   sound but widened), 4 cancellation (completed prefix printed).  The
   serve protocol's reply status codes are the same taxonomy, and client
   subcommands exit with the status of the reply they received.

   The --selfcheck flag of analyse/convergence audits every stream the
   engine propagates against the Verify sanitizer and fails the run on
   an invariant violation. *)

module Interval = Timebase.Interval
module Count = Timebase.Count
module Stream = Event_model.Stream
module Spec = Cpa_system.Spec
module Engine = Cpa_system.Engine
module Report = Cpa_system.Report
module Paper = Scenarios.Paper_system
module Guard = Guard

open Cmdliner

let s3_period_arg =
  let doc = "Period of the pending source S3." in
  Arg.(value & opt int Paper.s3_period & info [ "s3-period" ] ~docv:"N" ~doc)

let mode_arg =
  let modes =
    [ "hem", Engine.Hierarchical; "flat", Engine.Flat_sem;
      "flat-stream", Engine.Flat_stream ]
  in
  let doc = "Analysis mode: hem, flat (SEM baseline), or flat-stream." in
  Arg.(value & opt (enum modes) Engine.Hierarchical
       & info [ "mode" ] ~docv:"MODE" ~doc)

let exit_err e =
  Printf.eprintf "error: %s\n" e;
  exit 1

let exit_guard_err e =
  Printf.eprintf "error: %s\n" (Guard.Error.to_string e);
  exit (Guard.Error.exit_code e)

(* --deadline / --budget: build a guard token for the command *)

let deadline_arg =
  let doc =
    "Wall-clock deadline in milliseconds.  On expiry the run degrades \
     gracefully instead of hanging: the analysis widens unconverged \
     bounds to unbounded (keeping every printed bound sound), an \
     exploration returns the deterministic completed prefix, and the \
     process exits with code 3."
  in
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"MS" ~doc)

let budget_arg =
  let doc =
    "Work budget in analysis steps (busy-window activations and \
     fixed-point iterations; one verification case for verify).  \
     Exhaustion degrades the run like --deadline: exit code 3."
  in
  Arg.(value & opt (some int) None & info [ "budget" ] ~docv:"N" ~doc)

let mk_guard deadline budget =
  match deadline, budget with
  | None, None -> Guard.none
  | _ -> Guard.create ?deadline_ms:deadline ?budget ()

(* exit code of a finished analysis: degraded results map the trip
   reason through the shared code table (3 degraded, 4 cancelled) *)
let status_code (result : Engine.result) =
  match result.Engine.status with
  | Engine.Degraded d -> Guard.Error.exit_code d.Engine.reason
  | Engine.Converged | Engine.Overloaded -> 0

let guard_exits =
  Cmd.Exit.info 1 ~doc:"on an analysis error (invalid specification, \
                        cyclic dependencies, unreadable file)."
  :: Cmd.Exit.info 3
       ~doc:"on graceful degradation (--deadline expired, --budget \
             exhausted, or a diverging fixed point): all printed bounds \
             are sound, widened ones say so explicitly."
  :: Cmd.Exit.info 4
       ~doc:"on cancellation: completed results are printed before \
             exiting."
  :: Cmd.Exit.defaults

(* analyse *)

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let contents = really_input_string ic n in
  close_in ic;
  contents

let load_spec ?(s3_period = Paper.s3_period) = function
  | None -> Paper.spec ~s3_period (), true
  | Some path -> begin
    match Cpa_system.Spec_file.parse (read_file path) with
    | Ok description -> Cpa_system.Spec_file.to_spec description, false
    | Error e -> exit_err (Printf.sprintf "%s: %s" path e)
    | exception Sys_error e -> exit_err e
  end

let file_arg =
  let doc =
    "System description file (S-expression format, see \
     examples/specs/); defaults to the built-in paper system."
  in
  Arg.(value & opt (some string) None & info [ "file" ] ~docv:"FILE" ~doc)

let stats_arg =
  let doc = "Print analysis-effort counters (iterations, reuse, curve and \
             busy-window work)."
  in
  Arg.(value & flag & info [ "stats" ] ~doc)

(* tracing *)

let trace_arg =
  let doc =
    "Write a Chrome trace_event file of the analysis (open in \
     chrome://tracing or ui.perfetto.dev).  A $(b,.jsonl) extension \
     selects newline-delimited JSON."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let trace_level_arg =
  let levels = [ "spans", Obs.Sink.Spans; "full", Obs.Sink.Full ] in
  let doc =
    "Trace detail: $(b,spans) records span begin/end only, $(b,full) adds \
     instants and counter samples (residual/dirty tracks)."
  in
  Arg.(value & opt (enum levels) Obs.Sink.Full
       & info [ "trace-level" ] ~docv:"LEVEL" ~doc)

(* Installs a Chrome-trace file sink around [f] when [trace] names a
   file; without [--trace] no sink is installed and the instrumentation
   stays on its free path. *)
let with_trace trace level f =
  match trace with
  | None -> f ()
  | Some path ->
    Obs.Sink.install ~level (Obs.Chrome_trace.file path);
    Fun.protect
      ~finally:(fun () ->
        Obs.Sink.uninstall ();
        Printf.printf "wrote %s\n" path)
      f

(* metrics snapshot: --metrics FILE enables histogram recording for the
   run and dumps the full telemetry registry (counters, gauges,
   histogram percentiles) as deterministic-schema JSON afterwards. *)

let metrics_arg =
  let doc =
    "Write a machine-readable telemetry snapshot to $(docv) after the \
     run: every registry counter and gauge plus latency histograms \
     (p50/p90/p99) as stable JSON.  Histogram recording is enabled for \
     the run (it is off, and costs nothing, otherwise).  A \
     $(b,.prom) extension selects Prometheus text format instead."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let with_metrics metrics f =
  match metrics with
  | None -> f ()
  | Some path ->
    Obs.Hist.set_enabled true;
    Fun.protect
      ~finally:(fun () ->
        Obs.Hist.set_enabled false;
        let snap = Obs.Snapshot.capture () in
        if Filename.check_suffix path ".prom" then
          Obs.Snapshot.write_prometheus path snap
        else Obs.Snapshot.write_json path snap;
        Printf.printf "wrote %s\n" path)
      f

(* propagation: override the spec-wide default output-propagation mode *)

let propagation_arg =
  let modes =
    List.map
      (fun m -> Event_model.Propagation.mode_name m, m)
      Event_model.Propagation.all_modes
  in
  let doc =
    "Output-model propagation method applied spec-wide (overrides the \
     description's default; per-task overrides in the description keep \
     precedence): $(b,theta_tau) (the paper's exact recursion, the \
     default), $(b,jitter), $(b,jitter_offset), $(b,jitter_bmin), \
     $(b,busy_window), or $(b,optimal) (pointwise-tightest sound output \
     per task)."
  in
  Arg.(value & opt (some (enum modes)) None
       & info [ "propagation" ] ~docv:"MODE" ~doc)

let apply_propagation propagation spec =
  match propagation with
  | None -> spec
  | Some m -> Spec.with_propagation m spec

(* backend: force every resource onto one local-analysis backend *)

let backend_arg =
  let choices = [ "spec", `Spec; "cpa", `Cpa; "rtc", `Rtc ] in
  let doc =
    "Local-analysis backend forced on every resource: $(b,cpa) \
     (busy-window analysis), $(b,rtc) (workload/service curves; EDF \
     resources stay on cpa, which keeps the only service model for \
     dynamic deadlines), or $(b,spec) (keep each resource's declared \
     backend — the default)."
  in
  Arg.(value & opt (enum choices) `Spec & info [ "backend" ] ~docv:"B" ~doc)

let apply_backend backend spec =
  let force b =
    {
      spec with
      Spec.resources =
        List.map
          (fun (r : Spec.resource) ->
            if r.Spec.scheduler = Spec.Edf then
              { r with Spec.backend = Spec.Cpa }
            else { r with Spec.backend = b })
          spec.Spec.resources;
    }
  in
  match backend with
  | `Spec -> spec
  | `Cpa -> force Spec.Cpa
  | `Rtc -> force Spec.Rtc

(* selfcheck: wire the Verify sanitizer into the engine's audit hook *)

let selfcheck_arg =
  let doc =
    "Audit every stream the engine propagates (sources, task outputs, \
     frame streams, unpacked signals) against the curve invariants of the \
     Verify sanitizer, and capture pack-degradation warnings.  The run \
     fails on an error-severity violation."
  in
  Arg.(value & flag & info [ "selfcheck" ] ~doc)

(* [with_selfcheck flag f] passes the audit hook (or [None]) to [f],
   prints each distinct violation once, and fails the command if any
   error-severity violation surfaced. *)
let with_selfcheck selfcheck f =
  if not selfcheck then f None
  else begin
    let errors = ref 0 in
    let seen = Hashtbl.create 64 in
    let emit v =
      let key = Verify.Violation.to_string v in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        if Verify.Violation.is_error v then incr errors;
        Format.eprintf "selfcheck: %a@." Verify.Violation.pp v
      end
    in
    let hook s = Verify.Stream.audit ~on_violation:emit s in
    Hem.Pack.set_warn_hook (fun (w : Hem.Pack.warning) ->
        emit
          (Verify.Violation.make ~severity:Verify.Violation.Warning
             ~subject:(w.frame ^ "." ^ w.signal) ~invariant:"pack.frame_gap"
             w.reason));
    Fun.protect ~finally:Hem.Pack.clear_warn_hook (fun () ->
        let result = f (Some hook) in
        if !errors > 0 then
          exit_err
            (Printf.sprintf "selfcheck: %d invariant violation%s" !errors
               (if !errors = 1 then "" else "s"));
        result)
  end

(* Shared per-mode run/report pipeline (used by analyse and convergence):
   analyse the spec in one mode, print outcomes and the optional effort /
   convergence blocks. *)
let run_mode ?(stats = false) ?(convergence = false) ?selfcheck ?guard ~mode
    spec =
  match Engine.analyse ~mode ?selfcheck ?guard spec with
  | Error e -> exit_guard_err e
  | Ok result ->
    Report.print_outcomes Format.std_formatter result;
    if convergence then
      Format.printf "@.Convergence:@.%a@." Report.print_convergence result;
    if stats then Format.printf "@.%a@." Report.print_effort result;
    result

let analyse_cmd =
  let run mode s3_period file propagation backend stats trace trace_level
      metrics selfcheck deadline budget =
    let guard = mk_guard deadline budget in
    let spec, is_paper =
      match file with
      | None -> Paper.spec ~s3_period (), true
      | Some _ -> load_spec file
    in
    let spec = apply_backend backend (apply_propagation propagation spec) in
    with_trace trace trace_level @@ fun () ->
    with_metrics metrics @@ fun () ->
    with_selfcheck selfcheck @@ fun selfcheck ->
    let result = run_mode ~stats ?selfcheck ~guard ~mode spec in
    let code = ref (status_code result) in
    if mode = Engine.Hierarchical then begin
      match Engine.analyse ~mode:Engine.Flat_sem ?selfcheck ~guard spec with
      | Error e -> exit_guard_err e
      | Ok flat ->
        code := Stdlib.max !code (status_code flat);
        let names =
          if is_paper then Paper.cpu_tasks
          else
            List.filter_map
              (fun (o : Engine.element_outcome) ->
                if List.exists
                     (fun (k : Spec.task) ->
                       String.equal k.task_name o.element)
                     spec.Spec.tasks
                then Some o.element
                else None)
              result.Engine.outcomes
        in
        Format.printf "@.Comparison against the flat baseline:@.";
        Report.pp_comparison Format.std_formatter
          (Report.compare_results ~baseline:flat ~improved:result ~names);
        Format.printf "@."
    end;
    if !code <> 0 then exit !code
  in
  let doc = "Analyse a system (the paper's reference system by default)." in
  Cmd.v (Cmd.info "analyse" ~doc ~exits:guard_exits)
    Term.(const run $ mode_arg $ s3_period_arg $ file_arg $ propagation_arg
          $ backend_arg $ stats_arg $ trace_arg $ trace_level_arg
          $ metrics_arg $ selfcheck_arg $ deadline_arg $ budget_arg)

(* convergence *)

let convergence_cmd =
  let run s3_period file propagation stats trace trace_level selfcheck format
      =
    let spec, _ = load_spec ~s3_period file in
    let spec = apply_propagation propagation spec in
    let modes = [ Engine.Hierarchical; Engine.Flat_stream; Engine.Flat_sem ] in
    with_trace trace trace_level @@ fun () ->
    with_selfcheck selfcheck @@ fun selfcheck ->
    match format with
    | `Csv ->
      (* Byte-stable: pure per-iteration analysis data, no timing and no
         rendering that could vary between runs. *)
      Format.printf
        "mode,iteration,dirty,changed,residual,analysed,reused,invalidated@.";
      List.iter
        (fun mode ->
          match Engine.analyse ~mode ?selfcheck spec with
          | Error e -> exit_guard_err e
          | Ok result ->
            Report.print_convergence_csv Format.std_formatter ~mode result)
        modes
    | `Table ->
      List.iter
        (fun mode ->
          Format.printf "== %s ==@." (Engine.mode_name mode);
          let result =
            run_mode ~stats ~convergence:true ?selfcheck ~mode spec
          in
          Format.printf "@.%a@.@." Report.print_residual_hist result)
        modes
  in
  let format_arg =
    let formats = [ "table", `Table; "csv", `Csv ] in
    let doc =
      "Output format: $(b,table) (per-mode residual tables plus a \
       residual-distribution histogram) or $(b,csv) (byte-stable \
       per-iteration rows for diffing across runs)."
    in
    Arg.(value & opt (enum formats) `Table & info [ "format" ] ~docv:"FMT" ~doc)
  in
  let doc =
    "Show how the global fixed point converges: the per-iteration residual \
     table (dirty/changed elements, largest response-bound movement, \
     incremental reuse) and the residual distribution in every analysis \
     mode."
  in
  Cmd.v (Cmd.info "convergence" ~doc)
    Term.(const run $ s3_period_arg $ file_arg $ propagation_arg $ stats_arg
          $ trace_arg $ trace_level_arg $ selfcheck_arg $ format_arg)

(* profile *)

let profile_cmd =
  let run spec_path mode s3_period top flame metrics =
    let spec, _ = load_spec ~s3_period spec_path in
    (* Capacity sized so no span of a large analysis is evicted: a
       truncated ring would under-attribute the early iterations. *)
    let sink, events = Obs.Sink.memory ~capacity:(1 lsl 21) () in
    Obs.Sink.install ~level:Obs.Sink.Spans sink;
    with_metrics metrics @@ fun () ->
    let t0 = Unix.gettimeofday () in
    (* The explicit root span covers the whole analysis call — spec
       validation, context setup and result assembly included — so the
       tree's self times partition the measured wall window instead of
       only the engine's inner extent. *)
    let result =
      match
        Obs.Trace.with_span "analysis" (fun () -> Engine.analyse ~mode spec)
      with
      | Ok r -> r
      | Error e ->
        Obs.Sink.uninstall ();
        exit_guard_err e
    in
    let wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
    Obs.Sink.uninstall ();
    let profile = Obs.Profile.of_events (events ()) in
    Format.printf "%a@." (Obs.Profile.pp_top ~n:top) profile;
    let traced_ms = Obs.Profile.total_us profile /. 1000.0 in
    Format.printf
      "wall %.3f ms, traced %.3f ms (%.1f%% coverage), %d iteration(s), \
       converged %b@."
      wall_ms traced_ms
      (if wall_ms > 0.0 then 100.0 *. traced_ms /. wall_ms else 0.0)
      result.Engine.iterations result.Engine.converged;
    match flame with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc (Obs.Profile.collapsed profile);
      close_out oc;
      Printf.printf "wrote %s\n" path
  in
  let spec_pos =
    let doc =
      "System description file (S-expression format); defaults to the \
       built-in paper system."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"SPEC" ~doc)
  in
  let top_arg =
    let doc = "Rows of the top-N cost table." in
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"N" ~doc)
  in
  let flame_arg =
    let doc =
      "Write collapsed-stack text (one $(b,path;to;node self-µs) line per \
       span-tree node) to $(docv) — the input format of flamegraph.pl and \
       speedscope."
    in
    Arg.(value & opt (some string) None & info [ "flame" ] ~docv:"FILE" ~doc)
  in
  let doc =
    "Attribute analysis cost: run the engine under an in-memory span \
     recorder and fold the trace into a per-(resource × stream × phase) \
     cost tree with call counts, total and self times — as a top-N table \
     and optionally as flamegraph input.  Self times partition the traced \
     wall time, so the table answers where the milliseconds went."
  in
  Cmd.v (Cmd.info "profile" ~doc ~exits:guard_exits)
    Term.(const run $ spec_pos $ mode_arg $ s3_period_arg $ top_arg
          $ flame_arg $ metrics_arg)

(* sweep / explore *)

module Space = Explore.Space
module Driver = Explore.Driver
module Render = Explore.Render

let jobs_arg =
  let doc =
    "Worker domains for the exploration pool (0 = hardware parallelism).  \
     Results are byte-identical for every job count."
  in
  Arg.(value & opt int 0 & info [ "jobs" ] ~docv:"N" ~doc)

let resolve_jobs = function
  | 0 -> Explore.Pool.default_jobs ()
  | j when j >= 1 -> j
  | _ -> exit_err "--jobs must be >= 0"

type output_format =
  | Table
  | Csv
  | Json

let format_arg =
  let formats = [ "table", Table; "csv", Csv; "json", Json ] in
  let doc = "Output format: table, csv, or json." in
  Arg.(value & opt (enum formats) Table & info [ "format" ] ~docv:"FMT" ~doc)

(* Axis values: "500,1000" or "400..1500:100" (step defaults to 1). *)
let parse_values kind s =
  let int_of v =
    match int_of_string_opt (String.trim v) with
    | Some n -> n
    | None -> exit_err (Printf.sprintf "%s: bad integer %s" kind v)
  in
  match String.index_opt s '.' with
  | Some i when i + 1 < String.length s && s.[i + 1] = '.' ->
    let lo = int_of (String.sub s 0 i) in
    let rest = String.sub s (i + 2) (String.length s - i - 2) in
    let hi, step =
      match String.index_opt rest ':' with
      | None -> int_of rest, 1
      | Some j ->
        ( int_of (String.sub rest 0 j),
          int_of (String.sub rest (j + 1) (String.length rest - j - 1)) )
    in
    if step < 1 then exit_err (kind ^ ": step must be >= 1");
    if hi < lo then exit_err (kind ^ ": empty range");
    let rec ints v acc =
      if v > hi then List.rev acc else ints (v + step) (v :: acc)
    in
    ints lo []
  | _ -> List.map int_of (String.split_on_char ',' s)

let parse_axis_arg kind s =
  match String.index_opt s '=' with
  | None -> exit_err (Printf.sprintf "%s: expected NAME=VALUES, got %s" kind s)
  | Some i ->
    let name = String.sub s 0 i in
    let values = String.sub s (i + 1) (String.length s - i - 1) in
    name, parse_values kind values

let period_axes specs =
  List.map
    (fun s ->
      let source, values = parse_axis_arg "--period" s in
      Space.int_axis (source ^ ".period")
        (fun period -> Space.Source_period { source; period })
        values)
    specs

let cet_axes specs =
  List.map
    (fun s ->
      let task, values = parse_axis_arg "--cet-scale" s in
      Space.int_axis (task ^ ".cet")
        (fun percent -> Space.Cet_scale { task; percent })
        values)
    specs

let frame_priority_axes specs =
  List.map
    (fun s ->
      let frame, values = parse_axis_arg "--frame-priority" s in
      Space.int_axis (frame ^ ".prio")
        (fun priority -> Space.Frame_priority { frame; priority })
        values)
    specs

let period_arg =
  let doc =
    "Sweep a source's period: $(b,SRC=V1,V2,...) or $(b,SRC=LO..HI:STEP).  \
     Repeatable; multiple axes form a grid."
  in
  Arg.(value & opt_all string [] & info [ "period" ] ~docv:"AXIS" ~doc)

let cet_scale_arg =
  let doc =
    "Sweep a task's execution-time scale in percent, e.g. \
     $(b,T3=80..160:20)."
  in
  Arg.(value & opt_all string [] & info [ "cet-scale" ] ~docv:"AXIS" ~doc)

let frame_priority_arg =
  let doc = "Sweep a frame's priority, e.g. $(b,F1=1,2)." in
  Arg.(value & opt_all string [] & info [ "frame-priority" ] ~docv:"AXIS" ~doc)

(* Base builder: rebuilt from pure data inside every worker domain, as
   the pool's domain-locality contract requires. *)
let base_builder file s3_period =
  match file with
  | None -> (fun () -> Paper.spec ~s3_period ()), "paper system"
  | Some path -> begin
    match Cpa_system.Spec_file.parse (read_file path) with
    | Ok description ->
      (fun () -> Cpa_system.Spec_file.to_spec description), path
    | Error e -> exit_err (Printf.sprintf "%s: %s" path e)
    | exception Sys_error e -> exit_err e
  end

let render_report format report =
  (match format with
   | Table -> Render.table Format.std_formatter report
   | Csv -> Render.csv Format.std_formatter report
   | Json -> Render.json Format.std_formatter report);
  Format.eprintf "%a@." Render.timing_line report

(* [Some code] when a report warrants a non-zero exit: interruption wins
   (its reason carries the code), else any degraded row exits 3 *)
let report_code (report : Driver.report) =
  match report.interrupted with
  | Some reason -> Guard.Error.exit_code reason
  | None ->
    let row_degraded (r : Driver.row) =
      match r.summary with
      | Error _ -> false
      | Ok s ->
        List.exists
          (fun (m : Explore.Summary.mode_summary) ->
            m.Explore.Summary.metrics.Explore.Summary.degraded)
          s.Explore.Summary.modes
    in
    if List.exists row_degraded report.rows then 3 else 0

let sweep_cmd =
  let run s3_period file periods cets fprios jobs format deadline budget =
    let jobs = resolve_jobs jobs in
    let guard = mk_guard deadline budget in
    let base, _ = base_builder file s3_period in
    let axes = period_axes periods @ cet_axes cets @ frame_priority_axes fprios in
    if axes = [] then
      exit_err "sweep: give at least one --period / --cet-scale / --frame-priority axis";
    let items = Driver.items_of_variants ~base (Space.grid axes) in
    let report = Driver.run ~jobs ~guard items in
    render_report format report;
    let code = report_code report in
    if code <> 0 then exit code
  in
  let doc =
    "Evaluate a grid of system variants in parallel (hierarchical vs flat \
     per variant), deduplicated through the content-addressed result cache."
  in
  Cmd.v (Cmd.info "sweep" ~doc ~exits:guard_exits)
    Term.(const run $ s3_period_arg $ file_arg $ period_arg $ cet_scale_arg
          $ frame_priority_arg $ jobs_arg $ format_arg $ deadline_arg
          $ budget_arg)

let explore_cmd =
  let run s3_period file periods cets fprios bus max_frames bits bit_time
      jobs format deadline budget =
    let jobs = resolve_jobs jobs in
    let guard = mk_guard deadline budget in
    let base, _ = base_builder file s3_period in
    let base_spec = base () in
    let bus =
      match bus with
      | Some b -> Some b
      | None ->
        (* default: the first SPNP bus of the system, when any *)
        List.find_map
          (fun (r : Spec.resource) ->
            if r.scheduler = Spec.Spnp then Some r.res_name else None)
          base_spec.Spec.resources
    in
    let layouts =
      match bus with
      | None -> [ { Space.label = ""; edits = [] } ]
      | Some bus -> begin
        match
          Space.packing_variants ?max_frames ~bits_per_signal:bits ~bit_time
            base_spec ~bus ()
        with
        | variants -> variants
        | exception Not_found -> [ { Space.label = ""; edits = [] } ]
      end
    in
    let axes = period_axes periods @ cet_axes cets @ frame_priority_axes fprios in
    let grid = Space.grid axes in
    let variants =
      List.concat_map
        (fun (g : Space.variant) ->
          List.map
            (fun (l : Space.variant) ->
              {
                Space.label =
                  (match g.label, l.label with
                   | "", l -> l
                   | g, "" -> g
                   | g, l -> g ^ " " ^ l);
                edits = g.edits @ l.edits;
              })
            layouts)
        grid
    in
    let items = Driver.items_of_variants ~base variants in
    let report = Driver.run ~jobs ~guard items in
    render_report format report;
    if format = Table then begin
      Format.printf "@.%a" (fun fmt r -> Render.pareto_table fmt r ~mode:Engine.Hierarchical) report;
      Format.printf "@.%a" (fun fmt r -> Render.pareto_table fmt r ~mode:Engine.Flat_sem) report
    end;
    let code = report_code report in
    if code <> 0 then exit code
  in
  let bus_arg =
    let doc =
      "Bus whose signal-to-frame layouts are enumerated (default: the \
       system's first SPNP bus)."
    in
    Arg.(value & opt (some string) None & info [ "bus" ] ~docv:"NAME" ~doc)
  in
  let max_frames_arg =
    let doc = "Largest frame count per layout (default: one per signal)." in
    Arg.(value & opt (some int) None & info [ "max-frames" ] ~docv:"K" ~doc)
  in
  let bits_arg =
    let doc = "Payload bits per signal for layout transmission times." in
    Arg.(value & opt int 8 & info [ "bits-per-signal" ] ~docv:"B" ~doc)
  in
  let bit_time_arg =
    let doc = "Bus time units per payload bit." in
    Arg.(value & opt int 1 & info [ "bit-time" ] ~docv:"T" ~doc)
  in
  let doc =
    "Explore the design space: enumerate signal-to-frame layouts (set \
     partitions of a bus's signals, transmission times from the COM-layer \
     payload layout), cross them with parameter axes, analyse every \
     variant hierarchically and flat in parallel, and report the Pareto \
     fronts over (worst-case latency, utilization, load margin)."
  in
  Cmd.v (Cmd.info "explore" ~doc ~exits:guard_exits)
    Term.(const run $ s3_period_arg $ file_arg $ period_arg $ cet_scale_arg
          $ frame_priority_arg $ bus_arg $ max_frames_arg $ bits_arg
          $ bit_time_arg $ jobs_arg $ format_arg $ deadline_arg
          $ budget_arg)

(* simulate *)

let simulate_cmd =
  let run horizon seed s3_period =
    let spec = Paper.spec ~s3_period () in
    let generators =
      [
        "S1", Des.Gen.periodic ~period:250 ();
        "S2", Des.Gen.periodic ~period:450 ();
        "S3", Des.Gen.periodic ~period:s3_period ();
        "S4", Des.Gen.periodic ~period:400 ();
      ]
    in
    match Des.Simulator.run ~seed ~generators ~horizon spec with
    | Error e -> exit_err e
    | Ok trace ->
      Printf.printf "%-6s %12s %12s %12s\n" "elem" "completions" "best R"
        "worst R";
      List.iter
        (fun name ->
          let show f = match f with Some v -> string_of_int v | None -> "-" in
          Printf.printf "%-6s %12d %12s %12s\n" name
            (Des.Trace.response_count trace name)
            (show (Des.Trace.best_response trace name))
            (show (Des.Trace.worst_response trace name)))
        ("F1" :: "F2" :: Paper.cpu_tasks)
  in
  let horizon =
    Arg.(value & opt int 1_000_000
         & info [ "horizon" ] ~docv:"N" ~doc:"Simulation horizon.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")
  in
  let doc = "Simulate the paper's reference system." in
  Cmd.v (Cmd.info "simulate" ~doc)
    Term.(const run $ horizon $ seed $ s3_period_arg)

(* figure4 *)

let figure4_cmd =
  let run max_dt step s3_period =
    match Engine.analyse ~mode:Engine.Hierarchical (Paper.spec ~s3_period ()) with
    | Error e -> exit_guard_err e
    | Ok hem ->
      let streams =
        ("F1", hem.Engine.resolve (Spec.From_frame "F1"))
        :: List.map2
             (fun task signal ->
               ( task,
                 hem.Engine.resolve (Spec.From_signal { frame = "F1"; signal })
               ))
             Paper.cpu_tasks
             [ "sig1"; "sig2"; "sig3" ]
      in
      Printf.printf "%-8s" "dt";
      List.iter (fun (name, _) -> Printf.printf "%8s" name) streams;
      print_newline ();
      let rec loop dt =
        if dt <= max_dt then begin
          Printf.printf "%-8d" dt;
          List.iter
            (fun (_, s) ->
              Printf.printf "%8s" (Count.to_string (Stream.eta_plus s dt)))
            streams;
          print_newline ();
          loop (dt + step)
        end
      in
      loop step
  in
  let max_dt =
    Arg.(value & opt int 2500
         & info [ "max-dt" ] ~docv:"N" ~doc:"Largest window size.")
  in
  let step =
    Arg.(value & opt int 125 & info [ "step" ] ~docv:"N" ~doc:"Window step.")
  in
  let doc = "Print the eta+ series of Figure 4." in
  Cmd.v (Cmd.info "figure4" ~doc)
    Term.(const run $ max_dt $ step $ s3_period_arg)

(* export *)

let export_cmd =
  let run file horizon seed out_prefix =
    let spec, _ = load_spec file in
    (* generators reconstructed from the source streams is not possible in
       general; periodic generators matching the built-in system are used
       for the default, and periodic-from-description for files *)
    let generators =
      match file with
      | None ->
        [
          "S1", Des.Gen.periodic ~period:250 ();
          "S2", Des.Gen.periodic ~period:450 ();
          "S3", Des.Gen.periodic ~period:Paper.s3_period ();
          "S4", Des.Gen.periodic ~period:400 ();
        ]
      | Some path -> begin
        match Cpa_system.Spec_file.parse (read_file path) with
        | Error e -> exit_err e
        | Ok description ->
          List.map
            (fun (s : Cpa_system.Spec_file.source) ->
              let gen =
                match s.Cpa_system.Spec_file.desc with
                | Cpa_system.Spec_file.Periodic p -> Des.Gen.periodic ~period:p ()
                | Cpa_system.Spec_file.Periodic_jitter { period; jitter; _ } ->
                  Des.Gen.periodic_jitter ~period ~jitter ()
                | Cpa_system.Spec_file.Sporadic d ->
                  Des.Gen.sporadic ~d_min:d ~slack:d ()
                | Cpa_system.Spec_file.Burst { period; burst; d_min } ->
                  Des.Gen.of_times
                    (List.concat_map
                       (fun k ->
                         List.init burst (fun j -> (k * period) + (j * d_min)))
                       (List.init ((1_000_000 / period) + 1) Fun.id))
              in
              s.Cpa_system.Spec_file.source_name, gen)
            description.Cpa_system.Spec_file.sources
      end
    in
    match Des.Simulator.run ~seed ~generators ~horizon spec with
    | Error e -> exit_err e
    | Ok trace ->
      let write path contents =
        let oc = open_out path in
        output_string oc contents;
        close_out oc;
        Printf.printf "wrote %s\n" path
      in
      let sources = List.map (fun (n, _) -> Des.Port.source n) spec.Spec.sources in
      let frames =
        List.map (fun (f : Spec.frame) -> Des.Port.frame f.frame_name)
          spec.Spec.frames
      in
      let outputs =
        List.map (fun (k : Spec.task) -> Des.Port.task_output k.task_name)
          spec.Spec.tasks
      in
      let elements =
        List.map (fun (f : Spec.frame) -> f.Spec.frame_name) spec.Spec.frames
        @ List.map (fun (k : Spec.task) -> k.Spec.task_name) spec.Spec.tasks
      in
      write (out_prefix ^ ".vcd")
        (Des.Export.vcd trace ~streams:(sources @ frames @ outputs));
      write (out_prefix ^ "-arrivals.csv")
        (Des.Export.arrivals_csv trace ~streams:(sources @ frames));
      write (out_prefix ^ "-responses.csv")
        (Des.Export.responses_csv trace ~elements)
  in
  let horizon =
    Arg.(value & opt int 100_000
         & info [ "horizon" ] ~docv:"N" ~doc:"Simulation horizon.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")
  in
  let out_prefix =
    Arg.(value & opt string "trace"
         & info [ "out" ] ~docv:"PREFIX" ~doc:"Output file prefix.")
  in
  let doc = "Simulate and export VCD + CSV traces." in
  Cmd.v (Cmd.info "export" ~doc)
    Term.(const run $ file_arg $ horizon $ seed $ out_prefix)

(* gantt *)

let gantt_cmd =
  let run from_time width =
    let spec = Paper.spec () in
    let generators =
      [
        "S1", Des.Gen.periodic ~period:250 ();
        "S2", Des.Gen.periodic ~period:450 ();
        "S3", Des.Gen.periodic ~period:Paper.s3_period ();
        "S4", Des.Gen.periodic ~period:400 ();
      ]
    in
    match
      Des.Simulator.run ~generators ~horizon:(from_time + width + 1000) spec
    with
    | Error e -> exit_err e
    | Ok trace ->
      print_string
        (Des.Export.gantt ~from_time ~width trace
           ~elements:("F1" :: "F2" :: Paper.cpu_tasks));
      Printf.printf "\nResponse statistics:\n%-6s %8s %6s %6s %8s %6s\n" "elem"
        "count" "best" "worst" "mean" "p99";
      List.iter
        (fun name ->
          match Des.Trace.response_stats trace name with
          | Some s ->
            Printf.printf "%-6s %8d %6d %6d %8.1f %6d\n" name s.Des.Trace.count
              s.Des.Trace.best s.Des.Trace.worst s.Des.Trace.mean
              s.Des.Trace.percentile_99
          | None -> Printf.printf "%-6s (no completions)\n" name)
        ("F1" :: "F2" :: Paper.cpu_tasks)
  in
  let from_time =
    Arg.(value & opt int 0 & info [ "from" ] ~docv:"T" ~doc:"Window start.")
  in
  let width =
    Arg.(value & opt int 120 & info [ "width" ] ~docv:"N" ~doc:"Window width.")
  in
  let doc = "Simulate and render an ASCII Gantt chart with statistics." in
  Cmd.v (Cmd.info "gantt" ~doc) Term.(const run $ from_time $ width)

(* headroom *)

let headroom_cmd =
  let run s3_period jobs =
    let jobs = resolve_jobs jobs in
    let spec = Paper.spec ~s3_period () in
    Printf.printf "%-6s %16s %16s\n" "task" "flat headroom" "HEM headroom";
    List.iter
      (fun task ->
        let headroom mode =
          (* the pool-parallel multisection returns exactly what the
             serial Sensitivity bisection would (monotone predicate) *)
          match
            Explore.Sensitivity.max_cet_scale ~jobs ~mode
              ~build:(fun () -> Paper.spec ~s3_period ())
              ~task ()
          with
          | Some pct -> Printf.sprintf "%d%%" pct
          | None -> "none"
        in
        Printf.printf "%-6s %16s %16s\n" task
          (headroom Engine.Flat_sem)
          (headroom Engine.Hierarchical))
      Paper.cpu_tasks;
    match Engine.analyse ~mode:Engine.Hierarchical spec with
    | Error e -> exit_guard_err e
    | Ok result ->
      Printf.printf "\nResource load:\n";
      List.iter
        (fun (resource, pct) -> Printf.printf "  %-6s %5.1f%%\n" resource pct)
        (Report.utilizations result)
  in
  let doc = "Execution-time headroom per task and resource loads." in
  Cmd.v (Cmd.info "headroom" ~doc) Term.(const run $ s3_period_arg $ jobs_arg)

(* data-age *)

let data_age_cmd =
  let run s3_period =
    match
      Engine.analyse ~mode:Engine.Hierarchical (Paper.spec ~s3_period ())
    with
    | Error e -> exit_guard_err e
    | Ok result ->
      Printf.printf "%-6s %-8s %14s\n" "frame" "signal" "worst data age";
      List.iter
        (fun (frame, signal) ->
          let age =
            match Report.signal_data_age result ~frame ~signal with
            | Some t -> Timebase.Time.to_string t
            | None -> "unbounded"
          in
          Printf.printf "%-6s %-8s %14s\n" frame signal age)
        [ "F1", "sig1"; "F1", "sig2"; "F1", "sig3"; "F2", "sig4" ]
  in
  let doc = "Worst-case write-to-delivery age of every COM signal." in
  Cmd.v (Cmd.info "data-age" ~doc) Term.(const run $ s3_period_arg)

(* scaling *)

let scaling_cmd =
  let run signals =
    let spec = Scenarios.Synthetic.fan_in ~signals () in
    match
      ( Engine.analyse ~mode:Engine.Flat_sem spec,
        Engine.analyse ~mode:Engine.Hierarchical spec )
    with
    | Ok flat, Ok hem ->
      Report.pp_comparison Format.std_formatter
        (Report.compare_results ~baseline:flat ~improved:hem
           ~names:(List.init signals (fun i -> Printf.sprintf "T%d" (i + 1))));
      Format.printf "@."
    | Error e, _ | _, Error e -> exit_guard_err e
  in
  let signals =
    Arg.(value & opt int 4
         & info [ "signals" ] ~docv:"N" ~doc:"Signals packed into the frame.")
  in
  let doc = "Analyse a synthetic fan-in system of N signals." in
  Cmd.v (Cmd.info "scaling" ~doc) Term.(const run $ signals)

(* verify *)

let verify_cmd =
  let run s3_period file fuzz seed horizon no_selfcheck deadline budget =
    let selfcheck = not no_selfcheck in
    let guard = mk_guard deadline budget in
    let failed = ref 0 in
    (* one budget unit per case/section; on a trip, surface the partial
       results already printed and exit through the shared code table *)
    let checkpoint () =
      match Guard.spend guard 1 with
      | () -> ()
      | exception Guard.Error.Error reason ->
        Format.eprintf "verify interrupted (%s): partial results above@."
          (Guard.Error.to_string reason);
        exit (Guard.Error.exit_code reason)
    in
    let count_checks checks =
      List.iter
        (fun (c : Verify.Oracle.check) ->
          Format.printf "%a@." Verify.Oracle.pp_check c;
          if not c.Verify.Oracle.ok then incr failed)
        checks
    in
    let count_report r =
      Format.printf "%a@." Verify.Oracle.pp_report r;
      if not (Verify.Oracle.passed r) then incr failed
    in
    if fuzz = 0 then begin
      checkpoint ();
      Format.printf "-- curve backend vs naive closures --@.";
      count_checks (Verify.Oracle.backend_agreement ());
      checkpoint ();
      let spec, is_paper = load_spec ~s3_period file in
      let generators =
        if is_paper then
          Some
            [
              "S1", Des.Gen.periodic ~period:250 ();
              "S2", Des.Gen.periodic ~period:450 ();
              "S3", Des.Gen.periodic ~period:s3_period ();
              "S4", Des.Gen.periodic ~period:400 ();
            ]
        else None
      in
      Format.printf "@.-- system oracles --@.";
      checkpoint ();
      count_report
        (Verify.Oracle.verify_spec
           ~label:(if is_paper then "paper system" else "system")
           ~selfcheck ~seed ~horizon ?generators spec);
      if is_paper then begin
        checkpoint ();
        Format.printf "@.-- exploration cache on vs off --@.";
        count_checks
          [
            Verify.Oracle.cache_agreement
              ~base:(fun () -> Paper.spec ~s3_period ())
              (Space.grid
                 [
                   Space.int_axis "S1.period"
                     (fun period ->
                       Space.Source_period { source = "S1"; period })
                     [ 230; 250 ];
                 ]
               @ [ { Space.label = "dup"; edits = [] } ]);
          ]
      end
    end
    else
      List.iter
        (fun case ->
          checkpoint ();
          count_report (Verify.Oracle.verify_case ~selfcheck ~horizon case))
        (Verify.Fuzz.cases ~seed ~count:fuzz);
    if !failed > 0 then
      exit_err (Printf.sprintf "%d verification failure(s)" !failed)
    else Format.printf "@.verification clean@."
  in
  let fuzz_arg =
    let doc =
      "Verify $(docv) seeded random systems (Space edits over the scenario \
       bases) instead of the given system."
    in
    Arg.(value & opt int 0 & info [ "fuzz" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    Arg.(value & opt int 42
         & info [ "seed" ] ~docv:"N" ~doc:"Seed for fuzzing and simulation.")
  in
  let horizon_arg =
    Arg.(value & opt int 200_000
         & info [ "horizon" ] ~docv:"N" ~doc:"Simulation horizon.")
  in
  let no_selfcheck_arg =
    let doc = "Skip the per-stream invariant sanitizer (oracles only)." in
    Arg.(value & flag & info [ "no-selfcheck" ] ~doc)
  in
  let doc =
    "Self-verify the analysis: invariant-sanitize every propagated stream, \
     and cross-check the compact curve backend, the incremental engine, the \
     hierarchical-vs-flat tightening, the simulator dominance and the \
     exploration cache against independent implementations."
  in
  Cmd.v (Cmd.info "verify" ~doc ~exits:guard_exits)
    Term.(const run $ s3_period_arg $ file_arg $ fuzz_arg $ seed_arg
          $ horizon_arg $ no_selfcheck_arg $ deadline_arg $ budget_arg)

(* serve / client *)

module Protocol = Serve.Protocol
module Client = Serve.Client

let serve_socket_arg =
  let doc = "Unix-domain socket path to listen on." in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let serve_tcp_arg =
  let doc = "TCP port to listen on (see also $(b,--host))." in
  Arg.(value & opt (some int) None & info [ "tcp" ] ~docv:"PORT" ~doc)

let serve_host_arg =
  let doc = "Bind host for $(b,--tcp)." in
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc)

let serve_cmd =
  let run socket tcp host jobs mode propagation max_sessions max_frame
      max_queue deadline budget drain_ms =
    if socket = None && tcp = None then
      exit_err "serve: pass --socket PATH and/or --tcp PORT";
    let cfg =
      Serve.Server.config ?unix_path:socket
        ?tcp:(Option.map (fun port -> host, port) tcp)
        ~jobs:(resolve_jobs jobs) ~mode ?propagation ~max_sessions ~max_frame
        ~max_queue ?default_deadline_ms:deadline ?default_budget:budget
        ~drain_ms ()
    in
    match Serve.Server.run cfg with
    | () -> ()
    | exception Unix.Unix_error (e, fn, arg) ->
      exit_err (Printf.sprintf "serve: %s %s: %s" fn arg (Unix.error_message e))
    | exception Invalid_argument m -> exit_err m
  in
  let max_sessions_arg =
    let doc = "Resident warm sessions before LRU eviction." in
    Arg.(value & opt int 64 & info [ "max-sessions" ] ~docv:"N" ~doc)
  in
  let max_frame_arg =
    let doc = "Frame payload byte limit." in
    Arg.(value & opt int Protocol.default_max_frame
         & info [ "max-frame" ] ~docv:"BYTES" ~doc)
  in
  let queue_arg =
    let doc =
      "Per-worker mailbox depth past which requests are rejected with \
       protocol status 4 (admission control)."
    in
    Arg.(value & opt int 64 & info [ "queue" ] ~docv:"N" ~doc)
  in
  let drain_arg =
    let doc =
      "Grace period for in-flight requests on SIGTERM / shutdown, after \
       which their guards are cancelled."
    in
    Arg.(value & opt float 5000. & info [ "drain-ms" ] ~docv:"MS" ~doc)
  in
  let doc =
    "Run the analysis daemon: warm incremental sessions over a \
     length-prefixed JSON protocol (load / edit / analyse / metrics / \
     close), with per-request deadlines and budgets, admission control, \
     LRU session eviction and graceful drain on SIGTERM.  Reply status \
     codes reuse the CLI exit-code taxonomy (0/1/3/4)."
  in
  Cmd.v (Cmd.info "serve" ~doc ~exits:guard_exits)
    Term.(const run $ serve_socket_arg $ serve_tcp_arg $ serve_host_arg
          $ jobs_arg $ mode_arg $ propagation_arg $ max_sessions_arg
          $ max_frame_arg $ queue_arg $ deadline_arg $ budget_arg $ drain_arg)

let client_addr socket tcp host =
  match socket, tcp with
  | Some path, None -> `Unix path
  | None, Some port -> `Tcp (host, port)
  | Some _, Some _ -> exit_err "client: pass either --socket or --tcp, not both"
  | None, None -> exit_err "client: pass --socket PATH or --tcp PORT"

(* Every client subcommand prints the full reply envelope (one JSON line:
   id, status, error?, body?) and exits with the reply's status code —
   the same 0/1/3/4 taxonomy the offline commands use. *)
let finish = function
  | Error e -> exit_err e
  | Ok (reply : Protocol.reply) ->
    print_endline (Protocol.Json.to_string (Protocol.reply_to_json reply));
    (match reply.Protocol.error with
    | Some (_, msg) -> Printf.eprintf "error: %s\n" msg
    | None -> ());
    exit (Client.exit_code reply)

let with_client socket tcp host f =
  match Client.connect (client_addr socket tcp host) with
  | Error e -> exit_err e
  | Ok c -> Fun.protect ~finally:(fun () -> Client.close c) (fun () -> finish (f c))

let session_arg =
  let doc = "Session id (as returned by $(b,load))." in
  Arg.(required & opt (some string) None & info [ "session" ] ~docv:"ID" ~doc)

let mode_wire_name = function
  | Engine.Hierarchical -> "hierarchical"
  | Engine.Flat_stream -> "flat-stream"
  | Engine.Flat_sem -> "flat-sem"

let client_cmd =
  let load_cmd =
    let spec_file_arg =
      let doc = "System description file to upload (S-expression format)." in
      Arg.(required & opt (some string) None
           & info [ "file" ] ~docv:"FILE" ~doc)
    in
    let run socket tcp host file mode deadline budget =
      let spec =
        try read_file file with Sys_error e -> exit_err e
      in
      with_client socket tcp host (fun c ->
        Client.load ?deadline_ms:deadline ?budget:budget
          ~mode:(mode_wire_name mode) c ~spec)
    in
    let doc =
      "Upload a spec and open a warm session; the reply body carries the \
       session id and the initial analysis outcomes."
    in
    Cmd.v (Cmd.info "load" ~doc ~exits:guard_exits)
      Term.(const run $ serve_socket_arg $ serve_tcp_arg $ serve_host_arg
            $ spec_file_arg $ mode_arg $ deadline_arg $ budget_arg)
  in
  let edit_cmd =
    let single kind s =
      match parse_axis_arg kind s with
      | name, [ v ] -> name, v
      | _ -> exit_err (kind ^ ": expected NAME=VALUE (a single value)")
    in
    let one kind ~docv ~doc =
      Arg.(value & opt_all string [] & info [ kind ] ~docv ~doc)
    in
    let run socket tcp host session periods cets task_prios frame_prios json
        deadline budget =
      let edits =
        List.map
          (fun s ->
            let source, period = single "--period" s in
            Space.Source_period { source; period })
          periods
        @ List.map
            (fun s ->
              let task, percent = single "--cet-scale" s in
              Space.Cet_scale { task; percent })
            cets
        @ List.map
            (fun s ->
              let task, priority = single "--task-priority" s in
              Space.Task_priority { task; priority })
            task_prios
        @ List.map
            (fun s ->
              let frame, priority = single "--frame-priority" s in
              Space.Frame_priority { frame; priority })
            frame_prios
        @
        match json with
        | None -> []
        | Some text -> begin
          match Explore.Wire.parse text with
          | Ok edits -> edits
          | Error e -> exit_err ("--json: " ^ e)
        end
      in
      if edits = [] then exit_err "edit: no edits given";
      with_client socket tcp host (fun c ->
        Client.edit ?deadline_ms:deadline ?budget:budget c ~session edits)
    in
    let doc =
      "Apply edits to a warm session; the reply body carries only the \
       re-analysed outcomes (plus reuse counters), not the full system."
    in
    Cmd.v (Cmd.info "edit" ~doc ~exits:guard_exits)
      Term.(const run $ serve_socket_arg $ serve_tcp_arg $ serve_host_arg
            $ session_arg
            $ one "period" ~docv:"SRC=V"
                ~doc:"Set a source's period (repeatable)."
            $ one "cet-scale" ~docv:"TASK=PCT"
                ~doc:"Scale a task's execution bounds by PCT% (repeatable)."
            $ one "task-priority" ~docv:"TASK=P"
                ~doc:"Set a task's priority (repeatable)."
            $ one "frame-priority" ~docv:"FRAME=P"
                ~doc:"Set a frame's priority (repeatable)."
            $ Arg.(value & opt (some string) None
                   & info [ "json" ] ~docv:"EDITS"
                       ~doc:"Raw edit list in the canonical JSON encoding \
                             (as printed by $(b,export)).")
            $ deadline_arg $ budget_arg)
  in
  let session_op name ~doc op =
    let run socket tcp host session deadline budget =
      with_client socket tcp host (fun c ->
        Client.request ?deadline_ms:deadline ?budget:budget c (op session))
    in
    Cmd.v (Cmd.info name ~doc ~exits:guard_exits)
      Term.(const run $ serve_socket_arg $ serve_tcp_arg $ serve_host_arg
            $ session_arg $ deadline_arg $ budget_arg)
  in
  let analyse_cmd =
    session_op "analyse"
      ~doc:"Full outcomes of the session's current system (single-flight \
            deduplicated across identical concurrent requests)."
      (fun session -> Protocol.Analyse { session })
  in
  let metrics_cmd =
    session_op "metrics"
      ~doc:"Per-session analysis counters plus a process telemetry snapshot."
      (fun session -> Protocol.Metrics { session })
  in
  let close_cmd =
    session_op "close" ~doc:"Close a session and free its warm state."
      (fun session -> Protocol.Close { session })
  in
  let plain_op name ~doc op =
    let run socket tcp host =
      with_client socket tcp host (fun c -> Client.request c op)
    in
    Cmd.v (Cmd.info name ~doc ~exits:guard_exits)
      Term.(const run $ serve_socket_arg $ serve_tcp_arg $ serve_host_arg)
  in
  let ping_cmd =
    plain_op "ping" ~doc:"Liveness probe; reports session and worker counts."
      Protocol.Ping
  in
  let shutdown_cmd =
    plain_op "shutdown" ~doc:"Ask the daemon to drain and exit."
      Protocol.Shutdown
  in
  let doc =
    "Talk to a running $(b,hem_tool serve) daemon.  Every subcommand \
     prints the reply envelope as one JSON line and exits with the \
     reply's protocol status — the same 0/1/3/4 code taxonomy as the \
     offline commands."
  in
  Cmd.group (Cmd.info "client" ~doc ~exits:guard_exits)
    [ load_cmd; edit_cmd; analyse_cmd; metrics_cmd; close_cmd; ping_cmd;
      shutdown_cmd ]

let () =
  let doc = "hierarchical event model analysis of the DATE'08 reference system" in
  let info = Cmd.info "hem_tool" ~version:"1.0.0" ~doc ~exits:guard_exits in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            analyse_cmd; convergence_cmd; profile_cmd; simulate_cmd;
            figure4_cmd; scaling_cmd; sweep_cmd; explore_cmd; export_cmd;
            gantt_cmd; headroom_cmd; data_age_cmd; verify_cmd; serve_cmd;
            client_cmd;
          ]))
