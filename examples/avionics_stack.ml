(* Every scheduler at once: sensors feed a mixed CAN frame (timer OR
   data-triggered), an EDF mission computer consumes the unpacked signals
   and AND-fuses two of them, a TDMA backbone forwards the results, and a
   round-robin display processor renders them.  Analysis, utilization
   report, data ages, and a simulation cross-check.

   Run with: dune exec examples/avionics_stack.exe *)

module Interval = Timebase.Interval
module Engine = Cpa_system.Engine
module Report = Cpa_system.Report
module Avionics = Scenarios.Avionics

let () =
  let spec = Avionics.spec () in
  match Engine.analyse ~mode:Engine.Hierarchical spec with
  | Error e ->
    Printf.printf "analysis failed: %s\n" (Guard.Error.to_string e)
  | Ok result ->
    Format.printf "Analysis (SPNP bus, EDF mission, TDMA backbone, RR display):@.";
    Report.print_outcomes Format.std_formatter result;
    Format.printf "@.Resource load:@.";
    List.iter
      (fun (resource, pct) -> Format.printf "  %-9s %5.1f%%@." resource pct)
      (Report.utilizations result);
    Format.printf "@.Sensor data ages at the mission computer:@.";
    List.iter
      (fun (frame, signal) ->
        match Report.signal_data_age result ~frame ~signal with
        | Some age ->
          Format.printf "  %s/%s: %s@." frame signal (Timebase.Time.to_string age)
        | None -> Format.printf "  %s/%s: unbounded@." frame signal)
      [ "FS", "sig_nav"; "FS", "sig_imu"; "FR", "sig_radio" ];
    (* end-to-end: navigation update to rendered frame *)
    (match
       Report.path_latency result [ "FS"; "nav_proc"; "fusion"; "uplink_f"; "render" ]
     with
     | Some latency ->
       Format.printf "@.Navigation-to-display latency bound: %a@." Interval.pp
         latency
     | None -> Format.printf "@.path unbounded@.");
    (* cross-check with the simulator *)
    match
      Des.Simulator.run ~cet_policy:Des.Simulator.Uniform ~seed:7
        ~generators:(Avionics.generators ()) ~horizon:400_000 spec
    with
    | Error e -> Printf.printf "simulation failed: %s\n" e
    | Ok trace ->
      Format.printf "@.Simulation (400k units, uniform execution times):@.";
      Format.printf "  %-10s %8s %6s %6s %8s@." "element" "count" "worst"
        "bound" "p99";
      List.iter
        (fun name ->
          match
            Des.Trace.response_stats trace name, Engine.response result name
          with
          | Some stats, Some bound ->
            Format.printf "  %-10s %8d %6d %6d %8d@." name
              stats.Des.Trace.count stats.Des.Trace.worst (Interval.hi bound)
              stats.Des.Trace.percentile_99
          | _ -> Format.printf "  %-10s (no data)@." name)
        Avionics.all_elements
