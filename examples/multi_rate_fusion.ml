(* Multi-rate sensor fusion: several sensors at different rates are
   OR-combined into one fusion task, the result is shaped to a minimum
   distance, forwarded over a TDMA backbone, and consumed by a
   round-robin-scheduled logger CPU.  Exercises the stream algebra and
   every local analysis beyond the paper's SPP/SPNP pair.

   Run with: dune exec examples/multi_rate_fusion.exe *)

module Time = Timebase.Time
module Interval = Timebase.Interval
module Stream = Event_model.Stream
module Combine = Event_model.Combine
module Shaper = Event_model.Shaper
module Spec = Cpa_system.Spec
module Engine = Cpa_system.Engine
module Report = Cpa_system.Report

let () =
  (* stream-level view: the fused activation and its shaped version *)
  let sensors =
    [
      Stream.periodic ~name:"lidar" ~period:100;
      Stream.periodic_jitter ~name:"radar" ~period:150 ~jitter:30 ();
      Stream.sporadic ~name:"events" ~d_min:400;
    ]
  in
  let fused = Combine.or_combine ~name:"fused" sensors in
  Format.printf "Fused sensor stream:@.%a@." Stream.pp fused;
  let shaped = Shaper.enforce_min_distance ~d:40 fused in
  Format.printf "@.After a d=40 shaper:@.%a@." Stream.pp shaped;
  Format.printf "@.Shaper delay bound: %s@."
    (Time.to_string (Shaper.delay_bound ~d:40 fused));

  (* system-level view: fusion on an SPP CPU, a TDMA backbone link, and a
     round-robin logger CPU *)
  let system =
    Spec.make
      ~sources:
        [
          "lidar", List.nth sensors 0;
          "radar", List.nth sensors 1;
          "events", List.nth sensors 2;
        ]
      ~resources:
        [
          { Spec.res_name = "fusion_cpu"; scheduler = Spec.Spp; backend = Spec.Cpa };
          { Spec.res_name = "backbone"; scheduler = Spec.Tdma; backend = Spec.Cpa };
          { Spec.res_name = "logger_cpu"; scheduler = Spec.Round_robin; backend = Spec.Cpa };
        ]
      ~tasks:
        [
          Spec.task ~name:"fuse" ~resource:"fusion_cpu"
            ~cet:(Interval.make ~lo:10 ~hi:18) ~priority:1
            ~activation:
              (Spec.Or_of
                 [
                   Spec.From_source "lidar";
                   Spec.From_source "radar";
                   Spec.From_source "events";
                 ])
            ();
          Spec.task ~name:"uplink" ~resource:"backbone"
            ~cet:(Interval.make ~lo:4 ~hi:6) ~priority:1 ~service:8
            ~activation:(Spec.From_output "fuse") ();
          Spec.task ~name:"telemetry" ~resource:"backbone"
            ~cet:(Interval.point 3) ~priority:2 ~service:4
            ~activation:(Spec.From_source "events") ();
          Spec.task ~name:"log" ~resource:"logger_cpu"
            ~cet:(Interval.make ~lo:5 ~hi:9) ~priority:1 ~service:5
            ~activation:(Spec.From_output "uplink") ();
          Spec.task ~name:"archive" ~resource:"logger_cpu"
            ~cet:(Interval.point 12) ~priority:2 ~service:5
            ~activation:(Spec.From_output "telemetry") ();
        ]
      ()
  in
  match Engine.analyse system with
  | Error e ->
    Printf.printf "analysis failed: %s\n" (Guard.Error.to_string e)
  | Ok result ->
    Format.printf "@.System analysis:@.";
    Report.print_outcomes Format.std_formatter result;
    (match Report.path_latency result [ "fuse"; "uplink"; "log" ] with
     | Some latency ->
       Format.printf "@.Sensor-to-log latency bound: %a@." Interval.pp latency
     | None -> Format.printf "@.Path unbounded@.")
