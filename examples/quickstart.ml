(* Quickstart: model a two-task CPU fed by a periodic source and a CAN
   frame, run the compositional analysis, and inspect event streams.

   Run with: dune exec examples/quickstart.exe *)

module Interval = Timebase.Interval
module Stream = Event_model.Stream
module Spec = Cpa_system.Spec
module Engine = Cpa_system.Engine
module Report = Cpa_system.Report

let () =
  (* 1. Describe the system: one source, one CPU, two tasks in a chain. *)
  let system =
    Spec.make
      ~sources:[ "sensor", Stream.periodic ~name:"sensor" ~period:100 ]
      ~resources:[ { Spec.res_name = "ecu"; scheduler = Spec.Spp; backend = Spec.Cpa } ]
      ~tasks:
        [
          Spec.task ~name:"filter" ~resource:"ecu"
            ~cet:(Interval.make ~lo:8 ~hi:12) ~priority:1
            ~activation:(Spec.From_source "sensor") ();
          Spec.task ~name:"control" ~resource:"ecu"
            ~cet:(Interval.make ~lo:15 ~hi:25) ~priority:2
            ~activation:(Spec.From_output "filter") ();
        ]
      ()
  in
  (* 2. Run the global analysis to the fixed point. *)
  match Engine.analyse system with
  | Error e ->
    Printf.printf "analysis failed: %s\n" (Guard.Error.to_string e)
  | Ok result ->
    Format.printf "Response times:@.";
    Report.print_outcomes Format.std_formatter result;
    (* 3. Inspect the event stream activating the control task: the
       filter's response-time jitter has been propagated into it. *)
    let control_input = result.Engine.resolve (Spec.From_output "filter") in
    Format.printf "@.Activation stream of 'control':@.%a@." Stream.pp
      control_input;
    (* 4. End-to-end latency along the chain. *)
    (match Report.path_latency result [ "filter"; "control" ] with
     | Some latency ->
       Format.printf "@.Sensor-to-actuation latency: %a@." Interval.pp latency
     | None -> Format.printf "@.Path unbounded@.")
