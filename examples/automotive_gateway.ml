(* The paper's evaluation system (section 6, figure 2) end to end:
   four sources feed an AUTOSAR-style COM layer; frames cross a CAN bus;
   three tasks on CPU1 consume the unpacked signals.

   The example runs both analysis modes, prints the Table-3 comparison,
   and cross-checks the hierarchical bounds against a discrete-event
   simulation of the same system.

   Run with: dune exec examples/automotive_gateway.exe *)

module Interval = Timebase.Interval
module Count = Timebase.Count
module Stream = Event_model.Stream
module Spec = Cpa_system.Spec
module Engine = Cpa_system.Engine
module Report = Cpa_system.Report
module Paper = Scenarios.Paper_system

let () =
  match Paper.analyse_both () with
  | Error e ->
    Printf.printf "analysis failed: %s\n" (Guard.Error.to_string e)
  | Ok (flat, hem) ->
    Format.printf "Flat baseline (standard event models):@.";
    Report.print_outcomes Format.std_formatter flat;
    Format.printf "@.Hierarchical event models:@.";
    Report.print_outcomes Format.std_formatter hem;
    Format.printf "@.Worst-case response-time comparison (paper, Table 3):@.";
    Report.pp_comparison Format.std_formatter
      (Report.compare_results ~baseline:flat ~improved:hem
         ~names:Paper.cpu_tasks);
    (* the unpacked activation stream of T3: the pending signal S3 *)
    let t3_input =
      hem.Engine.resolve (Spec.From_signal { frame = "F1"; signal = "sig3" })
    in
    Format.printf "@.Unpacked activation stream of T3:@.%a@." Stream.pp t3_input;
    (* simulate the same system and compare observations to bounds *)
    let generators =
      [
        "S1", Des.Gen.periodic ~period:250 ();
        "S2", Des.Gen.periodic ~phase:40 ~period:450 ();
        "S3", Des.Gen.periodic ~phase:10 ~period:Paper.s3_period ();
        "S4", Des.Gen.periodic ~phase:70 ~period:400 ();
      ]
    in
    (match Des.Simulator.run ~generators ~horizon:1_000_000 (Paper.spec ()) with
     | Error e -> Printf.printf "simulation failed: %s\n" e
     | Ok trace ->
       Format.printf "@.Simulation cross-check (1M time units):@.";
       List.iter
         (fun name ->
           match
             Des.Trace.worst_response trace name, Engine.response hem name
           with
           | Some observed, Some bound ->
             Format.printf "  %-4s observed %4d <= bound %4d (%d completions)@."
               name observed (Interval.hi bound)
               (Des.Trace.response_count trace name)
           | _ -> Format.printf "  %-4s no observation@." name)
         ("F1" :: "F2" :: Paper.cpu_tasks))
