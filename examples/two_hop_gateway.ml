(* Two transport hops: signals are packed into a frame on CAN1, unpacked
   at a gateway, processed, re-packed into a backbone frame on CAN2, and
   unpacked again at the final receivers.  The per-signal timing that the
   hierarchical event models preserve compounds across hops: the flat
   baseline degrades at every re-packing.

   Run with: dune exec examples/two_hop_gateway.exe *)

module Interval = Timebase.Interval
module Engine = Cpa_system.Engine
module Report = Cpa_system.Report
module Gateway = Scenarios.Gateway

let () =
  let spec = Gateway.spec () in
  match
    ( Engine.analyse ~mode:Engine.Flat_sem spec,
      Engine.analyse ~mode:Engine.Hierarchical spec )
  with
  | Error e, _ | _, Error e ->
    Printf.printf "analysis failed: %s\n" (Guard.Error.to_string e)
  | Ok flat, Ok hem ->
    Format.printf "Hierarchical analysis:@.";
    Report.print_outcomes Format.std_formatter hem;
    Format.printf "@.Receivers, flat vs hierarchical (gap compounds per hop):@.";
    Report.pp_comparison Format.std_formatter
      (Report.compare_results ~baseline:flat ~improved:hem
         ~names:Gateway.receivers);
    (match Report.path_latency hem Gateway.path_s1 with
     | Some latency ->
       Format.printf
         "@.@.End-to-end latency of signal 1 (frame G1 -> gateway -> frame B1 \
          -> D1): %a@."
         Interval.pp latency
     | None -> Format.printf "@.path unbounded@.");
    (* cross-check with the simulator and export a VCD for inspection *)
    let generators =
      [
        "S1", Des.Gen.periodic ~period:250 ();
        "S2", Des.Gen.periodic ~phase:100 ~period:450 ();
      ]
    in
    match Des.Simulator.run ~generators ~horizon:500_000 spec with
    | Error e -> Printf.printf "simulation failed: %s\n" e
    | Ok trace ->
      Format.printf "@.Observed worst responses (500k units):@.";
      List.iter
        (fun name ->
          match Des.Trace.worst_response trace name, Engine.response hem name with
          | Some obs, Some bound ->
            Format.printf "  %-4s %4d <= %4d@." name obs (Interval.hi bound)
          | _ -> ())
        [ "G1"; "GW1"; "GW2"; "B1"; "D1"; "D2" ];
      let vcd =
        Des.Export.vcd trace
          ~streams:
            [
              Des.Port.source "S1";
              Des.Port.frame "G1";
              Des.Port.signal ~frame:"B1" ~signal:"gsig1";
              Des.Port.task_output "D1";
            ]
      in
      let path = Filename.temp_file "gateway" ".vcd" in
      let oc = open_out path in
      output_string oc vcd;
      close_out oc;
      Format.printf "@.VCD trace written to %s (open with GTKWave)@." path
