(* Design-space exploration with sensitivity analysis: how much can each
   receiving task of the paper's system grow, and how fast may the
   pending source run, before the design stops being schedulable — and
   how much of that headroom exists only thanks to the hierarchical
   event models.

   Run with: dune exec examples/design_headroom.exe *)

module Interval = Timebase.Interval
module Engine = Cpa_system.Engine
module Sensitivity = Cpa_system.Sensitivity
module Paper = Scenarios.Paper_system

let headroom mode task =
  match Sensitivity.max_cet_scale ~mode (Paper.spec ()) ~task with
  | Some pct -> Printf.sprintf "%d%%" pct
  | None -> "none"

let () =
  Format.printf "Execution-time headroom per task (largest schedulable CET):@.";
  Format.printf "  %-6s %14s %14s@." "task" "flat mode" "hierarchical";
  List.iter
    (fun task ->
      Format.printf "  %-6s %14s %14s@." task
        (headroom Engine.Flat_sem task)
        (headroom Engine.Hierarchical task))
    Paper.cpu_tasks;

  (* fastest sustainable pending source *)
  let rebuild period = Paper.spec ~s3_period:period () in
  (match
     Sensitivity.min_source_period ~mode:Engine.Hierarchical ~rebuild ~lo:1
       ~hi:1000 ()
   with
   | Some p -> Format.printf "@.Fastest sustainable S3 period (HEM): %d@." p
   | None -> Format.printf "@.S3 unsustainable at any period <= 1000@.");
  (match
     Sensitivity.min_source_period ~mode:Engine.Flat_sem ~rebuild ~lo:1
       ~hi:1000 ()
   with
   | Some p -> Format.printf "Fastest sustainable S3 period (flat): %d@." p
   | None -> Format.printf "S3 unsustainable at any period <= 1000 (flat)@.");

  (* queue dimensioning for the frames *)
  Format.printf "@.Transmit queue bounds (see bench 'buffers' for details):@.";
  let hem =
    match Engine.analyse ~mode:Engine.Hierarchical (Paper.spec ()) with
    | Ok r -> r
    | Error e -> failwith (Guard.Error.to_string e)
  in
  List.iter
    (fun frame ->
      match Engine.response hem frame with
      | Some r -> Format.printf "  %-4s R = %a@." frame Interval.pp r
      | None -> Format.printf "  %-4s unbounded@." frame)
    Paper.frames
