(* Sensitivity searches: the serial bisections of Cpa_system.Sensitivity
   and their pool-parallel multisection re-implementation in
   Explore.Sensitivity must return identical answers at every job count
   (monotone predicate => unique threshold), and the answers must be
   genuine thresholds: feasible at the result, infeasible one step
   beyond. *)

module Spec = Cpa_system.Spec
module Engine = Cpa_system.Engine
module Serial = Cpa_system.Sensitivity
module Parallel = Explore.Sensitivity
module Paper = Scenarios.Paper_system

let limit = 4_000

let test_schedulable () =
  Alcotest.(check bool) "paper system schedulable" true
    (Serial.schedulable (Paper.spec ()));
  Alcotest.(check bool) "overloaded when T3 blown up" false
    (Serial.schedulable
       (Serial.scale_cet (Paper.spec ()) ~task:"T3" ~percent:limit))

let test_max_cet_scale_is_threshold () =
  match
    Serial.max_cet_scale ~limit_percent:limit (Paper.spec ()) ~task:"T3"
  with
  | None -> Alcotest.fail "expected a feasible scale"
  | Some best ->
    Alcotest.(check bool) "at least current size" true (best >= 100);
    Alcotest.(check bool) "strictly below the limit" true (best < limit);
    Alcotest.(check bool) "feasible at the result" true
      (Serial.schedulable
         (Serial.scale_cet (Paper.spec ()) ~task:"T3" ~percent:best));
    Alcotest.(check bool) "infeasible one step beyond" false
      (Serial.schedulable
         (Serial.scale_cet (Paper.spec ()) ~task:"T3" ~percent:(best + 1)))

let test_parallel_cet_agrees_with_serial () =
  let serial =
    Serial.max_cet_scale ~limit_percent:limit (Paper.spec ()) ~task:"T3"
  in
  List.iter
    (fun jobs ->
      Alcotest.(check (option int))
        (Printf.sprintf "jobs=%d" jobs)
        serial
        (Parallel.max_cet_scale ~jobs ~limit_percent:limit
           ~build:(fun () -> Paper.spec ())
           ~task:"T3" ()))
    [ 1; 3 ]

let test_parallel_cet_unschedulable_base () =
  (* a system already infeasible at 100 % must report None *)
  let build () = Serial.scale_cet (Paper.spec ()) ~task:"T3" ~percent:limit in
  Alcotest.(check (option int)) "None when infeasible at 100%" None
    (Parallel.max_cet_scale ~jobs:2 ~limit_percent:200 ~build ~task:"T3" ())

let test_min_source_period_agrees () =
  let rebuild period = Paper.spec ~s3_period:period () in
  let serial = Serial.min_source_period ~rebuild ~lo:10 ~hi:2000 () in
  (match serial with
  | None -> Alcotest.fail "expected a feasible period"
  | Some p ->
    Alcotest.(check bool) "feasible at the result" true
      (Serial.schedulable (rebuild p));
    if p > 10 then
      Alcotest.(check bool) "infeasible one step below" false
        (Serial.schedulable (rebuild (p - 1))));
  List.iter
    (fun jobs ->
      Alcotest.(check (option int))
        (Printf.sprintf "jobs=%d" jobs)
        serial
        (Parallel.min_source_period ~jobs ~rebuild ~lo:10 ~hi:2000 ()))
    [ 1; 3 ]

let test_min_source_period_all_infeasible () =
  (* with T3 blown up no period in the range helps *)
  let rebuild period =
    Serial.scale_cet (Paper.spec ~s3_period:period ()) ~task:"T3"
      ~percent:limit
  in
  Alcotest.(check (option int)) "serial" None
    (Serial.min_source_period ~rebuild ~lo:100 ~hi:400 ());
  Alcotest.(check (option int)) "parallel" None
    (Parallel.min_source_period ~jobs:2 ~rebuild ~lo:100 ~hi:400 ())

let test_flat_mode_agrees () =
  (* mode threading: the flat analysis has a different (smaller)
     threshold, and serial and parallel still agree on it *)
  let serial =
    Serial.max_cet_scale ~mode:Engine.Flat_sem ~limit_percent:limit
      (Paper.spec ()) ~task:"T1"
  in
  Alcotest.(check (option int)) "flat mode, jobs=3" serial
    (Parallel.max_cet_scale ~jobs:3 ~mode:Engine.Flat_sem ~limit_percent:limit
       ~build:(fun () -> Paper.spec ())
       ~task:"T1" ())

let () =
  Alcotest.run "sensitivity"
    [
      ( "serial",
        [
          Alcotest.test_case "schedulable" `Quick test_schedulable;
          Alcotest.test_case "cet threshold" `Quick
            test_max_cet_scale_is_threshold;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "cet agrees with serial" `Quick
            test_parallel_cet_agrees_with_serial;
          Alcotest.test_case "infeasible base" `Quick
            test_parallel_cet_unschedulable_base;
          Alcotest.test_case "period agrees with serial" `Quick
            test_min_source_period_agrees;
          Alcotest.test_case "period all infeasible" `Quick
            test_min_source_period_all_infeasible;
          Alcotest.test_case "flat mode" `Quick test_flat_mode_agrees;
        ] );
    ]
