(* Cross-module soundness properties: the stream operators are validated
   against explicit event traces — OR-combination against the literal
   superposition of concrete arrival sequences, the task output operation
   against a simulated bounded-response server, and SEM fitting against
   the curve it approximates.  These complement the equation-level brute
   force of test_combine.ml with trace-level evidence. *)

module Time = Timebase.Time
module Count = Timebase.Count
module Interval = Timebase.Interval
module Stream = Event_model.Stream
module Combine = Event_model.Combine
module Task_op = Event_model.Task_op
module Sem = Event_model.Sem

(* concrete arrival sequences of periodic sources with phases *)
let trace_of ~phase ~period ~horizon =
  let rec go t acc = if t > horizon then List.rev acc else go (t + period) (t :: acc) in
  go phase []

let merged traces = List.concat traces |> List.sort compare

let observed_delta_min times n =
  let arr = Array.of_list times in
  let len = Array.length arr in
  if len < n then None
  else begin
    let best = ref max_int in
    for i = 0 to len - n do
      best := Stdlib.min !best (arr.(i + n - 1) - arr.(i))
    done;
    Some !best
  end

let observed_eta_plus times dt =
  let arr = Array.of_list times in
  let len = Array.length arr in
  let rec scan i j best =
    if j >= len then best
    else if arr.(j) - arr.(i) < dt then scan i (j + 1) (Stdlib.max best (j - i + 1))
    else scan (i + 1) j best
  in
  if len = 0 || dt <= 0 then 0 else scan 0 0 0

(* ------------------------------------------------------------------ *)
(* OR-combination vs superposition *)

let arb_phased_sources =
  QCheck.list_of_size (QCheck.Gen.int_range 2 4)
    (QCheck.pair (QCheck.int_range 20 200) (QCheck.int_range 0 199))

let prop_or_sound_for_superposition =
  QCheck.Test.make ~name:"or_combine bounds every superposition" ~count:60
    (QCheck.pair arb_phased_sources (QCheck.int_range 2 8))
    (fun (sources, n) ->
      let sources =
        List.map
          (fun (p, ph) -> Stdlib.max 20 p, Stdlib.max 0 ph)
          sources
      in
      QCheck.assume (List.length sources >= 2);
      let horizon = 20_000 in
      let streams =
        List.mapi
          (fun i (p, _) ->
            Stream.periodic ~name:(Printf.sprintf "s%d" i) ~period:p)
          sources
      in
      let combined = Combine.or_combine streams in
      let times =
        merged
          (List.map
             (fun (p, ph) -> trace_of ~phase:ph ~period:p ~horizon)
             sources)
      in
      (* analytic minimum distance lower-bounds every observed one *)
      let delta_ok =
        match observed_delta_min times n, Stream.delta_min combined n with
        | Some observed, Time.Fin bound -> bound <= observed
        | Some _, Time.Inf -> false
        | None, _ -> true
      in
      (* analytic eta+ upper-bounds the observed count in sample windows *)
      let eta_ok =
        List.for_all
          (fun dt ->
            match Stream.eta_plus combined dt with
            | Count.Fin bound -> observed_eta_plus times dt <= bound
            | Count.Inf -> true)
          [ 10; 50; 100; 500; 1000 ]
      in
      delta_ok && eta_ok)

(* ------------------------------------------------------------------ *)
(* Task_op.output vs a bounded-response server *)

(* Serve the arrivals in order: each job finishes within [r-, r+] of its
   activation and at least r- after its predecessor (a non-reordering
   server, the semantics Theta_tau models).  When random jitter would
   push a completion past its own r+ (because the predecessor already
   used up the slack), the jitter is dropped — keeping the trace inside
   the modeled class. *)
let serve ~r_minus ~r_plus ~rng times =
  let rec go prev_completion = function
    | [] -> []
    | a :: rest ->
      let base = Stdlib.max (a + r_minus) (prev_completion + r_minus) in
      let slack = Stdlib.max 0 (a + r_plus - base) in
      let completion = base + Random.State.int rng (slack + 1) in
      completion :: go completion rest
  in
  go min_int times

let prop_task_output_sound =
  QCheck.Test.make ~name:"Theta_tau bounds every served trace" ~count:60
    (QCheck.pair
       (QCheck.triple (QCheck.int_range 20 150) (QCheck.int_range 1 15)
          (QCheck.int_range 0 30))
       (QCheck.int_range 0 10_000))
    (fun ((period, r_minus, spread), seed) ->
      let period = Stdlib.max 20 period in
      let r_minus = Stdlib.max 1 r_minus in
      let spread = Stdlib.max 0 spread in
      let r_plus = r_minus + spread in
      QCheck.assume (r_plus <= period);
      let rng = Random.State.make [| seed |] in
      let input = Stream.periodic ~name:"in" ~period in
      let output =
        Task_op.output ~response:(Interval.make ~lo:r_minus ~hi:r_plus) input
      in
      let arrivals = trace_of ~phase:0 ~period ~horizon:20_000 in
      let completions = serve ~r_minus ~r_plus ~rng arrivals in
      List.for_all
        (fun n ->
          match observed_delta_min completions n, Stream.delta_min output n with
          | Some observed, Time.Fin bound -> bound <= observed
          | Some _, Time.Inf -> false
          | None, _ -> true)
        [ 2; 3; 5; 10 ])

let prop_task_output_sound_bursty =
  (* same, with an OR-combined bursty input: simultaneous arrivals get
     serialized by the server at r-; the recurrence of Theta_tau must
     cover that *)
  QCheck.Test.make ~name:"Theta_tau bounds bursty served traces" ~count:40
    (QCheck.pair
       (QCheck.pair (QCheck.int_range 50 200) (QCheck.int_range 60 250))
       (QCheck.int_range 0 10_000))
    (fun ((p1, p2), seed) ->
      let p1 = Stdlib.max 50 p1 and p2 = Stdlib.max 60 p2 in
      let rng = Random.State.make [| seed |] in
      let r_minus = 3 and r_plus = 9 in
      let input =
        Combine.or_combine
          [
            Stream.periodic ~name:"a" ~period:p1;
            Stream.periodic ~name:"b" ~period:p2;
          ]
      in
      let output =
        Task_op.output ~response:(Interval.make ~lo:r_minus ~hi:r_plus) input
      in
      let arrivals =
        merged
          [
            trace_of ~phase:0 ~period:p1 ~horizon:30_000;
            trace_of ~phase:0 ~period:p2 ~horizon:30_000;
          ]
      in
      let completions = serve ~r_minus ~r_plus ~rng arrivals in
      List.for_all
        (fun n ->
          match observed_delta_min completions n, Stream.delta_min output n with
          | Some observed, Time.Fin bound -> bound <= observed
          | Some _, Time.Inf -> false
          | None, _ -> true)
        [ 2; 3; 4; 6 ])

(* ------------------------------------------------------------------ *)
(* SEM fit vs the fitted curve *)

let prop_sem_fit_eta_dominates =
  QCheck.Test.make ~name:"SEM fit arrival bound dominates the stream's"
    ~count:40
    (QCheck.pair
       (QCheck.pair (QCheck.int_range 50 300) (QCheck.int_range 60 400))
       (QCheck.int_range 1 2000))
    (fun ((p1, p2), dt) ->
      let p1 = Stdlib.max 50 p1 and p2 = Stdlib.max 60 p2 in
      let stream =
        Combine.or_combine
          [
            Stream.periodic ~name:"a" ~period:p1;
            Stream.periodic ~name:"b" ~period:p2;
          ]
      in
      let fitted = Sem.fit ~horizon:128 stream in
      (* valid within the span the fit sampled *)
      QCheck.assume (dt < 50 * 64);
      match Stream.eta_plus stream dt, Sem.eta_plus fitted dt with
      | Count.Fin exact, Count.Fin approx -> approx >= exact
      | _, Count.Inf -> true
      | Count.Inf, Count.Fin _ -> false)

(* ------------------------------------------------------------------ *)
(* pack + inner update vs a hand-rolled COM trace *)

let prop_pending_inner_sound =
  (* simulate the register/frame protocol directly (without the full DES)
     and compare pending delivery distances against eq. (7) *)
  QCheck.Test.make ~name:"eq. 7 bounds pending deliveries" ~count:60
    (QCheck.pair
       (QCheck.triple (QCheck.int_range 40 200) (QCheck.int_range 100 800)
          (QCheck.int_range 0 150))
       (QCheck.int_range 0 150))
    (fun ((p_trig, p_pend, phase_t), phase_p) ->
      let p_trig = Stdlib.max 40 p_trig and p_pend = Stdlib.max 100 p_pend in
      let horizon = 50_000 in
      let triggers = trace_of ~phase:(Stdlib.max 0 phase_t) ~period:p_trig ~horizon in
      (* drop writes before the first trigger: the model assumes the
         frame pattern has been running forever (steady state), so a
         startup gap larger than delta_plus_out 2 would be an artifact *)
      let first_trigger = List.nth triggers 0 in
      let writes =
        trace_of ~phase:(Stdlib.max 0 phase_p) ~period:p_pend ~horizon
        |> List.filter (fun w -> w >= first_trigger)
      in
      (* each write is delivered by the first trigger at or after it, if
         no newer write precedes that trigger (register overwrite) *)
      let deliveries =
        List.filter_map
          (fun w ->
            let next_trigger = List.find_opt (fun t -> t >= w) triggers in
            let overwritten =
              List.exists
                (fun w' ->
                  w' > w
                  && (match next_trigger with
                      | Some t -> w' <= t
                      | None -> true))
                writes
            in
            if overwritten then None else next_trigger)
          writes
        |> List.sort_uniq compare
      in
      let h =
        Hem.Pack.pack
          [
            Hem.Pack.input "t" (Stream.periodic ~name:"t" ~period:p_trig);
            Hem.Pack.input ~kind:Hem.Model.Pending "p"
              (Stream.periodic ~name:"p" ~period:p_pend);
          ]
      in
      let inner = Hem.Deconstruct.unpack_label h "p" in
      List.for_all
        (fun n ->
          match observed_delta_min deliveries n, Stream.delta_min inner n with
          | Some observed, Time.Fin bound -> bound <= observed
          | Some _, Time.Inf -> false
          | None, _ -> true)
        [ 2; 3; 5 ])

(* ------------------------------------------------------------------ *)
(* compact curve backend vs closure twins

   The standard constructors now build array/periodic-tail curves; these
   properties pin them point-for-point to streams built from the plain
   closure formulas — directly, through OR/AND combination, and through a
   packed hierarchy. *)

let closure_pj ~name ~period ~jitter ~d_min =
  Stream.make ~name
    ~delta_min:(fun n ->
      Time.Fin (Stdlib.max ((n - 1) * d_min) (((n - 1) * period) - jitter)))
    ~delta_plus:(fun n -> Time.Fin (((n - 1) * period) + jitter))

let streams_agree ?(max_n = 130) ?(dts = [ 1; 7; 50; 99; 500; 1234; 9999 ]) a b =
  let ok = ref true in
  for n = 0 to max_n do
    if Stream.delta_min a n <> Stream.delta_min b n then ok := false;
    if Stream.delta_plus a n <> Stream.delta_plus b n then ok := false
  done;
  List.iter
    (fun dt ->
      if Stream.eta_plus a dt <> Stream.eta_plus b dt then ok := false;
      if Stream.eta_minus a dt <> Stream.eta_minus b dt then ok := false)
    dts;
  !ok

let arb_pj =
  QCheck.triple (QCheck.int_range 20 300) (QCheck.int_range 0 400)
    (QCheck.int_range 1 19)

let pj_of (period, jitter, d_min) =
  let period = Stdlib.max 20 period in
  let jitter = Stdlib.max 0 jitter in
  let d_min = Stdlib.min (Stdlib.max 1 d_min) period in
  period, jitter, d_min

let prop_compact_sem_matches_closure =
  QCheck.Test.make ~name:"compact SEM stream = closure twin" ~count:100 arb_pj
    (fun params ->
      let period, jitter, d_min = pj_of params in
      let compact =
        Stream.periodic_jitter ~name:"c" ~period ~jitter ~d_min ()
      in
      let via_sem =
        Sem.to_stream (Sem.make ~period ~jitter ~d_min ())
      in
      let twin = closure_pj ~name:"t" ~period ~jitter ~d_min in
      (* the optimisation must actually be active on the compact path *)
      Event_model.Curve.backend (Stream.delta_min_curve compact) = `Periodic
      && streams_agree compact twin
      && streams_agree via_sem twin)

let prop_compact_burst_matches_closure =
  QCheck.Test.make ~name:"compact burst stream = closure twin" ~count:100
    (QCheck.triple (QCheck.int_range 100 600) (QCheck.int_range 2 6)
       (QCheck.int_range 1 20))
    (fun (period, burst, d_min) ->
      let burst = Stdlib.max 2 burst in
      let d_min = Stdlib.max 1 d_min in
      let period = Stdlib.max (((burst - 1) * d_min) + 1) period in
      (* event i of the deterministic trace, for both extremal phasings *)
      let pos i = ((i / burst) * period) + (i mod burst * d_min) in
      let dist reduce n =
        if n <= 1 then Time.zero
        else begin
          let best = ref (pos (n - 1) - pos 0) in
          for s = 1 to burst - 1 do
            best := reduce !best (pos (s + n - 1) - pos s)
          done;
          Time.Fin !best
        end
      in
      let compact = Stream.periodic_burst ~name:"c" ~period ~burst ~d_min in
      let twin =
        Stream.make ~name:"t" ~delta_min:(dist Stdlib.min)
          ~delta_plus:(dist Stdlib.max)
      in
      Event_model.Curve.backend (Stream.delta_min_curve compact) = `Periodic
      && streams_agree compact twin)

let prop_compact_combine_matches_closure =
  QCheck.Test.make ~name:"OR/AND of compact streams = OR/AND of twins"
    ~count:60 (QCheck.pair arb_pj arb_pj)
    (fun (pa, pb) ->
      let p1, j1, d1 = pj_of pa and p2, j2, d2 = pj_of pb in
      let compact =
        [
          Stream.periodic_jitter ~name:"a" ~period:p1 ~jitter:j1 ~d_min:d1 ();
          Stream.periodic_jitter ~name:"b" ~period:p2 ~jitter:j2 ~d_min:d2 ();
        ]
      in
      let twins =
        [
          closure_pj ~name:"a" ~period:p1 ~jitter:j1 ~d_min:d1;
          closure_pj ~name:"b" ~period:p2 ~jitter:j2 ~d_min:d2;
        ]
      in
      streams_agree ~max_n:60
        (Combine.or_combine compact)
        (Combine.or_combine twins)
      && streams_agree ~max_n:60
           (Combine.and_combine compact)
           (Combine.and_combine twins))

let prop_compact_pack_matches_closure =
  QCheck.Test.make ~name:"packed hierarchy of compact streams = of twins"
    ~count:40 (QCheck.pair arb_pj arb_pj)
    (fun (pa, pb) ->
      let p1, j1, d1 = pj_of pa and p2, j2, d2 = pj_of pb in
      let pack mk =
        Hem.Pack.pack
          [
            Hem.Pack.input "t" (mk ~name:"t" ~period:p1 ~jitter:j1 ~d_min:d1);
            Hem.Pack.input ~kind:Hem.Model.Pending "p"
              (mk ~name:"p" ~period:p2 ~jitter:j2 ~d_min:d2);
          ]
      in
      let h_compact =
        pack (fun ~name ~period ~jitter ~d_min ->
          Stream.periodic_jitter ~name ~period ~jitter ~d_min ())
      in
      let h_twin = pack (fun ~name ~period ~jitter ~d_min ->
        closure_pj ~name ~period ~jitter ~d_min)
      in
      streams_agree ~max_n:60
        (Hem.Model.outer h_compact)
        (Hem.Model.outer h_twin)
      && List.for_all
           (fun label ->
             streams_agree ~max_n:60
               (Hem.Deconstruct.unpack_label h_compact label)
               (Hem.Deconstruct.unpack_label h_twin label))
           [ "t"; "p" ])

let () =
  Alcotest.run "properties"
    [
      ( "trace-level soundness",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_or_sound_for_superposition;
            prop_task_output_sound;
            prop_task_output_sound_bursty;
            prop_sem_fit_eta_dominates;
            prop_pending_inner_sound;
          ] );
      ( "compact backend agreement",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_compact_sem_matches_closure;
            prop_compact_burst_matches_closure;
            prop_compact_combine_matches_closure;
            prop_compact_pack_matches_closure;
          ] );
    ]
