(* Tests for the real-time-calculus substrate: numeric curves, (min,+)
   operations, greedy processing components, and cross-validation of the
   RTC fixed-priority chain against the busy-window analysis and the
   simulator. *)

module Interval = Timebase.Interval
module Stream = Event_model.Stream
module Curve = Rtc.Curve
module Workload = Rtc.Workload
module Gpc = Rtc.Gpc

(* ------------------------------------------------------------------ *)
(* curves *)

let test_linear_curve () =
  let c = Curve.linear ~kind:Curve.Lower ~horizon:10 ~rate:(1, 1) in
  Alcotest.(check int) "eval 0" 0 (Curve.eval c 0);
  Alcotest.(check int) "eval 7" 7 (Curve.eval c 7);
  Alcotest.(check int) "beyond horizon" 100 (Curve.eval c 100);
  let half = Curve.linear ~kind:Curve.Lower ~horizon:10 ~rate:(1, 2) in
  Alcotest.(check int) "floor" 3 (Curve.eval half 7);
  let half_up = Curve.linear ~kind:Curve.Upper ~horizon:10 ~rate:(1, 2) in
  Alcotest.(check int) "ceil" 4 (Curve.eval half_up 7);
  (* tail rounding follows the kind *)
  Alcotest.(check int) "tail floor" 50 (Curve.eval half 100);
  Alcotest.(check int) "tail ceil" 50 (Curve.eval half_up 100)

let test_curve_validation () =
  let raises f = match f () with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "horizon 0" true
    (raises (fun () ->
       Curve.create ~kind:Curve.Upper ~horizon:0 ~tail_rate:(1, 1) (fun _ -> 0)));
  Alcotest.(check bool) "bad denominator" true
    (raises (fun () ->
       Curve.create ~kind:Curve.Upper ~horizon:5 ~tail_rate:(1, 0) (fun _ -> 0)));
  Alcotest.(check bool) "negative eval" true
    (raises (fun () ->
       Curve.eval (Curve.linear ~kind:Curve.Upper ~horizon:5 ~rate:(1, 1)) (-1)));
  Alcotest.(check bool) "kind mismatch" true
    (raises (fun () ->
       Curve.min
         (Curve.linear ~kind:Curve.Upper ~horizon:5 ~rate:(1, 1))
         (Curve.linear ~kind:Curve.Lower ~horizon:5 ~rate:(1, 1))))

let test_pointwise_ops () =
  let a = Curve.linear ~kind:Curve.Upper ~horizon:20 ~rate:(2, 1) in
  let b = Curve.linear ~kind:Curve.Upper ~horizon:20 ~rate:(3, 1) in
  Alcotest.(check int) "add" 25 (Curve.eval (Curve.add a b) 5);
  Alcotest.(check int) "min" 10 (Curve.eval (Curve.min a b) 5);
  Alcotest.(check int) "max" 15 (Curve.eval (Curve.max a b) 5)

let test_convolution () =
  (* conv of two linear curves of equal rate is the same line *)
  let a = Curve.linear ~kind:Curve.Lower ~horizon:30 ~rate:(2, 1) in
  let conv = Curve.min_plus_conv a a in
  Alcotest.(check int) "same line" 20 (Curve.eval conv 10);
  (* conv with a delayed curve shifts: f = dt, g = max 0 (dt - 5) *)
  let f = Curve.linear ~kind:Curve.Lower ~horizon:30 ~rate:(1, 1) in
  let g = Workload.service_bounded_delay ~horizon:30 ~delay:5 ~rate:(1, 1) in
  let fg = Curve.min_plus_conv f g in
  Alcotest.(check int) "shifted" 5 (Curve.eval fg 10);
  Alcotest.(check int) "zero region" 0 (Curve.eval fg 5)

let test_deconvolution () =
  (* a stair arrival deconvolved by a full service recovers burst+rate *)
  let stream = Stream.periodic ~name:"p" ~period:10 in
  let alpha = Workload.arrival_upper ~horizon:100 ~wcet:3 stream in
  let beta_as_upper =
    Curve.create ~kind:Curve.Upper ~horizon:100 ~tail_rate:(1, 1) (fun dt -> dt)
  in
  let out = Curve.min_plus_deconv alpha beta_as_upper in
  (* output still bounded: at most one event (3 units) instantly *)
  Alcotest.(check bool) "bounded burst" true (Curve.eval out 0 <= 3);
  Alcotest.(check bool) "dominates input" true
    (Curve.eval out 50 >= Curve.eval alpha 50)

let test_deviations () =
  (* periodic demand C=3 every 10 on a unit-rate resource: delay 3 *)
  let stream = Stream.periodic ~name:"p" ~period:10 in
  let alpha = Workload.arrival_upper ~horizon:200 ~wcet:3 stream in
  let beta = Workload.service_full ~horizon:200 in
  Alcotest.(check (option int)) "delay" (Some 3)
    (Curve.horizontal_deviation ~upper:alpha ~lower:beta);
  Alcotest.(check (option int)) "backlog" (Some 3)
    (Curve.vertical_deviation ~upper:alpha ~lower:beta)

let test_tdma_service_curve () =
  let beta = Workload.service_tdma ~horizon:100 ~slot:3 ~cycle:10 in
  Alcotest.(check int) "blank region" 0 (Curve.eval beta 7);
  Alcotest.(check int) "one slot" 3 (Curve.eval beta 10);
  Alcotest.(check int) "two slots" 6 (Curve.eval beta 20);
  (* agrees with the busy-window TDMA service bound everywhere *)
  for dt = 0 to 100 do
    Alcotest.(check int)
      (Printf.sprintf "dt=%d" dt)
      (Scheduling.Tdma.service ~slot:3 ~cycle:10 dt)
      (Curve.eval beta dt)
  done

(* ------------------------------------------------------------------ *)
(* greedy processing component *)

let test_gpc_single () =
  let stream = Stream.periodic ~name:"p" ~period:10 in
  let alpha = Workload.arrival_upper ~horizon:200 ~wcet:4 stream in
  let beta = Workload.service_full ~horizon:200 in
  let result = Gpc.process ~arrival_upper:alpha ~service_lower:beta in
  Alcotest.(check (option int)) "delay = wcet" (Some 4) result.Gpc.delay;
  Alcotest.(check (option int)) "backlog = wcet" (Some 4) result.Gpc.backlog;
  (* remaining service over one period: best split is s = 9 just before
     the next closed-window arrival: 9 - 4 = 5 *)
  Alcotest.(check int) "remaining over one period" 5
    (Curve.eval result.Gpc.remaining_lower 10)

let test_gpc_overload_no_delay_bound () =
  let stream = Stream.periodic ~name:"p" ~period:10 in
  let alpha = Workload.arrival_upper ~horizon:100 ~wcet:20 stream in
  let beta = Workload.service_full ~horizon:100 in
  let result = Gpc.process ~arrival_upper:alpha ~service_lower:beta in
  Alcotest.(check (option int)) "unbounded" None result.Gpc.delay

let test_fp_chain_vs_busy_window () =
  (* the textbook RM set: C = (1, 2, 3), T = (4, 6, 13); busy-window
     R = (1, 3, 10); RTC delay bounds must be sound (>= simulated = same
     pattern) and are close to the busy-window results *)
  let horizon = 400 in
  let arrival period wcet =
    Workload.arrival_upper ~horizon ~wcet
      (Stream.periodic ~name:"s" ~period)
  in
  let results =
    Gpc.fixed_priority_chain
      ~service:(Workload.service_full ~horizon)
      [
        { Gpc.name = "t1"; arrival_upper = arrival 4 1 };
        { Gpc.name = "t2"; arrival_upper = arrival 6 2 };
        { Gpc.name = "t3"; arrival_upper = arrival 13 3 };
      ]
  in
  let delay name =
    match List.assoc name results with
    | { Gpc.delay = Some d; _ } -> d
    | { Gpc.delay = None; _ } -> Alcotest.failf "unbounded %s" name
  in
  Alcotest.(check int) "t1" 1 (delay "t1");
  Alcotest.(check int) "t2" 3 (delay "t2");
  (* RTC with full curves is as tight as the busy window here *)
  Alcotest.(check int) "t3" 10 (delay "t3");
  (* busy-window reference *)
  let task name cet priority period =
    Scheduling.Rt_task.make ~name ~cet:(Interval.point cet) ~priority
      ~activation:(Stream.periodic ~name:(name ^ ".act") ~period)
  in
  let t1 = task "t1" 1 1 4
  and t2 = task "t2" 2 2 6
  and t3 = task "t3" 3 3 13 in
  List.iter
    (fun (t, others, rtc_delay) ->
      match Scheduling.Spp.response_time ~task:t ~others () with
      | Scheduling.Busy_window.Bounded r ->
        Alcotest.(check bool)
          (t.Scheduling.Rt_task.name ^ ": frameworks agree within slack")
          true
          (rtc_delay >= Interval.hi r)
      | Scheduling.Busy_window.Unbounded _ -> Alcotest.fail "unexpected")
    [ t1, [ t2; t3 ], delay "t1"; t2, [ t1; t3 ], delay "t2";
      t3, [ t1; t2 ], delay "t3" ]

let test_tdma_delay_matches_busy_window () =
  (* a task on a TDMA slot analysed by both frameworks: the RTC delay on
     the TDMA service curve equals the busy-window response time, since
     they share the same supply bound *)
  let cases =
    [ 2, 3, 10, 50; 7, 3, 10, 100; 4, 5, 8, 60; 12, 4, 16, 200 ]
  in
  List.iter
    (fun (cet, slot, cycle, period) ->
      let task =
        Scheduling.Rt_task.make ~name:"t" ~cet:(Interval.point cet) ~priority:1
          ~activation:(Stream.periodic ~name:"act" ~period)
      in
      let other =
        Scheduling.Rt_task.make ~name:"o" ~cet:(Interval.point 1) ~priority:1
          ~activation:(Stream.periodic ~name:"oact" ~period:1000)
      in
      let slots =
        [ { Scheduling.Tdma.task; length = slot };
          { Scheduling.Tdma.task = other; length = cycle - slot } ]
      in
      let busy_window =
        match Scheduling.Tdma.response_time ~slots ~task () with
        | Scheduling.Busy_window.Bounded r -> Interval.hi r
        | Scheduling.Busy_window.Unbounded _ -> Alcotest.fail "unbounded"
      in
      let rtc =
        let result =
          Gpc.process
            ~arrival_upper:
              (Workload.arrival_upper ~horizon:2000 ~wcet:cet
                 (Stream.periodic ~name:"act" ~period))
            ~service_lower:(Workload.service_tdma ~horizon:2000 ~slot ~cycle)
        in
        match result.Gpc.delay with
        | Some d -> d
        | None -> Alcotest.fail "unbounded rtc"
      in
      Alcotest.(check int)
        (Printf.sprintf "C=%d slot=%d cycle=%d" cet slot cycle)
        busy_window rtc)
    cases

let test_fp_chain_order_matters () =
  let horizon = 300 in
  let arrival period wcet =
    Workload.arrival_upper ~horizon ~wcet (Stream.periodic ~name:"s" ~period)
  in
  let chain order =
    Gpc.fixed_priority_chain ~service:(Workload.service_full ~horizon) order
  in
  let heavy = { Gpc.name = "heavy"; arrival_upper = arrival 10 5 } in
  let light = { Gpc.name = "light"; arrival_upper = arrival 50 2 } in
  let delay results name =
    match List.assoc name results with
    | { Gpc.delay = Some d; _ } -> d
    | { Gpc.delay = None; _ } -> max_int
  in
  let light_last = delay (chain [ heavy; light ]) "light" in
  let light_first = delay (chain [ light; heavy ]) "light" in
  Alcotest.(check bool) "lower priority waits longer" true
    (light_last > light_first)

(* ------------------------------------------------------------------ *)
(* certified tails of the workload curves *)

let test_long_period_tail_rate () =
  (* regression: the tail-rate window search used to consider only
     windows up to 128 samples, so a periodic stream with period 2400
     got a certified rate of wcet/128 instead of ~wcet/2400 — nearly
     twenty times too steep, which collapsed the remaining service of
     interfered elements in the hybrid backend.  The long-window ladder
     keeps the tail within a small factor of the exact demand. *)
  let period = 2400 and wcet = 20 and horizon = 4096 in
  let s = Stream.periodic ~name:"slow" ~period in
  let alpha = Workload.arrival_upper ~horizon ~wcet s in
  let dt = 10 * horizon in
  let exact = wcet * (((dt - 1) / period) + 1) in
  let v = Curve.eval alpha dt in
  Alcotest.(check bool) "tail dominates the exact demand" true (v >= exact);
  Alcotest.(check bool)
    (Printf.sprintf "tail within 2x of exact (%d vs %d)" v exact)
    true
    (v <= 2 * exact)

let prop_arrival_tails_conservative =
  (* satellite of the hybrid coupling: past the sampled horizon the
     certified tails must stay on the right side of the exact stream
     demand, arbitrarily far out and for any jitter *)
  QCheck.Test.make ~name:"arrival curve tails bound the stream" ~count:50
    (QCheck.pair
       (QCheck.pair (QCheck.int_range 5 400) (QCheck.int_range 0 60))
       (QCheck.pair (QCheck.int_range 1 6) (QCheck.int_range 1 8)))
    (fun ((period, jitter), (wcet, mult)) ->
      let horizon = 100 in
      let s = Stream.periodic_jitter ~name:"t" ~period ~jitter () in
      let upper = Workload.arrival_upper ~horizon ~wcet s in
      let lower = Workload.arrival_lower ~horizon ~bcet:wcet s in
      let dt = (mult * horizon) + (mult * period / 2) in
      let eta_p = Timebase.Count.to_int (Stream.eta_plus s dt) in
      let eta_m = Timebase.Count.to_int (Stream.eta_minus s dt) in
      Curve.eval upper dt >= wcet * eta_p
      && Curve.eval lower dt <= wcet * eta_m)

(* ------------------------------------------------------------------ *)
(* properties *)

let test_map2_mismatched_horizons () =
  (* pins the map2 horizon convention: the combination keeps the LARGER
     horizon, so in the gap where only the shorter curve has run out of
     samples the result is exact (the shorter curve contributes its
     certified tail) instead of tail-projected from the shorter range *)
  let a = Curve.linear ~kind:Curve.Upper ~horizon:50 ~rate:(1, 1) in
  let b = Curve.linear ~kind:Curve.Upper ~horizon:20 ~rate:(1, 2) in
  let add_rates (n1, d1) (n2, d2) = ((n1 * d2) + (n2 * d1), d1 * d2) in
  let c = Curve.map2 ( + ) add_rates a b in
  Alcotest.(check int) "keeps the larger horizon" 50 (Curve.horizon c);
  for dt = 0 to 50 do
    Alcotest.(check int)
      (Printf.sprintf "exact at %d" dt)
      (Curve.eval a dt + Curve.eval b dt)
      (Curve.eval c dt)
  done;
  List.iter
    (fun dt ->
      Alcotest.(check bool)
        (Printf.sprintf "conservative at %d" dt)
        true
        (Curve.eval c dt >= Curve.eval a dt + Curve.eval b dt))
    [ 51; 64; 100; 200 ]

let prop_conv_dominated =
  (* (f (x) f)(dt) <= f(0) + f(dt) by choosing the trivial split *)
  QCheck.Test.make ~name:"convolution dominated by trivial split" ~count:40
    (QCheck.pair (QCheck.int_range 1 20) (QCheck.int_range 0 40))
    (fun (rate, dt) ->
      let rate = Stdlib.max 1 rate in
      let f = Curve.linear ~kind:Curve.Lower ~horizon:50 ~rate:(rate, 1) in
      Curve.eval (Curve.min_plus_conv f f) dt <= Curve.eval f 0 + Curve.eval f dt)

let prop_deconv_dominates =
  (* (f (/) g)(dt) >= f(dt) - g(0) = f(dt): the s = 0 term of the sup *)
  QCheck.Test.make ~name:"deconvolution dominates the original" ~count:40
    (QCheck.pair (QCheck.int_range 1 10) (QCheck.int_range 0 40))
    (fun (period, dt) ->
      let period = Stdlib.max 1 period in
      let alpha =
        Workload.arrival_upper ~horizon:100 ~wcet:1
          (Stream.periodic ~name:"p" ~period)
      in
      let beta =
        Curve.create ~kind:Curve.Upper ~horizon:100 ~tail_rate:(1, 1)
          (fun x -> x)
      in
      Curve.eval (Curve.min_plus_deconv alpha beta) dt >= Curve.eval alpha dt)

let () =
  Alcotest.run "rtc"
    [
      ( "curves",
        [
          Alcotest.test_case "linear" `Quick test_linear_curve;
          Alcotest.test_case "validation" `Quick test_curve_validation;
          Alcotest.test_case "pointwise" `Quick test_pointwise_ops;
          Alcotest.test_case "convolution" `Quick test_convolution;
          Alcotest.test_case "deconvolution" `Quick test_deconvolution;
          Alcotest.test_case "deviations" `Quick test_deviations;
          Alcotest.test_case "tdma service" `Quick test_tdma_service_curve;
          Alcotest.test_case "long-period tail rate" `Quick
            test_long_period_tail_rate;
          Alcotest.test_case "map2 mismatched horizons" `Quick
            test_map2_mismatched_horizons;
        ] );
      ( "gpc",
        [
          Alcotest.test_case "single component" `Quick test_gpc_single;
          Alcotest.test_case "overload" `Quick test_gpc_overload_no_delay_bound;
          Alcotest.test_case "fp chain vs busy window" `Quick
            test_fp_chain_vs_busy_window;
          Alcotest.test_case "tdma vs busy window" `Quick
            test_tdma_delay_matches_busy_window;
          Alcotest.test_case "chain order" `Quick test_fp_chain_order_matters;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_conv_dominated;
            prop_deconv_dominates;
            prop_arrival_tails_conservative;
          ] );
    ]
