(* Tests for the memoized curve engine and its pseudo-inversion searches,
   which implement the eta functions of the paper (eqs. 1-2). *)

module Time = Timebase.Time
module Curve = Event_model.Curve

let linear slope = Curve.make (fun n -> Time.of_int (n * slope))

let test_eval_memoizes () =
  let calls = ref 0 in
  let c =
    Curve.make (fun n ->
      incr calls;
      Time.of_int n)
  in
  ignore (Curve.eval c 5);
  ignore (Curve.eval c 5);
  ignore (Curve.eval c 5);
  Alcotest.(check int) "computed once" 1 !calls

let test_make_rec () =
  (* delta(n) = delta(n-1) + n, a self-referential recurrence *)
  let c =
    Curve.make_rec (fun self n ->
      if n <= 0 then Time.zero else Time.add (self (n - 1)) (Time.of_int n))
  in
  Alcotest.(check int) "triangular" 15 (Time.to_int (Curve.eval c 5));
  Alcotest.(check int) "deep" (100 * 101 / 2) (Time.to_int (Curve.eval c 100))

let test_constant () =
  let c = Curve.constant (Time.of_int 9) in
  Alcotest.(check int) "any index" 9 (Time.to_int (Curve.eval c 12345))

(* brute-force reference for count_lt: largest n >= 1 with curve n < limit,
   or 0 when no such n exists (the curve already meets the limit at 1) *)
let brute_count_lt c limit =
  let rec scan n best =
    if n > 4096 then best
    else if Time.(Curve.eval c n < limit) then scan (n + 1) n
    else best
  in
  scan 1 0

let test_count_lt_linear () =
  let c = linear 10 in
  (* curve n = 10n; count_lt limit = largest n with 10n < limit *)
  List.iter
    (fun limit ->
      Alcotest.(check int)
        (Printf.sprintf "limit %d" limit)
        (brute_count_lt c (Time.of_int limit))
        (Curve.count_lt c (Time.of_int limit)))
    [ 1; 5; 10; 11; 99; 100; 101; 1000; 12345 ]

let test_count_lt_requires_positive () =
  Alcotest.check_raises "limit 0" (Invalid_argument "Curve.count_lt: limit <= 0")
    (fun () -> ignore (Curve.count_lt (linear 1) Time.zero))

(* regression: count_lt used to assume eval c 1 = 0 and start its search
   at n = 2, silently answering 1 for curves that already meet the limit
   at n = 1; it now answers 0 there *)
let test_count_lt_nonzero_at_one () =
  let c = linear 10 in
  (* eval c 1 = 10 *)
  Alcotest.(check int) "limit below eval 1" 0
    (Curve.count_lt c (Time.of_int 5));
  Alcotest.(check int) "limit at eval 1" 0
    (Curve.count_lt c (Time.of_int 10));
  Alcotest.(check int) "limit just above eval 1" 1
    (Curve.count_lt c (Time.of_int 11));
  let offset = Curve.make (fun n -> Time.of_int (3 + n)) in
  (* eval offset 1 = 4 *)
  Alcotest.(check int) "offset curve, unreachable limit" 0
    (Curve.count_lt offset (Time.of_int 2));
  Alcotest.(check int) "offset curve, reachable limit" 2
    (Curve.count_lt offset (Time.of_int 6))

let test_count_lt_unbounded () =
  let bounded = Curve.constant (Time.of_int 3) in
  Alcotest.(check bool) "raises Unbounded" true
    (match Curve.count_lt bounded (Time.of_int 10) with
     | _ -> false
     | exception Curve.Unbounded _ -> true)

let test_first_gt () =
  let c = linear 10 in
  (* first n with curve (n + 2) > limit *)
  let brute limit =
    let rec scan n =
      if Time.(Curve.eval c (n + 2) > Time.of_int limit) then n else scan (n + 1)
    in
    scan 0
  in
  List.iter
    (fun limit ->
      Alcotest.(check int)
        (Printf.sprintf "limit %d" limit)
        (brute limit)
        (Curve.first_gt c ~offset:2 (Time.of_int limit)))
    [ 0; 1; 19; 20; 21; 200; 201; 999 ]

let test_first_gt_inf_curve () =
  let c = Curve.constant Time.Inf in
  Alcotest.(check int) "inf exceeds immediately" 0
    (Curve.first_gt c ~offset:2 (Time.of_int 1000))

(* ------------------------------------------------------------------ *)
(* compact periodic-tail backend *)

(* closure reference for a (prefix, period_events, period_time) curve *)
let closure_of_periodic ~prefix ~period_events ~period_time =
  let len = Array.length prefix in
  Curve.make (fun n ->
    if n <= 1 then Time.zero
    else begin
      let i = n - 2 in
      if i < len then Time.of_int prefix.(i)
      else begin
        let over = i - (len - 1) in
        let steps = (over + period_events - 1) / period_events in
        Time.of_int (prefix.(i - (steps * period_events)) + (steps * period_time))
      end
    end)

let test_periodic_eval_matches_closure () =
  List.iter
    (fun (prefix, pe, pt) ->
      let compact =
        Curve.periodic ~prefix ~period_events:pe ~period_time:pt
      in
      let reference =
        closure_of_periodic ~prefix ~period_events:pe ~period_time:pt
      in
      Alcotest.(check bool) "compact backend" true
        (Curve.backend compact = `Periodic);
      for n = 0 to 200 do
        Alcotest.(check int)
          (Printf.sprintf "eval %d" n)
          (Time.to_int (Curve.eval reference n))
          (Time.to_int (Curve.eval compact n))
      done)
    [
      [| 7 |], 1, 7;
      [| 5; 9; 30 |], 1, 25;
      [| 0; 0; 100 |], 3, 100;
      [| 2; 4; 6; 50 |], 2, 60;
      [| 10; 10; 10 |], 1, 0;
    ]

let test_periodic_searches_match_closure () =
  List.iter
    (fun (prefix, pe, pt) ->
      let compact = Curve.periodic ~prefix ~period_events:pe ~period_time:pt in
      let reference =
        closure_of_periodic ~prefix ~period_events:pe ~period_time:pt
      in
      List.iter
        (fun limit ->
          let run f c = match f c with v -> Ok v | exception Curve.Unbounded _ -> Error () in
          Alcotest.(check (result int unit))
            (Printf.sprintf "count_lt %d" limit)
            (run (fun c -> Curve.count_lt c (Time.of_int limit)) reference)
            (run (fun c -> Curve.count_lt c (Time.of_int limit)) compact);
          Alcotest.(check (result int unit))
            (Printf.sprintf "first_gt %d" limit)
            (run (fun c -> Curve.first_gt c ~offset:2 (Time.of_int limit)) reference)
            (run (fun c -> Curve.first_gt c ~offset:2 (Time.of_int limit)) compact))
        [ 1; 2; 5; 7; 9; 10; 11; 29; 30; 31; 99; 100; 101; 250; 999; 12345 ])
    [
      [| 7 |], 1, 7;
      [| 5; 9; 30 |], 1, 25;
      [| 0; 0; 100 |], 3, 100;
      [| 2; 4; 6; 50 |], 2, 60;
      [| 10; 10; 10 |], 1, 0;
    ]

let test_periodic_search_beyond_cap () =
  (* the arithmetic inversion reaches indices the exponential search
     cannot: count below 10^12 for a period-5 curve *)
  let c = Curve.periodic ~prefix:[| 5 |] ~period_events:1 ~period_time:5 in
  let limit = 1_000_000_000_000 in
  (* eval n = 5 (n - 1); largest n with 5 (n - 1) < limit *)
  let expected = ((limit - 1) / 5) + 1 in
  Alcotest.(check int) "giant inversion" expected
    (Curve.count_lt c (Time.of_int limit));
  Alcotest.(check bool) "beyond the closure search cap" true
    (expected > Curve.search_cap)

let test_periodic_validation () =
  let invalid f = Alcotest.(check bool) "rejected" true
    (match f () with _ -> false | exception Invalid_argument _ -> true)
  in
  invalid (fun () -> Curve.periodic ~prefix:[| 5 |] ~period_events:0 ~period_time:1);
  invalid (fun () -> Curve.periodic ~prefix:[| 5 |] ~period_events:2 ~period_time:1);
  invalid (fun () -> Curve.periodic ~prefix:[| 5; 3 |] ~period_events:1 ~period_time:1);
  invalid (fun () -> Curve.periodic ~prefix:[| -1 |] ~period_events:1 ~period_time:1);
  invalid (fun () -> Curve.periodic ~prefix:[| 5 |] ~period_events:1 ~period_time:(-1));
  (* tail would fall below the prefix top: 0, 10, then 0 + 5 = 5 *)
  invalid (fun () ->
    Curve.periodic ~prefix:[| 0; 10 |] ~period_events:2 ~period_time:5)

let test_stats_attribution () =
  let before = Curve.stats () in
  let compact = Curve.periodic ~prefix:[| 9 |] ~period_events:1 ~period_time:9 in
  ignore (Curve.eval compact 1000);
  let mid = Curve.stats () in
  let d = Curve.stats_diff mid before in
  Alcotest.(check bool) "periodic eval counted" true (d.Curve.periodic_evals >= 1);
  let cl = Curve.make (fun n -> Time.of_int n) in
  ignore (Curve.eval cl 5);
  ignore (Curve.eval cl 5);
  let d2 = Curve.stats_diff (Curve.stats ()) mid in
  Alcotest.(check int) "one miss" 1 d2.Curve.closure_evals;
  Alcotest.(check int) "one hit" 1 d2.Curve.memo_hits

(* property: count_lt matches brute force on random step curves *)
let arb_steps = QCheck.(list_of_size (Gen.int_range 1 30) (int_range 0 20))

let curve_of_steps steps =
  (* monotone curve built from cumulative non-negative steps *)
  let arr = Array.of_list steps in
  Curve.make (fun n ->
    let rec total i acc =
      if i >= n || i >= Array.length arr then acc + ((n - i) * 7)
      else total (i + 1) (acc + arr.(i))
    in
    (* extend past the explicit prefix with slope 7 so it diverges *)
    Time.of_int (total 0 0))

let prop_count_lt_vs_brute =
  QCheck.Test.make ~name:"count_lt matches brute force" ~count:200
    (QCheck.pair arb_steps (QCheck.int_range 1 500)) (fun (steps, limit) ->
      let c = curve_of_steps steps in
      Curve.count_lt c (Time.of_int limit) = brute_count_lt c (Time.of_int limit))

let prop_first_gt_vs_brute =
  QCheck.Test.make ~name:"first_gt matches brute force" ~count:200
    (QCheck.pair arb_steps (QCheck.int_range 0 500)) (fun (steps, limit) ->
      let c = curve_of_steps steps in
      let brute =
        let rec scan n =
          if Time.(Curve.eval c (n + 2) > Time.of_int limit) then n
          else scan (n + 1)
        in
        scan 0
      in
      Curve.first_gt c ~offset:2 (Time.of_int limit) = brute)

(* batched sweeps vs the boxed scalar evaluator: no ordering assumption
   on the probe array, duplicates must hit the closure memo exactly like
   repeated scalar evals *)
let packed_of_time = function
  | Time.Fin d -> d
  | Time.Inf -> Curve.packed_inf

let arb_probes = QCheck.(list_of_size (Gen.int_range 1 40) (int_range 1 2000))

let batch_agrees c probes =
  let arr = Array.of_list probes in
  let batch = Curve.eval_batch c arr in
  Array.length batch = Array.length arr
  && Array.for_all2
       (fun b n -> b = packed_of_time (Curve.eval c n))
       batch arr

let prop_batch_closure =
  QCheck.Test.make ~name:"eval_batch = scalar eval (closure backend)"
    ~count:200
    (QCheck.pair arb_steps arb_probes)
    (fun (steps, probes) -> batch_agrees (curve_of_steps steps) probes)

let arb_periodic_params =
  QCheck.(
    quad (int_range 1 300) (int_range 0 600) (int_range 1 20) arb_probes)

let periodic_curve_of (period, jitter, d_min) =
  Event_model.Stream.delta_min_curve
    (Event_model.Stream.periodic_jitter ~name:"p" ~period ~jitter
       ~d_min:(Stdlib.min d_min period) ())

let prop_batch_periodic =
  QCheck.Test.make ~name:"eval_batch = scalar eval (periodic backend)"
    ~count:200 arb_periodic_params
    (fun (period, jitter, d_min, probes) ->
      batch_agrees (periodic_curve_of (period, jitter, d_min)) probes)

let prop_range_into =
  QCheck.Test.make ~name:"eval_range_into = scalar eval" ~count:200
    (QCheck.quad (QCheck.int_range 1 300) (QCheck.int_range 0 600)
       (QCheck.int_range 1 200) (QCheck.int_range 0 60))
    (fun (period, jitter, n0, len) ->
      let c = periodic_curve_of (period, jitter, 1) in
      let dst = Array.make (len + 3) (-1) in
      Curve.eval_range_into c ~n0 ~len ~dst ~pos:2;
      dst.(0) = -1
      && dst.(1) = -1
      && Array.for_all Fun.id
           (Array.init len (fun i ->
                dst.(i + 2) = packed_of_time (Curve.eval c (n0 + i)))))

(* the warm-start hint contract: feeding the previous answer + 1 as [lo]
   is sound whenever the limit only grows *)
let prop_count_lt_packed_hint =
  QCheck.Test.make ~name:"count_lt_packed hint agreement" ~count:200
    (QCheck.pair arb_steps
       QCheck.(list_of_size (Gen.int_range 1 10) (int_range 1 400)))
    (fun (steps, limits) ->
      let c = curve_of_steps steps in
      let limits = List.sort_uniq compare limits in
      let lo = ref 1 in
      List.for_all
        (fun limit ->
          let expected = Curve.count_lt c (Time.of_int limit) in
          let got = Curve.count_lt_packed c ~lo:!lo ~limit in
          lo := got + 1;
          got = expected)
        limits)

let () =
  Alcotest.run "curve"
    [
      ( "engine",
        [
          Alcotest.test_case "memoization" `Quick test_eval_memoizes;
          Alcotest.test_case "make_rec" `Quick test_make_rec;
          Alcotest.test_case "constant" `Quick test_constant;
        ] );
      ( "search",
        [
          Alcotest.test_case "count_lt linear" `Quick test_count_lt_linear;
          Alcotest.test_case "count_lt positive limit" `Quick
            test_count_lt_requires_positive;
          Alcotest.test_case "count_lt nonzero at n=1" `Quick
            test_count_lt_nonzero_at_one;
          Alcotest.test_case "count_lt unbounded" `Quick test_count_lt_unbounded;
          Alcotest.test_case "first_gt" `Quick test_first_gt;
          Alcotest.test_case "first_gt inf" `Quick test_first_gt_inf_curve;
        ] );
      ( "periodic backend",
        [
          Alcotest.test_case "eval matches closure" `Quick
            test_periodic_eval_matches_closure;
          Alcotest.test_case "searches match closure" `Quick
            test_periodic_searches_match_closure;
          Alcotest.test_case "inversion beyond search cap" `Quick
            test_periodic_search_beyond_cap;
          Alcotest.test_case "validation" `Quick test_periodic_validation;
          Alcotest.test_case "stats attribution" `Quick test_stats_attribution;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_count_lt_vs_brute;
            prop_first_gt_vs_brute;
            prop_batch_closure;
            prop_batch_periodic;
            prop_range_into;
            prop_count_lt_packed_hint;
          ] );
    ]
