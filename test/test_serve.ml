(* The serving layer: canonical wire codec round-trips, warm-session
   updates byte-identical to cold analysis, interleaved sessions staying
   scope-exact against a serial replay, and protocol robustness against
   malformed frames, oversized payloads and abrupt disconnects. *)

module Space = Explore.Space
module Wire = Explore.Wire
module Json = Explore.Wire.Json
module Engine = Cpa_system.Engine
module Protocol = Serve.Protocol
module Client = Serve.Client
module Paper = Scenarios.Paper_system

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let contents = really_input_string ic n in
  close_in ic;
  contents

(* ------------------------------------------------------------------ *)
(* Wire codec: parse ∘ print = id, and printing is canonical *)

let gen_name = QCheck.Gen.oneofl [ "s1"; "s3"; "t2"; "t3"; "f1"; "f2"; "lF" ]

let gen_edit : Space.edit QCheck.Gen.t =
  let open QCheck.Gen in
  oneof
    [
      map2
        (fun source period -> Space.Source_period { source; period })
        gen_name (int_range 1 5000);
      (let* source = gen_name in
       let* period = int_range 1 5000 in
       let* jitter = int_range 0 1000 in
       let* d_min = int_range 0 50 in
       return (Space.Source_jitter { source; period; jitter; d_min }));
      map2
        (fun task percent -> Space.Cet_scale { task; percent })
        gen_name (int_range 1 400);
      map2
        (fun task priority -> Space.Task_priority { task; priority })
        gen_name (int_range 1 16);
      map2
        (fun frame priority -> Space.Frame_priority { frame; priority })
        gen_name (int_range 1 16);
      (let* frame = gen_name in
       let* lo = int_range 1 20 in
       let* len = int_range 0 20 in
       return
         (Space.Frame_tx
            { frame; tx = Timebase.Interval.make ~lo ~hi:(lo + len) }));
      (let* bus = gen_name in
       let* groups =
         list_size (int_range 1 3) (list_size (int_range 1 3) gen_name)
       in
       let* bits_per_signal = int_range 1 64 in
       let* bit_time = int_range 1 8 in
       return (Space.Repack { bus; groups; bits_per_signal; bit_time }));
      (let* task = oneof [ return None; map Option.some gen_name ] in
       let* mode = oneofl Event_model.Propagation.all_modes in
       return (Space.Propagation_mode { task; mode }));
    ]

let arb_edits =
  QCheck.make
    ~print:(fun edits -> Wire.print edits)
    QCheck.Gen.(list_size (int_range 0 6) gen_edit)

let prop_wire_roundtrip =
  QCheck.Test.make ~name:"wire: parse (print edits) = edits" ~count:500
    arb_edits (fun edits ->
      match Wire.parse (Wire.print edits) with
      | Error e -> QCheck.Test.fail_reportf "parse failed: %s" e
      | Ok edits' -> edits' = edits)

let prop_wire_canonical =
  QCheck.Test.make ~name:"wire: print is canonical across a round-trip"
    ~count:500 arb_edits (fun edits ->
      let printed = Wire.print edits in
      match Wire.parse printed with
      | Error e -> QCheck.Test.fail_reportf "parse failed: %s" e
      | Ok edits' -> String.equal printed (Wire.print edits'))

let wire_rejects () =
  let bad json msg =
    match Wire.parse json with
    | Ok _ -> Alcotest.failf "accepted %s (%s)" json msg
    | Error _ -> ()
  in
  bad "{" "truncated";
  bad "[{\"edit\":\"source-period\",\"source\":\"s1\"}]" "missing field";
  bad "[{\"edit\":\"warp\",\"source\":\"s1\"}]" "unknown tag";
  bad "[1]" "not an object";
  bad "[{\"edit\":\"source-period\",\"source\":\"s1\",\"period\":1}] x"
    "trailing garbage"

(* ------------------------------------------------------------------ *)
(* Warm sessions: updates byte-identical to cold runs, with reuse *)

let outcome_line (o : Engine.element_outcome) =
  Format.asprintf "%s@%s=%a" o.Engine.element o.Engine.resource
    Scheduling.Busy_window.pp_outcome o.Engine.outcome

let outcomes_text (r : Engine.result) =
  String.concat "\n" (List.map outcome_line r.Engine.outcomes)

let ok_exn what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what (Guard.Error.to_string e)

let stale_for ~before ~after edit =
  let sources, elements = Space.touched before edit in
  Engine.affected before ~sources ~elements
  @ Engine.affected after ~sources ~elements
  |> List.sort_uniq String.compare

let warm_matches_cold () =
  let spec = Paper.spec () in
  let w, r0 = ok_exn "warm" (Engine.warm spec) in
  let cold0 = ok_exn "cold" (Engine.analyse spec) in
  Alcotest.(check string)
    "initial warm = cold" (outcomes_text cold0) (outcomes_text r0);
  (* an idempotent edit cycle: T3's priority 3 -> 4 -> back to 3 *)
  let specs_and_edits =
    [
      Space.Task_priority { task = "T3"; priority = 4 };
      Space.Task_priority { task = "T3"; priority = 3 };
      Space.Source_period { source = "S3"; period = 900 };
      Space.Source_period { source = "S3"; period = 1000 };
    ]
  in
  let reused_total = ref 0 in
  ignore
    (List.fold_left
       (fun before edit ->
         let after = Space.apply before edit in
         let stale = stale_for ~before ~after edit in
         let r = ok_exn "warm_update" (Engine.warm_update w ~spec:after ~stale) in
         let cold = ok_exn "cold" (Engine.analyse after) in
         Alcotest.(check string)
           (Space.edit_label edit ^ ": warm = cold")
           (outcomes_text cold) (outcomes_text r);
         reused_total := !reused_total + r.Engine.stats.Engine.resources_reused;
         after)
       spec specs_and_edits);
  Alcotest.(check bool) "warm updates reused analyses" true (!reused_total > 0);
  (* read-back: no edit, no stale — everything reused *)
  let r = ok_exn "read-back" (Engine.warm_update w ~spec ~stale:[]) in
  Alcotest.(check string)
    "read-back repeats the fixed point" (outcomes_text cold0) (outcomes_text r);
  Alcotest.(check int) "read-back analyses nothing" 0
    r.Engine.stats.Engine.resources_analysed

(* ------------------------------------------------------------------ *)
(* An in-process daemon on a temporary Unix socket *)

let fresh_socket_path =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "hem-serve-test-%d-%d.sock" (Unix.getpid ()) !n)

let connect_retry path =
  let rec go n =
    match Client.connect (`Unix path) with
    | Ok c -> c
    | Error e ->
      if n = 0 then Alcotest.failf "daemon did not come up: %s" e
      else begin
        Thread.delay 0.05;
        go (n - 1)
      end
  in
  go 100

let with_server ?(jobs = 2) ?max_sessions f =
  let path = fresh_socket_path () in
  let cfg = Serve.Server.config ~unix_path:path ~jobs ?max_sessions () in
  let th = Thread.create Serve.Server.run cfg in
  Fun.protect
    ~finally:(fun () ->
      (match Client.connect (`Unix path) with
      | Ok c ->
        ignore (Client.shutdown c);
        Client.close c
      | Error _ -> ());
      Thread.join th;
      if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let reply_exn what = function
  | Error e -> Alcotest.failf "%s: %s" what e
  | Ok (r : Protocol.reply) -> r

(* strip the per-run fields (session id, process snapshot) so two runs
   of the same logical sequence can be compared byte-for-byte *)
let stable_body (r : Protocol.reply) =
  match r.Protocol.body with
  | Json.Obj fields ->
    Json.to_string
      (Json.Obj
         (List.filter (fun (k, _) -> k <> "session" && k <> "process") fields))
  | j -> Json.to_string j

(* ------------------------------------------------------------------ *)
(* Two sessions, different specs, interleaved edits: replies and
   per-session counters byte-identical to a serial replay *)

let edit_sequence_a =
  [
    [ Space.Task_priority { task = "t3"; priority = 4 } ];
    [ Space.Source_period { source = "s3"; period = 900 } ];
    [ Space.Task_priority { task = "t3"; priority = 3 } ];
    [ Space.Source_period { source = "s3"; period = 1000 } ];
  ]

let edit_sequence_b =
  [
    [ Space.Task_priority { task = "radio_proc"; priority = 5 } ];
    [ Space.Source_period { source = "nav"; period = 120 } ];
    [ Space.Task_priority { task = "radio_proc"; priority = 3 } ];
    [ Space.Source_period { source = "nav"; period = 100 } ];
  ]

type session_run = {
  edit_bodies : string list;
  counters : string;  (** the session's metrics counters, rendered *)
}

let run_session c ~spec_text ~edits ~interleave_with =
  let load = reply_exn "load" (Client.load c ~spec:spec_text) in
  Alcotest.(check int) "load ok" 0 (Client.exit_code load);
  let session =
    match Client.session_id load with
    | Some id -> id
    | None -> Alcotest.fail "load reply has no session id"
  in
  let edit_bodies =
    List.mapi
      (fun i es ->
        interleave_with i;
        let r = reply_exn "edit" (Client.edit c ~session es) in
        Alcotest.(check int) "edit ok" 0 (Client.exit_code r);
        stable_body r)
      edits
  in
  let m = reply_exn "metrics" (Client.metrics c ~session) in
  let counters =
    match Json.member "counters" m.Protocol.body with
    | Some j -> Json.to_string j
    | None -> Alcotest.fail "metrics reply has no counters"
  in
  ignore (reply_exn "close" (Client.close_session c ~session));
  { edit_bodies; counters }

let interleaved_sessions_scope_exact () =
  let spec_a = read_file "paper_gateway.scm" in
  let spec_b = read_file "avionics.scm" in
  with_server (fun path ->
    (* interleaved: session B advances one edit between every two edits
       of session A (driven from one thread, so the interleaving is
       deterministic; the sessions still share the server, the worker
       pool and the metrics registry) *)
    let cb = connect_retry path in
    let load_b = reply_exn "load b" (Client.load cb ~spec:spec_b) in
    let session_b =
      match Client.session_id load_b with
      | Some id -> id
      | None -> Alcotest.fail "load b: no session id"
    in
    let b_bodies = ref [] in
    let b_edits = Array.of_list edit_sequence_b in
    let ca = connect_retry path in
    let a =
      run_session ca ~spec_text:spec_a ~edits:edit_sequence_a
        ~interleave_with:(fun i ->
          let r = reply_exn "edit b" (Client.edit cb ~session:session_b b_edits.(i)) in
          b_bodies := stable_body r :: !b_bodies)
    in
    let mb = reply_exn "metrics b" (Client.metrics cb ~session:session_b) in
    let b_counters =
      match Json.member "counters" mb.Protocol.body with
      | Some j -> Json.to_string j
      | None -> Alcotest.fail "metrics b: no counters"
    in
    ignore (reply_exn "close b" (Client.close_session cb ~session:session_b));
    Client.close ca;
    Client.close cb;
    (* serial replay on the same daemon: first all of A, then all of B *)
    let c = connect_retry path in
    let a' =
      run_session c ~spec_text:spec_a ~edits:edit_sequence_a
        ~interleave_with:(fun _ -> ())
    in
    let b' =
      run_session c ~spec_text:spec_b ~edits:edit_sequence_b
        ~interleave_with:(fun _ -> ())
    in
    Client.close c;
    List.iteri
      (fun i (x, y) ->
        Alcotest.(check string)
          (Printf.sprintf "session A edit %d byte-identical to serial replay" i)
          y x)
      (List.combine a.edit_bodies a'.edit_bodies);
    List.iteri
      (fun i (x, y) ->
        Alcotest.(check string)
          (Printf.sprintf "session B edit %d byte-identical to serial replay" i)
          y x)
      (List.combine (List.rev !b_bodies) b'.edit_bodies);
    (* scope-exactness: each session's counters record its own work
       only, so the interleaving cannot leak into them *)
    Alcotest.(check string) "session A counters scope-exact" a'.counters
      a.counters;
    Alcotest.(check string) "session B counters scope-exact" b'.counters
      b_counters)

(* ------------------------------------------------------------------ *)
(* Protocol fuzz: malformed frames, oversized payloads, disconnects *)

(* wait out the daemon's startup: until the socket file exists and
   accepts connections, keep retrying *)
let raw_connect path =
  let rec go n =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when n > 0 ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Thread.delay 0.05;
      go (n - 1)
  in
  go 100

let read_reply fd =
  let reader = Protocol.reader fd in
  match Protocol.read_frame reader with
  | Error e -> Error e
  | Ok payload -> begin
    match Json.of_string payload with
    | Error e -> Alcotest.failf "reply is not JSON: %s" e
    | Ok j -> begin
      match Protocol.reply_of_json j with
      | Error e -> Alcotest.failf "reply does not decode: %s" e
      | Ok r -> Ok r
    end
  end

let write_all fd s =
  ignore (Unix.write_substring fd s 0 (String.length s))

let expect_fault_then_close what fd =
  (match read_reply fd with
  | Ok r ->
    Alcotest.(check int) (what ^ ": fault status") 1
      (Protocol.status_code r.Protocol.status)
  | Error e ->
    Alcotest.failf "%s: no reply before close: %s" what
      (Protocol.frame_error_to_string e));
  (* the stream position is unrecoverable: the server must drop us *)
  let reader = Protocol.reader fd in
  (match Protocol.read_frame ~max_frame:1024 reader with
  | Error Protocol.Closed -> ()
  | Error e ->
    Alcotest.failf "%s: expected close, got %s" what
      (Protocol.frame_error_to_string e)
  | Ok _ -> Alcotest.failf "%s: server kept talking after a framing fault" what);
  Unix.close fd

let protocol_fuzz () =
  with_server (fun path ->
    (* 1. malformed length header *)
    let fd = raw_connect path in
    write_all fd "notalength\n";
    expect_fault_then_close "malformed header" fd;
    (* 2. oversized payload announcement *)
    let fd = raw_connect path in
    write_all fd "99999999\n";
    expect_fault_then_close "oversized" fd;
    (* 3. missing trailer newline *)
    let fd = raw_connect path in
    write_all fd "2\n{}X";
    expect_fault_then_close "missing trailer" fd;
    (* 4. abrupt disconnect mid-frame must not kill the daemon *)
    let fd = raw_connect path in
    write_all fd "120\n{\"id\":1,";
    Unix.close fd;
    (* 5. a frame that is valid but not JSON: fault reply, connection
       survives (the stream position is still good) *)
    let c = connect_retry path in
    let fd = raw_connect path in
    Protocol.write_frame fd "{nope";
    (match read_reply fd with
    | Ok r ->
      Alcotest.(check int) "bad JSON: fault status" 1
        (Protocol.status_code r.Protocol.status)
    | Error e ->
      Alcotest.failf "bad JSON: %s" (Protocol.frame_error_to_string e));
    Protocol.write_frame fd "{\"id\":7,\"op\":\"ping\"}";
    (match read_reply fd with
    | Ok r ->
      Alcotest.(check int) "same connection still serves" 0
        (Protocol.status_code r.Protocol.status);
      Alcotest.(check int) "reply id echoes" 7 r.Protocol.rep_id
    | Error e ->
      Alcotest.failf "ping after bad JSON: %s"
        (Protocol.frame_error_to_string e));
    Unix.close fd;
    (* 6. unknown session is a fault, not a crash *)
    let r = reply_exn "edit" (Client.edit c ~session:"s-999"
      [ Space.Task_priority { task = "t3"; priority = 4 } ]) in
    Alcotest.(check int) "unknown session is a fault" 1 (Client.exit_code r);
    (* and the daemon still answers *)
    let r = reply_exn "ping" (Client.ping c) in
    Alcotest.(check int) "daemon alive after fuzz" 0 (Client.exit_code r);
    Client.close c)

(* ------------------------------------------------------------------ *)
(* LRU eviction clears the victim's pinned-worker scratch: reloading
   the same spec after an eviction must reply byte-identically to the
   first load's analyse (modulo session id / process snapshot /
   cache-hit — the cross-session analysis cache legitimately survives
   eviction; the per-session scratch must not) *)

let int_field what body key =
  match Json.member key body with
  | Some (Json.Int n) -> n
  | _ -> Alcotest.failf "%s: no %s field" what key

(* drop the fields that legitimately differ between the two rounds *)
let evict_stable (r : Protocol.reply) =
  match r.Protocol.body with
  | Json.Obj fields ->
    Json.to_string
      (Json.Obj
         (List.filter
            (fun (k, _) ->
              k <> "session" && k <> "process" && k <> "cache-hit")
            fields))
  | j -> Json.to_string j

let evicted_session_scratch_cleared () =
  let spec_text = read_file "paper_gateway.scm" in
  with_server ~max_sessions:1 (fun path ->
    let c = connect_retry path in
    let session_of what r =
      match Client.session_id r with
      | Some id -> id
      | None -> Alcotest.failf "%s: no session id" what
    in
    let load1 = reply_exn "load 1" (Client.load c ~spec:spec_text) in
    let s1 = session_of "load 1" load1 in
    let a1 = reply_exn "analyse 1" (Client.analyse c ~session:s1) in
    Alcotest.(check int) "analyse 1 ok" 0 (Client.exit_code a1);
    (* re-analyse: replayed from the pinned worker's scratch *)
    let a1' = reply_exn "analyse 1 again" (Client.analyse c ~session:s1) in
    Alcotest.(check string) "scratch replay is byte-identical"
      (evict_stable a1) (evict_stable a1');
    (* the table holds one session: loading again evicts s1 *)
    let load2 = reply_exn "load 2" (Client.load c ~spec:spec_text) in
    let s2 = session_of "load 2" load2 in
    Alcotest.(check bool) "fresh session id" true (not (String.equal s1 s2));
    let m = reply_exn "metrics" (Client.metrics c ~session:s2) in
    Alcotest.(check int) "one eviction" 1
      (int_field "metrics" m.Protocol.body "evictions");
    Alcotest.(check int) "one live session" 1
      (int_field "metrics" m.Protocol.body "sessions");
    (* the evicted id is gone, and faults instead of crashing *)
    let r =
      reply_exn "edit evicted"
        (Client.edit c ~session:s1
           [ Space.Task_priority { task = "t3"; priority = 4 } ])
    in
    Alcotest.(check int) "evicted session faults" 1 (Client.exit_code r);
    (* the reloaded session's analyse is byte-identical to the first
       round — in particular it did not replay s1's scratch entries *)
    let a2 = reply_exn "analyse 2" (Client.analyse c ~session:s2) in
    Alcotest.(check string) "evict-then-reload analyse byte-identical"
      (evict_stable a1) (evict_stable a2);
    (* the eviction's scratch clear ran on the pinned worker and found
       s1's memoised reply there (submitted asynchronously at evict
       time, so poll briefly) *)
    let cleared =
      Obs.Metrics.counter "explore.pool.service.scratch_cleared"
    in
    let rec wait n =
      if Obs.Metrics.total cleared > 0 then true
      else if n = 0 then false
      else begin
        Thread.delay 0.05;
        wait (n - 1)
      end
    in
    Alcotest.(check bool) "worker scratch was cleared" true (wait 100);
    ignore (reply_exn "close 2" (Client.close_session c ~session:s2));
    Client.close c)

(* ------------------------------------------------------------------ *)
(* End-to-end: load / edit / analyse on the daemon matches offline *)

let daemon_matches_offline () =
  let spec_text = read_file "paper_gateway.scm" in
  let description =
    match Cpa_system.Spec_file.parse spec_text with
    | Ok d -> d
    | Error e -> Alcotest.failf "spec parse: %s" e
  in
  let spec = Cpa_system.Spec_file.to_spec description in
  let offline = ok_exn "offline" (Engine.analyse spec) in
  with_server (fun path ->
    let c = connect_retry path in
    let load = reply_exn "load" (Client.load c ~spec:spec_text) in
    let session =
      match Client.session_id load with
      | Some id -> id
      | None -> Alcotest.fail "no session id"
    in
    let rendered (o : Engine.element_outcome) =
      match o.Engine.outcome with
      | Scheduling.Busy_window.Bounded iv ->
        Json.to_string
          (Json.Obj
             [
               "element", Json.Str o.Engine.element;
               "resource", Json.Str o.Engine.resource;
               "outcome", Json.Str "bounded";
               "lo", Json.Int (Timebase.Interval.lo iv);
               "hi", Json.Int (Timebase.Interval.hi iv);
             ])
      | Scheduling.Busy_window.Unbounded reason ->
        Json.to_string
          (Json.Obj
             [
               "element", Json.Str o.Engine.element;
               "resource", Json.Str o.Engine.resource;
               "outcome", Json.Str "unbounded";
               "reason", Json.Str reason;
             ])
    in
    let expected =
      "[" ^ String.concat "," (List.map rendered offline.Engine.outcomes) ^ "]"
    in
    (match Json.member "outcomes" load.Protocol.body with
    | Some j ->
      Alcotest.(check string) "daemon outcomes = offline engine" expected
        (Json.to_string j)
    | None -> Alcotest.fail "load reply has no outcomes");
    let a = reply_exn "analyse" (Client.analyse c ~session) in
    (match Json.member "outcomes" a.Protocol.body with
    | Some j ->
      Alcotest.(check string) "analyse outcomes = offline engine" expected
        (Json.to_string j)
    | None -> Alcotest.fail "analyse reply has no outcomes");
    ignore (reply_exn "close" (Client.close_session c ~session));
    Client.close c)

let () =
  Alcotest.run "serve"
    [
      ( "wire codec",
        List.map QCheck_alcotest.to_alcotest
          [ prop_wire_roundtrip; prop_wire_canonical ]
        @ [ Alcotest.test_case "rejects malformed input" `Quick wire_rejects ] );
      ( "warm sessions",
        [ Alcotest.test_case "warm updates = cold analysis" `Quick
            warm_matches_cold ] );
      ( "daemon",
        [
          Alcotest.test_case "outcomes match the offline engine" `Quick
            daemon_matches_offline;
          Alcotest.test_case "interleaved sessions are scope-exact" `Quick
            interleaved_sessions_scope_exact;
          Alcotest.test_case "protocol fuzz" `Quick protocol_fuzz;
          Alcotest.test_case "eviction clears pinned-worker scratch" `Quick
            evicted_session_scratch_cleared;
        ] );
    ]
