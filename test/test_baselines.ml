(* Tests for the related-work baseline models: Gresser's event vectors
   with demand bound functions (paper reference [4]) and Albers-style
   hierarchical event sequences for a single stream (paper reference [1]). *)

module Time = Timebase.Time
module Count = Timebase.Count
module Stream = Event_model.Stream
module Event_vector = Baselines.Event_vector
module Event_sequence = Baselines.Event_sequence

let time = Alcotest.testable Time.pp Time.equal

(* ------------------------------------------------------------------ *)
(* event vectors *)

let test_ev_periodic () =
  let ev = Event_vector.of_periodic ~period:100 in
  Alcotest.(check int) "eta 1" 1 (Event_vector.eta_plus ev 1);
  Alcotest.(check int) "eta 100" 1 (Event_vector.eta_plus ev 100);
  Alcotest.(check int) "eta 101" 2 (Event_vector.eta_plus ev 101);
  Alcotest.(check int) "eta 0" 0 (Event_vector.eta_plus ev 0);
  (* agrees with the standard event model on every window *)
  let sem = Event_model.Sem.periodic 100 in
  for dt = 0 to 500 do
    Alcotest.(check int)
      (Printf.sprintf "dt=%d" dt)
      (Count.to_int (Event_model.Sem.eta_plus sem dt))
      (Event_vector.eta_plus ev dt)
  done

let test_ev_burst () =
  (* 3 events at distance 10, repeating every 200 *)
  let ev = Event_vector.of_periodic_burst ~period:200 ~burst:3 ~d_min:10 in
  Alcotest.(check int) "burst inside window" 3 (Event_vector.eta_plus ev 21);
  Alcotest.(check int) "one burst only" 3 (Event_vector.eta_plus ev 200);
  Alcotest.(check int) "second burst begins" 4 (Event_vector.eta_plus ev 201);
  (* matches the deterministic bursty stream of the core library *)
  let reference =
    Stream.periodic_burst ~name:"b" ~period:200 ~burst:3 ~d_min:10
  in
  List.iter
    (fun dt ->
      Alcotest.(check int)
        (Printf.sprintf "vs stream dt=%d" dt)
        (Count.to_int (Stream.eta_plus reference dt))
        (Event_vector.eta_plus ev dt))
    [ 1; 10; 11; 20; 21; 199; 200; 201; 211; 500 ]

let test_ev_one_shot () =
  let ev =
    Event_vector.make
      [ { Event_vector.offset = 0; cycle = Time.Inf };
        { Event_vector.offset = 50; cycle = Time.Inf } ]
  in
  Alcotest.(check int) "both" 2 (Event_vector.eta_plus ev 51);
  Alcotest.(check int) "first only" 1 (Event_vector.eta_plus ev 50);
  Alcotest.check time "delta_min 2" (Time.of_int 50) (Event_vector.delta_min ev 2);
  Alcotest.check time "delta_min 3 impossible" Time.Inf
    (Event_vector.delta_min ev 3)

let test_ev_delta_min_inverse () =
  let ev = Event_vector.of_periodic_burst ~period:200 ~burst:3 ~d_min:10 in
  Alcotest.check time "n=2" (Time.of_int 10) (Event_vector.delta_min ev 2);
  Alcotest.check time "n=3" (Time.of_int 20) (Event_vector.delta_min ev 3);
  Alcotest.check time "n=4" (Time.of_int 200) (Event_vector.delta_min ev 4);
  (* to_stream embeds consistently *)
  let s = Event_vector.to_stream ev in
  for n = 2 to 8 do
    Alcotest.check time
      (Printf.sprintf "stream n=%d" n)
      (Event_vector.delta_min ev n) (Stream.delta_min s n)
  done;
  Alcotest.check time "no upper bound" Time.Inf (Stream.delta_plus s 2)

let test_ev_validation () =
  let raises f = match f () with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "empty" true (raises (fun () -> Event_vector.make []));
  Alcotest.(check bool) "negative offset" true
    (raises (fun () ->
       Event_vector.make [ { Event_vector.offset = -1; cycle = Time.Inf } ]));
  Alcotest.(check bool) "zero cycle" true
    (raises (fun () ->
       Event_vector.make [ { Event_vector.offset = 0; cycle = Time.of_int 0 } ]))

let test_dbf () =
  (* one periodic task: C=3, D=10, P=20: dbf(dt) = 3 * ceil-ish *)
  let src =
    { Event_vector.events = Event_vector.of_periodic ~period:20;
      deadline = 10; wcet = 3 }
  in
  Alcotest.(check int) "before deadline" 0 (Event_vector.demand_bound [ src ] 9);
  Alcotest.(check int) "at deadline" 3 (Event_vector.demand_bound [ src ] 10);
  Alcotest.(check int) "second job" 6 (Event_vector.demand_bound [ src ] 30);
  Alcotest.(check bool) "feasible" true
    (Event_vector.edf_feasible ~horizon:1000 [ src ] = Ok ())

let test_edf_infeasible () =
  let overload =
    [
      { Event_vector.events = Event_vector.of_periodic ~period:10;
        deadline = 10; wcet = 6 };
      { Event_vector.events = Event_vector.of_periodic ~period:10;
        deadline = 10; wcet = 6 };
    ]
  in
  (match Event_vector.edf_feasible ~horizon:1000 overload with
   | Error dt -> Alcotest.(check int) "first violation" 10 dt
   | Ok () -> Alcotest.fail "expected infeasible")

(* ------------------------------------------------------------------ *)
(* hierarchical event sequences *)

let test_seq_matches_burst_stream () =
  (* inner sequence with equidistant offsets = periodic burst *)
  let seq =
    Event_sequence.make ~outer_period:200 ~inner_offsets:[ 0; 10; 20 ] ()
  in
  let reference =
    Stream.periodic_burst ~name:"b" ~period:200 ~burst:3 ~d_min:10
  in
  for n = 2 to 10 do
    Alcotest.check time
      (Printf.sprintf "delta_min %d" n)
      (Stream.delta_min reference n)
      (Event_sequence.delta_min seq n);
    Alcotest.check time
      (Printf.sprintf "delta_plus %d" n)
      (Stream.delta_plus reference n)
      (Event_sequence.delta_plus seq n)
  done

let test_seq_irregular_pattern () =
  (* the point of [1]: irregular inner sequences a SEM cannot express *)
  let seq =
    Event_sequence.make ~outer_period:1000 ~inner_offsets:[ 0; 5; 100 ] ()
  in
  Alcotest.(check int) "inner length" 3 (Event_sequence.inner_length seq);
  Alcotest.check time "tightest pair" (Time.of_int 5)
    (Event_sequence.delta_min seq 2);
  Alcotest.check time "whole burst" (Time.of_int 100)
    (Event_sequence.delta_min seq 3);
  (* 4 events always span into the next replay; every start yields 1000 *)
  Alcotest.check time "crossing replays" (Time.of_int 1000)
    (Event_sequence.delta_min seq 4)

let test_seq_jitter () =
  let seq =
    Event_sequence.make ~outer_period:1000 ~outer_jitter:30
      ~inner_offsets:[ 0; 100 ] ()
  in
  (* same replay: exact; crossing replays: +- jitter *)
  Alcotest.check time "same replay" (Time.of_int 100)
    (Event_sequence.delta_min seq 2);
  (* 3 events: s=0: crosses into replay 1: 1000 - 30 = 970;
     s=1: 100 .. 1100: 1000 - 30 = 970 *)
  Alcotest.check time "min crossing" (Time.of_int 970)
    (Event_sequence.delta_min seq 3);
  Alcotest.check time "max crossing" (Time.of_int 1030)
    (Event_sequence.delta_plus seq 3)

let test_seq_sem_approximation_is_coarser () =
  (* the fitted SEM must be conservative and is strictly coarser for
     irregular sequences: its eta_plus over-counts somewhere *)
  let seq =
    Event_sequence.make ~outer_period:1000 ~inner_offsets:[ 0; 5; 100 ] ()
  in
  let exact = Event_sequence.to_stream seq in
  let sem = Event_sequence.sem_approximation seq in
  let sem_stream = Event_model.Sem.to_stream sem in
  let coarser = ref false in
  for dt = 1 to 2000 do
    let e = Count.to_int (Stream.eta_plus exact dt) in
    let a = Count.to_int (Stream.eta_plus sem_stream dt) in
    Alcotest.(check bool)
      (Printf.sprintf "conservative at %d" dt)
      true (a >= e);
    if a > e then coarser := true
  done;
  Alcotest.(check bool) "strictly coarser somewhere" true !coarser

let test_seq_validation () =
  let raises f = match f () with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "empty" true
    (raises (fun () ->
       Event_sequence.make ~outer_period:100 ~inner_offsets:[] ()));
  Alcotest.(check bool) "not starting at 0" true
    (raises (fun () ->
       Event_sequence.make ~outer_period:100 ~inner_offsets:[ 5; 10 ] ()));
  Alcotest.(check bool) "unsorted" true
    (raises (fun () ->
       Event_sequence.make ~outer_period:100 ~inner_offsets:[ 0; 20; 10 ] ()));
  Alcotest.(check bool) "overrun" true
    (raises (fun () ->
       Event_sequence.make ~outer_period:100 ~inner_offsets:[ 0; 100 ] ()))

(* ------------------------------------------------------------------ *)
(* interoperability with the system engine *)

let test_baseline_models_as_sources () =
  (* both related-work models embed as Stream.t, so they feed the same
     compositional analysis as native streams *)
  let vector_source =
    Event_vector.to_stream ~name:"bursty"
      (Event_vector.of_periodic_burst ~period:400 ~burst:3 ~d_min:10)
  in
  let sequence_source =
    Event_sequence.to_stream ~name:"pattern"
      (Event_sequence.make ~outer_period:600 ~inner_offsets:[ 0; 7 ] ())
  in
  let spec =
    Cpa_system.Spec.make
      ~sources:[ "bursty", vector_source; "pattern", sequence_source ]
      ~resources:
        [ { Cpa_system.Spec.res_name = "cpu"; scheduler = Cpa_system.Spec.Spp; backend = Cpa_system.Spec.Cpa } ]
      ~tasks:
        [
          Cpa_system.Spec.task ~name:"hp" ~resource:"cpu"
            ~cet:(Timebase.Interval.point 5) ~priority:1
            ~activation:(Cpa_system.Spec.From_source "bursty") ();
          Cpa_system.Spec.task ~name:"lp" ~resource:"cpu"
            ~cet:(Timebase.Interval.point 20) ~priority:2
            ~activation:(Cpa_system.Spec.From_source "pattern") ();
        ]
      ()
  in
  match Cpa_system.Engine.analyse spec with
  | Error e -> Alcotest.failf "analysis failed: %s" (Guard.Error.to_string e)
  | Ok result ->
    Alcotest.(check bool) "converged" true result.Cpa_system.Engine.converged;
    (* hp: each 5-unit job finishes before the next burst event (10 away) *)
    (match Cpa_system.Engine.response result "hp" with
     | Some r -> Alcotest.(check int) "hp burst response" 5
                   (Timebase.Interval.hi r)
     | None -> Alcotest.fail "hp unbounded");
    (* lp: first job suffers the whole burst (20 + 3*5 = 35); the pattern's
       second event, 7 later, waits behind it: 35 + 20 - 7 = 48 *)
    (match Cpa_system.Engine.response result "lp" with
     | Some r -> Alcotest.(check int) "lp response" 48 (Timebase.Interval.hi r)
     | None -> Alcotest.fail "lp unbounded")

(* ------------------------------------------------------------------ *)
(* properties *)

let prop_ev_eta_monotone =
  QCheck.Test.make ~name:"event vector eta_plus monotone" ~count:100
    (QCheck.pair
       (QCheck.triple (QCheck.int_range 50 500) (QCheck.int_range 1 5)
          (QCheck.int_range 1 10))
       (QCheck.int_range 0 1000))
    (fun ((p, b, d), dt) ->
      let p = Stdlib.max 50 p
      and b = Stdlib.max 1 b
      and d = Stdlib.max 1 d in
      QCheck.assume ((b - 1) * d < p);
      let ev = Event_vector.of_periodic_burst ~period:p ~burst:b ~d_min:d in
      Event_vector.eta_plus ev dt <= Event_vector.eta_plus ev (dt + 1))

let prop_ev_delta_galois =
  QCheck.Test.make ~name:"event vector delta_min inverts eta_plus" ~count:100
    (QCheck.pair
       (QCheck.pair (QCheck.int_range 50 500) (QCheck.int_range 1 4))
       (QCheck.int_range 2 12))
    (fun ((p, b), n) ->
      let p = Stdlib.max 50 p and b = Stdlib.max 1 b and n = Stdlib.max 2 n in
      QCheck.assume ((b - 1) * 5 < p);
      let ev = Event_vector.of_periodic_burst ~period:p ~burst:b ~d_min:5 in
      match Event_vector.delta_min ev n with
      | Time.Fin d ->
        Event_vector.eta_plus ev (d + 1) >= n
        && (d = 0 || Event_vector.eta_plus ev d < n)
      | Time.Inf -> false)

let prop_seq_stream_well_formed =
  QCheck.Test.make ~name:"event sequence streams well formed" ~count:60
    (QCheck.pair (QCheck.int_range 100 1000)
       (QCheck.list_of_size (QCheck.Gen.int_range 1 5) (QCheck.int_range 1 80)))
    (fun (p, raw) ->
      let p = Stdlib.max 100 p in
      let offsets =
        0 :: List.map (fun o -> 1 + (abs o mod (p - 1))) raw
        |> List.sort_uniq compare
      in
      let seq = Event_sequence.make ~outer_period:p ~inner_offsets:offsets () in
      Stream.well_formed ~horizon:32 (Event_sequence.to_stream seq) = Ok ())

let () =
  Alcotest.run "baselines"
    [
      ( "event vectors",
        [
          Alcotest.test_case "periodic" `Quick test_ev_periodic;
          Alcotest.test_case "burst" `Quick test_ev_burst;
          Alcotest.test_case "one shot" `Quick test_ev_one_shot;
          Alcotest.test_case "delta_min inverse" `Quick test_ev_delta_min_inverse;
          Alcotest.test_case "validation" `Quick test_ev_validation;
          Alcotest.test_case "demand bound" `Quick test_dbf;
          Alcotest.test_case "EDF infeasible" `Quick test_edf_infeasible;
        ] );
      ( "event sequences",
        [
          Alcotest.test_case "matches burst stream" `Quick
            test_seq_matches_burst_stream;
          Alcotest.test_case "irregular pattern" `Quick test_seq_irregular_pattern;
          Alcotest.test_case "outer jitter" `Quick test_seq_jitter;
          Alcotest.test_case "SEM approximation coarser" `Quick
            test_seq_sem_approximation_is_coarser;
          Alcotest.test_case "validation" `Quick test_seq_validation;
        ] );
      ( "interop",
        [
          Alcotest.test_case "as engine sources" `Quick
            test_baseline_models_as_sources;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_ev_eta_monotone;
            prop_ev_delta_galois;
            prop_seq_stream_well_formed;
          ] );
    ]
