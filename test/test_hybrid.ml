(* Tests for the hybrid RTC<->CPA coupling: stream<->curve round trips
   (exact on jitter-free periodic input, conservative everywhere), the
   pseudo-inversion primitive, per-resource backend agreement on
   single-resource point systems, and mixed-backend convergence through
   the global engine. *)

module Time = Timebase.Time
module Interval = Timebase.Interval
module Stream = Event_model.Stream
module Spec = Cpa_system.Spec
module Engine = Cpa_system.Engine
module Convert = Hybrid.Convert
module Curve = Rtc.Curve

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "analysis failed: %s" (Guard.Error.to_string e)

let roundtrip ~horizon ~wcet ~bcet stream =
  let curves = Convert.of_stream ~horizon ~wcet ~bcet stream in
  Convert.to_stream
    ~name:(Stream.name stream ^ "~rt")
    ~wcet ~bcet ~upper:curves.Convert.upper ~lower:(Some curves.Convert.lower)

(* ------------------------------------------------------------------ *)
(* conversion round trips *)

let test_roundtrip_periodic_exact () =
  let s = Stream.periodic ~name:"p" ~period:10 in
  let s' = roundtrip ~horizon:200 ~wcet:3 ~bcet:3 s in
  for n = 2 to 20 do
    Alcotest.(check bool)
      (Printf.sprintf "delta_min %d exact" n)
      true
      (Time.equal (Stream.delta_min s' n) (Stream.delta_min s n));
    Alcotest.(check bool)
      (Printf.sprintf "delta_plus %d exact" n)
      true
      (Time.equal (Stream.delta_plus s' n) (Stream.delta_plus s n))
  done

let test_roundtrip_jitter_conservative () =
  (* jitter and wcet > bcet lose exactness but never conservativeness,
     including well past the sampled horizon (n = 60 needs a window of
     1165 against a horizon of 256, i.e. the certified tails) *)
  let s = Stream.periodic_jitter ~name:"pj" ~period:20 ~jitter:15 () in
  let s' = roundtrip ~horizon:256 ~wcet:5 ~bcet:2 s in
  for n = 2 to 60 do
    Alcotest.(check bool)
      (Printf.sprintf "delta_min %d conservative" n)
      true
      Time.(Stream.delta_min s' n <= Stream.delta_min s n);
    Alcotest.(check bool)
      (Printf.sprintf "delta_plus %d conservative" n)
      true
      Time.(Stream.delta_plus s' n >= Stream.delta_plus s n)
  done

let prop_roundtrip_conservative =
  QCheck.Test.make ~name:"stream round trip is conservative" ~count:60
    (QCheck.pair
       (QCheck.pair (QCheck.int_range 5 60) (QCheck.int_range 0 40))
       (QCheck.pair (QCheck.int_range 1 6) (QCheck.int_range 0 5)))
    (fun ((period, jitter), (bcet, extra)) ->
      let wcet = bcet + extra in
      let s = Stream.periodic_jitter ~name:"q" ~period ~jitter () in
      let s' = roundtrip ~horizon:192 ~wcet ~bcet s in
      List.for_all
        (fun n ->
          Time.(Stream.delta_min s' n <= Stream.delta_min s n)
          && Time.(Stream.delta_plus s' n >= Stream.delta_plus s n))
        (List.init 39 (fun i -> i + 2)))

(* ------------------------------------------------------------------ *)
(* pseudo-inversion primitive *)

let test_first_reaching () =
  let c = Curve.linear ~kind:Curve.Upper ~horizon:10 ~rate:(1, 2) in
  (* eval dt = ceil (dt / 2) *)
  Alcotest.(check (option int)) "zero target" (Some 0)
    (Convert.first_reaching c 0);
  Alcotest.(check (option int)) "within horizon" (Some 5)
    (Convert.first_reaching c 3);
  Alcotest.(check (option int)) "exactly at horizon" (Some 9)
    (Convert.first_reaching c 5);
  Alcotest.(check (option int)) "past horizon via tail" (Some 39)
    (Convert.first_reaching c 20);
  let z = Curve.create ~kind:Curve.Lower ~horizon:10 ~tail_rate:(0, 1) (fun _ -> 0) in
  Alcotest.(check (option int)) "zero-rate curve never reaches" None
    (Convert.first_reaching z 1)

(* ------------------------------------------------------------------ *)
(* backend agreement and mixed-backend convergence *)

let point_spec backend =
  Spec.make
    ~sources:
      [
        "s1", Stream.periodic ~name:"s1" ~period:100;
        "s2", Stream.periodic ~name:"s2" ~period:150;
      ]
    ~resources:[ { Spec.res_name = "cpu"; scheduler = Spec.Spp; backend } ]
    ~tasks:
      [
        Spec.task ~name:"t1" ~resource:"cpu" ~cet:(Interval.point 10)
          ~priority:1 ~activation:(Spec.From_source "s1") ();
        Spec.task ~name:"t2" ~resource:"cpu" ~cet:(Interval.point 20)
          ~priority:2 ~activation:(Spec.From_source "s2") ();
      ]
    ()

let test_pure_backend_agreement () =
  (* on a single-resource SPP point system the RTC and CPA local
     analyses must agree on every worst-case response *)
  let cpa = ok (Engine.analyse ~mode:Engine.Hierarchical (point_spec Spec.Cpa)) in
  let rtc = ok (Engine.analyse ~mode:Engine.Hierarchical (point_spec Spec.Rtc)) in
  Alcotest.(check bool) "cpa converged" true cpa.Engine.converged;
  Alcotest.(check bool) "rtc converged" true rtc.Engine.converged;
  List.iter
    (fun name ->
      match Engine.response cpa name, Engine.response rtc name with
      | Some a, Some b ->
        Alcotest.(check int) (name ^ " worst case agrees") (Interval.hi a)
          (Interval.hi b)
      | _ -> Alcotest.failf "%s: missing response" name)
    [ "t1"; "t2" ]

let mixed_spec () =
  (* a -> b -> c ping-pongs between an RTC resource and a CPA resource,
     so the global fixed point crosses the conversion boundary twice *)
  Spec.make
    ~sources:[ "s", Stream.periodic ~name:"s" ~period:100 ]
    ~resources:
      [
        { Spec.res_name = "cpu1"; scheduler = Spec.Spp; backend = Spec.Rtc };
        { Spec.res_name = "cpu2"; scheduler = Spec.Spp; backend = Spec.Cpa };
      ]
    ~tasks:
      [
        Spec.task ~name:"a" ~resource:"cpu1"
          ~cet:(Interval.make ~lo:5 ~hi:10)
          ~priority:1 ~activation:(Spec.From_source "s") ();
        Spec.task ~name:"b" ~resource:"cpu2"
          ~cet:(Interval.make ~lo:10 ~hi:20)
          ~priority:1 ~activation:(Spec.From_output "a") ();
        Spec.task ~name:"c" ~resource:"cpu1"
          ~cet:(Interval.make ~lo:2 ~hi:8)
          ~priority:2 ~activation:(Spec.From_output "b") ();
      ]
    ()

let test_mixed_backend_converges () =
  let result =
    ok (Engine.analyse ~mode:Engine.Hierarchical ~incremental:false (mixed_spec ()))
  in
  Alcotest.(check bool) "converged" true result.Engine.converged;
  List.iter
    (fun (name, cet_hi) ->
      match Engine.response result name with
      | Some r ->
        Alcotest.(check bool)
          (name ^ " bounded below by demand")
          true
          (Interval.hi r >= cet_hi)
      | None -> Alcotest.failf "%s: missing response" name)
    [ "a", 10; "b", 20; "c", 8 ]

let test_edf_rtc_rejected () =
  let spec =
    Spec.make
      ~sources:[ "s", Stream.periodic ~name:"s" ~period:100 ]
      ~resources:
        [ { Spec.res_name = "cpu"; scheduler = Spec.Edf; backend = Spec.Rtc } ]
      ~tasks:
        [
          Spec.task ~name:"t" ~resource:"cpu" ~cet:(Interval.point 10)
            ~priority:1 ~deadline:50 ~activation:(Spec.From_source "s") ();
        ]
      ()
  in
  match Spec.validate spec with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "edf resource with rtc backend must be rejected"

let () =
  Alcotest.run "hybrid"
    [
      ( "conversion",
        [
          Alcotest.test_case "periodic round trip exact" `Quick
            test_roundtrip_periodic_exact;
          Alcotest.test_case "jittery round trip conservative" `Quick
            test_roundtrip_jitter_conservative;
          Alcotest.test_case "first_reaching" `Quick test_first_reaching;
        ] );
      ( "engine",
        [
          Alcotest.test_case "pure backend agreement" `Quick
            test_pure_backend_agreement;
          Alcotest.test_case "mixed backend converges" `Quick
            test_mixed_backend_converges;
          Alcotest.test_case "edf rejects rtc backend" `Quick
            test_edf_rtc_rejected;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_roundtrip_conservative ] );
    ]
