(* Tests for the pluggable output-model propagation family: sanitizers,
   dominance ordering, mode invariance on jitter-free inputs, compact /
   closure agreement, and the shaper routing regression. *)

module Time = Timebase.Time
module Interval = Timebase.Interval
module Stream = Event_model.Stream
module Curve = Event_model.Curve
module Propagation = Event_model.Propagation
module Shaper = Event_model.Shaper

let time = Alcotest.testable Time.pp Time.equal

let probe_ns = [ 2; 3; 4; 5; 7; 11; 16; 33; 64; 100; 257; 1000; 4001 ]

(* ------------------------------------------------------------------ *)
(* Generators *)

let arb_stream =
  let open QCheck in
  let jittered =
    map
      (fun (p, j, d) ->
        Stream.periodic_jitter ~name:"s" ~period:p ~jitter:j
          ~d_min:(Stdlib.min d p) ())
      (triple (int_range 1 200) (int_range 0 400) (int_range 1 10))
  in
  let bursty =
    map
      (fun (p, b, d) ->
        let burst = 1 + (b mod 5) in
        let period = Stdlib.max p (burst * d) in
        Stream.periodic_burst ~name:"s" ~period ~burst ~d_min:d)
      (triple (int_range 10 300) (int_range 0 10) (int_range 1 15))
  in
  choose [ jittered; bursty ]

let arb_response =
  QCheck.map
    (fun (lo, w) -> Interval.make ~lo ~hi:(lo + w))
    QCheck.(pair (int_range 0 40) (int_range 0 60))

(* bmin at most r-, as for analysed elements (both come from the same
   response interval) *)
let arb_case =
  QCheck.map
    (fun ((s, r), b) -> s, r, Stdlib.min b (Interval.lo r))
    QCheck.(pair (pair arb_stream arb_response) (int_range 0 40))

(* A plausible busy-window completion profile for a response interval:
   q activations finishing at [r+ + (q-1) * r-], arriving at the input's
   earliest times.  Validity (not tightness) is what the sanitizer
   properties need. *)
let profile_for s r q_max =
  let fin = Interval.hi r and r_minus = Interval.lo r in
  let arr q =
    match Stream.delta_min s q with
    | Time.Fin d -> d
    | Time.Inf -> assert false
  in
  Propagation.profile
    ~arrivals:(Array.init q_max (fun i -> arr (i + 1)))
    ~finishes:
      (Array.init q_max (fun i ->
           Stdlib.max (arr (i + 1) + r_minus) (fin + (i * r_minus))))

let arb_profiled_case =
  QCheck.map
    (fun ((s, r, b), q) -> s, r, b, profile_for s r q)
    QCheck.(pair arb_case (int_range 1 4))

(* ------------------------------------------------------------------ *)
(* Properties *)

let derive_all (s, r, b, p) =
  List.map
    (fun mode ->
      mode, Propagation.derive ~mode ~response:r ~bmin:b ~profile:p s)
    Propagation.all_modes

let prop_sanitizers =
  (* every mode yields a well-formed stream: both curves monotone,
     delta_min non-negative.  (dmin <= dplus does NOT hold in general:
     an overloaded element — r- above the input rate — serializes its
     output faster than events can arrive; the engine reports overload
     separately.) *)
  QCheck.Test.make ~name:"all modes: monotone, dmin >= 0" ~count:80
    arb_profiled_case (fun case ->
      List.for_all
        (fun (_, out) ->
          List.for_all
            (fun n ->
              Time.(Stream.delta_min out n >= Time.zero)
              && Time.(Stream.delta_min out n <= Stream.delta_min out (n + 1))
              && Time.(Stream.delta_plus out n <= Stream.delta_plus out (n + 1)))
            probe_ns)
        (derive_all case))

let prop_optimal_dominates =
  (* optimal is pointwise at least as tight as every mode: its minimum
     distances are the largest, its maximum distances no larger *)
  QCheck.Test.make ~name:"optimal dominates every mode" ~count:80
    arb_profiled_case (fun case ->
      let outs = derive_all case in
      let optimal = List.assoc Propagation.Optimal outs in
      List.for_all
        (fun (_, out) ->
          List.for_all
            (fun n ->
              Time.(Stream.delta_min optimal n >= Stream.delta_min out n)
              && Time.(Stream.delta_plus optimal n <= Stream.delta_plus out n))
            probe_ns)
        outs)

let prop_offset_refines_jitter =
  (* the serialization floor only tightens the plain jitter mode *)
  QCheck.Test.make ~name:"jitter_offset >= jitter" ~count:80 arb_profiled_case
    (fun (s, r, b, p) ->
      let j =
        Propagation.derive ~mode:Jitter ~response:r ~bmin:b ~profile:p s
      in
      let jo =
        Propagation.derive ~mode:Jitter_offset ~response:r ~bmin:b ~profile:p s
      in
      List.for_all
        (fun n -> Time.(Stream.delta_min jo n >= Stream.delta_min j n))
        probe_ns)

let prop_mode_invariance_periodic =
  (* jitter-free periodic input, point response: zero spread, so every
     mode degenerates to the same shifted stream *)
  QCheck.Test.make ~name:"point response on periodic: all modes agree"
    ~count:60
    QCheck.(pair (int_range 1 300) (int_range 0 40))
    (fun (period, rt) ->
      let period = Stdlib.max 1 period in
      (* a point response keeps spread 0; with rt <= period the element
         keeps up, so no floor binds and every mode collapses to the
         input distances *)
      let rt = Stdlib.min rt period in
      let s = Stream.periodic ~name:"p" ~period in
      let r = Interval.point rt in
      let outs = derive_all (s, r, rt, profile_for s r 1) in
      let reference = List.assoc Propagation.Theta_tau outs in
      List.for_all
        (fun (_, out) ->
          List.for_all
            (fun n ->
              Time.equal (Stream.delta_min out n) (Stream.delta_min reference n)
              && Time.equal (Stream.delta_plus out n)
                   (Stream.delta_plus reference n))
            probe_ns)
        outs)

(* Reference closure-only recomputation of each mode's minimum-distance
   curve, independent of the compact construction in [derive]. *)
let reference_delta_min ~mode ~r ~bmin ~profile s n =
  let r_minus = Interval.lo r and spread = Interval.width r in
  let jit =
    Time.sub_clamped (Stream.delta_min s n) (Time.of_int spread)
  in
  let floor rate = Time.of_int ((n - 1) * rate) in
  let bw () =
    let q_max = Array.length profile.Propagation.finishes in
    let best = ref Time.Inf in
    for q = 1 to q_max do
      let c =
        match Stream.delta_min s (n + q - 1) with
        | Time.Inf -> Time.Inf
        | Time.Fin d -> Time.of_int (d - profile.Propagation.finishes.(q - 1))
      in
      best := Time.min !best c
    done;
    Time.add !best (Time.of_int r_minus)
  in
  match mode with
  | Propagation.Theta_tau | Propagation.Optimal -> assert false
  | Propagation.Jitter -> Time.max Time.zero jit
  | Propagation.Jitter_offset -> Time.max (floor r_minus) jit
  | Propagation.Jitter_bmin -> Time.max (floor bmin) jit
  | Propagation.Busy_window ->
    Time.max (Time.max (floor r_minus) jit) (bw ())

let prop_compact_matches_reference =
  (* the compact verified-window construction must agree with a direct
     closure recomputation everywhere, deep probes included *)
  QCheck.Test.make ~name:"compact derive = reference closure" ~count:120
    arb_profiled_case (fun (s, r, b, p) ->
      List.for_all
        (fun mode ->
          let out =
            Propagation.derive ~mode ~response:r ~bmin:b ~profile:p s
          in
          List.for_all
            (fun n ->
              Time.equal (Stream.delta_min out n)
                (reference_delta_min ~mode ~r ~bmin:b ~profile:p s n)
              && Time.equal (Stream.delta_plus out n)
                   (Time.add (Stream.delta_plus s n)
                      (Time.of_int (Interval.width r))))
            probe_ns)
        [ Propagation.Jitter; Propagation.Jitter_offset;
          Propagation.Jitter_bmin; Propagation.Busy_window ])

let prop_optimal_is_pointwise_max =
  QCheck.Test.make ~name:"optimal = pointwise max of modes" ~count:80
    arb_profiled_case (fun (s, r, b, p) ->
      let opt =
        Propagation.derive ~mode:Optimal ~response:r ~bmin:b ~profile:p s
      in
      let theta = Event_model.Task_op.output ~response:r s in
      List.for_all
        (fun n ->
          let expected =
            List.fold_left
              (fun acc mode ->
                Time.max acc
                  (reference_delta_min ~mode ~r ~bmin:b ~profile:p s n))
              (Stream.delta_min theta n)
              [ Propagation.Jitter; Propagation.Jitter_offset;
                Propagation.Jitter_bmin; Propagation.Busy_window ]
          in
          Time.equal (Stream.delta_min opt n) expected)
        probe_ns)

(* ------------------------------------------------------------------ *)
(* Unit tests *)

let test_mode_names_roundtrip () =
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (Propagation.mode_name m) true
        (Propagation.mode_of_name (Propagation.mode_name m) = Some m))
    Propagation.all_modes;
  Alcotest.(check bool) "unknown" true (Propagation.mode_of_name "x" = None)

let test_profile_validation () =
  let rejected a f =
    match Propagation.profile ~arrivals:a ~finishes:f with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "length mismatch" true (rejected [| 0 |] [| 1; 2 |]);
  Alcotest.(check bool) "empty" true (rejected [||] [||]);
  Alcotest.(check bool) "finish < arrival" true (rejected [| 5 |] [| 3 |]);
  Alcotest.(check bool) "non-monotone" true
    (rejected [| 0; 10 |] [| 20; 15 |]);
  Alcotest.(check bool) "valid accepted" true
    (match Propagation.profile ~arrivals:[| 0; 10 |] ~finishes:[| 8; 18 |] with
     | _ -> true
     | exception Invalid_argument _ -> false)

let test_busy_window_periodic_no_gain () =
  (* On a strictly periodic input the busy-window term collapses onto
     the jitter term: for d m = (m-1) P the candidate at the wcrt
     position q* equals d n - J exactly and every other q is no
     smaller, so busy_window = jitter_offset. *)
  let s = Stream.periodic ~name:"p" ~period:10 in
  let r = Interval.make ~lo:2 ~hi:14 in
  let p = Propagation.profile ~arrivals:[| 0; 10 |] ~finishes:[| 12; 24 |] in
  let bw =
    Propagation.derive ~mode:Busy_window ~response:r ~bmin:2 ~profile:p s
  in
  let jo =
    Propagation.derive ~mode:Jitter_offset ~response:r ~bmin:2 ~profile:p s
  in
  List.iter
    (fun n ->
      Alcotest.check time
        (Printf.sprintf "bw = jitter_offset at %d" n)
        (Stream.delta_min jo n) (Stream.delta_min bw n))
    [ 2; 3; 4; 8; 100 ]

let test_busy_window_strictly_tighter () =
  (* The busy-window refinement wins when the wcrt is attained at
     q >= 2 on a jittery input.  Input: periodic 100 with jitter 150
     (d 2 = 0, d 3 = 50, d 4 = 150, d 5 = 250); window arrivals [0; 0],
     finishes [30; 60], so wcrt = 60 at q = 2 and r = [2:60], J = 58.

     n = 3: theta recursion max (50 - 58) (d' 2 + 2) = 4;
            bw term min (d 3 - 30, d 4 - 60) + 2 = min (20, 90) + 2 = 22.
     n = 4: theta max (150 - 58) (d' 3 + 2) = 92;
            bw min (d 4 - 30, d 5 - 60) + 2 = min (120, 190) + 2 = 122. *)
  let s =
    Stream.periodic_jitter ~name:"pj" ~period:100 ~jitter:150 ~d_min:0 ()
  in
  let r = Interval.make ~lo:2 ~hi:60 in
  let p = Propagation.profile ~arrivals:[| 0; 0 |] ~finishes:[| 30; 60 |] in
  let bw =
    Propagation.derive ~mode:Busy_window ~response:r ~bmin:2 ~profile:p s
  in
  let theta = Propagation.derive ~mode:Theta_tau ~response:r ~bmin:2 s in
  Alcotest.check time "theta n=3" (Time.of_int 4) (Stream.delta_min theta 3);
  Alcotest.check time "bw strictly tighter n=3" (Time.of_int 22)
    (Stream.delta_min bw 3);
  Alcotest.check time "theta n=4" (Time.of_int 92) (Stream.delta_min theta 4);
  Alcotest.check time "bw strictly tighter n=4" (Time.of_int 122)
    (Stream.delta_min bw 4);
  let opt =
    Propagation.derive ~mode:Optimal ~response:r ~bmin:2 ~profile:p s
  in
  Alcotest.check time "optimal inherits the win" (Time.of_int 122)
    (Stream.delta_min opt 4)

let test_compact_backend_used () =
  (* derived outputs on compact periodic inputs must themselves be
     compact — this is what routes Shaper.delay_bound onto its exact
     periodic-tail branch *)
  let s = Stream.periodic_jitter ~name:"in" ~period:250 ~jitter:600 () in
  let r = Interval.make ~lo:5 ~hi:30 in
  List.iter
    (fun mode ->
      let out = Propagation.derive ~mode ~response:r ~bmin:5 s in
      Alcotest.(check bool)
        (Propagation.mode_name mode ^ " delta_min compact")
        true
        (Option.is_some (Curve.periodic_tail (Stream.delta_min_curve out)));
      Alcotest.(check bool)
        (Propagation.mode_name mode ^ " delta_plus compact")
        true
        (Option.is_some (Curve.periodic_tail (Stream.delta_plus_curve out))))
    Propagation.all_modes

let test_shaper_exact_on_derived_stream () =
  (* Regression (PR 4 family, routed through propagation): an output
     stream whose long-run rate exactly matches the shaper distance and
     whose derived jitter exceeds the old slope heuristic's horizon
     slack (jitter > 2047 * period for the 4096 horizon).  The closure
     fallback misclassified this as unbounded; the compact periodic
     tail makes delay_bound exact. *)
  let s = Stream.periodic ~name:"p" ~period:4 in
  let r = Interval.make ~lo:2 ~hi:10002 in
  (* J = 10000 > 2047 * 4 *)
  let out = Propagation.derive ~mode:Jitter ~response:r ~bmin:2 s in
  Alcotest.(check bool) "derived stream is compact" true
    (Option.is_some (Curve.periodic_tail (Stream.delta_min_curve out)));
  Alcotest.check time "delay bound = jitter backlog" (Time.of_int 10000)
    (Shaper.delay_bound ~d:4 out);
  (* same family, moderate jitter, against an independent deficit scan *)
  let r = Interval.make ~lo:2 ~hi:3002 in
  let out = Propagation.derive ~mode:Jitter_offset ~response:r ~bmin:2 s in
  let naive =
    let rec scan q worst =
      if q > 2000 then worst
      else
        match Stream.delta_min out q with
        | Time.Inf -> worst
        | Time.Fin dist -> scan (q + 1) (Stdlib.max worst (((q - 1) * 4) - dist))
    in
    scan 2 0
  in
  Alcotest.check time "delay bound = naive deficit" (Time.of_int naive)
    (Shaper.delay_bound ~d:4 out)

let () =
  Alcotest.run "propagation"
    [
      ( "modes",
        [
          Alcotest.test_case "mode names roundtrip" `Quick
            test_mode_names_roundtrip;
          Alcotest.test_case "profile validation" `Quick
            test_profile_validation;
          Alcotest.test_case "busy window on periodic input" `Quick
            test_busy_window_periodic_no_gain;
          Alcotest.test_case "busy window strictly tighter (q >= 2)" `Quick
            test_busy_window_strictly_tighter;
          Alcotest.test_case "compact backend used" `Quick
            test_compact_backend_used;
          Alcotest.test_case "shaper exact on derived streams" `Quick
            test_shaper_exact_on_derived_stream;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_sanitizers;
            prop_optimal_dominates;
            prop_offset_refines_jitter;
            prop_mode_invariance_periodic;
            prop_compact_matches_reference;
            prop_optimal_is_pointwise_max;
          ] );
    ]
