(* Tests for the global compositional analysis engine: specification
   validation, fixed-point iteration, flat vs hierarchical modes, and the
   regression of the paper's evaluation system (Tables 1-3). *)

module Time = Timebase.Time
module Interval = Timebase.Interval
module Stream = Event_model.Stream
module Spec = Cpa_system.Spec
module Engine = Cpa_system.Engine
module Report = Cpa_system.Report

let interval = Alcotest.testable Interval.pp Interval.equal

let check_response result name expected =
  Alcotest.(check (option interval)) name (Some expected)
    (Engine.response result name)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "analysis failed: %s" (Guard.Error.to_string e)

(* ------------------------------------------------------------------ *)
(* simple systems *)

let single_cpu_chain () =
  (* source -> producer -> consumer on one CPU *)
  Spec.make
    ~sources:[ "src", Stream.periodic ~name:"src" ~period:100 ]
    ~resources:[ { Spec.res_name = "cpu"; scheduler = Spec.Spp; backend = Spec.Cpa } ]
    ~tasks:
      [
        Spec.task ~name:"producer" ~resource:"cpu" ~cet:(Interval.point 10)
          ~priority:1 ~activation:(Spec.From_source "src") ();
        Spec.task ~name:"consumer" ~resource:"cpu" ~cet:(Interval.point 20)
          ~priority:2 ~activation:(Spec.From_output "producer") ();
      ]
    ()

let test_chain_analysis () =
  let result = ok (Engine.analyse (single_cpu_chain ())) in
  Alcotest.(check bool) "converged" true result.Engine.converged;
  check_response result "producer" (Interval.point 10);
  (* consumer: preempted once per period: 20 + 10 = 30 *)
  check_response result "consumer" (Interval.make ~lo:20 ~hi:30)

let test_path_latency () =
  let result = ok (Engine.analyse (single_cpu_chain ())) in
  Alcotest.(check (option interval)) "path" (Some (Interval.make ~lo:30 ~hi:40))
    (Report.path_latency result [ "producer"; "consumer" ]);
  Alcotest.(check (option interval)) "unknown element raises Not_found" None
    (try Report.path_latency result [ "producer"; "nope" ]
     with Not_found -> None)

let test_or_activation () =
  let spec =
    Spec.make
      ~sources:
        [
          "a", Stream.periodic ~name:"a" ~period:100;
          "b", Stream.periodic ~name:"b" ~period:150;
        ]
      ~resources:[ { Spec.res_name = "cpu"; scheduler = Spec.Spp; backend = Spec.Cpa } ]
      ~tasks:
        [
          Spec.task ~name:"t" ~resource:"cpu" ~cet:(Interval.point 5)
            ~priority:1
            ~activation:(Spec.Or_of [ Spec.From_source "a"; Spec.From_source "b" ])
            ();
        ]
      ()
  in
  let result = ok (Engine.analyse spec) in
  (* two simultaneous activations: second finishes after 10 *)
  check_response result "t" (Interval.make ~lo:5 ~hi:10)

let test_validation_errors () =
  let bad_resource =
    Spec.make ~sources:[]
      ~resources:[ { Spec.res_name = "cpu"; scheduler = Spec.Spp; backend = Spec.Cpa } ]
      ~tasks:
        [
          Spec.task ~name:"t" ~resource:"nope" ~cet:(Interval.point 1)
            ~priority:1 ~activation:(Spec.From_source "missing") ();
        ]
      ()
  in
  Alcotest.(check bool) "unknown resource" true
    (match Engine.analyse bad_resource with Error _ -> true | Ok _ -> false);
  let bad_source =
    Spec.make ~sources:[]
      ~resources:[ { Spec.res_name = "cpu"; scheduler = Spec.Spp; backend = Spec.Cpa } ]
      ~tasks:
        [
          Spec.task ~name:"t" ~resource:"cpu" ~cet:(Interval.point 1)
            ~priority:1 ~activation:(Spec.From_source "missing") ();
        ]
      ()
  in
  Alcotest.(check bool) "unknown source" true
    (match Engine.analyse bad_source with Error _ -> true | Ok _ -> false);
  let duplicate =
    Spec.make
      ~sources:[ "x", Stream.periodic ~name:"x" ~period:10 ]
      ~resources:[ { Spec.res_name = "cpu"; scheduler = Spec.Spp; backend = Spec.Cpa } ]
      ~tasks:
        [
          Spec.task ~name:"x" ~resource:"cpu" ~cet:(Interval.point 1)
            ~priority:1 ~activation:(Spec.From_source "x") ();
        ]
      ()
  in
  Alcotest.(check bool) "duplicate names" true
    (match Engine.analyse duplicate with Error _ -> true | Ok _ -> false)

let test_cycle_detected () =
  let spec =
    Spec.make ~sources:[]
      ~resources:[ { Spec.res_name = "cpu"; scheduler = Spec.Spp; backend = Spec.Cpa } ]
      ~tasks:
        [
          Spec.task ~name:"a" ~resource:"cpu" ~cet:(Interval.point 1)
            ~priority:1 ~activation:(Spec.From_output "b") ();
          Spec.task ~name:"b" ~resource:"cpu" ~cet:(Interval.point 1)
            ~priority:2 ~activation:(Spec.From_output "a") ();
        ]
      ()
  in
  Alcotest.(check bool) "cycle error" true
    (match Engine.analyse spec with
     | Error (Guard.Error.Cycle _) -> true
     | Error _ | Ok _ -> false)

let test_overload_reported () =
  let spec =
    Spec.make
      ~sources:[ "s", Stream.periodic ~name:"s" ~period:10 ]
      ~resources:[ { Spec.res_name = "cpu"; scheduler = Spec.Spp; backend = Spec.Cpa } ]
      ~tasks:
        [
          Spec.task ~name:"t1" ~resource:"cpu" ~cet:(Interval.point 6)
            ~priority:1 ~activation:(Spec.From_source "s") ();
          Spec.task ~name:"t2" ~resource:"cpu" ~cet:(Interval.point 6)
            ~priority:2 ~activation:(Spec.From_source "s") ();
        ]
      ()
  in
  let result = ok (Engine.analyse spec) in
  Alcotest.(check bool) "not converged" false result.Engine.converged;
  Alcotest.(check (option interval)) "t2 unbounded" None
    (Engine.response result "t2")

let test_tdma_resource () =
  let spec =
    Spec.make
      ~sources:[ "s", Stream.periodic ~name:"s" ~period:100 ]
      ~resources:[ { Spec.res_name = "bus"; scheduler = Spec.Tdma; backend = Spec.Cpa } ]
      ~tasks:
        [
          Spec.task ~name:"t1" ~resource:"bus" ~cet:(Interval.point 2)
            ~priority:1 ~service:3 ~activation:(Spec.From_source "s") ();
          Spec.task ~name:"t2" ~resource:"bus" ~cet:(Interval.point 4)
            ~priority:1 ~service:5 ~activation:(Spec.From_source "s") ();
        ]
      ()
  in
  let result = ok (Engine.analyse spec) in
  check_response result "t1" (Interval.make ~lo:2 ~hi:7);
  check_response result "t2" (Interval.make ~lo:4 ~hi:7)

let test_tdma_requires_service () =
  let spec =
    Spec.make
      ~sources:[ "s", Stream.periodic ~name:"s" ~period:100 ]
      ~resources:[ { Spec.res_name = "bus"; scheduler = Spec.Tdma; backend = Spec.Cpa } ]
      ~tasks:
        [
          Spec.task ~name:"t1" ~resource:"bus" ~cet:(Interval.point 2)
            ~priority:1 ~activation:(Spec.From_source "s") ();
        ]
      ()
  in
  Alcotest.(check bool) "missing service" true
    (match Engine.analyse spec with Error _ -> true | Ok _ -> false)

let test_round_robin_resource () =
  let spec =
    Spec.make
      ~sources:[ "s", Stream.periodic ~name:"s" ~period:100 ]
      ~resources:[ { Spec.res_name = "cpu"; scheduler = Spec.Round_robin; backend = Spec.Cpa } ]
      ~tasks:
        [
          Spec.task ~name:"t1" ~resource:"cpu" ~cet:(Interval.point 4)
            ~priority:1 ~service:2 ~activation:(Spec.From_source "s") ();
          Spec.task ~name:"t2" ~resource:"cpu" ~cet:(Interval.point 6)
            ~priority:1 ~service:3 ~activation:(Spec.From_source "s") ();
        ]
      ()
  in
  let result = ok (Engine.analyse spec) in
  check_response result "t1" (Interval.make ~lo:4 ~hi:10);
  check_response result "t2" (Interval.make ~lo:6 ~hi:10)

(* ------------------------------------------------------------------ *)
(* the paper's system (section 6) *)

let test_paper_regression_flat () =
  let flat, hem = ok (Scenarios.Paper_system.analyse_both ()) in
  Alcotest.(check bool) "flat converged" true flat.Engine.converged;
  Alcotest.(check bool) "hem converged" true hem.Engine.converged;
  (* bus responses are mode-independent *)
  check_response flat "F1" (Interval.make ~lo:4 ~hi:10);
  check_response flat "F2" (Interval.make ~lo:2 ~hi:10);
  check_response hem "F1" (Interval.make ~lo:4 ~hi:10);
  (* hierarchical CPU responses (hand-checked against Defs. 8-10) *)
  check_response hem "T1" (Interval.point 24);
  check_response hem "T2" (Interval.make ~lo:32 ~hi:56);
  check_response hem "T3" (Interval.make ~lo:40 ~hi:96)

let test_paper_hem_dominates_flat () =
  let flat, hem = ok (Scenarios.Paper_system.analyse_both ()) in
  List.iter
    (fun name ->
      match Engine.response flat name, Engine.response hem name with
      | Some f, Some h ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: hem <= flat" name)
          true
          (Interval.hi h <= Interval.hi f)
      | _ -> Alcotest.failf "missing response for %s" name)
    Scenarios.Paper_system.cpu_tasks

let test_paper_reduction_grows_with_lower_priority () =
  (* the paper's Table 3 shape: lower-priority receivers gain more *)
  let flat, hem = ok (Scenarios.Paper_system.analyse_both ()) in
  let rows =
    Report.compare_results ~baseline:flat ~improved:hem
      ~names:Scenarios.Paper_system.cpu_tasks
  in
  let pcts =
    List.map
      (fun (r : Report.comparison_row) ->
        match r.reduction_pct with
        | Some p -> p
        | None -> Alcotest.failf "no reduction for %s" r.name)
      rows
  in
  (match pcts with
   | [ p1; _; p3 ] ->
     Alcotest.(check bool) "all positive" true (List.for_all (fun p -> p > 0.0) pcts);
     Alcotest.(check bool) "T3 gains most" true (p3 >= p1)
   | _ -> Alcotest.fail "expected three rows")

let test_paper_flat_stream_mode () =
  (* exact-curve flat mode sits between SEM-flat and hierarchical *)
  let spec = Scenarios.Paper_system.spec () in
  let flat_sem = ok (Engine.analyse ~mode:Engine.Flat_sem spec) in
  let flat_stream = ok (Engine.analyse ~mode:Engine.Flat_stream spec) in
  let hem = ok (Engine.analyse ~mode:Engine.Hierarchical spec) in
  List.iter
    (fun name ->
      match
        ( Engine.response flat_sem name,
          Engine.response flat_stream name,
          Engine.response hem name )
      with
      | Some sem, Some stream, Some h ->
        Alcotest.(check bool)
          (Printf.sprintf "%s ordering" name)
          true
          (Interval.hi h <= Interval.hi stream
          && Interval.hi stream <= Interval.hi sem)
      | _ -> Alcotest.failf "missing response for %s" name)
    Scenarios.Paper_system.cpu_tasks

let test_paper_figure4_series () =
  (* Figure 4: eta+ of the frame output stream dominates each unpacked
     signal stream, and the unpacked streams are far below it *)
  let _, hem = ok (Scenarios.Paper_system.analyse_both ()) in
  let frame_out =
    hem.Engine.resolve (Spec.From_frame "F1")
  in
  let unpacked signal =
    hem.Engine.resolve (Spec.From_signal { frame = "F1"; signal })
  in
  List.iter
    (fun dt ->
      let total = Stream.eta_plus frame_out dt in
      List.iter
        (fun signal ->
          let inner = Stream.eta_plus (unpacked signal) dt in
          Alcotest.(check bool)
            (Printf.sprintf "%s <= frame at %d" signal dt)
            true
            (Timebase.Count.compare inner total <= 0))
        [ "sig1"; "sig2"; "sig3" ])
    [ 100; 500; 1000; 2000; 4000 ]

let test_paper_s3_sweep () =
  (* slower pending sources only reduce the pending activation rate *)
  let r_at period =
    let _, hem = ok (Scenarios.Paper_system.analyse_both ~s3_period:period ()) in
    match Engine.response hem "T3" with
    | Some i -> Interval.hi i
    | None -> max_int
  in
  Alcotest.(check bool) "monotone in S3 period" true (r_at 2000 <= r_at 500)

let test_paper_iterations_reported () =
  let flat, hem = ok (Scenarios.Paper_system.analyse_both ()) in
  Alcotest.(check bool) "flat iterations >= 1" true (flat.Engine.iterations >= 1);
  Alcotest.(check bool) "hem iterations >= 1" true (hem.Engine.iterations >= 1)

let test_and_activation () =
  let spec =
    Spec.make
      ~sources:
        [
          "a", Stream.periodic ~name:"a" ~period:100;
          "b", Stream.periodic_jitter ~name:"b" ~period:100 ~jitter:30 ();
        ]
      ~resources:[ { Spec.res_name = "cpu"; scheduler = Spec.Spp; backend = Spec.Cpa } ]
      ~tasks:
        [
          Spec.task ~name:"join" ~resource:"cpu" ~cet:(Interval.point 5)
            ~priority:1
            ~activation:
              (Spec.And_of [ Spec.From_source "a"; Spec.From_source "b" ])
            ();
        ]
      ()
  in
  let result = ok (Engine.analyse spec) in
  Alcotest.(check bool) "converged" true result.Engine.converged;
  (* AND activation: at most one activation per input pair; the stream's
     conservative bounds still admit a tight burst, hence possibly two in
     one busy period *)
  (match Engine.response result "join" with
   | Some r -> Alcotest.(check bool) "bounded" true (Interval.hi r >= 5)
   | None -> Alcotest.fail "expected bounded");
  Alcotest.(check bool) "empty AND rejected" true
    (match
       Engine.analyse
         (Spec.make ~sources:[]
            ~resources:[ { Spec.res_name = "cpu"; scheduler = Spec.Spp; backend = Spec.Cpa } ]
            ~tasks:
              [
                Spec.task ~name:"t" ~resource:"cpu" ~cet:(Interval.point 1)
                  ~priority:1 ~activation:(Spec.And_of []) ();
              ]
            ())
     with
     | Error _ -> true
     | Ok _ -> false)

let test_gateway_two_hop_regression () =
  let spec = Scenarios.Gateway.spec () in
  let flat = ok (Engine.analyse ~mode:Engine.Flat_sem spec) in
  let hem = ok (Engine.analyse ~mode:Engine.Hierarchical spec) in
  Alcotest.(check bool) "both converge" true
    (flat.Engine.converged && hem.Engine.converged);
  (* hand-checked hierarchical values *)
  check_response hem "G1" (Interval.make ~lo:4 ~hi:8);
  check_response hem "D1" (Interval.point 20);
  check_response hem "D2" (Interval.make ~lo:30 ~hi:50);
  (* the flat degradation compounds across the two hops *)
  List.iter
    (fun name ->
      match Engine.response flat name, Engine.response hem name with
      | Some f, Some h ->
        Alcotest.(check bool)
          (name ^ " hem tighter")
          true
          (Interval.hi h < Interval.hi f)
      | _ -> Alcotest.fail "missing response")
    Scenarios.Gateway.receivers;
  match Cpa_system.Report.path_latency hem Scenarios.Gateway.path_s1 with
  | Some latency ->
    Alcotest.(check bool) "path latency bounded" true (Interval.hi latency >= 33)
  | None -> Alcotest.fail "path unbounded"

let test_hierarchy_accessors () =
  let _, hem = ok (Scenarios.Paper_system.analyse_both ()) in
  let pre = hem.Engine.pre_bus_hierarchy "F1" in
  let post = hem.Engine.hierarchy "F1" in
  (* the bus adds jitter: post-bus outer distances are tighter *)
  Alcotest.(check bool) "post <= pre at n=2" true
    Time.(
      Stream.delta_min (Hem.Model.outer post) 3
      <= Stream.delta_min (Hem.Model.outer pre) 3);
  Alcotest.(check int) "arity preserved" (Hem.Model.arity pre)
    (Hem.Model.arity post)

let test_periodic_frame_system () =
  (* a periodic frame: the timer paces transmissions, the data signal is
     effectively pending even though declared triggering *)
  let spec =
    Spec.make
      ~sources:[ "fast", Stream.periodic ~name:"fast" ~period:30 ]
      ~resources:
        [
          { Spec.res_name = "bus"; scheduler = Spec.Spnp; backend = Spec.Cpa };
          { Spec.res_name = "cpu"; scheduler = Spec.Spp; backend = Spec.Cpa };
        ]
      ~frames:
        [
          Spec.frame ~name:"P" ~bus:"bus"
            ~send_type:(Comstack.Frame.Periodic 100)
            ~tx_time:(Interval.point 4) ~priority:1
            ~signals:
              [ Spec.signal ~name:"data" ~origin:(Spec.From_source "fast") () ]
            ();
        ]
      ~tasks:
        [
          Spec.task ~name:"sink" ~resource:"cpu" ~cet:(Interval.point 10)
            ~priority:1
            ~activation:(Spec.From_signal { frame = "P"; signal = "data" })
            ();
        ]
      ()
  in
  let result = ok (Engine.analyse ~mode:Engine.Hierarchical spec) in
  Alcotest.(check bool) "converged" true result.Engine.converged;
  (* the frame goes exactly every 100 despite the 30-periodic source *)
  check_response result "P" (Interval.point 4);
  check_response result "sink" (Interval.point 10);
  (* fresh data arrives at most once per frame period *)
  let sink_input =
    result.Engine.resolve (Spec.From_signal { frame = "P"; signal = "data" })
  in
  (* the bus response is jitter-free ([4:4]), so the delivery distance is
     exactly the timer period *)
  Alcotest.(check string) "delivery distance = timer period" "100"
    (Timebase.Time.to_string (Stream.delta_min sink_input 2));
  (* simulate: deliveries pace at the timer, never faster *)
  match
    Des.Simulator.run
      ~generators:[ "fast", Des.Gen.periodic ~period:30 () ]
      ~horizon:100_000 spec
  with
  | Error e -> Alcotest.failf "simulation failed: %s" e
  | Ok trace ->
    let deliveries =
      Des.Trace.arrivals trace (Des.Port.signal ~frame:"P" ~signal:"data")
    in
    Alcotest.(check bool) "about one per period" true
      (List.length deliveries >= 990 && List.length deliveries <= 1001);
    (match Des.Trace.worst_response trace "sink" with
     | Some observed -> Alcotest.(check bool) "within bound" true (observed <= 10)
     | None -> Alcotest.fail "sink never ran")

let test_from_frame_receiver () =
  (* a monitor task activated by every frame arrival (not per signal) *)
  let base = Scenarios.Paper_system.spec () in
  let spec =
    { base with
      Spec.tasks =
        base.Spec.tasks
        @ [
            Spec.task ~name:"monitor" ~resource:"CPU1" ~cet:(Interval.point 2)
              ~priority:0 ~activation:(Spec.From_frame "F1") ();
          ]
    }
  in
  let result = ok (Engine.analyse ~mode:Engine.Hierarchical spec) in
  Alcotest.(check bool) "converged" true result.Engine.converged;
  (* frame arrivals are serialized by the bus (at least r- = 4 apart), so
     the monitor finishes each 2-unit job before the next frame *)
  check_response result "monitor" (Interval.point 2)

let test_utilizations () =
  let _, hem = ok (Scenarios.Paper_system.analyse_both ()) in
  let utils = Report.utilizations hem in
  let near label expected actual =
    Alcotest.(check bool)
      (Printf.sprintf "%s ~ %.1f (got %.1f)" label expected actual)
      true
      (Float.abs (actual -. expected) < 1.5)
  in
  (* CAN: F1 = (1/250 + 1/450) * 4, F2 = 4/400 * 2... in percent:
     F1 ~ 2.49, F2 = 0.5 -> ~3.0; CPU: 24/250 + 32/450 + 40/1000 ~ 20.7 *)
  near "CAN" 3.0 (List.assoc "CAN" utils);
  near "CPU1" 20.7 (List.assoc "CPU1" utils)

let test_signal_data_age () =
  let _, hem = ok (Scenarios.Paper_system.analyse_both ()) in
  (* triggering signal: age = frame worst response = 10 *)
  Alcotest.(check (option string)) "sig1 age" (Some "10")
    (Option.map Time.to_string
       (Report.signal_data_age hem ~frame:"F1" ~signal:"sig1"));
  (* pending signal: frame gap delta_plus_out 2 = 250 plus response 10 *)
  Alcotest.(check (option string)) "sig3 age" (Some "260")
    (Option.map Time.to_string
       (Report.signal_data_age hem ~frame:"F1" ~signal:"sig3"));
  Alcotest.(check bool) "unknown signal raises" true
    (match Report.signal_data_age hem ~frame:"F1" ~signal:"zz" with
     | _ -> false
     | exception Not_found -> true)

(* ------------------------------------------------------------------ *)
(* robustness and properties *)

let test_max_iterations_cutoff () =
  (* limiting the iterations on a multi-iteration system yields a
     not-converged result instead of looping *)
  let spec = Scenarios.Gateway.spec () in
  let limited =
    ok (Engine.analyse ~mode:Engine.Flat_sem ~max_iterations:1 spec)
  in
  Alcotest.(check bool) "not converged" false limited.Engine.converged;
  Alcotest.(check int) "stopped at 1" 1 limited.Engine.iterations

let test_small_window_limit_degrades_gracefully () =
  let spec = single_cpu_chain () in
  let result = ok (Engine.analyse ~window_limit:5 spec) in
  (* windows cannot close below the execution times: unbounded outcomes,
     no convergence claim *)
  Alcotest.(check bool) "not converged" false result.Engine.converged

let prop_wcrt_monotone_in_cet =
  QCheck.Test.make ~name:"WCRT monotone in execution time" ~count:25
    (QCheck.pair (QCheck.int_range 5 40) (QCheck.int_range 1 20))
    (fun (cet, extra) ->
      let cet = Stdlib.max 5 cet and extra = Stdlib.max 1 extra in
      let build c =
        Spec.make
          ~sources:[ "s", Stream.periodic ~name:"s" ~period:200 ]
          ~resources:[ { Spec.res_name = "cpu"; scheduler = Spec.Spp; backend = Spec.Cpa } ]
          ~tasks:
            [
              Spec.task ~name:"hp" ~resource:"cpu" ~cet:(Interval.point c)
                ~priority:1 ~activation:(Spec.From_source "s") ();
              Spec.task ~name:"lp" ~resource:"cpu" ~cet:(Interval.point 30)
                ~priority:2 ~activation:(Spec.From_source "s") ();
            ]
          ()
      in
      let wcrt c =
        match Engine.analyse (build c) with
        | Ok result -> begin
          match Engine.response result "lp" with
          | Some r -> Interval.hi r
          | None -> max_int
        end
        | Error _ -> max_int
      in
      wcrt cet <= wcrt (cet + extra))

let prop_hem_never_worse_than_flat =
  QCheck.Test.make ~name:"hierarchical never worse than flat" ~count:15
    (QCheck.pair (QCheck.int_range 150 400) (QCheck.int_range 200 600))
    (fun (p1, p2) ->
      let p1 = Stdlib.max 150 p1 and p2 = Stdlib.max 200 p2 in
      let spec = Scenarios.Gateway.spec ~s1_period:p1 ~s2_period:p2 () in
      match
        ( Engine.analyse ~mode:Engine.Flat_sem spec,
          Engine.analyse ~mode:Engine.Hierarchical spec )
      with
      | Ok flat, Ok hem ->
        (not (flat.Engine.converged && hem.Engine.converged))
        || List.for_all
             (fun name ->
               match Engine.response flat name, Engine.response hem name with
               | Some f, Some h -> Interval.hi h <= Interval.hi f
               | _ -> false)
             Scenarios.Gateway.receivers
      | Error _, _ | _, Error _ -> false)

let () =
  Alcotest.run "system"
    [
      ( "engine",
        [
          Alcotest.test_case "task chain" `Quick test_chain_analysis;
          Alcotest.test_case "path latency" `Quick test_path_latency;
          Alcotest.test_case "OR activation" `Quick test_or_activation;
          Alcotest.test_case "validation errors" `Quick test_validation_errors;
          Alcotest.test_case "cycle detected" `Quick test_cycle_detected;
          Alcotest.test_case "overload reported" `Quick test_overload_reported;
          Alcotest.test_case "tdma resource" `Quick test_tdma_resource;
          Alcotest.test_case "tdma requires service" `Quick
            test_tdma_requires_service;
          Alcotest.test_case "round robin resource" `Quick
            test_round_robin_resource;
        ] );
      ( "paper system",
        [
          Alcotest.test_case "regression values" `Quick test_paper_regression_flat;
          Alcotest.test_case "hem dominates flat" `Quick
            test_paper_hem_dominates_flat;
          Alcotest.test_case "reduction shape (Table 3)" `Quick
            test_paper_reduction_grows_with_lower_priority;
          Alcotest.test_case "mode ordering" `Quick test_paper_flat_stream_mode;
          Alcotest.test_case "figure 4 series" `Quick test_paper_figure4_series;
          Alcotest.test_case "S3 sweep monotone" `Quick test_paper_s3_sweep;
          Alcotest.test_case "iterations" `Quick test_paper_iterations_reported;
          Alcotest.test_case "hierarchy accessors" `Quick test_hierarchy_accessors;
        ] );
      ( "extensions",
        [
          Alcotest.test_case "AND activation" `Quick test_and_activation;
          Alcotest.test_case "two-hop gateway" `Quick
            test_gateway_two_hop_regression;
          Alcotest.test_case "signal data age" `Quick test_signal_data_age;
          Alcotest.test_case "resource utilizations" `Quick test_utilizations;
          Alcotest.test_case "From_frame receiver" `Quick
            test_from_frame_receiver;
          Alcotest.test_case "periodic frame system" `Quick
            test_periodic_frame_system;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "iteration cutoff" `Quick test_max_iterations_cutoff;
          Alcotest.test_case "small window limit" `Quick
            test_small_window_limit_degrades_gracefully;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_wcrt_monotone_in_cet; prop_hem_never_worse_than_flat ] );
    ]
