(* Observability layer: span well-formedness, Chrome-trace export,
   disabled-path silence, engine telemetry consistency, and per-scope
   metric attribution (including the interleaved-analyses regression the
   scoped registry was built for). *)

module Time = Timebase.Time
module Interval = Timebase.Interval
module Stream = Event_model.Stream
module Curve = Event_model.Curve
module Spec = Cpa_system.Spec
module Engine = Cpa_system.Engine
module Metrics = Obs.Metrics

(* Deterministic trace clock: strictly increasing integer microseconds,
   so serialized timestamps are stable across runs. *)
let tick = ref 0.0

let () =
  Obs.Trace.set_clock (fun () ->
    tick := !tick +. 1.0;
    !tick)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "analysis failed: %s" (Guard.Error.to_string e)

let with_memory_sink ?level f =
  let sink, events = Obs.Sink.memory () in
  Obs.Sink.install ?level sink;
  Fun.protect ~finally:Obs.Sink.uninstall (fun () ->
    let r = f () in
    r, events ())

(* A minimal JSON reader — the toolchain has no JSON library and the
   exporter must be checked against an independent parser. *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let next () =
      if !pos >= n then raise (Bad "unexpected end");
      let c = s.[!pos] in
      incr pos;
      c
    in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        incr pos;
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      let g = next () in
      if g <> c then raise (Bad (Printf.sprintf "expected %c, got %c" c g))
    in
    let literal word v =
      String.iter expect word;
      v
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match next () with
        | '"' -> Buffer.contents b
        | '\\' -> begin
          (match next () with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
            let hex = String.init 4 (fun _ -> next ()) in
            let code = int_of_string ("0x" ^ hex) in
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else Buffer.add_string b (Printf.sprintf "\\u%s" hex)
          | c -> raise (Bad (Printf.sprintf "bad escape \\%c" c)));
          go ()
        end
        | c -> Buffer.add_char b c; go ()
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let is_num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c -> is_num_char c | None -> false) do
        incr pos
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> Num f
      | None -> raise (Bad "bad number")
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | Some '"' -> Str (parse_string ())
      | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then (incr pos; Obj [])
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match next () with
            | ',' -> members ((key, v) :: acc)
            | '}' -> Obj (List.rev ((key, v) :: acc))
            | c -> raise (Bad (Printf.sprintf "bad object separator %c" c))
          in
          members []
        end
      | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then (incr pos; List [])
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match next () with
            | ',' -> elements (v :: acc)
            | ']' -> List (List.rev (v :: acc))
            | c -> raise (Bad (Printf.sprintf "bad array separator %c" c))
          in
          elements []
        end
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> parse_number ()
      | None -> raise (Bad "empty input")
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then raise (Bad "trailing garbage");
    v

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None

  let str_exn j =
    match j with
    | Str s -> s
    | _ -> raise (Bad "expected string")
end

(* --- span well-formedness ------------------------------------------- *)

let span_stack_check events =
  let stack = ref [] in
  List.iter
    (fun (e : Obs.Event.t) ->
      match e with
      | Obs.Event.Span_begin { name; _ } -> stack := name :: !stack
      | Obs.Event.Span_end { name; _ } -> begin
        match !stack with
        | top :: rest ->
          Alcotest.(check string) "span end matches innermost begin" top name;
          stack := rest
        | [] -> Alcotest.failf "span end %s without begin" name
      end
      | _ -> ())
    events;
  Alcotest.(check (list string)) "all spans closed" [] !stack

let test_span_nesting () =
  let result, events =
    with_memory_sink (fun () ->
      ok (Engine.analyse ~mode:Engine.Hierarchical (Scenarios.Paper_system.spec ())))
  in
  Alcotest.(check bool) "emitted events" true (events <> []);
  span_stack_check events;
  let count name =
    List.length
      (List.filter
         (function
           | Obs.Event.Span_begin { name = n; _ } -> String.equal n name
           | _ -> false)
         events)
  in
  Alcotest.(check int) "one top-level analyse span" 1 (count "engine.analyse");
  Alcotest.(check int)
    "one iteration span per global iteration" result.Engine.iterations
    (count "engine.iteration");
  Alcotest.(check bool) "busy-window spans present" true
    (count "busy_window" > 0);
  Alcotest.(check bool) "pack spans present" true (count "hem.pack" > 0)

let test_iteration_spans_all_modes () =
  List.iter
    (fun mode ->
      let result, events =
        with_memory_sink (fun () ->
          ok (Engine.analyse ~mode (Scenarios.Paper_system.spec ())))
      in
      let spans =
        List.filter
          (function
            | Obs.Event.Span_begin { name = "engine.iteration"; _ } -> true
            | _ -> false)
          events
      in
      let label what = Engine.mode_name mode ^ ": " ^ what in
      Alcotest.(check int)
        (label "iteration spans = result.iterations")
        result.Engine.iterations (List.length spans);
      Alcotest.(check int)
        (label "iteration_stats rows = result.iterations")
        result.Engine.iterations
        (List.length result.Engine.iteration_stats);
      let last =
        List.nth result.Engine.iteration_stats
          (List.length result.Engine.iteration_stats - 1)
      in
      Alcotest.(check bool)
        (label "converged run ends at residual 0") true
        ((not result.Engine.converged)
        || (last.Engine.residual = 0 && last.Engine.changed = 0)))
    [ Engine.Hierarchical; Engine.Flat_stream; Engine.Flat_sem ]

(* --- disabled path --------------------------------------------------- *)

let test_disabled_path_silent () =
  Alcotest.(check bool) "no sink installed" false (Obs.Trace.enabled ());
  (* probes with no sink must not blow up and with_span must still run f *)
  Obs.Trace.span_begin "ghost";
  Obs.Trace.span_end "ghost";
  Obs.Trace.instant "ghost";
  Obs.Trace.counter "ghost" 42;
  let v = Obs.Trace.with_span "ghost" (fun () -> 17) in
  Alcotest.(check int) "with_span transparent" 17 v;
  (* an analysis without a sink leaves a later-installed sink empty *)
  ignore (ok (Engine.analyse (Scenarios.Paper_system.spec ())));
  let (), events = with_memory_sink (fun () -> ()) in
  Alcotest.(check int) "nothing buffered from the unsinked run" 0
    (List.length events)

let test_spans_level_drops_counters () =
  let _, events =
    with_memory_sink ~level:Obs.Sink.Spans (fun () ->
      ok (Engine.analyse (Scenarios.Paper_system.spec ())))
  in
  List.iter
    (function
      | Obs.Event.Counter _ | Obs.Event.Instant _ ->
        Alcotest.fail "counter/instant leaked at Spans level"
      | _ -> ())
    events

(* --- monotonic clock -------------------------------------------------- *)

let test_clock_monotonic () =
  let backwards = [ 100.0; 50.0; 120.0; 80.0 ] in
  let remaining = ref backwards in
  Obs.Trace.set_clock (fun () ->
    match !remaining with
    | [] -> 200.0
    | t :: rest ->
      remaining := rest;
      t);
  let t1 = Obs.Trace.now_us () in
  let t2 = Obs.Trace.now_us () in
  let t3 = Obs.Trace.now_us () in
  let t4 = Obs.Trace.now_us () in
  Obs.Trace.set_clock (fun () ->
    tick := !tick +. 1.0;
    !tick);
  Alcotest.(check bool) "never decreases" true
    (t2 >= t1 && t3 >= t2 && t4 >= t3);
  Alcotest.(check (float 0.0)) "clamped to previous" t1 t2

(* --- Chrome trace export ---------------------------------------------- *)

let run_traced_analysis path =
  Obs.Sink.install ~level:Obs.Sink.Full (Obs.Chrome_trace.file path);
  Fun.protect ~finally:Obs.Sink.uninstall (fun () ->
    ok (Engine.analyse ~mode:Engine.Hierarchical (Scenarios.Paper_system.spec ())))

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_chrome_trace_json () =
  let path = Filename.temp_file "hem_trace" ".json" in
  let result = run_traced_analysis path in
  let json = Json.parse (read_file path) in
  let events =
    match Json.member "traceEvents" json with
    | Some (Json.List l) -> l
    | _ -> Alcotest.fail "no traceEvents array"
  in
  Sys.remove path;
  Alcotest.(check bool) "has events" true (events <> []);
  let phase e = Json.str_exn (Option.get (Json.member "ph" e)) in
  let with_ph p = List.filter (fun e -> String.equal (phase e) p) events in
  Alcotest.(check int) "every B has a matching E"
    (List.length (with_ph "B"))
    (List.length (with_ph "E"));
  List.iter
    (fun e ->
      (match Json.member "name" e with
      | Some (Json.Str _) -> ()
      | _ -> Alcotest.fail "event without name");
      match Json.member "ts" e with
      | Some (Json.Num _) -> ()
      | _ -> Alcotest.fail "event without numeric ts")
    events;
  (* timestamps are emission-ordered and the clock is clamped *)
  let ts e = match Json.member "ts" e with
    | Some (Json.Num f) -> f
    | _ -> 0.0
  in
  let rec sorted = function
    | a :: (b :: _ as rest) -> ts a <= ts b && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "timestamps non-decreasing" true (sorted events);
  let iteration_begins =
    List.filter
      (fun e ->
        String.equal (phase e) "B"
        && (match Json.member "name" e with
           | Some (Json.Str "engine.iteration") -> true
           | _ -> false))
      events
  in
  Alcotest.(check int) "iteration spans survive export"
    result.Engine.iterations
    (List.length iteration_begins);
  (* every iteration end carries the residual attribute *)
  List.iter
    (fun e ->
      if
        String.equal (phase e) "E"
        && Json.member "name" e = Some (Json.Str "engine.iteration")
      then
        match Json.member "args" e with
        | Some args -> begin
          match Json.member "residual" args with
          | Some (Json.Num _) -> ()
          | _ -> Alcotest.fail "iteration end without residual"
        end
        | None -> Alcotest.fail "iteration end without args")
    events

let test_chrome_trace_jsonl () =
  let path = Filename.temp_file "hem_trace" ".jsonl" in
  ignore (run_traced_analysis path);
  let contents = read_file path in
  Sys.remove path;
  let lines =
    List.filter (fun l -> String.trim l <> "")
      (String.split_on_char '\n' contents)
  in
  Alcotest.(check bool) "has lines" true (lines <> []);
  List.iter
    (fun line ->
      match Json.parse line with
      | Json.Obj _ -> ()
      | _ -> Alcotest.fail "line is not a JSON object"
      | exception Json.Bad e -> Alcotest.failf "unparseable line (%s): %s" e line)
    lines

let test_string_escaping () =
  let evil = "a\"b\\c\nd\te\r\x01f" in
  let ev =
    Obs.Event.Instant { name = evil; ts = 1.0; attrs = [ "k", Obs.Event.Str evil ] }
  in
  let json = Json.parse (Obs.Chrome_trace.event_json ev) in
  match Json.member "name" json with
  | Some (Json.Str s) ->
    (* control chars round-trip through \uXXXX except those below 0x80,
       which our mini-parser decodes back to raw chars *)
    Alcotest.(check string) "name round-trips" evil s
  | _ -> Alcotest.fail "name missing"

(* --- metric scoping ---------------------------------------------------- *)

let test_scoped_counters () =
  let c = Metrics.counter "test.obs.scoped" in
  let s1 = Metrics.scope "s1" in
  let s2 = Metrics.scope "s2" in
  Metrics.in_scope s1 (fun () -> Metrics.add c 3);
  Metrics.in_scope s2 (fun () ->
    Metrics.add c 5;
    Metrics.in_scope s1 (fun () -> Metrics.add c 7));
  Alcotest.(check int) "s1 charged inside and nested" 10 (Metrics.read s1 c);
  Alcotest.(check int) "s2 charged its whole extent" 12 (Metrics.read s2 c)

let test_attachment_attribution () =
  let c = Metrics.counter "test.obs.attached" in
  let owner = Metrics.scope "owner" in
  let other = Metrics.scope "other" in
  let att = Metrics.in_scope owner (fun () -> Metrics.attach ()) in
  (* work executed inside [other] but attributed to the creator *)
  Metrics.in_scope other (fun () -> Metrics.add_attached att c 9);
  Alcotest.(check int) "creator charged" 9 (Metrics.read owner c);
  Alcotest.(check int) "executor not charged" 0 (Metrics.read other c);
  (* empty attachment falls back to the ambient stack *)
  Metrics.in_scope other (fun () -> Metrics.add_attached [] c 4);
  Alcotest.(check int) "ambient fallback" 4 (Metrics.read other c)

(* The regression the scoped registry exists for: evaluating streams that
   belong to one analysis while another analysis runs must not inflate
   the second analysis's effort stats.  Before scoping, [Engine.stats]
   was a diff over process-global counters and any interleaved work was
   misattributed. *)
let test_interleaved_analyses_attribution () =
  let a =
    ok (Engine.analyse ~mode:Engine.Hierarchical (Scenarios.Paper_system.spec ()))
  in
  let a_stream =
    a.Engine.resolve (Spec.From_signal { frame = "F1"; signal = "sig1" })
  in
  let injected = ref 0 in
  let spec_b ~inject =
    let delta_min n =
      if inject then begin
        incr injected;
        (* deep, varying probes into A's hierarchy: closure work that
           belongs to analysis A *)
        ignore (Stream.delta_min a_stream (n + 40))
      end;
      Time.of_int ((n - 1) * 100)
    in
    let delta_plus n = Time.of_int ((n - 1) * 100) in
    let src = Stream.make ~name:"SB" ~delta_min ~delta_plus in
    Spec.make
      ~sources:[ "SB", src ]
      ~resources:[ { Spec.res_name = "CPUB"; scheduler = Spec.Spp; backend = Spec.Cpa } ]
      ~tasks:
        [
          Spec.task ~name:"TB" ~resource:"CPUB"
            ~cet:(Interval.make ~lo:5 ~hi:10) ~priority:1
            ~activation:(Spec.From_source "SB") ();
        ]
      ()
  in
  let control = ok (Engine.analyse ~mode:Engine.Hierarchical (spec_b ~inject:false)) in
  let poisoned = ok (Engine.analyse ~mode:Engine.Hierarchical (spec_b ~inject:true)) in
  Alcotest.(check bool) "injection actually ran" true (!injected > 0);
  let c r = r.Engine.stats.Engine.curve in
  Alcotest.(check int) "closure evals unaffected by interleaved work"
    (c control).Curve.closure_evals
    (c poisoned).Curve.closure_evals;
  Alcotest.(check int) "memo hits unaffected by interleaved work"
    (c control).Curve.memo_hits
    (c poisoned).Curve.memo_hits;
  Alcotest.(check (list (pair string int))) "same outcome bounds"
    (List.map
       (fun (o : Engine.element_outcome) ->
         ( o.element,
           match o.outcome with
           | Scheduling.Busy_window.Bounded i -> Interval.hi i
           | Scheduling.Busy_window.Unbounded _ -> -1 ))
       control.Engine.outcomes)
    (List.map
       (fun (o : Engine.element_outcome) ->
         ( o.element,
           match o.outcome with
           | Scheduling.Busy_window.Bounded i -> Interval.hi i
           | Scheduling.Busy_window.Unbounded _ -> -1 ))
       poisoned.Engine.outcomes)

(* --- histograms -------------------------------------------------------- *)

let test_hist_empty () =
  let h = Obs.Hist.make () in
  Alcotest.(check int) "count" 0 (Obs.Hist.count h);
  Alcotest.(check int) "sum" 0 (Obs.Hist.sum h);
  Alcotest.(check int) "min" 0 (Obs.Hist.min_value h);
  Alcotest.(check int) "max" 0 (Obs.Hist.max_value h);
  Alcotest.(check int) "p50" 0 (Obs.Hist.p50 h);
  Alcotest.(check int) "p99" 0 (Obs.Hist.p99 h);
  Alcotest.(check (list (triple int int int))) "no buckets" []
    (Obs.Hist.buckets h)

let test_hist_single_sample () =
  List.iter
    (fun v ->
      let h = Obs.Hist.make () in
      Obs.Hist.record h v;
      let label what = Printf.sprintf "v=%d: %s" v what in
      Alcotest.(check int) (label "count") 1 (Obs.Hist.count h);
      (* clamping to the recorded max makes single-sample hists exact at
         every percentile *)
      Alcotest.(check int) (label "p50") v (Obs.Hist.p50 h);
      Alcotest.(check int) (label "p99") v (Obs.Hist.p99 h);
      Alcotest.(check int) (label "p100") v (Obs.Hist.percentile h 100.0);
      Alcotest.(check int) (label "min") v (Obs.Hist.min_value h);
      Alcotest.(check int) (label "max") v (Obs.Hist.max_value h))
    [ 0; 1; 15; 16; 17; 1000; 123_456_789 ]

let test_hist_negative_clamps () =
  let h = Obs.Hist.make () in
  Obs.Hist.record h (-5);
  Alcotest.(check int) "count" 1 (Obs.Hist.count h);
  Alcotest.(check int) "clamped to 0" 0 (Obs.Hist.max_value h)

let test_hist_bucket_boundaries () =
  (* every sample must land in a bucket that contains it, exact below 16
     and within 12.5% above; probe octave edges and their neighbours *)
  let probes =
    List.concat_map
      (fun v -> [ v - 1; v; v + 1 ])
      [ 1; 2; 8; 16; 32; 128; 1024; 65536; 1 lsl 30 ]
  in
  List.iter
    (fun v ->
      if v >= 0 then begin
        let h = Obs.Hist.make () in
        Obs.Hist.record h v;
        match Obs.Hist.buckets h with
        | [ (lo, hi, c) ] ->
          let label what = Printf.sprintf "v=%d: %s" v what in
          Alcotest.(check int) (label "one sample") 1 c;
          Alcotest.(check bool) (label "lo <= v") true (lo <= v);
          Alcotest.(check bool) (label "v <= hi") true (v <= hi);
          if v < 16 then
            Alcotest.(check int) (label "exact below 16") lo hi
          else
            Alcotest.(check bool) (label "<= 12.5% wide") true
              (float_of_int (hi - lo) <= 0.125 *. float_of_int lo)
        | bs -> Alcotest.failf "v=%d: %d buckets" v (List.length bs)
      end)
    probes

let test_hist_percentile_order () =
  let h = Obs.Hist.make () in
  for i = 1 to 1000 do
    Obs.Hist.record h i
  done;
  let p50 = Obs.Hist.p50 h
  and p90 = Obs.Hist.p90 h
  and p99 = Obs.Hist.p99 h in
  Alcotest.(check bool) "p50 <= p90 <= p99 <= max" true
    (p50 <= p90 && p90 <= p99 && p99 <= Obs.Hist.max_value h);
  (* upper bound within bucket width of the true rank value *)
  Alcotest.(check bool) "p50 brackets 500" true
    (p50 >= 500 && float_of_int p50 <= 500.0 *. 1.125);
  Alcotest.(check bool) "p99 brackets 990" true
    (p99 >= 990 && float_of_int p99 <= 990.0 *. 1.125)

let hist_fingerprint h =
  ( Obs.Hist.count h,
    Obs.Hist.sum h,
    Obs.Hist.min_value h,
    Obs.Hist.max_value h,
    Obs.Hist.buckets h )

let test_hist_merge_associative () =
  let mk samples =
    let h = Obs.Hist.make () in
    List.iter (Obs.Hist.record h) samples;
    h
  in
  let a () = mk [ 3; 17; 1000 ]
  and b () = mk [ 0; 17; 123_456 ]
  and c () = mk [ 5; 5; 5; 9999 ] in
  let left = Obs.Hist.merge (Obs.Hist.merge (a ()) (b ())) (c ()) in
  let right = Obs.Hist.merge (a ()) (Obs.Hist.merge (b ()) (c ())) in
  let flat = mk [ 3; 17; 1000; 0; 17; 123_456; 5; 5; 5; 9999 ] in
  Alcotest.(check bool) "assoc" true
    (hist_fingerprint left = hist_fingerprint right);
  Alcotest.(check bool) "merge = recording everything" true
    (hist_fingerprint left = hist_fingerprint flat);
  Alcotest.(check bool) "commutes" true
    (hist_fingerprint (Obs.Hist.merge (a ()) (b ()))
    = hist_fingerprint (Obs.Hist.merge (b ()) (a ())));
  (* merge_into leaves the source untouched *)
  let src = a () in
  let dst = b () in
  let before = hist_fingerprint src in
  Obs.Hist.merge_into ~into:dst src;
  Alcotest.(check bool) "source unchanged" true
    (before = hist_fingerprint src)

(* --- Chrome-trace attribute escaping ----------------------------------- *)

let test_attr_escaping () =
  let evil = "k\"ey\\with\ncontrol\tchars\x02" in
  let ev =
    Obs.Event.Instant
      {
        name = "n";
        ts = 1.0;
        attrs =
          [
            evil, Obs.Event.Str "quote\" backslash\\ newline\n bell\x07";
            "plain", Obs.Event.Int 3;
          ];
      }
  in
  let json = Json.parse (Obs.Chrome_trace.event_json ev) in
  let args =
    match Json.member "args" json with
    | Some a -> a
    | None -> Alcotest.fail "no args object"
  in
  (match Json.member evil args with
  | Some (Json.Str s) ->
    Alcotest.(check string) "evil value round-trips"
      "quote\" backslash\\ newline\n bell\x07" s
  | _ -> Alcotest.fail "evil key did not round-trip");
  match Json.member "plain" args with
  | Some (Json.Num f) -> Alcotest.(check (float 0.0)) "int attr" 3.0 f
  | _ -> Alcotest.fail "plain attr missing"

(* --- profiler ----------------------------------------------------------- *)

let span_b ?(attrs = []) name ts = Obs.Event.Span_begin { name; ts; attrs }
let span_e ?(attrs = []) name ts = Obs.Event.Span_end { name; ts; attrs }

let test_profile_tree () =
  (* root [0,100]: child x twice ([10,30], [40,50]), child y [60,90];
     y refines on its element attribute *)
  let events =
    [
      span_b "root" 0.0;
      span_b "x" 10.0;
      span_e "x" 30.0;
      span_b "x" 40.0;
      span_e "x" 50.0;
      span_b "y" 60.0 ~attrs:[ "element", Obs.Event.Str "T1" ];
      span_e "y" 90.0;
      span_e "root" 100.0;
    ]
  in
  let p = Obs.Profile.of_events events in
  Alcotest.(check (float 1e-6)) "total = root span" 100.0
    (Obs.Profile.total_us p);
  (match Obs.Profile.roots p with
  | [ root ] ->
    Alcotest.(check string) "root key" "root" root.Obs.Profile.key;
    Alcotest.(check int) "root calls" 1 root.Obs.Profile.calls;
    Alcotest.(check (float 1e-6)) "root self = 100-20-10-30" 40.0
      root.Obs.Profile.self_us;
    let child key =
      List.find
        (fun (n : Obs.Profile.node) -> String.equal n.key key)
        root.Obs.Profile.children
    in
    let x = child "x" in
    Alcotest.(check int) "x aggregates both calls" 2 x.Obs.Profile.calls;
    Alcotest.(check (float 1e-6)) "x total" 30.0 x.Obs.Profile.total_us;
    let y = child "y:T1" in
    Alcotest.(check (float 1e-6)) "y:T1 total" 30.0 y.Obs.Profile.total_us
  | roots -> Alcotest.failf "expected 1 root, got %d" (List.length roots));
  (* self times partition the traced total *)
  let self_sum =
    List.fold_left
      (fun acc (_, _, _, self) -> acc +. self)
      0.0
      (Obs.Profile.top ~n:100 p)
  in
  Alcotest.(check (float 1e-3)) "self times sum to total" 100.0 self_sum;
  let lines = String.split_on_char '\n' (String.trim (Obs.Profile.collapsed p)) in
  Alcotest.(check (list string)) "collapsed stacks, sorted"
    [ "root 40"; "root;x 30"; "root;y:T1 30" ]
    lines

let test_profile_unbalanced () =
  (* an end without a begin is dropped; an unterminated begin closes at
     the last seen timestamp *)
  let events =
    [
      span_e "orphan" 5.0;
      span_b "root" 10.0;
      span_b "child" 20.0;
      span_e "child" 30.0;
      span_b "dangling" 35.0;
    ]
  in
  let p = Obs.Profile.of_events events in
  Alcotest.(check (float 1e-6)) "root closed at last ts" 25.0
    (Obs.Profile.total_us p);
  match Obs.Profile.roots p with
  | [ root ] ->
    Alcotest.(check string) "root survives" "root" root.Obs.Profile.key
  | roots -> Alcotest.failf "expected 1 root, got %d" (List.length roots)

(* --- snapshot export ---------------------------------------------------- *)

let test_snapshot_json () =
  let h = Obs.Hist.hist "test.obs.snapshot_ns" in
  Obs.Hist.clear h;
  List.iter (Obs.Hist.record h) [ 10; 100; 1000 ];
  let c = Metrics.counter "test.obs.snapshot_counter" in
  Metrics.add c 7;
  let json_text = Obs.Snapshot.to_json (Obs.Snapshot.capture ()) in
  let json = Json.parse (String.trim json_text) in
  let section name =
    match Json.member name json with
    | Some o -> o
    | None -> Alcotest.failf "missing %s section" name
  in
  (match Json.member "test.obs.snapshot_counter" (section "counters") with
  | Some (Json.Num f) ->
    Alcotest.(check bool) "counter total present" true (f >= 7.0)
  | _ -> Alcotest.fail "counter missing from snapshot");
  (match Json.member "test.obs.snapshot_ns" (section "histograms") with
  | Some hist_obj ->
    let num key =
      match Json.member key hist_obj with
      | Some (Json.Num f) -> f
      | _ -> Alcotest.failf "histogram field %s missing" key
    in
    Alcotest.(check (float 0.0)) "count" 3.0 (num "count");
    Alcotest.(check (float 0.0)) "min" 10.0 (num "min");
    Alcotest.(check (float 0.0)) "max" 1000.0 (num "max");
    Alcotest.(check bool) "p50 within bucket width of 100" true
      (num "p50" >= 100.0 && num "p50" <= 112.5);
    (match Json.member "buckets" hist_obj with
    | Some (Json.List (_ :: _)) -> ()
    | _ -> Alcotest.fail "buckets missing")
  | None -> Alcotest.fail "registered histogram missing from snapshot");
  (* deterministic: capturing the same state twice gives identical text *)
  Alcotest.(check string) "stable serialisation" json_text
    (Obs.Snapshot.to_json (Obs.Snapshot.capture ()));
  Obs.Hist.clear h

let test_snapshot_prometheus () =
  let h = Obs.Hist.hist "test.obs.snapshot_ns" in
  Obs.Hist.clear h;
  Obs.Hist.record h 42;
  let text = Obs.Snapshot.to_prometheus (Obs.Snapshot.capture ()) in
  let contains sub =
    let n = String.length text and m = String.length sub in
    let rec go i = i + m <= n && (String.sub text i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "TYPE lines present" true (contains "# TYPE ");
  (* dots sanitised to the Prometheus alphabet *)
  Alcotest.(check bool) "sanitised histogram name" true
    (contains "test_obs_snapshot_ns");
  Alcotest.(check bool) "quantile series" true (contains "quantile=\"0.5\"");
  Alcotest.(check bool) "no raw dotted names" true
    (not (contains "test.obs.snapshot_ns"));
  Obs.Hist.clear h

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting well-formed" `Quick test_span_nesting;
          Alcotest.test_case "iteration spans, all modes" `Quick
            test_iteration_spans_all_modes;
          Alcotest.test_case "disabled path is silent" `Quick
            test_disabled_path_silent;
          Alcotest.test_case "spans level drops counters" `Quick
            test_spans_level_drops_counters;
          Alcotest.test_case "clock is monotonic" `Quick test_clock_monotonic;
        ] );
      ( "chrome_trace",
        [
          Alcotest.test_case "json export parses" `Quick test_chrome_trace_json;
          Alcotest.test_case "jsonl export parses" `Quick
            test_chrome_trace_jsonl;
          Alcotest.test_case "string escaping" `Quick test_string_escaping;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "scoped counters" `Quick test_scoped_counters;
          Alcotest.test_case "attachment attribution" `Quick
            test_attachment_attribution;
          Alcotest.test_case "interleaved analyses" `Quick
            test_interleaved_analyses_attribution;
        ] );
      ( "hist",
        [
          Alcotest.test_case "empty" `Quick test_hist_empty;
          Alcotest.test_case "single sample exact" `Quick
            test_hist_single_sample;
          Alcotest.test_case "negative clamps to 0" `Quick
            test_hist_negative_clamps;
          Alcotest.test_case "bucket boundaries" `Quick
            test_hist_bucket_boundaries;
          Alcotest.test_case "percentile ordering" `Quick
            test_hist_percentile_order;
          Alcotest.test_case "merge associative" `Quick
            test_hist_merge_associative;
        ] );
      ( "profile",
        [
          Alcotest.test_case "attr escaping" `Quick test_attr_escaping;
          Alcotest.test_case "cost tree" `Quick test_profile_tree;
          Alcotest.test_case "unbalanced stream" `Quick
            test_profile_unbalanced;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "json export" `Quick test_snapshot_json;
          Alcotest.test_case "prometheus export" `Quick
            test_snapshot_prometheus;
        ] );
    ]
