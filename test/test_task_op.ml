(* Tests for the output event-stream operation Theta_tau (paper,
   section 3): jitter amplification by the response-time spread and
   serialization at the best-case response time. *)

module Time = Timebase.Time
module Interval = Timebase.Interval
module Stream = Event_model.Stream
module Task_op = Event_model.Task_op

let time = Alcotest.testable Time.pp Time.equal

let test_identity_for_zero_response () =
  let input = Stream.periodic_jitter ~name:"in" ~period:100 ~jitter:20 () in
  let out = Task_op.output ~response:(Interval.make ~lo:0 ~hi:0) input in
  for n = 0 to 10 do
    Alcotest.check time
      (Printf.sprintf "delta_min %d" n)
      (Stream.delta_min input n) (Stream.delta_min out n);
    Alcotest.check time
      (Printf.sprintf "delta_plus %d" n)
      (Stream.delta_plus input n) (Stream.delta_plus out n)
  done

let test_delta_plus_shifted () =
  let input = Stream.periodic ~name:"in" ~period:100 in
  let out = Task_op.output ~response:(Interval.make ~lo:5 ~hi:30) input in
  (* delta_plus' n = delta_plus n + (r+ - r-) *)
  for n = 2 to 8 do
    Alcotest.check time
      (Printf.sprintf "delta_plus %d" n)
      (Time.add (Stream.delta_plus input n) (Time.of_int 25))
      (Stream.delta_plus out n)
  done

let test_delta_min_recurrence () =
  (* Simultaneous input events are serialized at least r- apart; distant
     events keep their distance minus the response spread. *)
  let input =
    Stream.make ~name:"burst2"
      ~delta_min:(fun n -> Time.of_int ((n - 1) / 2 * 100))
      ~delta_plus:(fun n -> Time.of_int (((n - 1) / 2 * 100) + 10))
  in
  let out = Task_op.output ~response:(Interval.make ~lo:5 ~hi:30) input in
  (* n=2: max (0 - 25) (0 + 5) = 5 *)
  Alcotest.check time "delta_min 2" (Time.of_int 5) (Stream.delta_min out 2);
  (* n=3: max (100 - 25) (5 + 5) = 75 *)
  Alcotest.check time "delta_min 3" (Time.of_int 75) (Stream.delta_min out 3);
  (* n=4: max (100 - 25) (75 + 5) = 80 *)
  Alcotest.check time "delta_min 4" (Time.of_int 80) (Stream.delta_min out 4)

let test_paper_frame_output () =
  (* The bus output stream of frame F1 in the paper example: OR(S1,S2)
     processed with response [4:10]. *)
  let combined =
    Event_model.Combine.or_combine
      [
        Stream.periodic ~name:"S1" ~period:250;
        Stream.periodic ~name:"S2" ~period:450;
      ]
  in
  let out = Task_op.output ~response:(Interval.make ~lo:4 ~hi:10) combined in
  (* two simultaneous triggers leave the bus at least r- = 4 apart *)
  Alcotest.check time "delta_min 2" (Time.of_int 4) (Stream.delta_min out 2);
  (* third trigger is 250 after the first: 250 - 6 = 244 *)
  Alcotest.check time "delta_min 3" (Time.of_int 244) (Stream.delta_min out 3)

let test_infinite_delta_plus_preserved () =
  let input = Stream.sporadic ~name:"sp" ~d_min:50 in
  let out = Task_op.output ~response:(Interval.make ~lo:1 ~hi:7) input in
  Alcotest.check time "inf stays" Time.Inf (Stream.delta_plus out 2)

let test_default_name () =
  let input = Stream.periodic ~name:"in" ~period:10 in
  let out = Task_op.output ~response:(Interval.point 3) input in
  Alcotest.(check string) "name" "out(in)" (Stream.name out)

(* properties *)

let arb_stream =
  let open QCheck in
  map
    (fun (p, j) ->
      Stream.periodic_jitter ~name:"s" ~period:(Stdlib.max 1 p)
        ~jitter:(Stdlib.max 0 j) ())
    (pair (int_range 1 200) (int_range 0 300))

let arb_response =
  QCheck.map
    (fun (lo, w) ->
      Interval.make ~lo:(Stdlib.max 0 lo) ~hi:(Stdlib.max 0 lo + Stdlib.max 0 w))
    QCheck.(pair (int_range 0 40) (int_range 0 60))

let prop_output_min_distance_r_minus =
  QCheck.Test.make ~name:"output events >= r- apart" ~count:100
    (QCheck.pair arb_stream arb_response) (fun (s, r) ->
      let out = Task_op.output ~response:r s in
      let r_minus = Interval.lo r in
      List.for_all
        (fun n ->
          Time.(Stream.delta_min out n >= Time.of_int ((n - 1) * r_minus)))
        [ 2; 3; 4; 5; 8 ])

let prop_output_monotone_delta_min =
  QCheck.Test.make ~name:"output delta_min monotone" ~count:100
    (QCheck.pair arb_stream arb_response) (fun (s, r) ->
      let out = Task_op.output ~response:r s in
      List.for_all
        (fun n -> Time.(Stream.delta_min out n <= Stream.delta_min out (n + 1)))
        [ 1; 2; 3; 4; 5; 6 ])

let prop_output_delta_plus_exact =
  (* delta_plus' n = delta_plus n + (r+ - r-), verbatim from the paper *)
  QCheck.Test.make ~name:"output delta_plus shift exact" ~count:100
    (QCheck.pair arb_stream arb_response) (fun (s, r) ->
      let out = Task_op.output ~response:r s in
      List.for_all
        (fun n ->
          Time.equal
            (Stream.delta_plus out n)
            (Time.add (Stream.delta_plus s n) (Time.of_int (Interval.width r))))
        [ 2; 3; 5; 9 ])

(* the compact (periodic-backend, verified-window) construction must
   agree with the scalar recurrence everywhere — deep probes included,
   where the compact curve runs on tail arithmetic *)
let arb_stream_mixed =
  let open QCheck in
  let jittered =
    map
      (fun (p, j, d) ->
        Stream.periodic_jitter ~name:"s" ~period:p ~jitter:j
          ~d_min:(Stdlib.min d p) ())
      (triple (int_range 1 200) (int_range 0 400) (int_range 1 10))
  in
  let bursty =
    map
      (fun (p, b, d) ->
        let burst = 1 + (b mod 5) in
        let period = Stdlib.max p (burst * d) in
        Stream.periodic_burst ~name:"s" ~period ~burst ~d_min:d)
      (triple (int_range 10 300) (int_range 0 10) (int_range 1 15))
  in
  choose [ jittered; bursty ]

let deep_ns = [ 1; 2; 3; 4; 5; 7; 11; 16; 33; 64; 100; 257; 1000; 4001 ]

let prop_compact_matches_scalar =
  QCheck.Test.make ~name:"kernel output = scalar output" ~count:150
    (QCheck.pair arb_stream_mixed arb_response) (fun (s, r) ->
      let batched =
        Event_model.Kernels.with_batched (fun () -> Task_op.output ~response:r s)
      in
      let scalar =
        Event_model.Kernels.with_scalar (fun () -> Task_op.output ~response:r s)
      in
      List.for_all
        (fun n ->
          Time.equal (Stream.delta_min batched n) (Stream.delta_min scalar n)
          && Time.equal (Stream.delta_plus batched n)
               (Stream.delta_plus scalar n))
        deep_ns)

(* Theta_tau conservatism audit (differential): the compact kernel path
   must equal the naive direct recursion
     d' n = max (d n - spread) (d' (n-1) + r-)
   on the historically suspect families — jitter larger than the period
   (deep clamped region, late floor/tail crossover) and r- = 0 (floor
   never binds, output follows the shifted input exactly).  The audit
   swept ~900 adversarial parameter combinations without divergence;
   these pin its representatives. *)
let naive_theta ~response s n =
  let r_minus = Interval.lo response and spread = Interval.width response in
  let rec go k prev =
    if k > n then prev
    else
      let direct =
        Time.sub_clamped (Stream.delta_min s k) (Time.of_int spread)
      in
      go (k + 1) (Time.max direct (Time.add prev (Time.of_int r_minus)))
  in
  if n < 2 then Time.zero else go 2 Time.zero

let audit_ns = [ 2; 3; 5; 17; 100; 1000; 4001; 30000 ]

let test_theta_audit_jitter_above_period () =
  List.iter
    (fun (period, jitter, lo, hi) ->
      let s =
        Stream.periodic_jitter ~name:"s" ~period ~jitter ~d_min:0 ()
      in
      let r = Interval.make ~lo ~hi in
      let out = Task_op.output ~response:r s in
      List.iter
        (fun n ->
          Alcotest.check time
            (Printf.sprintf "p=%d j=%d [%d:%d] n=%d" period jitter lo hi n)
            (naive_theta ~response:r s n)
            (Stream.delta_min out n))
        audit_ns)
    [
      (* jitter >> period: the clamp region covers many events *)
      100, 950, 5, 30;
      40, 3000, 2, 2;
      (* jitter > 2047 * period: past the old horizon slack *)
      4, 10000, 1, 7;
      (* spread alone above the period *)
      100, 0, 0, 250;
    ]

let test_theta_audit_zero_r_minus () =
  List.iter
    (fun (period, jitter, hi) ->
      let s =
        Stream.periodic_jitter ~name:"s" ~period ~jitter ~d_min:0 ()
      in
      let r = Interval.make ~lo:0 ~hi in
      let out = Task_op.output ~response:r s in
      List.iter
        (fun n ->
          Alcotest.check time
            (Printf.sprintf "p=%d j=%d [0:%d] n=%d" period jitter hi n)
            (naive_theta ~response:r s n)
            (Stream.delta_min out n))
        audit_ns)
    [ 100, 0, 60; 100, 250, 60; 7, 1000, 3; 1, 0, 0 ]

let test_compact_backend_used () =
  (* on a plain jittered input the kernel path must actually produce a
     compact (periodic-tail) output curve, not fall back to closures *)
  let input = Stream.periodic_jitter ~name:"in" ~period:250 ~jitter:600 () in
  let out =
    Event_model.Kernels.with_batched (fun () ->
      Task_op.output ~response:(Interval.make ~lo:5 ~hi:30) input)
  in
  Alcotest.(check bool) "delta_min compact" true
    (Option.is_some
       (Event_model.Curve.periodic_tail (Stream.delta_min_curve out)));
  Alcotest.(check bool) "delta_plus compact" true
    (Option.is_some
       (Event_model.Curve.periodic_tail (Stream.delta_plus_curve out)))

let () =
  Alcotest.run "task_op"
    [
      ( "output model",
        [
          Alcotest.test_case "identity for [0:0]" `Quick
            test_identity_for_zero_response;
          Alcotest.test_case "delta_plus shift" `Quick test_delta_plus_shifted;
          Alcotest.test_case "delta_min recurrence" `Quick
            test_delta_min_recurrence;
          Alcotest.test_case "paper frame output" `Quick test_paper_frame_output;
          Alcotest.test_case "infinite delta_plus" `Quick
            test_infinite_delta_plus_preserved;
          Alcotest.test_case "default name" `Quick test_default_name;
          Alcotest.test_case "kernel output is compact" `Quick
            test_compact_backend_used;
          Alcotest.test_case "theta audit: jitter > period" `Quick
            test_theta_audit_jitter_above_period;
          Alcotest.test_case "theta audit: r- = 0" `Quick
            test_theta_audit_zero_r_minus;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_output_min_distance_r_minus;
            prop_output_monotone_delta_min;
            prop_output_delta_plus_exact;
            prop_compact_matches_scalar;
          ] );
    ]
