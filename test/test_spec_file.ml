(* Tests for the textual system-description format: parsing, printing,
   round-trips, error reporting, and equivalence of a parsed paper
   description with the built-in reference system. *)

module Interval = Timebase.Interval
module Spec = Cpa_system.Spec
module Spec_file = Cpa_system.Spec_file
module Engine = Cpa_system.Engine

let parse_ok text =
  match Spec_file.parse text with
  | Ok d -> d
  | Error e -> Alcotest.failf "parse failed: %s" e

let minimal =
  {|
  (system
    (source s (periodic 100))
    (resource cpu spp)
    (task t (resource cpu) (cet 10 10) (priority 1)
      (activation (source s))))
  |}

let test_parse_minimal () =
  let d = parse_ok minimal in
  Alcotest.(check int) "sources" 1 (List.length d.Spec_file.sources);
  Alcotest.(check int) "resources" 1 (List.length d.Spec_file.resources);
  Alcotest.(check int) "tasks" 1 (List.length d.Spec_file.tasks);
  let task = List.nth d.Spec_file.tasks 0 in
  Alcotest.(check string) "task name" "t" task.Spec.task_name;
  Alcotest.(check bool) "cet" true (Interval.equal (Interval.point 10) task.Spec.cet)

let test_parse_comments_and_whitespace () =
  let d =
    parse_ok
      {|
      ; leading comment
      (system
        (source s (periodic 100)) ; trailing comment
        (resource cpu spp))
      |}
  in
  Alcotest.(check int) "parsed through comments" 1
    (List.length d.Spec_file.sources)

let test_all_source_kinds () =
  let d =
    parse_ok
      {|
      (system
        (source a (periodic 10))
        (source b (periodic-jitter 100 30))
        (source c (periodic-jitter 100 30 5))
        (source d (sporadic 50))
        (source e (burst 200 3 10)))
      |}
  in
  let desc name =
    (List.find (fun s -> s.Spec_file.source_name = name) d.Spec_file.sources)
      .Spec_file.desc
  in
  Alcotest.(check bool) "periodic" true (desc "a" = Spec_file.Periodic 10);
  Alcotest.(check bool) "jitter default d" true
    (desc "b" = Spec_file.Periodic_jitter { period = 100; jitter = 30; d_min = 1 });
  Alcotest.(check bool) "jitter explicit d" true
    (desc "c" = Spec_file.Periodic_jitter { period = 100; jitter = 30; d_min = 5 });
  Alcotest.(check bool) "sporadic" true (desc "d" = Spec_file.Sporadic 50);
  Alcotest.(check bool) "burst" true
    (desc "e" = Spec_file.Burst { period = 200; burst = 3; d_min = 10 })

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_backend_annotation () =
  let d =
    parse_ok
      {|
      (system
        (resource cpu spp (backend rtc))
        (resource bus spnp)
        (resource io tdma (backend cpa)))
      |}
  in
  let backend name =
    (List.find (fun r -> r.Spec.res_name = name) d.Spec_file.resources)
      .Spec.backend
  in
  Alcotest.(check bool) "explicit rtc" true (backend "cpu" = Spec.Rtc);
  Alcotest.(check bool) "default cpa" true (backend "bus" = Spec.Cpa);
  Alcotest.(check bool) "explicit cpa" true (backend "io" = Spec.Cpa);
  let printed = Spec_file.print d in
  Alcotest.(check bool) "roundtrip equal" true
    (Spec_file.equal d (parse_ok printed));
  Alcotest.(check bool) "rtc backend printed" true
    (contains ~needle:"(backend rtc)" printed);
  (* the default backend prints without an annotation, keeping digests
     of pure-CPA descriptions stable *)
  Alcotest.(check bool) "default backend not printed" false
    (contains ~needle:"(backend cpa)" printed);
  match Spec_file.parse "(system (resource cpu spp (backend magic)))" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown backend must be rejected"

let test_parse_errors () =
  let fails text =
    match Spec_file.parse text with
    | Error _ -> true
    | Ok _ -> false
  in
  Alcotest.(check bool) "not a system" true (fails "(frobnicate)");
  Alcotest.(check bool) "unbalanced" true (fails "(system (source s");
  Alcotest.(check bool) "bad scheduler" true
    (fails "(system (resource r quantum))");
  Alcotest.(check bool) "bad integer" true
    (fails "(system (source s (periodic ten)))");
  Alcotest.(check bool) "missing cet" true
    (fails
       "(system (resource cpu spp) (task t (resource cpu) (priority 1) \
        (activation (source s))))");
  Alcotest.(check bool) "unknown section" true
    (fails "(system (gadget g))");
  Alcotest.(check bool) "empty field" true
    (fails
       "(system (resource cpu spp) (task t (resource) (cet 1 1) (priority 1) \
        (activation (source s))))");
  Alcotest.(check bool) "trailing garbage" true
    (fails "(system) extra")

(* the test binary runs from the test directory under `dune runtest` but
   from the workspace root under `dune exec` *)
let file_text basename =
  let candidates =
    [ basename; "_build/default/test/" ^ basename;
      "examples/specs/" ^ basename ]
  in
  match List.find_opt Sys.file_exists candidates with
  | None -> Alcotest.failf "%s not found" basename
  | Some path ->
    let ic = open_in path in
    let n = in_channel_length ic in
    let contents = really_input_string ic n in
    close_in ic;
    contents

let paper_file_text () = file_text "paper_gateway.scm"

let test_roundtrip_paper_file () =
  let d = parse_ok (paper_file_text ()) in
  let reprinted = parse_ok (Spec_file.print d) in
  Alcotest.(check bool) "roundtrip equal" true (Spec_file.equal d reprinted)

let test_roundtrip_rich_description () =
  let d =
    parse_ok
      {|
      (system
        (source a (periodic-jitter 100 30 5))
        (source b (sporadic 50))
        (resource bus spnp)
        (resource link tdma)
        (resource cpu edf)
        (frame f (bus bus) (send mixed 500) (tx 2 4) (priority 7)
          (signal x triggering (source a))
          (signal y pending (output t2)))
        (task t1 (resource link) (cet 3 6) (priority 1) (service 4)
          (activation (or (signal f x) (and (frame f) (source b)))))
        (task t2 (resource cpu) (cet 5 5) (priority 2) (deadline 80)
          (activation (source b))))
      |}
  in
  let reprinted = parse_ok (Spec_file.print d) in
  Alcotest.(check bool) "roundtrip equal" true (Spec_file.equal d reprinted)

let test_to_spec_matches_builtin () =
  (* the shipped paper_gateway.scm analyses to the same responses as the
     built-in reference system (modulo element names) *)
  let spec = Spec_file.to_spec (parse_ok (paper_file_text ())) in
  match
    ( Engine.analyse ~mode:Engine.Hierarchical spec,
      Engine.analyse ~mode:Engine.Hierarchical (Scenarios.Paper_system.spec ()) )
  with
  | Ok from_file, Ok builtin ->
    List.iter2
      (fun file_name builtin_name ->
        Alcotest.(check (option (pair int int)))
          (file_name ^ " matches " ^ builtin_name)
          (Option.map
             (fun i -> Interval.lo i, Interval.hi i)
             (Engine.response builtin builtin_name))
          (Option.map
             (fun i -> Interval.lo i, Interval.hi i)
             (Engine.response from_file file_name)))
      [ "f1"; "f2"; "t1"; "t2"; "t3" ]
      [ "F1"; "F2"; "T1"; "T2"; "T3" ]
  | Error e, _ | _, Error e ->
    Alcotest.failf "analysis failed: %s" (Guard.Error.to_string e)

let test_avionics_file_matches_builtin () =
  (* the shipped avionics.scm mirrors Scenarios.Avionics exactly *)
  let from_file = Spec_file.to_spec (parse_ok (file_text "avionics.scm")) in
  let builtin = Scenarios.Avionics.spec () in
  match
    ( Engine.analyse ~mode:Engine.Hierarchical from_file,
      Engine.analyse ~mode:Engine.Hierarchical builtin )
  with
  | Ok a, Ok b ->
    Alcotest.(check bool) "both converge" true
      (a.Engine.converged && b.Engine.converged);
    List.iter
      (fun name ->
        Alcotest.(check (option (pair int int)))
          name
          (Option.map
             (fun i -> Interval.lo i, Interval.hi i)
             (Engine.response b name))
          (Option.map
             (fun i -> Interval.lo i, Interval.hi i)
             (Engine.response a name)))
      Scenarios.Avionics.all_elements
  | Error e, _ | _, Error e ->
    Alcotest.failf "analysis failed: %s" (Guard.Error.to_string e)

let test_print_is_parsable_spec () =
  (* printing then converting still validates *)
  let d = parse_ok minimal in
  let spec = Spec_file.to_spec (parse_ok (Spec_file.print d)) in
  Alcotest.(check bool) "valid" true (Spec.validate spec = Ok ())

(* ------------------------------------------------------------------ *)
(* qcheck: print/parse round-trip and digest properties on randomly
   generated descriptions *)

let gen_description =
  let open QCheck.Gen in
  let gen_source i =
    let name = Printf.sprintf "src%d" i in
    let* desc =
      oneof
        [
          map (fun p -> Spec_file.Periodic p) (int_range 50 2000);
          map2
            (fun p j ->
              Spec_file.Periodic_jitter { period = p; jitter = j; d_min = 1 })
            (int_range 50 2000) (int_range 1 40);
          map (fun d -> Spec_file.Sporadic d) (int_range 20 500);
          map2
            (fun p b -> Spec_file.Burst { period = p; burst = b; d_min = 5 })
            (int_range 200 2000) (int_range 2 4);
        ]
    in
    return { Spec_file.source_name = name; desc }
  in
  let gen_mode = oneofl Event_model.Propagation.all_modes in
  let gen_task i n_sources =
    let* src = int_range 0 (n_sources - 1) in
    let* lo = int_range 1 20 in
    let* extra = int_range 0 10 in
    let* propagation = opt gen_mode in
    return
      (Spec.task
         ~name:(Printf.sprintf "tsk%d" i)
         ~resource:"cpu"
         ~cet:(Interval.make ~lo ~hi:(lo + extra))
         ~priority:(i + 1)
         ?propagation
         ~activation:(Spec.From_source (Printf.sprintf "src%d" src))
         ())
  in
  let* n_sources = int_range 1 4 in
  let* sources =
    flatten_l (List.init n_sources (fun i -> gen_source i))
  in
  let* n_tasks = int_range 1 4 in
  let* tasks =
    flatten_l (List.init n_tasks (fun i -> gen_task i n_sources))
  in
  let* default_propagation = gen_mode in
  return
    {
      Spec_file.sources;
      resources = [ { Spec.res_name = "cpu"; scheduler = Spec.Spp; backend = Spec.Cpa } ];
      tasks;
      frames = [];
      default_propagation;
    }

let arb_description =
  QCheck.make
    ~print:(fun d -> Spec_file.print d)
    gen_description

let prop_print_parse_roundtrip =
  QCheck.Test.make ~name:"parse (print d) = Ok d" ~count:100 arb_description
    (fun d ->
      match Spec_file.parse (Spec_file.print d) with
      | Error e -> QCheck.Test.fail_reportf "parse failed: %s" e
      | Ok d' -> Spec_file.equal d d')

let prop_digest_reorder_invariant =
  QCheck.Test.make ~name:"digest invariant under element reordering"
    ~count:60 arb_description (fun d ->
      let spec = Spec_file.to_spec d in
      let permuted =
        Spec_file.to_spec
          {
            d with
            Spec_file.sources = List.rev d.Spec_file.sources;
            tasks = List.rev d.Spec_file.tasks;
          }
      in
      String.equal (Spec.digest spec) (Spec.digest permuted))

let prop_digest_edit_sensitive =
  QCheck.Test.make ~name:"digest changes under a cet edit" ~count:60
    (QCheck.pair arb_description (QCheck.int_range 101 400))
    (fun (d, percent) ->
      let spec = Spec_file.to_spec d in
      let task = (List.hd d.Spec_file.tasks).Spec.task_name in
      let edited = Cpa_system.Sensitivity.scale_cet spec ~task ~percent in
      (* percent > 100 strictly grows a positive cet after rounding up,
         so the digest must differ *)
      not (String.equal (Spec.digest spec) (Spec.digest edited)))

let () =
  Alcotest.run "spec_file"
    [
      ( "parse",
        [
          Alcotest.test_case "minimal" `Quick test_parse_minimal;
          Alcotest.test_case "comments" `Quick test_parse_comments_and_whitespace;
          Alcotest.test_case "source kinds" `Quick test_all_source_kinds;
          Alcotest.test_case "backend annotation" `Quick
            test_backend_annotation;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "paper file" `Quick test_roundtrip_paper_file;
          Alcotest.test_case "rich description" `Quick
            test_roundtrip_rich_description;
          Alcotest.test_case "to_spec equivalence" `Quick
            test_to_spec_matches_builtin;
          Alcotest.test_case "avionics file" `Quick
            test_avionics_file_matches_builtin;
          Alcotest.test_case "print validates" `Quick test_print_is_parsable_spec;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_print_parse_roundtrip;
            prop_digest_reorder_invariant;
            prop_digest_edit_sensitive;
          ] );
    ]
