(* Tests for the discrete-event simulator substrate: event queue,
   generators, trace accessors, and scheduler behaviour on small systems
   with hand-computable schedules. *)

module Interval = Timebase.Interval
module Stream = Event_model.Stream
module Spec = Cpa_system.Spec
module Heap = Des.Heap
module Gen = Des.Gen
module Trace = Des.Trace
module Port = Des.Port
module Simulator = Des.Simulator

(* ------------------------------------------------------------------ *)
(* heap *)

let test_heap_ordering () =
  let h = Heap.create () in
  List.iter (fun t -> Heap.push h ~time:t t) [ 5; 1; 9; 3; 3; 0; 7 ];
  let rec drain acc =
    match Heap.pop h with
    | None -> List.rev acc
    | Some (t, _) -> drain (t :: acc)
  in
  Alcotest.(check (list int)) "sorted" [ 0; 1; 3; 3; 5; 7; 9 ] (drain [])

let test_heap_fifo_among_equals () =
  let h = Heap.create () in
  Heap.push h ~time:5 "first";
  Heap.push h ~time:5 "second";
  Heap.push h ~time:5 "third";
  let next () = match Heap.pop h with Some (_, v) -> v | None -> "?" in
  let a = next () in
  let b = next () in
  let c = next () in
  Alcotest.(check (list string)) "fifo" [ "first"; "second"; "third" ] [ a; b; c ]

let test_heap_sizes () =
  let h = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "peek empty" None (Heap.peek_time h);
  Heap.push h ~time:3 ();
  Heap.push h ~time:1 ();
  Alcotest.(check int) "size" 2 (Heap.size h);
  Alcotest.(check (option int)) "peek" (Some 1) (Heap.peek_time h)

let test_heap_interleaved () =
  (* property-style: interleaved pushes and pops still extract sorted *)
  let h = Heap.create () in
  let rng = Random.State.make [| 7 |] in
  let popped = ref [] in
  for _ = 1 to 500 do
    if Random.State.bool rng || Heap.is_empty h then
      Heap.push h ~time:(Random.State.int rng 1000) ()
    else
      match Heap.pop h with
      | Some (t, ()) -> popped := t :: !popped
      | None -> ()
  done;
  let rec drain () =
    match Heap.pop h with
    | Some (t, ()) -> popped := t :: !popped; drain ()
    | None -> ()
  in
  (* drain the rest; the full pop sequence need not be sorted globally,
     but each pop must be >= all previously popped at pop time; easiest
     check: popping after all pushes yields sorted output *)
  drain ();
  Alcotest.(check bool) "drained" true (Heap.is_empty h)

(* ------------------------------------------------------------------ *)
(* generators *)

let rng () = Random.State.make [| 11 |]

let test_gen_periodic () =
  Alcotest.(check (list int)) "phase 0" [ 0; 10; 20; 30 ]
    (Gen.times (Gen.periodic ~period:10 ()) ~rng:(rng ()) ~horizon:30);
  Alcotest.(check (list int)) "phase 3" [ 3; 13 ]
    (Gen.times (Gen.periodic ~phase:3 ~period:10 ()) ~rng:(rng ()) ~horizon:15)

let test_gen_periodic_jitter_contained () =
  let times =
    Gen.times (Gen.periodic_jitter ~period:100 ~jitter:40 ()) ~rng:(rng ())
      ~horizon:10_000
  in
  List.iteri
    (fun k t ->
      Alcotest.(check bool)
        (Printf.sprintf "event %d in window" k)
        true
        (t >= k * 100 && t <= (k * 100) + 40))
    times

let test_gen_sporadic_spacing () =
  let times =
    Gen.times (Gen.sporadic ~d_min:50 ~slack:20 ()) ~rng:(rng ())
      ~horizon:10_000
  in
  let rec check = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "spacing" true (b - a >= 50 && b - a <= 70);
      check rest
    | [ _ ] | [] -> ()
  in
  check times;
  Alcotest.(check bool) "nonempty" true (List.length times > 100)

let test_gen_of_times () =
  Alcotest.(check (list int)) "filtered" [ 1; 5 ]
    (Gen.times (Gen.of_times [ 1; 5; 50 ]) ~rng:(rng ()) ~horizon:10);
  Alcotest.(check bool) "unsorted rejected" true
    (match Gen.of_times [ 5; 1 ] with
     | _ -> false
     | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* trace *)

let test_trace_observations () =
  let t = Trace.create () in
  List.iter (fun time -> Trace.record_arrival t ~stream:"s" ~time)
    [ 0; 10; 12; 100 ];
  Alcotest.(check (list int)) "sorted arrivals" [ 0; 10; 12; 100 ]
    (Trace.arrivals t "s");
  Alcotest.(check int) "eta in 5" 2 (Trace.observed_eta_plus t "s" ~dt:5);
  Alcotest.(check int) "eta in 13" 3 (Trace.observed_eta_plus t "s" ~dt:13);
  Alcotest.(check int) "eta in 0" 0 (Trace.observed_eta_plus t "s" ~dt:0);
  Alcotest.(check (option int)) "delta_min 2" (Some 2)
    (Trace.observed_delta_min t "s" ~n:2);
  Alcotest.(check (option int)) "delta_min 3" (Some 12)
    (Trace.observed_delta_min t "s" ~n:3);
  Alcotest.(check (option int)) "delta_min 5" None
    (Trace.observed_delta_min t "s" ~n:5)

let test_trace_responses () =
  let t = Trace.create () in
  Trace.record_response t ~element:"x" ~activation:0 ~completion:10;
  Trace.record_response t ~element:"x" ~activation:100 ~completion:103;
  Alcotest.(check (option int)) "worst" (Some 10) (Trace.worst_response t "x");
  Alcotest.(check (option int)) "best" (Some 3) (Trace.best_response t "x");
  Alcotest.(check int) "count" 2 (Trace.response_count t "x");
  Alcotest.(check (option int)) "unknown" None (Trace.worst_response t "y");
  Alcotest.(check bool) "bad response rejected" true
    (match Trace.record_response t ~element:"x" ~activation:5 ~completion:4 with
     | _ -> false
     | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* simulator on hand-checkable systems *)

let simple_spec ?(priority2 = 2) () =
  Spec.make
    ~sources:
      [
        "fast", Stream.periodic ~name:"fast" ~period:50;
        "slow", Stream.periodic ~name:"slow" ~period:200;
      ]
    ~resources:[ { Spec.res_name = "cpu"; scheduler = Spec.Spp; backend = Spec.Cpa } ]
    ~tasks:
      [
        Spec.task ~name:"hi" ~resource:"cpu" ~cet:(Interval.point 10)
          ~priority:1 ~activation:(Spec.From_source "fast") ();
        Spec.task ~name:"lo" ~resource:"cpu" ~cet:(Interval.point 20)
          ~priority:priority2 ~activation:(Spec.From_source "slow") ();
      ]
    ()

let run_simple () =
  match
    Simulator.run
      ~generators:
        [ "fast", Gen.periodic ~period:50 (); "slow", Gen.periodic ~period:200 () ]
      ~horizon:10_000 (simple_spec ())
  with
  | Ok trace -> trace
  | Error e -> Alcotest.failf "simulation failed: %s" e

let test_sim_preemptive_cpu () =
  let trace = run_simple () in
  (* hi runs unobstructed: response exactly 10 *)
  Alcotest.(check (option int)) "hi worst" (Some 10)
    (Trace.worst_response trace "hi");
  (* lo arrives with hi (both at 0 mod 200): preempted once at 50:
     0: hi runs 0-10, lo runs 10-30 -> resp 30 *)
  Alcotest.(check (option int)) "lo worst" (Some 30)
    (Trace.worst_response trace "lo");
  Alcotest.(check bool) "lo completed often" true
    (Trace.response_count trace "lo" >= 40)

let test_sim_preemption_splits_execution () =
  (* lo (C=20) starting at 40 is preempted by hi at 50: finishes at 80 *)
  let spec =
    Spec.make
      ~sources:
        [
          "fast", Stream.periodic ~name:"fast" ~period:1000;
          "slow", Stream.periodic ~name:"slow" ~period:1000;
        ]
      ~resources:[ { Spec.res_name = "cpu"; scheduler = Spec.Spp; backend = Spec.Cpa } ]
      ~tasks:
        [
          Spec.task ~name:"hi" ~resource:"cpu" ~cet:(Interval.point 10)
            ~priority:1 ~activation:(Spec.From_source "fast") ();
          Spec.task ~name:"lo" ~resource:"cpu" ~cet:(Interval.point 20)
            ~priority:2 ~activation:(Spec.From_source "slow") ();
        ]
      ()
  in
  match
    Simulator.run
      ~generators:
        [
          "fast", Gen.of_times [ 50 ];
          "slow", Gen.of_times [ 40 ];
        ]
      ~horizon:1000 spec
  with
  | Error e -> Alcotest.failf "simulation failed: %s" e
  | Ok trace ->
    (* lo: 40-50 runs 10 units, preempted 50-60, resumes 60-70: resp 30 *)
    Alcotest.(check (option int)) "lo response" (Some 30)
      (Trace.worst_response trace "lo");
    Alcotest.(check (option int)) "hi response" (Some 10)
      (Trace.worst_response trace "hi")

let test_sim_can_bus () =
  let spec = Scenarios.Paper_system.spec () in
  match
    Simulator.run
      ~generators:
        [
          "S1", Gen.of_times [ 0 ];
          "S2", Gen.of_times [ 0 ];
          "S3", Gen.of_times [];
          "S4", Gen.of_times [ 0 ];
        ]
      ~horizon:1000 spec
  with
  | Error e -> Alcotest.failf "simulation failed: %s" e
  | Ok trace ->
    (* three frame instances queued at 0: F1 twice (S1, S2), F2 once;
       priority order: F1, F1, F2; transmissions 0-4, 4-8, 8-10 *)
    Alcotest.(check int) "F1 transmissions" 2 (Trace.response_count trace "F1");
    Alcotest.(check (option int)) "F1 worst" (Some 8)
      (Trace.worst_response trace "F1");
    Alcotest.(check (option int)) "F2 worst" (Some 10)
      (Trace.worst_response trace "F2")

let test_sim_pending_latching () =
  (* a pending signal rides along with the next triggered frame *)
  let spec = Scenarios.Paper_system.spec () in
  match
    Simulator.run
      ~generators:
        [
          "S1", Gen.of_times [ 100 ];
          "S2", Gen.of_times [];
          "S3", Gen.of_times [ 10 ];  (* pending write before the trigger *)
          "S4", Gen.of_times [];
        ]
      ~horizon:1000 spec
  with
  | Error e -> Alcotest.failf "simulation failed: %s" e
  | Ok trace ->
    (* the S3 value written at 10 is delivered by the frame triggered at
       100, completing at 104 *)
    Alcotest.(check (list int)) "sig3 delivered once" [ 104 ]
      (Trace.arrivals trace (Port.signal ~frame:"F1" ~signal:"sig3"));
    Alcotest.(check (list int)) "sig1 delivered too" [ 104 ]
      (Trace.arrivals trace (Port.signal ~frame:"F1" ~signal:"sig1"));
    (* T3 activated by the delivery *)
    Alcotest.(check int) "T3 ran once" 1 (Trace.response_count trace "T3")

let test_sim_missing_generator () =
  let spec = simple_spec () in
  Alcotest.(check bool) "error" true
    (match
       Simulator.run ~generators:[ "fast", Gen.periodic ~period:50 () ]
         ~horizon:100 spec
     with
     | Error _ -> true
     | Ok _ -> false)

let test_sim_edf_order () =
  (* two jobs released together: the one with the earlier deadline runs
     first even at lower static priority *)
  let spec =
    Spec.make
      ~sources:[ "s", Stream.periodic ~name:"s" ~period:1000 ]
      ~resources:[ { Spec.res_name = "cpu"; scheduler = Spec.Edf; backend = Spec.Cpa } ]
      ~tasks:
        [
          Spec.task ~name:"lax" ~resource:"cpu" ~cet:(Interval.point 10)
            ~priority:1 ~deadline:100 ~activation:(Spec.From_source "s") ();
          Spec.task ~name:"urgent" ~resource:"cpu" ~cet:(Interval.point 10)
            ~priority:2 ~deadline:30 ~activation:(Spec.From_source "s") ();
        ]
      ()
  in
  match
    Simulator.run ~generators:[ "s", Gen.of_times [ 0 ] ] ~horizon:1000 spec
  with
  | Error e -> Alcotest.failf "simulation failed: %s" e
  | Ok trace ->
    Alcotest.(check (option int)) "urgent first" (Some 10)
      (Des.Trace.worst_response trace "urgent");
    Alcotest.(check (option int)) "lax second" (Some 20)
      (Des.Trace.worst_response trace "lax")

let test_sim_edf_preemption () =
  (* a later release with a much earlier deadline preempts *)
  let spec =
    Spec.make
      ~sources:
        [
          "slow", Stream.periodic ~name:"slow" ~period:1000;
          "fast", Stream.periodic ~name:"fast" ~period:1000;
        ]
      ~resources:[ { Spec.res_name = "cpu"; scheduler = Spec.Edf; backend = Spec.Cpa } ]
      ~tasks:
        [
          Spec.task ~name:"long" ~resource:"cpu" ~cet:(Interval.point 50)
            ~priority:1 ~deadline:500 ~activation:(Spec.From_source "slow") ();
          Spec.task ~name:"short" ~resource:"cpu" ~cet:(Interval.point 5)
            ~priority:1 ~deadline:10 ~activation:(Spec.From_source "fast") ();
        ]
      ()
  in
  match
    Simulator.run
      ~generators:[ "slow", Gen.of_times [ 0 ]; "fast", Gen.of_times [ 20 ] ]
      ~horizon:1000 spec
  with
  | Error e -> Alcotest.failf "simulation failed: %s" e
  | Ok trace ->
    (* short: released 20 (deadline 30 < long's 500), runs 20-25 *)
    Alcotest.(check (option int)) "short preempts" (Some 5)
      (Des.Trace.worst_response trace "short");
    (* long: 0-20, preempted 20-25, resumes 25-55 *)
    Alcotest.(check (option int)) "long delayed" (Some 55)
      (Des.Trace.worst_response trace "long")

let test_sim_tdma_slots () =
  (* slot table: t1 owns [0,3), t2 owns [3,8), cycle 8 *)
  let spec =
    Spec.make
      ~sources:
        [
          "a", Stream.periodic ~name:"a" ~period:1000;
          "b", Stream.periodic ~name:"b" ~period:1000;
        ]
      ~resources:[ { Spec.res_name = "link"; scheduler = Spec.Tdma; backend = Spec.Cpa } ]
      ~tasks:
        [
          Spec.task ~name:"t1" ~resource:"link" ~cet:(Interval.point 5)
            ~priority:1 ~service:3 ~activation:(Spec.From_source "a") ();
          Spec.task ~name:"t2" ~resource:"link" ~cet:(Interval.point 4)
            ~priority:1 ~service:5 ~activation:(Spec.From_source "b") ();
        ]
      ()
  in
  match
    Simulator.run
      ~generators:[ "a", Gen.of_times [ 0 ]; "b", Gen.of_times [ 0 ] ]
      ~horizon:1000 spec
  with
  | Error e -> Alcotest.failf "simulation failed: %s" e
  | Ok trace ->
    (* t1: 3 units in slot [0,3), paused, 2 more in [8,10): resp 10 *)
    Alcotest.(check (option int)) "t1 spans cycles" (Some 10)
      (Des.Trace.worst_response trace "t1");
    (* t2: 4 units in slot [3,7): resp 7 *)
    Alcotest.(check (option int)) "t2 in one slot" (Some 7)
      (Des.Trace.worst_response trace "t2")

let test_sim_round_robin_rotation () =
  let spec =
    Spec.make
      ~sources:
        [
          "a", Stream.periodic ~name:"a" ~period:1000;
          "b", Stream.periodic ~name:"b" ~period:1000;
        ]
      ~resources:[ { Spec.res_name = "cpu"; scheduler = Spec.Round_robin; backend = Spec.Cpa } ]
      ~tasks:
        [
          Spec.task ~name:"t1" ~resource:"cpu" ~cet:(Interval.point 4)
            ~priority:1 ~service:2 ~activation:(Spec.From_source "a") ();
          Spec.task ~name:"t2" ~resource:"cpu" ~cet:(Interval.point 6)
            ~priority:1 ~service:3 ~activation:(Spec.From_source "b") ();
        ]
      ()
  in
  match
    Simulator.run
      ~generators:[ "a", Gen.of_times [ 0 ]; "b", Gen.of_times [ 0 ] ]
      ~horizon:1000 spec
  with
  | Error e -> Alcotest.failf "simulation failed: %s" e
  | Ok trace ->
    (* service: t1 [0,2), t2 [2,5), t1 [5,7) done, t2 [7,10) done *)
    Alcotest.(check (option int)) "t1" (Some 7)
      (Des.Trace.worst_response trace "t1");
    Alcotest.(check (option int)) "t2" (Some 10)
      (Des.Trace.worst_response trace "t2")

let test_sim_deterministic_with_seed () =
  let run () =
    match
      Simulator.run ~seed:123 ~cet_policy:Simulator.Uniform
        ~generators:
          [
            "fast", Gen.periodic_jitter ~period:50 ~jitter:20 ();
            "slow", Gen.periodic_jitter ~period:200 ~jitter:30 ();
          ]
        ~horizon:20_000
        (Spec.make
           ~sources:
             [
               "fast", Stream.periodic ~name:"fast" ~period:50;
               "slow", Stream.periodic ~name:"slow" ~period:200;
             ]
           ~resources:[ { Spec.res_name = "cpu"; scheduler = Spec.Spp; backend = Spec.Cpa } ]
           ~tasks:
             [
               Spec.task ~name:"hi" ~resource:"cpu"
                 ~cet:(Interval.make ~lo:5 ~hi:10) ~priority:1
                 ~activation:(Spec.From_source "fast") ();
               Spec.task ~name:"lo" ~resource:"cpu"
                 ~cet:(Interval.make ~lo:10 ~hi:20) ~priority:2
                 ~activation:(Spec.From_source "slow") ();
             ]
           ())
    with
    | Ok trace -> Trace.worst_response trace "lo"
    | Error e -> Alcotest.failf "simulation failed: %s" e
  in
  Alcotest.(check (option int)) "same seed, same result" (run ()) (run ())

(* ------------------------------------------------------------------ *)
(* failure injection *)

let test_frame_loss_semantics () =
  let spec = Scenarios.Paper_system.spec () in
  let generators =
    [
      "S1", Gen.periodic ~period:250 ();
      "S2", Gen.periodic ~period:450 ();
      "S3", Gen.periodic ~period:1000 ();
      "S4", Gen.periodic ~period:400 ();
    ]
  in
  let run loss =
    match
      Simulator.run ~frame_loss_percent:loss ~generators ~horizon:500_000 spec
    with
    | Ok trace -> trace
    | Error e -> Alcotest.failf "simulation failed: %s" e
  in
  let healthy = run 0 in
  let lossy = run 30 in
  let deliveries trace signal =
    List.length (Trace.arrivals trace (Port.signal ~frame:"F1" ~signal))
  in
  (* triggering events of lost frames are gone for good *)
  Alcotest.(check bool) "sig1 deliveries reduced" true
    (deliveries lossy "sig1" < deliveries healthy "sig1");
  (* pending values survive: they ride the next successful frame, so the
     delivery count barely drops (only values overwritten while waiting) *)
  Alcotest.(check bool) "sig3 mostly survives" true
    (10 * deliveries lossy "sig3" >= 8 * deliveries healthy "sig3");
  (* every pending write eventually reaches the receiver: the largest gap
     between sig3 deliveries stays bounded by a few frame gaps *)
  let gaps =
    let times = Trace.arrivals lossy (Port.signal ~frame:"F1" ~signal:"sig3") in
    let rec scan acc = function
      | a :: (b :: _ as rest) -> scan (Stdlib.max acc (b - a)) rest
      | [ _ ] | [] -> acc
    in
    scan 0 times
  in
  Alcotest.(check bool)
    (Printf.sprintf "bounded sig3 gap (%d)" gaps)
    true (gaps <= 3000);
  Alcotest.(check bool) "bad percentage rejected" true
    (match
       Simulator.run ~frame_loss_percent:101 ~generators ~horizon:100 spec
     with
     | _ -> false
     | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* measurement-based models *)

let test_measured_stream () =
  let t = Trace.create () in
  List.iter (fun time -> Trace.record_arrival t ~stream:"s" ~time)
    [ 0; 10; 12; 100 ];
  (match Des.Measured.stream_of_trace t ~stream:"s" with
   | None -> Alcotest.fail "expected a stream"
   | Some s ->
     let time = Alcotest.testable Timebase.Time.pp Timebase.Time.equal in
     Alcotest.check time "delta_min 2" (Timebase.Time.of_int 2)
       (Stream.delta_min s 2);
     Alcotest.check time "delta_max 2" (Timebase.Time.of_int 88)
       (Stream.delta_plus s 2);
     Alcotest.check time "delta_min 3" (Timebase.Time.of_int 12)
       (Stream.delta_min s 3);
     Alcotest.check time "full span" (Timebase.Time.of_int 100)
       (Stream.delta_min s 4);
     (* extrapolation past the recorded count *)
     Alcotest.check time "extrapolated min" (Timebase.Time.of_int 102)
       (Stream.delta_min s 5);
     Alcotest.check time "extrapolated max" (Timebase.Time.of_int 188)
       (Stream.delta_plus s 5);
     Alcotest.(check bool) "well formed" true
       (Stream.well_formed ~horizon:16 s = Ok ()));
  let empty = Trace.create () in
  Alcotest.(check bool) "too few arrivals" true
    (Des.Measured.stream_of_trace empty ~stream:"s" = None)

let test_measured_sem () =
  (* measuring a simulated periodic source recovers its period *)
  let spec =
    Spec.make
      ~sources:[ "s", Stream.periodic ~name:"s" ~period:100 ]
      ~resources:[ { Spec.res_name = "cpu"; scheduler = Spec.Spp; backend = Spec.Cpa } ]
      ~tasks:
        [
          Spec.task ~name:"t" ~resource:"cpu" ~cet:(Interval.point 5)
            ~priority:1 ~activation:(Spec.From_source "s") ();
        ]
      ()
  in
  match
    Simulator.run ~generators:[ "s", Gen.periodic ~period:100 () ]
      ~horizon:100_000 spec
  with
  | Error e -> Alcotest.failf "simulation failed: %s" e
  | Ok trace -> begin
    match Des.Measured.sem_of_trace trace ~stream:(Port.source "s") with
    | None -> Alcotest.fail "expected a model"
    | Some sem ->
      Alcotest.(check bool)
        (Format.asprintf "recovered %a" Event_model.Sem.pp sem)
        true
        (Event_model.Sem.equal sem
           (Event_model.Sem.make ~period:100 ~jitter:0 ~d_min:100 ()))
  end

(* ------------------------------------------------------------------ *)
(* exporters *)

let test_export_vcd () =
  let t = Trace.create () in
  List.iter (fun time -> Trace.record_arrival t ~stream:"s" ~time) [ 5; 12 ];
  Trace.record_arrival t ~stream:"other" ~time:5;
  let vcd = Des.Export.vcd t ~streams:[ "s"; "other" ] in
  Alcotest.(check bool) "has header" true
    (String.length vcd > 0
    && String.sub vcd 0 5 = "$date");
  let contains needle =
    let nl = String.length needle and hl = String.length vcd in
    let rec scan i = i + nl <= hl && (String.sub vcd i nl = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "declares wire s" true (contains "$var wire 1 ! s $end");
  Alcotest.(check bool) "declares wire other" true
    (contains "$var wire 1 \" other $end");
  Alcotest.(check bool) "pulse at 5" true (contains "#5\n1!");
  Alcotest.(check bool) "falls at 6" true (contains "#6\n0!");
  Alcotest.(check bool) "pulse at 12" true (contains "#12\n1!")

let test_export_csv () =
  let t = Trace.create () in
  Trace.record_arrival t ~stream:"x" ~time:3;
  Trace.record_arrival t ~stream:"y" ~time:1;
  Alcotest.(check string) "arrivals sorted by time"
    "stream,time\ny,1\nx,3\n"
    (Des.Export.arrivals_csv t ~streams:[ "x"; "y" ]);
  Trace.record_response t ~element:"e" ~activation:10 ~completion:17;
  Alcotest.(check string) "responses"
    "element,activation,completion,response\ne,10,17,7\n"
    (Des.Export.responses_csv t ~elements:[ "e" ])

let test_sim_and_activation () =
  (* joint activation fires at the later of the two inputs *)
  let spec =
    Spec.make
      ~sources:
        [
          "a", Stream.periodic ~name:"a" ~period:1000;
          "b", Stream.periodic ~name:"b" ~period:1000;
        ]
      ~resources:[ { Spec.res_name = "cpu"; scheduler = Spec.Spp; backend = Spec.Cpa } ]
      ~tasks:
        [
          Spec.task ~name:"join" ~resource:"cpu" ~cet:(Interval.point 5)
            ~priority:1
            ~activation:
              (Spec.And_of [ Spec.From_source "a"; Spec.From_source "b" ])
            ();
        ]
      ()
  in
  match
    Simulator.run
      ~generators:[ "a", Gen.of_times [ 10; 50 ]; "b", Gen.of_times [ 30 ] ]
      ~horizon:1000 spec
  with
  | Error e -> Alcotest.failf "simulation failed: %s" e
  | Ok trace ->
    (* one joint firing at 30 (a@10 + b@30); a@50 waits forever *)
    Alcotest.(check (list int)) "fires at the join" [ 30 ]
      (Trace.arrivals trace (Port.activation "join"));
    Alcotest.(check int) "one completion" 1 (Trace.response_count trace "join")

let test_segments_and_gantt () =
  (* the preemption scenario: lo runs 40-50 and 60-70, hi runs 50-60 *)
  let spec =
    Spec.make
      ~sources:
        [
          "fast", Stream.periodic ~name:"fast" ~period:1000;
          "slow", Stream.periodic ~name:"slow" ~period:1000;
        ]
      ~resources:[ { Spec.res_name = "cpu"; scheduler = Spec.Spp; backend = Spec.Cpa } ]
      ~tasks:
        [
          Spec.task ~name:"hi" ~resource:"cpu" ~cet:(Interval.point 10)
            ~priority:1 ~activation:(Spec.From_source "fast") ();
          Spec.task ~name:"lo" ~resource:"cpu" ~cet:(Interval.point 20)
            ~priority:2 ~activation:(Spec.From_source "slow") ();
        ]
      ()
  in
  match
    Simulator.run
      ~generators:[ "fast", Gen.of_times [ 50 ]; "slow", Gen.of_times [ 40 ] ]
      ~horizon:1000 spec
  with
  | Error e -> Alcotest.failf "simulation failed: %s" e
  | Ok trace ->
    Alcotest.(check (list (pair int int))) "lo segments" [ 40, 50; 60, 70 ]
      (Trace.segments trace "lo");
    Alcotest.(check (list (pair int int))) "hi segments" [ 50, 60 ]
      (Trace.segments trace "hi");
    let chart =
      Des.Export.gantt ~from_time:40 ~width:30 trace ~elements:[ "hi"; "lo" ]
    in
    (* hi occupies columns 10..19 of the window, lo 0..9 and 20..29 *)
    let lines = String.split_on_char '\n' chart in
    let row name =
      List.find (fun l -> String.length l > 2 && String.sub l 0 2 = name) lines
    in
    Alcotest.(check string) "hi row" "hi ..........##########.........."
      (row "hi");
    Alcotest.(check string) "lo row" "lo ##########..........##########"
      (row "lo")

let test_response_stats () =
  let t = Trace.create () in
  List.iter
    (fun (a, c) -> Trace.record_response t ~element:"e" ~activation:a ~completion:c)
    [ 0, 10; 100, 105; 200, 220; 300, 302 ];
  (match Trace.response_stats t "e" with
   | None -> Alcotest.fail "expected stats"
   | Some stats ->
     Alcotest.(check int) "count" 4 stats.Trace.count;
     Alcotest.(check int) "best" 2 stats.Trace.best;
     Alcotest.(check int) "worst" 20 stats.Trace.worst;
     Alcotest.(check (float 0.001)) "mean" 9.25 stats.Trace.mean;
     Alcotest.(check int) "p95" 20 stats.Trace.percentile_95;
     Alcotest.(check int) "p99" 20 stats.Trace.percentile_99);
  Alcotest.(check bool) "absent element" true
    (Trace.response_stats t "nope" = None)

let () =
  Alcotest.run "sim"
    [
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "fifo" `Quick test_heap_fifo_among_equals;
          Alcotest.test_case "sizes" `Quick test_heap_sizes;
          Alcotest.test_case "interleaved" `Quick test_heap_interleaved;
        ] );
      ( "generators",
        [
          Alcotest.test_case "periodic" `Quick test_gen_periodic;
          Alcotest.test_case "jitter contained" `Quick
            test_gen_periodic_jitter_contained;
          Alcotest.test_case "sporadic spacing" `Quick test_gen_sporadic_spacing;
          Alcotest.test_case "explicit times" `Quick test_gen_of_times;
        ] );
      ( "trace",
        [
          Alcotest.test_case "observations" `Quick test_trace_observations;
          Alcotest.test_case "responses" `Quick test_trace_responses;
        ] );
      ( "simulator",
        [
          Alcotest.test_case "preemptive cpu" `Quick test_sim_preemptive_cpu;
          Alcotest.test_case "preemption splits" `Quick
            test_sim_preemption_splits_execution;
          Alcotest.test_case "can bus order" `Quick test_sim_can_bus;
          Alcotest.test_case "pending latching" `Quick test_sim_pending_latching;
          Alcotest.test_case "missing generator" `Quick test_sim_missing_generator;
          Alcotest.test_case "edf ordering" `Quick test_sim_edf_order;
          Alcotest.test_case "edf preemption" `Quick test_sim_edf_preemption;
          Alcotest.test_case "tdma slots" `Quick test_sim_tdma_slots;
          Alcotest.test_case "round robin rotation" `Quick
            test_sim_round_robin_rotation;
          Alcotest.test_case "deterministic" `Quick test_sim_deterministic_with_seed;
          Alcotest.test_case "AND activation" `Quick test_sim_and_activation;
        ] );
      ( "failure injection",
        [ Alcotest.test_case "frame loss" `Quick test_frame_loss_semantics ] );
      ( "measured",
        [
          Alcotest.test_case "stream of trace" `Quick test_measured_stream;
          Alcotest.test_case "sem of trace" `Quick test_measured_sem;
        ] );
      ( "export",
        [
          Alcotest.test_case "vcd" `Quick test_export_vcd;
          Alcotest.test_case "csv" `Quick test_export_csv;
          Alcotest.test_case "segments and gantt" `Quick test_segments_and_gantt;
          Alcotest.test_case "response stats" `Quick test_response_stats;
        ] );
    ]
