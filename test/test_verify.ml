(* Tests for the self-verification layer: the invariant sanitizer must
   accept every well-formed stream, detect every seeded defect, and the
   differential oracles must pass on the shipped systems. *)

module Time = Timebase.Time
module Stream = Event_model.Stream
module Curve = Event_model.Curve
module Violation = Verify.Violation
module Sanitizer = Verify.Stream
module Oracle = Verify.Oracle
module Fuzz = Verify.Fuzz

(* ------------------------------------------------------------------ *)
(* sanitizer: clean on well-formed streams *)

let well_formed =
  [
    Stream.periodic ~name:"p" ~period:250;
    Stream.periodic_jitter ~name:"pj" ~period:450 ~jitter:90 ();
    Stream.periodic_jitter ~name:"pj0" ~period:100 ~jitter:3000 ~d_min:0 ();
    Stream.periodic_burst ~name:"pb" ~period:1000 ~burst:5 ~d_min:10;
    Stream.sporadic ~name:"sp" ~d_min:100;
  ]

let test_clean_on_well_formed () =
  List.iter
    (fun s ->
      let violations = Sanitizer.check s in
      Alcotest.(check int)
        (Stream.name s ^ ": no findings at all")
        0
        (List.length violations))
    well_formed

let test_clean_on_derived_streams () =
  (* streams produced by the analysis operators stay clean too *)
  let a = Stream.periodic ~name:"a" ~period:250
  and b = Stream.periodic_jitter ~name:"b" ~period:450 ~jitter:40 () in
  let derived =
    [
      Event_model.Combine.or_combine [ a; b ];
      Event_model.Shaper.enforce_min_distance ~d:30 b;
    ]
  in
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Stream.name s ^ ": clean")
        true
        (Sanitizer.is_clean (Sanitizer.check s)))
    derived

(* ------------------------------------------------------------------ *)
(* sanitizer: seeded defects are detected *)

let has_violation ~invariant violations =
  List.exists (fun (v : Violation.t) -> String.equal v.invariant invariant)
    violations

let test_detects_nonmonotone () =
  let bad =
    Stream.make ~name:"bad"
      ~delta_min:(fun n -> Time.of_int (Stdlib.max 0 (500 - (n * 10))))
      ~delta_plus:(fun n -> Time.of_int (n * 1000))
  in
  let violations = Sanitizer.check bad in
  Alcotest.(check bool) "monotone violation found" true
    (has_violation ~invariant:"monotone" violations);
  Alcotest.(check bool) "is an error" true
    (List.exists Violation.is_error violations);
  (* the witness names a concrete offending index *)
  Alcotest.(check bool) "witness present" true
    (List.exists
       (fun (v : Violation.t) -> v.witness <> None)
       (Violation.errors violations))

let test_detects_order_violation () =
  let bad =
    Stream.make ~name:"crossed"
      ~delta_min:(fun n -> Time.of_int ((n - 1) * 100))
      ~delta_plus:(fun n -> Time.of_int ((n - 1) * 90))
  in
  Alcotest.(check bool) "order violation found" true
    (has_violation ~invariant:"order" (Sanitizer.check bad))

let test_detects_zero_convention () =
  (* raw curves can break the n <= 1 convention (Stream.make clamps it) *)
  let curve = Curve.make (fun n -> Time.of_int ((n + 1) * 10)) in
  let violations = Sanitizer.check_curve ~subject:"raw" curve in
  Alcotest.(check bool) "zero violation found" true
    (has_violation ~invariant:"zero" violations)

let test_detects_additivity_gap_as_warning () =
  (* a superadditivity gap is conservative, so only a warning: delta_min
     grows like a step that violates delta(n+m-1) >= delta(n)+delta(m) *)
  let bad =
    Stream.make ~name:"gappy"
      ~delta_min:(fun n -> Time.of_int (if n <= 2 then (n - 1) * 100 else 100 + (n - 2)))
      ~delta_plus:(fun _ -> Time.Inf)
  in
  let violations = Sanitizer.check bad in
  Alcotest.(check bool) "superadditivity warning found" true
    (has_violation ~invariant:"delta_min.superadditive" violations);
  (* ...but it is not an error: the stream still counts as clean *)
  Alcotest.(check bool) "still clean" true (Sanitizer.is_clean violations)

let test_wrap_raises_on_bad_stream () =
  let bad =
    Stream.make ~name:"bad"
      ~delta_min:(fun n -> Time.of_int (Stdlib.max 0 (500 - (n * 10))))
      ~delta_plus:(fun n -> Time.of_int (n * 1000))
  in
  let wrapped = Sanitizer.wrap bad in
  Alcotest.(check string) "wrapper name" "bad!" (Stream.name wrapped);
  Alcotest.(check bool) "raises" true
    (match
       List.init 20 (fun n -> Stream.delta_min wrapped (n + 2))
     with
     | _ -> false
     | exception Failure _ -> true)

let test_wrap_transparent_on_good_stream () =
  let s = Stream.periodic_jitter ~name:"ok" ~period:250 ~jitter:40 () in
  let wrapped = Sanitizer.wrap s in
  for n = 0 to 20 do
    Alcotest.(check bool)
      (Printf.sprintf "delta_min %d" n)
      true
      (Time.equal (Stream.delta_min s n) (Stream.delta_min wrapped n));
    Alcotest.(check bool)
      (Printf.sprintf "delta_plus %d" n)
      true
      (Time.equal (Stream.delta_plus s n) (Stream.delta_plus wrapped n))
  done

let test_check_model_containment_warning () =
  (* an inner stream strictly faster than the outer violates packing
     containment (warning severity) *)
  let outer = Stream.periodic ~name:"outer" ~period:100 in
  let inner = Stream.periodic ~name:"inner" ~period:10 in
  let h =
    Hem.Model.make ~outer
      ~inners:
        [ { Hem.Model.label = "x"; kind = Hem.Model.Triggering; stream = inner } ]
      ~rule:Hem.Model.Packed
  in
  Alcotest.(check bool) "containment warning" true
    (has_violation ~invariant:"hierarchy.containment"
       (Sanitizer.check_model h))

(* ------------------------------------------------------------------ *)
(* oracles *)

let check_all_ok ~what checks =
  List.iter
    (fun (c : Oracle.check) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s (%s)" what c.Oracle.name c.Oracle.detail)
        true c.Oracle.ok)
    checks

let test_backend_agreement () =
  check_all_ok ~what:"backend" (Oracle.backend_agreement ())

let test_engine_agreement_paper () =
  let spec = Scenarios.Paper_system.spec () in
  List.iter
    (fun mode -> check_all_ok ~what:"engine" (Oracle.engine_agreement ~mode spec))
    [
      Cpa_system.Engine.Hierarchical;
      Cpa_system.Engine.Flat_stream;
      Cpa_system.Engine.Flat_sem;
    ]

let paper_generators () =
  [
    "S1", Des.Gen.periodic ~period:250 ();
    "S2", Des.Gen.periodic ~period:450 ();
    "S3", Des.Gen.periodic ~period:1000 ();
    "S4", Des.Gen.periodic ~period:400 ();
  ]

let test_verify_spec_paper () =
  let report =
    Oracle.verify_spec ~label:"paper" ~horizon:100_000
      ~generators:(paper_generators ())
      (Scenarios.Paper_system.spec ())
  in
  check_all_ok ~what:"paper" report.Oracle.checks;
  Alcotest.(check int) "no violations" 0
    (List.length report.Oracle.violations);
  Alcotest.(check bool) "passed" true (Oracle.passed report)

let test_cache_agreement () =
  let base () = Scenarios.Paper_system.spec () in
  let variants =
    Explore.Space.grid
      [ Explore.Space.int_axis "S1.period"
          (fun period -> Explore.Space.Source_period { source = "S1"; period })
          [ 230; 250 ] ]
    @ [ { Explore.Space.label = "dup"; edits = [] } ]
  in
  let c = Oracle.cache_agreement ~base variants in
  Alcotest.(check bool)
    (Printf.sprintf "%s (%s)" c.Oracle.name c.Oracle.detail)
    true c.Oracle.ok

let test_negative_control () =
  (* a system whose declared source breaks the curve ordering must not
     verify cleanly: the engine's selfcheck hook has to flag it *)
  let crossed =
    Stream.make ~name:"crossed"
      ~delta_min:(fun n -> Time.of_int ((n - 1) * 100))
      ~delta_plus:(fun n -> Time.of_int ((n - 1) * 90))
  in
  let spec =
    Cpa_system.Spec.make
      ~sources:[ "s", crossed ]
      ~resources:[ { Cpa_system.Spec.res_name = "cpu"; scheduler = Cpa_system.Spec.Spp; backend = Cpa_system.Spec.Cpa } ]
      ~tasks:
        [
          Cpa_system.Spec.task ~name:"t" ~resource:"cpu"
            ~cet:(Timebase.Interval.point 10) ~priority:1
            ~activation:(Cpa_system.Spec.From_source "s") ();
        ]
      ()
  in
  let report = Oracle.verify_spec ~label:"broken" spec in
  Alcotest.(check bool) "flagged" false (Oracle.passed report);
  Alcotest.(check bool) "order violation reported" true
    (has_violation ~invariant:"order" report.Oracle.violations);
  (* with the sanitizer off the defect goes unnoticed: the checks alone
     pass, which is exactly why the selfcheck hook exists *)
  let off = Oracle.verify_spec ~label:"broken" ~selfcheck:false spec in
  Alcotest.(check int) "no violations collected when off" 0
    (List.length off.Oracle.violations)

(* ------------------------------------------------------------------ *)
(* fuzz harness *)

let test_fuzz_deterministic () =
  let a = Fuzz.of_seed 1234 and b = Fuzz.of_seed 1234 in
  Alcotest.(check string) "same label" a.Fuzz.label b.Fuzz.label;
  Alcotest.(check string) "same digest"
    (Cpa_system.Spec.digest (a.Fuzz.build ()))
    (Cpa_system.Spec.digest (b.Fuzz.build ()));
  let c = Fuzz.of_seed 1235 in
  (* different seeds almost always differ; these two do *)
  Alcotest.(check bool) "different seed differs" true
    (not
       (String.equal
          (Cpa_system.Spec.digest (a.Fuzz.build ()))
          (Cpa_system.Spec.digest (c.Fuzz.build ()))))

let test_fuzz_generators_match_sources () =
  List.iter
    (fun case ->
      let spec = case.Fuzz.build () in
      let sources = List.map fst spec.Cpa_system.Spec.sources in
      let gens = List.map fst case.Fuzz.generators in
      Alcotest.(check (list string))
        (case.Fuzz.label ^ ": one generator per source")
        (List.sort compare sources) (List.sort compare gens))
    (Fuzz.cases ~seed:77 ~count:10)

let prop_fuzzed_systems_verify =
  QCheck.Test.make ~name:"fuzzed systems verify clean" ~count:4
    (QCheck.int_range 0 10_000) (fun seed ->
      let report =
        Oracle.verify_case ~horizon:40_000 (Fuzz.of_seed seed)
      in
      if not (Oracle.passed report) then
        QCheck.Test.fail_reportf "%a" Oracle.pp_report report
      else true)

let () =
  Alcotest.run "verify"
    [
      ( "sanitizer",
        [
          Alcotest.test_case "clean on well-formed" `Quick
            test_clean_on_well_formed;
          Alcotest.test_case "clean on derived" `Quick
            test_clean_on_derived_streams;
          Alcotest.test_case "detects non-monotone" `Quick
            test_detects_nonmonotone;
          Alcotest.test_case "detects order violation" `Quick
            test_detects_order_violation;
          Alcotest.test_case "detects zero convention" `Quick
            test_detects_zero_convention;
          Alcotest.test_case "additivity gap is a warning" `Quick
            test_detects_additivity_gap_as_warning;
          Alcotest.test_case "wrap raises on bad stream" `Quick
            test_wrap_raises_on_bad_stream;
          Alcotest.test_case "wrap transparent on good stream" `Quick
            test_wrap_transparent_on_good_stream;
          Alcotest.test_case "model containment warning" `Quick
            test_check_model_containment_warning;
        ] );
      ( "oracles",
        [
          Alcotest.test_case "backend agreement" `Quick test_backend_agreement;
          Alcotest.test_case "engine agreement (paper)" `Quick
            test_engine_agreement_paper;
          Alcotest.test_case "verify_spec (paper)" `Slow test_verify_spec_paper;
          Alcotest.test_case "cache agreement" `Slow test_cache_agreement;
          Alcotest.test_case "negative control" `Quick test_negative_control;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "deterministic" `Quick test_fuzz_deterministic;
          Alcotest.test_case "generators match sources" `Quick
            test_fuzz_generators_match_sources;
          QCheck_alcotest.to_alcotest ~long:true prop_fuzzed_systems_verify;
        ] );
    ]
