(* Tests for the framework extensions beyond the paper's scope: EDF local
   analysis, activation backlog bounds (buffer sizing), and sensitivity
   analysis — each validated against hand computations and, for backlog,
   against simulator observations. *)

module Time = Timebase.Time
module Interval = Timebase.Interval
module Stream = Event_model.Stream
module Rt_task = Scheduling.Rt_task
module Busy_window = Scheduling.Busy_window
module Edf = Scheduling.Edf
module Spp = Scheduling.Spp
module Spnp = Scheduling.Spnp
module Spec = Cpa_system.Spec
module Engine = Cpa_system.Engine
module Sensitivity = Cpa_system.Sensitivity

let task ~name ~cet ~priority ~period ?(jitter = 0) () =
  Rt_task.make ~name ~cet:(Interval.point cet) ~priority
    ~activation:
      (Stream.periodic_jitter ~name:(name ^ ".act") ~period ~jitter ())

(* ------------------------------------------------------------------ *)
(* EDF *)

let test_edf_demand_bound () =
  let tasks =
    [
      { Edf.task = task ~name:"a" ~cet:3 ~priority:1 ~period:20 (); deadline = 10 };
      { Edf.task = task ~name:"b" ~cet:5 ~priority:1 ~period:50 (); deadline = 40 };
    ]
  in
  Alcotest.(check (result int string)) "dt=9" (Ok 0) (Edf.demand_bound tasks 9);
  Alcotest.(check (result int string)) "dt=10" (Ok 3) (Edf.demand_bound tasks 10);
  (* dt=40: a jobs with deadline <= 40 arrive in [0, 30]: eta(31) = 2; b: 1 *)
  Alcotest.(check (result int string)) "dt=40" (Ok (6 + 5))
    (Edf.demand_bound tasks 40)

let test_edf_schedulable_set () =
  let tasks =
    [
      { Edf.task = task ~name:"a" ~cet:3 ~priority:1 ~period:10 (); deadline = 10 };
      { Edf.task = task ~name:"b" ~cet:4 ~priority:1 ~period:15 (); deadline = 15 };
      { Edf.task = task ~name:"c" ~cet:4 ~priority:1 ~period:30 (); deadline = 30 };
    ]
  in
  (* utilisation = 0.3 + 0.267 + 0.133 = 0.7, implicit deadlines: feasible *)
  Alcotest.(check bool) "schedulable" true (Edf.schedulable tasks = Ok ());
  List.iter
    (fun (rt, outcome) ->
      match outcome with
      | Busy_window.Bounded r ->
        Alcotest.(check bool)
          (rt.Rt_task.name ^ " bounded by deadline")
          true
          (Interval.hi r
          <= (List.find (fun t -> t.Edf.task == rt) tasks).Edf.deadline)
      | Busy_window.Unbounded _ -> Alcotest.fail "expected bounded")
    (Edf.analyse tasks)

let test_edf_constrained_deadline_fails () =
  (* same set but a deadline below c's own execution time breaks it *)
  let tasks =
    [
      { Edf.task = task ~name:"a" ~cet:3 ~priority:1 ~period:10 (); deadline = 10 };
      { Edf.task = task ~name:"b" ~cet:4 ~priority:1 ~period:15 (); deadline = 15 };
      { Edf.task = task ~name:"c" ~cet:4 ~priority:1 ~period:30 (); deadline = 3 };
    ]
  in
  Alcotest.(check bool) "infeasible" true
    (match Edf.schedulable tasks with Error _ -> true | Ok () -> false);
  List.iter
    (fun (_, outcome) ->
      match outcome with
      | Busy_window.Unbounded _ -> ()
      | Busy_window.Bounded _ -> Alcotest.fail "expected unbounded")
    (Edf.analyse tasks)

let test_edf_overload () =
  let tasks =
    [
      { Edf.task = task ~name:"a" ~cet:6 ~priority:1 ~period:10 (); deadline = 10 };
      { Edf.task = task ~name:"b" ~cet:6 ~priority:1 ~period:10 (); deadline = 10 };
    ]
  in
  Alcotest.(check bool) "busy period diverges" true
    (match Edf.busy_period tasks with Error _ -> true | Ok _ -> false)

let test_edf_engine_integration () =
  let spec =
    Spec.make
      ~sources:[ "s", Stream.periodic ~name:"s" ~period:100 ]
      ~resources:[ { Spec.res_name = "cpu"; scheduler = Spec.Edf; backend = Spec.Cpa } ]
      ~tasks:
        [
          Spec.task ~name:"t1" ~resource:"cpu" ~cet:(Interval.point 30)
            ~priority:1 ~deadline:80 ~activation:(Spec.From_source "s") ();
          Spec.task ~name:"t2" ~resource:"cpu" ~cet:(Interval.point 40)
            ~priority:2 ~deadline:100 ~activation:(Spec.From_source "s") ();
        ]
      ()
  in
  match Engine.analyse spec with
  | Error e -> Alcotest.failf "unexpected error: %s" (Guard.Error.to_string e)
  | Ok result ->
    Alcotest.(check bool) "converged" true result.Engine.converged;
    Alcotest.(check (option int)) "t1 bounded by deadline" (Some 80)
      (Option.map Interval.hi (Engine.response result "t1"))

let test_edf_engine_requires_deadline () =
  let spec =
    Spec.make
      ~sources:[ "s", Stream.periodic ~name:"s" ~period:100 ]
      ~resources:[ { Spec.res_name = "cpu"; scheduler = Spec.Edf; backend = Spec.Cpa } ]
      ~tasks:
        [
          Spec.task ~name:"t1" ~resource:"cpu" ~cet:(Interval.point 30)
            ~priority:1 ~activation:(Spec.From_source "s") ();
        ]
      ()
  in
  Alcotest.(check bool) "validation error" true
    (match Engine.analyse spec with Error _ -> true | Ok _ -> false)

(* ------------------------------------------------------------------ *)
(* backlog bounds *)

let test_spp_backlog_single () =
  (* an undisturbed task never queues more than one activation *)
  let t = task ~name:"solo" ~cet:3 ~priority:1 ~period:10 () in
  Alcotest.(check (result int string)) "single" (Ok 1)
    (Spp.backlog_bound ~task:t ~others:[] ())

let test_spp_backlog_bursty () =
  (* jitter releases a burst of 3 together; each takes 5 to clear *)
  let bursty = task ~name:"bursty" ~cet:5 ~priority:1 ~period:100 ~jitter:250 () in
  match Spp.backlog_bound ~task:bursty ~others:[] () with
  | Ok depth -> Alcotest.(check bool) "at least the burst" true (depth >= 3)
  | Error e -> Alcotest.failf "unexpected: %s" e

let test_spp_backlog_with_interference () =
  let hp = task ~name:"hp" ~cet:40 ~priority:1 ~period:100 () in
  let lp = task ~name:"lp" ~cet:30 ~priority:2 ~period:50 () in
  (* lp is blocked 40 out of every 100 and needs 60/100 itself: close to
     saturation, the busy period spans several activations *)
  match Spp.backlog_bound ~task:lp ~others:[ hp ] () with
  | Ok depth -> Alcotest.(check bool) "queues at least 2" true (depth >= 2)
  | Error e -> Alcotest.failf "unexpected: %s" e

let test_spnp_backlog_paper_frame () =
  (* F1: two simultaneous triggers queue behind each other *)
  let f1_act =
    Event_model.Combine.or_combine
      [
        Stream.periodic ~name:"S1" ~period:250;
        Stream.periodic ~name:"S2" ~period:450;
      ]
  in
  let f1 =
    Rt_task.make ~name:"F1" ~cet:(Interval.point 4) ~priority:1
      ~activation:f1_act
  in
  let f2 =
    Rt_task.make ~name:"F2" ~cet:(Interval.point 2) ~priority:2
      ~activation:(Stream.periodic ~name:"S4" ~period:400)
  in
  Alcotest.(check (result int string)) "F1 queue depth" (Ok 2)
    (Spnp.backlog_bound ~task:f1 ~others:[ f2 ] ())

let test_backlog_observed_within_bound () =
  (* paper system: analytic queue bounds dominate simulated depths *)
  let spec = Scenarios.Paper_system.spec () in
  let generators =
    [
      "S1", Des.Gen.periodic ~period:250 ();
      "S2", Des.Gen.periodic ~period:450 ();
      "S3", Des.Gen.periodic ~period:1000 ();
      "S4", Des.Gen.periodic ~period:400 ();
    ]
  in
  match Des.Simulator.run ~generators ~horizon:500_000 spec with
  | Error e -> Alcotest.failf "simulation failed: %s" e
  | Ok trace ->
    (* bound for F1 computed above = 2 *)
    (match Des.Trace.max_queue_depth trace "F1" with
     | Some depth -> Alcotest.(check bool) "F1 depth <= 2" true (depth <= 2)
     | None -> Alcotest.fail "no depth recorded");
    (* CPU tasks are activated once per signal and finish before the
       next: depth 1 *)
    List.iter
      (fun name ->
        match Des.Trace.max_queue_depth trace name with
        | Some depth ->
          Alcotest.(check bool) (name ^ " depth 1") true (depth = 1)
        | None -> Alcotest.fail "no depth recorded")
      Scenarios.Paper_system.cpu_tasks

(* ------------------------------------------------------------------ *)
(* periodic resource model (Shin & Lee) *)

module Periodic_resource = Scheduling.Periodic_resource

let test_supply_bound_function () =
  let r = Periodic_resource.make ~period:5 ~budget:3 in
  (* blackout of 2 (5 - 3) = 4, then 3 units per 5 *)
  List.iter
    (fun (t, expected) ->
      Alcotest.(check int)
        (Printf.sprintf "sbf %d" t)
        expected
        (Periodic_resource.supply r t))
    [ 0, 0; 4, 0; 5, 1; 6, 2; 7, 3; 9, 3; 10, 4; 12, 6; 14, 6; 17, 9 ];
  Alcotest.(check int) "utilization" 60 (Periodic_resource.utilization_percent r)

let test_supply_monotone_and_inverse () =
  let r = Periodic_resource.make ~period:7 ~budget:2 in
  for t = 1 to 100 do
    Alcotest.(check bool)
      (Printf.sprintf "monotone %d" t)
      true
      (Periodic_resource.supply r t >= Periodic_resource.supply r (t - 1))
  done;
  for demand = 0 to 30 do
    let t = Periodic_resource.supply_inverse r demand in
    Alcotest.(check bool)
      (Printf.sprintf "inverse reaches %d" demand)
      true
      (Periodic_resource.supply r t >= demand
      && (t = 0 || Periodic_resource.supply r (t - 1) < demand))
  done

let test_dedicated_resource_equals_plain_spp () =
  (* budget = period: the component behaves like a dedicated CPU *)
  let dedicated = Periodic_resource.make ~period:10 ~budget:10 in
  let t1 = task ~name:"t1" ~cet:1 ~priority:1 ~period:4 ()
  and t2 = task ~name:"t2" ~cet:2 ~priority:2 ~period:6 ()
  and t3 = task ~name:"t3" ~cet:3 ~priority:3 ~period:13 () in
  let all = [ t1; t2; t3 ] in
  List.iter
    (fun t ->
      let others = List.filter (fun x -> x != t) all in
      let plain = Spp.response_time ~task:t ~others () in
      let hierarchical =
        Periodic_resource.spp_response_time ~resource:dedicated ~task:t
          ~others ()
      in
      match plain, hierarchical with
      | Busy_window.Bounded a, Busy_window.Bounded b ->
        Alcotest.(check bool)
          (t.Rt_task.name ^ " identical")
          true (Interval.equal a b)
      | _ -> Alcotest.fail "expected bounded")
    all

let test_degraded_supply_stretches_response () =
  let half = Periodic_resource.make ~period:10 ~budget:5 in
  let t = task ~name:"t" ~cet:8 ~priority:1 ~period:100 () in
  match
    ( Scheduling.Spp.response_time ~task:t ~others:[] (),
      Periodic_resource.spp_response_time ~resource:half ~task:t ~others:[] ()
    )
  with
  | Busy_window.Bounded plain, Busy_window.Bounded degraded ->
    Alcotest.(check int) "plain" 8 (Interval.hi plain);
    (* blackout 2 (10 - 5) = 10, then 5 per 10: 5 by 15, 8 at 23 *)
    Alcotest.(check int) "degraded" 23 (Interval.hi degraded)
  | _ -> Alcotest.fail "expected bounded"

let test_periodic_resource_edf () =
  let tasks =
    [
      { Edf.task = task ~name:"a" ~cet:2 ~priority:1 ~period:20 (); deadline = 20 };
      { Edf.task = task ~name:"b" ~cet:3 ~priority:1 ~period:30 (); deadline = 30 };
    ]
  in
  (* utilisation 0.2: fits a 40% resource but not a 20% one with blackout *)
  Alcotest.(check bool) "generous budget fits" true
    (Periodic_resource.edf_schedulable
       ~resource:(Periodic_resource.make ~period:10 ~budget:4)
       tasks
    = Ok ());
  Alcotest.(check bool) "starved budget fails" true
    (match
       Periodic_resource.edf_schedulable
         ~resource:(Periodic_resource.make ~period:20 ~budget:2)
         tasks
     with
     | Error _ -> true
     | Ok () -> false)

let test_min_budget_interfaces () =
  let spp_tasks =
    [
      task ~name:"t1" ~cet:2 ~priority:1 ~period:20 ();
      task ~name:"t2" ~cet:3 ~priority:2 ~period:40 ();
    ]
  in
  (match Periodic_resource.min_budget_spp ~period:10 spp_tasks with
   | None -> Alcotest.fail "dedicated must work"
   | Some budget ->
     Alcotest.(check bool) "nontrivial" true (budget >= 1 && budget <= 10);
     (* the boundary is exact: one less budget must fail *)
     if budget > 1 then begin
       let resource = Periodic_resource.make ~period:10 ~budget:(budget - 1) in
       let bounded =
         List.for_all
           (fun t ->
             match
               Periodic_resource.spp_response_time ~resource ~task:t
                 ~others:(List.filter (fun x -> x != t) spp_tasks)
                 ()
             with
             | Busy_window.Bounded _ -> true
             | Busy_window.Unbounded _ -> false)
           spp_tasks
       in
       Alcotest.(check bool) "tight boundary" false bounded
     end);
  let edf_tasks =
    [
      { Edf.task = task ~name:"a" ~cet:2 ~priority:1 ~period:20 (); deadline = 20 };
    ]
  in
  match Periodic_resource.min_budget_edf ~period:10 edf_tasks with
  | None -> Alcotest.fail "dedicated must work"
  | Some budget -> Alcotest.(check bool) "found" true (budget >= 1 && budget <= 10)

(* ------------------------------------------------------------------ *)
(* sensitivity *)

let test_sensitivity_schedulable () =
  Alcotest.(check bool) "paper system schedulable" true
    (Sensitivity.schedulable (Scenarios.Paper_system.spec ()));
  Alcotest.(check bool) "overload detected" false
    (Sensitivity.schedulable
       (Spec.make
          ~sources:[ "s", Stream.periodic ~name:"s" ~period:10 ]
          ~resources:[ { Spec.res_name = "cpu"; scheduler = Spec.Spp; backend = Spec.Cpa } ]
          ~tasks:
            [
              Spec.task ~name:"t" ~resource:"cpu" ~cet:(Interval.point 20)
                ~priority:1 ~activation:(Spec.From_source "s") ();
            ]
          ()))

let test_scale_cet () =
  let spec = Scenarios.Paper_system.spec () in
  let scaled = Sensitivity.scale_cet spec ~task:"T3" ~percent:200 in
  let t3 =
    List.find (fun (k : Spec.task) -> k.task_name = "T3") scaled.Spec.tasks
  in
  Alcotest.(check int) "doubled" 80 (Interval.hi t3.Spec.cet);
  Alcotest.(check bool) "unknown task" true
    (match Sensitivity.scale_cet spec ~task:"nope" ~percent:150 with
     | _ -> false
     | exception Not_found -> true)

let test_max_cet_scale () =
  let spec = Scenarios.Paper_system.spec () in
  match Sensitivity.max_cet_scale spec ~task:"T3" with
  | None -> Alcotest.fail "system should start schedulable"
  | Some pct ->
    Alcotest.(check bool) "has headroom" true (pct > 100);
    (* the bound is tight: one step beyond must fail *)
    Alcotest.(check bool) "tight" false
      (Sensitivity.schedulable
         (Sensitivity.scale_cet spec ~task:"T3" ~percent:(pct + 1)))

let test_min_source_period () =
  let rebuild period = Scenarios.Paper_system.spec ~s3_period:period () in
  (* S3 is pending: it adds CPU load via T3 activations; find the fastest
     sustainable S3 *)
  match
    Sensitivity.min_source_period ~rebuild ~lo:1 ~hi:1000 ()
  with
  | None -> Alcotest.fail "1000 must be schedulable"
  | Some p ->
    Alcotest.(check bool) "found" true (p >= 1 && p <= 1000);
    Alcotest.(check bool) "boundary holds" true
      (Sensitivity.schedulable (rebuild p))

let () =
  Alcotest.run "extensions"
    [
      ( "edf",
        [
          Alcotest.test_case "demand bound" `Quick test_edf_demand_bound;
          Alcotest.test_case "schedulable set" `Quick test_edf_schedulable_set;
          Alcotest.test_case "constrained deadline" `Quick
            test_edf_constrained_deadline_fails;
          Alcotest.test_case "overload" `Quick test_edf_overload;
          Alcotest.test_case "engine integration" `Quick
            test_edf_engine_integration;
          Alcotest.test_case "deadline required" `Quick
            test_edf_engine_requires_deadline;
        ] );
      ( "backlog",
        [
          Alcotest.test_case "single task" `Quick test_spp_backlog_single;
          Alcotest.test_case "bursty task" `Quick test_spp_backlog_bursty;
          Alcotest.test_case "with interference" `Quick
            test_spp_backlog_with_interference;
          Alcotest.test_case "paper frame queue" `Quick
            test_spnp_backlog_paper_frame;
          Alcotest.test_case "observed within bound" `Quick
            test_backlog_observed_within_bound;
        ] );
      ( "periodic resource",
        [
          Alcotest.test_case "supply bound function" `Quick
            test_supply_bound_function;
          Alcotest.test_case "supply inverse" `Quick
            test_supply_monotone_and_inverse;
          Alcotest.test_case "dedicated = plain SPP" `Quick
            test_dedicated_resource_equals_plain_spp;
          Alcotest.test_case "degraded supply" `Quick
            test_degraded_supply_stretches_response;
          Alcotest.test_case "EDF on supply" `Quick test_periodic_resource_edf;
          Alcotest.test_case "interface synthesis" `Quick
            test_min_budget_interfaces;
        ] );
      ( "sensitivity",
        [
          Alcotest.test_case "schedulable" `Quick test_sensitivity_schedulable;
          Alcotest.test_case "scale cet" `Quick test_scale_cet;
          Alcotest.test_case "max cet scale" `Quick test_max_cet_scale;
          Alcotest.test_case "min source period" `Quick test_min_source_period;
        ] );
    ]
