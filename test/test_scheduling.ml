(* Tests for the local busy-window analyses: SPP, SPNP (CAN), TDMA and
   round-robin, against hand-computed and textbook results. *)

module Time = Timebase.Time
module Interval = Timebase.Interval
module Stream = Event_model.Stream
module Rt_task = Scheduling.Rt_task
module Busy_window = Scheduling.Busy_window
module Spp = Scheduling.Spp
module Spnp = Scheduling.Spnp
module Tdma = Scheduling.Tdma
module Round_robin = Scheduling.Round_robin

let outcome = Alcotest.testable Busy_window.pp_outcome (fun a b ->
  match a, b with
  | Busy_window.Bounded x, Busy_window.Bounded y -> Interval.equal x y
  | Busy_window.Unbounded _, Busy_window.Unbounded _ -> true
  | Busy_window.Bounded _, Busy_window.Unbounded _
  | Busy_window.Unbounded _, Busy_window.Bounded _ -> false)

let task ~name ~cet ?(lo = cet) ~priority ~period ?(jitter = 0) () =
  Rt_task.make ~name ~cet:(Interval.make ~lo ~hi:cet) ~priority
    ~activation:
      (Stream.periodic_jitter ~name:(name ^ ".act") ~period ~jitter ())

(* ------------------------------------------------------------------ *)
(* busy-window machinery *)

let test_fixpoint () =
  Alcotest.(check (option int)) "constant" (Some 5)
    (Busy_window.fixpoint ~limit:100 ~init:5 (fun _ -> 5));
  Alcotest.(check (option int)) "staircase" (Some 24)
    (Busy_window.fixpoint ~limit:100 ~init:1 (fun w -> Stdlib.min 24 (w * 2)));
  Alcotest.(check (option int)) "diverges" None
    (Busy_window.fixpoint ~limit:100 ~init:1 (fun w -> w + 1));
  Alcotest.(check bool) "non-monotone rejected" true
    (match Busy_window.fixpoint ~limit:100 ~init:10 (fun w -> w - 1) with
     | _ -> false
     | exception Invalid_argument _ -> true)

let test_priority_filters () =
  let t1 = task ~name:"a" ~cet:1 ~priority:1 ~period:10 () in
  let t2 = task ~name:"b" ~cet:1 ~priority:2 ~period:10 () in
  let t3 = task ~name:"c" ~cet:1 ~priority:2 ~period:10 () in
  let all = [ t1; t2; t3 ] in
  Alcotest.(check (list string)) "hp of t2 (equal counts)" [ "a"; "c" ]
    (List.map (fun (t : Rt_task.t) -> t.name)
       (Busy_window.higher_priority ~than:t2 all));
  Alcotest.(check (list string)) "lp of t1" [ "b"; "c" ]
    (List.map (fun (t : Rt_task.t) -> t.name)
       (Busy_window.lower_priority ~than:t1 all))

(* ------------------------------------------------------------------ *)
(* SPP *)

let test_spp_single_task () =
  let t = task ~name:"solo" ~cet:3 ~lo:2 ~priority:1 ~period:10 () in
  Alcotest.check outcome "R = C" (Busy_window.Bounded (Interval.make ~lo:2 ~hi:3))
    (Spp.response_time ~task:t ~others:[] ())

let test_spp_textbook () =
  (* classic rate-monotonic example: C = (1, 2, 3), T = (4, 6, 13);
     R1 = 1, R2 = 3, R3 = 3 + 2*1 + ... = textbook busy-window values *)
  let t1 = task ~name:"t1" ~cet:1 ~priority:1 ~period:4 ()
  and t2 = task ~name:"t2" ~cet:2 ~priority:2 ~period:6 ()
  and t3 = task ~name:"t3" ~cet:3 ~priority:3 ~period:13 () in
  let all = [ t1; t2; t3 ] in
  let response t =
    Spp.response_time ~task:t ~others:(List.filter (fun x -> x != t) all) ()
  in
  Alcotest.check outcome "R1" (Busy_window.Bounded (Interval.point 1)) (response t1);
  Alcotest.check outcome "R2" (Busy_window.Bounded (Interval.make ~lo:2 ~hi:3))
    (response t2);
  (* w = 3 + ceil(w/4)*1 + ceil(w/6)*2 -> w = 10 *)
  Alcotest.check outcome "R3" (Busy_window.Bounded (Interval.make ~lo:3 ~hi:10))
    (response t3)

let test_spp_arbitrary_deadline () =
  (* busy period spans several activations: C=26, T=40 for low prio with a
     C=10, T=25 interferer; utilisation 0.65 + 0.4 > 1?  No: use classic
     Lehoczky example: hp C=26 T=70, lp C=36 T=100:
     q=1: w = 36 + 26 = 62, resp 62; arrival 2 at 100 > 62: done. *)
  let hp = task ~name:"hp" ~cet:26 ~priority:1 ~period:70 ()
  and lp = task ~name:"lp" ~cet:36 ~priority:2 ~period:100 () in
  (* q=1: w = 36 + ceil(62/70)*26 ... w = 36+26 = 62; 62 <= 100 -> single *)
  Alcotest.check outcome "R lp" (Busy_window.Bounded (Interval.make ~lo:36 ~hi:62))
    (Spp.response_time ~task:lp ~others:[ hp ] ())

let test_spp_multiple_activations_in_busy_period () =
  (* utilization close to 1 with a long busy period: hp C=2 T=4 (u=.5),
     lp C=3 T=7 (u~.43): level-2 busy period spans multiple jobs of lp *)
  let hp = task ~name:"hp" ~cet:2 ~priority:1 ~period:4 ()
  and lp = task ~name:"lp" ~cet:3 ~priority:2 ~period:7 () in
  (* q=1: w = 3 + eta(w)*2: w=3+2=5, eta+(5)=2 -> 7, eta+(7)=2 -> 7; resp 7
     next arrival delta_min 2 = 7; finish 7 > 7? no -> stop. R = 7 *)
  Alcotest.check outcome "R lp" (Busy_window.Bounded (Interval.make ~lo:3 ~hi:7))
    (Spp.response_time ~task:lp ~others:[ hp ] ())

let test_spp_jitter_burst_interference () =
  (* jitter makes two hp activations land almost together:
     delta_min_hp 2 = max(1, 100-150) = 1, delta_min_hp 3 = max(2, 50) = 50,
     so w = 10 + 2*5 = 20 with eta_hp(20) = 2: R = 20 *)
  let hp = task ~name:"hp" ~cet:5 ~priority:1 ~period:100 ~jitter:150 ()
  and lp = task ~name:"lp" ~cet:10 ~priority:2 ~period:1000 () in
  Alcotest.check outcome "R lp"
    (Busy_window.Bounded (Interval.make ~lo:10 ~hi:20))
    (Spp.response_time ~task:lp ~others:[ hp ] ())

let test_spp_blocking_term () =
  (* a shared-resource blocking term delays every busy window *)
  let t = task ~name:"t" ~cet:10 ~priority:1 ~period:100 () in
  Alcotest.check outcome "without blocking"
    (Busy_window.Bounded (Interval.point 10))
    (Spp.response_time ~task:t ~others:[] ());
  Alcotest.check outcome "with blocking"
    (Busy_window.Bounded (Interval.make ~lo:10 ~hi:17))
    (Spp.response_time ~blocking:7 ~task:t ~others:[] ());
  Alcotest.(check bool) "negative rejected" true
    (match Spp.response_time ~blocking:(-1) ~task:t ~others:[] () with
     | _ -> false
     | exception Guard.Error.Error (Guard.Error.Invalid_spec _) -> true)

let test_spp_overload () =
  let t1 = task ~name:"t1" ~cet:5 ~priority:1 ~period:8 ()
  and t2 = task ~name:"t2" ~cet:5 ~priority:2 ~period:8 () in
  Alcotest.check outcome "unbounded"
    (Busy_window.Unbounded "overload")
    (Spp.response_time ~task:t2 ~others:[ t1 ] ())

let test_spp_analyse_all () =
  let t1 = task ~name:"t1" ~cet:1 ~priority:1 ~period:4 ()
  and t2 = task ~name:"t2" ~cet:2 ~priority:2 ~period:6 () in
  let results = Spp.analyse [ t1; t2 ] in
  Alcotest.(check int) "two results" 2 (List.length results);
  Alcotest.(check (list string)) "order preserved" [ "t1"; "t2" ]
    (List.map (fun ((t : Rt_task.t), _) -> t.name) results)

(* ------------------------------------------------------------------ *)
(* SPNP *)

let test_spnp_paper_bus () =
  (* the CAN bus of the paper: F1 [4:4] high prio activated by OR(S1,S2)
     with two simultaneous triggers possible, F2 [2:2] low prio *)
  let f1_act =
    Event_model.Combine.or_combine
      [
        Stream.periodic ~name:"S1" ~period:250;
        Stream.periodic ~name:"S2" ~period:450;
      ]
  in
  let f1 =
    Rt_task.make ~name:"F1" ~cet:(Interval.point 4) ~priority:1
      ~activation:f1_act
  in
  let f2 =
    Rt_task.make ~name:"F2" ~cet:(Interval.point 2) ~priority:2
      ~activation:(Stream.periodic ~name:"S4" ~period:400)
  in
  (* q=1: blocked by F2 (2) then 4: finish 6; second simultaneous trigger
     queues behind: finish 10; hand-computed R+ = 10 *)
  Alcotest.check outcome "R F1" (Busy_window.Bounded (Interval.make ~lo:4 ~hi:10))
    (Spnp.response_time ~task:f1 ~others:[ f2 ] ());
  (* F2: blocked by nothing lower, interference from both F1 triggers:
     start = eta_F1(w+1)*4: w=8 -> finish 10 *)
  Alcotest.check outcome "R F2" (Busy_window.Bounded (Interval.make ~lo:2 ~hi:10))
    (Spnp.response_time ~task:f2 ~others:[ f1 ] ())

let test_spnp_blocking_only_from_lower () =
  let hp = task ~name:"hp" ~cet:4 ~priority:1 ~period:100 ()
  and mid = task ~name:"mid" ~cet:6 ~priority:2 ~period:100 ()
  and lp = task ~name:"lp" ~cet:8 ~priority:3 ~period:100 () in
  (* hp: blocked by max(6,8) = 8, then transmits: R = 8 + 4 = 12 *)
  Alcotest.check outcome "R hp"
    (Busy_window.Bounded (Interval.make ~lo:4 ~hi:12))
    (Spnp.response_time ~task:hp ~others:[ mid; lp ] ());
  (* lp: no blocking, interference hp+mid: start = 4+6 = 10, R = 18 *)
  Alcotest.check outcome "R lp"
    (Busy_window.Bounded (Interval.make ~lo:8 ~hi:18))
    (Spnp.response_time ~task:lp ~others:[ hp; mid ] ())

let test_spnp_non_preemptive_once_started () =
  (* an hp arrival during transmission does not preempt: the lp response
     never includes hp work that arrives after the start *)
  let hp = task ~name:"hp" ~cet:3 ~priority:1 ~period:10 ()
  and lp = task ~name:"lp" ~cet:8 ~priority:2 ~period:1000 () in
  (* lp start: w = eta_hp(w+1)*3; w=3: eta(4)=1 -> 3; w=3: start 3 at which
     point hp arrivals at 0 done; finish 11; hp at 10 arrives mid-flight *)
  Alcotest.check outcome "R lp"
    (Busy_window.Bounded (Interval.make ~lo:8 ~hi:11))
    (Spnp.response_time ~task:lp ~others:[ hp ] ())

(* ------------------------------------------------------------------ *)
(* TDMA *)

let test_tdma_service () =
  (* slot 3 in a cycle of 10: worst window starts just after the slot *)
  Alcotest.(check int) "w=7" 0 (Tdma.service ~slot:3 ~cycle:10 7);
  Alcotest.(check int) "w=8" 1 (Tdma.service ~slot:3 ~cycle:10 8);
  Alcotest.(check int) "w=10" 3 (Tdma.service ~slot:3 ~cycle:10 10);
  Alcotest.(check int) "w=17" 3 (Tdma.service ~slot:3 ~cycle:10 17);
  Alcotest.(check int) "w=20" 6 (Tdma.service ~slot:3 ~cycle:10 20)

let test_tdma_response () =
  let t1 = task ~name:"t1" ~cet:2 ~priority:1 ~period:50 ()
  and t2 = task ~name:"t2" ~cet:4 ~priority:1 ~period:50 () in
  let slots = [ { Tdma.task = t1; length = 3 }; { Tdma.task = t2; length = 5 } ] in
  (* t1: cycle 8, slot 3; worst: activation just after slot closes: wait 5,
     then 2 units of service: finish at w with service w >= 2: w = 7 *)
  Alcotest.check outcome "R t1" (Busy_window.Bounded (Interval.make ~lo:2 ~hi:7))
    (Tdma.response_time ~slots ~task:t1 ());
  (* t2: slot 5, cycle 8; demand 4: w - 3 >= 4 -> 7 *)
  Alcotest.check outcome "R t2" (Busy_window.Bounded (Interval.make ~lo:4 ~hi:7))
    (Tdma.response_time ~slots ~task:t2 ())

let test_tdma_demand_spanning_cycles () =
  let t1 = task ~name:"t1" ~cet:7 ~priority:1 ~period:100 ()
  and t2 = task ~name:"t2" ~cet:1 ~priority:1 ~period:100 () in
  let slots = [ { Tdma.task = t1; length = 3 }; { Tdma.task = t2; length = 7 } ] in
  (* t1 needs 7 units at 3/cycle-of-10: worst start offset 7;
     service(w) >= 7 first at w = 7 + 10 + 10 + 1 = ... compute:
     effective = w - 7; service = (e/10)*3 + min 3 (e mod 10);
     w=27: e=20 -> 6; w=28: e=21 -> 6+1=7 -> finish 28 *)
  Alcotest.check outcome "R t1"
    (Busy_window.Bounded (Interval.make ~lo:21 ~hi:28))
    (Tdma.response_time ~slots ~task:t1 ());
  Alcotest.(check bool) "unknown task" true
    (match
       Tdma.response_time ~slots:[ { Tdma.task = t1; length = 3 } ] ~task:t2 ()
     with
     | _ -> false
     | exception Guard.Error.Error (Guard.Error.Invalid_spec _) -> true)

(* ------------------------------------------------------------------ *)
(* Round robin *)

let test_round_robin_isolated () =
  let t1 = task ~name:"t1" ~cet:4 ~priority:1 ~period:100 ()
  and t2 = task ~name:"t2" ~cet:6 ~priority:1 ~period:100 () in
  let shares =
    [ { Round_robin.task = t1; quantum = 2 };
      { Round_robin.task = t2; quantum = 3 } ]
  in
  (* t1: demand 4 -> 2 rounds; interference from t2 bounded by
     min(eta*6, 2*3) = 6: w = 4 + 6 = 10; eta_t2(10) = 1 -> min(6,6)=6 ok *)
  Alcotest.check outcome "R t1"
    (Busy_window.Bounded (Interval.make ~lo:4 ~hi:10))
    (Round_robin.response_time ~shares ~task:t1 ());
  (* t2: demand 6 -> 2 rounds; interference min(4, 2*2) = 4 -> 10 *)
  Alcotest.check outcome "R t2"
    (Busy_window.Bounded (Interval.make ~lo:6 ~hi:10))
    (Round_robin.response_time ~shares ~task:t2 ())

let test_round_robin_quantum_bound_binds () =
  (* a flood of hp-side work is capped by the quantum bound *)
  let flood = task ~name:"flood" ~cet:2 ~priority:1 ~period:3 ()
  and slow = task ~name:"slow" ~cet:4 ~priority:1 ~period:1000 () in
  let shares =
    [ { Round_robin.task = flood; quantum = 2 };
      { Round_robin.task = slow; quantum = 4 } ]
  in
  (* slow: 1 round of 4; flood capped at 1*2 = 2: w = 4 + 2 = 6 even though
     eta_flood(6)*2 = 4 *)
  Alcotest.check outcome "R slow"
    (Busy_window.Bounded (Interval.make ~lo:4 ~hi:6))
    (Round_robin.response_time ~shares ~task:slow ())

let test_round_robin_unknown_task () =
  let t1 = task ~name:"t1" ~cet:4 ~priority:1 ~period:100 () in
  let t2 = task ~name:"t2" ~cet:4 ~priority:1 ~period:100 () in
  Alcotest.(check bool) "raises" true
    (match
       Round_robin.response_time
         ~shares:[ { Round_robin.task = t1; quantum = 1 } ]
         ~task:t2 ()
     with
     | _ -> false
     | exception Guard.Error.Error (Guard.Error.Invalid_spec _) -> true)

(* ------------------------------------------------------------------ *)
(* properties *)

let prop_spp_hp_insensitive_to_lp =
  QCheck.Test.make ~name:"SPP: lower priorities never delay" ~count:40
    (QCheck.pair (QCheck.int_range 1 20) (QCheck.int_range 1 20))
    (fun (c_hp, c_lp) ->
      let c_hp = Stdlib.max 1 c_hp and c_lp = Stdlib.max 1 c_lp in
      let hp = task ~name:"hp" ~cet:c_hp ~priority:1 ~period:100 ()
      and lp = task ~name:"lp" ~cet:c_lp ~priority:2 ~period:100 () in
      let alone = Spp.response_time ~task:hp ~others:[] ()
      and with_lp = Spp.response_time ~task:hp ~others:[ lp ] () in
      match alone, with_lp with
      | Busy_window.Bounded a, Busy_window.Bounded b -> Interval.equal a b
      | Busy_window.Bounded _, Busy_window.Unbounded _
      | Busy_window.Unbounded _, _ -> false)

let prop_spnp_blocking_monotone =
  QCheck.Test.make ~name:"SPNP: response grows with blocker size" ~count:40
    (QCheck.pair (QCheck.int_range 1 10) (QCheck.int_range 1 30))
    (fun (c, b) ->
      let c = Stdlib.max 1 c and b = Stdlib.max 1 b in
      let hp = task ~name:"hp" ~cet:c ~priority:1 ~period:100 () in
      let blocker size = task ~name:"lp" ~cet:size ~priority:2 ~period:100 () in
      let r size =
        match Spnp.response_time ~task:hp ~others:[ blocker size ] () with
        | Busy_window.Bounded i -> Interval.hi i
        | Busy_window.Unbounded _ -> max_int
      in
      r b <= r (b + 5))

let prop_tdma_longer_slot_helps =
  QCheck.Test.make ~name:"TDMA: larger own slot never hurts" ~count:40
    (QCheck.pair (QCheck.int_range 1 10) (QCheck.int_range 1 10))
    (fun (c, s) ->
      let c = Stdlib.max 1 c and s = Stdlib.max 1 s in
      let t = task ~name:"t" ~cet:c ~priority:1 ~period:1000 () in
      let other = task ~name:"o" ~cet:1 ~priority:1 ~period:1000 () in
      let r slot =
        let slots =
          [ { Tdma.task = t; length = slot }; { Tdma.task = other; length = 4 } ]
        in
        match Tdma.response_time ~slots ~task:t () with
        | Busy_window.Bounded i -> Interval.hi i
        | Busy_window.Unbounded _ -> max_int
      in
      r (s + 1) <= r s)

let () =
  Alcotest.run "scheduling"
    [
      ( "busy window",
        [
          Alcotest.test_case "fixpoint" `Quick test_fixpoint;
          Alcotest.test_case "priority filters" `Quick test_priority_filters;
        ] );
      ( "spp",
        [
          Alcotest.test_case "single task" `Quick test_spp_single_task;
          Alcotest.test_case "textbook RM" `Quick test_spp_textbook;
          Alcotest.test_case "arbitrary deadline" `Quick
            test_spp_arbitrary_deadline;
          Alcotest.test_case "long busy period" `Quick
            test_spp_multiple_activations_in_busy_period;
          Alcotest.test_case "jitter interference" `Quick
            test_spp_jitter_burst_interference;
          Alcotest.test_case "blocking term" `Quick test_spp_blocking_term;
          Alcotest.test_case "overload" `Quick test_spp_overload;
          Alcotest.test_case "analyse all" `Quick test_spp_analyse_all;
        ] );
      ( "spnp",
        [
          Alcotest.test_case "paper bus" `Quick test_spnp_paper_bus;
          Alcotest.test_case "blocking from lower" `Quick
            test_spnp_blocking_only_from_lower;
          Alcotest.test_case "non-preemptive start" `Quick
            test_spnp_non_preemptive_once_started;
        ] );
      ( "tdma",
        [
          Alcotest.test_case "service bound" `Quick test_tdma_service;
          Alcotest.test_case "response" `Quick test_tdma_response;
          Alcotest.test_case "multi-cycle demand" `Quick
            test_tdma_demand_spanning_cycles;
        ] );
      ( "round robin",
        [
          Alcotest.test_case "isolated" `Quick test_round_robin_isolated;
          Alcotest.test_case "quantum bound" `Quick
            test_round_robin_quantum_bound_binds;
          Alcotest.test_case "unknown task" `Quick test_round_robin_unknown_task;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_spp_hp_insensitive_to_lp;
            prop_spnp_blocking_monotone;
            prop_tdma_longer_slot_helps;
          ] );
    ]
