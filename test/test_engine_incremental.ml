(* The incremental fixed-point engine must be a pure optimisation:
   against the non-incremental engine (every iteration from scratch) the
   outcomes are bit-identical, convergence flags agree and the iteration
   trajectory — hence the count — is unchanged, across all three analysis
   modes and every bundled scenario. *)

module Interval = Timebase.Interval
module Busy_window = Scheduling.Busy_window
module Engine = Cpa_system.Engine

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "analysis failed: %s" (Guard.Error.to_string e)

let outcome =
  Alcotest.testable Busy_window.pp_outcome (fun a b ->
    match a, b with
    | Busy_window.Bounded x, Busy_window.Bounded y -> Interval.equal x y
    | Busy_window.Unbounded x, Busy_window.Unbounded y -> String.equal x y
    | _ -> false)

let element_outcome =
  Alcotest.testable
    (fun ppf (o : Engine.element_outcome) ->
      Format.fprintf ppf "%s@%s: %a" o.element o.resource
        Busy_window.pp_outcome o.outcome)
    (fun (a : Engine.element_outcome) b ->
      String.equal a.element b.element
      && String.equal a.resource b.resource
      && Alcotest.equal outcome a.outcome b.outcome)

let modes =
  [
    "hierarchical", Engine.Hierarchical;
    "flat_stream", Engine.Flat_stream;
    "flat_sem", Engine.Flat_sem;
  ]

let scenarios =
  [
    "paper", Scenarios.Paper_system.spec ();
    "gateway", Scenarios.Gateway.spec ();
    "avionics", Scenarios.Avionics.spec ();
    "fan_in_6", Scenarios.Synthetic.fan_in ~signals:6 ();
    "chain_8", Scenarios.Synthetic.chain ~stages:8 ();
  ]

let check_equivalent mode_name mode scenario_name spec =
  let inc = ok (Engine.analyse ~mode ~incremental:true spec) in
  let full = ok (Engine.analyse ~mode ~incremental:false spec) in
  let label what =
    Printf.sprintf "%s/%s: %s" scenario_name mode_name what
  in
  Alcotest.(check (list element_outcome))
    (label "outcomes") full.Engine.outcomes inc.Engine.outcomes;
  Alcotest.(check bool)
    (label "converged") full.Engine.converged inc.Engine.converged;
  Alcotest.(check int)
    (label "iterations") full.Engine.iterations inc.Engine.iterations;
  inc

let test_modes_equivalent () =
  List.iter
    (fun (scenario_name, spec) ->
      List.iter
        (fun (mode_name, mode) ->
          ignore (check_equivalent mode_name mode scenario_name spec))
        modes)
    scenarios

let test_reuse_happens () =
  (* The paper system needs several global iterations; with dependency
     tracking, later iterations must skip untouched resources and keep
     most derived streams. *)
  let inc =
    check_equivalent "hierarchical" Engine.Hierarchical "paper"
      (Scenarios.Paper_system.spec ())
  in
  Alcotest.(check bool) "iterates more than once" true (inc.iterations > 1);
  Alcotest.(check bool)
    "some local analyses were reused" true
    (inc.Engine.stats.resources_reused > 0);
  let total = inc.stats.resources_analysed + inc.stats.resources_reused in
  let resources = List.length inc.spec.Cpa_system.Spec.resources in
  Alcotest.(check int)
    "every resource visited every iteration" (resources * inc.iterations)
    total

let test_non_incremental_never_reuses () =
  let full =
    ok
      (Engine.analyse ~incremental:false
         (Scenarios.Paper_system.spec ()))
  in
  Alcotest.(check int) "no reuse" 0 full.Engine.stats.resources_reused;
  Alcotest.(check int) "no invalidation bookkeeping" 0
    full.stats.streams_invalidated

let () =
  Alcotest.run "engine_incremental"
    [
      ( "equivalence",
        [
          Alcotest.test_case "all modes, all scenarios" `Quick
            test_modes_equivalent;
        ] );
      ( "incrementality",
        [
          Alcotest.test_case "reuses unchanged resources" `Quick
            test_reuse_happens;
          Alcotest.test_case "non-incremental baseline" `Quick
            test_non_incremental_never_reuses;
        ] );
    ]
