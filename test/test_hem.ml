(* Tests for the core contribution: hierarchical event models.

   Covers the model container (Defs. 3-5), the pack hierarchical stream
   constructor Omega_pa (Def. 8 with eqs. 5-8), the inner update function
   B_{Theta_tau, C_pa} (Def. 9) and the deconstructor Psi_pa (Def. 10). *)

module Time = Timebase.Time
module Count = Timebase.Count
module Interval = Timebase.Interval
module Stream = Event_model.Stream
module Combine = Event_model.Combine
module Model = Hem.Model
module Pack = Hem.Pack
module Inner_update = Hem.Inner_update
module Deconstruct = Hem.Deconstruct

let time = Alcotest.testable Time.pp Time.equal

let s1 = Stream.periodic ~name:"S1" ~period:250

let s2 = Stream.periodic ~name:"S2" ~period:450

let s3 = Stream.periodic ~name:"S3" ~period:1000

let paper_pack () =
  Pack.pack ~name:"F1"
    [
      Pack.input "sig1" s1;
      Pack.input "sig2" s2;
      Pack.input ~kind:Model.Pending "sig3" s3;
    ]

(* ------------------------------------------------------------------ *)
(* Model *)

let test_model_structure () =
  let h = paper_pack () in
  Alcotest.(check int) "arity" 3 (Model.arity h);
  Alcotest.(check string) "outer name" "F1" (Stream.name (Model.outer h));
  Alcotest.(check bool) "rule" true (Model.rule h = Model.Packed);
  let i = Model.find_inner h "sig3" in
  Alcotest.(check bool) "kind" true (i.Model.kind = Model.Pending);
  Alcotest.(check bool) "missing" true
    (match Model.find_inner h "nope" with
     | _ -> false
     | exception Not_found -> true)

let test_model_validation () =
  let inner label =
    { Model.label; kind = Model.Triggering; stream = s1 }
  in
  Alcotest.(check bool) "empty" true
    (match Model.make ~outer:s1 ~inners:[] ~rule:Model.Packed with
     | _ -> false
     | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "duplicate labels" true
    (match
       Model.make ~outer:s1 ~inners:[ inner "a"; inner "a" ] ~rule:Model.Packed
     with
     | _ -> false
     | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Pack (Def. 8) *)

let test_pack_outer_is_or_of_triggering () =
  let h = paper_pack () in
  let reference = Combine.or_combine [ s1; s2 ] in
  for n = 0 to 10 do
    Alcotest.check time
      (Printf.sprintf "delta_min %d" n)
      (Stream.delta_min reference n)
      (Stream.delta_min (Model.outer h) n);
    Alcotest.check time
      (Printf.sprintf "delta_plus %d" n)
      (Stream.delta_plus reference n)
      (Stream.delta_plus (Model.outer h) n)
  done

let test_pack_triggering_inner_unchanged () =
  (* eqs. (5)-(6): triggering signals keep their timing *)
  let h = paper_pack () in
  let inner = (Model.find_inner h "sig1").Model.stream in
  for n = 2 to 8 do
    Alcotest.check time
      (Printf.sprintf "delta_min %d" n)
      (Stream.delta_min s1 n) (Stream.delta_min inner n);
    Alcotest.check time
      (Printf.sprintf "delta_plus %d" n)
      (Stream.delta_plus s1 n) (Stream.delta_plus inner n)
  done

let test_pack_pending_inner () =
  (* eq. (7): delta_min' n = max (delta_min n - delta_plus_out 2)
     (delta_min_out n); eq. (8): delta_plus' = inf.
     For the paper's sources, delta_plus_out 2 = 250. *)
  let h = paper_pack () in
  let inner = (Model.find_inner h "sig3").Model.stream in
  Alcotest.check time "delta_min 2" (Time.of_int 750) (Stream.delta_min inner 2);
  Alcotest.check time "delta_min 3" (Time.of_int 1750) (Stream.delta_min inner 3);
  Alcotest.check time "delta_plus 2" Time.Inf (Stream.delta_plus inner 2);
  Alcotest.check time "delta_plus 5" Time.Inf (Stream.delta_plus inner 5)

let test_pack_pending_floor_is_outer () =
  (* a fast pending signal cannot produce fresh frames faster than the
     frames themselves *)
  let fast = Stream.periodic ~name:"fast" ~period:10 in
  let h =
    Pack.pack [ Pack.input "trig" s1; Pack.input ~kind:Model.Pending "p" fast ]
  in
  let inner = (Model.find_inner h "p").Model.stream in
  for n = 2 to 6 do
    Alcotest.check time
      (Printf.sprintf "floored %d" n)
      (Stream.delta_min (Model.outer h) n)
      (Stream.delta_min inner n)
  done

let test_pack_pending_with_sporadic_trigger () =
  (* delta_plus_out 2 = inf: the subtraction term vanishes and the bound
     degrades to the frame distance (eq. 7 with sub_clamped) *)
  let trig = Stream.sporadic ~name:"t" ~d_min:100 in
  let h =
    Pack.pack [ Pack.input "t" trig; Pack.input ~kind:Model.Pending "p" s3 ]
  in
  let inner = (Model.find_inner h "p").Model.stream in
  for n = 2 to 5 do
    Alcotest.check time
      (Printf.sprintf "degrades to outer %d" n)
      (Stream.delta_min (Model.outer h) n)
      (Stream.delta_min inner n)
  done

let test_pack_degradation_warning () =
  (* the unbounded-frame-gap degradation of the previous test is reported
     through the warning hook, naming the frame and the pending signal *)
  let warnings = ref [] in
  Pack.set_warn_hook (fun w -> warnings := w :: !warnings);
  Fun.protect ~finally:Pack.clear_warn_hook @@ fun () ->
  let trig = Stream.sporadic ~name:"t" ~d_min:50 in
  let h =
    Pack.pack ~name:"W"
      [ Pack.input "t" trig; Pack.input ~kind:Model.Pending "p" s3 ]
  in
  (match !warnings with
   | [ w ] ->
     Alcotest.(check string) "frame" "W" w.Pack.frame;
     Alcotest.(check string) "signal" "p" w.Pack.signal
   | ws ->
     Alcotest.failf "expected exactly one warning, got %d" (List.length ws));
  (* the warning marks a real precision loss: the pending bound is just
     the outer bound *)
  let inner = (Model.find_inner h "p").Model.stream in
  for n = 2 to 6 do
    Alcotest.check time
      (Printf.sprintf "degraded to outer %d" n)
      (Stream.delta_min (Model.outer h) n)
      (Stream.delta_min inner n)
  done;
  (* a bounded frame gap stays silent *)
  warnings := [];
  ignore (paper_pack ());
  Alcotest.(check int) "no warning for bounded gap" 0 (List.length !warnings)

let test_pack_validation () =
  Alcotest.(check bool) "no inputs" true
    (match Pack.pack [] with
     | _ -> false
     | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "only pending" true
    (match Pack.pack [ Pack.input ~kind:Model.Pending "p" s1 ] with
     | _ -> false
     | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Inner update (Def. 9) *)

let test_simultaneity () =
  let h = paper_pack () in
  (* S1 and S2 can fire together, S3 is pending: k = 2 *)
  Alcotest.(check int) "k of paper outer" 2
    (Inner_update.simultaneity (Model.outer h));
  Alcotest.(check int) "k of plain periodic" 1 (Inner_update.simultaneity s1);
  let triple =
    Combine.or_combine
      [ s1; Stream.periodic ~name:"x" ~period:300;
        Stream.periodic ~name:"y" ~period:400 ]
  in
  Alcotest.(check int) "k of triple" 3 (Inner_update.simultaneity triple)

let test_inner_update_formulas () =
  (* Def. 9 with response [4:10]: shift = (r+ - r-) + (k-1) r- = 6 + 4 *)
  let h = paper_pack () in
  let response = Interval.make ~lo:4 ~hi:10 in
  let updated = Inner_update.apply_response ~response h in
  let inner1 = (Model.find_inner updated "sig1").Model.stream in
  (* delta_min' n = max (250 (n-1) - 10) ((n-1) * 4) *)
  Alcotest.check time "sig1 delta_min 2" (Time.of_int 240)
    (Stream.delta_min inner1 2);
  Alcotest.check time "sig1 delta_min 3" (Time.of_int 490)
    (Stream.delta_min inner1 3);
  (* delta_plus' n = 250 (n-1) + 10 *)
  Alcotest.check time "sig1 delta_plus 2" (Time.of_int 260)
    (Stream.delta_plus inner1 2);
  (* pending stream: delta_min' 2 = max (750 - 10) 4 = 740, delta_plus inf *)
  let inner3 = (Model.find_inner updated "sig3").Model.stream in
  Alcotest.check time "sig3 delta_min 2" (Time.of_int 740)
    (Stream.delta_min inner3 2);
  Alcotest.check time "sig3 delta_plus 2" Time.Inf (Stream.delta_plus inner3 2)

let test_inner_update_serialization_floor () =
  (* simultaneous inner events become serialized at r- *)
  let h =
    Pack.pack
      [
        Pack.input "a" (Stream.periodic ~name:"a" ~period:100);
        Pack.input "b" (Stream.periodic ~name:"b" ~period:100);
      ]
  in
  let updated =
    Inner_update.apply_response ~response:(Interval.make ~lo:7 ~hi:7) h
  in
  let inner = (Model.find_inner updated "a").Model.stream in
  (* input delta_min 2 = 100; shift = 0 + (2-1)*7 = 7: max (93) (7) = 93 *)
  Alcotest.check time "a delta_min 2" (Time.of_int 93)
    (Stream.delta_min inner 2)

let test_inner_update_outer_is_task_op () =
  let h = paper_pack () in
  let response = Interval.make ~lo:4 ~hi:10 in
  let updated = Inner_update.apply_response ~response h in
  let reference =
    Event_model.Task_op.output ~response (Model.outer h)
  in
  for n = 2 to 8 do
    Alcotest.check time
      (Printf.sprintf "outer %d" n)
      (Stream.delta_min reference n)
      (Stream.delta_min (Model.outer updated) n)
  done

let test_inner_update_identity () =
  let h = paper_pack () in
  let updated =
    Inner_update.apply_response ~response:(Interval.make ~lo:0 ~hi:0) h
  in
  let before = (Model.find_inner h "sig1").Model.stream in
  let after = (Model.find_inner updated "sig1").Model.stream in
  for n = 2 to 6 do
    Alcotest.check time
      (Printf.sprintf "identity %d" n)
      (Stream.delta_min before n) (Stream.delta_min after n)
  done

(* ------------------------------------------------------------------ *)
(* Deconstruct (Def. 10) *)

let test_unpack () =
  let h = paper_pack () in
  Alcotest.(check int) "all inner streams" 3 (List.length (Deconstruct.unpack h));
  let by_index = Deconstruct.unpack_nth h 0 in
  let by_label = Deconstruct.unpack_label h "sig1" in
  Alcotest.(check string) "same stream" (Stream.name by_index)
    (Stream.name by_label);
  Alcotest.(check bool) "out of range" true
    (match Deconstruct.unpack_nth h 7 with
     | _ -> false
     | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "unknown label" true
    (match Deconstruct.unpack_label h "zz" with
     | _ -> false
     | exception Not_found -> true)

let test_unpack_order_matches_construction () =
  let h = paper_pack () in
  Alcotest.(check (list string)) "labels in construction order"
    [ "sig1"; "sig2"; "sig3" ]
    (List.map (fun (i : Model.inner) -> i.Model.label) (Model.inners h))

(* ------------------------------------------------------------------ *)
(* properties *)

let arb_period = QCheck.map (Stdlib.max 1) (QCheck.int_range 50 1000)

let prop_pending_dominates_outer =
  (* eq. (7) result always dominates the outer frame distance *)
  QCheck.Test.make ~name:"pending inner >= outer distance" ~count:60
    (QCheck.triple arb_period arb_period (QCheck.int_range 2 8))
    (fun (p_trig, p_pend, n) ->
      let h =
        Pack.pack
          [
            Pack.input "t" (Stream.periodic ~name:"t" ~period:p_trig);
            Pack.input ~kind:Model.Pending "p"
              (Stream.periodic ~name:"p" ~period:p_pend);
          ]
      in
      let inner = (Model.find_inner h "p").Model.stream in
      Time.(Stream.delta_min inner n >= Stream.delta_min (Model.outer h) n))

let prop_inner_update_conservative_shift =
  (* updated distances never shrink by more than the shift *)
  QCheck.Test.make ~name:"inner update shift bounded" ~count:60
    (QCheck.triple arb_period (QCheck.int_range 1 20) (QCheck.int_range 2 6))
    (fun (p, r, n) ->
      let r = Stdlib.max 1 r in
      let h =
        Pack.pack
          [
            Pack.input "a" (Stream.periodic ~name:"a" ~period:p);
            Pack.input "b" (Stream.periodic ~name:"b" ~period:(p + 13));
          ]
      in
      let updated =
        Inner_update.apply_response ~response:(Interval.make ~lo:r ~hi:(r * 3))
          h
      in
      let before = (Model.find_inner h "a").Model.stream in
      let after = (Model.find_inner updated "a").Model.stream in
      (* shift = (r+ - r-) + (k - 1) r- with k = 2 here *)
      let shift = (r * 2) + r in
      Time.(
        Stream.delta_min after n
        >= Time.sub_clamped (Stream.delta_min before n) (Time.of_int shift))
      && Time.(
           Stream.delta_plus after n
           <= Time.add (Stream.delta_plus before n) (Time.of_int shift)))

let () =
  Alcotest.run "hem"
    [
      ( "model",
        [
          Alcotest.test_case "structure" `Quick test_model_structure;
          Alcotest.test_case "validation" `Quick test_model_validation;
        ] );
      ( "pack",
        [
          Alcotest.test_case "outer = OR of triggering" `Quick
            test_pack_outer_is_or_of_triggering;
          Alcotest.test_case "triggering inner unchanged" `Quick
            test_pack_triggering_inner_unchanged;
          Alcotest.test_case "pending inner (eq 7-8)" `Quick
            test_pack_pending_inner;
          Alcotest.test_case "pending floored by outer" `Quick
            test_pack_pending_floor_is_outer;
          Alcotest.test_case "pending with sporadic trigger" `Quick
            test_pack_pending_with_sporadic_trigger;
          Alcotest.test_case "degradation warning" `Quick
            test_pack_degradation_warning;
          Alcotest.test_case "validation" `Quick test_pack_validation;
        ] );
      ( "inner update",
        [
          Alcotest.test_case "simultaneity" `Quick test_simultaneity;
          Alcotest.test_case "formulas (Def 9)" `Quick test_inner_update_formulas;
          Alcotest.test_case "serialization floor" `Quick
            test_inner_update_serialization_floor;
          Alcotest.test_case "outer via Theta_tau" `Quick
            test_inner_update_outer_is_task_op;
          Alcotest.test_case "identity for [0:0]" `Quick
            test_inner_update_identity;
        ] );
      ( "deconstruct",
        [
          Alcotest.test_case "unpack" `Quick test_unpack;
          Alcotest.test_case "order" `Quick test_unpack_order_matches_construction;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_pending_dominates_outer; prop_inner_update_conservative_shift ] );
    ]
