(* Tests for stream combination: OR-activation against brute-force
   enumeration of contribution vectors (paper, eqs. 3-4), algebraic
   properties, and the conservative AND-activation bounds. *)

module Time = Timebase.Time
module Count = Timebase.Count
module Stream = Event_model.Stream
module Combine = Event_model.Combine

let time = Alcotest.testable Time.pp Time.equal

(* Enumerate contribution vectors (k_1..k_m) with sum = total, k_i >= 0. *)
let rec contribution_vectors m total =
  if m = 1 then [ [ total ] ]
  else
    List.concat_map
      (fun k ->
        List.map (fun rest -> k :: rest) (contribution_vectors (m - 1) (total - k)))
      (List.init (total + 1) Fun.id)

(* eq. (3) verbatim: min over K (sum = n) of max_i delta_min_i k_i *)
let brute_or_delta_min streams n =
  if n <= 1 then Time.zero
  else
    contribution_vectors (List.length streams) n
    |> List.map (fun ks ->
         List.fold_left2
           (fun acc s k -> Time.max acc (Stream.delta_min s k))
           Time.zero streams ks)
    |> List.fold_left Time.min Time.Inf

(* eq. (4) verbatim: max over K (sum = n - 2) of min_i delta_plus_i (k_i + 2) *)
let brute_or_delta_plus streams n =
  if n <= 1 then Time.zero
  else
    contribution_vectors (List.length streams) (n - 2)
    |> List.map (fun ks ->
         match
           List.map2 (fun s k -> Stream.delta_plus s (k + 2)) streams ks
         with
         | [] -> Time.zero
         | v :: vs -> List.fold_left Time.min v vs)
    |> List.fold_left Time.max Time.zero

let paper_sources =
  [
    Stream.periodic ~name:"S1" ~period:250;
    Stream.periodic ~name:"S2" ~period:450;
  ]

let test_or_pair_vs_brute () =
  let combined = Combine.or_combine paper_sources in
  for n = 0 to 12 do
    Alcotest.check time
      (Printf.sprintf "delta_min %d" n)
      (brute_or_delta_min paper_sources n)
      (Stream.delta_min combined n);
    Alcotest.check time
      (Printf.sprintf "delta_plus %d" n)
      (brute_or_delta_plus paper_sources n)
      (Stream.delta_plus combined n)
  done

let test_or_triple_vs_brute () =
  let streams =
    [
      Stream.periodic ~name:"a" ~period:100;
      Stream.periodic_jitter ~name:"b" ~period:170 ~jitter:40 ();
      Stream.sporadic ~name:"c" ~d_min:60;
    ]
  in
  let combined = Combine.or_combine streams in
  for n = 0 to 9 do
    Alcotest.check time
      (Printf.sprintf "delta_min %d" n)
      (brute_or_delta_min streams n)
      (Stream.delta_min combined n);
    Alcotest.check time
      (Printf.sprintf "delta_plus %d" n)
      (brute_or_delta_plus streams n)
      (Stream.delta_plus combined n)
  done

let test_or_known_values () =
  (* hand-computed for the paper's sources: two simultaneous arrivals are
     possible, the third event is at least 250 away *)
  let combined = Combine.or_combine paper_sources in
  Alcotest.check time "delta_min 2" Time.zero (Stream.delta_min combined 2);
  Alcotest.check time "delta_min 3" (Time.of_int 250) (Stream.delta_min combined 3);
  Alcotest.check time "delta_plus 2" (Time.of_int 250) (Stream.delta_plus combined 2)

let test_or_single_stream () =
  let s = Stream.periodic ~name:"p" ~period:42 in
  let combined = Combine.or_combine ~name:"same" [ s ] in
  for n = 2 to 8 do
    Alcotest.check time
      (Printf.sprintf "identity %d" n)
      (Stream.delta_min s n)
      (Stream.delta_min combined n)
  done

let test_or_empty_rejected () =
  Alcotest.(check bool) "raises" true
    (match Combine.or_combine [] with
     | _ -> false
     | exception Invalid_argument _ -> true)

let test_or_default_name () =
  let combined = Combine.or_combine paper_sources in
  Alcotest.(check string) "name" "or(S1,S2)" (Stream.name combined)

let test_and_bounds () =
  let a = Stream.periodic ~name:"a" ~period:100
  and b = Stream.periodic_jitter ~name:"b" ~period:100 ~jitter:30 () in
  let combined = Combine.and_combine [ a; b ] in
  (* delta_min = min of inputs, delta_plus = max of inputs *)
  for n = 2 to 8 do
    Alcotest.check time
      (Printf.sprintf "delta_min %d" n)
      (Time.min (Stream.delta_min a n) (Stream.delta_min b n))
      (Stream.delta_min combined n);
    Alcotest.check time
      (Printf.sprintf "delta_plus %d" n)
      (Time.max (Stream.delta_plus a n) (Stream.delta_plus b n))
      (Stream.delta_plus combined n)
  done;
  Alcotest.(check string) "name" "and(a,b)" (Stream.name combined);
  Alcotest.(check bool) "empty raises" true
    (match Combine.and_combine [] with
     | _ -> false
     | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* properties *)

let arb_stream =
  let open QCheck in
  map
    (fun (p, j) ->
      Stream.periodic_jitter ~name:"s" ~period:(Stdlib.max 1 p)
        ~jitter:(Stdlib.max 0 j) ())
    (pair (int_range 1 200) (int_range 0 150))

let prop_or_matches_brute =
  QCheck.Test.make ~name:"or_combine matches contribution vectors" ~count:60
    (QCheck.pair (QCheck.pair arb_stream arb_stream) (QCheck.int_range 2 8))
    (fun ((a, b), n) ->
      let n = 2 + (abs n mod 8) in
      let streams = [ a; b ] in
      let combined = Combine.or_combine streams in
      Time.equal (Stream.delta_min combined n) (brute_or_delta_min streams n)
      && Time.equal (Stream.delta_plus combined n)
           (brute_or_delta_plus streams n))

let prop_or_commutative =
  QCheck.Test.make ~name:"or_combine commutative" ~count:60
    (QCheck.pair (QCheck.pair arb_stream arb_stream) (QCheck.int_range 2 10))
    (fun ((a, b), n) ->
      let ab = Combine.or_combine [ a; b ]
      and ba = Combine.or_combine [ b; a ] in
      Time.equal (Stream.delta_min ab n) (Stream.delta_min ba n)
      && Time.equal (Stream.delta_plus ab n) (Stream.delta_plus ba n))

let prop_or_associative =
  QCheck.Test.make ~name:"or_combine associative" ~count:40
    (QCheck.pair
       (QCheck.triple arb_stream arb_stream arb_stream)
       (QCheck.int_range 2 8)) (fun ((a, b, c), n) ->
      let left = Combine.or_combine [ Combine.or_combine [ a; b ]; c ]
      and flat = Combine.or_combine [ a; b; c ] in
      Time.equal (Stream.delta_min left n) (Stream.delta_min flat n)
      && Time.equal (Stream.delta_plus left n) (Stream.delta_plus flat n))

let prop_or_eta_additive =
  (* the OR stream admits exactly the union of events: its maximum arrival
     count is the sum of the inputs' maximum arrival counts *)
  QCheck.Test.make ~name:"eta_plus of OR = sum of eta_plus" ~count:60
    (QCheck.pair (QCheck.pair arb_stream arb_stream) (QCheck.int_range 1 600))
    (fun ((a, b), dt) ->
      let combined = Combine.or_combine [ a; b ] in
      Count.equal
        (Stream.eta_plus combined dt)
        (Count.add (Stream.eta_plus a dt) (Stream.eta_plus b dt)))

let prop_or_delta_min_dominated =
  (* combining can only tighten minimum distances *)
  QCheck.Test.make ~name:"or delta_min <= each input" ~count:60
    (QCheck.pair (QCheck.pair arb_stream arb_stream) (QCheck.int_range 2 10))
    (fun ((a, b), n) ->
      let combined = Combine.or_combine [ a; b ] in
      Time.(Stream.delta_min combined n <= Stream.delta_min a n)
      && Time.(Stream.delta_min combined n <= Stream.delta_min b n))

let prop_or_delta_plus_monotone =
  (* the n <= 1 -> 0 convention and monotonicity of eq. (4): the budget
     n - 2 goes negative at small n, which must never surface as a
     non-monotone or non-zero value *)
  QCheck.Test.make ~name:"or delta_plus monotone, zero at n <= 1" ~count:60
    (QCheck.pair arb_stream arb_stream) (fun (a, b) ->
      let c = Combine.or_combine [ a; b ] in
      Time.equal (Stream.delta_plus c 0) Time.zero
      && Time.equal (Stream.delta_plus c 1) Time.zero
      && List.for_all
           (fun n -> Time.(Stream.delta_plus c n <= Stream.delta_plus c (n + 1)))
           (List.init 11 (fun i -> i + 1)))

(* Concrete merged trace of two phased periodic sources; the OR bounds
   must be conservative for every phasing. *)
let merged_trace ~p1 ~f1 ~p2 ~f2 ~horizon =
  let times p f =
    let rec go t acc = if t > horizon then List.rev acc else go (t + p) (t :: acc) in
    go f []
  in
  List.sort Stdlib.compare (times p1 f1 @ times p2 f2)

let observed_spans n times =
  let arr = Array.of_list times in
  let len = Array.length arr in
  if len < n then None
  else begin
    let mn = ref max_int and mx = ref 0 in
    for i = 0 to len - n do
      let s = arr.(i + n - 1) - arr.(i) in
      if s < !mn then mn := s;
      if s > !mx then mx := s
    done;
    Some (!mn, !mx)
  end

let prop_or_conservative_vs_merged_trace =
  QCheck.Test.make ~name:"or bounds dominate merged concrete trace" ~count:60
    (QCheck.pair
       (QCheck.pair (QCheck.int_range 50 300) (QCheck.int_range 50 300))
       (QCheck.pair (QCheck.int_range 0 299) (QCheck.int_range 0 299)))
    (fun ((p1, p2), (f1, f2)) ->
      let f1 = f1 mod p1 and f2 = f2 mod p2 in
      let a = Stream.periodic ~name:"a" ~period:p1
      and b = Stream.periodic ~name:"b" ~period:p2 in
      let combined = Combine.or_combine [ a; b ] in
      let trace = merged_trace ~p1 ~f1 ~p2 ~f2 ~horizon:20_000 in
      List.for_all
        (fun n ->
          match observed_spans n trace with
          | None -> true
          | Some (mn, mx) ->
            Time.(Stream.delta_min combined n <= Time.of_int mn)
            && Time.(Time.of_int mx <= Stream.delta_plus combined n))
        [ 2; 3; 4; 6; 10 ])

let () =
  Alcotest.run "combine"
    [
      ( "or",
        [
          Alcotest.test_case "pair vs brute force" `Quick test_or_pair_vs_brute;
          Alcotest.test_case "triple vs brute force" `Quick
            test_or_triple_vs_brute;
          Alcotest.test_case "known values" `Quick test_or_known_values;
          Alcotest.test_case "single stream" `Quick test_or_single_stream;
          Alcotest.test_case "empty rejected" `Quick test_or_empty_rejected;
          Alcotest.test_case "default name" `Quick test_or_default_name;
        ] );
      "and", [ Alcotest.test_case "bounds" `Quick test_and_bounds ];
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_or_matches_brute;
            prop_or_commutative;
            prop_or_associative;
            prop_or_eta_additive;
            prop_or_delta_min_dominated;
            prop_or_delta_plus_monotone;
            prop_or_conservative_vs_merged_trace;
          ] );
    ]
