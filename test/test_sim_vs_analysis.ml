(* Validation experiments: every bound produced by the compositional
   analysis must dominate the corresponding observation of the
   discrete-event simulator (experiment V1 in DESIGN.md).

   The comparison runs on the paper's system under several source phasings
   and on randomized two-frame systems. *)

module Time = Timebase.Time
module Count = Timebase.Count
module Interval = Timebase.Interval
module Stream = Event_model.Stream
module Spec = Cpa_system.Spec
module Engine = Cpa_system.Engine
module Gen = Des.Gen
module Trace = Des.Trace
module Port = Des.Port
module Simulator = Des.Simulator

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "failed: %s" e

let ok_a = function
  | Ok v -> v
  | Error e -> Alcotest.failf "analysis failed: %s" (Guard.Error.to_string e)

(* Check that every simulated response is within the analytic bound and
   that observed arrival counts never exceed the analytic eta_plus of the
   matching stream. *)
let check_responses_dominated ~label result trace names =
  List.iter
    (fun name ->
      match Engine.response result name, Trace.worst_response trace name with
      | Some bound, Some observed ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: %s observed %d <= bound %d" label name observed
             (Interval.hi bound))
          true
          (observed <= Interval.hi bound);
        (match Trace.best_response trace name with
         | Some best ->
           Alcotest.(check bool)
             (Printf.sprintf "%s: %s best %d >= bound %d" label name best
                (Interval.lo bound))
             true
             (best >= Interval.lo bound)
         | None -> ())
      | Some _, None -> ()  (* nothing completed in the horizon: vacuous *)
      | None, _ ->
        Alcotest.failf "%s: %s unbounded in analysis" label name)
    names

let check_eta_dominated ~label stream trace port =
  List.iter
    (fun dt ->
      let bound = Stream.eta_plus stream dt in
      let observed = Trace.observed_eta_plus trace port ~dt in
      Alcotest.(check bool)
        (Printf.sprintf "%s: eta+ %s dt=%d observed %d <= bound %s" label port
           dt observed (Count.to_string bound))
        true
        (Count.compare (Count.of_int observed) bound <= 0))
    [ 1; 10; 50; 100; 250; 500; 1000; 2500; 5000 ]

(* ------------------------------------------------------------------ *)
(* the paper's system *)

let paper_generators phases =
  match phases with
  | [ p1; p2; p3; p4 ] ->
    [
      "S1", Gen.periodic ~phase:p1 ~period:250 ();
      "S2", Gen.periodic ~phase:p2 ~period:450 ();
      "S3", Gen.periodic ~phase:p3 ~period:1000 ();
      "S4", Gen.periodic ~phase:p4 ~period:400 ();
    ]
  | _ -> assert false

let run_paper phases =
  let spec = Scenarios.Paper_system.spec () in
  let hem = ok_a (Engine.analyse ~mode:Engine.Hierarchical spec) in
  let trace =
    ok (Simulator.run ~generators:(paper_generators phases) ~horizon:500_000 spec)
  in
  hem, trace

let phase_sets =
  [
    [ 0; 0; 0; 0 ];  (* the critical-instant-like alignment *)
    [ 0; 3; 7; 11 ];
    [ 100; 0; 500; 200 ];
    [ 249; 449; 999; 399 ];
  ]

let test_paper_responses_conservative () =
  List.iteri
    (fun i phases ->
      let hem, trace = run_paper phases in
      check_responses_dominated
        ~label:(Printf.sprintf "phases %d" i)
        hem trace
        ("F1" :: "F2" :: Scenarios.Paper_system.cpu_tasks))
    phase_sets

let test_paper_eta_conservative () =
  List.iteri
    (fun i phases ->
      let hem, trace = run_paper phases in
      let label = Printf.sprintf "phases %d" i in
      (* frame arrivals vs the post-bus outer stream *)
      check_eta_dominated ~label
        (hem.Engine.resolve (Spec.From_frame "F1"))
        trace (Port.frame "F1");
      (* unpacked signal deliveries vs the inner streams *)
      List.iter
        (fun signal ->
          check_eta_dominated ~label
            (hem.Engine.resolve (Spec.From_signal { frame = "F1"; signal }))
            trace
            (Port.signal ~frame:"F1" ~signal))
        [ "sig1"; "sig2"; "sig3" ])
    phase_sets

let test_paper_flat_also_conservative () =
  (* the baseline must of course be conservative too *)
  let spec = Scenarios.Paper_system.spec () in
  let flat = ok_a (Engine.analyse ~mode:Engine.Flat_sem spec) in
  let trace =
    ok
      (Simulator.run
         ~generators:(paper_generators [ 0; 0; 0; 0 ])
         ~horizon:500_000 spec)
  in
  check_responses_dominated ~label:"flat" flat trace
    ("F1" :: "F2" :: Scenarios.Paper_system.cpu_tasks)

let test_paper_jittery_sources_conservative () =
  (* jittered generators stay within the periodic-with-jitter models *)
  let jitter = 40 in
  let spec_model =
    Spec.make
      ~sources:
        [
          ( "S1",
            Stream.periodic_jitter ~name:"S1" ~period:250 ~jitter ~d_min:0 () );
          ( "S2",
            Stream.periodic_jitter ~name:"S2" ~period:450 ~jitter ~d_min:0 () );
          ( "S3",
            Stream.periodic_jitter ~name:"S3" ~period:1000 ~jitter ~d_min:0 () );
          ( "S4",
            Stream.periodic_jitter ~name:"S4" ~period:400 ~jitter ~d_min:0 () );
        ]
      ~resources:(Scenarios.Paper_system.spec ()).Spec.resources
      ~tasks:(Scenarios.Paper_system.spec ()).Spec.tasks
      ~frames:(Scenarios.Paper_system.spec ()).Spec.frames ()
  in
  let hem = ok_a (Engine.analyse ~mode:Engine.Hierarchical spec_model) in
  let generators =
    [
      "S1", Gen.periodic_jitter ~period:250 ~jitter ();
      "S2", Gen.periodic_jitter ~period:450 ~jitter ();
      "S3", Gen.periodic_jitter ~period:1000 ~jitter ();
      "S4", Gen.periodic_jitter ~period:400 ~jitter ();
    ]
  in
  List.iter
    (fun seed ->
      let trace =
        ok (Simulator.run ~seed ~generators ~horizon:300_000 spec_model)
      in
      check_responses_dominated
        ~label:(Printf.sprintf "seed %d" seed)
        hem trace
        ("F1" :: "F2" :: Scenarios.Paper_system.cpu_tasks))
    [ 1; 2; 3 ]

(* ------------------------------------------------------------------ *)
(* randomized systems *)

let random_system rng =
  let pick lo hi = lo + Random.State.int rng (hi - lo + 1) in
  let p1 = pick 100 400
  and p2 = pick 200 800
  and p3 = pick 500 2000
  and p4 = pick 150 900 in
  let sources =
    [
      "S1", Stream.periodic ~name:"S1" ~period:p1;
      "S2", Stream.periodic ~name:"S2" ~period:p2;
      "S3", Stream.periodic ~name:"S3" ~period:p3;
      "S4", Stream.periodic ~name:"S4" ~period:p4;
    ]
  in
  let tx1 = pick 2 8 and tx2 = pick 1 4 in
  let c1 = pick 5 (p1 / 4) and c2 = pick 5 (p2 / 4) and c3 = pick 5 (p3 / 8) in
  let spec =
    Spec.make ~sources
      ~resources:
        [
          { Spec.res_name = "CAN"; scheduler = Spec.Spnp; backend = Spec.Cpa };
          { Spec.res_name = "CPU1"; scheduler = Spec.Spp; backend = Spec.Cpa };
        ]
      ~tasks:
        [
          Spec.task ~name:"T1" ~resource:"CPU1" ~cet:(Interval.point c1)
            ~priority:1
            ~activation:(Spec.From_signal { frame = "F1"; signal = "sig1" })
            ();
          Spec.task ~name:"T2" ~resource:"CPU1" ~cet:(Interval.point c2)
            ~priority:2
            ~activation:(Spec.From_signal { frame = "F1"; signal = "sig2" })
            ();
          Spec.task ~name:"T3" ~resource:"CPU1" ~cet:(Interval.point c3)
            ~priority:3
            ~activation:(Spec.From_signal { frame = "F1"; signal = "sig3" })
            ();
        ]
      ~frames:
        [
          Spec.frame ~name:"F1" ~bus:"CAN" ~send_type:Comstack.Frame.Direct
            ~tx_time:(Interval.point tx1) ~priority:1
            ~signals:
              [
                Spec.signal ~name:"sig1" ~origin:(Spec.From_source "S1") ();
                Spec.signal ~name:"sig2" ~origin:(Spec.From_source "S2") ();
                Spec.signal ~name:"sig3" ~property:Hem.Model.Pending
                  ~origin:(Spec.From_source "S3") ();
              ]
            ();
          Spec.frame ~name:"F2" ~bus:"CAN" ~send_type:Comstack.Frame.Direct
            ~tx_time:(Interval.point tx2) ~priority:2
            ~signals:
              [ Spec.signal ~name:"sig4" ~origin:(Spec.From_source "S4") () ]
            ();
        ]
      ()
  in
  let generators =
    [
      "S1", Gen.periodic ~phase:(pick 0 p1) ~period:p1 ();
      "S2", Gen.periodic ~phase:(pick 0 p2) ~period:p2 ();
      "S3", Gen.periodic ~phase:(pick 0 p3) ~period:p3 ();
      "S4", Gen.periodic ~phase:(pick 0 p4) ~period:p4 ();
    ]
  in
  spec, generators

let test_random_systems_conservative () =
  let rng = Random.State.make [| 2026 |] in
  let checked = ref 0 in
  for trial = 1 to 12 do
    let spec, generators = random_system rng in
    match Engine.analyse ~mode:Engine.Hierarchical spec with
    | Error e ->
      Alcotest.failf "trial %d: %s" trial (Guard.Error.to_string e)
    | Ok hem ->
      if hem.Engine.converged then begin
        incr checked;
        let trace = ok (Simulator.run ~generators ~horizon:200_000 spec) in
        check_responses_dominated
          ~label:(Printf.sprintf "trial %d" trial)
          hem trace
          [ "F1"; "F2"; "T1"; "T2"; "T3" ];
        List.iter
          (fun signal ->
            check_eta_dominated
              ~label:(Printf.sprintf "trial %d" trial)
              (hem.Engine.resolve (Spec.From_signal { frame = "F1"; signal }))
              trace
              (Port.signal ~frame:"F1" ~signal))
          [ "sig1"; "sig2"; "sig3" ]
      end
  done;
  Alcotest.(check bool)
    (Printf.sprintf "checked %d systems" !checked)
    true (!checked >= 8)

let test_random_flat_mode_conservative () =
  (* the SEM baseline is pessimistic: many random systems overload under
     it, so run more trials to collect enough converging ones *)
  let rng = Random.State.make [| 4711 |] in
  let checked = ref 0 in
  for trial = 1 to 15 do
    let spec, generators = random_system rng in
    match Engine.analyse ~mode:Engine.Flat_sem spec with
    | Error e ->
      Alcotest.failf "trial %d: %s" trial (Guard.Error.to_string e)
    | Ok flat ->
      if flat.Engine.converged then begin
        incr checked;
        let trace = ok (Simulator.run ~generators ~horizon:200_000 spec) in
        check_responses_dominated
          ~label:(Printf.sprintf "flat trial %d" trial)
          flat trace
          [ "F1"; "F2"; "T1"; "T2"; "T3" ]
      end
  done;
  Alcotest.(check bool)
    (Printf.sprintf "checked %d systems" !checked)
    true (!checked >= 3)

(* ------------------------------------------------------------------ *)
(* other schedulers *)

let service_system scheduler rng =
  let pick lo hi = lo + Random.State.int rng (hi - lo + 1) in
  let p1 = pick 60 300
  and p2 = pick 60 300
  and p3 = pick 100 500 in
  let spec =
    Spec.make
      ~sources:
        [
          "s1", Stream.periodic ~name:"s1" ~period:p1;
          "s2", Stream.periodic ~name:"s2" ~period:p2;
          "s3", Stream.periodic ~name:"s3" ~period:p3;
        ]
      ~resources:[ { Spec.res_name = "r"; scheduler; backend = Spec.Cpa } ]
      ~tasks:
        [
          Spec.task ~name:"t1" ~resource:"r" ~cet:(Interval.point (pick 2 8))
            ~priority:1 ~service:(pick 2 6) ~deadline:p1
            ~activation:(Spec.From_source "s1") ();
          Spec.task ~name:"t2" ~resource:"r" ~cet:(Interval.point (pick 2 8))
            ~priority:2 ~service:(pick 2 6) ~deadline:p2
            ~activation:(Spec.From_source "s2") ();
          Spec.task ~name:"t3" ~resource:"r" ~cet:(Interval.point (pick 2 8))
            ~priority:3 ~service:(pick 2 6) ~deadline:p3
            ~activation:(Spec.From_source "s3") ();
        ]
      ()
  in
  let generators =
    [
      "s1", Gen.periodic ~phase:(pick 0 p1) ~period:p1 ();
      "s2", Gen.periodic ~phase:(pick 0 p2) ~period:p2 ();
      "s3", Gen.periodic ~phase:(pick 0 p3) ~period:p3 ();
    ]
  in
  spec, generators

let check_scheduler_conservative ~name scheduler seed_base =
  let rng = Random.State.make [| seed_base |] in
  let checked = ref 0 in
  for trial = 1 to 10 do
    let spec, generators = service_system scheduler rng in
    match Engine.analyse spec with
    | Error e ->
      Alcotest.failf "%s trial %d: %s" name trial (Guard.Error.to_string e)
    | Ok result ->
      if result.Engine.converged then begin
        incr checked;
        let trace = ok (Simulator.run ~generators ~horizon:100_000 spec) in
        check_responses_dominated
          ~label:(Printf.sprintf "%s trial %d" name trial)
          result trace [ "t1"; "t2"; "t3" ]
      end
  done;
  Alcotest.(check bool)
    (Printf.sprintf "%s: checked %d systems" name !checked)
    true (!checked >= 4)

let test_gateway_conservative () =
  (* the two-hop repacking system: bounds hold across both hops *)
  let rng = Random.State.make [| 99 |] in
  for trial = 1 to 5 do
    let p1 = 150 + Random.State.int rng 300 in
    let p2 = 200 + Random.State.int rng 500 in
    let spec = Scenarios.Gateway.spec ~s1_period:p1 ~s2_period:p2 () in
    match Engine.analyse ~mode:Engine.Hierarchical spec with
    | Error e ->
      Alcotest.failf "trial %d: %s" trial (Guard.Error.to_string e)
    | Ok hem ->
      if hem.Engine.converged then begin
        let generators =
          [
            "S1", Gen.periodic ~phase:(Random.State.int rng p1) ~period:p1 ();
            "S2", Gen.periodic ~phase:(Random.State.int rng p2) ~period:p2 ();
          ]
        in
        let trace = ok (Simulator.run ~generators ~horizon:300_000 spec) in
        check_responses_dominated
          ~label:(Printf.sprintf "gateway %d" trial)
          hem trace
          [ "G1"; "GW1"; "GW2"; "B1"; "D1"; "D2" ];
        (* inner streams survive the second hop conservatively *)
        List.iter
          (fun signal ->
            check_eta_dominated
              ~label:(Printf.sprintf "gateway %d" trial)
              (hem.Engine.resolve (Spec.From_signal { frame = "B1"; signal }))
              trace
              (Port.signal ~frame:"B1" ~signal))
          [ "gsig1"; "gsig2" ]
      end
  done

let test_and_activation_conservative () =
  (* AND joins: observed joint activations within the conservative
     and_combine bounds *)
  let spec =
    Spec.make
      ~sources:
        [
          "a", Stream.periodic ~name:"a" ~period:100;
          "b", Stream.periodic ~name:"b" ~period:100;
        ]
      ~resources:[ { Spec.res_name = "cpu"; scheduler = Spec.Spp; backend = Spec.Cpa } ]
      ~tasks:
        [
          Spec.task ~name:"join" ~resource:"cpu" ~cet:(Interval.point 5)
            ~priority:1
            ~activation:
              (Spec.And_of [ Spec.From_source "a"; Spec.From_source "b" ])
            ();
        ]
      ()
  in
  let hem = ok_a (Engine.analyse spec) in
  let generators =
    [
      "a", Gen.periodic ~period:100 ();
      "b", Gen.periodic ~phase:40 ~period:100 ();
    ]
  in
  let trace = ok (Simulator.run ~generators ~horizon:100_000 spec) in
  check_responses_dominated ~label:"and" hem trace [ "join" ];
  check_eta_dominated ~label:"and"
    (hem.Engine.resolve
       (Spec.And_of [ Spec.From_source "a"; Spec.From_source "b" ]))
    trace
    (Port.activation "join")

let test_tdma_conservative () =
  check_scheduler_conservative ~name:"tdma" Spec.Tdma 31

let test_round_robin_conservative () =
  check_scheduler_conservative ~name:"rr" Spec.Round_robin 32

let test_edf_conservative () =
  check_scheduler_conservative ~name:"edf" Spec.Edf 33

let test_avionics_full_stack_conservative () =
  (* every scheduler in one system, several seeds and execution policies *)
  let spec = Scenarios.Avionics.spec () in
  let result = ok_a (Engine.analyse ~mode:Engine.Hierarchical spec) in
  Alcotest.(check bool) "converged" true result.Engine.converged;
  List.iter
    (fun (seed, policy) ->
      let trace =
        ok
          (Simulator.run ~seed ~cet_policy:policy
             ~generators:(Scenarios.Avionics.generators ())
             ~horizon:300_000 spec)
      in
      check_responses_dominated
        ~label:(Printf.sprintf "avionics seed %d" seed)
        result trace Scenarios.Avionics.all_elements)
    [ 1, Simulator.Worst_case; 2, Simulator.Uniform; 3, Simulator.Uniform ]

(* ------------------------------------------------------------------ *)
(* fuzzed systems: distance bounds vs observed spans *)

(* Observed extreme spans of [n] consecutive arrivals (max side of
   observed_delta_min, computed from the raw arrival list). *)
let observed_max_span arrivals n =
  let arr = Array.of_list arrivals in
  let len = Array.length arr in
  if len < n then None
  else begin
    let mx = ref 0 in
    for i = 0 to len - n do
      let s = arr.(i + n - 1) - arr.(i) in
      if s > !mx then mx := s
    done;
    Some !mx
  end

let check_distances_conservative ~label stream trace port =
  List.iter
    (fun n ->
      (match Trace.observed_delta_min trace port ~n with
       | None -> ()
       | Some mn ->
         Alcotest.(check bool)
           (Printf.sprintf "%s: %s delta_min %d <= observed %d" label port n mn)
           true
           Time.(Stream.delta_min stream n <= Time.of_int mn));
      match observed_max_span (Trace.arrivals trace port) n with
      | None -> ()
      | Some mx ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: %s observed span %d <= delta_plus %d" label port
             mx n)
          true
          Time.(Time.of_int mx <= Stream.delta_plus stream n))
    [ 2; 3; 4; 5; 6 ]

let test_fuzzed_distances_conservative () =
  (* the declared analysis curves of frame and signal streams must bracket
     every observed span in randomly edited systems driven by generators
     that realize the declared source models *)
  let checked = ref 0 in
  List.iter
    (fun case ->
      let spec = case.Verify.Fuzz.build () in
      match Engine.analyse ~mode:Engine.Hierarchical spec with
      | Error e ->
        Alcotest.failf "%s: %s" case.Verify.Fuzz.label
          (Guard.Error.to_string e)
      | Ok hem ->
        if hem.Engine.converged then begin
          incr checked;
          let trace =
            ok
              (Simulator.run ~generators:case.Verify.Fuzz.generators
                 ~horizon:150_000 spec)
          in
          let label = case.Verify.Fuzz.label in
          List.iter
            (fun (f : Spec.frame) ->
              let name = f.Spec.frame_name in
              check_distances_conservative ~label
                (hem.Engine.resolve (Spec.From_frame name))
                trace (Port.frame name);
              List.iter
                (fun (s : Spec.signal_binding) ->
                  let signal = s.Spec.signal_name in
                  check_distances_conservative ~label
                    (hem.Engine.resolve (Spec.From_signal { frame = name; signal }))
                    trace
                    (Port.signal ~frame:name ~signal))
                f.Spec.signals)
            spec.Spec.frames
        end)
    (Verify.Fuzz.cases ~seed:7 ~count:6);
  Alcotest.(check bool)
    (Printf.sprintf "checked %d fuzzed systems" !checked)
    true (!checked >= 3)

let test_shaped_trace_conservative () =
  (* a greedy shaper applied to concrete jittered traces stays within the
     analytic shaped curves, and no event waits longer than delay_bound *)
  let rng = Random.State.make [| 0x5ade |] in
  for trial = 1 to 8 do
    let period = 40 + Random.State.int rng 200 in
    let jitter = Random.State.int rng (3 * period) in
    let d = 1 + Random.State.int rng period in
    let s =
      Stream.periodic_jitter ~name:"src" ~period ~jitter ~d_min:0 ()
    in
    let shaped = Event_model.Shaper.enforce_min_distance ~d s in
    let bound = Event_model.Shaper.delay_bound ~d s in
    (* concrete realization of the model, then the greedy shaper
       out_i = max(t_i, out_(i-1) + d) *)
    let events = 400 in
    let arrivals =
      List.init events (fun i -> (i * period) + Random.State.int rng (jitter + 1))
      |> List.sort Stdlib.compare
    in
    let outs =
      List.rev
        (List.fold_left
           (fun acc t ->
             match acc with
             | [] -> [ t ]
             | prev :: _ -> Stdlib.max t (prev + d) :: acc)
           [] arrivals)
    in
    let label = Printf.sprintf "trial %d (p=%d j=%d d=%d)" trial period jitter d in
    List.iter2
      (fun t out ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: delay %d within bound" label (out - t))
          true
          Time.(Time.of_int (out - t) <= bound))
      arrivals outs;
    let out_arr = Array.of_list outs in
    List.iter
      (fun n ->
        let mn = ref max_int and mx = ref 0 in
        for i = 0 to events - n do
          let s = out_arr.(i + n - 1) - out_arr.(i) in
          if s < !mn then mn := s;
          if s > !mx then mx := s
        done;
        Alcotest.(check bool)
          (Printf.sprintf "%s: shaped delta_min %d" label n)
          true
          Time.(Stream.delta_min shaped n <= Time.of_int !mn);
        Alcotest.(check bool)
          (Printf.sprintf "%s: shaped delta_plus %d" label n)
          true
          Time.(Time.of_int !mx <= Stream.delta_plus shaped n))
      [ 2; 3; 5; 10 ]
  done

(* ------------------------------------------------------------------ *)
(* negative control: the harness must be able to detect violations *)

let test_model_violation_detected () =
  (* drive S1 at four times its declared rate: the analytic bounds are
     computed for the declared model and must be exceeded somewhere,
     proving the conservativeness checks are not vacuous *)
  let spec = Scenarios.Paper_system.spec () in
  let hem = ok_a (Engine.analyse ~mode:Engine.Hierarchical spec) in
  let generators =
    [
      "S1", Gen.periodic ~period:60 ();  (* declared: 250 *)
      "S2", Gen.periodic ~period:450 ();
      "S3", Gen.periodic ~period:1000 ();
      "S4", Gen.periodic ~period:400 ();
    ]
  in
  let trace = ok (Simulator.run ~generators ~horizon:500_000 spec) in
  let exceeded =
    List.exists
      (fun name ->
        match Engine.response hem name, Trace.worst_response trace name with
        | Some bound, Some observed -> observed > Interval.hi bound
        | _ -> false)
      Scenarios.Paper_system.cpu_tasks
  in
  Alcotest.(check bool) "violation surfaces as exceeded bound" true exceeded

let () =
  Alcotest.run "sim_vs_analysis"
    [
      ( "paper system",
        [
          Alcotest.test_case "responses conservative" `Slow
            test_paper_responses_conservative;
          Alcotest.test_case "arrival curves conservative" `Slow
            test_paper_eta_conservative;
          Alcotest.test_case "flat baseline conservative" `Slow
            test_paper_flat_also_conservative;
          Alcotest.test_case "jittered sources" `Slow
            test_paper_jittery_sources_conservative;
        ] );
      ( "randomized",
        [
          Alcotest.test_case "hierarchical mode" `Slow
            test_random_systems_conservative;
          Alcotest.test_case "flat mode" `Slow test_random_flat_mode_conservative;
        ] );
      ( "other schedulers",
        [
          Alcotest.test_case "tdma" `Slow test_tdma_conservative;
          Alcotest.test_case "round robin" `Slow test_round_robin_conservative;
          Alcotest.test_case "edf" `Slow test_edf_conservative;
        ] );
      ( "topologies",
        [
          Alcotest.test_case "two-hop gateway" `Slow test_gateway_conservative;
          Alcotest.test_case "AND activation" `Slow
            test_and_activation_conservative;
          Alcotest.test_case "avionics full stack" `Slow
            test_avionics_full_stack_conservative;
        ] );
      ( "fuzzed",
        [
          Alcotest.test_case "distance bounds conservative" `Slow
            test_fuzzed_distances_conservative;
          Alcotest.test_case "shaped traces conservative" `Slow
            test_shaped_trace_conservative;
        ] );
      ( "negative control",
        [
          Alcotest.test_case "model violation detected" `Slow
            test_model_violation_detected;
        ] );
    ]
