(* Tests for the greedy minimum-distance shaper. *)

module Time = Timebase.Time
module Stream = Event_model.Stream
module Shaper = Event_model.Shaper

let time = Alcotest.testable Time.pp Time.equal

let test_no_delay_when_spaced () =
  (* a periodic stream already slower than the shaper passes unchanged *)
  let s = Stream.periodic ~name:"p" ~period:100 in
  Alcotest.check time "zero delay" Time.zero (Shaper.delay_bound ~d:50 s);
  let shaped = Shaper.enforce_min_distance ~d:50 s in
  for n = 2 to 6 do
    Alcotest.check time
      (Printf.sprintf "delta_min %d" n)
      (Stream.delta_min s n) (Stream.delta_min shaped n);
    Alcotest.check time
      (Printf.sprintf "delta_plus %d" n)
      (Stream.delta_plus s n) (Stream.delta_plus shaped n)
  done

let test_burst_delay () =
  (* bursts of 3 simultaneous events, every 1000: the third event waits
     2 * d behind the first *)
  let s = Stream.periodic_burst ~name:"b" ~period:1000 ~burst:3 ~d_min:0 in
  Alcotest.check time "delay = 2d" (Time.of_int 40) (Shaper.delay_bound ~d:20 s);
  let shaped = Shaper.enforce_min_distance ~d:20 s in
  Alcotest.check time "spacing enforced" (Time.of_int 20)
    (Stream.delta_min shaped 2);
  Alcotest.check time "delta_plus grows by delay" (Time.of_int 1040)
    (Stream.delta_plus shaped 4)

let test_overload_unbounded () =
  (* input rate above 1/d: the backlog never drains *)
  let s = Stream.periodic ~name:"fast" ~period:10 in
  Alcotest.check time "unbounded" Time.Inf (Shaper.delay_bound ~d:20 s)

let test_jitter_absorption () =
  let s = Stream.periodic_jitter ~name:"pj" ~period:100 ~jitter:150 ~d_min:0 () in
  (* worst burst: events at distance max(0, (q-1)*100 - 150); deficit for
     q=2: 10 - 0 = 10 (with d = 10); q=3: 20 - 50 < 0 *)
  Alcotest.check time "delay" (Time.of_int 10) (Shaper.delay_bound ~d:10 s)

(* Independent deficit computation: scan activation counts directly. *)
let naive_deficit ~d ~q_max s =
  let rec scan q worst =
    if q > q_max then worst
    else
      match Stream.delta_min s q with
      | Time.Inf -> worst
      | Time.Fin dist -> scan (q + 1) (Stdlib.max worst (((q - 1) * d) - dist))
  in
  scan 2 0

let test_period_equals_d_with_large_jitter () =
  (* Regression: long-run rate exactly 1/d with jitter far beyond the old
     heuristic's horizon slack used to be misclassified as unbounded.
     The backlog is bounded by the jitter and drains at rate parity. *)
  let s =
    Stream.periodic_jitter ~name:"pj" ~period:40 ~jitter:3000 ~d_min:0 ()
  in
  Alcotest.check time "finite delay = naive-scan deficit"
    (Time.of_int (naive_deficit ~d:40 ~q_max:500 s))
    (Shaper.delay_bound ~d:40 s);
  Alcotest.check time "delay equals the jitter backlog" (Time.of_int 3000)
    (Shaper.delay_bound ~d:40 s)

let test_over_rate_with_jitter_unbounded () =
  (* rate strictly above 1/d must stay unbounded no matter the jitter *)
  let s =
    Stream.periodic_jitter ~name:"fast" ~period:10 ~jitter:500 ~d_min:0 ()
  in
  Alcotest.check time "unbounded" Time.Inf (Shaper.delay_bound ~d:20 s)

let test_closure_backend_fallback () =
  (* the same period-equals-d case behind a closure backend (no periodic
     tail available) exercises the slope-estimate fallback *)
  let closure =
    Stream.make ~name:"cl"
      ~delta_min:(fun n -> Time.of_int (Stdlib.max 0 (((n - 1) * 40) - 3000)))
      ~delta_plus:(fun n -> Time.of_int (((n - 1) * 40) + 3000))
  in
  Alcotest.check time "finite via fallback" (Time.of_int 3000)
    (Shaper.delay_bound ~d:40 closure);
  let fast =
    Stream.make ~name:"clf"
      ~delta_min:(fun n -> Time.of_int ((n - 1) * 10))
      ~delta_plus:(fun n -> Time.of_int ((n - 1) * 10))
  in
  Alcotest.check time "over-rate closure unbounded" Time.Inf
    (Shaper.delay_bound ~d:20 fast)

let test_validation () =
  let s = Stream.periodic ~name:"p" ~period:10 in
  Alcotest.(check bool) "d < 1 rejected" true
    (match Shaper.enforce_min_distance ~d:0 s with
     | _ -> false
     | exception Invalid_argument _ -> true)

let test_default_name () =
  let s = Stream.periodic ~name:"p" ~period:100 in
  Alcotest.(check string) "name" "shaped(p,d=20)"
    (Stream.name (Shaper.enforce_min_distance ~d:20 s))

(* properties *)

let arb_stream =
  let open QCheck in
  map
    (fun (p, j) ->
      Stream.periodic_jitter ~name:"s" ~period:(Stdlib.max 20 p)
        ~jitter:(Stdlib.max 0 j) ~d_min:0 ())
    (pair (int_range 20 300) (int_range 0 500))

let prop_shaped_enforces_distance =
  QCheck.Test.make ~name:"shaped stream spaced at least d" ~count:80
    (QCheck.pair arb_stream (QCheck.int_range 1 19)) (fun (s, d) ->
      let d = Stdlib.max 1 d in
      let shaped = Shaper.enforce_min_distance ~d s in
      List.for_all
        (fun n ->
          Time.(Stream.delta_min shaped n >= Time.of_int ((n - 1) * d)))
        [ 2; 3; 5; 10 ])

let prop_shaped_keeps_input_spacing =
  QCheck.Test.make ~name:"shaping never tightens distances" ~count:80
    (QCheck.pair arb_stream (QCheck.int_range 1 19)) (fun (s, d) ->
      let d = Stdlib.max 1 d in
      let shaped = Shaper.enforce_min_distance ~d s in
      List.for_all
        (fun n -> Time.(Stream.delta_min shaped n >= Stream.delta_min s n))
        [ 2; 3; 5; 10 ])

let () =
  Alcotest.run "shaper"
    [
      ( "delay bound",
        [
          Alcotest.test_case "no delay when spaced" `Quick
            test_no_delay_when_spaced;
          Alcotest.test_case "burst delay" `Quick test_burst_delay;
          Alcotest.test_case "overload unbounded" `Quick test_overload_unbounded;
          Alcotest.test_case "jitter absorption" `Quick test_jitter_absorption;
          Alcotest.test_case "period = d, large jitter" `Quick
            test_period_equals_d_with_large_jitter;
          Alcotest.test_case "over-rate with jitter" `Quick
            test_over_rate_with_jitter_unbounded;
          Alcotest.test_case "closure-backend fallback" `Quick
            test_closure_backend_fallback;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "default name" `Quick test_default_name;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_shaped_enforces_distance; prop_shaped_keeps_input_spacing ] );
    ]
