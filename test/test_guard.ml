(* Resilience layer: guard tokens, deterministic fault injection, pool
   interruption, and graceful engine degradation.

   Every test that arms a fault resets the injection registry first and
   on exit, so cases stay independent. *)

module Interval = Timebase.Interval
module Engine = Cpa_system.Engine
module Spec = Cpa_system.Spec
module Report = Cpa_system.Report
module Sens = Cpa_system.Sensitivity
module Pool = Explore.Pool
module Driver = Explore.Driver
module Render = Explore.Render
module Space = Explore.Space
module Paper = Scenarios.Paper_system

let with_inject f =
  Guard.Inject.reset ();
  Fun.protect ~finally:Guard.Inject.reset f

let reason =
  Alcotest.testable
    (fun fmt e -> Format.pp_print_string fmt (Guard.Error.to_string e))
    (fun a b -> a = b)

let verdict =
  Alcotest.testable Sens.pp_verdict (fun a b -> a = b)

let paper_generators s3_period =
  [
    "S1", Des.Gen.periodic ~period:250 ();
    "S2", Des.Gen.periodic ~period:450 ();
    "S3", Des.Gen.periodic ~period:s3_period ();
    "S4", Des.Gen.periodic ~period:400 ();
  ]

(* ------------------------------------------------------------------ *)
(* guard tokens *)

let test_guard_tokens () =
  (* the inert token never trips *)
  Alcotest.(check bool) "none inactive" false (Guard.active Guard.none);
  Guard.spend Guard.none 1_000_000;
  Alcotest.(check (option reason)) "none clean" None (Guard.poll Guard.none);
  (* budget: trips exactly when the spend crosses the limit *)
  let g = Guard.create ~budget:3 () in
  Guard.spend g 2;
  Alcotest.(check (option reason)) "within budget" None (Guard.poll g);
  Alcotest.(check bool) "budget trips" true
    (match Guard.spend g 2 with
     | _ -> false
     | exception Guard.Error.Error (Guard.Error.Budget_exhausted _) -> true);
  (* sticky: a later cancellation does not change the reported reason *)
  Guard.cancel g;
  Alcotest.(check (option reason)) "sticky first trip"
    (Some (Guard.Error.Budget_exhausted { budget = 3 }))
    (Guard.poll g);
  (* cancellation *)
  let g = Guard.create () in
  Alcotest.(check (option reason)) "clean" None (Guard.poll g);
  Guard.cancel g;
  Alcotest.(check (option reason)) "cancelled" (Some Guard.Error.Cancelled)
    (Guard.poll g);
  (* deadline *)
  let g = Guard.create ~deadline_ms:0.0 () in
  Unix.sleepf 0.002;
  Alcotest.(check bool) "deadline trips" true
    (match Guard.poll g with
     | Some (Guard.Error.Deadline_exceeded _) -> true
     | _ -> false);
  (* exit-code table *)
  Alcotest.(check int) "cancelled code" 4
    (Guard.Error.exit_code Guard.Error.Cancelled);
  Alcotest.(check int) "deadline code" 3
    (Guard.Error.exit_code (Guard.Error.Deadline_exceeded { deadline_ms = 1.0 }));
  Alcotest.(check int) "budget code" 3
    (Guard.Error.exit_code (Guard.Error.Budget_exhausted { budget = 1 }));
  Alcotest.(check int) "diverged code" 3
    (Guard.Error.exit_code (Guard.Error.Diverged { iterations = 1 }));
  Alcotest.(check int) "cycle code" 1
    (Guard.Error.exit_code (Guard.Error.Cycle { element = "t" }))

let test_ambient_token () =
  let g = Guard.create ~budget:5 () in
  Alcotest.(check bool) "default ambient inert" false
    (Guard.active (Guard.ambient ()));
  Guard.with_ambient g (fun () ->
      Alcotest.(check bool) "installed" true (Guard.active (Guard.ambient ()));
      Guard.tick ~cost:2 ());
  Alcotest.(check bool) "restored" false (Guard.active (Guard.ambient ()));
  (* the tick above spent from [g] *)
  Alcotest.(check bool) "tick spent" true
    (match Guard.spend g 4 with
     | _ -> false
     | exception Guard.Error.Error (Guard.Error.Budget_exhausted _) -> true)

(* ------------------------------------------------------------------ *)
(* injection registry *)

let test_inject_registry () =
  with_inject @@ fun () ->
  Alcotest.(check bool) "initially unarmed" false (Guard.Inject.armed ());
  let hits = ref 0 in
  Guard.Inject.arm ~after:2 ~times:2 ~site:"x" (Guard.Inject.Act (fun () -> incr hits));
  Alcotest.(check bool) "armed" true (Guard.Inject.armed ());
  Guard.Inject.fire "y";
  Guard.Inject.fire "x";
  Alcotest.(check int) "first visit skipped" 0 !hits;
  Guard.Inject.fire "x";
  Guard.Inject.fire "x";
  Alcotest.(check int) "fired twice" 2 !hits;
  Alcotest.(check bool) "exhausted" false (Guard.Inject.armed ());
  Guard.Inject.fire "x";
  Alcotest.(check int) "inert afterwards" 2 !hits;
  Guard.Inject.arm ~site:"z" (Guard.Inject.Crash "boom");
  Guard.Inject.reset ();
  Alcotest.(check bool) "reset disarms" false (Guard.Inject.armed ());
  Guard.Inject.fire "z"

(* ------------------------------------------------------------------ *)
(* pool: spawn failure, worker crashes, interruption *)

let test_pool_spawn_failure_joins () =
  (* regression: a [Domain.spawn] failure mid-way must join the helpers
     already running instead of leaking them, then re-raise *)
  with_inject @@ fun () ->
  Guard.Inject.arm ~site:"t.spawn:2" (Guard.Inject.Crash "spawn dies");
  (* oversubscribe so helper 2 is spawned even on a 1-core machine *)
  Alcotest.(check bool) "spawn failure re-raised" true
    (match
       Pool.map_guarded ~jobs:4 ~oversubscribe:true ~label:"t" (fun i -> i) 64
     with
     | _ -> false
     | exception Failure m -> String.equal m "spawn dies");
  (* the pool is fully functional afterwards: nothing leaked, the queue
     was drained *)
  Alcotest.(check (list int)) "pool alive" [ 0; 1; 2; 3; 4 ]
    (Pool.map ~jobs:3 ~label:"t" (fun i -> i) 5)

let test_pool_worker_crash () =
  (* a crash on the claim path is a worker death: the survivors drain
     the queue and the crash surfaces after every domain is joined *)
  with_inject @@ fun () ->
  Guard.Inject.arm ~site:"t.item:3" (Guard.Inject.Crash "worker dies");
  Alcotest.(check bool) "crash surfaces" true
    (match Pool.map_guarded ~jobs:3 ~label:"t" (fun i -> i) 16 with
     | _ -> false
     | exception Failure m -> String.equal m "worker dies")

let test_pool_error_precedence () =
  (* the smallest-index item error beats a later worker crash, even when
     the crash kills its worker mid-queue *)
  with_inject @@ fun () ->
  Guard.Inject.arm ~site:"t.item:5" (Guard.Inject.Crash "worker dies");
  Alcotest.(check bool) "smallest index error wins" true
    (match
       Pool.map_guarded ~jobs:3 ~label:"t"
         (fun i -> if i = 2 then failwith "item 2 failed" else i)
         16
     with
     | _ -> false
     | exception Failure m -> String.equal m "item 2 failed")

let interrupted_prefix jobs =
  with_inject @@ fun () ->
  Guard.Inject.arm ~site:"t.item:7" (Guard.Inject.Trip Guard.Error.Cancelled);
  match Pool.map_guarded ~jobs ~label:"t" (fun i -> i * i) 24 with
  | Pool.Complete _, _ -> Alcotest.fail "expected interruption"
  | Pool.Interrupted { completed; reason = why; attempted }, _ ->
    Alcotest.check reason "cancelled" Guard.Error.Cancelled why;
    Alcotest.(check bool) "attempted covers prefix" true (attempted >= 7);
    completed

let test_pool_interrupted_prefix () =
  (* a cancelled map returns the deterministic completed prefix — all
     rows before the interruption point, none after — at any job count *)
  let serial = interrupted_prefix 1 in
  Alcotest.(check (list int)) "prefix is items 0..6"
    [ 0; 1; 4; 9; 16; 25; 36 ] serial;
  let parallel = interrupted_prefix 4 in
  Alcotest.(check (list int)) "jobs=4 identical to jobs=1" serial parallel

(* ------------------------------------------------------------------ *)
(* engine degradation *)

let all_outcomes_of result = result.Engine.outcomes

let widened_count result =
  match Engine.degradation result with
  | None -> 0
  | Some d -> List.length d.Engine.widened

let test_engine_cancellation () =
  (* a trip between iterations degrades the result instead of raising:
     structured reason, widened bounds, converged = false *)
  with_inject @@ fun () ->
  Guard.Inject.arm ~site:"engine.iteration:2"
    (Guard.Inject.Trip Guard.Error.Cancelled);
  match Engine.analyse ~mode:Engine.Hierarchical (Paper.spec ()) with
  | Error e -> Alcotest.failf "analyse: %s" (Guard.Error.to_string e)
  | Ok result ->
    Alcotest.(check bool) "not converged" false result.Engine.converged;
    (match Engine.degradation result with
     | None -> Alcotest.fail "expected degradation"
     | Some d ->
       Alcotest.check reason "cancelled" Guard.Error.Cancelled d.Engine.reason;
       Alcotest.(check int) "cut at iteration 2" 2 d.Engine.at_iteration;
       Alcotest.(check bool) "something widened" true (d.Engine.widened <> []));
    (* widened elements claim nothing; their outcome says why *)
    List.iter
      (fun (o : Engine.element_outcome) ->
        match o.outcome with
        | Scheduling.Busy_window.Bounded _ -> ()
        | Scheduling.Busy_window.Unbounded msg ->
          Alcotest.(check bool)
            (o.element ^ " tagged as degraded")
            true
            (String.length msg >= 8 && String.sub msg 0 8 = "degraded"))
      (all_outcomes_of result)

let test_engine_budget_degrades_soundly () =
  (* budget exhaustion inside the busy-window ticks: the degraded result
     keeps only bounds that equal the fully converged analysis (oracle
     check) and still dominates the simulator *)
  let spec = Paper.spec () in
  let full =
    match Engine.analyse ~mode:Engine.Hierarchical spec with
    | Ok r -> r
    | Error e -> Alcotest.failf "full analyse: %s" (Guard.Error.to_string e)
  in
  let activations = full.Engine.stats.Engine.busy.Scheduling.Busy_window.activations in
  let budget = Stdlib.max 1 (activations / 2) in
  let guard = Guard.create ~budget () in
  match Engine.analyse ~mode:Engine.Hierarchical ~guard spec with
  | Error e -> Alcotest.failf "guarded analyse: %s" (Guard.Error.to_string e)
  | Ok degraded ->
    (match Engine.degradation degraded with
     | Some d ->
       Alcotest.check reason "budget reason"
         (Guard.Error.Budget_exhausted { budget })
         d.Engine.reason
     | None -> Alcotest.fail "expected budget degradation");
    let sound = Verify.Oracle.degradation_soundness ~reference:full degraded in
    Alcotest.(check bool) ("retained bounds final: " ^ sound.Verify.Oracle.detail)
      true sound.Verify.Oracle.ok;
    List.iter
      (fun (c : Verify.Oracle.check) ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: %s" c.Verify.Oracle.name c.Verify.Oracle.detail)
          true c.Verify.Oracle.ok)
      (Verify.Oracle.simulation_dominance ~horizon:100_000
         ~generators:(paper_generators Paper.s3_period)
         ~tag:"degraded" degraded spec)

let test_engine_deadline_all_widened () =
  (* a deadline that expires before the first iteration completes widens
     every bound: the engine claims nothing it cannot guarantee *)
  let guard = Guard.create ~deadline_ms:0.0 () in
  Unix.sleepf 0.002;
  match Engine.analyse ~mode:Engine.Hierarchical ~guard (Paper.spec ()) with
  | Error e -> Alcotest.failf "analyse: %s" (Guard.Error.to_string e)
  | Ok result ->
    (match Engine.degradation result with
     | Some d ->
       Alcotest.(check bool) "deadline reason" true
         (match d.Engine.reason with
          | Guard.Error.Deadline_exceeded _ -> true
          | _ -> false)
     | None -> Alcotest.fail "expected deadline degradation");
    Alcotest.(check bool) "all bounds widened" true
      (List.for_all
         (fun (o : Engine.element_outcome) ->
           match o.outcome with
           | Scheduling.Busy_window.Unbounded _ -> true
           | Scheduling.Busy_window.Bounded _ -> false)
         (all_outcomes_of result));
    Alcotest.(check int) "every element in the widened list"
      (List.length (all_outcomes_of result))
      (widened_count result)

let test_engine_divergence_is_degraded () =
  (* hitting max_iterations is a structured degradation, not a silent
     [converged = false] *)
  match Engine.analyse ~mode:Engine.Hierarchical ~max_iterations:1 (Paper.spec ()) with
  | Error e -> Alcotest.failf "analyse: %s" (Guard.Error.to_string e)
  | Ok result ->
    Alcotest.(check bool) "not converged" false result.Engine.converged;
    (match Engine.degradation result with
     | Some d ->
       Alcotest.check reason "diverged"
         (Guard.Error.Diverged { iterations = 1 })
         d.Engine.reason
     | None -> Alcotest.fail "expected divergence degradation");
    (* ...and the report shouts about it *)
    let rendered = Format.asprintf "%a" Report.print_outcomes result in
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec scan i =
        i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1))
      in
      scan 0
    in
    Alcotest.(check bool) "report mentions DEGRADED" true
      (contains rendered "DEGRADED")

(* ------------------------------------------------------------------ *)
(* driver: interrupted sweeps stay deterministic *)

let driver_interrupted_report jobs =
  with_inject @@ fun () ->
  Guard.Inject.arm ~site:"explore.item:7"
    (Guard.Inject.Trip (Guard.Error.Deadline_exceeded { deadline_ms = 1.0 }));
  let base () = Paper.spec () in
  let axis =
    Space.int_axis "S1.period"
      (fun period -> Space.Source_period { source = "S1"; period })
      [ 238; 240; 242; 244; 246; 248; 250; 252; 254; 256; 258; 260 ]
  in
  let items = Driver.items_of_variants ~base (Space.grid [ axis ]) in
  Driver.run ~jobs ~modes:[ Engine.Hierarchical ] items

let test_driver_interrupted_deterministic () =
  let serial = driver_interrupted_report 1 in
  Alcotest.(check int) "prefix rows" 7 (List.length serial.Driver.rows);
  Alcotest.(check (option reason)) "carries the reason"
    (Some (Guard.Error.Deadline_exceeded { deadline_ms = 1.0 }))
    serial.Driver.interrupted;
  let parallel = driver_interrupted_report 4 in
  let render r = Format.asprintf "%a" Render.csv r in
  Alcotest.(check string) "csv byte-identical jobs 1 vs 4" (render serial)
    (render parallel);
  let render_json r = Format.asprintf "%a" Render.json r in
  Alcotest.(check string) "json byte-identical jobs 1 vs 4"
    (render_json serial) (render_json parallel)

(* ------------------------------------------------------------------ *)
(* sensitivity: degenerate intervals get structured verdicts *)

let test_search_degenerate_serial () =
  Alcotest.check verdict "empty interval"
    (Sens.Empty_interval { lo = 5; hi = 3 })
    (Sens.search_max ~lo:5 ~hi:3 (fun _ -> true));
  Alcotest.check verdict "both infeasible" Sens.No_margin
    (Sens.search_max ~lo:0 ~hi:10 (fun _ -> false));
  Alcotest.check verdict "both feasible" (Sens.Margin 10)
    (Sens.search_max ~lo:0 ~hi:10 (fun _ -> true));
  Alcotest.check verdict "non-monotone endpoints"
    (Sens.Non_monotone { lo_feasible = false; hi_feasible = true })
    (Sens.search_max ~lo:0 ~hi:10 (fun x -> x >= 5));
  Alcotest.check verdict "regular bisection" (Sens.Margin 7)
    (Sens.search_max ~lo:0 ~hi:10 (fun x -> x <= 7));
  Alcotest.check verdict "single point feasible" (Sens.Margin 4)
    (Sens.search_max ~lo:4 ~hi:4 (fun _ -> true));
  (* the min-side search mirrors the same verdicts *)
  Alcotest.check verdict "min: both infeasible" Sens.No_margin
    (Sens.search_min ~lo:0 ~hi:10 (fun _ -> false));
  Alcotest.check verdict "min: regular" (Sens.Margin 3)
    (Sens.search_min ~lo:0 ~hi:10 (fun x -> x >= 3));
  Alcotest.check verdict "min: non-monotone"
    (Sens.Non_monotone { lo_feasible = true; hi_feasible = false })
    (Sens.search_min ~lo:0 ~hi:10 (fun x -> x <= 5))

let test_search_degenerate_parallel () =
  (* the pool-parallel multisection returns the same structured verdicts *)
  List.iter
    (fun jobs ->
      let tag s = Printf.sprintf "jobs=%d: %s" jobs s in
      Alcotest.check verdict (tag "empty interval")
        (Sens.Empty_interval { lo = 9; hi = 2 })
        (Explore.Sensitivity.multisect_max ~jobs ~label:"t" ~lo:9 ~hi:2
           (fun _ -> true));
      Alcotest.check verdict (tag "both infeasible") Sens.No_margin
        (Explore.Sensitivity.multisect_max ~jobs ~label:"t" ~lo:0 ~hi:10
           (fun _ -> false));
      Alcotest.check verdict (tag "non-monotone")
        (Sens.Non_monotone { lo_feasible = false; hi_feasible = true })
        (Explore.Sensitivity.multisect_max ~jobs ~label:"t" ~lo:0 ~hi:10
           (fun x -> x >= 5));
      Alcotest.check verdict (tag "regular") (Sens.Margin 7)
        (Explore.Sensitivity.multisect_max ~jobs ~label:"t" ~lo:0 ~hi:10
           (fun x -> x <= 7)))
    [ 1; 3 ]

let test_sensitivity_overloaded_no_margin () =
  (* a system infeasible even at 100 % CET reports a structured
     [No_margin], serial and parallel alike *)
  let build () =
    Spec.make
      ~resources:[ { Spec.res_name = "cpu"; scheduler = Spec.Spp; backend = Spec.Cpa } ]
      ~sources:[ "src", Event_model.Stream.periodic ~name:"src" ~period:5 ]
      ~tasks:
        [
          Spec.task ~name:"hog" ~resource:"cpu" ~cet:(Interval.point 10)
            ~priority:1 ~activation:(Spec.From_source "src") ();
        ]
      ()
  in
  Alcotest.check verdict "serial" Sens.No_margin
    (Sens.max_cet_scale_verdict (build ()) ~task:"hog");
  Alcotest.check verdict "parallel" Sens.No_margin
    (Explore.Sensitivity.max_cet_scale_verdict ~jobs:2 ~build ~task:"hog" ())

let () =
  Alcotest.run "guard"
    [
      ( "tokens",
        [
          Alcotest.test_case "basics" `Quick test_guard_tokens;
          Alcotest.test_case "ambient" `Quick test_ambient_token;
          Alcotest.test_case "inject registry" `Quick test_inject_registry;
        ] );
      ( "pool",
        [
          Alcotest.test_case "spawn failure joins" `Quick
            test_pool_spawn_failure_joins;
          Alcotest.test_case "worker crash" `Quick test_pool_worker_crash;
          Alcotest.test_case "error precedence" `Quick
            test_pool_error_precedence;
          Alcotest.test_case "interrupted prefix" `Quick
            test_pool_interrupted_prefix;
        ] );
      ( "engine",
        [
          Alcotest.test_case "cancellation degrades" `Quick
            test_engine_cancellation;
          Alcotest.test_case "budget degrades soundly" `Quick
            test_engine_budget_degrades_soundly;
          Alcotest.test_case "deadline widens everything" `Quick
            test_engine_deadline_all_widened;
          Alcotest.test_case "divergence is degraded" `Quick
            test_engine_divergence_is_degraded;
        ] );
      ( "driver",
        [
          Alcotest.test_case "interrupted sweep deterministic" `Quick
            test_driver_interrupted_deterministic;
        ] );
      ( "sensitivity",
        [
          Alcotest.test_case "degenerate serial" `Quick
            test_search_degenerate_serial;
          Alcotest.test_case "degenerate parallel" `Quick
            test_search_degenerate_parallel;
          Alcotest.test_case "overloaded no margin" `Quick
            test_sensitivity_overloaded_no_margin;
        ] );
    ]
