(* Tests for the design-space exploration subsystem: pool determinism
   and error propagation, single-flight cache statistics, content
   digests, layout enumeration, repack validity, driver determinism
   across job counts, and Pareto fronts. *)

module Interval = Timebase.Interval
module Spec = Cpa_system.Spec
module Engine = Cpa_system.Engine
module Pool = Explore.Pool
module Cache = Explore.Cache
module Space = Explore.Space
module Summary = Explore.Summary
module Driver = Explore.Driver
module Paper = Scenarios.Paper_system

(* ------------------------------------------------------------------ *)
(* Pool *)

let test_pool_order () =
  let expected = List.init 20 (fun i -> i * i) in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d" jobs)
        expected
        (Pool.map ~jobs (fun i -> i * i) 20))
    [ 1; 2; 4; 7 ]

let test_pool_empty () =
  Alcotest.(check (list int)) "n=0" [] (Pool.map ~jobs:3 (fun i -> i) 0)

let test_pool_smallest_error () =
  (* several indices fail; the re-raised exception is always the one of
     the smallest failing index, independent of scheduling *)
  for _ = 1 to 5 do
    match
      Pool.map ~jobs:4
        (fun i -> if i = 5 || i = 11 || i = 17 then failwith (string_of_int i))
        20
    with
    | _ -> Alcotest.fail "expected failure"
    | exception Failure msg -> Alcotest.(check string) "smallest index" "5" msg
  done

let test_pool_invalid () =
  let raises f =
    match f () with exception Invalid_argument _ -> true | _ -> false
  in
  Alcotest.(check bool) "jobs=0" true
    (raises (fun () -> Pool.map ~jobs:0 (fun i -> i) 3));
  Alcotest.(check bool) "n<0" true
    (raises (fun () -> Pool.map ~jobs:1 (fun i -> i) (-1)))

let test_pool_chunked_determinism () =
  (* the unguarded (chunked, work-stealing) scheduler must be a pure
     function of [f]: byte-identical output at every jobs count, with
     real extra domains forced via oversubscription so stealing is
     actually exercised on a small machine *)
  let f i = Printf.sprintf "item-%d:%d" i (i * i) in
  let n = 200 in
  let serial = Marshal.to_string (Pool.map ~jobs:1 f n) [] in
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "bytes identical at jobs=%d" jobs)
        serial
        (Marshal.to_string (Pool.map ~jobs ~oversubscribe:true f n) []))
    [ 1; 2; 4 ]

let test_pool_chunked_smallest_error () =
  (* chunking must not change which exception surfaces: still the
     smallest failing index, even with parallel domains racing *)
  for _ = 1 to 5 do
    match
      Pool.map ~jobs:4 ~oversubscribe:true
        (fun i -> if i mod 7 = 3 then failwith (string_of_int i) else i)
        100
    with
    | _ -> Alcotest.fail "expected failure"
    | exception Failure msg -> Alcotest.(check string) "smallest index" "3" msg
  done

let test_pool_guarded_prefix_jobs_independent () =
  (* a guarded map falls back to per-item ascending claims, so a
     complete run is identical across jobs counts and oversubscription,
     and a budget-tripped run still returns a contiguous prefix *)
  let guard () = Guard.create ~budget:1_000_000 () in
  let expected = List.init 50 (fun i -> i * 3) in
  List.iter
    (fun (jobs, oversubscribe) ->
      match
        Pool.map_guarded ~jobs ~oversubscribe ~guard:(guard ())
          (fun i -> i * 3)
          50
      with
      | Pool.Complete vs, _ ->
        Alcotest.(check (list int))
          (Printf.sprintf "complete at jobs=%d" jobs)
          expected vs
      | Pool.Interrupted _, _ -> Alcotest.fail "guard should not trip")
    [ (1, false); (2, true); (4, true) ]

let test_pool_stats () =
  (* one stat per *effective* worker: the pool clamps the requested jobs
     to the machine's cores unless oversubscription is forced *)
  let results, stats = Pool.map_stats ~jobs:3 (fun i -> i + 1) 10 in
  Alcotest.(check (list int)) "results" (List.init 10 (fun i -> i + 1)) results;
  Alcotest.(check int) "workers" (Pool.effective_jobs 3) (List.length stats);
  Alcotest.(check int) "tasks add up" 10
    (List.fold_left (fun acc (w : Pool.worker_stat) -> acc + w.tasks) 0 stats);
  let results, stats =
    Pool.map_stats ~jobs:3 ~oversubscribe:true (fun i -> i + 1) 10
  in
  Alcotest.(check (list int)) "results (oversubscribed)"
    (List.init 10 (fun i -> i + 1))
    results;
  Alcotest.(check int) "workers (oversubscribed)" 3 (List.length stats);
  Alcotest.(check int) "tasks add up (oversubscribed)" 10
    (List.fold_left (fun acc (w : Pool.worker_stat) -> acc + w.tasks) 0 stats)

let test_pool_counter_consistency () =
  (* counter bumps from worker domains go through one process-global
     atomic per counter, so the chunked work-stealing scheduler must
     lose no updates: totals are exact and schedule-independent at any
     jobs count, including forced oversubscription (real stealing) *)
  let c = Obs.Metrics.counter "test.explore.counted" in
  let c_tasks = Obs.Metrics.counter "explore.pool.tasks" in
  let n = 500 in
  List.iter
    (fun jobs ->
      let before = Obs.Metrics.total c in
      let tasks_before = Obs.Metrics.total c_tasks in
      let results =
        Pool.map ~jobs ~oversubscribe:true
          (fun i ->
            Obs.Metrics.add c 3;
            i * 2)
          n
      in
      Alcotest.(check (list int))
        (Printf.sprintf "results at jobs=%d" jobs)
        (List.init n (fun i -> i * 2))
        results;
      Alcotest.(check int)
        (Printf.sprintf "no lost user increments at jobs=%d" jobs)
        (3 * n)
        (Obs.Metrics.total c - before);
      Alcotest.(check int)
        (Printf.sprintf "one task bump per item at jobs=%d" jobs)
        n
        (Obs.Metrics.total c_tasks - tasks_before))
    [ 1; 2; 4; 7 ]

let test_pool_hist_merge () =
  (* per-worker latency histograms are domain-private and merged after
     the join: the registered distribution gains exactly one sample per
     task, at any jobs count *)
  let h = Obs.Hist.hist "explore.pool.task_ns" in
  Obs.Hist.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Hist.set_enabled false;
      Obs.Hist.clear h)
    (fun () ->
      List.iter
        (fun jobs ->
          let before = Obs.Hist.count h in
          ignore (Pool.map ~jobs ~oversubscribe:true (fun i -> i + 1) 100);
          Alcotest.(check int)
            (Printf.sprintf "one sample per task at jobs=%d" jobs)
            100
            (Obs.Hist.count h - before))
        [ 1; 3 ])

(* ------------------------------------------------------------------ *)
(* Cache *)

let test_cache_single_flight () =
  (* 40 lookups of 10 distinct keys from 4 domains: each key is computed
     exactly once and the statistics are schedule-independent *)
  let cache = Cache.create () in
  let computes = Atomic.make 0 in
  let results =
    Pool.map ~jobs:4
      (fun i ->
        let key = Printf.sprintf "k%d" (i mod 10) in
        let v, _hit =
          Cache.find_or_compute cache ~key (fun () ->
              Atomic.incr computes;
              (i mod 10) * 7)
        in
        v)
      40
  in
  Alcotest.(check (list int)) "values"
    (List.init 40 (fun i -> i mod 10 * 7))
    results;
  Alcotest.(check int) "computed once per key" 10 (Atomic.get computes);
  let stats = Cache.stats cache in
  Alcotest.(check int) "lookups" 40 stats.Cache.lookups;
  Alcotest.(check int) "entries" 10 stats.Cache.entries;
  Alcotest.(check int) "hits = lookups - entries" 30 stats.Cache.hits

let test_cache_failed_compute_retries () =
  let cache = Cache.create () in
  (match Cache.find_or_compute cache ~key:"k" (fun () -> failwith "boom") with
  | _ -> Alcotest.fail "expected failure"
  | exception Failure _ -> ());
  (* the failed claim is released: a later lookup recomputes *)
  let v, hit = Cache.find_or_compute cache ~key:"k" (fun () -> 42) in
  Alcotest.(check int) "recomputed" 42 v;
  Alcotest.(check bool) "not a hit" false hit

(* ------------------------------------------------------------------ *)
(* Spec digests *)

let test_digest_reorder_invariant () =
  let spec = Paper.spec () in
  let permuted =
    {
      spec with
      Spec.sources = List.rev spec.Spec.sources;
      resources = List.rev spec.Spec.resources;
      tasks = List.rev spec.Spec.tasks;
      frames = List.rev spec.Spec.frames;
    }
  in
  Alcotest.(check string) "element order is canonicalised away"
    (Spec.digest spec) (Spec.digest permuted)

let test_digest_edit_sensitive () =
  let base = Spec.digest (Paper.spec ()) in
  let edited edit = Spec.digest (Space.apply (Paper.spec ()) edit) in
  Alcotest.(check bool) "cet edit changes digest" true
    (base <> edited (Space.Cet_scale { task = "T3"; percent = 101 }));
  Alcotest.(check bool) "period edit changes digest" true
    (base <> edited (Space.Source_period { source = "S3"; period = 999 }));
  Alcotest.(check bool) "priority edit changes digest" true
    (base <> edited (Space.Task_priority { task = "T3"; priority = 9 }));
  Alcotest.(check string) "identity cet scale preserves digest" base
    (edited (Space.Cet_scale { task = "T3"; percent = 100 }))

let test_digest_collision_on_rounding () =
  (* ceil(40 * 101 / 100) = ceil(40 * 102 / 100) = 41: different edits,
     same system, same digest — the driver's dedup hinges on this *)
  let d percent =
    Spec.digest (Space.apply (Paper.spec ()) (Space.Cet_scale { task = "T3"; percent }))
  in
  Alcotest.(check string) "101% = 102% after rounding" (d 101) (d 102)

let test_digest_stable_across_rebuilds () =
  Alcotest.(check string) "fresh builds agree"
    (Spec.digest (Paper.spec ()))
    (Spec.digest (Paper.spec ()))

(* ------------------------------------------------------------------ *)
(* Layout enumeration and repacking *)

let test_packings_bell_count () =
  (* 4 signals on the CAN bus: Bell(4) = 15 partitions, all of which fit *)
  let packings = Space.packings (Paper.spec ()) ~bus:"CAN" () in
  Alcotest.(check int) "Bell(4)" 15 (List.length packings);
  let limited = Space.packings ~max_frames:2 (Paper.spec ()) ~bus:"CAN" () in
  (* S(4,1) + S(4,2) = 1 + 7 *)
  Alcotest.(check int) "at most 2 frames" 8 (List.length limited)

let test_repack_specs_validate () =
  List.iter
    (fun (v : Space.variant) ->
      let spec = Space.apply_all (Paper.spec ()) v.Space.edits in
      match Spec.validate spec with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: invalid spec: %s" v.Space.label e)
    (Space.packing_variants (Paper.spec ()) ~bus:"CAN" ())

let test_repack_analysable () =
  (* every enumerated layout of the paper bus analyses to bounded
     responses for the receiver tasks *)
  List.iter
    (fun (v : Space.variant) ->
      let spec = Space.apply_all (Paper.spec ()) v.Space.edits in
      match Engine.analyse ~mode:Engine.Hierarchical spec with
      | Error e ->
        Alcotest.failf "%s: %s" v.Space.label (Guard.Error.to_string e)
      | Ok result ->
        Alcotest.(check bool) (v.Space.label ^ " converged") true
          result.Engine.converged)
    (Space.packing_variants (Paper.spec ()) ~bus:"CAN" ())

let test_grid_cross_product () =
  let grid =
    Space.grid
      [
        Space.int_axis "a"
          (fun p -> Space.Source_period { source = "S3"; period = p })
          [ 1; 2; 3 ];
        Space.int_axis "b"
          (fun p -> Space.Cet_scale { task = "T3"; percent = p })
          [ 10; 20 ];
      ]
  in
  Alcotest.(check int) "3 x 2" 6 (List.length grid);
  Alcotest.(check string) "first label" "a=1 b=10"
    (List.hd grid).Space.label;
  Alcotest.(check int) "edits per variant" 2
    (List.length (List.hd grid).Space.edits)

(* ------------------------------------------------------------------ *)
(* Driver *)

let small_items () =
  Driver.items_of_variants
    ~base:(fun () -> Paper.spec ())
    (Space.grid
       [
         Space.int_axis "s3"
           (fun p -> Space.Source_period { source = "S3"; period = p })
           [ 800; 1000 ];
         Space.int_axis "cet"
           (fun p -> Space.Cet_scale { task = "T3"; percent = p })
           [ 100; 101; 102 ];
       ])

let render_csv report =
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  Explore.Render.csv fmt report;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let test_driver_jobs_independent () =
  let baseline = Driver.run ~jobs:1 (small_items ()) in
  List.iter
    (fun jobs ->
      let report = Driver.run ~jobs (small_items ()) in
      Alcotest.(check string)
        (Printf.sprintf "csv identical at jobs=%d" jobs)
        (render_csv baseline) (render_csv report);
      Alcotest.(check int) "hits" baseline.Driver.cache.Cache.hits
        report.Driver.cache.Cache.hits;
      Alcotest.(check int) "entries" baseline.Driver.cache.Cache.entries
        report.Driver.cache.Cache.entries)
    [ 2; 4 ]

let test_driver_cache_hits_normalised () =
  (* cet 101 and 102 collide after rounding: the first occurrence in item
     order is the miss, the later one the hit — at any job count *)
  List.iter
    (fun jobs ->
      let report = Driver.run ~jobs (small_items ()) in
      let flags =
        List.map (fun (r : Driver.row) -> r.Driver.cache_hit) report.Driver.rows
      in
      Alcotest.(check (list bool))
        (Printf.sprintf "dup flags at jobs=%d" jobs)
        [ false; false; true; false; false; true ]
        flags;
      Alcotest.(check int) "entries" 4 report.Driver.cache.Cache.entries;
      Alcotest.(check int) "hits" 2 report.Driver.cache.Cache.hits)
    [ 1; 3 ]

let test_driver_error_rows () =
  (* a variant with an unknown edit target escapes as an exception (a
     programming error, not an analysis outcome) *)
  let items =
    Driver.items_of_variants
      ~base:(fun () -> Paper.spec ())
      [ { Space.label = "bad"; edits = [ Space.Cet_scale { task = "nope"; percent = 120 } ] } ]
  in
  match Driver.run ~jobs:2 items with
  | _ -> Alcotest.fail "expected Not_found"
  | exception Not_found -> ()

(* ------------------------------------------------------------------ *)
(* Synthetic network generator (feeds the scaling benchmark) *)

let test_network_generator () =
  List.iter
    (fun (seed, ecus) ->
      let spec = Scenarios.Synthetic.network ~seed ~ecus () in
      (match Spec.validate spec with
       | Ok () -> ()
       | Error e -> Alcotest.failf "seed=%d ecus=%d invalid: %s" seed ecus e);
      (match Engine.analyse ~mode:Engine.Hierarchical spec with
       | Ok r ->
         Alcotest.(check bool)
           (Printf.sprintf "seed=%d ecus=%d converges" seed ecus)
           true r.Engine.converged
       | Error e ->
         Alcotest.failf "seed=%d ecus=%d: %s" seed ecus
           (Guard.Error.to_string e));
      (* equal arguments must yield digest-identical specs: the scaling
         benchmark's byte-identical-across-jobs assertion rests on it *)
      Alcotest.(check string)
        (Printf.sprintf "seed=%d ecus=%d deterministic" seed ecus)
        (Spec.digest (Scenarios.Synthetic.network ~seed ~ecus ()))
        (Spec.digest (Scenarios.Synthetic.network ~seed ~ecus ())))
    [ (1, 1); (1, 2); (1, 8); (2, 8); (3, 16); (7, 5) ];
  Alcotest.(check bool) "seeds differ" true
    (Spec.digest (Scenarios.Synthetic.network ~seed:1 ~ecus:8 ())
     <> Spec.digest (Scenarios.Synthetic.network ~seed:2 ~ecus:8 ()))

(* ------------------------------------------------------------------ *)
(* Pareto *)

let mk_summary ?(digest = "d") triples =
  {
    Summary.digest;
    modes =
      [
        {
          Summary.mode = Engine.Hierarchical;
          metrics =
            (let latency, util, margin = triples in
             {
               Summary.converged = true;
               degraded = false;
               worst_latency = Some latency;
               max_util_pct = util;
               margin_pct = margin;
               iterations = 1;
             });
          responses = [];
        };
      ];
  }

let test_pareto_front () =
  let summaries =
    [
      mk_summary (100, 50.0, 50.0);
      (* dominated by the first on every objective *)
      mk_summary (120, 60.0, 40.0);
      (* trades latency for load: incomparable, stays *)
      mk_summary (80, 70.0, 30.0);
      (* duplicate of the first: kept, front is order-independent *)
      mk_summary (100, 50.0, 50.0);
    ]
  in
  Alcotest.(check (list int)) "front indices" [ 0; 2; 3 ]
    (Summary.pareto ~mode:Engine.Hierarchical summaries)

let test_pareto_ignores_unbounded () =
  let diverged =
    {
      Summary.digest = "x";
      modes =
        [
          {
            Summary.mode = Engine.Hierarchical;
            metrics =
              {
                Summary.converged = false;
                degraded = false;
                worst_latency = None;
                max_util_pct = 0.0;
                margin_pct = 100.0;
                iterations = 1;
              };
            responses = [];
          };
        ];
    }
  in
  Alcotest.(check (list int)) "diverged never on the front" [ 1 ]
    (Summary.pareto ~mode:Engine.Hierarchical
       [ diverged; mk_summary (100, 50.0, 50.0) ])

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "explore"
    [
      ( "pool",
        [
          Alcotest.test_case "index order at any job count" `Quick
            test_pool_order;
          Alcotest.test_case "empty work list" `Quick test_pool_empty;
          Alcotest.test_case "smallest-index error wins" `Quick
            test_pool_smallest_error;
          Alcotest.test_case "invalid arguments" `Quick test_pool_invalid;
          Alcotest.test_case "worker stats" `Quick test_pool_stats;
          Alcotest.test_case "chunked scheduler deterministic" `Quick
            test_pool_chunked_determinism;
          Alcotest.test_case "chunked smallest-index error" `Quick
            test_pool_chunked_smallest_error;
          Alcotest.test_case "guarded prefix jobs-independent" `Quick
            test_pool_guarded_prefix_jobs_independent;
          Alcotest.test_case "multi-domain counter consistency" `Quick
            test_pool_counter_consistency;
          Alcotest.test_case "worker histograms merge exactly" `Quick
            test_pool_hist_merge;
        ] );
      ( "cache",
        [
          Alcotest.test_case "single-flight stats" `Quick
            test_cache_single_flight;
          Alcotest.test_case "failed compute releases claim" `Quick
            test_cache_failed_compute_retries;
        ] );
      ( "digest",
        [
          Alcotest.test_case "reorder invariant" `Quick
            test_digest_reorder_invariant;
          Alcotest.test_case "edit sensitive" `Quick test_digest_edit_sensitive;
          Alcotest.test_case "rounding collision" `Quick
            test_digest_collision_on_rounding;
          Alcotest.test_case "stable across rebuilds" `Quick
            test_digest_stable_across_rebuilds;
        ] );
      ( "space",
        [
          Alcotest.test_case "Bell(4) layouts" `Quick test_packings_bell_count;
          Alcotest.test_case "repacked specs validate" `Quick
            test_repack_specs_validate;
          Alcotest.test_case "repacked specs analyse" `Quick
            test_repack_analysable;
          Alcotest.test_case "grid cross product" `Quick
            test_grid_cross_product;
        ] );
      ( "driver",
        [
          Alcotest.test_case "jobs-independent rows" `Quick
            test_driver_jobs_independent;
          Alcotest.test_case "normalised cache hits" `Quick
            test_driver_cache_hits_normalised;
          Alcotest.test_case "unknown target raises" `Quick
            test_driver_error_rows;
        ] );
      ( "synthetic",
        [
          Alcotest.test_case "network generator" `Quick test_network_generator;
        ] );
      ( "pareto",
        [
          Alcotest.test_case "front" `Quick test_pareto_front;
          Alcotest.test_case "unbounded excluded" `Quick
            test_pareto_ignores_unbounded;
        ] );
    ]
