(* Experiment harness: regenerates every table and figure of the paper's
   evaluation (section 6) plus the ablation and scaling experiments listed
   in DESIGN.md, and runs Bechamel micro-benchmarks of the analysis.

   Usage:
     dune exec bench/main.exe            # all tables, figures, ablations
     dune exec bench/main.exe -- table3  # a single experiment
     dune exec bench/main.exe -- perf    # Bechamel timing benches
     dune exec bench/main.exe -- explore # domain-pool scaling (BENCH_3.json)
     dune exec bench/main.exe -- scale   # kernel A/B + pool scaling (BENCH_6.json)
     dune exec bench/main.exe -- serve   # warm-session daemon storm (BENCH_serve.json)
     dune exec bench/main.exe -- propagation # per-mode tightness table (BENCH_9.json)
     dune exec bench/main.exe -- hybrid  # rtc/cpa/mixed backend table (BENCH_10.json)
   Experiments: tables table3 figure4 ablation-pending ablation-k scaling
   convergence baseline-models buffers cross-framework robustness validate
   perf explore scale serve propagation hybrid
   (perf, explore, scale, serve, propagation and hybrid are
   timing/guarded runs, excluded from the no-argument sweep) *)

module Time = Timebase.Time
module Count = Timebase.Count
module Interval = Timebase.Interval
module Stream = Event_model.Stream
module Spec = Cpa_system.Spec
module Engine = Cpa_system.Engine
module Report = Cpa_system.Report
module Paper = Scenarios.Paper_system

let banner title =
  Printf.printf "\n=== %s ===\n" title

let ok = function
  | Ok v -> v
  | Error e ->
    Printf.eprintf "analysis failed: %s\n" (Guard.Error.to_string e);
    exit 1

let analyse_paper mode = ok (Engine.analyse ~mode (Paper.spec ()))

(* Telemetry section of the BENCH_*.json files: run [f] once with
   latency histograms on (untimed, so the measured loops above stay
   comparable across revisions), then snapshot counters + histograms.
   The snapshot JSON ends in a newline and is pretty-printed for a
   2-space indent; re-indent so it nests as a top-level "metrics" key. *)
let metrics_json ~warm =
  Obs.Hist.clear_all ();
  Obs.Hist.set_enabled true;
  warm ();
  Obs.Hist.set_enabled false;
  let raw = String.trim (Obs.Snapshot.to_json (Obs.Snapshot.capture ())) in
  String.concat "\n  " (String.split_on_char '\n' raw)

(* ------------------------------------------------------------------ *)
(* E1/E2: Tables 1 and 2 — system parameters and bus analysis          *)

let tables () =
  banner "Table 1: Sources";
  Printf.printf "%-8s %-8s %s\n" "Source" "Period" "Type";
  List.iter
    (fun (name, period, kind) -> Printf.printf "%-8s %-8d %s\n" name period kind)
    [
      "S1", 250, "triggering";
      "S2", 450, "triggering";
      "S3", Paper.s3_period, "pending (period assumed, see DESIGN.md)";
      "S4", 400, "triggering";
    ];
  banner "Table 2: Bus (CAN - scheduled)";
  Printf.printf "%-8s %-14s %s\n" "Frame" "Payload size" "Priority";
  Printf.printf "%-8s %-14s %s\n" "F1" "[4:4]" "High";
  Printf.printf "%-8s %-14s %s\n" "F2" "[2:2]" "Low";
  let hem = analyse_paper Engine.Hierarchical in
  Printf.printf "\nDerived bus responses (both analysis modes agree):\n";
  List.iter
    (fun frame ->
      match Engine.response hem frame with
      | Some r -> Printf.printf "  %-4s R = %s\n" frame (Interval.to_string r)
      | None -> Printf.printf "  %-4s unbounded\n" frame)
    Paper.frames

(* ------------------------------------------------------------------ *)
(* E3: Table 3 — CPU worst-case response times, flat vs hierarchical   *)

let table3 () =
  banner "Table 3: CPU (SPP - scheduled), WCRT flat vs hierarchical";
  let flat, hem = ok (Paper.analyse_both ()) in
  Printf.printf "%-6s %-8s %-6s %10s %10s %8s\n" "Task" "CET" "Prio"
    "R+ flat" "R+ HEM" "Red.";
  let cets = [ "T1", "[24:24]", "High"; "T2", "[32:32]", "Med";
               "T3", "[40:40]", "Low" ] in
  List.iter2
    (fun (row : Report.comparison_row) (name, cet, prio) ->
      let hi = function
        | Some i -> string_of_int (Interval.hi i)
        | None -> "-"
      in
      let red =
        match row.reduction_pct with
        | Some p -> Printf.sprintf "%.1f%%" p
        | None -> "-"
      in
      Printf.printf "%-6s %-8s %-6s %10s %10s %8s\n" name cet prio
        (hi row.baseline) (hi row.improved) red)
    (Report.compare_results ~baseline:flat ~improved:hem ~names:Paper.cpu_tasks)
    cets;
  Printf.printf
    "(flat = standard event models, the paper's baseline; iterations: flat %d, hem %d)\n"
    flat.Engine.iterations hem.Engine.iterations

(* ------------------------------------------------------------------ *)
(* E4: Figure 4 — eta+ of frame F1 and the unpacked T1-T3 activations  *)

let figure4 () =
  banner "Figure 4: eta+ of F1 output and unpacked T1-T3 input streams";
  let hem = analyse_paper Engine.Hierarchical in
  let frame_out = hem.Engine.resolve (Spec.From_frame "F1") in
  let unpacked signal =
    hem.Engine.resolve (Spec.From_signal { frame = "F1"; signal })
  in
  let streams =
    [ "F1", frame_out;
      "T1", unpacked "sig1"; "T2", unpacked "sig2"; "T3", unpacked "sig3" ]
  in
  Printf.printf "%-8s" "dt";
  List.iter (fun (name, _) -> Printf.printf "%8s" name) streams;
  print_newline ();
  let rec dts t acc = if t > 2500 then List.rev acc else dts (t + 125) (t :: acc) in
  List.iter
    (fun dt ->
      Printf.printf "%-8d" dt;
      List.iter
        (fun (_, s) -> Printf.printf "%8s" (Count.to_string (Stream.eta_plus s dt)))
        streams;
      print_newline ())
    (dts 125 [])

(* ------------------------------------------------------------------ *)
(* A1: ablation — pending-signal period sweep                          *)

let ablation_pending () =
  banner "A1: pending source period sweep (T3 WCRT, flat vs HEM)";
  Printf.printf "%-12s %10s %10s %8s\n" "S3 period" "R+ flat" "R+ HEM" "Red.";
  List.iter
    (fun period ->
      let flat, hem = ok (Paper.analyse_both ~s3_period:period ()) in
      match Engine.response flat "T3", Engine.response hem "T3" with
      | Some f, Some h ->
        Printf.printf "%-12d %10d %10d %7.1f%%\n" period (Interval.hi f)
          (Interval.hi h)
          (100.0
          *. float_of_int (Interval.hi f - Interval.hi h)
          /. float_of_int (Interval.hi f))
      | _ -> Printf.printf "%-12d unbounded\n" period)
    [ 250; 500; 1000; 2000; 4000 ]

(* ------------------------------------------------------------------ *)
(* A2: ablation — the simultaneity term (k-1) r- of Definition 9       *)

let ablation_k () =
  banner "A2: inner-update simultaneity term (Def. 9)";
  let pre = (analyse_paper Engine.Hierarchical).Engine.pre_bus_hierarchy "F1" in
  let response = Interval.make ~lo:4 ~hi:10 in
  let k_true = Hem.Inner_update.simultaneity (Hem.Model.outer pre) in
  let with_k k =
    Hem.Deconstruct.unpack_label
      (Hem.Inner_update.apply_response ~simultaneity:k ~response pre)
      "sig1"
  in
  let sound = with_k k_true in
  let ablated = with_k 1 in
  Printf.printf
    "computed k = %d; delta_min of unpacked sig1 with the term vs without:\n"
    k_true;
  Printf.printf "%-6s %12s %14s\n" "n" "with (k=2)" "ablated (k=1)";
  List.iter
    (fun n ->
      Printf.printf "%-6d %12s %14s\n" n
        (Time.to_string (Stream.delta_min sound n))
        (Time.to_string (Stream.delta_min ablated n)))
    [ 2; 3; 4; 5; 8 ];
  Printf.printf
    "(dropping the term is optimistic: it ignores serialization behind\n\
    \ simultaneously packed frames)\n"

(* ------------------------------------------------------------------ *)
(* A3: scaling — signals per frame                                     *)

let scaling () =
  banner "A3: signals per frame vs analysis gap (lowest-priority receiver)";
  Printf.printf "%-9s %10s %10s %8s %6s\n" "signals" "R+ flat" "R+ HEM" "Red."
    "iters";
  List.iter
    (fun n ->
      let spec = Scenarios.Synthetic.fan_in ~signals:n () in
      let flat = ok (Engine.analyse ~mode:Engine.Flat_sem spec) in
      let hem = ok (Engine.analyse ~mode:Engine.Hierarchical spec) in
      let last = Printf.sprintf "T%d" n in
      match Engine.response flat last, Engine.response hem last with
      | Some f, Some h ->
        Printf.printf "%-9d %10d %10d %7.1f%% %6d\n" n (Interval.hi f)
          (Interval.hi h)
          (100.0
          *. float_of_int (Interval.hi f - Interval.hi h)
          /. float_of_int (Interval.hi f))
          hem.Engine.iterations
      | _ -> Printf.printf "%-9d flat overloaded\n" n)
    [ 2; 3; 4; 5; 6; 8 ]

(* ------------------------------------------------------------------ *)
(* A4: global fixed-point convergence                                  *)

let convergence () =
  banner "A4: global iteration counts";
  Printf.printf "%-28s %8s %8s %6s\n" "system" "elements" "iters" "conv";
  let row label spec mode =
    match Engine.analyse ~mode spec with
    | Ok result ->
      Printf.printf "%-28s %8d %8d %6b\n" label
        (List.length result.Engine.outcomes)
        result.Engine.iterations result.Engine.converged
    | Error e ->
      Printf.printf "%-28s error: %s\n" label (Guard.Error.to_string e)
  in
  List.iter
    (fun stages ->
      row
        (Printf.sprintf "pipeline chain (%d stages)" stages)
        (Scenarios.Synthetic.chain ~stages ())
        Engine.Hierarchical)
    [ 2; 4; 8; 12 ];
  row "paper system (flat)" (Paper.spec ()) Engine.Flat_sem;
  row "paper system (hem)" (Paper.spec ()) Engine.Hierarchical;
  row "two-hop gateway (flat)" (Scenarios.Gateway.spec ()) Engine.Flat_sem;
  row "two-hop gateway (hem)" (Scenarios.Gateway.spec ()) Engine.Hierarchical;
  row "avionics full stack" (Scenarios.Avionics.spec ()) Engine.Hierarchical

(* ------------------------------------------------------------------ *)
(* B1: accuracy of the related-work single-stream models               *)

let baseline_models () =
  banner "B1: single-stream model accuracy (related work [1], [4])";
  (* an irregular CAN-like burst: three events at offsets 0, 5, 100,
     repeating every 1000 *)
  let seq =
    Baselines.Event_sequence.make ~outer_period:1000
      ~inner_offsets:[ 0; 5; 100 ] ()
  in
  let exact = Baselines.Event_sequence.to_stream seq in
  let vector =
    Baselines.Event_vector.make
      [
        { Baselines.Event_vector.offset = 0; cycle = Time.of_int 1000 };
        { Baselines.Event_vector.offset = 5; cycle = Time.of_int 1000 };
        { Baselines.Event_vector.offset = 100; cycle = Time.of_int 1000 };
      ]
  in
  let sem =
    Event_model.Sem.to_stream (Baselines.Event_sequence.sem_approximation seq)
  in
  Printf.printf
    "eta+ bounds for the pattern {0, 5, 100} @ 1000 (lower = tighter):\n";
  Printf.printf "%-8s %12s %14s %12s\n" "dt" "hier. seq." "event vector" "SEM fit";
  List.iter
    (fun dt ->
      Printf.printf "%-8d %12s %14d %12s\n" dt
        (Count.to_string (Stream.eta_plus exact dt))
        (Baselines.Event_vector.eta_plus vector dt)
        (Count.to_string (Stream.eta_plus sem dt)))
    [ 6; 50; 101; 500; 1000; 1500; 2000 ];
  Printf.printf
    "(hierarchical sequences and event vectors describe the single stream\n\
    \ exactly; the standard event model over-approximates — but only the\n\
    \ paper's hierarchical event models keep *combined* streams separable)\n"

(* ------------------------------------------------------------------ *)
(* B2: activation buffer bounds (extension)                            *)

let buffers () =
  banner "B2: activation queue bounds vs simulation (paper system)";
  let f1_act =
    Event_model.Combine.or_combine
      [
        Stream.periodic ~name:"S1" ~period:250;
        Stream.periodic ~name:"S2" ~period:450;
      ]
  in
  let f1 =
    Scheduling.Rt_task.make ~name:"F1" ~cet:(Interval.point 4) ~priority:1
      ~activation:f1_act
  in
  let f2 =
    Scheduling.Rt_task.make ~name:"F2" ~cet:(Interval.point 2) ~priority:2
      ~activation:(Stream.periodic ~name:"S4" ~period:400)
  in
  let bound task others =
    match Scheduling.Spnp.backlog_bound ~task ~others () with
    | Ok depth -> string_of_int depth
    | Error e -> e
  in
  let spec = Paper.spec () in
  let generators =
    [
      "S1", Des.Gen.periodic ~period:250 ();
      "S2", Des.Gen.periodic ~period:450 ();
      "S3", Des.Gen.periodic ~period:Paper.s3_period ();
      "S4", Des.Gen.periodic ~period:400 ();
    ]
  in
  match Des.Simulator.run ~generators ~horizon:1_000_000 spec with
  | Error e -> Printf.printf "simulation failed: %s\n" e
  | Ok trace ->
    Printf.printf "%-6s %14s %14s\n" "elem" "queue bound" "observed max";
    let observed name =
      match Des.Trace.max_queue_depth trace name with
      | Some d -> string_of_int d
      | None -> "-"
    in
    Printf.printf "%-6s %14s %14s\n" "F1" (bound f1 [ f2 ]) (observed "F1");
    Printf.printf "%-6s %14s %14s\n" "F2" (bound f2 [ f1 ]) (observed "F2")

(* ------------------------------------------------------------------ *)
(* B3: cross-framework comparison — busy window vs real-time calculus   *)

let cross_framework () =
  banner "B3: busy-window CPA vs real-time calculus (SPP CPU of Table 3)";
  (* the CPU side of the paper's system, with the hierarchical activation
     streams, analysed by both frameworks *)
  let hem = analyse_paper Engine.Hierarchical in
  let unpacked signal =
    hem.Engine.resolve (Spec.From_signal { frame = "F1"; signal })
  in
  let horizon = 4000 in
  let tasks =
    [ "T1", "sig1", 24; "T2", "sig2", 32; "T3", "sig3", 40 ]
  in
  let rtc_results =
    Rtc.Gpc.fixed_priority_chain
      ~service:(Rtc.Workload.service_full ~horizon)
      (List.map
         (fun (name, signal, wcet) ->
           {
             Rtc.Gpc.name;
             arrival_upper =
               Rtc.Workload.arrival_upper ~horizon ~wcet (unpacked signal);
           })
         tasks)
  in
  Printf.printf "%-6s %18s %12s %12s\n" "task" "busy window R+" "RTC delay"
    "RTC backlog";
  List.iter
    (fun (name, _, _) ->
      let bw =
        match Engine.response hem name with
        | Some r -> string_of_int (Interval.hi r)
        | None -> "-"
      in
      let result = List.assoc name rtc_results in
      let delay =
        match result.Rtc.Gpc.delay with
        | Some d -> string_of_int d
        | None -> "unbounded"
      in
      Printf.printf "%-6s %18s %12s %12s\n" name bw delay
        (match result.Rtc.Gpc.backlog with
         | Some b -> string_of_int b
         | None -> "unbounded"))
    tasks;
  Printf.printf
    "(both frameworks bound the same system; small differences stem from\n\
    \ the numeric curve horizon and the remaining-service abstraction)\n"

(* ------------------------------------------------------------------ *)
(* R1: robustness — transfer properties under frame loss               *)

let robustness () =
  banner "R1: signal delivery under injected frame loss (500k units)";
  let spec = Paper.spec () in
  let generators =
    [
      "S1", Des.Gen.periodic ~period:250 ();
      "S2", Des.Gen.periodic ~period:450 ();
      "S3", Des.Gen.periodic ~period:Paper.s3_period ();
      "S4", Des.Gen.periodic ~period:400 ();
    ]
  in
  Printf.printf "%-8s %14s %14s %16s\n" "loss" "sig1 (trig.)" "sig3 (pend.)"
    "max sig3 gap";
  List.iter
    (fun loss ->
      match
        Des.Simulator.run ~frame_loss_percent:loss ~generators
          ~horizon:500_000 spec
      with
      | Error e -> Printf.printf "%-8d %s\n" loss e
      | Ok trace ->
        let deliveries signal =
          List.length
            (Des.Trace.arrivals trace (Des.Port.signal ~frame:"F1" ~signal))
        in
        let max_gap =
          let times =
            Des.Trace.arrivals trace (Des.Port.signal ~frame:"F1" ~signal:"sig3")
          in
          let rec scan acc = function
            | a :: (b :: _ as rest) -> scan (Stdlib.max acc (b - a)) rest
            | [ _ ] | [] -> acc
          in
          scan 0 times
        in
        Printf.printf "%-7d%% %14d %14d %16d\n" loss (deliveries "sig1")
          (deliveries "sig3") max_gap)
    [ 0; 10; 30; 50 ];
  Printf.printf
    "(triggering events die with their frame; pending values are re-sent\n\
    \ with the next transmission — the transfer-property semantics of the\n\
    \ COM layer under faults)\n"

(* ------------------------------------------------------------------ *)
(* V1: simulation cross-check                                          *)

let validate () =
  banner "V1: simulation vs analysis (paper system)";
  let spec = Paper.spec () in
  let hem = analyse_paper Engine.Hierarchical in
  let generators =
    [
      "S1", Des.Gen.periodic ~period:250 ();
      "S2", Des.Gen.periodic ~period:450 ();
      "S3", Des.Gen.periodic ~period:Paper.s3_period ();
      "S4", Des.Gen.periodic ~period:400 ();
    ]
  in
  match Des.Simulator.run ~generators ~horizon:1_000_000 spec with
  | Error e -> Printf.printf "simulation failed: %s\n" e
  | Ok trace ->
    Printf.printf "%-6s %12s %12s %6s\n" "elem" "observed R+" "bound R+" "ok";
    List.iter
      (fun name ->
        match Des.Trace.worst_response trace name, Engine.response hem name with
        | Some obs, Some bound ->
          Printf.printf "%-6s %12d %12d %6s\n" name obs (Interval.hi bound)
            (if obs <= Interval.hi bound then "yes" else "NO")
        | _ -> Printf.printf "%-6s (no data)\n" name)
      ("F1" :: "F2" :: Paper.cpu_tasks)

(* ------------------------------------------------------------------ *)
(* perf: incremental engine speedup + Bechamel micro-benchmarks        *)

(* Wall-clock of the best of [runs] executions (discarding one warmup),
   in milliseconds. *)
let time_ms ?(runs = 5) f =
  ignore (f ());
  let best = ref infinity in
  for _ = 1 to runs do
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    best := Stdlib.min !best (Unix.gettimeofday () -. t0)
  done;
  !best *. 1000.0

let same_outcomes (a : Engine.result) (b : Engine.result) =
  List.length a.outcomes = List.length b.outcomes
  && List.for_all2
       (fun (x : Engine.element_outcome) (y : Engine.element_outcome) ->
         String.equal x.element y.element
         && String.equal x.resource y.resource
         &&
         match x.outcome, y.outcome with
         | Scheduling.Busy_window.Bounded i, Scheduling.Busy_window.Bounded j
           ->
           Interval.equal i j
         | Scheduling.Busy_window.Unbounded _, Scheduling.Busy_window.Unbounded _
           ->
           true
         | _ -> false)
       a.outcomes b.outcomes

let engine_speedup () =
  banner "perf: incremental fixed-point engine vs full recompute (ms, best of 5)";
  let cases =
    [
      "paper_hierarchical", Paper.spec (), Engine.Hierarchical;
      "paper_flat_sem", Paper.spec (), Engine.Flat_sem;
      "gateway_hierarchical", Scenarios.Gateway.spec (), Engine.Hierarchical;
      "fan_in_8", Scenarios.Synthetic.fan_in ~signals:8 (), Engine.Hierarchical;
      "chain_16", Scenarios.Synthetic.chain ~stages:16 (), Engine.Hierarchical;
    ]
  in
  Printf.printf "%-22s %10s %10s %8s %6s %9s %9s\n" "system" "full" "incr"
    "speedup" "iters" "analysed" "reused";
  let rows =
    List.map
      (fun (name, spec, mode) ->
        let inc = ok (Engine.analyse ~mode ~incremental:true spec) in
        let full = ok (Engine.analyse ~mode ~incremental:false spec) in
        if not (same_outcomes inc full) then begin
          Printf.eprintf "%s: incremental and full outcomes differ!\n" name;
          exit 1
        end;
        let t_inc =
          time_ms (fun () -> Engine.analyse ~mode ~incremental:true spec)
        in
        let t_full =
          time_ms (fun () -> Engine.analyse ~mode ~incremental:false spec)
        in
        let speedup = t_full /. t_inc in
        Printf.printf "%-22s %9.3f %9.3f %7.2fx %6d %9d %9d\n" name t_full
          t_inc speedup inc.Engine.iterations inc.Engine.stats.resources_analysed
          inc.stats.resources_reused;
        name, t_full, t_inc, speedup, inc)
      cases
  in
  let best = List.fold_left (fun acc (_, _, _, s, _) -> Stdlib.max acc s) 0.0 rows in
  Printf.printf "(identical outcomes in every case; best speedup %.2fx)\n" best;
  let oc = open_out "BENCH_1.json" in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"benchmark\": \"incremental engine vs full recompute\",\n";
  Buffer.add_string buf "  \"unit\": \"ms, best of 5 runs\",\n  \"cases\": [\n";
  List.iteri
    (fun i (name, t_full, t_inc, speedup, (inc : Engine.result)) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": %S, \"full_ms\": %.3f, \"incremental_ms\": %.3f, \
            \"speedup\": %.2f, \"identical_outcomes\": true, \
            \"iterations\": %d, \"resources_analysed\": %d, \
            \"resources_reused\": %d, \"streams_invalidated\": %d, \
            \"closure_evals\": %d, \"periodic_evals\": %d}%s\n"
           name t_full t_inc speedup inc.Engine.iterations
           inc.Engine.stats.resources_analysed inc.stats.resources_reused
           inc.stats.streams_invalidated inc.stats.curve.closure_evals
           inc.stats.curve.periodic_evals
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  let metrics =
    metrics_json ~warm:(fun () ->
        ignore (Engine.analyse ~mode:Engine.Hierarchical (Paper.spec ())))
  in
  Buffer.add_string buf
    (Printf.sprintf "  ],\n  \"best_speedup\": %.2f,\n  \"metrics\": %s\n}\n"
       best metrics);
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote BENCH_1.json\n"

let perf () =
  engine_speedup ();
  banner "perf: Bechamel micro-benchmarks (ns per run)";
  let open Bechamel in
  let spec = Paper.spec () in
  let fresh_or () =
    (* rebuilt each run so memoization does not short-circuit the work *)
    let s =
      Event_model.Combine.or_combine
        [
          Stream.periodic ~name:"a" ~period:250;
          Stream.periodic ~name:"b" ~period:450;
          Stream.periodic ~name:"c" ~period:700;
        ]
    in
    Stream.delta_min s 64
  in
  let tests =
    [
      Test.make ~name:"table1+2: frame hierarchy construction"
        (Staged.stage (fun () ->
           Hem.Model.arity
             (Comstack.Frame.hierarchy
                (Comstack.Frame.make ~name:"F1" ~send_type:Comstack.Frame.Direct
                   ~signals:
                     [
                       Comstack.Signal.triggering ~name:"s1"
                         (Stream.periodic ~name:"s1" ~period:250);
                       Comstack.Signal.pending ~name:"s3"
                         (Stream.periodic ~name:"s3" ~period:1000);
                     ]
                   ~tx_time:(Interval.point 4) ~priority:1))));
      Test.make ~name:"table3: full analysis, flat mode"
        (Staged.stage (fun () ->
           ignore (Engine.analyse ~mode:Engine.Flat_sem spec)));
      Test.make ~name:"table3: full analysis, hierarchical mode"
        (Staged.stage (fun () ->
           ignore (Engine.analyse ~mode:Engine.Hierarchical spec)));
      Test.make ~name:"figure4: eta+ series on fresh OR stream"
        (Staged.stage (fun () -> ignore (fresh_or ())));
      Test.make ~name:"validate: 100k-unit simulation"
        (Staged.stage (fun () ->
           ignore
             (Des.Simulator.run
                ~generators:
                  [
                    "S1", Des.Gen.periodic ~period:250 ();
                    "S2", Des.Gen.periodic ~period:450 ();
                    "S3", Des.Gen.periodic ~period:1000 ();
                    "S4", Des.Gen.periodic ~period:400 ();
                  ]
                ~horizon:100_000 spec)));
    ]
  in
  let grouped = Test.make_grouped ~name:"hem" tests in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:300 ~quota:(Bechamel.Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances grouped in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold (fun name o acc -> (name, o) :: acc) results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (name, o) ->
      let estimate =
        match Analyze.OLS.estimates o with
        | Some (e :: _) -> Printf.sprintf "%.0f ns/run" e
        | Some [] | None -> "n/a"
      in
      Printf.printf "%-55s %s\n" name estimate)
    rows

(* ------------------------------------------------------------------ *)
(* explore: domain-pool scaling on a design-space sweep (BENCH_3.json)  *)

(* A >=200-variant sweep: the paper system over S3 period x T3 CET
   scale, plus synthetic fan-in systems over signal count x CET.  The
   paper-system CET scaling rounds up (ceil(40 * p / 100)), so adjacent
   percents collide on the same spec and the content-addressed cache
   gets genuine hits. *)
let explore_items () =
  let grid =
    Explore.Space.grid
      [
        Explore.Space.int_axis "s3"
          (fun period -> Explore.Space.Source_period { source = "S3"; period })
          [ 600; 700; 800; 900; 1000; 1100; 1200; 1300; 1400 ];
        Explore.Space.int_axis "cet"
          (fun percent -> Explore.Space.Cet_scale { task = "T3"; percent })
          (List.init 25 (fun i -> 90 + i));
      ]
  in
  let paper =
    Explore.Driver.items_of_variants ~base:(fun () -> Paper.spec ()) grid
  in
  (* items need not come from Space edits: any label + domain-local spec
     builder over pure data works *)
  let fan_in =
    List.concat_map
      (fun signals ->
        List.map
          (fun cet ->
            {
              Explore.Driver.label =
                Printf.sprintf "fan_in s=%d cet=%d" signals cet;
              build =
                (fun () -> Scenarios.Synthetic.fan_in ~signals ~cet ());
            })
          (List.init 10 (fun i -> 10 + (2 * i))))
      [ 2; 3; 4; 5; 6 ]
  in
  paper @ fan_in

let explore_bench () =
  banner "explore: domain-pool scaling, 275-variant sweep (BENCH_3.json)";
  let cores = Domain.recommended_domain_count () in
  let job_counts = [ 1; 2; 4 ] in
  let render report =
    let buf = Buffer.create 4096 in
    let fmt = Format.formatter_of_buffer buf in
    Explore.Render.csv fmt report;
    Format.pp_print_flush fmt ();
    Buffer.contents buf
  in
  Printf.printf "%-6s %10s %9s %8s %7s %6s\n" "jobs" "wall ms" "speedup"
    "variants" "unique" "hits";
  let runs =
    List.map
      (fun jobs ->
        let report = Explore.Driver.run ~jobs (explore_items ()) in
        jobs, report, render report)
      job_counts
  in
  let _, first_report, first_csv = List.hd runs in
  let identical =
    List.for_all (fun (_, _, csv) -> String.equal csv first_csv) runs
  in
  if not identical then begin
    Printf.eprintf "explore: results differ across job counts!\n";
    exit 1
  end;
  let wall_1 =
    let _, (r : Explore.Driver.report), _ = List.hd runs in
    r.wall_ms
  in
  List.iter
    (fun (jobs, (r : Explore.Driver.report), _) ->
      Printf.printf "%-6d %10.1f %8.2fx %8d %7d %6d\n" jobs r.wall_ms
        (wall_1 /. r.wall_ms) (List.length r.rows) r.cache.entries
        r.cache.hits)
    runs;
  Printf.printf
    "(identical rows at every job count; %d core%s available; cache hits\n\
    \ come from CET rounding collisions across adjacent percents)\n"
    cores (if cores = 1 then "" else "s");
  let oc = open_out "BENCH_3.json" in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "{\n  \"benchmark\": \"design-space exploration pool scaling\",\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"variants\": %d,\n  \"unique\": %d,\n  \"cache_hits\": %d,\n\
       \  \"cores\": %d,\n  \"rows_identical\": true,\n  \"runs\": [\n"
       (List.length first_report.rows) first_report.cache.entries
       first_report.cache.hits cores);
  List.iteri
    (fun i (jobs, (r : Explore.Driver.report), _) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"jobs\": %d, \"effective_jobs\": %d, \"wall_ms\": %.1f, \
            \"speedup_vs_jobs1\": %.2f}%s\n"
           jobs
           (Explore.Pool.effective_jobs jobs)
           r.wall_ms (wall_1 /. r.wall_ms)
           (if i = List.length runs - 1 then "" else ",")))
    runs;
  let metrics =
    metrics_json ~warm:(fun () ->
        ignore (Explore.Driver.run ~jobs:(Stdlib.min 2 cores) (explore_items ())))
  in
  Buffer.add_string buf (Printf.sprintf "  ],\n  \"metrics\": %s\n}\n" metrics);
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote BENCH_3.json\n"

(* ------------------------------------------------------------------ *)
(* scale: hot-path kernel speedups + honest pool scaling (BENCH_6.json) *)

(* Serial A/B of the batched curve kernels: the same analysis run with
   kernels forced off (the scalar legacy paths) and on (batched range
   sweeps, compact task-op construction, demand kernels), outcomes
   asserted identical, wall time and curve-probe counters compared. *)
let kernel_case name spec mode =
  let module Kernels = Event_model.Kernels in
  let scalar_result =
    Kernels.with_scalar (fun () ->
      ok (Engine.analyse ~mode ~incremental:false spec))
  in
  let batched_result =
    Kernels.with_batched (fun () ->
      ok (Engine.analyse ~mode ~incremental:false spec))
  in
  if not (same_outcomes scalar_result batched_result) then begin
    Printf.eprintf "%s: scalar and batched outcomes differ!\n" name;
    exit 1
  end;
  let t_scalar =
    time_ms (fun () ->
      Kernels.with_scalar (fun () ->
        Engine.analyse ~mode ~incremental:false spec))
  in
  let t_batched =
    time_ms (fun () ->
      Kernels.with_batched (fun () ->
        Engine.analyse ~mode ~incremental:false spec))
  in
  ( name,
    t_scalar,
    t_batched,
    scalar_result.Engine.stats.curve,
    batched_result.Engine.stats.curve )

(* Bytes allocated per call, measured over [iters] calls of [f] after a
   warmup call: the periodic-tail fast paths must not allocate at all. *)
let bytes_per_call ?(iters = 100_000) f =
  ignore (Sys.opaque_identity (f ()));
  let b0 = Gc.allocated_bytes () in
  for _ = 1 to iters do
    ignore (Sys.opaque_identity (f ()))
  done;
  let b1 = Gc.allocated_bytes () in
  (b1 -. b0) /. float_of_int iters

let scale () =
  banner "scale: curve kernels A/B + allocation + pool scaling (BENCH_6.json)";
  let module Curve = Event_model.Curve in
  (* --- serial kernel speedups ------------------------------------ *)
  let cases =
    [
      kernel_case "chain_16" (Scenarios.Synthetic.chain ~stages:16 ())
        Engine.Hierarchical;
      kernel_case "paper_flat_sem" (Paper.spec ()) Engine.Flat_sem;
      kernel_case "paper_hierarchical" (Paper.spec ()) Engine.Hierarchical;
      kernel_case "network_8" (Scenarios.Synthetic.network ~seed:1 ~ecus:8 ())
        Engine.Hierarchical;
    ]
  in
  Printf.printf "%-20s %10s %10s %8s %12s %12s %8s\n" "system" "scalar"
    "batched" "speedup" "per.evals" "per.evals'" "reduc.";
  List.iter
    (fun (name, t_s, t_b, (cs : Curve.stats), (cb : Curve.stats)) ->
      Printf.printf "%-20s %9.3f %9.3f %7.2fx %12d %12d %7.1fx\n" name t_s t_b
        (t_s /. t_b) cs.Curve.periodic_evals cb.Curve.periodic_evals
        (float_of_int cs.Curve.periodic_evals
        /. float_of_int (Stdlib.max 1 cb.Curve.periodic_evals)))
    cases;
  Printf.printf "(scalar = kernels disabled; identical outcomes asserted)\n";
  (* --- allocation-free fast paths -------------------------------- *)
  let periodic_curve =
    Stream.delta_min_curve
      (Stream.periodic_jitter ~name:"alloc-probe" ~period:250 ~jitter:400 ())
  in
  let packed_eval =
    bytes_per_call (fun () -> Curve.eval_packed periodic_curve 1013)
  in
  let legacy_eval =
    bytes_per_call (fun () -> Curve.eval periodic_curve 1013)
  in
  let packed_count =
    bytes_per_call (fun () ->
      Curve.count_lt_packed periodic_curve ~lo:1 ~limit:100_000)
  in
  banner "scale: allocation per call on the periodic tail (bytes)";
  Printf.printf "  eval_packed      %8.2f\n" packed_eval;
  Printf.printf "  eval (boxed)     %8.2f\n" legacy_eval;
  Printf.printf "  count_lt_packed  %8.2f\n" packed_count;
  if packed_eval > 1.0 || packed_count > 1.0 then begin
    Printf.eprintf "scale: packed periodic fast path allocates!\n";
    exit 1
  end;
  (* --- pool scaling on a many-ECU sweep --------------------------- *)
  banner "scale: pool scaling, synthetic network sweep";
  let items () =
    List.concat_map
      (fun ecus ->
        List.map
          (fun seed ->
            {
              Explore.Driver.label = Printf.sprintf "net e=%d s=%d" ecus seed;
              build = (fun () -> Scenarios.Synthetic.network ~seed ~ecus ());
            })
          (List.init 12 (fun i -> i + 1)))
      [ 4; 6; 8 ]
  in
  let cores = Domain.recommended_domain_count () in
  let job_counts = [ 1; 2; 4 ] in
  let render report =
    let buf = Buffer.create 4096 in
    let fmt = Format.formatter_of_buffer buf in
    Explore.Render.csv fmt report;
    Format.pp_print_flush fmt ();
    Buffer.contents buf
  in
  (* one untimed pass to warm page cache / allocator before measuring *)
  ignore (Explore.Driver.run ~jobs:1 (items ()));
  (* a single sweep is ~tens of ms, well inside container timing jitter;
     interleave 5 rounds across the job counts (rather than 5 back-to-back
     runs per count) so slow drift hits every count equally, and keep the
     best round for each *)
  let best = Hashtbl.create 8 in
  for _ = 1 to 5 do
    List.iter
      (fun jobs ->
        let report = Explore.Driver.run ~jobs (items ()) in
        match Hashtbl.find_opt best jobs with
        | Some (b : Explore.Driver.report) when b.wall_ms <= report.wall_ms ->
          ()
        | _ -> Hashtbl.replace best jobs report)
      job_counts
  done;
  let runs =
    List.map
      (fun jobs ->
        let report = Hashtbl.find best jobs in
        jobs, report, render report)
      job_counts
  in
  let _, first_report, first_csv = List.hd runs in
  if not (List.for_all (fun (_, _, csv) -> String.equal csv first_csv) runs)
  then begin
    Printf.eprintf "scale: results differ across job counts!\n";
    exit 1
  end;
  let wall_1 =
    let _, (r : Explore.Driver.report), _ = List.hd runs in
    r.wall_ms
  in
  Printf.printf "%-6s %8s %10s %9s\n" "jobs" "domains" "wall ms" "speedup";
  List.iter
    (fun (jobs, (r : Explore.Driver.report), _) ->
      Printf.printf "%-6d %8d %10.1f %8.2fx\n" jobs
        (Explore.Pool.effective_jobs jobs)
        r.wall_ms (wall_1 /. r.wall_ms))
    runs;
  Printf.printf
    "(byte-identical rows at every jobs count; %d core%s, so requests\n\
    \ beyond that run on %d domain%s — oversubscription only costs)\n"
    cores
    (if cores = 1 then "" else "s")
    cores
    (if cores = 1 then "" else "s");
  (* --- BENCH_6.json ----------------------------------------------- *)
  let oc = open_out "BENCH_6.json" in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    "{\n  \"benchmark\": \"hot-path curve kernels + explore pool scaling\",\n";
  Buffer.add_string buf "  \"unit\": \"ms, best of 5 runs\",\n  \"kernels\": [\n";
  List.iteri
    (fun i (name, t_s, t_b, (cs : Curve.stats), (cb : Curve.stats)) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": %S, \"scalar_ms\": %.3f, \"batched_ms\": %.3f, \
            \"speedup\": %.2f, \"identical_outcomes\": true, \
            \"scalar_periodic_evals\": %d, \"batched_periodic_evals\": %d, \
            \"periodic_eval_reduction\": %.1f, \"batch_evals\": %d, \
            \"batch_probe_count\": %d}%s\n"
           name t_s t_b (t_s /. t_b) cs.Curve.periodic_evals
           cb.Curve.periodic_evals
           (float_of_int cs.Curve.periodic_evals
           /. float_of_int (Stdlib.max 1 cb.Curve.periodic_evals))
           cb.Curve.batch_evals cb.Curve.batch_probe_count
           (if i = List.length cases - 1 then "" else ",")))
    cases;
  Buffer.add_string buf
    (Printf.sprintf
       "  ],\n  \"allocation_bytes_per_call\": {\"eval_packed\": %.2f, \
        \"eval_boxed\": %.2f, \"count_lt_packed\": %.2f},\n"
       packed_eval legacy_eval packed_count);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"pool\": {\"cores\": %d, \"sweep_items\": %d, \
        \"rows_identical\": true, \"runs\": [\n"
       cores
       (List.length first_report.Explore.Driver.rows));
  List.iteri
    (fun i (jobs, (r : Explore.Driver.report), _) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"jobs\": %d, \"effective_domains\": %d, \"wall_ms\": %.1f, \
            \"speedup_vs_jobs1\": %.2f}%s\n"
           jobs
           (Explore.Pool.effective_jobs jobs)
           r.wall_ms (wall_1 /. r.wall_ms)
           (if i = List.length runs - 1 then "" else ",")))
    runs;
  let metrics =
    metrics_json ~warm:(fun () ->
        ignore (Engine.analyse ~mode:Engine.Hierarchical (Paper.spec ())))
  in
  Buffer.add_string buf
    (Printf.sprintf "  ]},\n  \"metrics\": %s\n}\n" metrics);
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote BENCH_6.json\n"

(* ------------------------------------------------------------------ *)
(* serve: warm-session daemon vs cold per-request analysis (BENCH_serve) *)

module Json = Serve.Protocol.Json
module Client = Serve.Client

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let contents = really_input_string ic n in
  close_in ic;
  contents

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(Stdlib.min (n - 1) (int_of_float (float_of_int n *. p)))

let serve_connect path =
  let rec go n =
    match Client.connect (`Unix path) with
    | Ok c -> c
    | Error e ->
      if n = 0 then begin
        Printf.eprintf "serve bench: daemon did not come up: %s\n" e;
        exit 1
      end;
      Thread.delay 0.05;
      go (n - 1)
  in
  go 100

let reply_ok what = function
  | Error e ->
    Printf.eprintf "serve bench: %s: %s\n" what e;
    exit 1
  | Ok (r : Serve.Protocol.reply) ->
    if Client.exit_code r <> 0 then begin
      Printf.eprintf "serve bench: %s: status %d\n" what (Client.exit_code r);
      exit 1
    end;
    r

let must_session what r =
  match Client.session_id r with
  | Some id -> id
  | None ->
    Printf.eprintf "serve bench: %s: reply has no session id\n" what;
    exit 1

(* render outcomes exactly as the daemon does, for byte-comparison *)
let outcome_json (o : Engine.element_outcome) =
  match o.Engine.outcome with
  | Scheduling.Busy_window.Bounded iv ->
    Json.Obj
      [ "element", Json.Str o.Engine.element;
        "resource", Json.Str o.Engine.resource;
        "outcome", Json.Str "bounded";
        "lo", Json.Int (Interval.lo iv);
        "hi", Json.Int (Interval.hi iv) ]
  | Scheduling.Busy_window.Unbounded reason ->
    Json.Obj
      [ "element", Json.Str o.Engine.element;
        "resource", Json.Str o.Engine.resource;
        "outcome", Json.Str "unbounded";
        "reason", Json.Str reason ]

let outcomes_str outcomes =
  Json.to_string (Json.Arr (List.map outcome_json outcomes))

let body_outcomes what (r : Serve.Protocol.reply) =
  match Json.member "outcomes" r.Serve.Protocol.body with
  | Some j -> Json.to_string j
  | None ->
    Printf.eprintf "serve bench: %s: reply has no outcomes\n" what;
    exit 1

let toggle_edit i =
  [ Explore.Space.Task_priority
      { task = "t3"; priority = (if i mod 2 = 0 then 4 else 3) } ]

let serve_bench () =
  banner "serve: warm incremental sessions vs cold per-request analysis";
  let spec_text = read_file "examples/paper.spec" in
  let base_spec =
    match Cpa_system.Spec_file.parse spec_text with
    | Ok d -> Cpa_system.Spec_file.to_spec d
    | Error e ->
      Printf.eprintf "serve bench: examples/paper.spec: %s\n" e;
      exit 1
  in
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "hem-bench-serve-%d.sock" (Unix.getpid ()))
  in
  let cfg = Serve.Server.config ~unix_path:path ~jobs:4 () in
  let server = Thread.create Serve.Server.run cfg in
  Fun.protect
    ~finally:(fun () ->
      (match Client.connect (`Unix path) with
      | Ok c ->
        ignore (Client.shutdown c);
        Client.close c
      | Error _ -> ());
      Thread.join server;
      if Sys.file_exists path then Sys.remove path)
  @@ fun () ->
  let c = serve_connect path in
  (* --- cold baseline: a fresh session (upload + from-scratch
     analysis) per request, closed immediately — the pattern the warm
     daemon replaces *)
  let cold_n = 20 in
  let cold_lat =
    Array.init cold_n (fun _ ->
      let t0 = Unix.gettimeofday () in
      let r = reply_ok "cold load" (Client.load c ~spec:spec_text) in
      let dt = (Unix.gettimeofday () -. t0) *. 1e3 in
      let s = must_session "cold load" r in
      ignore (reply_ok "cold close" (Client.close_session c ~session:s));
      dt)
  in
  (* --- warm session: an idempotent edit cycle (T3's priority toggled
     3 <-> 4) against one resident session; every edit re-analyses only
     the CPU, the bus streams are reused *)
  let warm_m = 50 in
  let load = reply_ok "warm load" (Client.load c ~spec:spec_text) in
  let session = must_session "warm load" load in
  let reused = ref 0 in
  let byte_identical = ref true in
  let mirror = ref base_spec in
  let warm_lat =
    Array.init warm_m (fun i ->
      let edits = toggle_edit i in
      let t0 = Unix.gettimeofday () in
      let r = reply_ok "warm edit" (Client.edit c ~session edits) in
      let dt = (Unix.gettimeofday () -. t0) *. 1e3 in
      (match Json.member "stats" r.Serve.Protocol.body with
      | Some stats -> begin
        match
          Option.bind (Json.member "resources-reused" stats) Json.to_int
        with
        | Some n -> reused := !reused + n
        | None -> ()
      end
      | None -> ());
      mirror := Explore.Space.apply_all !mirror edits;
      dt)
  in
  (* warm-delta vs cold from-scratch: the session's full outcome set
     after the edit cycle must be byte-identical to an offline engine
     run on the same final spec *)
  let t0 = Unix.gettimeofday () in
  let offline = ok (Engine.analyse !mirror) in
  let engine_cold_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
  let final = reply_ok "warm analyse" (Client.analyse c ~session) in
  if
    not
      (String.equal
         (outcomes_str offline.Engine.outcomes)
         (body_outcomes "warm analyse" final))
  then begin
    Printf.eprintf "serve bench: warm outcomes differ from cold engine!\n";
    byte_identical := false
  end;
  ignore (reply_ok "warm close" (Client.close_session c ~session));
  Client.close c;
  (* --- per-request service cost, transport excluded. On a system
     this small the socket roundtrip (~0.2 ms) floors the
     client-observed latency of cold and warm requests alike, so the
     headline speedup compares what each request costs the server:
     cold = parse + context build + from-scratch analysis + full
     outcome render (exactly handle_load's work per request); warm =
     impact closure + incremental warm_update + delta render (exactly
     handle_edit's work). Client-observed roundtrips are still
     reported alongside. *)
  let svc_cold =
    Array.init cold_n (fun _ ->
      let t0 = Unix.gettimeofday () in
      let d =
        match Cpa_system.Spec_file.parse spec_text with
        | Ok d -> d
        | Error _ -> exit 1
      in
      let spec = Cpa_system.Spec_file.to_spec d in
      ignore (Spec.digest spec);
      (match Engine.warm spec with
      | Ok (_, r) -> ignore (outcomes_str r.Engine.outcomes)
      | Error _ ->
        Printf.eprintf "serve bench: cold service run failed\n";
        exit 1);
      (Unix.gettimeofday () -. t0) *. 1e3)
  in
  let svc_warm =
    match Engine.warm base_spec with
    | Error _ ->
      Printf.eprintf "serve bench: warm service init failed\n";
      exit 1
    | Ok (w, r0) ->
      let spec = ref base_spec and last = ref r0.Engine.outcomes in
      Array.init warm_m (fun i ->
        let edits = toggle_edit i in
        let t0 = Unix.gettimeofday () in
        let new_spec, sources, elements =
          List.fold_left
            (fun (sp, srcs, els) e ->
              let s', e' = Explore.Space.touched sp e in
              (Explore.Space.apply sp e, s' @ srcs, e' @ els))
            (!spec, [], []) edits
        in
        let stale =
          List.sort_uniq String.compare
            (Engine.affected !spec ~sources ~elements
            @ Engine.affected new_spec ~sources ~elements)
        in
        (match Engine.warm_update w ~spec:new_spec ~stale with
        | Ok r ->
          let changed =
            Engine.delta_outcomes ~before:!last ~after:r.Engine.outcomes
          in
          ignore (outcomes_str changed);
          spec := new_spec;
          last := r.Engine.outcomes
        | Error _ ->
          Printf.eprintf "serve bench: warm service update failed\n";
          exit 1);
        (Unix.gettimeofday () -. t0) *. 1e3)
  in
  let mean a = Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a) in
  let sorted a =
    let s = Array.copy a in
    Array.sort compare s;
    s
  in
  let cold_s = sorted cold_lat and warm_s = sorted warm_lat in
  let svc_cold_s = sorted svc_cold and svc_warm_s = sorted svc_warm in
  let speedup = mean svc_cold /. mean svc_warm in
  let rtt_speedup = mean cold_lat /. mean warm_lat in
  let row label a s =
    Printf.printf "%-34s %10.3f %10.3f %10.3f\n" label (mean a)
      (percentile s 0.5) (percentile s 0.99)
  in
  Printf.printf "%-34s %10s %10s %10s\n" "" "mean ms" "p50 ms" "p99 ms";
  row
    (Printf.sprintf "cold request service (n=%d)" cold_n)
    svc_cold svc_cold_s;
  row
    (Printf.sprintf "warm edit service (m=%d)" warm_m)
    svc_warm svc_warm_s;
  row (Printf.sprintf "cold load roundtrip (n=%d)" cold_n) cold_lat cold_s;
  row (Printf.sprintf "warm edit roundtrip (m=%d)" warm_m) warm_lat warm_s;
  Printf.printf
    "warm vs cold speedup: %.1fx service, %.1fx client-observed (%d \
     stream analyses reused; offline cold engine run: %.3f ms)\n"
    speedup rtt_speedup !reused engine_cold_ms;
  if !reused = 0 then begin
    Printf.eprintf "serve bench: warm edits reused nothing!\n";
    exit 1
  end;
  if speedup < 5.0 then begin
    Printf.eprintf "serve bench: warm speedup %.2fx below the 5x floor\n"
      speedup;
    exit 1
  end;
  (* --- client storm: concurrent sessions, each its own system (a
     distinct S3 period), hammering interleaved warm edits *)
  let clients = 4 in
  let storm_m = 25 in
  let storm_lat = Array.make (clients * storm_m) 0.0 in
  let storm_identical = Array.make clients false in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init clients (fun k ->
      Thread.create
        (fun k ->
          let c = serve_connect path in
          let r = reply_ok "storm load" (Client.load c ~spec:spec_text) in
          let session = must_session "storm load" r in
          let personalise =
            [ Explore.Space.Source_period
                { source = "s3"; period = 1000 + (100 * (k + 1)) } ]
          in
          ignore (reply_ok "storm edit" (Client.edit c ~session personalise));
          let mirror = ref (Explore.Space.apply_all base_spec personalise) in
          for i = 0 to storm_m - 1 do
            let edits = toggle_edit i in
            let t0 = Unix.gettimeofday () in
            ignore (reply_ok "storm edit" (Client.edit c ~session edits));
            storm_lat.((k * storm_m) + i) <-
              (Unix.gettimeofday () -. t0) *. 1e3;
            mirror := Explore.Space.apply_all !mirror edits
          done;
          let final = reply_ok "storm analyse" (Client.analyse c ~session) in
          let offline = ok (Engine.analyse !mirror) in
          storm_identical.(k) <-
            String.equal
              (outcomes_str offline.Engine.outcomes)
              (body_outcomes "storm analyse" final);
          ignore (reply_ok "storm close" (Client.close_session c ~session));
          Client.close c)
        k)
  in
  List.iter Thread.join threads;
  let storm_wall = (Unix.gettimeofday () -. t0) *. 1e3 in
  let storm_sorted = sorted storm_lat in
  let edits_per_sec =
    float_of_int (clients * storm_m) /. (storm_wall /. 1e3)
  in
  let storm_ok = Array.for_all (fun b -> b) storm_identical in
  Printf.printf
    "storm: %d clients x %d edits in %.1f ms — %.0f edits/s, p50 %.3f ms, \
     p99 %.3f ms%s\n"
    clients storm_m storm_wall edits_per_sec
    (percentile storm_sorted 0.5)
    (percentile storm_sorted 0.99)
    (if storm_ok then "" else " (OUTCOME MISMATCH)");
  if not storm_ok then begin
    Printf.eprintf "serve bench: storm outcomes differ from cold engine!\n";
    exit 1
  end;
  (* --- BENCH_serve.json ------------------------------------------- *)
  let oc = open_out "BENCH_serve.json" in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    "{\n  \"benchmark\": \"analysis-as-a-service warm sessions\",\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"cold\": {\"requests\": %d, \"service_mean_ms\": %.3f, \
        \"service_p50_ms\": %.3f, \"service_p99_ms\": %.3f, \
        \"rtt_mean_ms\": %.3f, \"rtt_p50_ms\": %.3f, \"rtt_p99_ms\": \
        %.3f},\n"
       cold_n (mean svc_cold)
       (percentile svc_cold_s 0.5)
       (percentile svc_cold_s 0.99)
       (mean cold_lat) (percentile cold_s 0.5) (percentile cold_s 0.99));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"warm\": {\"edits\": %d, \"service_mean_ms\": %.3f, \
        \"service_p50_ms\": %.3f, \"service_p99_ms\": %.3f, \
        \"rtt_mean_ms\": %.3f, \"rtt_p50_ms\": %.3f, \"rtt_p99_ms\": %.3f, \
        \"streams_reused\": %d},\n"
       warm_m (mean svc_warm)
       (percentile svc_warm_s 0.5)
       (percentile svc_warm_s 0.99)
       (mean warm_lat) (percentile warm_s 0.5) (percentile warm_s 0.99)
       !reused);
  Buffer.add_string buf
    (Printf.sprintf "  \"warm_vs_cold_speedup\": %.2f,\n" speedup);
  Buffer.add_string buf
    (Printf.sprintf "  \"rtt_warm_vs_cold_speedup\": %.2f,\n" rtt_speedup);
  Buffer.add_string buf
    "  \"speedup_basis\": \"per-request service cost (parse + full \
     analysis + render vs incremental update + delta render); rtt_* \
     fields are client-observed over the Unix socket\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"engine_cold_ms\": %.3f,\n" engine_cold_ms);
  Buffer.add_string buf
    (Printf.sprintf "  \"byte_identical\": %b,\n" (!byte_identical && storm_ok));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"storm\": {\"clients\": %d, \"edits_per_client\": %d, \
        \"wall_ms\": %.1f, \"edits_per_sec\": %.0f, \"p50_ms\": %.3f, \
        \"p99_ms\": %.3f},\n"
       clients storm_m storm_wall edits_per_sec
       (percentile storm_sorted 0.5)
       (percentile storm_sorted 0.99));
  let metrics =
    metrics_json ~warm:(fun () ->
        let c = serve_connect path in
        let r = reply_ok "metrics load" (Client.load c ~spec:spec_text) in
        let session = must_session "metrics load" r in
        for i = 0 to 9 do
          ignore (reply_ok "metrics edit" (Client.edit c ~session (toggle_edit i)))
        done;
        ignore (reply_ok "metrics close" (Client.close_session c ~session));
        Client.close c)
  in
  Buffer.add_string buf (Printf.sprintf "  \"metrics\": %s\n}\n" metrics);
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote BENCH_serve.json\n"

(* ------------------------------------------------------------------ *)
(* propagation: per-mode output-model tightness table (BENCH_9.json)   *)

module Prop = Event_model.Propagation

(* Force one propagation mode on the whole system: spec-wide default
   set, per-task overrides cleared — the same normalisation the
   propagation oracle applies. *)
let forced_propagation mode (spec : Spec.t) =
  let spec =
    {
      spec with
      Spec.tasks =
        List.map
          (fun (t : Spec.task) -> { t with Spec.propagation = None })
          spec.Spec.tasks;
    }
  in
  Spec.with_propagation mode spec

let propagation_bench () =
  banner "propagation: per-mode output-model tightness (BENCH_9.json)";
  let systems =
    [
      "paper", Paper.spec ();
      "gateway", Scenarios.Gateway.spec ();
      "avionics", Scenarios.Avionics.spec ();
      "fan_in_8", Scenarios.Synthetic.fan_in ~signals:8 ();
      "chain_12", Scenarios.Synthetic.chain ~stages:12 ();
      "network_8", Scenarios.Synthetic.network ();
    ]
  in
  let hi_map (r : Engine.result) =
    List.map
      (fun (o : Engine.element_outcome) ->
        ( o.Engine.element,
          match o.Engine.outcome with
          | Scheduling.Busy_window.Bounded i -> Some (Interval.hi i)
          | Scheduling.Busy_window.Unbounded _ -> None ))
      r.Engine.outcomes
  in
  let mode_names = List.map Prop.mode_name Prop.all_modes in
  Printf.printf "%-12s %10s" "system" "flat";
  List.iter (fun m -> Printf.printf " %13s" m) mode_names;
  Printf.printf "   (sum of bounded R+ over elements)\n";
  let violations = ref 0 in
  let rows =
    List.map
      (fun (name, spec) ->
        let flat =
          ok (Engine.analyse ~mode:Engine.Flat_sem ~incremental:false spec)
        in
        let per_mode =
          List.map
            (fun m ->
              ( m,
                hi_map
                  (ok
                     (Engine.analyse ~mode:Engine.Hierarchical
                        ~incremental:false (forced_propagation m spec))) ))
            Prop.all_modes
        in
        let theta = List.assoc Prop.Theta_tau per_mode in
        let optimal = List.assoc Prop.Optimal per_mode in
        (* optimal must be pointwise at least as tight as every mode *)
        List.iter
          (fun (m, hs) ->
            List.iter
              (fun (element, h) ->
                match List.assoc_opt element optimal, h with
                | Some (Some o), Some h when o > h ->
                  incr violations;
                  Printf.eprintf
                    "%s/%s: optimal %d looser than %s %d\n" name element o
                    (Prop.mode_name m) h
                | Some None, Some h ->
                  incr violations;
                  Printf.eprintf
                    "%s/%s: optimal unbounded, %s bounded at %d\n" name
                    element (Prop.mode_name m) h
                | _ -> ())
              hs)
          per_mode;
        let strict =
          List.exists
            (fun (element, o) ->
              match o, List.assoc_opt element theta with
              | Some o, Some (Some t) -> o < t
              | _ -> false)
            optimal
        in
        let total hs =
          List.fold_left
            (fun acc (_, h) -> match h with Some h -> acc + h | None -> acc)
            0 hs
        in
        Printf.printf "%-12s %10d" name (total (hi_map flat));
        List.iter
          (fun (_, hs) -> Printf.printf " %13d" (total hs))
          per_mode;
        Printf.printf "%s\n" (if strict then "   < theta_tau" else "");
        name, hi_map flat, per_mode, strict)
      systems
  in
  let strict_wins =
    List.filter_map (fun (n, _, _, s) -> if s then Some n else None) rows
  in
  if !violations > 0 then begin
    Printf.eprintf "propagation: %d pointwise-dominance violations\n"
      !violations;
    exit 1
  end;
  if strict_wins = [] then begin
    Printf.eprintf
      "propagation: optimal never strictly tighter than theta_tau\n";
    exit 1
  end;
  Printf.printf "(optimal pointwise <= every mode; strictly tighter than \
                 theta_tau on: %s)\n"
    (String.concat ", " strict_wins);
  (* kernel-path timing of the same cases BENCH_1.json reports, so the
     check gate can compare the two files from one machine *)
  let kernel_cases =
    [
      "paper_flat_sem", Paper.spec (), Engine.Flat_sem;
      "chain_16", Scenarios.Synthetic.chain ~stages:16 (), Engine.Hierarchical;
    ]
  in
  let kernel =
    List.map
      (fun (name, spec, mode) ->
        name, time_ms (fun () -> Engine.analyse ~mode ~incremental:false spec))
      kernel_cases
  in
  List.iter
    (fun (name, t) -> Printf.printf "kernel %-16s %8.3f ms\n" name t)
    kernel;
  let oc = open_out "BENCH_9.json" in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "{\n  \"benchmark\": \"output-model propagation tightness\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"modes\": [%s],\n"
       (String.concat ", "
          (List.map (fun m -> Printf.sprintf "%S" m) mode_names)));
  Buffer.add_string buf "  \"systems\": [\n";
  let render_hi = function Some h -> string_of_int h | None -> "null" in
  List.iteri
    (fun i (name, flat, per_mode, strict) ->
      let elements = List.map fst flat in
      Buffer.add_string buf (Printf.sprintf "    {\"name\": %S,\n" name);
      Buffer.add_string buf "     \"elements\": [\n";
      List.iteri
        (fun j element ->
          Buffer.add_string buf
            (Printf.sprintf "       {\"element\": %S, \"flat\": %s%s}%s\n"
               element
               (render_hi (Option.join (List.assoc_opt element flat)))
               (String.concat ""
                  (List.map
                     (fun (m, hs) ->
                       Printf.sprintf ", %S: %s" (Prop.mode_name m)
                         (render_hi (Option.join (List.assoc_opt element hs))))
                     per_mode))
               (if j = List.length elements - 1 then "" else ",")))
        elements;
      Buffer.add_string buf "     ],\n";
      Buffer.add_string buf
        (Printf.sprintf
           "     \"optimal_pointwise_le\": true, \
            \"optimal_strictly_tighter_than_theta\": %b}%s\n"
           strict
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"strict_win_systems\": [%s],\n"
       (String.concat ", "
          (List.map (fun n -> Printf.sprintf "%S" n) strict_wins)));
  Buffer.add_string buf "  \"kernel\": [\n";
  List.iteri
    (fun i (name, t) ->
      Buffer.add_string buf
        (Printf.sprintf "    {\"name\": %S, \"full_ms\": %.3f}%s\n" name t
           (if i = List.length kernel - 1 then "" else ",")))
    kernel;
  let metrics =
    metrics_json ~warm:(fun () ->
        ignore
          (Engine.analyse ~mode:Engine.Hierarchical
             (forced_propagation Prop.Optimal (Paper.spec ()))))
  in
  Buffer.add_string buf (Printf.sprintf "  ],\n  \"metrics\": %s\n}\n" metrics);
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote BENCH_9.json\n"

(* ------------------------------------------------------------------ *)
(* hybrid: rtc vs cpa vs mixed backend tightness/runtime (BENCH_10)    *)

(* Force every resource onto one local-analysis backend; EDF resources
   stay on [Cpa] (no RTC service model for dynamic deadlines, and
   [Spec.validate] rejects the combination). *)
let forced_backend b (spec : Spec.t) =
  {
    spec with
    Spec.resources =
      List.map
        (fun (r : Spec.resource) ->
          if r.Spec.scheduler = Spec.Edf then { r with Spec.backend = Spec.Cpa }
          else { r with Spec.backend = b })
        spec.Spec.resources;
  }

(* Alternate backends resource by resource, so every multi-resource
   system carries at least one RTC and one CPA resource in one graph —
   the coupling the hybrid fixed point has to route curves across. *)
let mixed_backend (spec : Spec.t) =
  {
    spec with
    Spec.resources =
      List.mapi
        (fun i (r : Spec.resource) ->
          if r.Spec.scheduler = Spec.Edf || i mod 2 = 1 then
            { r with Spec.backend = Spec.Cpa }
          else { r with Spec.backend = Spec.Rtc })
        spec.Spec.resources;
  }

let hybrid_bench () =
  banner "hybrid: rtc vs cpa vs mixed backends (BENCH_10.json)";
  let systems =
    [
      "paper", Paper.spec ();
      "gateway", Scenarios.Gateway.spec ();
      "avionics", Scenarios.Avionics.spec ();
      "fan_in_8", Scenarios.Synthetic.fan_in ~signals:8 ();
      "chain_12", Scenarios.Synthetic.chain ~stages:12 ();
      "network_8", Scenarios.Synthetic.network ();
    ]
  in
  let backends =
    [
      "cpa", forced_backend Spec.Cpa;
      "rtc", forced_backend Spec.Rtc;
      "mixed", mixed_backend;
    ]
  in
  let hi_map (r : Engine.result) =
    List.map
      (fun (o : Engine.element_outcome) ->
        ( o.Engine.element,
          match o.Engine.outcome with
          | Scheduling.Busy_window.Bounded i -> Some (Interval.hi i)
          | Scheduling.Busy_window.Unbounded _ -> None ))
      r.Engine.outcomes
  in
  Printf.printf "%-12s %8s %12s %10s %8s\n" "system" "backend" "sum R+"
    "bounded" "ms";
  let rows =
    List.map
      (fun (name, spec) ->
        let per_backend =
          List.map
            (fun (bname, force) ->
              let spec = force spec in
              let ms =
                time_ms (fun () ->
                    Engine.analyse ~mode:Engine.Hierarchical ~incremental:false
                      spec)
              in
              let r =
                ok
                  (Engine.analyse ~mode:Engine.Hierarchical ~incremental:false
                     spec)
              in
              let hs = hi_map r in
              let bounded =
                List.length (List.filter (fun (_, h) -> h <> None) hs)
              in
              let sum =
                List.fold_left
                  (fun acc (_, h) ->
                    match h with Some h -> acc + h | None -> acc)
                  0 hs
              in
              Printf.printf "%-12s %8s %12d %7d/%-2d %8.3f\n" name bname sum
                bounded (List.length hs) ms;
              bname, hs, bounded, sum, ms, Engine.status_name r.Engine.status)
            backends
        in
        name, per_backend)
      systems
  in
  (* Boundedness drift report: an element bounded under pure CPA may
     legitimately go unbounded under the conservative curve backend
     (long chains accumulate conversion jitter until the in-horizon
     arrival estimate exceeds the certified service rate), but the count
     is recorded so a regression in the conversion layer shows up as a
     jump here. *)
  let unbounded_regressions = ref 0 in
  List.iter
    (fun (name, per_backend) ->
      let find b =
        let _, hs, _, _, _, _ =
          List.find (fun (n, _, _, _, _, _) -> n = b) per_backend
        in
        hs
      in
      let cpa = find "cpa" in
      List.iter
        (fun b ->
          List.iter
            (fun (element, h) ->
              match h, List.assoc_opt element (find b) with
              | Some _, Some None ->
                incr unbounded_regressions;
                Printf.eprintf "%s/%s: bounded under cpa, unbounded under %s\n"
                  name element b
              | _ -> ())
            cpa)
        [ "rtc"; "mixed" ])
    rows;
  if !unbounded_regressions > 0 then
    Printf.printf "(%d element(s) bounded under cpa lose boundedness on the \
                   curve backend)\n"
      !unbounded_regressions;
  (* pure-backend agreement on the paper system: the reference system is
     jitter-free periodic with point execution intervals, where the RTC
     fixed-priority service chain and the CPA busy window are the same
     recurrence — per-element worst-case bounds must be equal *)
  let paper_backends = List.assoc "paper" rows in
  let paper_hs b =
    let _, hs, _, _, _, _ =
      List.find (fun (n, _, _, _, _, _) -> n = b) paper_backends
    in
    hs
  in
  let pure_agreement =
    List.for_all
      (fun (element, cpa) -> List.assoc_opt element (paper_hs "rtc") = Some cpa)
      (paper_hs "cpa")
  in
  if not pure_agreement then begin
    Printf.eprintf "hybrid: rtc and cpa bounds differ on the paper system\n";
    exit 1
  end;
  (* one DES trace of the paper system (backend-independent): every
     backend's analytic bounds must dominate the observed responses *)
  let paper_spec = Paper.spec () in
  let generators =
    [
      "S1", Des.Gen.periodic ~period:250 ();
      "S2", Des.Gen.periodic ~period:450 ();
      "S3", Des.Gen.periodic ~period:Paper.s3_period ();
      "S4", Des.Gen.periodic ~period:400 ();
    ]
  in
  let dominance =
    match Des.Simulator.run ~generators ~horizon:1_000_000 paper_spec with
    | Error e ->
      Printf.eprintf "hybrid: simulation failed: %s\n" e;
      exit 1
    | Ok trace ->
      List.map
        (fun (bname, _) ->
          let sound =
            List.for_all
              (fun (element, h) ->
                match h, Des.Trace.worst_response trace element with
                | Some bound, Some observed ->
                  if observed > bound then begin
                    Printf.eprintf "hybrid: %s bound %d below observed %d (%s)\n"
                      element bound observed bname;
                    false
                  end
                  else true
                | _ -> true)
              (paper_hs bname)
          in
          bname, sound)
        backends
  in
  if List.exists (fun (_, sound) -> not sound) dominance then begin
    Printf.eprintf "hybrid: analytic bounds below DES observations\n";
    exit 1
  end;
  Printf.printf
    "(pure rtc = pure cpa on paper; all backends dominate DES over 1e6)\n";
  (* pure-CPA kernel timings of the BENCH_1 cases: the backend plumbing
     must be pay-for-use, so check.sh can require these to sit within
     tolerance of the perf run's numbers *)
  let kernel_cases =
    [
      "paper_flat_sem", Paper.spec (), Engine.Flat_sem;
      "chain_16", Scenarios.Synthetic.chain ~stages:16 (), Engine.Hierarchical;
    ]
  in
  let kernel =
    List.map
      (fun (name, spec, mode) ->
        name, time_ms (fun () -> Engine.analyse ~mode ~incremental:false spec))
      kernel_cases
  in
  List.iter
    (fun (name, t) -> Printf.printf "kernel %-16s %8.3f ms\n" name t)
    kernel;
  let oc = open_out "BENCH_10.json" in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "{\n  \"benchmark\": \"hybrid rtc/cpa backend tightness and runtime\",\n";
  Buffer.add_string buf "  \"systems\": [\n";
  List.iteri
    (fun i (name, per_backend) ->
      Buffer.add_string buf (Printf.sprintf "    {\"name\": %S,\n" name);
      Buffer.add_string buf "     \"backends\": [\n";
      List.iteri
        (fun j (bname, hs, bounded, sum, ms, status) ->
          Buffer.add_string buf
            (Printf.sprintf
               "       {\"backend\": %S, \"sum_hi\": %d, \"bounded\": %d, \
                \"elements\": %d, \"ms\": %.3f, \"status\": %S}%s\n"
               bname sum bounded (List.length hs) ms status
               (if j = List.length per_backend - 1 then "" else ",")))
        per_backend;
      Buffer.add_string buf
        (Printf.sprintf "     ]}%s\n"
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"boundedness_regressions\": %d,\n"
       !unbounded_regressions);
  Buffer.add_string buf
    (Printf.sprintf "  \"paper_pure_agreement\": %b,\n" pure_agreement);
  Buffer.add_string buf
    (Printf.sprintf "  \"paper_dominance\": {%s},\n"
       (String.concat ", "
          (List.map
             (fun (b, sound) -> Printf.sprintf "%S: %b" b sound)
             dominance)));
  Buffer.add_string buf "  \"kernel\": [\n";
  List.iteri
    (fun i (name, t) ->
      Buffer.add_string buf
        (Printf.sprintf "    {\"name\": %S, \"full_ms\": %.3f}%s\n" name t
           (if i = List.length kernel - 1 then "" else ",")))
    kernel;
  let metrics =
    metrics_json ~warm:(fun () ->
        ignore
          (Engine.analyse ~mode:Engine.Hierarchical
             (forced_backend Spec.Rtc (Paper.spec ()))))
  in
  Buffer.add_string buf (Printf.sprintf "  ],\n  \"metrics\": %s\n}\n" metrics);
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote BENCH_10.json\n"

(* ------------------------------------------------------------------ *)

let experiments =
  [
    "tables", tables;
    "table3", table3;
    "figure4", figure4;
    "ablation-pending", ablation_pending;
    "ablation-k", ablation_k;
    "scaling", scaling;
    "convergence", convergence;
    "baseline-models", baseline_models;
    "buffers", buffers;
    "cross-framework", cross_framework;
    "robustness", robustness;
    "validate", validate;
    "perf", perf;
    "explore", explore_bench;
    "scale", scale;
    "serve", serve_bench;
    "propagation", propagation_bench;
    "hybrid", hybrid_bench;
  ]

let () =
  match Array.to_list Sys.argv with
  | [] | _ :: [] ->
    (* everything except the timing benches, which are opt-in *)
    List.iter
      (fun (name, run) ->
        if
          name <> "perf" && name <> "explore" && name <> "scale"
          && name <> "serve" && name <> "propagation" && name <> "hybrid"
        then run ())
      experiments
  | _ :: names ->
    List.iter
      (fun name ->
        match List.assoc_opt name experiments with
        | Some run -> run ()
        | None ->
          Printf.eprintf "unknown experiment %s; available: %s\n" name
            (String.concat " " (List.map fst experiments));
          exit 2)
      names
