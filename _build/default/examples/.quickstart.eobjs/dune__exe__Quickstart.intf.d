examples/quickstart.mli:
