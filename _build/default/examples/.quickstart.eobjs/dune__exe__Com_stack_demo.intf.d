examples/com_stack_demo.mli:
