examples/automotive_gateway.ml: Cpa_system Des Event_model Format List Printf Scenarios Timebase
