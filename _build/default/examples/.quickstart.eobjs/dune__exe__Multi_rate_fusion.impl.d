examples/multi_rate_fusion.ml: Cpa_system Event_model Format List Printf Timebase
