examples/com_stack_demo.ml: Comstack Event_model Format Hem List Printf String Timebase
