examples/avionics_stack.mli:
