examples/multi_rate_fusion.mli:
