examples/design_headroom.mli:
