examples/automotive_gateway.mli:
