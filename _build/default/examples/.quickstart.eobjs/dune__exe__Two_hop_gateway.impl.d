examples/two_hop_gateway.ml: Cpa_system Des Filename Format List Printf Scenarios Timebase
