examples/avionics_stack.ml: Cpa_system Des Format List Printf Scenarios Timebase
