examples/two_hop_gateway.mli:
