examples/quickstart.ml: Cpa_system Event_model Format Printf Timebase
