examples/design_headroom.ml: Cpa_system Format List Printf Scenarios Timebase
