(* COM-layer modeling in isolation: frame send types (direct, periodic,
   mixed), triggering vs pending transfer properties, and the life cycle
   of a hierarchical event model — pack, transport, inner update, unpack.

   Run with: dune exec examples/com_stack_demo.exe *)

module Time = Timebase.Time
module Interval = Timebase.Interval
module Stream = Event_model.Stream
module Signal = Comstack.Signal
module Frame = Comstack.Frame

let print_curve name stream =
  Format.printf "  %-26s delta_min(2..6) = [%s]@." name
    (String.concat "; "
       (List.map
          (fun n -> Time.to_string (Stream.delta_min stream n))
          [ 2; 3; 4; 5; 6 ]))

let demo_frame title frame =
  Format.printf "@.%s@." title;
  let h = Frame.hierarchy frame in
  print_curve "outer (frame activations)" (Hem.Model.outer h);
  List.iter
    (fun (inner : Hem.Model.inner) ->
      let kind =
        match inner.Hem.Model.kind with
        | Hem.Model.Triggering -> "triggering"
        | Hem.Model.Pending -> "pending"
      in
      print_curve
        (Printf.sprintf "inner %s (%s)" inner.Hem.Model.label kind)
        inner.Hem.Model.stream)
    (Hem.Model.inners h);
  h

let () =
  let speed = Stream.periodic ~name:"speed" ~period:200 in
  let diagnostics = Stream.periodic ~name:"diag" ~period:1700 in

  (* A direct frame: every speed update sends a frame; diagnostics ride
     along in whatever frame goes out next. *)
  let direct =
    Frame.make ~name:"drive" ~send_type:Frame.Direct
      ~signals:
        [ Signal.triggering ~name:"speed" speed;
          Signal.pending ~name:"diag" diagnostics ]
      ~tx_time:(Interval.point 4) ~priority:1
  in
  let h = demo_frame "Direct frame (speed triggers, diagnostics pending):" direct in

  (* Transport over the bus: suppose the bus analysis produced a response
     interval of [5:18]; the inner update adapts the embedded streams. *)
  let response = Interval.make ~lo:5 ~hi:18 in
  Format.printf "@.After bus transport with response %a:@." Interval.pp response;
  let transported = Hem.Inner_update.apply_response ~response h in
  print_curve "outer" (Hem.Model.outer transported);
  List.iter
    (fun s -> print_curve ("unpacked " ^ Stream.name s) s)
    (Hem.Deconstruct.unpack transported);

  (* A periodic frame ignores signal triggers entirely. *)
  let periodic =
    Frame.make ~name:"status" ~send_type:(Frame.Periodic 500)
      ~signals:
        [ Signal.triggering ~name:"speed" speed;
          Signal.pending ~name:"diag" diagnostics ]
      ~tx_time:(Interval.point 3) ~priority:2
  in
  ignore (demo_frame "Periodic frame (timer only, signals latched):" periodic);

  (* A mixed frame combines both trigger mechanisms. *)
  let mixed =
    Frame.make ~name:"hybrid" ~send_type:(Frame.Mixed 800)
      ~signals:[ Signal.triggering ~name:"speed" speed ]
      ~tx_time:(Interval.point 3) ~priority:3
  in
  ignore (demo_frame "Mixed frame (timer OR signal trigger):" mixed);

  (* CAN transmission times from payload sizes *)
  Format.printf "@.CAN transmission times at 1 time unit per bit:@.";
  List.iter
    (fun bytes ->
      Format.printf "  %d data bytes: %a bit times@." bytes Interval.pp
        (Comstack.Can.tx_interval ~data_bytes:bytes ~bit_time:1 ()))
    [ 0; 2; 4; 8 ]
