; The full-stack integration scenario (see lib/scenarios/avionics.ml):
; every scheduler of the framework in one system.
;
;   dune exec bin/hem_tool.exe -- analyse --file examples/specs/avionics.scm
(system
  (source nav (periodic 100))
  (source imu (periodic-jitter 80 20 0))
  (source radio (sporadic 500))

  (resource canA spnp)
  (resource mission edf)
  (resource backbone tdma)
  (resource display round-robin)

  (frame FS (bus canA) (send mixed 200) (tx 3 4) (priority 1)
    (signal sig_nav triggering (source nav))
    (signal sig_imu pending (source imu)))
  (frame FR (bus canA) (send direct) (tx 2 2) (priority 2)
    (signal sig_radio triggering (source radio)))

  (task nav_proc (resource mission) (cet 5 10) (priority 1) (deadline 60)
    (activation (signal FS sig_nav)))
  (task imu_proc (resource mission) (cet 4 8) (priority 2) (deadline 80)
    (activation (signal FS sig_imu)))
  (task radio_proc (resource mission) (cet 10 20) (priority 3) (deadline 300)
    (activation (signal FR sig_radio)))
  (task fusion (resource mission) (cet 6 12) (priority 4) (deadline 200)
    (activation (and (output nav_proc) (output imu_proc))))

  (task uplink_f (resource backbone) (cet 3 3) (priority 1) (service 4)
    (activation (output fusion)))
  (task uplink_r (resource backbone) (cet 2 2) (priority 2) (service 3)
    (activation (output radio_proc)))

  (task render (resource display) (cet 8 15) (priority 1) (service 5)
    (activation (output uplink_f)))
  (task log (resource display) (cet 4 6) (priority 2) (service 3)
    (activation (output uplink_r))))
