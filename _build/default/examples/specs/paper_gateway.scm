; The evaluation system of Rox & Ernst, DATE 2008 (section 6, figure 2):
; four sources, an AUTOSAR-style COM layer packing their signals into two
; CAN frames, and three receiving tasks on CPU1.
;
; Analyse with:
;   dune exec bin/hem_tool.exe -- analyse --file examples/specs/paper_gateway.scm
(system
  (source s1 (periodic 250))
  (source s2 (periodic 450))
  (source s3 (periodic 1000))   ; the pending source (period assumed, see DESIGN.md)
  (source s4 (periodic 400))

  (resource can spnp)
  (resource cpu1 spp)

  (frame f1 (bus can) (send direct) (tx 4 4) (priority 1)
    (signal sig1 triggering (source s1))
    (signal sig2 triggering (source s2))
    (signal sig3 pending (source s3)))

  (frame f2 (bus can) (send direct) (tx 2 2) (priority 2)
    (signal sig4 triggering (source s4)))

  (task t1 (resource cpu1) (cet 24 24) (priority 1)
    (activation (signal f1 sig1)))
  (task t2 (resource cpu1) (cet 32 32) (priority 2)
    (activation (signal f1 sig2)))
  (task t3 (resource cpu1) (cet 40 40) (priority 3)
    (activation (signal f1 sig3))))
