(** Hierarchical event sequences for a single stream (related work,
    reference [1] of the paper: Albers, Bodmann, Slomka).

    A finite {e inner} event sequence is embedded into an {e outer}
    sequence: every outer event stands for one complete replay of the
    inner sequence.  Unlike the paper's hierarchical event models — which
    embed {e independent} streams and keep them separable — this model
    describes a single stream's complex pattern more precisely than a
    standard event model can.  It is implemented here as the
    related-work baseline: the comparison bench shows where it helps
    (accurate single-stream bursts) and what it cannot do (per-signal
    unpacking after combination). *)

type t

val make : outer_period:int -> ?outer_jitter:int -> inner_offsets:int list -> unit -> t
(** [make ~outer_period ~inner_offsets ()] embeds the inner sequence with
    the given event offsets (sorted, first must be [0]) into a periodic
    outer sequence; [outer_jitter] (default 0) jitters every replay as a
    whole.
    @raise Invalid_argument if offsets are unsorted, negative, don't
    start at [0], or overrun the outer period. *)

val inner_length : t -> int

val delta_min : t -> int -> Timebase.Time.t
(** Exact minimum span of [n] consecutive events of the composite
    pattern, minimized over all start positions within the inner
    sequence and tightened by the outer jitter. *)

val delta_plus : t -> int -> Timebase.Time.t

val to_stream : ?name:string -> t -> Event_model.Stream.t

val sem_approximation : t -> Event_model.Sem.t
(** The best standard event model upper bound of the same pattern
    (fitted on the distance curve) — what a flat analysis would have to
    use; the comparison baseline of the accuracy bench. *)
