(** Gresser's event vector model (related work, reference [4] of the
    paper).

    An event stream is described by a set of cyclic elements; element
    [(offset, cycle)] contributes events at [offset + k * cycle] relative
    to the worst-case window start.  The union of the elements upper-
    bounds the number of events in any window, which makes demand bound
    functions — and with them EDF feasibility tests — directly
    computable.  This module provides the model, its arrival function,
    the demand bound function, and the embedding into the generic
    {!Event_model.Stream} representation, so it can serve as a baseline
    against the standard and hierarchical event models. *)

type element = {
  offset : int;  (** first event, relative to the window start; >= 0 *)
  cycle : Timebase.Time.t;  (** [Inf] for a one-shot element *)
}

type t

val make : element list -> t
(** @raise Invalid_argument on an empty list, a negative offset, or a
    non-positive finite cycle. *)

val elements : t -> element list

val of_periodic : period:int -> t

val of_periodic_burst : period:int -> burst:int -> d_min:int -> t
(** [burst] elements at offsets [0, d_min, 2 d_min, ...], each cycling
    with [period] — the classic event-vector encoding of a bursty
    stream. *)

val eta_plus : t -> int -> int
(** Maximum number of events in any half-open window of size [dt]:
    [sum over elements of max 0 (floor ((dt - 1 - offset) / cycle) + 1)]. *)

val delta_min : t -> int -> Timebase.Time.t
(** Pseudo-inverse of {!eta_plus}: the least span containing [n] events.
    [Inf] when the stream never produces [n] events (all elements
    one-shot). *)

val to_stream : ?name:string -> t -> Event_model.Stream.t
(** The stream with [delta_min] from this model and unbounded
    [delta_plus] (event vectors carry no lower arrival bound). *)

(** {1 Demand bound functions (EDF feasibility)} *)

type demand_source = {
  events : t;
  deadline : int;  (** relative deadline, >= 1 *)
  wcet : int;  (** worst-case execution time, >= 1 *)
}

val demand_bound : demand_source list -> int -> int
(** [demand_bound sources dt]: total execution demand that must complete
    within any window of size [dt] —
    [sum_i wcet_i * eta_plus_i (dt - deadline_i + 1)]. *)

val edf_feasible : ?horizon:int -> demand_source list -> (unit, int) result
(** Processor-demand test: [Ok ()] if [demand_bound dt <= dt] for every
    [dt] up to [horizon] (default 100_000); [Error dt] gives the first
    violating window size. *)

val pp : Format.formatter -> t -> unit
