module Time = Timebase.Time

type element = {
  offset : int;
  cycle : Time.t;
}

type t = element list

let make elements =
  if elements = [] then invalid_arg "Event_vector.make: no elements";
  List.iter
    (fun e ->
      if e.offset < 0 then invalid_arg "Event_vector.make: negative offset";
      match e.cycle with
      | Time.Fin c when c < 1 ->
        invalid_arg "Event_vector.make: non-positive cycle"
      | Time.Fin _ | Time.Inf -> ())
    elements;
  elements

let elements t = t

let of_periodic ~period = make [ { offset = 0; cycle = Time.of_int period } ]

let of_periodic_burst ~period ~burst ~d_min =
  if burst < 1 then invalid_arg "Event_vector.of_periodic_burst: burst < 1";
  if d_min < 0 then invalid_arg "Event_vector.of_periodic_burst: d_min < 0";
  if (burst - 1) * d_min >= period then
    invalid_arg "Event_vector.of_periodic_burst: burst does not fit";
  make
    (List.init burst (fun k ->
       { offset = k * d_min; cycle = Time.of_int period }))

let element_count e dt =
  (* events of one element in a half-open window of size dt *)
  if dt <= e.offset then 0
  else
    match e.cycle with
    | Time.Inf -> 1
    | Time.Fin c -> ((dt - 1 - e.offset) / c) + 1

let eta_plus t dt =
  if dt <= 0 then 0
  else List.fold_left (fun acc e -> acc + element_count e dt) 0 t

let max_events t =
  (* finite only when every element is one-shot *)
  if List.for_all (fun e -> e.cycle = Time.Inf) t then Some (List.length t)
  else None

let delta_min t n =
  if n <= 1 then Time.zero
  else begin
    match max_events t with
    | Some m when m < n -> Time.Inf
    | Some _ | None ->
      (* least span d with eta_plus (d + 1) >= n, by doubling + bisection
         over the monotone arrival function *)
      let enough d = eta_plus t (d + 1) >= n in
      let rec widen d = if enough d then d else widen (Stdlib.max 1 (d * 2)) in
      let hi = widen 1 in
      let rec bisect lo hi =
        if hi - lo <= 1 then if enough lo then lo else hi
        else
          let mid = lo + ((hi - lo) / 2) in
          if enough mid then bisect lo mid else bisect mid hi
      in
      Time.of_int (if enough 0 then 0 else bisect 0 hi)
  end

let to_stream ?(name = "event-vector") t =
  Event_model.Stream.make ~name ~delta_min:(delta_min t)
    ~delta_plus:(fun _ -> Time.Inf)

type demand_source = {
  events : t;
  deadline : int;
  wcet : int;
}

let demand_bound sources dt =
  let contribution s =
    if dt < s.deadline then 0
    else s.wcet * eta_plus s.events (dt - s.deadline + 1)
  in
  List.fold_left (fun acc s -> acc + contribution s) 0 sources

let edf_feasible ?(horizon = 100_000) sources =
  List.iter
    (fun s ->
      if s.deadline < 1 then invalid_arg "Event_vector.edf_feasible: deadline < 1";
      if s.wcet < 1 then invalid_arg "Event_vector.edf_feasible: wcet < 1")
    sources;
  let rec scan dt =
    if dt > horizon then Ok ()
    else if demand_bound sources dt > dt then Error dt
    else scan (dt + 1)
  in
  scan 1

let pp ppf t =
  Format.fprintf ppf "@[<h>{%a}@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       (fun ppf e ->
         Format.fprintf ppf "(a=%d, z=%s)" e.offset (Time.to_string e.cycle)))
    t
