module Time = Timebase.Time

type t = {
  outer_period : int;
  outer_jitter : int;
  offsets : int array;
}

let make ~outer_period ?(outer_jitter = 0) ~inner_offsets () =
  if outer_period < 1 then invalid_arg "Event_sequence.make: outer_period < 1";
  if outer_jitter < 0 then invalid_arg "Event_sequence.make: outer_jitter < 0";
  (match inner_offsets with
   | [] -> invalid_arg "Event_sequence.make: empty inner sequence"
   | first :: _ ->
     if first <> 0 then
       invalid_arg "Event_sequence.make: inner sequence must start at 0");
  let rec check_sorted = function
    | a :: (b :: _ as rest) ->
      if a > b then invalid_arg "Event_sequence.make: unsorted offsets"
      else check_sorted rest
    | [ last ] ->
      if last >= outer_period then
        invalid_arg "Event_sequence.make: inner sequence overruns the period"
    | [] -> ()
  in
  check_sorted inner_offsets;
  { outer_period; outer_jitter; offsets = Array.of_list inner_offsets }

let inner_length t = Array.length t.offsets

(* nominal position of the j-th event of the composite pattern *)
let position t j =
  let m = Array.length t.offsets in
  ((j / m) * t.outer_period) + t.offsets.(j mod m)

let same_replay t a b =
  let m = Array.length t.offsets in
  a / m = b / m

(* Distances are periodic in the start index with period [inner_length];
   per-replay jitter widens (resp. tightens) spans that cross a replay
   boundary by up to the jitter. *)
let span_over_starts t n pick jitter_sign =
  let m = Array.length t.offsets in
  let span s =
    let last = s + n - 1 in
    let nominal = position t last - position t s in
    if same_replay t s last then nominal
    else Stdlib.max 0 (nominal + (jitter_sign * t.outer_jitter))
  in
  let rec scan s best = if s >= m then best else scan (s + 1) (pick best (span s)) in
  scan 1 (span 0)

let delta_min t n =
  if n <= 1 then Time.zero
  else Time.of_int (span_over_starts t n Stdlib.min (-1))

let delta_plus t n =
  if n <= 1 then Time.zero
  else Time.of_int (span_over_starts t n Stdlib.max 1)

let to_stream ?(name = "event-sequence") t =
  Event_model.Stream.make ~name ~delta_min:(delta_min t)
    ~delta_plus:(delta_plus t)

let sem_approximation t = Event_model.Sem.fit (to_stream t)
