lib/baselines/event_vector.ml: Event_model Format List Stdlib Timebase
