lib/baselines/event_sequence.ml: Array Event_model Stdlib Timebase
