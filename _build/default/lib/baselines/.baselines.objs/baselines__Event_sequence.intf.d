lib/baselines/event_sequence.mli: Event_model Timebase
