lib/baselines/event_vector.mli: Event_model Format Timebase
