(** Sensitivity analysis on top of the global engine.

    Answers "how much slack does this design have": the largest scaling
    of a task's execution time, or the smallest period of a source, for
    which the system still converges to bounded response times.  Both
    searches exploit that schedulability is monotone in the varied
    parameter and bisect on it. *)

val schedulable : ?mode:Engine.mode -> Spec.t -> bool
(** True iff the analysis converges with bounded responses everywhere. *)

val scale_cet : Spec.t -> task:string -> percent:int -> Spec.t
(** A copy of the system with the named task's execution-time interval
    scaled to [percent]/100 (rounded up, floored at 1).
    @raise Not_found for an unknown task name. *)

val max_cet_scale :
  ?mode:Engine.mode -> ?limit_percent:int -> Spec.t -> task:string ->
  int option
(** [max_cet_scale spec ~task] is the largest percentage (searched up to
    [limit_percent], default 10_000) such that scaling the task's
    execution time to it keeps the system schedulable; [None] if the
    system is not schedulable even at the task's current size (100 %). *)

val min_source_period :
  ?mode:Engine.mode -> rebuild:(int -> Spec.t) -> lo:int -> hi:int ->
  unit -> int option
(** [min_source_period ~rebuild ~lo ~hi ()] is the smallest period in
    [\[lo, hi\]] for which [rebuild period] is schedulable, assuming
    schedulability is monotone in the period; [None] if even [hi]
    overloads. *)
