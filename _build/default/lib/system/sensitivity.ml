module Interval = Timebase.Interval

let schedulable ?mode spec =
  match Engine.analyse ?mode spec with
  | Ok result -> result.Engine.converged
  | Error _ -> false

let scale_cet spec ~task ~percent =
  if percent < 1 then invalid_arg "Sensitivity.scale_cet: percent < 1";
  let found = ref false in
  let scale v = Stdlib.max 1 ((v * percent + 99) / 100) in
  let tasks =
    List.map
      (fun (k : Spec.task) ->
        if String.equal k.task_name task then begin
          found := true;
          let cet =
            Interval.make
              ~lo:(scale (Interval.lo k.cet))
              ~hi:(scale (Interval.hi k.cet))
          in
          { k with cet }
        end
        else k)
      spec.Spec.tasks
  in
  if not !found then raise Not_found;
  { spec with tasks }

(* Largest x in [lo, hi] with [good x], for monotone good (true then
   false); None when even lo fails. *)
let bisect_max ~lo ~hi good =
  if not (good lo) then None
  else begin
    let rec search lo hi =
      (* invariant: good lo, not (good hi) *)
      if hi - lo <= 1 then lo
      else
        let mid = lo + ((hi - lo) / 2) in
        if good mid then search mid hi else search lo mid
    in
    if good hi then Some hi else Some (search lo hi)
  end

let max_cet_scale ?mode ?(limit_percent = 10_000) spec ~task =
  let good percent =
    schedulable ?mode (scale_cet spec ~task ~percent)
  in
  bisect_max ~lo:100 ~hi:limit_percent good

let min_source_period ?mode ~rebuild ~lo ~hi () =
  if lo > hi then invalid_arg "Sensitivity.min_source_period: lo > hi";
  let good period = schedulable ?mode (rebuild period) in
  (* smallest good period: mirror of bisect_max *)
  if not (good hi) then None
  else if good lo then Some lo
  else begin
    let rec search lo hi =
      (* invariant: not (good lo), good hi *)
      if hi - lo <= 1 then hi
      else
        let mid = lo + ((hi - lo) / 2) in
        if good mid then search lo mid else search mid hi
    in
    Some (search lo hi)
  end
