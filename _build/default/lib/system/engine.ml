module Interval = Timebase.Interval
module Stream = Event_model.Stream
module Sem = Event_model.Sem
module Combine = Event_model.Combine
module Task_op = Event_model.Task_op
module Busy_window = Scheduling.Busy_window
module Rt_task = Scheduling.Rt_task

let log_src = Logs.Src.create "cpa.engine" ~doc:"global analysis iteration"

module Log = (val Logs.src_log log_src : Logs.LOG)

type mode =
  | Hierarchical
  | Flat_stream
  | Flat_sem

type element_outcome = {
  element : string;
  resource : string;
  outcome : Busy_window.outcome;
}

type result = {
  mode : mode;
  spec : Spec.t;
  converged : bool;
  iterations : int;
  outcomes : element_outcome list;
  resolve : Spec.activation -> Stream.t;
  hierarchy : string -> Hem.Model.t;
  pre_bus_hierarchy : string -> Hem.Model.t;
}

exception Cycle of string

(* Resolution context for one global iteration: all streams are derived
   from the response-time estimates of the previous iteration. *)
type ctx = {
  spec : Spec.t;
  mode : mode;
  response_of : string -> Interval.t;
  task_outputs : (string, Stream.t) Hashtbl.t;
  frames_pre : (string, Hem.Model.t) Hashtbl.t;
  frames_post : (string, Hem.Model.t) Hashtbl.t;
  in_progress : (string, unit) Hashtbl.t;
}

let make_ctx spec mode response_of =
  {
    spec;
    mode;
    response_of;
    task_outputs = Hashtbl.create 16;
    frames_pre = Hashtbl.create 8;
    frames_post = Hashtbl.create 8;
    in_progress = Hashtbl.create 16;
  }

let memo table key compute =
  match Hashtbl.find_opt table key with
  | Some v -> v
  | None ->
    let v = compute () in
    Hashtbl.add table key v;
    v

let guarded ctx key compute =
  if Hashtbl.mem ctx.in_progress key then raise (Cycle key);
  Hashtbl.add ctx.in_progress key ();
  let v = compute () in
  Hashtbl.remove ctx.in_progress key;
  v

let find_task spec name =
  List.find (fun (k : Spec.task) -> String.equal k.task_name name) spec.Spec.tasks

let find_frame spec name =
  List.find
    (fun (f : Spec.frame) -> String.equal f.frame_name name)
    spec.Spec.frames

let rec resolve ctx (act : Spec.activation) =
  match act with
  | Spec.From_source s -> List.assoc s ctx.spec.Spec.sources
  | Spec.From_output name -> task_output ctx name
  | Spec.From_frame name -> Hem.Model.outer (frame_post ctx name)
  | Spec.From_signal { frame; signal } -> begin
    let post = frame_post ctx frame in
    match ctx.mode with
    | Hierarchical -> Hem.Deconstruct.unpack_label post signal
    | Flat_stream -> Hem.Model.outer post
    | Flat_sem ->
      let outer = Hem.Model.outer post in
      Sem.to_stream ~name:(Stream.name outer ^ "~sem") (Sem.fit outer)
  end
  | Spec.Or_of acts -> Combine.or_combine (List.map (resolve ctx) acts)
  | Spec.And_of acts -> Combine.and_combine (List.map (resolve ctx) acts)

and task_output ctx name =
  memo ctx.task_outputs name (fun () ->
    guarded ctx ("task:" ^ name) (fun () ->
      let k = find_task ctx.spec name in
      let input = resolve ctx k.Spec.activation in
      Task_op.output ~name:(name ^ ".out") ~response:(ctx.response_of name)
        input))

and frame_pre ctx name =
  memo ctx.frames_pre name (fun () ->
    guarded ctx ("frame:" ^ name) (fun () ->
      let f = find_frame ctx.spec name in
      let signals =
        List.map
          (fun (s : Spec.signal_binding) ->
            {
              Comstack.Signal.name = s.signal_name;
              property = s.property;
              stream = resolve ctx s.origin;
            })
          f.signals
      in
      Comstack.Frame.hierarchy
        (Comstack.Frame.make ~name:f.frame_name ~send_type:f.send_type
           ~signals ~tx_time:f.tx_time ~priority:f.frame_priority)))

and frame_post ctx name =
  memo ctx.frames_post name (fun () ->
    let pre = frame_pre ctx name in
    Hem.Inner_update.apply_response ~response:(ctx.response_of name) pre)

(* Local analysis of one resource under the streams of [ctx]. *)
let analyse_resource ?window_limit ?q_limit ctx (res : Spec.resource) =
  let tasks =
    List.filter
      (fun (k : Spec.task) -> String.equal k.resource res.res_name)
      ctx.spec.Spec.tasks
  in
  let frames =
    List.filter
      (fun (f : Spec.frame) -> String.equal f.bus res.res_name)
      ctx.spec.Spec.frames
  in
  let rt_of_task (k : Spec.task) =
    Rt_task.make ~name:k.task_name ~cet:k.cet ~priority:k.priority
      ~activation:(resolve ctx k.activation)
  in
  let rt_frames =
    List.map
      (fun (f : Spec.frame) ->
        Rt_task.make ~name:f.frame_name ~cet:f.tx_time
          ~priority:f.frame_priority
          ~activation:(Hem.Model.outer (frame_pre ctx f.frame_name)))
      frames
  in
  let rt_tasks = List.map rt_of_task tasks @ rt_frames in
  let outcomes =
    match res.scheduler with
    | Spec.Spp -> Scheduling.Spp.analyse ?window_limit ?q_limit rt_tasks
    | Spec.Spnp -> Scheduling.Spnp.analyse ?window_limit ?q_limit rt_tasks
    | Spec.Tdma ->
      let slot_of (k : Spec.task) rt =
        { Scheduling.Tdma.task = rt; length = Option.get k.service }
      in
      let slots = List.map2 slot_of tasks (List.map rt_of_task tasks) in
      Scheduling.Tdma.analyse ?window_limit ?q_limit slots
    | Spec.Round_robin ->
      let share_of (k : Spec.task) rt =
        { Scheduling.Round_robin.task = rt; quantum = Option.get k.service }
      in
      let shares = List.map2 share_of tasks (List.map rt_of_task tasks) in
      Scheduling.Round_robin.analyse ?window_limit ?q_limit shares
    | Spec.Edf ->
      let edf_of (k : Spec.task) rt =
        { Scheduling.Edf.task = rt; deadline = Option.get k.deadline }
      in
      let edf_tasks = List.map2 edf_of tasks (List.map rt_of_task tasks) in
      Scheduling.Edf.analyse ?window_limit edf_tasks
  in
  List.map
    (fun ((rt : Rt_task.t), outcome) ->
      { element = rt.Rt_task.name; resource = res.res_name; outcome })
    outcomes

let analyse ?(mode = Hierarchical) ?(max_iterations = 64) ?window_limit
    ?q_limit spec =
  match Spec.validate spec with
  | Error e -> Error e
  | Ok () -> begin
    let zero = Interval.make ~lo:0 ~hi:0 in
    let responses : (string, Interval.t) Hashtbl.t = Hashtbl.create 16 in
    let response_of name =
      Option.value (Hashtbl.find_opt responses name) ~default:zero
    in
    let run_iteration () =
      let ctx = make_ctx spec mode response_of in
      let outcomes =
        List.concat_map
          (analyse_resource ?window_limit ?q_limit ctx)
          spec.Spec.resources
      in
      ctx, outcomes
    in
    let rec iterate i =
      let ctx, outcomes = run_iteration () in
      Log.debug (fun m ->
        m "iteration %d: %a" i
          (Format.pp_print_list ~pp_sep:Format.pp_print_space
             (fun ppf o ->
               Format.fprintf ppf "%s=%a" o.element Busy_window.pp_outcome
                 o.outcome))
          outcomes);
      let all_bounded =
        List.for_all
          (fun o ->
            match o.outcome with
            | Busy_window.Bounded _ -> true
            | Busy_window.Unbounded _ -> false)
          outcomes
      in
      let changed = ref false in
      List.iter
        (fun o ->
          match o.outcome with
          | Busy_window.Bounded r ->
            if not (Interval.equal (response_of o.element) r) then begin
              changed := true;
              Hashtbl.replace responses o.element r
            end
          | Busy_window.Unbounded _ -> ())
        outcomes;
      if (not !changed) || (not all_bounded) || i >= max_iterations then
        let converged = (not !changed) && all_bounded in
        ctx, outcomes, converged, i
      else iterate (i + 1)
    in
    match iterate 1 with
    | ctx, outcomes, converged, iterations ->
      Ok
        {
          mode;
          spec;
          converged;
          iterations;
          outcomes;
          resolve = resolve ctx;
          hierarchy = frame_post ctx;
          pre_bus_hierarchy = frame_pre ctx;
        }
    | exception Cycle name ->
      Error (Printf.sprintf "cyclic stream dependency involving %s" name)
  end

let response result name =
  match
    List.find (fun o -> String.equal o.element name) result.outcomes
  with
  | { outcome = Busy_window.Bounded r; _ } -> Some r
  | { outcome = Busy_window.Unbounded _; _ } -> None
