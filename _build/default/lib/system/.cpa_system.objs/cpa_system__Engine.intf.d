lib/system/engine.mli: Event_model Hem Scheduling Spec Stdlib Timebase
