lib/system/sensitivity.ml: Engine List Spec Stdlib String Timebase
