lib/system/spec_file.mli: Spec
