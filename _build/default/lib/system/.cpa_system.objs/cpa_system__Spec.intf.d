lib/system/spec.mli: Comstack Event_model Hem Timebase
