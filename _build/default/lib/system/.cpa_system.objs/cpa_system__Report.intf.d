lib/system/report.mli: Engine Format Timebase
