lib/system/sensitivity.mli: Engine Spec
