lib/system/spec.ml: Comstack Event_model Format Hem List Printf String Timebase
