lib/system/report.ml: Comstack Engine Event_model Format Hem List Printf Scheduling Spec Timebase
