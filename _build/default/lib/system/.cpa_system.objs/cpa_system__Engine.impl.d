lib/system/engine.ml: Comstack Event_model Format Hashtbl Hem List Logs Option Printf Scheduling Spec String Timebase
