lib/system/spec_file.ml: Buffer Comstack Event_model Format Hem List Option Printf Spec String Timebase
