type t = {
  name : string;
  cet : Timebase.Interval.t;
  priority : int;
  activation : Event_model.Stream.t;
}

let make ~name ~cet ~priority ~activation =
  if Timebase.Interval.lo cet < 1 then
    invalid_arg "Rt_task.make: best-case execution time < 1";
  { name; cet; priority; activation }

let pp ppf t =
  Format.fprintf ppf "%s (C=%a, prio=%d, act=%s)" t.name Timebase.Interval.pp
    t.cet t.priority
    (Event_model.Stream.name t.activation)
