(** Earliest-deadline-first schedulability analysis.

    Processor-demand criterion generalized to arbitrary activation event
    streams: the demand that must complete inside any window of size
    [dt] is [sum_i C+_i * eta_plus_i (dt - D_i + 1)]; the task set is
    schedulable iff the demand never exceeds the window, checked up to
    the length of the longest busy period.  A schedulable task's
    response time is bounded by its relative deadline. *)

type task = {
  task : Rt_task.t;
  deadline : int;  (** relative deadline, >= 1 *)
}

val demand_bound : task list -> int -> (int, string) result
(** [demand_bound tasks dt]: cumulated demand with absolute deadline
    inside a window of size [dt]; [Error] on unbounded arrivals. *)

val busy_period : ?window_limit:int -> task list -> (int, string) result
(** Length of the longest processor busy period (least fixed point of
    the total-demand equation); [Error] on overload. *)

val schedulable : ?window_limit:int -> task list -> (unit, string) result
(** [Ok ()] iff the demand-bound test passes for every window size up to
    the busy period. *)

val analyse :
  ?window_limit:int -> task list -> (Rt_task.t * Busy_window.outcome) list
(** [Bounded [C- : D_i]] for every task of a schedulable set — EDF
    guarantees completion by the deadline — and [Unbounded] for every
    task otherwise. *)
