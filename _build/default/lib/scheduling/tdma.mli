(** TDMA response-time analysis.

    Each task owns a slot of fixed length inside a fixed cycle; the
    service available to a task in a window of length [w] is bounded below
    by the worst alignment, in which the window opens just after the
    task's slot closed.  TDMA isolates tasks from each other, so the
    analysis needs no interference terms — only the service bound. *)

type slot = {
  task : Rt_task.t;
  length : int;  (** slot length, >= 1 *)
}

val cycle_length : slot list -> int

val service : slot:int -> cycle:int -> int -> int
(** [service ~slot ~cycle w]: guaranteed service inside any window of
    length [w] for a slot of length [slot] in a cycle of length [cycle]
    (worst-case alignment). *)

val response_time :
  ?window_limit:int ->
  ?q_limit:int ->
  slots:slot list ->
  task:Rt_task.t ->
  unit ->
  Busy_window.outcome
(** @raise Invalid_argument if [task] owns no slot in [slots]. *)

val analyse :
  ?window_limit:int ->
  ?q_limit:int ->
  slot list ->
  (Rt_task.t * Busy_window.outcome) list
