(** Round-robin response-time analysis.

    Tasks share the resource in rounds; each backlogged task receives up
    to its quantum per round.  The interference another task can inflict
    during the processing of [q] own activations is bounded both by that
    task's own demand ([eta_plus * C+]) and by its quantum times the
    number of rounds the own demand needs — whichever is smaller (Racu's
    round-robin bound for compositional analysis). *)

type share = {
  task : Rt_task.t;
  quantum : int;  (** per-round service quantum, >= 1 *)
}

val response_time :
  ?window_limit:int ->
  ?q_limit:int ->
  shares:share list ->
  task:Rt_task.t ->
  unit ->
  Busy_window.outcome
(** @raise Invalid_argument if [task] has no share in [shares]. *)

val analyse :
  ?window_limit:int ->
  ?q_limit:int ->
  share list ->
  (Rt_task.t * Busy_window.outcome) list
