(** Tasks as seen by a local scheduling analysis.

    A task has a core execution time interval [\[C-:C+\]] (or transmission
    time for bus messages), a priority, and an activating event stream.
    {b Priority convention: a numerically smaller value is a higher
    priority.} *)

type t = {
  name : string;
  cet : Timebase.Interval.t;  (** core execution / transmission time *)
  priority : int;  (** smaller value = higher priority *)
  activation : Event_model.Stream.t;
}

val make :
  name:string ->
  cet:Timebase.Interval.t ->
  priority:int ->
  activation:Event_model.Stream.t ->
  t
(** @raise Invalid_argument if the best-case execution time is [< 1]. *)

val pp : Format.formatter -> t -> unit
