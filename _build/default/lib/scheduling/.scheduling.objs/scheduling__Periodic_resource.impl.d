lib/scheduling/periodic_resource.ml: Busy_window Edf Event_model Format List Printf Rt_task Stdlib Timebase
