lib/scheduling/edf.mli: Busy_window Rt_task
