lib/scheduling/periodic_resource.mli: Busy_window Edf Format Rt_task
