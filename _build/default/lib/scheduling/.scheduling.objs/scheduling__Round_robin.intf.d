lib/scheduling/round_robin.mli: Busy_window Rt_task
