lib/scheduling/tdma.mli: Busy_window Rt_task
