lib/scheduling/busy_window.ml: Event_model Format List Printf Rt_task Stdlib Timebase
