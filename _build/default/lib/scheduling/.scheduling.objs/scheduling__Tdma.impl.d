lib/scheduling/tdma.ml: Busy_window Event_model List Rt_task Stdlib Timebase
