lib/scheduling/busy_window.mli: Format Rt_task Timebase
