lib/scheduling/spp.ml: Busy_window Event_model List Printf Rt_task Timebase
