lib/scheduling/spp.mli: Busy_window Rt_task
