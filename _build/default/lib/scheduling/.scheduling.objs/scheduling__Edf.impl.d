lib/scheduling/edf.ml: Busy_window Event_model List Option Printf Rt_task Stdlib Timebase
