lib/scheduling/round_robin.ml: Busy_window Event_model List Rt_task Stdlib Timebase
