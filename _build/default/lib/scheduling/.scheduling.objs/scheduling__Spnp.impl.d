lib/scheduling/spnp.ml: Busy_window Event_model List Printf Rt_task Stdlib Timebase
