lib/scheduling/rt_task.ml: Event_model Format Timebase
