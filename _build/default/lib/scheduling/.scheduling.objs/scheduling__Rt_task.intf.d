lib/scheduling/rt_task.mli: Event_model Format Timebase
