lib/scheduling/spnp.mli: Busy_window Rt_task
