(** Periodic resource model for compositional hierarchical scheduling
    (Shin & Lee, RTSS 2003 — reference [8] of the paper).

    The paper's opening observation is that local analysis has been
    extended to hierarchical {e scheduling} while event streams stayed
    flat; this module supplies that scheduling side.  A periodic resource
    Γ = (Π, Θ) guarantees Θ units of service every Π time units; its
    supply bound function is the worst-case service in any window, with
    the classic initial blackout of 2(Π − Θ).  Components of tasks are
    analysed against the supply instead of a dedicated processor, and an
    interface (the minimum budget for a given period) can be synthesized
    by bisection. *)

type t = private {
  period : int;  (** Π >= 1 *)
  budget : int;  (** Θ, with 1 <= Θ <= Π *)
}

val make : period:int -> budget:int -> t
(** @raise Invalid_argument unless [1 <= budget <= period]. *)

val supply : t -> int -> int
(** [supply r t]: guaranteed service in any window of length [t]
    (the supply bound function sbf). *)

val supply_inverse : t -> int -> int
(** Least window length whose supply reaches a demand. *)

val utilization_percent : t -> int
(** [100 * budget / period], rounded down. *)

(** {1 Component analysis under a periodic resource} *)

val spp_response_time :
  ?window_limit:int ->
  ?q_limit:int ->
  resource:t ->
  task:Rt_task.t ->
  others:Rt_task.t list ->
  unit ->
  Busy_window.outcome
(** Static-priority response time inside the component: the busy window
    must additionally wait for supply —
    [finish q = supply_inverse (q C+ + interference)] iterated to a
    fixed point. *)

val edf_schedulable :
  ?window_limit:int -> resource:t -> Edf.task list -> (unit, string) result
(** Demand-bound test against the supply bound function:
    [dbf(t) <= sbf(t)] for every window up to the busy period. *)

val min_budget_spp :
  ?window_limit:int -> period:int -> Rt_task.t list -> int option
(** Smallest budget (for the given replenishment period) under which
    every task of the SPP component remains bounded — the component's
    interface; [None] if even a dedicated resource ([budget = period])
    fails. *)

val min_budget_edf :
  ?window_limit:int -> period:int -> Edf.task list -> int option

val pp : Format.formatter -> t -> unit
