module Interval = Timebase.Interval
module Stream = Event_model.Stream
module Spec = Cpa_system.Spec

let fan_in ?base_period ?(cet = 20) ?(tx_time = 4) ~signals ()  =
  if signals < 1 then invalid_arg "Synthetic.fan_in: signals < 1";
  let base_period =
    match base_period with
    | Some p -> p
    | None -> 300 * signals
  in
  let source_name i = Printf.sprintf "S%d" (i + 1) in
  let signal_name i = Printf.sprintf "sig%d" (i + 1) in
  let task_name i = Printf.sprintf "T%d" (i + 1) in
  let indices = List.init signals Fun.id in
  let sources =
    List.map
      (fun i ->
        let period = base_period + (50 * i) in
        source_name i, Stream.periodic ~name:(source_name i) ~period)
      indices
  in
  let frame =
    Spec.frame ~name:"F" ~bus:"CAN" ~send_type:Comstack.Frame.Direct
      ~tx_time:(Interval.point tx_time) ~priority:1
      ~signals:
        (List.map
           (fun i ->
             Spec.signal ~name:(signal_name i)
               ~origin:(Spec.From_source (source_name i))
               ())
           indices)
      ()
  in
  let tasks =
    List.map
      (fun i ->
        Spec.task ~name:(task_name i) ~resource:"CPU" ~cet:(Interval.point cet)
          ~priority:(i + 1)
          ~activation:(Spec.From_signal { frame = "F"; signal = signal_name i })
          ())
      indices
  in
  Spec.make ~sources
    ~resources:
      [
        { Spec.res_name = "CAN"; scheduler = Spec.Spnp };
        { Spec.res_name = "CPU"; scheduler = Spec.Spp };
      ]
    ~tasks ~frames:[ frame ] ()

let chain ?(period = 500) ?(stages = 4) () =
  if stages < 1 then invalid_arg "Synthetic.chain: stages < 1";
  let task_name i = Printf.sprintf "stage%d" (i + 1) in
  let cpu i = Printf.sprintf "cpu%d" (i mod 2) in
  let tasks =
    List.init stages (fun i ->
      let activation =
        if i = 0 then Spec.From_source "src"
        else Spec.From_output (task_name (i - 1))
      in
      Spec.task ~name:(task_name i) ~resource:(cpu i)
        ~cet:(Interval.make ~lo:10 ~hi:(20 + (5 * i)))
        ~priority:(i + 1) ~activation ())
  in
  Spec.make
    ~sources:[ "src", Stream.periodic ~name:"src" ~period ]
    ~resources:
      [
        { Spec.res_name = "cpu0"; scheduler = Spec.Spp };
        { Spec.res_name = "cpu1"; scheduler = Spec.Spp };
      ]
    ~tasks ()
