(** A two-hop gateway system: signals are packed into a frame, cross a
    first CAN bus, are consumed by gateway tasks, whose outputs are
    re-packed into a backbone frame crossing a second bus to the final
    receivers.

    This exercises the natural extension of the paper's model: the
    hierarchy is unpacked at the gateway and a {e new} hierarchy is
    constructed from the gateway outputs, so per-signal timing survives
    two transport hops. *)

val spec : ?s1_period:int -> ?s2_period:int -> unit -> Cpa_system.Spec.t
(** Sources default to periods 250 and 450. *)

val receivers : string list
(** The final receiving tasks, [\["D1"; "D2"\]]. *)

val path_s1 : string list
(** The element chain of signal 1: frame G1, task GW1, frame B1, task
    D1 — for end-to-end latency accounting. *)
