(** A full-stack integration scenario exercising every scheduler of the
    framework in one system: sensors feed a mixed CAN frame (timer OR
    data-triggered), an EDF mission computer consumes the unpacked
    signals and fuses them with an AND join, its outputs cross a TDMA
    backbone, and a round-robin display processor consumes the result.

    Used by the integration tests as the "everything at once" system and
    by the simulator cross-validation. *)

val spec : unit -> Cpa_system.Spec.t

val all_elements : string list
(** Every task and frame, for response iteration. *)

val generators : unit -> (string * Des.Gen.t) list
(** Matching simulator generators for every source. *)
