lib/scenarios/synthetic.mli: Cpa_system
