lib/scenarios/paper_system.mli: Cpa_system
