lib/scenarios/synthetic.ml: Comstack Cpa_system Event_model Fun List Printf Timebase
