lib/scenarios/avionics.mli: Cpa_system Des
