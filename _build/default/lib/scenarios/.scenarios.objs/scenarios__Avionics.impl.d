lib/scenarios/avionics.ml: Comstack Cpa_system Des Event_model Hem Timebase
