lib/scenarios/gateway.ml: Comstack Cpa_system Event_model Timebase
