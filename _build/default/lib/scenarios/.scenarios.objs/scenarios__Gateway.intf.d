lib/scenarios/gateway.mli: Cpa_system
