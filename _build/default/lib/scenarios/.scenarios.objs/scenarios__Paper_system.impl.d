lib/scenarios/paper_system.ml: Comstack Cpa_system Event_model Hem Timebase
