let unpack h = List.map (fun (i : Model.inner) -> i.stream) (Model.inners h)

let unpack_nth h i =
  match List.nth_opt (Model.inners h) i with
  | Some inner -> inner.stream
  | None -> invalid_arg "Deconstruct.unpack_nth: index out of range"

let unpack_label h label = (Model.find_inner h label).stream
