(** Hierarchical event models (paper, Definitions 3-5).

    A hierarchical event stream results from combining [n] input streams;
    it has one {e outer} event stream describing the combined events (e.g.
    frame transmissions) and one {e inner} event stream per combined input
    (e.g. the signals transported in the frames).  The hierarchical event
    model is the tuple [H = (F_out, L, C)]: the outer function tuple, the
    list of inner function tuples, and the construction rule that produced
    the hierarchy. *)

(** The construction rule [C] recorded in the model.  Operations that
    modify the outer stream dispatch on this rule to pick the matching
    inner update function (Definition 7). *)
type rule = Packed  (** built by the pack-HSC Omega_pa (Definition 8) *)

(** Role of a combined input stream in the communication layer. *)
type signal_kind =
  | Triggering  (** each event triggers a combined (outer) event *)
  | Pending  (** events are latched and ride along with outer events *)

type inner = {
  label : string;  (** name of the combined input stream *)
  kind : signal_kind;
  stream : Event_model.Stream.t;  (** the inner event model F_i *)
}

type t = {
  outer : Event_model.Stream.t;  (** F_out *)
  inners : inner list;  (** L = (F_1, ..., F_n) *)
  rule : rule;  (** C *)
}

val make : outer:Event_model.Stream.t -> inners:inner list -> rule:rule -> t
(** @raise Invalid_argument if [inners] is empty or labels collide. *)

val outer : t -> Event_model.Stream.t

val inners : t -> inner list

val rule : t -> rule

val find_inner : t -> string -> inner
(** [find_inner t label] is the inner stream combined from input [label].
    @raise Not_found if no inner stream has that label. *)

val arity : t -> int
(** Number of inner streams. *)

val map_inner_streams :
  (inner -> Event_model.Stream.t) -> t -> t
(** Rebuilds the model with transformed inner streams (outer and rule
    unchanged).  Building block for inner update functions. *)

val pp : Format.formatter -> t -> unit
