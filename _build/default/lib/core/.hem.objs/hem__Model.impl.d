lib/core/model.ml: Event_model Format List String
