lib/core/inner_update.mli: Event_model Model Timebase
