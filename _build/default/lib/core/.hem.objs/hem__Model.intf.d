lib/core/model.mli: Event_model Format
