lib/core/inner_update.ml: Event_model Model Printf Timebase
