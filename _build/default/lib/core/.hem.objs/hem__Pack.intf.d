lib/core/pack.mli: Event_model Model
