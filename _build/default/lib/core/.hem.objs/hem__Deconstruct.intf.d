lib/core/deconstruct.mli: Event_model Model
