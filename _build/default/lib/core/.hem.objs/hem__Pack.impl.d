lib/core/pack.ml: Event_model List Model Printf String Timebase
