lib/core/deconstruct.ml: List Model
