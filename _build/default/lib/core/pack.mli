(** The pack hierarchical stream constructor Omega_pa (paper, Definition 8).

    Models a communication layer that packs signals from several input
    streams into frames.  Triggering inputs cause a frame transmission on
    every event; pending inputs are latched into a register and transported
    by whatever frame is sent next.  The outer stream (frame activations)
    is the OR-combination of the triggering inputs (eqs. 3-4 restricted to
    the triggering set T); the inner streams describe, per input, the
    distance between frames that transport a {e fresh} value of that
    input:

    - triggering input (eqs. 5-6): the frame distances equal the signal
      distances;
    - pending input (eqs. 7-8):
      [delta_min' n = max (delta_min n - delta_plus_out 2) (delta_min_out n)]
      and [delta_plus' n = inf] (a pending value may never be refreshed).

    A frame that is also sent periodically (periodic or mixed frame types)
    is modelled by adding its timer as an additional triggering input. *)

type input = {
  label : string;
  kind : Model.signal_kind;
  stream : Event_model.Stream.t;
}

val input :
  ?kind:Model.signal_kind -> string -> Event_model.Stream.t -> input
(** Convenience constructor; [kind] defaults to [Triggering]. *)

val pack : ?name:string -> input list -> Model.t
(** [pack inputs] builds the hierarchical event model of the packed frame
    stream.  [name] names the outer stream (default derived from input
    labels).

    @raise Invalid_argument if [inputs] is empty or contains no triggering
    input (a frame with only pending inputs is never transmitted). *)
