module Stream = Event_model.Stream

type rule = Packed

type signal_kind =
  | Triggering
  | Pending

type inner = {
  label : string;
  kind : signal_kind;
  stream : Stream.t;
}

type t = {
  outer : Stream.t;
  inners : inner list;
  rule : rule;
}

let make ~outer ~inners ~rule =
  if inners = [] then invalid_arg "Hem.Model.make: no inner streams";
  let labels = List.map (fun i -> i.label) inners in
  let sorted = List.sort_uniq String.compare labels in
  if List.length sorted <> List.length labels then
    invalid_arg "Hem.Model.make: duplicate inner labels";
  { outer; inners; rule }

let outer t = t.outer

let inners t = t.inners

let rule t = t.rule

let find_inner t label =
  List.find (fun i -> String.equal i.label label) t.inners

let arity t = List.length t.inners

let map_inner_streams f t =
  { t with inners = List.map (fun i -> { i with stream = f i }) t.inners }

let pp_kind ppf = function
  | Triggering -> Format.pp_print_string ppf "triggering"
  | Pending -> Format.pp_print_string ppf "pending"

let pp ppf t =
  Format.fprintf ppf "@[<v 2>hierarchical stream (outer %s):@ "
    (Stream.name t.outer);
  List.iter
    (fun i ->
      Format.fprintf ppf "inner %s (%a): %s@ " i.label pp_kind i.kind
        (Stream.name i.stream))
    t.inners;
  Format.fprintf ppf "@]"
