(** Inner update functions (paper, Definitions 7 and 9).

    When a stream operation is applied to a hierarchical event stream, the
    operation itself only transforms the outer stream; the inner update
    function [B] derives the corresponding changes of the inner streams.
    This module implements [B] for the response-time operation Theta_tau
    applied to pack-constructed hierarchies (Definition 9): with
    response-time interval [\[r-:r+\]] and [k] the maximum number of
    simultaneous outer events before the operation,

    - [delta_min' n = max (delta_min n - (r+ - r-) - (k-1)*r-) ((n-1)*r-)]
    - [delta_plus' n = delta_plus n + (r+ - r-) + (k-1)*r-]

    (each previously simultaneous event can be serialized behind [k-1]
    others, each taking at least [r-]). *)

val simultaneity : Event_model.Stream.t -> int
(** [simultaneity s] is the maximum number of events of [s] that can
    arrive at the same instant: the largest [n] with [delta_min s n = 0]
    (with discrete time, [eta_plus s 1]). *)

val apply_response :
  ?simultaneity:int -> response:Timebase.Interval.t -> Model.t -> Model.t
(** [apply_response ~response h] is the hierarchical event model after the
    analysed component (e.g. the bus transmitting the frame) processed the
    outer stream with response-time interval [response]: the outer stream
    becomes the Theta_tau output stream, and every inner stream is adapted
    by the inner update function matching the model's construction rule.

    [simultaneity] overrides the computed [k] of Definition 9 — an
    ablation hook used to quantify the serialization term; overriding it
    below the true value yields optimistic (unsound) inner streams.
    @raise Invalid_argument if [simultaneity < 1]. *)
