(** The hierarchical event stream deconstructor Psi_pa (paper,
    Definition 10).

    Applied to the hierarchical output stream of the frame at the
    receiving side, it extracts the updated flat event models of the
    individual signal streams, which then activate the receiving tasks. *)

val unpack : Model.t -> Event_model.Stream.t list
(** All inner event streams, in construction order. *)

val unpack_nth : Model.t -> int -> Event_model.Stream.t
(** [unpack_nth h i] is the i-th (0-based) element of the inner list L.
    @raise Invalid_argument if [i] is out of range. *)

val unpack_label : Model.t -> string -> Event_model.Stream.t
(** Inner stream by the label of the combined input.
    @raise Not_found if absent. *)
