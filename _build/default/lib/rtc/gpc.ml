type result = {
  delay : int option;
  backlog : int;
  output_upper : Curve.t;
  remaining_lower : Curve.t;
}

let remaining_service ~arrival_upper ~service_lower =
  (* beta' dt = max over 0 <= s <= dt of (beta s - alpha (s + 1)), clamped
     at 0 and computed with a running maximum; the [s + 1] closes the
     half-open arrival window (see {!Curve.horizontal_deviation}) *)
  let h = Stdlib.min (Curve.horizon service_lower) (Curve.horizon arrival_upper) in
  let samples = Array.make (h + 1) 0 in
  let best = ref 0 in
  for dt = 0 to h do
    best :=
      Stdlib.max !best
        (Curve.eval service_lower dt - Curve.eval arrival_upper (dt + 1));
    samples.(dt) <- Stdlib.max 0 !best
  done;
  (* tail rate: service rate minus arrival rate, floored at zero *)
  let rate =
    let tail c = Curve.eval c (2 * h) - Curve.eval c h in
    Stdlib.max 0 (tail service_lower - tail arrival_upper), Stdlib.max 1 h
  in
  Curve.create ~kind:Curve.Lower ~horizon:h ~tail_rate:rate (fun dt ->
    samples.(dt))

let process ~arrival_upper ~service_lower =
  {
    delay = Curve.horizontal_deviation ~upper:arrival_upper ~lower:service_lower;
    backlog = Curve.vertical_deviation ~upper:arrival_upper ~lower:service_lower;
    output_upper = Curve.min_plus_deconv arrival_upper
        (Curve.create ~kind:Curve.Upper
           ~horizon:(Curve.horizon service_lower)
           ~tail_rate:(Curve.tail_rate service_lower)
           (Curve.eval service_lower));
    remaining_lower = remaining_service ~arrival_upper ~service_lower;
  }

type fp_task = {
  name : string;
  arrival_upper : Curve.t;
}

let fixed_priority_chain ~service tasks =
  let rec chain beta acc = function
    | [] -> List.rev acc
    | task :: rest ->
      let result = process ~arrival_upper:task.arrival_upper ~service_lower:beta in
      chain result.remaining_lower ((task.name, result) :: acc) rest
  in
  chain service [] tasks
