type kind =
  | Upper
  | Lower

type t = {
  kind : kind;
  samples : int array;  (* index dt in 0..horizon *)
  rate_num : int;
  rate_den : int;
}

let create ~kind ~horizon ~tail_rate f =
  if horizon < 1 then invalid_arg "Rtc.Curve.create: horizon < 1";
  let rate_num, rate_den = tail_rate in
  if rate_den < 1 then invalid_arg "Rtc.Curve.create: tail denominator < 1";
  if rate_num < 0 then invalid_arg "Rtc.Curve.create: negative tail rate";
  { kind; samples = Array.init (horizon + 1) f; rate_num; rate_den }

let kind t = t.kind

let horizon t = Array.length t.samples - 1

let tail_rate t = t.rate_num, t.rate_den

let ceil_div a b = (a + b - 1) / b

let eval t dt =
  if dt < 0 then invalid_arg "Rtc.Curve.eval: negative window";
  let h = horizon t in
  if dt <= h then t.samples.(dt)
  else begin
    let extra = t.rate_num * (dt - h) in
    let slope =
      match t.kind with
      | Upper -> ceil_div extra t.rate_den
      | Lower -> extra / t.rate_den
    in
    t.samples.(h) + slope
  end

let linear ~kind ~horizon ~rate =
  let num, den = rate in
  let f dt =
    match kind with
    | Upper -> ceil_div (dt * num) den
    | Lower -> dt * num / den
  in
  create ~kind ~horizon ~tail_rate:rate f

let map2 f tail a b =
  if a.kind <> b.kind then invalid_arg "Rtc.Curve.map2: kind mismatch";
  let h = Stdlib.min (horizon a) (horizon b) in
  let rate = tail (a.rate_num, a.rate_den) (b.rate_num, b.rate_den) in
  create ~kind:a.kind ~horizon:h ~tail_rate:rate (fun dt ->
    f (eval a dt) (eval b dt))

(* rate comparison without floats: n1/d1 <= n2/d2 *)
let rate_le (n1, d1) (n2, d2) = n1 * d2 <= n2 * d1

let tail_add (n1, d1) (n2, d2) = (n1 * d2) + (n2 * d1), d1 * d2

let tail_min a b = if rate_le a b then a else b

let tail_max a b = if rate_le a b then b else a

let add a b = map2 ( + ) tail_add a b

let min a b = map2 Stdlib.min tail_min a b

let max a b = map2 Stdlib.max tail_max a b

let min_plus_conv f g =
  if f.kind <> g.kind then invalid_arg "Rtc.Curve.min_plus_conv: kind mismatch";
  let h = Stdlib.min (horizon f) (horizon g) in
  let value dt =
    let rec scan s best =
      if s > dt then best
      else scan (s + 1) (Stdlib.min best (eval f s + eval g (dt - s)))
    in
    scan 1 (eval f 0 + eval g dt)
  in
  create ~kind:f.kind ~horizon:h
    ~tail_rate:(tail_min (f.rate_num, f.rate_den) (g.rate_num, g.rate_den))
    value

let min_plus_deconv f g =
  if f.kind <> g.kind then
    invalid_arg "Rtc.Curve.min_plus_deconv: kind mismatch";
  let h = Stdlib.min (horizon f) (horizon g) in
  (* search the shift s through both sampled regions and one horizon of
     tail; beyond that the difference evolves linearly and is covered by
     the result's own tail rate *)
  let search_limit = 2 * Stdlib.max (horizon f) (horizon g) in
  let value dt =
    let rec scan s best =
      if s > search_limit then best
      else scan (s + 1) (Stdlib.max best (eval f (dt + s) - eval g s))
    in
    scan 1 (eval f dt - eval g 0)
  in
  create ~kind:f.kind ~horizon:h
    ~tail_rate:(f.rate_num, f.rate_den)
    value

(* The deviations account for the half-open arrival-window convention of
   this library: [upper dt] covers the arrivals at instants
   [t .. t + dt - 1], so the service available to the last of them by
   relative instant [t + dt - 1 + tau] is [lower (dt - 1 + tau)]. *)

let vertical_deviation ~upper ~lower =
  if not (upper.kind = Upper && lower.kind = Lower) then
    invalid_arg "Rtc.Curve.vertical_deviation: expected (upper, lower)";
  let limit = 2 * Stdlib.max (horizon upper) (horizon lower) in
  let rec scan dt best =
    if dt > limit then best
    else scan (dt + 1) (Stdlib.max best (eval upper dt - eval lower (dt - 1)))
  in
  scan 1 0

let horizontal_deviation ~upper ~lower =
  if not (upper.kind = Upper && lower.kind = Lower) then
    invalid_arg "Rtc.Curve.horizontal_deviation: expected (upper, lower)";
  if not (rate_le (upper.rate_num, upper.rate_den) (lower.rate_num, lower.rate_den))
  then None
  else begin
  let limit = 2 * Stdlib.max (horizon upper) (horizon lower) in
  (* inf {tau | upper dt <= lower (dt - 1 + tau)} per dt >= 1; the lower
     curve is monotone so tau is found by forward search *)
  let delay_at dt =
    let demand = eval upper dt in
    let rec advance tau =
      if tau > 4 * limit then None
      else if eval lower (dt - 1 + tau) >= demand then Some tau
      else advance (tau + 1)
    in
    advance 0
  in
  let rec scan dt best =
    if dt > limit then Some best
    else begin
      match delay_at dt with
      | None -> None
      | Some tau -> scan (dt + 1) (Stdlib.max best tau)
    end
  in
  scan 1 0
  end

let pp ppf t =
  let h = horizon t in
  let prefix =
    List.init (Stdlib.min 8 (h + 1)) (fun i -> string_of_int t.samples.(i))
  in
  Format.fprintf ppf "%s curve [%s ...] tail %d/%d"
    (match t.kind with Upper -> "upper" | Lower -> "lower")
    (String.concat "; " prefix) t.rate_num t.rate_den
