lib/rtc/gpc.ml: Array Curve List Stdlib
