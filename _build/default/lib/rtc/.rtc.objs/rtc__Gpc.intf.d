lib/rtc/gpc.mli: Curve
