lib/rtc/workload.ml: Curve Event_model Stdlib Timebase
