lib/rtc/workload.mli: Curve Event_model
