lib/rtc/curve.ml: Array Format List Stdlib String
