lib/rtc/curve.mli: Format
