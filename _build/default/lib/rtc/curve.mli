(** Numeric real-time-calculus curves.

    The compositional approach of Thiele et al. (the paper's references
    [3], [10], [11]) describes workload and service as arrival/service
    curves and couples components with (min,+) algebra.  This module
    implements curves numerically: exact samples on a finite horizon,
    extended beyond it by a rational tail rate (rounded up for upper
    curves, down for lower curves), so deconvolution — which peeks past
    the horizon — remains sound. *)

type kind =
  | Upper  (** an upper bound; tail extension rounds up *)
  | Lower  (** a lower bound; tail extension rounds down *)

type t

val create :
  kind:kind -> horizon:int -> tail_rate:int * int -> (int -> int) -> t
(** [create ~kind ~horizon ~tail_rate f] samples [f] on [0..horizon];
    beyond the horizon the curve continues with slope
    [fst tail_rate / snd tail_rate].
    @raise Invalid_argument if [horizon < 1], the denominator is [< 1],
    or the numerator is negative. *)

val kind : t -> kind

val horizon : t -> int

val tail_rate : t -> int * int
(** The slope used beyond the horizon, as [(numerator, denominator)]. *)

val eval : t -> int -> int
(** Defined for every [dt >= 0] (tail extension past the horizon). *)

val linear : kind:kind -> horizon:int -> rate:int * int -> t
(** The curve [dt * num / den] (a fully available resource has
    [rate = (1, 1)]). *)

val map2 : (int -> int -> int) -> (int * int -> int * int -> int * int) -> t -> t -> t
(** [map2 f tail a b] combines pointwise with [f] and combines tail rates
    with [tail]; the result keeps [a]'s kind and the smaller horizon.
    @raise Invalid_argument on differing kinds. *)

val add : t -> t -> t

val min : t -> t -> t

val max : t -> t -> t

val min_plus_conv : t -> t -> t
(** [(f (x) g) dt = min over 0 <= s <= dt of f s + g (dt - s)]. *)

val min_plus_deconv : t -> t -> t
(** [(f (/) g) dt = max over s >= 0 of f (dt + s) - g s], evaluated with
    [s] up to both curves' tail regions (one horizon beyond); sound for
    curves whose deviation is maximal before the tail dominates. *)

val vertical_deviation : upper:t -> lower:t -> int
(** [sup over dt of upper dt - lower dt] — the buffer/backlog bound.
    Searched over twice the common horizon; the tail rates must satisfy
    [rate upper <= rate lower] for the deviation to be finite. *)

val horizontal_deviation : upper:t -> lower:t -> int option
(** [sup over dt of inf {tau | upper dt <= lower (dt + tau)}] — the delay
    bound; [None] when no finite bound exists within the searched
    range. *)

val pp : Format.formatter -> t -> unit
