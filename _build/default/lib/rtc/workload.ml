module Count = Timebase.Count
module Stream = Event_model.Stream

let events stream dt =
  match Stream.eta_plus stream dt with
  | Count.Fin n -> n
  | Count.Inf -> invalid_arg "Rtc.Workload: unbounded arrivals"

let arrival_upper ~horizon ~wcet stream =
  if wcet < 1 then invalid_arg "Rtc.Workload.arrival_upper: wcet < 1";
  (* long-run demand rate from the tail of the sampled range *)
  let mid = Stdlib.max 1 (horizon / 2) in
  let tail_events = events stream horizon - events stream mid in
  let tail_rate = Stdlib.max 1 (tail_events * wcet), horizon - mid in
  Curve.create ~kind:Curve.Upper ~horizon ~tail_rate (fun dt ->
    wcet * events stream dt)

let arrival_lower ~horizon ~bcet stream =
  if bcet < 1 then invalid_arg "Rtc.Workload.arrival_lower: bcet < 1";
  let floor_events dt =
    match Stream.eta_minus stream dt with
    | Count.Fin n -> n
    | Count.Inf -> invalid_arg "Rtc.Workload: infinite guaranteed arrivals"
  in
  let mid = Stdlib.max 1 (horizon / 2) in
  let tail_events = floor_events horizon - floor_events mid in
  Curve.create ~kind:Curve.Lower ~horizon
    ~tail_rate:(tail_events * bcet, horizon - mid)
    (fun dt -> bcet * floor_events dt)

let service_full ~horizon =
  Curve.linear ~kind:Curve.Lower ~horizon ~rate:(1, 1)

let service_rate ~horizon ~rate = Curve.linear ~kind:Curve.Lower ~horizon ~rate

let service_tdma ~horizon ~slot ~cycle =
  if slot < 1 || cycle < slot then
    invalid_arg "Rtc.Workload.service_tdma: need 1 <= slot <= cycle";
  Curve.create ~kind:Curve.Lower ~horizon ~tail_rate:(slot, cycle) (fun dt ->
    let effective = dt - (cycle - slot) in
    if effective <= 0 then 0
    else ((effective / cycle) * slot) + Stdlib.min slot (effective mod cycle))

let service_bounded_delay ~horizon ~delay ~rate =
  if delay < 0 then invalid_arg "Rtc.Workload.service_bounded_delay: delay < 0";
  let num, den = rate in
  Curve.create ~kind:Curve.Lower ~horizon ~tail_rate:rate (fun dt ->
    if dt <= delay then 0 else (dt - delay) * num / den)
