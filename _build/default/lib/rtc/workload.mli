(** Arrival and service curves for the RTC view of a system.

    Arrival curves here are in {e workload units} (execution demand), not
    event counts: the event bounds of an {!Event_model.Stream} are scaled
    by the worst-case execution time, which is the form the greedy
    processing component consumes. *)

val arrival_upper :
  horizon:int -> wcet:int -> Event_model.Stream.t -> Curve.t
(** [eta_plus dt * wcet] sampled on the horizon, with a tail rate
    estimated from the stream's long-run event rate (rounded up). *)

val arrival_lower :
  horizon:int -> bcet:int -> Event_model.Stream.t -> Curve.t
(** [eta_minus dt * bcet] (zero tail when the stream has no lower
    bound). *)

val service_full : horizon:int -> Curve.t
(** Unit-rate lower service curve of a fully available resource:
    [beta dt = dt]. *)

val service_rate : horizon:int -> rate:int * int -> Curve.t

val service_tdma : horizon:int -> slot:int -> cycle:int -> Curve.t
(** Guaranteed lower service of a TDMA slot under worst alignment (the
    same bound as {!Scheduling.Tdma.service}). *)

val service_bounded_delay : horizon:int -> delay:int -> rate:int * int -> Curve.t
(** [beta dt = max 0 ((dt - delay) * rate)]. *)
