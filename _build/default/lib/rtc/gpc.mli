(** Greedy processing components and fixed-priority chains.

    The basic abstraction of modular performance analysis (Thiele et
    al.): a component greedily serves the workload bounded by an arrival
    curve from the service bounded by a service curve.  Delay and backlog
    are the horizontal and vertical deviations; the remaining (lower)
    service is what the next-lower priority level receives, which chains
    components into a fixed-priority resource model. *)

type result = {
  delay : int option;
      (** worst-case queueing+processing delay; [None] if unbounded in
          the searched range *)
  backlog : int;  (** workload backlog bound *)
  output_upper : Curve.t;
      (** upper arrival curve of the processed workload downstream *)
  remaining_lower : Curve.t;
      (** lower service curve left for lower-priority components *)
}

val process : arrival_upper:Curve.t -> service_lower:Curve.t -> result
(** Standard GPC bounds:
    [delay = h-deviation], [backlog = v-deviation],
    [output = arrival (/) service], and
    [remaining dt = max over 0 <= s <= dt of (service s - arrival s)]. *)

type fp_task = {
  name : string;
  arrival_upper : Curve.t;  (** workload-scaled arrival curve *)
}

val fixed_priority_chain :
  service:Curve.t -> fp_task list -> (string * result) list
(** [fixed_priority_chain ~service tasks] processes [tasks] from highest
    to lowest priority (list order), feeding each level the remaining
    service of the previous one — the RTC counterpart of the SPP
    busy-window analysis. *)
