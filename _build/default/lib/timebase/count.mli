(** Event counts extended with positive infinity.

    Values of the arrival functions eta_plus / eta_minus.  A count is
    infinite when an event model admits unboundedly many events in a finite
    window (pathological, but representable). *)

type t =
  | Fin of int
  | Inf

val zero : t

val of_int : int -> t
(** @raise Invalid_argument on a negative argument. *)

val to_int : t -> int
(** @raise Invalid_argument on [Inf]. *)

val to_int_opt : t -> int option

val is_finite : t -> bool

val add : t -> t -> t

val min : t -> t -> t

val max : t -> t -> t

val compare : t -> t -> int

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string
