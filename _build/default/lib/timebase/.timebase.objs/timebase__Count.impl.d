lib/timebase/count.ml: Format Stdlib
