lib/timebase/count.mli: Format
