lib/timebase/time.mli: Format
