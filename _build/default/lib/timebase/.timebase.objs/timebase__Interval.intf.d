lib/timebase/interval.mli: Format
