lib/timebase/interval.ml: Format
