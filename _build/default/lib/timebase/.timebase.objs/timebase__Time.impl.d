lib/timebase/time.ml: Format Stdlib
