(** Closed integer intervals [\[lo:hi\]].

    Used for core execution times, transmission times and response times,
    following the paper's [\[C-:C+\]] notation. *)

type t = private {
  lo : int;
  hi : int;
}

val make : lo:int -> hi:int -> t
(** @raise Invalid_argument unless [0 <= lo <= hi]. *)

val point : int -> t
(** [point c] is [\[c:c\]]. *)

val lo : t -> int

val hi : t -> int

val width : t -> int
(** [hi - lo]. *)

val add : t -> t -> t
(** Componentwise sum. *)

val contains : t -> int -> bool

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Prints in the paper's [\[lo:hi\]] notation. *)

val to_string : t -> string
