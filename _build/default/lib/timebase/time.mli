(** Discrete time extended with positive infinity.

    All quantities of the analysis (periods, jitters, distances, response
    times) are non-negative integers in an arbitrary unit.  Positive infinity
    is required because the maximum distance [delta_plus] of a sporadic or
    pending event stream is unbounded (paper, eq. 8). *)

type t =
  | Fin of int  (** a finite instant / duration *)
  | Inf  (** positive infinity *)

val zero : t

val one : t

val of_int : int -> t
(** [of_int d] is the finite duration [d].  Negative values are accepted
    (intermediate results of subtractions may be negative); most public
    curves only ever expose non-negative values. *)

val to_int : t -> int
(** [to_int t] is the integer value of a finite [t].
    @raise Invalid_argument on [Inf]. *)

val to_int_opt : t -> int option

val is_finite : t -> bool

val add : t -> t -> t
(** Addition; [Inf] absorbs. *)

val sub : t -> t -> t
(** [sub x y] is [x - y] for finite [y]; [Inf - y = Inf].
    @raise Invalid_argument when [y] is [Inf]. *)

val sub_clamped : t -> t -> t
(** [sub_clamped x y] is [max 0 (x - y)], with the convention that
    subtracting [Inf] yields [zero].  This matches the use of subtraction
    inside outer [max] expressions such as eq. (7), where a [-Inf] operand
    simply never wins the [max] against a non-negative alternative. *)

val scale : int -> t -> t
(** [scale k t] is [k * t] for [k >= 0].  [scale 0 Inf] is [zero]. *)

val min : t -> t -> t

val max : t -> t -> t

val compare : t -> t -> int

val equal : t -> t -> bool

val ( < ) : t -> t -> bool

val ( <= ) : t -> t -> bool

val ( > ) : t -> t -> bool

val ( >= ) : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Prints a finite value as its integer and infinity as ["inf"]. *)

val to_string : t -> string
