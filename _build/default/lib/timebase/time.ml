type t =
  | Fin of int
  | Inf

let zero = Fin 0

let one = Fin 1

let of_int d = Fin d

let to_int = function
  | Fin d -> d
  | Inf -> invalid_arg "Time.to_int: infinite"

let to_int_opt = function
  | Fin d -> Some d
  | Inf -> None

let is_finite = function
  | Fin _ -> true
  | Inf -> false

let add x y =
  match x, y with
  | Fin a, Fin b -> Fin (a + b)
  | Inf, _ | _, Inf -> Inf

let sub x y =
  match x, y with
  | _, Inf -> invalid_arg "Time.sub: subtrahend is infinite"
  | Fin a, Fin b -> Fin (a - b)
  | Inf, Fin _ -> Inf

let sub_clamped x y =
  match x, y with
  | _, Inf -> zero
  | Fin a, Fin b -> Fin (Stdlib.max 0 (a - b))
  | Inf, Fin _ -> Inf

let scale k t =
  if k < 0 then invalid_arg "Time.scale: negative factor";
  match t with
  | Fin d -> Fin (k * d)
  | Inf -> if k = 0 then zero else Inf

let compare x y =
  match x, y with
  | Fin a, Fin b -> Stdlib.compare a b
  | Fin _, Inf -> -1
  | Inf, Fin _ -> 1
  | Inf, Inf -> 0

let equal x y = compare x y = 0

let min x y = if compare x y <= 0 then x else y

let max x y = if compare x y >= 0 then x else y

let ( < ) x y = compare x y < 0

let ( <= ) x y = compare x y <= 0

let ( > ) x y = compare x y > 0

let ( >= ) x y = compare x y >= 0

let pp ppf = function
  | Fin d -> Format.pp_print_int ppf d
  | Inf -> Format.pp_print_string ppf "inf"

let to_string t = Format.asprintf "%a" pp t
