type t = {
  lo : int;
  hi : int;
}

let make ~lo ~hi =
  if lo < 0 then invalid_arg "Interval.make: negative lower bound";
  if lo > hi then invalid_arg "Interval.make: lo > hi";
  { lo; hi }

let point c = make ~lo:c ~hi:c

let lo t = t.lo

let hi t = t.hi

let width t = t.hi - t.lo

let add a b = { lo = a.lo + b.lo; hi = a.hi + b.hi }

let contains t x = t.lo <= x && x <= t.hi

let equal a b = a.lo = b.lo && a.hi = b.hi

let pp ppf t = Format.fprintf ppf "[%d:%d]" t.lo t.hi

let to_string t = Format.asprintf "%a" pp t
