type t =
  | Fin of int
  | Inf

let zero = Fin 0

let of_int n =
  if n < 0 then invalid_arg "Count.of_int: negative count";
  Fin n

let to_int = function
  | Fin n -> n
  | Inf -> invalid_arg "Count.to_int: infinite"

let to_int_opt = function
  | Fin n -> Some n
  | Inf -> None

let is_finite = function
  | Fin _ -> true
  | Inf -> false

let add x y =
  match x, y with
  | Fin a, Fin b -> Fin (a + b)
  | Inf, _ | _, Inf -> Inf

let compare x y =
  match x, y with
  | Fin a, Fin b -> Stdlib.compare a b
  | Fin _, Inf -> -1
  | Inf, Fin _ -> 1
  | Inf, Inf -> 0

let equal x y = compare x y = 0

let min x y = if compare x y <= 0 then x else y

let max x y = if compare x y >= 0 then x else y

let pp ppf = function
  | Fin n -> Format.pp_print_int ppf n
  | Inf -> Format.pp_print_string ppf "inf"

let to_string t = Format.asprintf "%a" pp t
