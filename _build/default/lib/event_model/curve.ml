module Time = Timebase.Time

type t = { eval : int -> Time.t }

exception Unbounded of string

let search_cap = 1 lsl 22

let memoize f =
  let table = Hashtbl.create 64 in
  fun n ->
    match Hashtbl.find_opt table n with
    | Some v -> v
    | None ->
      let v = f n in
      Hashtbl.add table n v;
      v

let make f = { eval = memoize f }

(* Self-referential memoization: [f] receives the memoized evaluator, so a
   recurrence like delta'(n) = g (delta' (n-1)) costs O(n) total. *)
let make_rec f =
  let table = Hashtbl.create 64 in
  let rec eval n =
    match Hashtbl.find_opt table n with
    | Some v -> v
    | None ->
      let v = f eval n in
      Hashtbl.add table n v;
      v
  in
  { eval }

let constant v = { eval = (fun _ -> v) }

let eval t n = t.eval n

(* Exponential search for the first index in [lo, cap] satisfying [pred],
   followed by binary search.  [pred] must be monotone (false then true). *)
let first_satisfying ~lo pred =
  if pred lo then lo
  else begin
    let rec widen prev cur =
      if cur > search_cap then raise (Unbounded "Curve: search cap exceeded")
      else if pred cur then prev, cur
      else widen cur (cur * 2)
    in
    let lo, hi = widen lo (Stdlib.max 2 (lo * 2)) in
    (* invariant: not (pred lo) && pred hi *)
    let rec bisect lo hi =
      if hi - lo <= 1 then hi
      else
        let mid = lo + ((hi - lo) / 2) in
        if pred mid then bisect lo mid else bisect mid hi
    in
    bisect lo hi
  end

let count_lt t limit =
  if Time.(limit <= Time.zero) then invalid_arg "Curve.count_lt: limit <= 0";
  (* largest n with eval n < limit = (first n with eval n >= limit) - 1 *)
  let first_ge = first_satisfying ~lo:2 (fun n -> Time.(eval t n >= limit)) in
  first_ge - 1

let first_gt t ~offset limit =
  first_satisfying ~lo:0 (fun n -> Time.(eval t (n + offset) > limit))
