(** Memoized monotone curves over event indices.

    A curve maps an event count [n >= 0] to a time value, is monotonically
    non-decreasing, and is evaluated lazily with memoization.  Delta curves
    of event streams ([delta_min], [delta_plus]) are represented this way;
    the arrival functions eta_plus / eta_minus are obtained by
    pseudo-inversion (paper, eqs. 1-2). *)

type t

exception Unbounded of string
(** Raised when a pseudo-inversion search exceeds the safety cap, i.e. the
    curve appears bounded so the inverse would be infinite. *)

val make : (int -> Timebase.Time.t) -> t
(** [make f] memoizes [f].  [f] must be pure and monotone in [n]. *)

val make_rec : ((int -> Timebase.Time.t) -> int -> Timebase.Time.t) -> t
(** [make_rec f] builds a self-referential curve: [f self n] may call
    [self] on indices strictly smaller than [n].  Used for recurrences such
    as the task output model. *)

val constant : Timebase.Time.t -> t

val eval : t -> int -> Timebase.Time.t

val search_cap : int
(** Safety cap on pseudo-inversion searches (indices explored before
    {!Unbounded} is raised). *)

val count_lt : t -> Timebase.Time.t -> int
(** [count_lt c t] is the largest [n >= 1] with [eval c n < t], assuming
    [eval c 1 = 0] and monotonicity; requires [t > 0].  This is the search
    kernel of eta_plus (eq. 1).
    @raise Unbounded if no bounded answer below {!search_cap} exists. *)

val first_gt : t -> offset:int -> Timebase.Time.t -> int
(** [first_gt c ~offset t] is the least [n >= 0] with
    [eval c (n + offset) > t].  This is the search kernel of eta_minus
    (eq. 2, with [offset = 2]).
    @raise Unbounded if no answer below {!search_cap} exists. *)
