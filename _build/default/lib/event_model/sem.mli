(** Standard event models (Richter).

    The parameterized representation (period [P], jitter [J], minimum
    distance [d_min]) of the four characteristic functions.  Periodic,
    periodic-with-jitter and sporadic activation patterns are all special
    cases.  A standard event model admits closed forms for all four
    characteristic functions, which this module provides; {!to_stream}
    embeds it into the generic curve representation. *)

type t = private {
  period : int;  (** P >= 1 *)
  jitter : int;  (** J >= 0 *)
  d_min : int;  (** minimum event distance, >= 0 *)
}

val make : period:int -> ?jitter:int -> ?d_min:int -> unit -> t
(** [jitter] defaults to [0], [d_min] to [1].
    @raise Invalid_argument unless [period >= 1], [jitter >= 0],
    [0 <= d_min <= period] (a minimum distance above the period would
    contradict the long-run rate). *)

val periodic : int -> t
(** [periodic p] is [make ~period:p ()]. *)

val delta_min : t -> int -> Timebase.Time.t
(** Closed form: [max ((n-1) * d_min) ((n-1) * period - jitter)]. *)

val delta_plus : t -> int -> Timebase.Time.t
(** Closed form: [(n-1) * period + jitter]. *)

val eta_plus : t -> int -> Timebase.Count.t
(** Closed form of eq. (1) for standard event models. *)

val eta_minus : t -> int -> Timebase.Count.t
(** Closed form of eq. (2) for standard event models. *)

val to_stream : ?name:string -> t -> Stream.t

val fit : ?horizon:int -> Stream.t -> t
(** [fit s] computes a standard event model that conservatively
    upper-bounds the activations of [s] on the sampled prefix
    [n <= horizon] (default 256): the fitted model satisfies
    [delta_min fitted n <= Stream.delta_min s n] for all sampled [n], hence
    [eta_plus fitted >= eta_plus s] on the corresponding window sizes.
    This is the standard-event-model approximation used by the flat
    (non-hierarchical) analysis baseline.  Only the lower distance curve is
    fitted; the upper curve of the result is the standard-event-model
    closed form and may not dominate [Stream.delta_plus s]. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
