module Time = Timebase.Time

let delay_bound ?(horizon = 4096) ~d stream =
  if d < 1 then invalid_arg "Shaper.delay_bound: d < 1";
  (* Backlog deficit after q events arriving as fast as possible: the q-th
     event leaves the shaper no earlier than (q-1)*d after the first, but
     may arrive as early as delta_min q after it.  If the deficit is still
     growing at the horizon, the input rate exceeds the shaper rate and
     the delay is unbounded. *)
  let rec scan q worst =
    if q > horizon then worst
    else
      match Stream.delta_min stream q with
      | Time.Inf -> worst
      | Time.Fin dist -> scan (q + 1) (Stdlib.max worst (((q - 1) * d) - dist))
  in
  (* If the input still lags the shaper rate at the horizon, the backlog
     never drains: the input's long-run rate exceeds 1/d. *)
  let rate_exceeded =
    match Stream.delta_min stream horizon with
    | Time.Inf -> false
    | Time.Fin dist -> dist < (horizon - 1) * d - (horizon / 2)
  in
  if rate_exceeded then Time.Inf else Time.of_int (scan 2 0)

let enforce_min_distance ?name ?horizon ~d stream =
  if d < 1 then invalid_arg "Shaper.enforce_min_distance: d < 1";
  let delay = delay_bound ?horizon ~d stream in
  let delta_min n =
    Time.max (Stream.delta_min stream n) (Time.of_int ((n - 1) * d))
  in
  let delta_plus n = Time.add (Stream.delta_plus stream n) delay in
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "shaped(%s,d=%d)" (Stream.name stream) d
  in
  Stream.make ~name ~delta_min ~delta_plus
