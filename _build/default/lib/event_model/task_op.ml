module Time = Timebase.Time
module Interval = Timebase.Interval

let output ?name ~response stream =
  let r_minus = Interval.lo response in
  let spread = Interval.width response in
  let delta_min =
    Curve.make_rec (fun self n ->
      if n <= 1 then Time.zero
      else
        Time.max
          (Time.sub_clamped (Stream.delta_min stream n) (Time.of_int spread))
          (Time.add (self (n - 1)) (Time.of_int r_minus)))
  in
  let delta_plus =
    Curve.make (fun n ->
      if n <= 1 then Time.zero
      else Time.add (Stream.delta_plus stream n) (Time.of_int spread))
  in
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "out(%s)" (Stream.name stream)
  in
  Stream.of_curves ~name ~delta_min ~delta_plus
