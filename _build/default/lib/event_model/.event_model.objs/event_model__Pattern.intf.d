lib/event_model/pattern.mli: Format Sem Timebase
