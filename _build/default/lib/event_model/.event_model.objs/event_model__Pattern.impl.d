lib/event_model/pattern.ml: Array Format List Sem Stdlib String Timebase
