lib/event_model/task_op.ml: Curve Printf Stream Timebase
