lib/event_model/shaper.ml: Printf Stdlib Stream Timebase
