lib/event_model/stream.mli: Curve Format Timebase
