lib/event_model/combine.mli: Stream
