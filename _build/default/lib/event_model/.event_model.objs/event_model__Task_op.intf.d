lib/event_model/task_op.mli: Stream Timebase
