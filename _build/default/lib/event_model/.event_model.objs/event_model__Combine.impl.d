lib/event_model/combine.ml: List Printf Stream String Timebase
