lib/event_model/sem.ml: Format Printf Stdlib Stream Timebase
