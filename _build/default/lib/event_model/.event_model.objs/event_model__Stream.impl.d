lib/event_model/stream.ml: Curve Format List Printf Stdlib String Timebase
