lib/event_model/shaper.mli: Stream Timebase
