lib/event_model/curve.ml: Hashtbl Stdlib Timebase
