lib/event_model/curve.mli: Timebase
