lib/event_model/sem.mli: Format Stream Timebase
