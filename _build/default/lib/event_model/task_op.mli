(** Output event-stream calculation for analysed tasks (the operation
    called Theta_tau in the paper, section 3).

    Once local analysis has produced the response-time interval
    [\[r-:r+\]] of a task, the timing of its output stream follows from the
    input stream:

    - [delta_min' n = max (delta_min n - (r+ - r-)) (delta_min' (n-1) + r-)]
    - [delta_plus' n = delta_plus n + (r+ - r-)] *)

val output : ?name:string -> response:Timebase.Interval.t -> Stream.t -> Stream.t
(** [output ~response stream] is the output stream of a task with
    response-time interval [response] processing [stream]. *)
