(** Event-stream combination operators.

    Stream constructors combine the input streams of a task with multiple
    inputs into a single activating stream (Jersak).  The OR-combination
    implements the paper's eqs. (3)-(4) exactly; both equations range over
    contribution vectors and are computed here as associative pairwise
    convolutions in the (min,max) resp. (max,min) structure. *)

val or_combine : ?name:string -> Stream.t list -> Stream.t
(** [or_combine streams] is the OR-activation stream: every input event
    produces one output event.

    - [delta_min n = min over contribution vectors K (sum = n) of
      max_i delta_min_i k_i]  (eq. 3)
    - [delta_plus n = max over contribution vectors K (sum = n - 2) of
      min_i delta_plus_i (k_i + 2)]  (eq. 4)

    @raise Invalid_argument on the empty list. *)

val and_combine : ?name:string -> Stream.t list -> Stream.t
(** [and_combine streams] is a conservative AND-activation stream: the j-th
    output event occurs when the j-th event of every input has arrived.
    Sound bounds: [delta_min n = min_i delta_min_i n] and
    [delta_plus n = max_i delta_plus_i n] (the j-th output follows the
    latest input, so spacing can neither shrink below the tightest input
    spacing nor stretch beyond the widest).

    @raise Invalid_argument on the empty list. *)
