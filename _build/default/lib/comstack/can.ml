type id_format =
  | Standard
  | Extended

let header_bits = function
  | Standard -> 34
  | Extended -> 54

let check_bytes data_bytes =
  if data_bytes < 0 || data_bytes > 8 then
    invalid_arg "Can: data_bytes must be within 0..8"

let unstuffed_bits format data_bytes =
  (8 * data_bytes) + header_bits format + 13

let frame_bits ?(format = Standard) ~data_bytes () =
  check_bytes data_bytes;
  let g = header_bits format in
  unstuffed_bits format data_bytes + ((g + (8 * data_bytes) - 1) / 4)

let transmission_time ?format ~data_bytes ~bit_time () =
  if bit_time < 1 then invalid_arg "Can.transmission_time: bit_time < 1";
  frame_bits ?format ~data_bytes () * bit_time

let tx_interval ?(format = Standard) ~data_bytes ~bit_time () =
  if bit_time < 1 then invalid_arg "Can.tx_interval: bit_time < 1";
  check_bytes data_bytes;
  Timebase.Interval.make
    ~lo:(unstuffed_bits format data_bytes * bit_time)
    ~hi:(frame_bits ~format ~data_bytes () * bit_time)
