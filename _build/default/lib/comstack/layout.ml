type field = {
  field_name : string;
  bits : int;
}

type t = { packed : (field * int) list  (* field, bit offset *) }

let make ?(max_bytes = 8) fields =
  if fields = [] then Error "Layout.make: no fields"
  else if List.exists (fun f -> f.bits < 1) fields then
    Error "Layout.make: field width < 1"
  else begin
    let names = List.map (fun f -> f.field_name) fields in
    if List.length (List.sort_uniq String.compare names) <> List.length names
    then Error "Layout.make: duplicate field names"
    else begin
      let _, packed =
        List.fold_left
          (fun (offset, acc) f -> offset + f.bits, (f, offset) :: acc)
          (0, []) fields
      in
      let total = List.fold_left (fun acc f -> acc + f.bits) 0 fields in
      if total > max_bytes * 8 then
        Error
          (Printf.sprintf "Layout.make: %d bits exceed the %d-byte payload"
             total max_bytes)
      else Ok { packed = List.rev packed }
    end
  end

let fields t = List.map fst t.packed

let total_bits t = List.fold_left (fun acc (f, _) -> acc + f.bits) 0 t.packed

let data_bytes t = (total_bits t + 7) / 8

let bit_offset t name =
  let _, offset =
    List.find (fun (f, _) -> String.equal f.field_name name) t.packed
  in
  offset

let tx_interval ?format ~bit_time t =
  Can.tx_interval ?format ~data_bytes:(data_bytes t) ~bit_time ()

let pp ppf t =
  Format.fprintf ppf "@[<v 2>layout (%d bytes):@ " (data_bytes t);
  List.iter
    (fun (f, offset) ->
      Format.fprintf ppf "%s: bits [%d, %d)@ " f.field_name offset
        (offset + f.bits))
    t.packed;
  Format.fprintf ppf "@]"
