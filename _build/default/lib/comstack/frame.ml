module Stream = Event_model.Stream

type send_type =
  | Periodic of int
  | Direct
  | Mixed of int

type t = {
  name : string;
  send_type : send_type;
  signals : Signal.t list;
  tx_time : Timebase.Interval.t;
  priority : int;
}

let has_triggering_signal signals =
  List.exists
    (fun (s : Signal.t) -> s.property = Hem.Model.Triggering)
    signals

let make ~name ~send_type ~signals ~tx_time ~priority =
  if signals = [] then invalid_arg "Frame.make: no signals";
  begin
    match send_type with
    | Direct ->
      if not (has_triggering_signal signals) then
        invalid_arg "Frame.make: direct frame without triggering signal"
    | Periodic p | Mixed p ->
      if p < 1 then invalid_arg "Frame.make: timer period < 1"
  end;
  { name; send_type; signals; tx_time; priority }

let timer_label t = t.name ^ ".timer"

let pack_inputs t =
  let signal_input (s : Signal.t) =
    (* A periodic frame ignores signal triggers: all signals are packed as
       pending regardless of their transfer property. *)
    let kind =
      match t.send_type with
      | Periodic _ -> Hem.Model.Pending
      | Direct | Mixed _ -> s.property
    in
    Hem.Pack.input ~kind s.name s.stream
  in
  let timer =
    match t.send_type with
    | Direct -> []
    | Periodic p | Mixed p ->
      [ Hem.Pack.input ~kind:Hem.Model.Triggering (timer_label t)
          (Stream.periodic ~name:(timer_label t) ~period:p) ]
  in
  List.map signal_input t.signals @ timer

let hierarchy t = Hem.Pack.pack ~name:t.name (pack_inputs t)

let message t h =
  Scheduling.Rt_task.make ~name:t.name ~cet:t.tx_time ~priority:t.priority
    ~activation:(Hem.Model.outer h)

let pp ppf t =
  let send_type =
    match t.send_type with
    | Periodic p -> Printf.sprintf "periodic(%d)" p
    | Direct -> "direct"
    | Mixed p -> Printf.sprintf "mixed(%d)" p
  in
  Format.fprintf ppf "frame %s (%s, tx=%a, prio=%d, signals=[%s])" t.name
    send_type Timebase.Interval.pp t.tx_time t.priority
    (String.concat "; " (List.map (fun (s : Signal.t) -> s.Signal.name) t.signals))
