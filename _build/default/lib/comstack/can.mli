(** CAN frame transmission times.

    Worst-case frame length on a CAN bus including the maximum number of
    stuff bits (Davis/Burns/Bril/Lukkien formulation): a data frame with
    [n] payload bytes occupies at most [8n + g + 13 + floor ((g + 8n - 1) / 4)]
    bit times, where [g = 34] for standard (11-bit) identifiers and
    [g = 54] for extended (29-bit) identifiers; the 13 covers the
    non-stuffable tail (CRC delimiter, ACK, EOF, interframe space). *)

type id_format =
  | Standard  (** 11-bit identifiers *)
  | Extended  (** 29-bit identifiers *)

val frame_bits : ?format:id_format -> data_bytes:int -> unit -> int
(** Worst-case frame length in bit times.  [format] defaults to
    [Standard].
    @raise Invalid_argument unless [0 <= data_bytes <= 8]. *)

val transmission_time :
  ?format:id_format -> data_bytes:int -> bit_time:int -> unit -> int
(** [frame_bits * bit_time], for integer time units per bit. *)

val tx_interval :
  ?format:id_format -> data_bytes:int -> bit_time:int -> unit ->
  Timebase.Interval.t
(** Transmission-time interval: the best case assumes no stuff bits, the
    worst case the maximum number. *)
