(** Signals of the communication layer (paper, section 4).

    A source task writes its output data into a register provided by the
    communication layer, overwriting the previous value; each register has
    a fixed position in a frame.  The {e transfer property} decides
    whether a fresh value triggers the frame ([Triggering]) or merely
    waits for the next transmission ([Pending]). *)

type t = {
  name : string;
  property : Hem.Model.signal_kind;
  stream : Event_model.Stream.t;  (** write events into the register *)
}

val triggering : name:string -> Event_model.Stream.t -> t

val pending : name:string -> Event_model.Stream.t -> t

val pp : Format.formatter -> t -> unit
