(** Frames of the communication layer (paper, section 4).

    A frame transports the register values of its assigned signals.  The
    send type decides when a transmission is triggered:

    - [Periodic]: a timer triggers transmissions; signal arrivals never do
      (all signals effectively behave as pending for the frame timing);
    - [Direct]: every arrival of a triggering signal sends the frame;
    - [Mixed]: both — triggering signals and a timer.

    {!hierarchy} builds the frame's hierarchical activation model with the
    pack-HSC: the timer (if any) is an additional triggering input, so the
    outer stream is the OR-activation of all effective triggers (paper,
    eqs. 3-4), and the inner streams follow eqs. 5-8. *)

type send_type =
  | Periodic of int  (** timer period *)
  | Direct
  | Mixed of int  (** timer period *)

type t = {
  name : string;
  send_type : send_type;
  signals : Signal.t list;
  tx_time : Timebase.Interval.t;  (** transmission time [\[C-:C+\]] *)
  priority : int;  (** bus priority; smaller = higher *)
}

val make :
  name:string ->
  send_type:send_type ->
  signals:Signal.t list ->
  tx_time:Timebase.Interval.t ->
  priority:int ->
  t
(** @raise Invalid_argument if [signals] is empty, if a [Direct] frame has
    no triggering signal, or if a timer period is [< 1]. *)

val timer_label : t -> string
(** Label of the implicit timer input of periodic/mixed frames. *)

val hierarchy : t -> Hem.Model.t
(** The hierarchical event model of the frame's activation stream.  The
    inner list contains one entry per signal (labelled by signal name)
    plus, for periodic/mixed frames, the timer entry
    (labelled {!timer_label}). *)

val message : t -> Hem.Model.t -> Scheduling.Rt_task.t
(** [message frame h] is the frame as a schedulable bus message: its
    activation is the outer stream of [h], its execution time the
    transmission time. *)

val pp : Format.formatter -> t -> unit
