type t = {
  name : string;
  property : Hem.Model.signal_kind;
  stream : Event_model.Stream.t;
}

let triggering ~name stream = { name; property = Hem.Model.Triggering; stream }

let pending ~name stream = { name; property = Hem.Model.Pending; stream }

let pp ppf t =
  let property =
    match t.property with
    | Hem.Model.Triggering -> "triggering"
    | Hem.Model.Pending -> "pending"
  in
  Format.fprintf ppf "signal %s (%s, %s)" t.name property
    (Event_model.Stream.name t.stream)
