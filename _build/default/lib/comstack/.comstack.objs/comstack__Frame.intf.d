lib/comstack/frame.mli: Format Hem Scheduling Signal Timebase
