lib/comstack/layout.mli: Can Format Timebase
