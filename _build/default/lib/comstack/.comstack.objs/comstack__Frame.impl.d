lib/comstack/frame.ml: Event_model Format Hem List Printf Scheduling Signal String Timebase
