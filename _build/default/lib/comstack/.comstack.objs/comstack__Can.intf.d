lib/comstack/can.mli: Timebase
