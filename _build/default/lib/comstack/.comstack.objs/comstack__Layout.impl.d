lib/comstack/layout.ml: Can Format List Printf String
