lib/comstack/latency.mli: Hem Timebase
