lib/comstack/signal.ml: Event_model Format Hem
