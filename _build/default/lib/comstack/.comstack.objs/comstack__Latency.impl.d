lib/comstack/latency.ml: Event_model Hem Timebase
