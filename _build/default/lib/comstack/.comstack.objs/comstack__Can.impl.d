lib/comstack/can.ml: Timebase
