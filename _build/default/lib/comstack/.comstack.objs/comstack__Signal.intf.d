lib/comstack/signal.mli: Event_model Format Hem
