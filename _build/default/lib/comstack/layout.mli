(** Frame payload layouts.

    Each signal owns a fixed field in the frame's payload (the "fixed
    position" of the paper's COM-layer description).  A layout assigns
    consecutive bit fields, checks the payload limit, and derives the
    frame's CAN transmission-time interval from its actual size. *)

type field = {
  field_name : string;
  bits : int;  (** field width in bits, >= 1 *)
}

type t

val make : ?max_bytes:int -> field list -> (t, string) result
(** Packs the fields consecutively.  [max_bytes] defaults to [8] (CAN
    2.0).  Errors on empty layouts, duplicate names, non-positive widths
    and payload overflow. *)

val fields : t -> field list

val total_bits : t -> int

val data_bytes : t -> int
(** Payload size rounded up to whole bytes. *)

val bit_offset : t -> string -> int
(** Position of a field within the payload.
    @raise Not_found for unknown field names. *)

val tx_interval : ?format:Can.id_format -> bit_time:int -> t -> Timebase.Interval.t
(** Transmission-time interval of a frame carrying this payload (best
    case without stuff bits, worst case with maximum stuffing); plugs
    directly into {!Frame.make}. *)

val pp : Format.formatter -> t -> unit
