(** Worst-case data age through the communication layer.

    The response time of a frame bounds queueing and transmission, but a
    signal value can additionally sit in its register before any frame
    picks it up: a triggering signal is picked up immediately; a pending
    value written just after a transmission waits for the next frame
    trigger, i.e. up to the maximum distance between two frame
    activations (the quantity of eq. 7).  The worst-case {e data age} —
    from register write to delivery at the receiver — is the sampling
    wait plus the frame's response time. *)

val sampling_wait :
  hierarchy:Hem.Model.t -> Hem.Model.signal_kind -> Timebase.Time.t
(** Worst time a fresh register value waits for a frame trigger:
    [zero] for triggering signals, [delta_plus_out 2] of the pre-bus
    hierarchy for pending signals ([Inf] if frame triggers have no upper
    distance bound). *)

val data_age :
  hierarchy:Hem.Model.t ->
  response:Timebase.Interval.t ->
  signal:string ->
  Timebase.Time.t
(** [data_age ~hierarchy ~response ~signal]: worst-case write-to-delivery
    age of [signal], where [hierarchy] is the frame's pre-bus model and
    [response] the frame's bus response interval.
    @raise Not_found for an unknown signal label. *)
