module Time = Timebase.Time
module Interval = Timebase.Interval

let sampling_wait ~hierarchy kind =
  match kind with
  | Hem.Model.Triggering -> Time.zero
  | Hem.Model.Pending ->
    Event_model.Stream.delta_plus (Hem.Model.outer hierarchy) 2

let data_age ~hierarchy ~response ~signal =
  let inner = Hem.Model.find_inner hierarchy signal in
  Time.add
    (sampling_wait ~hierarchy inner.Hem.Model.kind)
    (Time.of_int (Interval.hi response))
