(** Measurement-based event models.

    Builds event-stream descriptions from recorded traces — the
    trace-import workflow of industrial CPA tools: observe a black-box
    component, derive a descriptive model, feed it to the analysis.

    An observed trace yields {e descriptive} bounds: the distances that
    actually occurred.  They bound the recorded run exactly but are only
    an estimate of the black box's true worst case, so treat analyses
    based on them accordingly (the classic measurement-based-timing
    caveat). *)

val stream_of_trace :
  ?name:string -> Trace.t -> stream:string -> Event_model.Stream.t option
(** [stream_of_trace trace ~stream] is the event stream with
    [delta_min n] (resp. [delta_plus n]) equal to the smallest (resp.
    largest) span of [n] consecutive recorded arrivals; distances beyond
    the recorded count extrapolate with the trace's extreme gaps
    ([delta_min] keeps growing by the smallest observed gap, [delta_plus]
    by the largest).  [None] when fewer than two arrivals were
    recorded. *)

val sem_of_trace :
  ?horizon:int -> Trace.t -> stream:string -> Event_model.Sem.t option
(** The standard event model fitted to the measured stream
    ({!Event_model.Sem.fit}); the compact form of the measurement. *)
