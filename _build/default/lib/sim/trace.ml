type t = {
  arrivals : (string, int list ref) Hashtbl.t;  (* reverse order *)
  responses : (string, (int * int) list ref) Hashtbl.t;
  depths : (string, int ref) Hashtbl.t;
  exec_segments : (string, (int * int) list ref) Hashtbl.t;
}

let create () =
  {
    arrivals = Hashtbl.create 16;
    responses = Hashtbl.create 16;
    depths = Hashtbl.create 16;
    exec_segments = Hashtbl.create 16;
  }

let bucket table key =
  match Hashtbl.find_opt table key with
  | Some r -> r
  | None ->
    let r = ref [] in
    Hashtbl.add table key r;
    r

let record_arrival t ~stream ~time =
  let b = bucket t.arrivals stream in
  b := time :: !b

let record_response t ~element ~activation ~completion =
  if completion < activation then
    invalid_arg "Trace.record_response: completion before activation";
  let b = bucket t.responses element in
  b := (activation, completion) :: !b

let record_queue_depth t ~element ~depth =
  match Hashtbl.find_opt t.depths element with
  | Some r -> r := Stdlib.max !r depth
  | None -> Hashtbl.add t.depths element (ref depth)

let max_queue_depth t element =
  Option.map ( ! ) (Hashtbl.find_opt t.depths element)

let record_segment t ~element ~start ~stop =
  if stop < start then invalid_arg "Trace.record_segment: stop before start";
  let b = bucket t.exec_segments element in
  b := (start, stop) :: !b

let segments t element =
  match Hashtbl.find_opt t.exec_segments element with
  | Some r -> List.sort compare !r
  | None -> []

let arrivals t stream =
  match Hashtbl.find_opt t.arrivals stream with
  | Some r -> List.sort compare !r
  | None -> []

let observed_eta_plus t stream ~dt =
  if dt <= 0 then 0
  else begin
    let times = Array.of_list (arrivals t stream) in
    let n = Array.length times in
    (* two-pointer max count of arrivals with span < dt *)
    let rec scan i j best =
      if j >= n then best
      else if times.(j) - times.(i) < dt then
        scan i (j + 1) (Stdlib.max best (j - i + 1))
      else scan (i + 1) j best
    in
    scan 0 0 0
  end

let observed_delta_min t stream ~n =
  if n < 2 then Some 0
  else begin
    let times = Array.of_list (arrivals t stream) in
    let total = Array.length times in
    if total < n then None
    else begin
      let best = ref max_int in
      for i = 0 to total - n do
        best := Stdlib.min !best (times.(i + n - 1) - times.(i))
      done;
      Some !best
    end
  end

let responses t element =
  match Hashtbl.find_opt t.responses element with
  | Some r -> List.sort compare !r
  | None -> []

let fold_responses t element f init =
  match Hashtbl.find_opt t.responses element with
  | None -> init
  | Some r -> List.fold_left f init !r

let worst_response t element =
  fold_responses t element
    (fun acc (a, c) ->
      match acc with
      | None -> Some (c - a)
      | Some best -> Some (Stdlib.max best (c - a)))
    None

let best_response t element =
  fold_responses t element
    (fun acc (a, c) ->
      match acc with
      | None -> Some (c - a)
      | Some best -> Some (Stdlib.min best (c - a)))
    None

let response_count t element =
  fold_responses t element (fun acc _ -> acc + 1) 0

let streams t = Hashtbl.fold (fun k _ acc -> k :: acc) t.arrivals []

let elements t = Hashtbl.fold (fun k _ acc -> k :: acc) t.responses []

type stats = {
  count : int;
  best : int;
  worst : int;
  mean : float;
  percentile_95 : int;
  percentile_99 : int;
}

let response_stats t element =
  match Hashtbl.find_opt t.responses element with
  | None | Some { contents = [] } -> None
  | Some r ->
    let values =
      List.map (fun (a, c) -> c - a) !r |> List.sort compare |> Array.of_list
    in
    let count = Array.length values in
    let percentile p =
      (* nearest-rank percentile *)
      let rank = (p * count + 99) / 100 in
      values.(Stdlib.max 0 (Stdlib.min (count - 1) (rank - 1)))
    in
    let total = Array.fold_left ( + ) 0 values in
    Some
      {
        count;
        best = values.(0);
        worst = values.(count - 1);
        mean = float_of_int total /. float_of_int count;
        percentile_95 = percentile 95;
        percentile_99 = percentile 99;
      }
