(** Simulation traces: observed arrivals and responses.

    The simulator records the arrival instants of every named stream and
    the (activation, completion) pairs of every scheduled element.  The
    accessors compute observed worst-case responses and observed arrival
    curves, which the validation tests compare against the analytic
    bounds (observed <= bound must always hold for a sound analysis). *)

type t

val create : unit -> t

val record_arrival : t -> stream:string -> time:int -> unit

val record_response : t -> element:string -> activation:int -> completion:int -> unit

val record_queue_depth : t -> element:string -> depth:int -> unit
(** Records an instantaneous number of pending activations / queued
    instances; only the maximum is retained. *)

val record_segment : t -> element:string -> start:int -> stop:int -> unit
(** Records one contiguous execution/transmission window of an element
    (a preempted job contributes several segments). *)

val segments : t -> string -> (int * int) list
(** Execution segments of an element, sorted by start time. *)

val max_queue_depth : t -> string -> int option
(** Largest recorded queue depth; [None] if never recorded. *)

val arrivals : t -> string -> int list
(** Arrival instants of a stream, in increasing order.  Empty for unknown
    streams. *)

val observed_eta_plus : t -> string -> dt:int -> int
(** Maximum number of recorded arrivals spanning strictly less than [dt]
    (the observed counterpart of eta_plus). *)

val observed_delta_min : t -> string -> n:int -> int option
(** Minimum observed span of [n] consecutive arrivals; [None] when fewer
    than [n] arrivals were recorded. *)

val responses : t -> string -> (int * int) list
(** All recorded [(activation, completion)] pairs of an element, sorted
    by activation time.  Empty for unknown elements. *)

val worst_response : t -> string -> int option
(** Largest observed (completion - activation); [None] if the element
    never completed. *)

val best_response : t -> string -> int option

val response_count : t -> string -> int

val streams : t -> string list

val elements : t -> string list

(** {1 Response statistics} *)

type stats = {
  count : int;
  best : int;
  worst : int;
  mean : float;
  percentile_95 : int;
  percentile_99 : int;
}

val response_stats : t -> string -> stats option
(** Distribution summary of an element's observed response times;
    [None] if it never completed. *)
