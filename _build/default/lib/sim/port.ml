let source name = "src:" ^ name

let task_output name = "out:" ^ name

let signal ~frame ~signal = Printf.sprintf "sig:%s/%s" frame signal

let frame name = "frame:" ^ name

let activation name = "act:" ^ name
