(** Naming scheme for the observable event streams of a simulation.

    Every stream the simulator can observe is identified by a string key;
    these helpers build the keys consistently for recording and querying. *)

val source : string -> string
(** Events emitted by a source. *)

val task_output : string -> string
(** Completion events of a task. *)

val signal : frame:string -> signal:string -> string
(** Deliveries of a fresh value of a signal at the receiving end of a
    frame. *)

val frame : string -> string
(** Frame transmission completions (the outer stream). *)

val activation : string -> string
(** Activation instants of a task (after OR-combination of its inputs). *)
