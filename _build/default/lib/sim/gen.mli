(** Arrival-sequence generators for simulated sources.

    A generator produces the concrete arrival times of one source over a
    simulation horizon.  Randomized generators take the simulation's
    random state so runs are reproducible from a seed. *)

type t

val periodic : ?phase:int -> period:int -> unit -> t
(** Arrivals at [phase + k * period].  [phase] defaults to [0]. *)

val periodic_jitter :
  ?phase:int -> period:int -> jitter:int -> unit -> t
(** Arrivals at [phase + k * period + u_k] with [u_k] uniform in
    [\[0, jitter\]], sorted; this realizes the periodic-with-jitter
    standard event model (with [d_min = 0]). *)

val sporadic : ?phase:int -> d_min:int -> slack:int -> unit -> t
(** Arrivals separated by [d_min + u_k] with [u_k] uniform in
    [\[0, slack\]]. *)

val of_times : int list -> t
(** Explicit arrival times (must be sorted non-decreasing). *)

val times : t -> rng:Random.State.t -> horizon:int -> int list
(** Concrete arrival times within [\[0, horizon\]]. *)
