lib/sim/trace.ml: Array Hashtbl List Option Stdlib
