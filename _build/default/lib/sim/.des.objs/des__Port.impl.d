lib/sim/port.ml: Printf
