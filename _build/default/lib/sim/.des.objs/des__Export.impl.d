lib/sim/export.ml: Buffer Bytes Char Hashtbl List Printf Stdlib String Trace
