lib/sim/export.mli: Trace
