lib/sim/simulator.mli: Cpa_system Gen Trace
