lib/sim/trace.mli:
