lib/sim/port.mli:
