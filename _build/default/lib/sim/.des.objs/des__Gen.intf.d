lib/sim/gen.mli: Random
