lib/sim/gen.ml: List Random
