lib/sim/measured.ml: Array Event_model Option Stdlib Timebase Trace
