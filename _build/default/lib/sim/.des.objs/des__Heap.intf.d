lib/sim/heap.mli:
