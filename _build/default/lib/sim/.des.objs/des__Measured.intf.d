lib/sim/measured.mli: Event_model Trace
