lib/sim/simulator.ml: Array Comstack Cpa_system Gen Hashtbl Heap Hem List Option Port Printf Queue Random Stdlib String Timebase Trace
