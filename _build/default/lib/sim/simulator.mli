(** Discrete-event simulation of compositional system specifications.

    Executes a {!Cpa_system.Spec.t} system behaviourally: sources emit
    concrete event sequences, the communication layer latches signal
    registers and queues frames, buses arbitrate non-preemptively by
    priority, CPUs schedule preemptively by static priority.  The
    resulting {!Trace.t} yields observed response times and observed
    arrival curves, which must be dominated by the analytic bounds of
    {!Cpa_system.Engine} — the validation used throughout the test suite.

    All schedulers of {!Cpa_system.Spec} are executable: SPP and EDF
    (preemptive CPUs), SPNP (buses with COM-layer frames), TDMA slot
    tables and round-robin rotation. *)

(** How concrete execution times are drawn from [\[C-:C+\]]. *)
type cet_policy =
  | Worst_case  (** always C+ (default) *)
  | Best_case  (** always C- *)
  | Uniform  (** uniform in [\[C-:C+\]] *)

val run :
  ?seed:int ->
  ?cet_policy:cet_policy ->
  ?frame_loss_percent:int ->
  generators:(string * Gen.t) list ->
  horizon:int ->
  Cpa_system.Spec.t ->
  (Trace.t, string) result
(** [run ~generators ~horizon spec] simulates [spec] over
    [\[0, horizon\]].  [generators] assigns an arrival generator to every
    source name; a missing assignment is an error.  [seed] (default 42)
    makes randomized generators and [Uniform] execution times
    reproducible.

    [frame_loss_percent] (default 0) injects transmission faults: each
    completed frame is corrupted with the given probability — it is not
    delivered (no frame or signal events, no response recorded) and the
    registers of the signals it carried are marked dirty again, so
    pending values ride the next transmission while triggering events of
    the lost frame are gone.  Fault injection only removes events, so
    every analytic bound remains valid for the surviving traffic.

    The trace records, under the keys of {!Port}: source emissions, task
    activations and completions, frame transmissions and per-signal
    deliveries, plus the response of every task and frame instance that
    completed within the horizon. *)
