type t = rng:Random.State.t -> horizon:int -> int list

let periodic ?(phase = 0) ~period () =
  if period < 1 then invalid_arg "Gen.periodic: period < 1";
  fun ~rng:_ ~horizon ->
    let rec collect k acc =
      let time = phase + (k * period) in
      if time > horizon then List.rev acc else collect (k + 1) (time :: acc)
    in
    collect 0 []

let periodic_jitter ?(phase = 0) ~period ~jitter () =
  if period < 1 then invalid_arg "Gen.periodic_jitter: period < 1";
  if jitter < 0 then invalid_arg "Gen.periodic_jitter: jitter < 0";
  fun ~rng ~horizon ->
    let rec collect k acc =
      let nominal = phase + (k * period) in
      if nominal > horizon then List.rev acc
      else begin
        let time = nominal + Random.State.int rng (jitter + 1) in
        collect (k + 1) (time :: acc)
      end
    in
    collect 0 []
    |> List.filter (fun time -> time <= horizon)
    |> List.sort compare

let sporadic ?(phase = 0) ~d_min ~slack () =
  if d_min < 1 then invalid_arg "Gen.sporadic: d_min < 1";
  if slack < 0 then invalid_arg "Gen.sporadic: slack < 0";
  fun ~rng ~horizon ->
    let rec collect time acc =
      if time > horizon then List.rev acc
      else
        let next = time + d_min + Random.State.int rng (slack + 1) in
        collect next (time :: acc)
    in
    collect phase []

let of_times times_list =
  let rec sorted = function
    | a :: (b :: _ as rest) -> a <= b && sorted rest
    | [ _ ] | [] -> true
  in
  if not (sorted times_list) then invalid_arg "Gen.of_times: unsorted times";
  fun ~rng:_ ~horizon -> List.filter (fun t -> t <= horizon) times_list

let times t ~rng ~horizon = t ~rng ~horizon
