type 'a entry = {
  time : int;
  seq : int;
  payload : 'a;
}

type 'a t = {
  mutable data : 'a entry array;
  mutable length : int;
  mutable next_seq : int;
}

let create () = { data = [||]; length = 0; next_seq = 0 }

let is_empty t = t.length = 0

let size t = t.length

let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t.data.(i) t.data.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 in
  let right = left + 1 in
  let smallest = ref i in
  if left < t.length && less t.data.(left) t.data.(!smallest) then
    smallest := left;
  if right < t.length && less t.data.(right) t.data.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let grow t entry =
  let capacity = Array.length t.data in
  if t.length = capacity then begin
    let data = Array.make (Stdlib.max 16 (capacity * 2)) entry in
    Array.blit t.data 0 data 0 t.length;
    t.data <- data
  end

let push t ~time payload =
  let entry = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  grow t entry;
  t.data.(t.length) <- entry;
  t.length <- t.length + 1;
  sift_up t (t.length - 1)

let pop t =
  if t.length = 0 then None
  else begin
    let top = t.data.(0) in
    t.length <- t.length - 1;
    if t.length > 0 then begin
      t.data.(0) <- t.data.(t.length);
      sift_down t 0
    end;
    Some (top.time, top.payload)
  end

let peek_time t = if t.length = 0 then None else Some t.data.(0).time
