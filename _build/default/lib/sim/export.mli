(** Trace exporters.

    Renders simulation traces into standard formats: VCD (value change
    dump, viewable in GTKWave and friends) for event streams, and CSV for
    spreadsheet post-processing. *)

val vcd : ?timescale:string -> Trace.t -> streams:string list -> string
(** [vcd trace ~streams] renders the arrival instants of the named
    streams as one-tick pulses on wire signals.  [timescale] defaults to
    ["1us"].  Unknown streams render as silent wires. *)

val arrivals_csv : Trace.t -> streams:string list -> string
(** One row per arrival: [stream,time], sorted by time then stream
    order. *)

val responses_csv : Trace.t -> elements:string list -> string
(** One row per completed instance: [element,activation,completion,response]. *)

val gantt :
  ?from_time:int -> ?width:int -> Trace.t -> elements:string list -> string
(** ASCII Gantt chart of the recorded execution segments: one row per
    element, ['#'] where it executes, ['.'] where it is idle; the window
    starts at [from_time] (default 0) and spans [width] time units
    (default 100, one column per unit). *)

val segments_csv : Trace.t -> elements:string list -> string
(** One row per execution segment: [element,start,stop]. *)
