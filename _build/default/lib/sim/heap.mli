(** Binary min-heap keyed by [(time, sequence)].

    The event queue of the discrete-event simulator.  The sequence number
    makes extraction deterministic for simultaneous events (FIFO among
    equals). *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val size : 'a t -> int

val push : 'a t -> time:int -> 'a -> unit
(** Inserts with the next sequence number. *)

val pop : 'a t -> (int * 'a) option
(** Removes and returns the entry with the smallest [(time, sequence)]
    key, as [(time, payload)]. *)

val peek_time : 'a t -> int option
