module Spec = Cpa_system.Spec
module Interval = Timebase.Interval

type cet_policy =
  | Worst_case
  | Best_case
  | Uniform

type sim = {
  events : (int -> unit) Heap.t;
  trace : Trace.t;
  rng : Random.State.t;
  subscribers : (string, (int -> unit) list ref) Hashtbl.t;
  horizon : int;
  frame_loss_percent : int;
}

let at sim time handler =
  if time <= sim.horizon then Heap.push sim.events ~time handler

let subscribe sim port handler =
  let bucket =
    match Hashtbl.find_opt sim.subscribers port with
    | Some b -> b
    | None ->
      let b = ref [] in
      Hashtbl.add sim.subscribers port b;
      b
  in
  bucket := handler :: !bucket

let emit sim port time =
  Trace.record_arrival sim.trace ~stream:port ~time;
  match Hashtbl.find_opt sim.subscribers port with
  | None -> ()
  | Some bucket -> List.iter (fun handler -> handler time) (List.rev !bucket)

let draw_cet sim policy cet =
  match policy with
  | Worst_case -> Interval.hi cet
  | Best_case -> Interval.lo cet
  | Uniform ->
    Interval.lo cet + Random.State.int sim.rng (Interval.width cet + 1)

(* ------------------------------------------------------------------ *)
(* Preemptive dynamic- or static-priority CPU.  The dispatch key makes
   the same machinery serve both policies: the task priority under SPP,
   the absolute deadline under EDF; smaller key wins, a strictly smaller
   key preempts. *)

type job = {
  owner : string;
  key : int;
  activation : int;
  job_seq : int;
  mutable remaining : int;
}

type cpu = {
  mutable ready : job list;
  mutable running : (job * int * int) option;  (* job, started_at, token *)
  mutable next_token : int;
  mutable next_job_seq : int;
}

let make_cpu () = { ready = []; running = None; next_token = 0; next_job_seq = 0 }

let job_precedes a b =
  a.key < b.key
  || (a.key = b.key
      && (a.activation < b.activation
          || (a.activation = b.activation && a.job_seq < b.job_seq)))

let best_ready cpu =
  match cpu.ready with
  | [] -> None
  | first :: rest ->
    Some (List.fold_left (fun acc j -> if job_precedes j acc then j else acc)
            first rest)

let remove_job cpu job = cpu.ready <- List.filter (fun j -> j != job) cpu.ready

let rec cpu_start sim cpu job time =
  remove_job cpu job;
  let token = cpu.next_token in
  cpu.next_token <- token + 1;
  cpu.running <- Some (job, time, token);
  at sim (time + job.remaining) (cpu_complete sim cpu job token)

and cpu_complete sim cpu job token time =
  match cpu.running with
  | Some (running, started, tok) when tok = token && running == job ->
    cpu.running <- None;
    Trace.record_segment sim.trace ~element:job.owner ~start:started
      ~stop:time;
    Trace.record_response sim.trace ~element:job.owner
      ~activation:job.activation ~completion:time;
    emit sim (Port.task_output job.owner) time;
    cpu_reschedule sim cpu time
  | Some _ | None -> ()  (* stale completion of a preempted job *)

and cpu_reschedule sim cpu time =
  match cpu.running, best_ready cpu with
  | None, Some best -> cpu_start sim cpu best time
  | Some (current, started, _), Some best when best.key < current.key ->
    (* preempt: bank the progress and park the current job *)
    current.remaining <- current.remaining - (time - started);
    assert (current.remaining >= 0);
    if time > started then
      Trace.record_segment sim.trace ~element:current.owner ~start:started
        ~stop:time;
    cpu.ready <- current :: cpu.ready;
    cpu.running <- None;
    cpu_start sim cpu best time
  | None, None | Some _, _ -> ()

let cpu_activate sim cpu ~owner ~key ~remaining time =
  let job_seq = cpu.next_job_seq in
  cpu.next_job_seq <- job_seq + 1;
  let job = { owner; key; activation = time; job_seq; remaining } in
  cpu.ready <- job :: cpu.ready;
  let depth =
    List.length (List.filter (fun j -> String.equal j.owner owner) cpu.ready)
    + (match cpu.running with
       | Some (j, _, _) when String.equal j.owner owner -> 1
       | Some _ | None -> 0)
  in
  Trace.record_queue_depth sim.trace ~element:owner ~depth;
  cpu_reschedule sim cpu time

(* ------------------------------------------------------------------ *)
(* Non-preemptive priority bus with COM-layer frames                   *)

type frame_state = {
  fspec : Spec.frame;
  dirty : (string, bool ref) Hashtbl.t;  (* per-signal register freshness *)
}

type bus_instance = {
  fstate : frame_state;
  queued_at : int;
  inst_seq : int;
}

type bus = {
  mutable pending : bus_instance list;
  mutable current : bus_instance option;
  mutable next_inst_seq : int;
}

let make_bus () = { pending = []; current = None; next_inst_seq = 0 }

let instance_precedes a b =
  let pa = a.fstate.fspec.Spec.frame_priority
  and pb = b.fstate.fspec.Spec.frame_priority in
  pa < pb || (pa = pb && a.inst_seq < b.inst_seq)

let best_pending bus =
  match bus.pending with
  | [] -> None
  | first :: rest ->
    Some
      (List.fold_left
         (fun acc i -> if instance_precedes i acc then i else acc)
         first rest)

let rec bus_start sim policy bus time =
  match best_pending bus with
  | None -> ()
  | Some inst ->
    bus.pending <- List.filter (fun i -> i != inst) bus.pending;
    bus.current <- Some inst;
    (* latch the registers when the frame wins arbitration *)
    let carried =
      Hashtbl.fold
        (fun signal fresh acc ->
          if !fresh then begin
            fresh := false;
            signal :: acc
          end
          else acc)
        inst.fstate.dirty []
      |> List.sort compare
    in
    let tx = draw_cet sim policy inst.fstate.fspec.Spec.tx_time in
    at sim (time + tx) (bus_complete sim policy bus inst carried ~tx_start:time)

and bus_complete sim policy bus inst carried ~tx_start time =
  bus.current <- None;
  let frame = inst.fstate.fspec.Spec.frame_name in
  Trace.record_segment sim.trace ~element:frame ~start:tx_start ~stop:time;
  let lost =
    sim.frame_loss_percent > 0
    && Random.State.int sim.rng 100 < sim.frame_loss_percent
  in
  if lost then
    (* fault injection: nothing is delivered; the carried values return
       to their registers so the next transmission picks them up *)
    List.iter
      (fun signal -> Hashtbl.find inst.fstate.dirty signal := true)
      carried
  else begin
    Trace.record_response sim.trace ~element:frame ~activation:inst.queued_at
      ~completion:time;
    emit sim (Port.frame frame) time;
    List.iter (fun signal -> emit sim (Port.signal ~frame ~signal) time) carried
  end;
  bus_start sim policy bus time

let same_frame a b =
  String.equal a.fstate.fspec.Spec.frame_name b.fstate.fspec.Spec.frame_name

let queue_frame sim policy bus fstate time =
  let inst =
    { fstate; queued_at = time; inst_seq = bus.next_inst_seq }
  in
  bus.next_inst_seq <- bus.next_inst_seq + 1;
  bus.pending <- inst :: bus.pending;
  let depth =
    List.length (List.filter (same_frame inst) bus.pending)
    + (match bus.current with
       | Some cur when same_frame cur inst -> 1
       | Some _ | None -> 0)
  in
  Trace.record_queue_depth sim.trace
    ~element:fstate.fspec.Spec.frame_name ~depth;
  if bus.current = None then bus_start sim policy bus time

(* ------------------------------------------------------------------ *)
(* TDMA resource: a static slot table; each task is served only inside
   its own slot, paused work resumes next cycle. *)

type service_job = {
  s_owner : string;
  s_activation : int;
  mutable s_remaining : int;
}

type tdma_slot = {
  slot_owner : string;
  offset : int;
  length : int;
  slot_queue : service_job Queue.t;
}

type tdma = {
  tdma_slots : tdma_slot list;
  tdma_cycle : int;
  mutable tdma_serving : bool;
}

let make_tdma slots =
  let cycle, placed =
    List.fold_left
      (fun (offset, acc) (owner, length) ->
        ( offset + length,
          { slot_owner = owner; offset; length; slot_queue = Queue.create () }
          :: acc ))
      (0, []) slots
  in
  { tdma_slots = List.rev placed; tdma_cycle = cycle; tdma_serving = false }

(* the slot open at instant [time], with its closing instant *)
let tdma_open_slot tdma time =
  let phase = time mod tdma.tdma_cycle in
  List.find_map
    (fun slot ->
      if slot.offset <= phase && phase < slot.offset + slot.length then
        Some (slot, time - phase + slot.offset + slot.length)
      else None)
    tdma.tdma_slots

(* Serve the head of [slot]'s queue until it finishes or the slot closes;
   chains through the queue within the slot, and when the slot closes (or
   drains) hands over to whatever slot is open at that instant. *)
let rec tdma_serve sim tdma slot ~slot_end time =
  if time >= slot_end || Queue.is_empty slot.slot_queue then begin
    tdma.tdma_serving <- false;
    tdma_roll_over sim tdma time
  end
  else begin
    tdma.tdma_serving <- true;
    let job = Queue.peek slot.slot_queue in
    let run = Stdlib.min job.s_remaining (slot_end - time) in
    at sim (time + run) (fun now ->
      job.s_remaining <- job.s_remaining - run;
      Trace.record_segment sim.trace ~element:job.s_owner ~start:(now - run)
        ~stop:now;
      if job.s_remaining = 0 then begin
        ignore (Queue.pop slot.slot_queue);
        Trace.record_response sim.trace ~element:job.s_owner
          ~activation:job.s_activation ~completion:now;
        emit sim (Port.task_output job.s_owner) now
      end;
      tdma_serve sim tdma slot ~slot_end now)
  end

and tdma_roll_over sim tdma time =
  if not tdma.tdma_serving then begin
    match tdma_open_slot tdma time with
    | Some (slot, slot_end) ->
      if not (Queue.is_empty slot.slot_queue) then
        tdma_serve sim tdma slot ~slot_end time
    | None -> ()
  end

let tdma_slot_of tdma owner =
  List.find (fun s -> String.equal s.slot_owner owner) tdma.tdma_slots

let tdma_activate sim tdma ~owner ~remaining time =
  let slot = tdma_slot_of tdma owner in
  Queue.push { s_owner = owner; s_activation = time; s_remaining = remaining }
    slot.slot_queue;
  Trace.record_queue_depth sim.trace ~element:owner
    ~depth:(Queue.length slot.slot_queue);
  tdma_roll_over sim tdma time

(* schedule the recurring slot-opening events over the horizon *)
let tdma_schedule_slots sim tdma =
  let rec cycles base =
    if base > sim.horizon then ()
    else begin
      List.iter
        (fun slot ->
          let start = base + slot.offset in
          at sim start (fun now ->
            if (not tdma.tdma_serving)
               && not (Queue.is_empty slot.slot_queue) then
              tdma_serve sim tdma slot ~slot_end:(start + slot.length) now))
        tdma.tdma_slots;
      cycles (base + tdma.tdma_cycle)
    end
  in
  cycles 0

(* ------------------------------------------------------------------ *)
(* Round-robin resource: rotate over backlogged tasks, each receiving
   at most its quantum per visit. *)

type rr_share = {
  rr_owner : string;
  quantum : int;
  rr_queue : service_job Queue.t;
}

type rr = {
  shares : rr_share array;
  mutable cursor : int;
  mutable rr_serving : bool;
}

let make_rr shares =
  {
    shares =
      Array.of_list
        (List.map
           (fun (owner, quantum) ->
             { rr_owner = owner; quantum; rr_queue = Queue.create () })
           shares);
    cursor = 0;
    rr_serving = false;
  }

let rec rr_dispatch sim rr time =
  let n = Array.length rr.shares in
  let rec find k =
    if k >= n then None
    else begin
      let idx = (rr.cursor + k) mod n in
      if Queue.is_empty rr.shares.(idx).rr_queue then find (k + 1)
      else Some idx
    end
  in
  match find 0 with
  | None -> rr.rr_serving <- false
  | Some idx ->
    rr.rr_serving <- true;
    let share = rr.shares.(idx) in
    let job = Queue.peek share.rr_queue in
    let run = Stdlib.min job.s_remaining share.quantum in
    at sim (time + run) (fun now ->
      job.s_remaining <- job.s_remaining - run;
      Trace.record_segment sim.trace ~element:job.s_owner ~start:(now - run)
        ~stop:now;
      if job.s_remaining = 0 then begin
        ignore (Queue.pop share.rr_queue);
        Trace.record_response sim.trace ~element:job.s_owner
          ~activation:job.s_activation ~completion:now;
        emit sim (Port.task_output job.s_owner) now
      end;
      rr.cursor <- (idx + 1) mod n;
      rr_dispatch sim rr now)

let rr_activate sim rr ~owner ~remaining time =
  let share =
    let rec find i =
      if String.equal rr.shares.(i).rr_owner owner then rr.shares.(i)
      else find (i + 1)
    in
    find 0
  in
  Queue.push { s_owner = owner; s_activation = time; s_remaining = remaining }
    share.rr_queue;
  Trace.record_queue_depth sim.trace ~element:owner
    ~depth:(Queue.length share.rr_queue);
  if not rr.rr_serving then rr_dispatch sim rr time

(* ------------------------------------------------------------------ *)
(* Wiring a specification                                              *)

let rec subscribe_activation sim act handler =
  match act with
  | Spec.From_source s -> subscribe sim (Port.source s) handler
  | Spec.From_output u -> subscribe sim (Port.task_output u) handler
  | Spec.From_signal { frame; signal } ->
    subscribe sim (Port.signal ~frame ~signal) handler
  | Spec.From_frame f -> subscribe sim (Port.frame f) handler
  | Spec.Or_of acts ->
    List.iter (fun a -> subscribe_activation sim a handler) acts
  | Spec.And_of acts ->
    (* fire once every input has delivered; one event of each input is
       consumed per firing *)
    let counts = Array.make (List.length acts) 0 in
    List.iteri
      (fun i a ->
        subscribe_activation sim a (fun time ->
          counts.(i) <- counts.(i) + 1;
          if Array.for_all (fun c -> c > 0) counts then begin
            Array.iteri (fun j c -> counts.(j) <- c - 1) counts;
            handler time
          end))
      acts

let effective_kind (f : Spec.frame) (s : Spec.signal_binding) =
  match f.send_type with
  | Comstack.Frame.Periodic _ -> Hem.Model.Pending
  | Comstack.Frame.Direct | Comstack.Frame.Mixed _ -> s.property

(* Per-resource dispatch target for task activations. *)
type resource_sim =
  | Cpu_spp of cpu
  | Cpu_edf of cpu
  | Service_tdma of tdma
  | Service_rr of rr

let run ?(seed = 42) ?(cet_policy = Worst_case) ?(frame_loss_percent = 0)
    ~generators ~horizon spec =
  if frame_loss_percent < 0 || frame_loss_percent > 100 then
    invalid_arg "Simulator.run: frame_loss_percent outside 0..100"
  else
  match Spec.validate spec with
  | Error e -> Error e
  | Ok () -> begin
    let missing_generator =
      List.find_opt
        (fun (name, _) -> not (List.mem_assoc name generators))
        spec.Spec.sources
    in
    match missing_generator with
    | Some (name, _) ->
      Error (Printf.sprintf "no generator for source %s" name)
    | None ->
      let sim =
        {
          events = Heap.create ();
          trace = Trace.create ();
          rng = Random.State.make [| seed |];
          subscribers = Hashtbl.create 32;
          horizon;
          frame_loss_percent;
        }
      in
      (* resources *)
      let resources = Hashtbl.create 4 in
      let buses = Hashtbl.create 4 in
      let tasks_on res =
        List.filter
          (fun (k : Spec.task) -> String.equal k.resource res)
          spec.Spec.tasks
      in
      List.iter
        (fun (r : Spec.resource) ->
          match r.scheduler with
          | Spec.Spp -> Hashtbl.add resources r.res_name (Cpu_spp (make_cpu ()))
          | Spec.Edf -> Hashtbl.add resources r.res_name (Cpu_edf (make_cpu ()))
          | Spec.Spnp -> Hashtbl.add buses r.res_name (make_bus ())
          | Spec.Tdma ->
            let slots =
              List.map
                (fun (k : Spec.task) -> k.task_name, Option.get k.service)
                (tasks_on r.res_name)
            in
            let tdma = make_tdma slots in
            tdma_schedule_slots sim tdma;
            Hashtbl.add resources r.res_name (Service_tdma tdma)
          | Spec.Round_robin ->
            let shares =
              List.map
                (fun (k : Spec.task) -> k.task_name, Option.get k.service)
                (tasks_on r.res_name)
            in
            Hashtbl.add resources r.res_name (Service_rr (make_rr shares)))
        spec.Spec.resources;
      (* tasks *)
      List.iter
        (fun (k : Spec.task) ->
          let resource = Hashtbl.find resources k.resource in
          let handler time =
            Trace.record_arrival sim.trace
              ~stream:(Port.activation k.task_name) ~time;
            let remaining = draw_cet sim cet_policy k.cet in
            match resource with
            | Cpu_spp cpu ->
              cpu_activate sim cpu ~owner:k.task_name ~key:k.priority
                ~remaining time
            | Cpu_edf cpu ->
              cpu_activate sim cpu ~owner:k.task_name
                ~key:(time + Option.get k.deadline)
                ~remaining time
            | Service_tdma tdma ->
              tdma_activate sim tdma ~owner:k.task_name ~remaining time
            | Service_rr rr ->
              rr_activate sim rr ~owner:k.task_name ~remaining time
          in
          subscribe_activation sim k.activation handler)
        spec.Spec.tasks;
      (* frames *)
      List.iter
        (fun (f : Spec.frame) ->
          let bus = Hashtbl.find buses f.bus in
          let fstate = { fspec = f; dirty = Hashtbl.create 8 } in
          List.iter
            (fun (s : Spec.signal_binding) ->
              let fresh = ref false in
              Hashtbl.add fstate.dirty s.signal_name fresh;
              let kind = effective_kind f s in
              let handler time =
                fresh := true;
                match kind with
                | Hem.Model.Triggering ->
                  queue_frame sim cet_policy bus fstate time
                | Hem.Model.Pending -> ()
              in
              subscribe_activation sim s.origin handler)
            f.signals;
          match f.send_type with
          | Comstack.Frame.Direct -> ()
          | Comstack.Frame.Periodic p | Comstack.Frame.Mixed p ->
            let rec tick k =
              let time = k * p in
              if time <= horizon then begin
                at sim time (fun t -> queue_frame sim cet_policy bus fstate t);
                tick (k + 1)
              end
            in
            tick 0)
        spec.Spec.frames;
      (* sources *)
      List.iter
        (fun (name, _) ->
          let gen = List.assoc name generators in
          let times = Gen.times gen ~rng:sim.rng ~horizon in
          List.iter
            (fun time -> at sim time (fun t -> emit sim (Port.source name) t))
            times)
        spec.Spec.sources;
      (* main loop *)
      let rec drain () =
        match Heap.pop sim.events with
        | None -> ()
        | Some (time, handler) ->
          handler time;
          drain ()
      in
      drain ();
      Ok sim.trace
  end
