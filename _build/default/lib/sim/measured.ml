module Time = Timebase.Time
module Stream = Event_model.Stream

let stream_of_trace ?name trace ~stream =
  let times = Array.of_list (Trace.arrivals trace stream) in
  let total = Array.length times in
  if total < 2 then None
  else begin
    let name =
      match name with
      | Some n -> n
      | None -> "measured:" ^ stream
    in
    let span n pick init =
      let best = ref init in
      for i = 0 to total - n do
        best := pick !best (times.(i + n - 1) - times.(i))
      done;
      !best
    in
    let min_gap = span 2 Stdlib.min max_int in
    let max_gap = span 2 Stdlib.max 0 in
    let delta_min n =
      if n <= total then Time.of_int (span n Stdlib.min max_int)
      else
        (* extrapolate past the recorded count with the tightest gap *)
        Time.of_int (span total Stdlib.min max_int + ((n - total) * min_gap))
    in
    let delta_plus n =
      if n <= total then Time.of_int (span n Stdlib.max 0)
      else Time.of_int (span total Stdlib.max 0 + ((n - total) * max_gap))
    in
    Some (Stream.make ~name ~delta_min ~delta_plus)
  end

let sem_of_trace ?horizon trace ~stream =
  Option.map
    (Event_model.Sem.fit ?horizon)
    (stream_of_trace trace ~stream)
