(* Tests for the AUTOSAR-style COM layer model: signals, frame types and
   their hierarchical activation models, and CAN transmission times. *)

module Time = Timebase.Time
module Interval = Timebase.Interval
module Stream = Event_model.Stream
module Signal = Comstack.Signal
module Frame = Comstack.Frame
module Can = Comstack.Can

let time = Alcotest.testable Time.pp Time.equal

let s_fast = Stream.periodic ~name:"fast" ~period:100

let s_slow = Stream.periodic ~name:"slow" ~period:700

let direct_frame () =
  Frame.make ~name:"D" ~send_type:Frame.Direct
    ~signals:[ Signal.triggering ~name:"a" s_fast; Signal.pending ~name:"b" s_slow ]
    ~tx_time:(Interval.point 4) ~priority:1

(* ------------------------------------------------------------------ *)
(* frames *)

let test_frame_validation () =
  let raises f = match f () with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "no signals" true
    (raises (fun () ->
       Frame.make ~name:"x" ~send_type:Frame.Direct ~signals:[]
         ~tx_time:(Interval.point 1) ~priority:1));
  Alcotest.(check bool) "direct without trigger" true
    (raises (fun () ->
       Frame.make ~name:"x" ~send_type:Frame.Direct
         ~signals:[ Signal.pending ~name:"p" s_fast ]
         ~tx_time:(Interval.point 1) ~priority:1));
  Alcotest.(check bool) "periodic zero timer" true
    (raises (fun () ->
       Frame.make ~name:"x" ~send_type:(Frame.Periodic 0)
         ~signals:[ Signal.pending ~name:"p" s_fast ]
         ~tx_time:(Interval.point 1) ~priority:1));
  (* periodic frame with only pending signals is fine: the timer triggers *)
  Alcotest.(check bool) "periodic pending ok" false
    (raises (fun () ->
       Frame.make ~name:"x" ~send_type:(Frame.Periodic 50)
         ~signals:[ Signal.pending ~name:"p" s_fast ]
         ~tx_time:(Interval.point 1) ~priority:1))

let test_direct_frame_hierarchy () =
  let h = Frame.hierarchy (direct_frame ()) in
  (* outer = the triggering signal stream alone *)
  for n = 2 to 6 do
    Alcotest.check time
      (Printf.sprintf "outer %d" n)
      (Stream.delta_min s_fast n)
      (Stream.delta_min (Hem.Model.outer h) n)
  done;
  Alcotest.(check int) "two inners" 2 (Hem.Model.arity h);
  (* pending signal: slower than the frames, bound by eq. (7):
     delta_min' 2 = max (700 - delta_plus_out 2) (outer delta_min 2)
                  = max (700 - 100) 100 = 600 *)
  let b = Hem.Deconstruct.unpack_label h "b" in
  Alcotest.check time "pending bound" (Time.of_int 600) (Stream.delta_min b 2)

let test_periodic_frame_hierarchy () =
  (* periodic frame: the timer is the only trigger; even a triggering
     signal is packed as pending *)
  let f =
    Frame.make ~name:"P" ~send_type:(Frame.Periodic 50)
      ~signals:[ Signal.triggering ~name:"a" s_fast ]
      ~tx_time:(Interval.point 2) ~priority:3
  in
  let h = Frame.hierarchy f in
  Alcotest.(check int) "signal + timer" 2 (Hem.Model.arity h);
  let timer = Hem.Model.find_inner h (Frame.timer_label f) in
  Alcotest.(check bool) "timer triggering" true
    (timer.Hem.Model.kind = Hem.Model.Triggering);
  (* outer is the 50-periodic timer *)
  Alcotest.check time "outer period" (Time.of_int 50)
    (Stream.delta_min (Hem.Model.outer h) 2);
  (* the signal rides as pending: delta_plus' = inf *)
  let a = Hem.Deconstruct.unpack_label h "a" in
  Alcotest.check time "pending plus" Time.Inf (Stream.delta_plus a 2);
  (* 100-periodic data on a 50-periodic frame: fresh data at most every
     max (100 - 50) 50 = 50 *)
  Alcotest.check time "fresh data distance" (Time.of_int 50)
    (Stream.delta_min a 2)

let test_mixed_frame_hierarchy () =
  (* mixed: both the triggering signal and the timer send frames *)
  let f =
    Frame.make ~name:"M" ~send_type:(Frame.Mixed 300)
      ~signals:[ Signal.triggering ~name:"a" s_fast ]
      ~tx_time:(Interval.point 2) ~priority:3
  in
  let h = Frame.hierarchy f in
  let reference =
    Event_model.Combine.or_combine
      [ s_fast; Stream.periodic ~name:"t" ~period:300 ]
  in
  for n = 2 to 8 do
    Alcotest.check time
      (Printf.sprintf "outer %d" n)
      (Stream.delta_min reference n)
      (Stream.delta_min (Hem.Model.outer h) n)
  done

let test_frame_message () =
  let f = direct_frame () in
  let h = Frame.hierarchy f in
  let msg = Frame.message f h in
  Alcotest.(check string) "name" "D" msg.Scheduling.Rt_task.name;
  Alcotest.(check int) "priority" 1 msg.Scheduling.Rt_task.priority;
  Alcotest.(check bool) "cet" true
    (Interval.equal (Interval.point 4) msg.Scheduling.Rt_task.cet)

let test_timer_label () =
  Alcotest.(check string) "label" "D.timer" (Frame.timer_label (direct_frame ()))

(* ------------------------------------------------------------------ *)
(* CAN timing *)

let test_can_frame_bits () =
  (* Davis et al.: an 8-byte standard frame occupies at most 135 bit
     times: 8*8 + 34 + 13 + floor((34 + 64 - 1)/4) = 64+47+24 = 135 *)
  Alcotest.(check int) "8 bytes standard" 135
    (Can.frame_bits ~data_bytes:8 ());
  Alcotest.(check int) "0 bytes standard" (47 + 8)
    (Can.frame_bits ~data_bytes:0 ());
  (* extended: g = 54: 64 + 54 + 13 + floor(117/4) = 131 + 29 = 160 *)
  Alcotest.(check int) "8 bytes extended" 160
    (Can.frame_bits ~format:Can.Extended ~data_bytes:8 ())

let test_can_transmission_time () =
  Alcotest.(check int) "bit_time scaling" (135 * 2)
    (Can.transmission_time ~data_bytes:8 ~bit_time:2 ());
  Alcotest.(check bool) "interval lo < hi" true
    (let i = Can.tx_interval ~data_bytes:8 ~bit_time:1 () in
     Interval.lo i = 111 && Interval.hi i = 135)

let test_can_validation () =
  let raises f = match f () with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "9 bytes" true
    (raises (fun () -> Can.frame_bits ~data_bytes:9 ()));
  Alcotest.(check bool) "negative" true
    (raises (fun () -> Can.frame_bits ~data_bytes:(-1) ()));
  Alcotest.(check bool) "bit_time 0" true
    (raises (fun () -> Can.transmission_time ~data_bytes:1 ~bit_time:0 ()))

(* ------------------------------------------------------------------ *)
(* data age *)

let test_data_age () =
  let h = Frame.hierarchy (direct_frame ()) in
  let response = Interval.make ~lo:4 ~hi:9 in
  (* triggering signal: no sampling wait, age = frame response *)
  Alcotest.check time "triggering age" (Time.of_int 9)
    (Comstack.Latency.data_age ~hierarchy:h ~response ~signal:"a");
  (* pending: waits up to delta_plus_out 2 = 100 for the next trigger *)
  Alcotest.check time "pending age" (Time.of_int 109)
    (Comstack.Latency.data_age ~hierarchy:h ~response ~signal:"b");
  Alcotest.(check bool) "unknown signal" true
    (match Comstack.Latency.data_age ~hierarchy:h ~response ~signal:"z" with
     | _ -> false
     | exception Not_found -> true)

let test_data_age_sporadic_trigger_unbounded () =
  (* a frame whose triggers have no upper distance bound cannot bound
     the age of a pending value *)
  let f =
    Frame.make ~name:"sp" ~send_type:Frame.Direct
      ~signals:
        [
          Signal.triggering ~name:"t" (Stream.sporadic ~name:"t" ~d_min:50);
          Signal.pending ~name:"p" s_slow;
        ]
      ~tx_time:(Interval.point 2) ~priority:1
  in
  let h = Frame.hierarchy f in
  Alcotest.check time "unbounded age" Time.Inf
    (Comstack.Latency.data_age ~hierarchy:h ~response:(Interval.point 5)
       ~signal:"p")

(* ------------------------------------------------------------------ *)
(* payload layouts *)

let test_layout_packing () =
  match
    Comstack.Layout.make
      [
        { Comstack.Layout.field_name = "speed"; bits = 12 };
        { Comstack.Layout.field_name = "flags"; bits = 4 };
        { Comstack.Layout.field_name = "diag"; bits = 16 };
      ]
  with
  | Error e -> Alcotest.failf "unexpected: %s" e
  | Ok layout ->
    Alcotest.(check int) "total bits" 32 (Comstack.Layout.total_bits layout);
    Alcotest.(check int) "bytes" 4 (Comstack.Layout.data_bytes layout);
    Alcotest.(check int) "speed at 0" 0 (Comstack.Layout.bit_offset layout "speed");
    Alcotest.(check int) "flags at 12" 12
      (Comstack.Layout.bit_offset layout "flags");
    Alcotest.(check int) "diag at 16" 16
      (Comstack.Layout.bit_offset layout "diag");
    (* transmission interval derives from the real payload size *)
    let tx = Comstack.Layout.tx_interval ~bit_time:1 layout in
    Alcotest.(check bool) "tx matches Can module" true
      (Interval.equal tx (Can.tx_interval ~data_bytes:4 ~bit_time:1 ()))

let test_layout_validation () =
  let fails fields = match Comstack.Layout.make fields with
    | Error _ -> true
    | Ok _ -> false
  in
  Alcotest.(check bool) "empty" true (fails []);
  Alcotest.(check bool) "zero width" true
    (fails [ { Comstack.Layout.field_name = "x"; bits = 0 } ]);
  Alcotest.(check bool) "duplicate" true
    (fails
       [
         { Comstack.Layout.field_name = "x"; bits = 4 };
         { Comstack.Layout.field_name = "x"; bits = 4 };
       ]);
  Alcotest.(check bool) "overflow" true
    (fails [ { Comstack.Layout.field_name = "big"; bits = 65 } ]);
  Alcotest.(check bool) "fits exactly" false
    (fails [ { Comstack.Layout.field_name = "full"; bits = 64 } ])

(* ------------------------------------------------------------------ *)
(* signals *)

let test_signal_constructors () =
  let t = Signal.triggering ~name:"t" s_fast in
  let p = Signal.pending ~name:"p" s_slow in
  Alcotest.(check bool) "triggering" true (t.Signal.property = Hem.Model.Triggering);
  Alcotest.(check bool) "pending" true (p.Signal.property = Hem.Model.Pending);
  Alcotest.(check string) "pp" "signal t (triggering, fast)"
    (Format.asprintf "%a" Signal.pp t)

let () =
  Alcotest.run "comstack"
    [
      ( "frames",
        [
          Alcotest.test_case "validation" `Quick test_frame_validation;
          Alcotest.test_case "direct hierarchy" `Quick test_direct_frame_hierarchy;
          Alcotest.test_case "periodic hierarchy" `Quick
            test_periodic_frame_hierarchy;
          Alcotest.test_case "mixed hierarchy" `Quick test_mixed_frame_hierarchy;
          Alcotest.test_case "bus message" `Quick test_frame_message;
          Alcotest.test_case "timer label" `Quick test_timer_label;
        ] );
      ( "can",
        [
          Alcotest.test_case "frame bits" `Quick test_can_frame_bits;
          Alcotest.test_case "transmission time" `Quick
            test_can_transmission_time;
          Alcotest.test_case "validation" `Quick test_can_validation;
        ] );
      ( "data age",
        [
          Alcotest.test_case "triggering vs pending" `Quick test_data_age;
          Alcotest.test_case "sporadic trigger unbounded" `Quick
            test_data_age_sporadic_trigger_unbounded;
        ] );
      ( "layout",
        [
          Alcotest.test_case "packing" `Quick test_layout_packing;
          Alcotest.test_case "validation" `Quick test_layout_validation;
        ] );
      "signals", [ Alcotest.test_case "constructors" `Quick test_signal_constructors ];
    ]
