(* Tests for event streams: distance curves, the arrival functions
   eta_plus / eta_minus (paper, eqs. 1-2), stream builders and validation. *)

module Time = Timebase.Time
module Count = Timebase.Count
module Stream = Event_model.Stream

let time = Alcotest.testable Time.pp Time.equal

let count = Alcotest.testable Count.pp Count.equal

(* Brute-force eta_plus per eq. (1): max {n >= 1 | delta_min n < dt}. *)
let brute_eta_plus s dt =
  if dt <= 0 then Count.zero
  else begin
    let rec scan n best =
      if n > 4096 then Count.Inf
      else if Time.(Stream.delta_min s n < Time.of_int dt) then scan (n + 1) n
      else Count.of_int best
    in
    scan 1 1
  end

(* Brute-force eta_minus per eq. (2): min {n >= 0 | delta_plus (n+2) > dt}. *)
let brute_eta_minus s dt =
  if dt <= 0 then Count.zero
  else begin
    let rec scan n =
      if n > 4096 then Count.Inf
      else if Time.(Stream.delta_plus s (n + 2) > Time.of_int dt) then
        Count.of_int n
      else scan (n + 1)
    in
    scan 0
  end

(* ------------------------------------------------------------------ *)
(* builders *)

let test_periodic () =
  let s = Stream.periodic ~name:"p" ~period:100 in
  Alcotest.check time "delta_min 1" Time.zero (Stream.delta_min s 1);
  Alcotest.check time "delta_min 2" (Time.of_int 100) (Stream.delta_min s 2);
  Alcotest.check time "delta_min 5" (Time.of_int 400) (Stream.delta_min s 5);
  Alcotest.check time "delta_plus 5" (Time.of_int 400) (Stream.delta_plus s 5);
  Alcotest.check count "eta_plus 100" (Count.of_int 1) (Stream.eta_plus s 100);
  Alcotest.check count "eta_plus 101" (Count.of_int 2) (Stream.eta_plus s 101);
  Alcotest.check count "eta_plus 0" Count.zero (Stream.eta_plus s 0)

let test_sporadic () =
  let s = Stream.sporadic ~name:"s" ~d_min:10 in
  Alcotest.check time "delta_min 3" (Time.of_int 20) (Stream.delta_min s 3);
  Alcotest.check time "delta_plus 2" Time.Inf (Stream.delta_plus s 2);
  Alcotest.check count "eta_minus any" Count.zero (Stream.eta_minus s 100000);
  Alcotest.check count "eta_plus 25" (Count.of_int 3) (Stream.eta_plus s 25)

let test_periodic_jitter () =
  let s = Stream.periodic_jitter ~name:"pj" ~period:100 ~jitter:30 () in
  (* delta_min n = max ((n-1)*1) ((n-1)*100 - 30) *)
  Alcotest.check time "delta_min 2" (Time.of_int 70) (Stream.delta_min s 2);
  Alcotest.check time "delta_plus 2" (Time.of_int 130) (Stream.delta_plus s 2);
  Alcotest.check count "eta_plus 71" (Count.of_int 2) (Stream.eta_plus s 71);
  Alcotest.check count "eta_plus 70" (Count.of_int 1) (Stream.eta_plus s 70)

let test_periodic_burst () =
  let s = Stream.periodic_burst ~name:"pb" ~period:100 ~burst:3 ~d_min:5 in
  (* events at 0,5,10, 100,105,110, 200,... *)
  Alcotest.check time "delta_min 3" (Time.of_int 10) (Stream.delta_min s 3);
  (* any 4 consecutive events of the deterministic pattern span exactly
     one burst boundary: 100 regardless of the start index *)
  Alcotest.check time "delta_min 4" (Time.of_int 100) (Stream.delta_min s 4);
  Alcotest.check time "delta_plus 4" (Time.of_int 100) (Stream.delta_plus s 4);
  Alcotest.check count "eta_plus 11" (Count.of_int 3) (Stream.eta_plus s 11);
  Alcotest.(check bool) "well formed" true
    (Stream.well_formed s ~horizon:40 = Ok ())

let test_builder_validation () =
  let raises f = match f () with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "periodic 0" true
    (raises (fun () -> Stream.periodic ~name:"x" ~period:0));
  Alcotest.(check bool) "sporadic 0" true
    (raises (fun () -> Stream.sporadic ~name:"x" ~d_min:0));
  Alcotest.(check bool) "jitter neg" true
    (raises (fun () ->
       Stream.periodic_jitter ~name:"x" ~period:5 ~jitter:(-1) ()));
  Alcotest.(check bool) "burst too large" true
    (raises (fun () ->
       Stream.periodic_burst ~name:"x" ~period:10 ~burst:3 ~d_min:5))

(* ------------------------------------------------------------------ *)
(* eta functions *)

let test_eta_plus_vs_brute () =
  let streams =
    [
      Stream.periodic ~name:"a" ~period:17;
      Stream.periodic_jitter ~name:"b" ~period:50 ~jitter:120 ();
      Stream.sporadic ~name:"c" ~d_min:7;
      Stream.periodic_burst ~name:"d" ~period:60 ~burst:4 ~d_min:3;
    ]
  in
  List.iter
    (fun s ->
      List.iter
        (fun dt ->
          Alcotest.check count
            (Printf.sprintf "%s dt=%d" (Stream.name s) dt)
            (brute_eta_plus s dt) (Stream.eta_plus s dt))
        [ 0; 1; 2; 16; 17; 18; 50; 100; 119; 120; 121; 500 ])
    streams

let test_eta_minus_vs_brute () =
  let streams =
    [
      Stream.periodic ~name:"a" ~period:17;
      Stream.periodic_jitter ~name:"b" ~period:50 ~jitter:20 ();
      Stream.sporadic ~name:"c" ~d_min:7;
    ]
  in
  List.iter
    (fun s ->
      List.iter
        (fun dt ->
          Alcotest.check count
            (Printf.sprintf "%s dt=%d" (Stream.name s) dt)
            (brute_eta_minus s dt) (Stream.eta_minus s dt))
        [ 0; 1; 17; 34; 50; 70; 71; 500 ])
    streams

let test_low_index_clamp () =
  let s =
    Stream.make ~name:"weird"
      ~delta_min:(fun n -> Time.of_int (n * 100))
      ~delta_plus:(fun n -> Time.of_int (n * 100))
  in
  Alcotest.check time "n=0" Time.zero (Stream.delta_min s 0);
  Alcotest.check time "n=1" Time.zero (Stream.delta_min s 1);
  Alcotest.check time "n=1 plus" Time.zero (Stream.delta_plus s 1)

let test_well_formed_detects () =
  let bad =
    Stream.make ~name:"bad"
      ~delta_min:(fun n -> Time.of_int (100 * n))
      ~delta_plus:(fun n -> Time.of_int (10 * n))
  in
  Alcotest.(check bool) "delta_plus < delta_min" true
    (match Stream.well_formed bad with Error _ -> true | Ok () -> false);
  let shrinking =
    Stream.make ~name:"shrink"
      ~delta_min:(fun n -> Time.of_int (Stdlib.max 0 (100 - n)))
      ~delta_plus:(fun _ -> Time.Inf)
  in
  Alcotest.(check bool) "non-monotone" true
    (match Stream.well_formed shrinking with Error _ -> true | Ok () -> false)

let test_sample_eta_plus () =
  let s = Stream.periodic ~name:"p" ~period:10 in
  Alcotest.(check (list (pair int int)))
    "series"
    [ 5, 1; 15, 2; 25, 3 ]
    (Stream.sample_eta_plus s ~dts:[ 5; 15; 25 ]
    |> List.map (fun (dt, c) -> dt, Count.to_int c))

let test_with_name () =
  let s = Stream.periodic ~name:"p" ~period:10 in
  Alcotest.(check string) "renamed" "q" (Stream.name (Stream.with_name "q" s))

(* ------------------------------------------------------------------ *)
(* properties *)

let arb_sem_params =
  QCheck.triple (QCheck.int_range 1 500) (QCheck.int_range 0 1000)
    (QCheck.int_range 0 20)

(* the shrinker may step outside the generator ranges; clamp defensively
   (and keep d_min <= period, the model invariant) *)
let stream_of (p, j, d) =
  let period = Stdlib.max 1 p in
  Stream.periodic_jitter ~name:"prop" ~period ~jitter:(Stdlib.max 0 j)
    ~d_min:(Stdlib.min period (Stdlib.max 0 d)) ()

let prop_eta_plus_monotone =
  QCheck.Test.make ~name:"eta_plus monotone in window size" ~count:100
    (QCheck.pair arb_sem_params (QCheck.int_range 0 800))
    (fun (params, dt) ->
      let s = stream_of params in
      Count.compare (Stream.eta_plus s dt) (Stream.eta_plus s (dt + 1)) <= 0)

let prop_eta_delta_galois =
  (* pseudo-inverse consistency: delta_min (eta_plus dt) < dt and
     delta_min (eta_plus dt + 1) >= dt for dt > 0 *)
  QCheck.Test.make ~name:"eta_plus/delta_min pseudo-inverse" ~count:100
    (QCheck.pair arb_sem_params (QCheck.int_range 1 800))
    (fun (params, dt) ->
      let s = stream_of params in
      match Stream.eta_plus s dt with
      | Count.Inf -> false
      | Count.Fin n ->
        Time.(Stream.delta_min s n < Time.of_int dt)
        && Time.(Stream.delta_min s (n + 1) >= Time.of_int dt))

let prop_eta_minus_le_eta_plus =
  QCheck.Test.make ~name:"eta_minus <= eta_plus" ~count:100
    (QCheck.pair arb_sem_params (QCheck.int_range 0 800))
    (fun (params, dt) ->
      let s = stream_of params in
      Count.compare (Stream.eta_minus s dt) (Stream.eta_plus s dt) <= 0)

let prop_delta_min_superadditive_periodic =
  (* strictly periodic streams have additive distance curves *)
  QCheck.Test.make ~name:"periodic distances additive" ~count:100
    (QCheck.triple (QCheck.int_range 1 300) (QCheck.int_range 2 20)
       (QCheck.int_range 2 20)) (fun (p, a, b) ->
      let s = Stream.periodic ~name:"p" ~period:p in
      Time.equal
        (Stream.delta_min s (a + b - 1))
        (Time.add (Stream.delta_min s a) (Stream.delta_min s b)))

let () =
  Alcotest.run "stream"
    [
      ( "builders",
        [
          Alcotest.test_case "periodic" `Quick test_periodic;
          Alcotest.test_case "sporadic" `Quick test_sporadic;
          Alcotest.test_case "periodic_jitter" `Quick test_periodic_jitter;
          Alcotest.test_case "periodic_burst" `Quick test_periodic_burst;
          Alcotest.test_case "validation" `Quick test_builder_validation;
        ] );
      ( "eta",
        [
          Alcotest.test_case "eta_plus vs brute force" `Quick
            test_eta_plus_vs_brute;
          Alcotest.test_case "eta_minus vs brute force" `Quick
            test_eta_minus_vs_brute;
          Alcotest.test_case "low index clamp" `Quick test_low_index_clamp;
          Alcotest.test_case "well_formed" `Quick test_well_formed_detects;
          Alcotest.test_case "sample series" `Quick test_sample_eta_plus;
          Alcotest.test_case "with_name" `Quick test_with_name;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_eta_plus_monotone;
            prop_eta_delta_galois;
            prop_eta_minus_le_eta_plus;
            prop_delta_min_superadditive_periodic;
          ] );
    ]
