(* Tests for standard event models: closed forms vs the generic searches,
   and the conservative SEM fitting used by the flat baseline. *)

module Time = Timebase.Time
module Count = Timebase.Count
module Stream = Event_model.Stream
module Sem = Event_model.Sem

let time = Alcotest.testable Time.pp Time.equal

let count = Alcotest.testable Count.pp Count.equal

let test_make_validation () =
  let raises f = match f () with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "period 0" true
    (raises (fun () -> Sem.make ~period:0 ()));
  Alcotest.(check bool) "jitter neg" true
    (raises (fun () -> Sem.make ~period:10 ~jitter:(-1) ()));
  Alcotest.(check bool) "d_min neg" true
    (raises (fun () -> Sem.make ~period:10 ~d_min:(-1) ()));
  Alcotest.(check bool) "d_min 0 allowed" false
    (raises (fun () -> Sem.make ~period:10 ~d_min:0 ()))

let test_periodic_shortcut () =
  Alcotest.(check bool) "equal" true
    (Sem.equal (Sem.periodic 50) (Sem.make ~period:50 ()))

let test_delta_closed_forms () =
  let sem = Sem.make ~period:100 ~jitter:30 ~d_min:5 () in
  Alcotest.check time "delta_min 1" Time.zero (Sem.delta_min sem 1);
  Alcotest.check time "delta_min 2" (Time.of_int 70) (Sem.delta_min sem 2);
  (* d_min binds when jitter removes the periodic part *)
  let bursty = Sem.make ~period:100 ~jitter:500 ~d_min:5 () in
  Alcotest.check time "d_min binds" (Time.of_int 10) (Sem.delta_min bursty 3);
  Alcotest.check time "delta_plus" (Time.of_int 230) (Sem.delta_plus sem 3)

let test_eta_closed_vs_stream () =
  (* the closed forms must agree with the generic pseudo-inversion *)
  let cases =
    [
      Sem.make ~period:100 ~jitter:0 ~d_min:1 ();
      Sem.make ~period:100 ~jitter:30 ~d_min:1 ();
      Sem.make ~period:50 ~jitter:500 ~d_min:3 ();
      Sem.make ~period:1 ~jitter:0 ~d_min:0 ();
      Sem.make ~period:250 ~jitter:10 ~d_min:250 ();
    ]
  in
  List.iter
    (fun sem ->
      let s = Sem.to_stream sem in
      List.iter
        (fun dt ->
          Alcotest.check count
            (Format.asprintf "eta+ %a dt=%d" Sem.pp sem dt)
            (Stream.eta_plus s dt) (Sem.eta_plus sem dt);
          Alcotest.check count
            (Format.asprintf "eta- %a dt=%d" Sem.pp sem dt)
            (Stream.eta_minus s dt) (Sem.eta_minus sem dt))
        [ 0; 1; 2; 49; 50; 51; 99; 100; 101; 499; 500; 501; 1000 ])
    cases

let test_to_stream_name () =
  Alcotest.(check string) "default name" "sem(P=10,J=2,d=1)"
    (Stream.name (Sem.to_stream (Sem.make ~period:10 ~jitter:2 ())));
  Alcotest.(check string) "custom name" "x"
    (Stream.name (Sem.to_stream ~name:"x" (Sem.periodic 10)))

let test_fit_roundtrip () =
  (* Fitting a stream that already is a SEM recovers its parameters, when
     all three regimes (d_min burst limit, periodic tail, jitter offset)
     are visible in the curve. *)
  let sem = Sem.make ~period:100 ~jitter:500 ~d_min:5 () in
  let fitted = Sem.fit (Sem.to_stream sem) in
  Alcotest.(check bool)
    (Format.asprintf "got %a" Sem.pp fitted)
    true
    (Sem.equal sem fitted)

let test_fit_dominates () =
  (* fitted delta_min must lower-bound the stream's delta_min, so the SEM
     arrival curve upper-bounds the stream's *)
  let streams =
    [
      Stream.periodic_burst ~name:"b" ~period:200 ~burst:3 ~d_min:10;
      Event_model.Combine.or_combine
        [
          Stream.periodic ~name:"p1" ~period:250;
          Stream.periodic ~name:"p2" ~period:450;
        ];
    ]
  in
  List.iter
    (fun s ->
      let fitted = Sem.fit ~horizon:128 s in
      for n = 2 to 128 do
        Alcotest.(check bool)
          (Printf.sprintf "%s n=%d" (Stream.name s) n)
          true
          Time.(Sem.delta_min fitted n <= Stream.delta_min s n)
      done)
    streams

let test_fit_rejects_finite_streams () =
  let finite =
    Stream.make ~name:"finite"
      ~delta_min:(fun n -> if n > 3 then Time.Inf else Time.of_int (n * 10))
      ~delta_plus:(fun _ -> Time.Inf)
  in
  Alcotest.(check bool) "raises" true
    (match Sem.fit finite with
     | _ -> false
     | exception Invalid_argument _ -> true)

(* properties *)

(* the shrinker may step outside the generator ranges; clamp defensively
   (and keep d_min <= period, the model invariant) *)
let arb_sem =
  QCheck.map
    (fun (p, j, d) ->
      let period = Stdlib.max 1 p in
      Sem.make ~period ~jitter:(Stdlib.max 0 j)
        ~d_min:(Stdlib.min period (Stdlib.max 0 d)) ())
    (QCheck.triple (QCheck.int_range 1 300) (QCheck.int_range 0 600)
       (QCheck.int_range 0 10))

let prop_closed_eta_plus_matches =
  QCheck.Test.make ~name:"closed-form eta_plus = search" ~count:150
    (QCheck.pair arb_sem (QCheck.int_range 0 1500)) (fun (sem, dt) ->
      Count.equal (Sem.eta_plus sem dt) (Stream.eta_plus (Sem.to_stream sem) dt))

let prop_closed_eta_minus_matches =
  QCheck.Test.make ~name:"closed-form eta_minus = search" ~count:150
    (QCheck.pair arb_sem (QCheck.int_range 0 1500)) (fun (sem, dt) ->
      Count.equal (Sem.eta_minus sem dt)
        (Stream.eta_minus (Sem.to_stream sem) dt))

let prop_fit_conservative =
  QCheck.Test.make ~name:"fit lower-bounds delta_min" ~count:60
    (QCheck.pair arb_sem (QCheck.int_range 2 64)) (fun (sem, n) ->
      let s = Sem.to_stream sem in
      let fitted = Sem.fit ~horizon:64 s in
      Time.(Sem.delta_min fitted n <= Stream.delta_min s n))

let () =
  Alcotest.run "sem"
    [
      ( "closed forms",
        [
          Alcotest.test_case "validation" `Quick test_make_validation;
          Alcotest.test_case "periodic shortcut" `Quick test_periodic_shortcut;
          Alcotest.test_case "delta" `Quick test_delta_closed_forms;
          Alcotest.test_case "eta vs stream" `Quick test_eta_closed_vs_stream;
          Alcotest.test_case "to_stream names" `Quick test_to_stream_name;
        ] );
      ( "fit",
        [
          Alcotest.test_case "roundtrip" `Quick test_fit_roundtrip;
          Alcotest.test_case "dominates" `Quick test_fit_dominates;
          Alcotest.test_case "rejects finite" `Quick
            test_fit_rejects_finite_streams;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_closed_eta_plus_matches;
            prop_closed_eta_minus_matches;
            prop_fit_conservative;
          ] );
    ]
