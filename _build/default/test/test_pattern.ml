(* Tests for the eventually-periodic exact curve representation. *)

module Time = Timebase.Time
module Stream = Event_model.Stream
module Sem = Event_model.Sem
module Pattern = Event_model.Pattern

let test_eval () =
  (* prefix [0; 10] (delta 2 = 0, delta 3 = 10), then +100 per 2 events *)
  let p =
    Pattern.create ~prefix:[ 0; 10 ] ~repeat_events:2 ~repeat_increment:100
  in
  Alcotest.(check int) "n=0" 0 (Pattern.eval p 0);
  Alcotest.(check int) "n=1" 0 (Pattern.eval p 1);
  Alcotest.(check int) "n=2" 0 (Pattern.eval p 2);
  Alcotest.(check int) "n=3" 10 (Pattern.eval p 3);
  Alcotest.(check int) "n=4" 100 (Pattern.eval p 4);
  Alcotest.(check int) "n=5" 110 (Pattern.eval p 5);
  Alcotest.(check int) "n=6" 200 (Pattern.eval p 6);
  Alcotest.(check int) "n=20" 900 (Pattern.eval p 20)

let test_validation () =
  let raises f = match f () with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "short prefix" true
    (raises (fun () ->
       Pattern.create ~prefix:[ 5 ] ~repeat_events:2 ~repeat_increment:10));
  Alcotest.(check bool) "non-monotone" true
    (raises (fun () ->
       Pattern.create ~prefix:[ 10; 5 ] ~repeat_events:1 ~repeat_increment:10));
  Alcotest.(check bool) "negative" true
    (raises (fun () ->
       Pattern.create ~prefix:[ -1 ] ~repeat_events:1 ~repeat_increment:10));
  Alcotest.(check bool) "recurrence breaks monotonicity" true
    (raises (fun () ->
       (* delta 3 = 50 but recurrence gives delta 4 = 0 + 10 = 10 < 50 *)
       Pattern.create ~prefix:[ 0; 50 ] ~repeat_events:2 ~repeat_increment:10))

let test_of_sem () =
  let sem = Sem.make ~period:100 ~jitter:500 ~d_min:5 () in
  let p = Pattern.of_sem_delta_min sem in
  let reference = Sem.to_stream sem in
  for n = 0 to 64 do
    Alcotest.(check string)
      (Printf.sprintf "n=%d" n)
      (Time.to_string (Stream.delta_min reference n))
      (Time.to_string (Pattern.to_stream_function p n))
  done;
  (* a strictly periodic SEM degenerates to a single-entry prefix *)
  let strict = Pattern.of_sem_delta_min (Sem.make ~period:42 ~d_min:42 ()) in
  Alcotest.(check int) "strict prefix" 1 (Pattern.prefix_length strict);
  Alcotest.(check int) "strict eval" (42 * 9) (Pattern.eval strict 10)

let test_equal_different_representations () =
  (* the same line represented with different prefix lengths and repeat
     multiples *)
  let a = Pattern.create ~prefix:[ 10 ] ~repeat_events:1 ~repeat_increment:10 in
  let b =
    Pattern.create ~prefix:[ 10; 20; 30 ] ~repeat_events:2 ~repeat_increment:20
  in
  Alcotest.(check bool) "equal" true (Pattern.equal a b);
  let c = Pattern.create ~prefix:[ 10 ] ~repeat_events:1 ~repeat_increment:11 in
  Alcotest.(check bool) "different rate" false (Pattern.equal a c);
  let d = Pattern.create ~prefix:[ 9 ] ~repeat_events:1 ~repeat_increment:10 in
  Alcotest.(check bool) "different prefix" false (Pattern.equal a d)

let test_detect_sem () =
  let sem = Sem.make ~period:100 ~jitter:500 ~d_min:5 () in
  let stream = Sem.to_stream sem in
  let f n = Time.to_int (Stream.delta_min stream n) in
  match Pattern.detect f with
  | None -> Alcotest.fail "expected detection"
  | Some p ->
    Alcotest.(check bool) "matches exact construction" true
      (Pattern.equal p (Pattern.of_sem_delta_min sem));
    for n = 2 to 100 do
      Alcotest.(check int) (Printf.sprintf "n=%d" n) (f n) (Pattern.eval p n)
    done

let test_detect_or_combination () =
  (* the OR of the paper's sources repeats at the hyperperiod structure *)
  let combined =
    Event_model.Combine.or_combine
      [
        Stream.periodic ~name:"S1" ~period:250;
        Stream.periodic ~name:"S2" ~period:450;
      ]
  in
  let f n = Time.to_int (Stream.delta_min combined n) in
  match Pattern.detect ~max_repeat:64 ~max_prefix:128 f with
  | None -> Alcotest.fail "expected detection"
  | Some p ->
    (* hyperperiod 2250 carries 9 + 5 = 14 events *)
    Alcotest.(check int) "events per repeat" 14 (Pattern.repeat_events p);
    Alcotest.(check int) "increment" 2250 (Pattern.repeat_increment p);
    for n = 2 to 200 do
      Alcotest.(check int) (Printf.sprintf "n=%d" n) (f n) (Pattern.eval p n)
    done

let test_detect_rejects_aperiodic () =
  (* quadratic growth is not eventually periodic *)
  let f n = (n - 1) * (n - 1) in
  Alcotest.(check bool) "no pattern" true
    (Pattern.detect ~max_prefix:32 ~max_repeat:8 ~check:16 f = None)

let prop_detect_roundtrip =
  QCheck.Test.make ~name:"detect recovers SEM curves" ~count:50
    (QCheck.triple (QCheck.int_range 2 100) (QCheck.int_range 0 400)
       (QCheck.int_range 0 10))
    (fun (period, jitter, d_min) ->
      let period = Stdlib.max 2 period in
      let jitter = Stdlib.max 0 jitter in
      let d_min = Stdlib.min (period - 1) (Stdlib.max 0 d_min) in
      let sem = Sem.make ~period ~jitter ~d_min () in
      let stream = Sem.to_stream sem in
      let f n = Time.to_int (Stream.delta_min stream n) in
      (* the detection is evidence-bounded: a recurrence is only
         guaranteed on the verified window, so probe within it *)
      match Pattern.detect ~max_prefix:512 ~check:600 f with
      | None -> false
      | Some p ->
        List.for_all (fun n -> Pattern.eval p n = f n) [ 2; 5; 17; 100; 400 ])

let () =
  Alcotest.run "pattern"
    [
      ( "representation",
        [
          Alcotest.test_case "eval" `Quick test_eval;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "of SEM" `Quick test_of_sem;
          Alcotest.test_case "semantic equality" `Quick
            test_equal_different_representations;
        ] );
      ( "detection",
        [
          Alcotest.test_case "SEM curve" `Quick test_detect_sem;
          Alcotest.test_case "OR combination" `Quick test_detect_or_combination;
          Alcotest.test_case "rejects aperiodic" `Quick
            test_detect_rejects_aperiodic;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_detect_roundtrip ] );
    ]
