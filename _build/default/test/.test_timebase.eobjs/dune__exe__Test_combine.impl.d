test/test_combine.ml: Alcotest Event_model Fun List Printf QCheck QCheck_alcotest Stdlib Timebase
