test/test_comstack.mli:
