test/test_shaper.ml: Alcotest Event_model List Printf QCheck QCheck_alcotest Stdlib Timebase
