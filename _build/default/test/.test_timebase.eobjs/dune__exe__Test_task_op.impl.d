test/test_task_op.ml: Alcotest Event_model List Printf QCheck QCheck_alcotest Stdlib Timebase
