test/test_scheduling.mli:
