test/test_shaper.mli:
