test/test_sem.ml: Alcotest Event_model Format List Printf QCheck QCheck_alcotest Stdlib Timebase
