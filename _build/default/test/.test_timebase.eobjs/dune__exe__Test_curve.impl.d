test/test_curve.ml: Alcotest Array Event_model Gen List Printf QCheck QCheck_alcotest Timebase
