test/test_spec_file.mli:
