test/test_system.ml: Alcotest Comstack Cpa_system Des Event_model Float Hem List Option Printf QCheck QCheck_alcotest Scenarios Stdlib String Timebase
