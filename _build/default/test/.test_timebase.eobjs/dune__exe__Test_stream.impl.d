test/test_stream.ml: Alcotest Event_model List Printf QCheck QCheck_alcotest Stdlib Timebase
