test/test_curve.mli:
