test/test_pattern.ml: Alcotest Event_model List Printf QCheck QCheck_alcotest Stdlib Timebase
