test/test_comstack.ml: Alcotest Comstack Event_model Format Hem Printf Scheduling Timebase
