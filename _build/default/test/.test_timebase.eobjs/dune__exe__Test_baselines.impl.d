test/test_baselines.ml: Alcotest Baselines Cpa_system Event_model List Printf QCheck QCheck_alcotest Stdlib Timebase
