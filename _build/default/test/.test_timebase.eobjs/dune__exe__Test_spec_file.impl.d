test/test_spec_file.ml: Alcotest Cpa_system List Option Scenarios Sys Timebase
