test/test_rtc.ml: Alcotest Event_model List Printf QCheck QCheck_alcotest Rtc Scheduling Stdlib Timebase
