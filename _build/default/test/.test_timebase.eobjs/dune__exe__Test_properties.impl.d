test/test_properties.ml: Alcotest Array Event_model Hem List Printf QCheck QCheck_alcotest Random Stdlib Timebase
