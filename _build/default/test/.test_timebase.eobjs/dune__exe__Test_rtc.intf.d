test/test_rtc.mli:
