test/test_scheduling.ml: Alcotest Event_model List QCheck QCheck_alcotest Scheduling Stdlib Timebase
