test/test_hem.mli:
