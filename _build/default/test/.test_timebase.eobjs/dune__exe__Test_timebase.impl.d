test/test_timebase.ml: Alcotest List QCheck QCheck_alcotest Timebase
