test/test_task_op.mli:
