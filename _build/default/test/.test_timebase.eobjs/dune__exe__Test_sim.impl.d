test/test_sim.ml: Alcotest Cpa_system Des Event_model Format List Printf Random Scenarios Stdlib String Timebase
