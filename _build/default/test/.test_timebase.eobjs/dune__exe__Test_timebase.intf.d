test/test_timebase.mli:
