test/test_hem.ml: Alcotest Event_model Hem List Printf QCheck QCheck_alcotest Stdlib Timebase
