test/test_sim_vs_analysis.mli:
