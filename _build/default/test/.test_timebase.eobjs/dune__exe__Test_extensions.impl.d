test/test_extensions.ml: Alcotest Cpa_system Des Event_model List Option Printf Scenarios Scheduling Timebase
