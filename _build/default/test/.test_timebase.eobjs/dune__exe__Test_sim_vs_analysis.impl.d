test/test_sim_vs_analysis.ml: Alcotest Comstack Cpa_system Des Event_model Hem List Printf Random Scenarios Timebase
