(* Unit and property tests for the timebase library: extended time,
   extended counts, and closed integer intervals. *)

module Time = Timebase.Time
module Count = Timebase.Count
module Interval = Timebase.Interval

let time_testable = Alcotest.testable Time.pp Time.equal

let count_testable = Alcotest.testable Count.pp Count.equal

let interval_testable = Alcotest.testable Interval.pp Interval.equal

let check_time = Alcotest.check time_testable

let check_count = Alcotest.check count_testable

(* ------------------------------------------------------------------ *)
(* Time *)

let test_time_constants () =
  check_time "zero" (Time.of_int 0) Time.zero;
  check_time "one" (Time.of_int 1) Time.one

let test_time_add () =
  check_time "fin+fin" (Time.of_int 7) (Time.add (Time.of_int 3) (Time.of_int 4));
  check_time "fin+inf" Time.Inf (Time.add (Time.of_int 3) Time.Inf);
  check_time "inf+fin" Time.Inf (Time.add Time.Inf (Time.of_int 3));
  check_time "inf+inf" Time.Inf (Time.add Time.Inf Time.Inf)

let test_time_sub () =
  check_time "fin-fin" (Time.of_int (-1)) (Time.sub (Time.of_int 3) (Time.of_int 4));
  check_time "inf-fin" Time.Inf (Time.sub Time.Inf (Time.of_int 4));
  Alcotest.check_raises "sub inf" (Invalid_argument "Time.sub: subtrahend is infinite")
    (fun () -> ignore (Time.sub (Time.of_int 3) Time.Inf))

let test_time_sub_clamped () =
  check_time "positive" (Time.of_int 2) (Time.sub_clamped (Time.of_int 5) (Time.of_int 3));
  check_time "clamped" Time.zero (Time.sub_clamped (Time.of_int 3) (Time.of_int 5));
  check_time "minus inf" Time.zero (Time.sub_clamped (Time.of_int 3) Time.Inf);
  check_time "inf minus fin" Time.Inf (Time.sub_clamped Time.Inf (Time.of_int 5))

let test_time_scale () =
  check_time "3*4" (Time.of_int 12) (Time.scale 3 (Time.of_int 4));
  check_time "0*inf" Time.zero (Time.scale 0 Time.Inf);
  check_time "2*inf" Time.Inf (Time.scale 2 Time.Inf);
  Alcotest.check_raises "negative" (Invalid_argument "Time.scale: negative factor")
    (fun () -> ignore (Time.scale (-1) Time.zero))

let test_time_order () =
  Alcotest.(check bool) "lt" true Time.(of_int 3 < of_int 4);
  Alcotest.(check bool) "fin<inf" true Time.(of_int 1000 < Inf);
  Alcotest.(check bool) "inf<=inf" true Time.(Inf <= Inf);
  Alcotest.(check bool) "inf>fin" true Time.(Inf > of_int 5);
  check_time "min" (Time.of_int 3) (Time.min (Time.of_int 3) Time.Inf);
  check_time "max" Time.Inf (Time.max (Time.of_int 3) Time.Inf)

let test_time_conversions () =
  Alcotest.(check int) "to_int" 5 (Time.to_int (Time.of_int 5));
  Alcotest.(check (option int)) "to_int_opt fin" (Some 5)
    (Time.to_int_opt (Time.of_int 5));
  Alcotest.(check (option int)) "to_int_opt inf" None (Time.to_int_opt Time.Inf);
  Alcotest.(check bool) "is_finite" true (Time.is_finite Time.zero);
  Alcotest.(check bool) "inf not finite" false (Time.is_finite Time.Inf);
  Alcotest.(check string) "to_string fin" "42" (Time.to_string (Time.of_int 42));
  Alcotest.(check string) "to_string inf" "inf" (Time.to_string Time.Inf);
  Alcotest.check_raises "to_int inf" (Invalid_argument "Time.to_int: infinite")
    (fun () -> ignore (Time.to_int Time.Inf))

(* ------------------------------------------------------------------ *)
(* Count *)

let test_count_basics () =
  check_count "zero" (Count.of_int 0) Count.zero;
  check_count "add" (Count.of_int 5) (Count.add (Count.of_int 2) (Count.of_int 3));
  check_count "add inf" Count.Inf (Count.add (Count.of_int 2) Count.Inf);
  Alcotest.(check int) "to_int" 9 (Count.to_int (Count.of_int 9));
  Alcotest.(check (option int)) "to_int_opt" None (Count.to_int_opt Count.Inf);
  Alcotest.(check bool) "is_finite" false (Count.is_finite Count.Inf);
  Alcotest.(check string) "to_string" "inf" (Count.to_string Count.Inf);
  Alcotest.check_raises "negative" (Invalid_argument "Count.of_int: negative count")
    (fun () -> ignore (Count.of_int (-1)))

let test_count_order () =
  check_count "min" (Count.of_int 2) (Count.min (Count.of_int 2) Count.Inf);
  check_count "max" Count.Inf (Count.max (Count.of_int 2) Count.Inf);
  Alcotest.(check int) "compare" (-1) (Count.compare (Count.of_int 2) Count.Inf)

(* ------------------------------------------------------------------ *)
(* Interval *)

let test_interval_make () =
  let i = Interval.make ~lo:2 ~hi:5 in
  Alcotest.(check int) "lo" 2 (Interval.lo i);
  Alcotest.(check int) "hi" 5 (Interval.hi i);
  Alcotest.(check int) "width" 3 (Interval.width i);
  Alcotest.check_raises "lo>hi" (Invalid_argument "Interval.make: lo > hi")
    (fun () -> ignore (Interval.make ~lo:5 ~hi:2));
  Alcotest.check_raises "negative"
    (Invalid_argument "Interval.make: negative lower bound") (fun () ->
      ignore (Interval.make ~lo:(-1) ~hi:2))

let test_interval_point () =
  let p = Interval.point 7 in
  Alcotest.check interval_testable "point" (Interval.make ~lo:7 ~hi:7) p;
  Alcotest.(check int) "width" 0 (Interval.width p)

let test_interval_ops () =
  let a = Interval.make ~lo:1 ~hi:3
  and b = Interval.make ~lo:2 ~hi:10 in
  Alcotest.check interval_testable "add" (Interval.make ~lo:3 ~hi:13)
    (Interval.add a b);
  Alcotest.(check bool) "contains" true (Interval.contains b 5);
  Alcotest.(check bool) "not contains" false (Interval.contains a 5);
  Alcotest.(check string) "to_string" "[1:3]" (Interval.to_string a)

(* ------------------------------------------------------------------ *)
(* Properties *)

let arb_time =
  QCheck.map
    (fun (finite, v) -> if finite then Time.of_int v else Time.Inf)
    QCheck.(pair bool (int_range (-1000) 1000))

let prop_add_commutative =
  QCheck.Test.make ~name:"Time.add commutative" ~count:200
    (QCheck.pair arb_time arb_time) (fun (a, b) ->
      Time.equal (Time.add a b) (Time.add b a))

let prop_add_associative =
  QCheck.Test.make ~name:"Time.add associative" ~count:200
    (QCheck.triple arb_time arb_time arb_time) (fun (a, b, c) ->
      Time.equal (Time.add (Time.add a b) c) (Time.add a (Time.add b c)))

let prop_max_min_lattice =
  QCheck.Test.make ~name:"Time.min/max absorb" ~count:200
    (QCheck.pair arb_time arb_time) (fun (a, b) ->
      Time.equal (Time.max a (Time.min a b)) a
      && Time.equal (Time.min a (Time.max a b)) a)

let prop_compare_total =
  QCheck.Test.make ~name:"Time.compare antisymmetric" ~count:200
    (QCheck.pair arb_time arb_time) (fun (a, b) ->
      Time.compare a b = -Time.compare b a)

let prop_sub_clamped_nonneg =
  QCheck.Test.make ~name:"Time.sub_clamped lower-bounded by zero" ~count:200
    (QCheck.pair arb_time arb_time) (fun (a, b) ->
      Time.(sub_clamped a b >= Time.zero))

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest
      [
        prop_add_commutative;
        prop_add_associative;
        prop_max_min_lattice;
        prop_compare_total;
        prop_sub_clamped_nonneg;
      ]
  in
  Alcotest.run "timebase"
    [
      ( "time",
        [
          Alcotest.test_case "constants" `Quick test_time_constants;
          Alcotest.test_case "add" `Quick test_time_add;
          Alcotest.test_case "sub" `Quick test_time_sub;
          Alcotest.test_case "sub_clamped" `Quick test_time_sub_clamped;
          Alcotest.test_case "scale" `Quick test_time_scale;
          Alcotest.test_case "order" `Quick test_time_order;
          Alcotest.test_case "conversions" `Quick test_time_conversions;
        ] );
      ( "count",
        [
          Alcotest.test_case "basics" `Quick test_count_basics;
          Alcotest.test_case "order" `Quick test_count_order;
        ] );
      ( "interval",
        [
          Alcotest.test_case "make" `Quick test_interval_make;
          Alcotest.test_case "point" `Quick test_interval_point;
          Alcotest.test_case "ops" `Quick test_interval_ops;
        ] );
      "properties", qsuite;
    ]
