(* Tests for the memoized curve engine and its pseudo-inversion searches,
   which implement the eta functions of the paper (eqs. 1-2). *)

module Time = Timebase.Time
module Curve = Event_model.Curve

let linear slope = Curve.make (fun n -> Time.of_int (n * slope))

let test_eval_memoizes () =
  let calls = ref 0 in
  let c =
    Curve.make (fun n ->
      incr calls;
      Time.of_int n)
  in
  ignore (Curve.eval c 5);
  ignore (Curve.eval c 5);
  ignore (Curve.eval c 5);
  Alcotest.(check int) "computed once" 1 !calls

let test_make_rec () =
  (* delta(n) = delta(n-1) + n, a self-referential recurrence *)
  let c =
    Curve.make_rec (fun self n ->
      if n <= 0 then Time.zero else Time.add (self (n - 1)) (Time.of_int n))
  in
  Alcotest.(check int) "triangular" 15 (Time.to_int (Curve.eval c 5));
  Alcotest.(check int) "deep" (100 * 101 / 2) (Time.to_int (Curve.eval c 100))

let test_constant () =
  let c = Curve.constant (Time.of_int 9) in
  Alcotest.(check int) "any index" 9 (Time.to_int (Curve.eval c 12345))

(* brute-force reference for count_lt: largest n >= 1 with curve n < limit *)
let brute_count_lt c limit =
  let rec scan n best =
    if n > 4096 then best
    else if Time.(Curve.eval c n < limit) then scan (n + 1) n
    else best
  in
  scan 1 1

let test_count_lt_linear () =
  let c = linear 10 in
  (* curve n = 10n; count_lt limit = largest n with 10n < limit *)
  List.iter
    (fun limit ->
      Alcotest.(check int)
        (Printf.sprintf "limit %d" limit)
        (brute_count_lt c (Time.of_int limit))
        (Curve.count_lt c (Time.of_int limit)))
    [ 1; 5; 10; 11; 99; 100; 101; 1000; 12345 ]

let test_count_lt_requires_positive () =
  Alcotest.check_raises "limit 0" (Invalid_argument "Curve.count_lt: limit <= 0")
    (fun () -> ignore (Curve.count_lt (linear 1) Time.zero))

let test_count_lt_unbounded () =
  let bounded = Curve.constant (Time.of_int 3) in
  Alcotest.(check bool) "raises Unbounded" true
    (match Curve.count_lt bounded (Time.of_int 10) with
     | _ -> false
     | exception Curve.Unbounded _ -> true)

let test_first_gt () =
  let c = linear 10 in
  (* first n with curve (n + 2) > limit *)
  let brute limit =
    let rec scan n =
      if Time.(Curve.eval c (n + 2) > Time.of_int limit) then n else scan (n + 1)
    in
    scan 0
  in
  List.iter
    (fun limit ->
      Alcotest.(check int)
        (Printf.sprintf "limit %d" limit)
        (brute limit)
        (Curve.first_gt c ~offset:2 (Time.of_int limit)))
    [ 0; 1; 19; 20; 21; 200; 201; 999 ]

let test_first_gt_inf_curve () =
  let c = Curve.constant Time.Inf in
  Alcotest.(check int) "inf exceeds immediately" 0
    (Curve.first_gt c ~offset:2 (Time.of_int 1000))

(* property: count_lt matches brute force on random step curves *)
let arb_steps = QCheck.(list_of_size (Gen.int_range 1 30) (int_range 0 20))

let curve_of_steps steps =
  (* monotone curve built from cumulative non-negative steps *)
  let arr = Array.of_list steps in
  Curve.make (fun n ->
    let rec total i acc =
      if i >= n || i >= Array.length arr then acc + ((n - i) * 7)
      else total (i + 1) (acc + arr.(i))
    in
    (* extend past the explicit prefix with slope 7 so it diverges *)
    Time.of_int (total 0 0))

let prop_count_lt_vs_brute =
  QCheck.Test.make ~name:"count_lt matches brute force" ~count:200
    (QCheck.pair arb_steps (QCheck.int_range 1 500)) (fun (steps, limit) ->
      let c = curve_of_steps steps in
      Curve.count_lt c (Time.of_int limit) = brute_count_lt c (Time.of_int limit))

let prop_first_gt_vs_brute =
  QCheck.Test.make ~name:"first_gt matches brute force" ~count:200
    (QCheck.pair arb_steps (QCheck.int_range 0 500)) (fun (steps, limit) ->
      let c = curve_of_steps steps in
      let brute =
        let rec scan n =
          if Time.(Curve.eval c (n + 2) > Time.of_int limit) then n
          else scan (n + 1)
        in
        scan 0
      in
      Curve.first_gt c ~offset:2 (Time.of_int limit) = brute)

let () =
  Alcotest.run "curve"
    [
      ( "engine",
        [
          Alcotest.test_case "memoization" `Quick test_eval_memoizes;
          Alcotest.test_case "make_rec" `Quick test_make_rec;
          Alcotest.test_case "constant" `Quick test_constant;
        ] );
      ( "search",
        [
          Alcotest.test_case "count_lt linear" `Quick test_count_lt_linear;
          Alcotest.test_case "count_lt positive limit" `Quick
            test_count_lt_requires_positive;
          Alcotest.test_case "count_lt unbounded" `Quick test_count_lt_unbounded;
          Alcotest.test_case "first_gt" `Quick test_first_gt;
          Alcotest.test_case "first_gt inf" `Quick test_first_gt_inf_curve;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_count_lt_vs_brute; prop_first_gt_vs_brute ] );
    ]
