(** Wire protocol of the serving daemon.

    {b Framing.}  Each message is one frame:
    [<decimal byte length>\n<payload>\n], where the payload is a single
    JSON value ({!Explore.Wire.Json}).  The length counts payload bytes
    only (not the two newlines) and is bounded by [max_frame]; an
    oversized announcement or a malformed header is unrecoverable for
    the connection (the stream position is lost), so peers reply with a
    fault and drop the connection.

    {b Requests.}  An envelope
    [{"id":N,"op":"...","deadline-ms":..?,"budget":..?,...}] carrying
    one {!op}.  [id] is echoed verbatim in the reply; deadline/budget
    become the per-request {!Guard} token limits.

    {b Replies.}  [{"id":N,"status":S,"error":{..}?,"body":{..}?}].
    The status codes deliberately mirror the CLI exit-code contract of
    {!Guard.Error.exit_code}: [0] success, [1] fault (invalid spec,
    parse failure, unknown session, protocol violation), [3] degraded
    (deadline / budget / divergence — the body still carries the sound
    degraded result when one exists), [4] cancelled (including admission
    rejections and drain). *)

module Json = Explore.Wire.Json

(** {1 Status codes} *)

type status =
  | Success  (** 0 *)
  | Fault  (** 1 — fault-class {!Guard.Error.t}, protocol violations *)
  | Degraded  (** 3 — interrupt-class degradations and divergence *)
  | Cancelled  (** 4 — cancellation, admission rejection, drain *)

val status_code : status -> int
val status_of_code : int -> status option
val status_name : status -> string

val status_of_error : Guard.Error.t -> status
(** The protocol status a structured error maps onto — same partition
    as {!Guard.Error.exit_code}. *)

(** {1 Requests} *)

type op =
  | Load of { spec_text : string; mode : string option }
      (** upload a textual spec, open a session (mode defaults to the
          server's) *)
  | Edit of { session : string; edits : Explore.Space.edit list }
      (** apply an edit list to the warm session, get the delta back *)
  | Analyse of { session : string }
      (** full outcomes of the session's current system *)
  | Metrics of { session : string }
      (** per-session counters plus a process telemetry snapshot *)
  | Close of { session : string }
  | Ping
  | Shutdown  (** ask the daemon to drain and exit *)

type request = {
  req_id : int;
  deadline_ms : float option;
  budget : int option;
  op : op;
}

val request : ?deadline_ms:float -> ?budget:int -> id:int -> op -> request

val request_to_json : request -> Json.t
val request_of_json : Json.t -> (request, string) result

(** {1 Replies} *)

type reply = {
  rep_id : int;
  status : status;
  error : (Guard.Error.t * string) option;
      (** structured reason + human-readable message *)
  body : Json.t;  (** [Null] when there is none *)
}

val ok : id:int -> Json.t -> reply

val fail : ?body:Json.t -> ?message:string -> id:int -> Guard.Error.t -> reply
(** Status from {!status_of_error}; [message] defaults to
    [Guard.Error.to_string]. *)

val reply_to_json : reply -> Json.t
val reply_of_json : Json.t -> (reply, string) result

val error_to_json : message:string -> Guard.Error.t -> Json.t
val error_of_json : Json.t -> (Guard.Error.t * string, string) result

(** {1 Framing} *)

val default_max_frame : int
(** 1 MiB. *)

type frame_error =
  | Closed  (** peer closed the stream at a frame boundary *)
  | Oversized of int  (** announced length exceeded [max_frame] *)
  | Malformed of string
      (** header or trailer violation, or EOF mid-frame; the stream
          position is unrecoverable *)

val frame_error_to_string : frame_error -> string

type reader
(** Buffered frame reader over a file descriptor (one per connection —
    not thread-safe). *)

val reader : Unix.file_descr -> reader

val read_frame : ?max_frame:int -> reader -> (string, frame_error) result
(** Blocks until one full frame (or an error) is available. *)

val write_frame : Unix.file_descr -> string -> unit
(** Writes one frame; raises [Unix.Unix_error] on a broken pipe. *)
