module Json = Explore.Wire.Json
module Wire = Explore.Wire

(* ------------------------------------------------------------------ *)
(* Status codes *)

type status =
  | Success
  | Fault
  | Degraded
  | Cancelled

let status_code = function
  | Success -> 0
  | Fault -> 1
  | Degraded -> 3
  | Cancelled -> 4

let status_of_code = function
  | 0 -> Some Success
  | 1 -> Some Fault
  | 3 -> Some Degraded
  | 4 -> Some Cancelled
  | _ -> None

let status_name = function
  | Success -> "ok"
  | Fault -> "fault"
  | Degraded -> "degraded"
  | Cancelled -> "cancelled"

(* Same partition as Guard.Error.exit_code: the daemon's status codes
   and the CLI's exit codes are one taxonomy. *)
let status_of_error (e : Guard.Error.t) =
  match e with
  | Guard.Error.Cancelled -> Cancelled
  | Guard.Error.Deadline_exceeded _ | Guard.Error.Budget_exhausted _
  | Guard.Error.Diverged _ -> Degraded
  | Guard.Error.Cycle _ | Guard.Error.Invalid_spec _
  | Guard.Error.Parse_failure _ | Guard.Error.Injected _ -> Fault

(* ------------------------------------------------------------------ *)
(* Structured errors *)

let error_to_json ~message (e : Guard.Error.t) =
  let fields =
    match e with
    | Guard.Error.Cancelled -> [ "kind", Json.Str "cancelled" ]
    | Guard.Error.Deadline_exceeded { deadline_ms } ->
      [ "kind", Json.Str "deadline-exceeded";
        "deadline-ms", Json.Float deadline_ms ]
    | Guard.Error.Budget_exhausted { budget } ->
      [ "kind", Json.Str "budget-exhausted"; "budget", Json.Int budget ]
    | Guard.Error.Diverged { iterations } ->
      [ "kind", Json.Str "diverged"; "iterations", Json.Int iterations ]
    | Guard.Error.Cycle { element } ->
      [ "kind", Json.Str "cycle"; "element", Json.Str element ]
    | Guard.Error.Invalid_spec { reason } ->
      [ "kind", Json.Str "invalid-spec"; "reason", Json.Str reason ]
    | Guard.Error.Parse_failure { reason } ->
      [ "kind", Json.Str "parse-failure"; "reason", Json.Str reason ]
    | Guard.Error.Injected { site } ->
      [ "kind", Json.Str "injected"; "site", Json.Str site ]
  in
  Json.Obj (fields @ [ "message", Json.Str message ])

let error_of_json j =
  let str key = Option.bind (Json.member key j) Json.to_str in
  let int key = Option.bind (Json.member key j) Json.to_int in
  let flt key =
    match Json.member key j with
    | Some (Json.Float f) -> Some f
    | Some (Json.Int n) -> Some (float_of_int n)
    | _ -> None
  in
  let message = Option.value (str "message") ~default:"" in
  let req what = Error (Printf.sprintf "error: missing %S" what) in
  match str "kind" with
  | None -> Error "error: missing \"kind\""
  | Some "cancelled" -> Ok (Guard.Error.Cancelled, message)
  | Some "deadline-exceeded" -> begin
    match flt "deadline-ms" with
    | Some deadline_ms ->
      Ok (Guard.Error.Deadline_exceeded { deadline_ms }, message)
    | None -> req "deadline-ms"
  end
  | Some "budget-exhausted" -> begin
    match int "budget" with
    | Some budget -> Ok (Guard.Error.Budget_exhausted { budget }, message)
    | None -> req "budget"
  end
  | Some "diverged" -> begin
    match int "iterations" with
    | Some iterations -> Ok (Guard.Error.Diverged { iterations }, message)
    | None -> req "iterations"
  end
  | Some "cycle" -> begin
    match str "element" with
    | Some element -> Ok (Guard.Error.Cycle { element }, message)
    | None -> req "element"
  end
  | Some "invalid-spec" -> begin
    match str "reason" with
    | Some reason -> Ok (Guard.Error.Invalid_spec { reason }, message)
    | None -> req "reason"
  end
  | Some "parse-failure" -> begin
    match str "reason" with
    | Some reason -> Ok (Guard.Error.Parse_failure { reason }, message)
    | None -> req "reason"
  end
  | Some "injected" -> begin
    match str "site" with
    | Some site -> Ok (Guard.Error.Injected { site }, message)
    | None -> req "site"
  end
  | Some other -> Error (Printf.sprintf "error: unknown kind %S" other)

(* ------------------------------------------------------------------ *)
(* Requests *)

type op =
  | Load of { spec_text : string; mode : string option }
  | Edit of { session : string; edits : Explore.Space.edit list }
  | Analyse of { session : string }
  | Metrics of { session : string }
  | Close of { session : string }
  | Ping
  | Shutdown

type request = {
  req_id : int;
  deadline_ms : float option;
  budget : int option;
  op : op;
}

let request ?deadline_ms ?budget ~id op =
  { req_id = id; deadline_ms; budget; op }

let op_fields = function
  | Load { spec_text; mode } ->
    ("op", Json.Str "load")
    :: ("spec", Json.Str spec_text)
    :: (match mode with
        | Some m -> [ "mode", Json.Str m ]
        | None -> [])
  | Edit { session; edits } ->
    [ "op", Json.Str "edit"; "session", Json.Str session;
      "edits", Wire.edits_to_json edits ]
  | Analyse { session } ->
    [ "op", Json.Str "analyse"; "session", Json.Str session ]
  | Metrics { session } ->
    [ "op", Json.Str "metrics"; "session", Json.Str session ]
  | Close { session } ->
    [ "op", Json.Str "close"; "session", Json.Str session ]
  | Ping -> [ "op", Json.Str "ping" ]
  | Shutdown -> [ "op", Json.Str "shutdown" ]

let request_to_json r =
  let limits =
    (match r.deadline_ms with
     | Some d -> [ "deadline-ms", Json.Float d ]
     | None -> [])
    @ match r.budget with
      | Some b -> [ "budget", Json.Int b ]
      | None -> []
  in
  Json.Obj ((("id", Json.Int r.req_id) :: op_fields r.op) @ limits)

let request_of_json j =
  let str key = Option.bind (Json.member key j) Json.to_str in
  let session kind k =
    match str "session" with
    | Some s -> Ok (k s)
    | None -> Error (kind ^ ": missing \"session\"")
  in
  let op =
    match str "op" with
    | None -> Error "request: missing \"op\""
    | Some "load" -> begin
      match str "spec" with
      | Some spec_text -> Ok (Load { spec_text; mode = str "mode" })
      | None -> Error "load: missing \"spec\""
    end
    | Some "edit" -> begin
      match str "session" with
      | None -> Error "edit: missing \"session\""
      | Some session -> begin
        match Json.member "edits" j with
        | None -> Error "edit: missing \"edits\""
        | Some ej -> begin
          match Wire.edits_of_json ej with
          | Ok edits -> Ok (Edit { session; edits })
          | Error e -> Error e
        end
      end
    end
    | Some "analyse" -> session "analyse" (fun s -> Analyse { session = s })
    | Some "metrics" -> session "metrics" (fun s -> Metrics { session = s })
    | Some "close" -> session "close" (fun s -> Close { session = s })
    | Some "ping" -> Ok Ping
    | Some "shutdown" -> Ok Shutdown
    | Some other -> Error (Printf.sprintf "request: unknown op %S" other)
  in
  match op with
  | Error e -> Error e
  | Ok op ->
    let req_id =
      Option.value (Option.bind (Json.member "id" j) Json.to_int) ~default:0
    in
    let deadline_ms =
      match Json.member "deadline-ms" j with
      | Some (Json.Float f) -> Some f
      | Some (Json.Int n) -> Some (float_of_int n)
      | _ -> None
    in
    let budget = Option.bind (Json.member "budget" j) Json.to_int in
    Ok { req_id; deadline_ms; budget; op }

(* ------------------------------------------------------------------ *)
(* Replies *)

type reply = {
  rep_id : int;
  status : status;
  error : (Guard.Error.t * string) option;
  body : Json.t;
}

let ok ~id body = { rep_id = id; status = Success; error = None; body }

let fail ?(body = Json.Null) ?message ~id err =
  let message =
    match message with Some m -> m | None -> Guard.Error.to_string err
  in
  { rep_id = id; status = status_of_error err; error = Some (err, message);
    body }

let reply_to_json r =
  let fields =
    [ "id", Json.Int r.rep_id;
      "status", Json.Int (status_code r.status) ]
  in
  let fields =
    match r.error with
    | Some (err, message) ->
      fields @ [ "error", error_to_json ~message err ]
    | None -> fields
  in
  let fields =
    match r.body with Json.Null -> fields | b -> fields @ [ "body", b ]
  in
  Json.Obj fields

let reply_of_json j =
  match Option.bind (Json.member "status" j) Json.to_int with
  | None -> Error "reply: missing \"status\""
  | Some code -> begin
    match status_of_code code with
    | None -> Error (Printf.sprintf "reply: unknown status %d" code)
    | Some status -> begin
      let rep_id =
        Option.value
          (Option.bind (Json.member "id" j) Json.to_int)
          ~default:0
      in
      let body = Option.value (Json.member "body" j) ~default:Json.Null in
      match Json.member "error" j with
      | None -> Ok { rep_id; status; error = None; body }
      | Some ej -> begin
        match error_of_json ej with
        | Ok (err, message) ->
          Ok { rep_id; status; error = Some (err, message); body }
        | Error e -> Error e
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Framing *)

let default_max_frame = 1 lsl 20

type frame_error =
  | Closed
  | Oversized of int
  | Malformed of string

let frame_error_to_string = function
  | Closed -> "connection closed"
  | Oversized n -> Printf.sprintf "frame of %d bytes exceeds the limit" n
  | Malformed reason -> "malformed frame: " ^ reason

type reader = {
  fd : Unix.file_descr;
  buf : Bytes.t;
  mutable pos : int;
  mutable len : int;
}

let reader fd = { fd; buf = Bytes.create 65536; pos = 0; len = 0 }

(* -1 on EOF.  Unix_error escapes to the caller's handler. *)
let read_byte r =
  if r.pos >= r.len then begin
    r.pos <- 0;
    r.len <- Unix.read r.fd r.buf 0 (Bytes.length r.buf)
  end;
  if r.len <= 0 then -1
  else begin
    let b = Char.code (Bytes.get r.buf r.pos) in
    r.pos <- r.pos + 1;
    b
  end

let read_frame ?(max_frame = default_max_frame) r =
  (* header: decimal digits, at most 10, terminated by '\n' *)
  let rec header acc digits =
    if digits > 10 then Error (Malformed "oversized length header")
    else
      match read_byte r with
      | -1 -> if digits = 0 then Error Closed else Error (Malformed "eof in header")
      | 10 (* '\n' *) ->
        if digits = 0 then Error (Malformed "empty length header")
        else Ok acc
      | b when b >= Char.code '0' && b <= Char.code '9' ->
        header ((acc * 10) + (b - Char.code '0')) (digits + 1)
      | b ->
        Error
          (Malformed (Printf.sprintf "unexpected byte %d in length header" b))
  in
  match header 0 0 with
  | Error e -> Error e
  | Ok n when n > max_frame -> Error (Oversized n)
  | Ok n -> begin
    let payload = Bytes.create n in
    let rec fill off =
      if off >= n then true
      else begin
        (* drain the reader's buffer first, then read straight in *)
        if r.pos < r.len then begin
          let take = Stdlib.min (n - off) (r.len - r.pos) in
          Bytes.blit r.buf r.pos payload off take;
          r.pos <- r.pos + take;
          fill (off + take)
        end
        else begin
          let got = Unix.read r.fd payload off (n - off) in
          if got <= 0 then false else fill (off + got)
        end
      end
    in
    if not (fill 0) then Error (Malformed "eof in payload")
    else
      match read_byte r with
      | 10 -> Ok (Bytes.unsafe_to_string payload)
      | -1 -> Error (Malformed "eof at frame trailer")
      | b ->
        Error (Malformed (Printf.sprintf "expected newline trailer, got %d" b))
  end

let write_frame fd payload =
  let msg =
    Printf.sprintf "%d\n%s\n" (String.length payload) payload
  in
  let n = String.length msg in
  let rec push off =
    if off < n then begin
      let sent = Unix.write_substring fd msg off (n - off) in
      push (off + sent)
    end
  in
  push 0
