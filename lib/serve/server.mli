(** The serving daemon: accept loop, request dispatch, graceful drain.

    {b Threading model.}  The calling thread runs the accept loop (a
    [select] over the listeners and a self-pipe).  Each connection gets
    one systhread that reads frames, dispatches analysis work to the
    session's pinned {!Explore.Pool.Service} worker domain, blocks on
    the result slot, and writes the reply.  All analysis state of a
    session is touched only on its pinned worker (see {!Session}).

    {b Admission control.}  A request is rejected with protocol status
    [4] (cancelled) when its worker's mailbox is deeper than
    [max_queue], when the table cannot host another session, or when
    the daemon is draining.  Accepted requests run under a per-request
    {!Guard} token built from the request's [deadline-ms]/[budget]
    fields (falling back to the server defaults); a tripped token
    degrades the analysis and the reply carries status [3] plus the
    structured reason.

    {b Single-flight.}  [analyse] results are deduplicated through an
    {!Explore.Cache} keyed on [mode:digest]: concurrent identical
    requests (same system, any session) compute once; only converged /
    overloaded results are published (degraded ones are transient).

    {b Drain.}  On SIGTERM / SIGINT / a [shutdown] request the daemon
    stops accepting, rejects new requests, lets in-flight work finish —
    cancelling the stragglers' guards after [drain_ms] — shuts down the
    worker service, closes the connections, joins the threads, and
    {!run} returns [()], so the process exits 0. *)

module Engine = Cpa_system.Engine

type config = {
  unix_path : string option;  (** Unix-domain listener path *)
  tcp : (string * int) option;  (** TCP listener (host, port) *)
  jobs : int;  (** worker-domain request (clamped to cores) *)
  mode : Engine.mode;  (** analysis mode of new sessions *)
  propagation : Event_model.Propagation.mode option;
      (** when set, overrides the spec-wide default propagation mode of
          every loaded system (per-task overrides in the spec file keep
          precedence, as always) *)
  max_sessions : int;
  max_frame : int;  (** frame payload byte limit *)
  max_queue : int;  (** per-worker mailbox admission depth *)
  default_deadline_ms : float option;
  default_budget : int option;
  drain_ms : float;  (** in-flight grace period on shutdown *)
}

val config :
  ?unix_path:string ->
  ?tcp:string * int ->
  ?jobs:int ->
  ?mode:Engine.mode ->
  ?propagation:Event_model.Propagation.mode ->
  ?max_sessions:int ->
  ?max_frame:int ->
  ?max_queue:int ->
  ?default_deadline_ms:float ->
  ?default_budget:int ->
  ?drain_ms:float ->
  unit ->
  config
(** Defaults: no listeners (callers must pass at least one), jobs =
    {!Explore.Pool.default_jobs}, mode hierarchical, 64 sessions, 1 MiB
    frames, queue depth 64, no default deadline/budget, 5000 ms drain. *)

val run : config -> unit
(** Binds the listeners and serves until a shutdown trigger, then
    drains and returns.  @raise Invalid_argument when no listener is
    configured; [Unix.Unix_error] from binding escapes to the caller. *)
