module Engine = Cpa_system.Engine
module Spec = Cpa_system.Spec
module Spec_file = Cpa_system.Spec_file
module Space = Explore.Space
module Pool = Explore.Pool
module Busy_window = Scheduling.Busy_window
module Interval = Timebase.Interval
module Json = Protocol.Json

let log_src = Logs.Src.create "serve.server" ~doc:"analysis daemon"

module Log = (val Logs.src_log log_src : Logs.LOG)

let c_requests = Obs.Metrics.counter "serve.requests"
let c_rejected = Obs.Metrics.counter "serve.rejected"
let c_protocol_errors = Obs.Metrics.counter "serve.protocol_errors"
let h_request = Obs.Hist.hist "serve.request_ns"

type config = {
  unix_path : string option;
  tcp : (string * int) option;
  jobs : int;
  mode : Engine.mode;
  propagation : Event_model.Propagation.mode option;
  max_sessions : int;
  max_frame : int;
  max_queue : int;
  default_deadline_ms : float option;
  default_budget : int option;
  drain_ms : float;
}

let config ?unix_path ?tcp ?jobs ?(mode = Engine.Hierarchical) ?propagation
    ?(max_sessions = 64) ?(max_frame = Protocol.default_max_frame)
    ?(max_queue = 64) ?default_deadline_ms ?default_budget
    ?(drain_ms = 5000.) () =
  {
    unix_path;
    tcp;
    jobs = (match jobs with Some j -> j | None -> Pool.default_jobs ());
    mode;
    propagation;
    max_sessions;
    max_frame;
    max_queue;
    default_deadline_ms;
    default_budget;
    drain_ms;
  }

(* ------------------------------------------------------------------ *)
(* Reply bodies *)

let outcome_json (o : Engine.element_outcome) =
  let common =
    [ "element", Json.Str o.element; "resource", Json.Str o.resource ]
  in
  match o.outcome with
  | Busy_window.Bounded r ->
    Json.Obj
      (common
      @ [ "outcome", Json.Str "bounded"; "lo", Json.Int (Interval.lo r);
          "hi", Json.Int (Interval.hi r) ])
  | Busy_window.Unbounded reason ->
    Json.Obj
      (common
      @ [ "outcome", Json.Str "unbounded"; "reason", Json.Str reason ])

let outcomes_json outs = Json.Arr (List.map outcome_json outs)

let stats_json (st : Engine.stats) =
  Json.Obj
    [ "resources-analysed", Json.Int st.resources_analysed;
      "resources-reused", Json.Int st.resources_reused;
      "streams-invalidated", Json.Int st.streams_invalidated ]

(* A converged/overloaded result replies Success; a degraded one carries
   the partial body under the taxonomy's own status code, exactly like
   the CLI maps degradations onto exit codes. *)
let result_reply ~id body (r : Engine.result) =
  match r.status with
  | Engine.Converged | Engine.Overloaded -> Protocol.ok ~id body
  | Engine.Degraded d -> Protocol.fail ~body ~id d.reason

let unknown_session ~id session =
  Protocol.fail ~id
    (Guard.Error.Invalid_spec { reason = "unknown session " ^ session })

(* ------------------------------------------------------------------ *)
(* Server state *)

type slot = {
  s_lock : Mutex.t;
  s_cond : Condition.t;
  mutable s_reply : Protocol.reply option;
}

type t = {
  cfg : config;
  service : Pool.Service.t;
  table : Session.table;
  (* single-flight dedup of identical analyses: values are pure data
     (status name, iterations, outcomes) *)
  cache : (string * int * Engine.element_outcome list) Explore.Cache.t;
  stopping : bool Atomic.t;
  stop_w : Unix.file_descr;
  guards_lock : Mutex.t;
  mutable active_guards : Guard.t list;
}

let initiate_stop t =
  if not (Atomic.exchange t.stopping true) then begin
    try ignore (Unix.write_substring t.stop_w "x" 0 1) with _ -> ()
  end

let register_guard t g =
  Mutex.lock t.guards_lock;
  t.active_guards <- g :: t.active_guards;
  Mutex.unlock t.guards_lock

let unregister_guard t g =
  Mutex.lock t.guards_lock;
  t.active_guards <- List.filter (fun g' -> g' != g) t.active_guards;
  Mutex.unlock t.guards_lock

let cancel_active_guards t =
  Mutex.lock t.guards_lock;
  let gs = t.active_guards in
  Mutex.unlock t.guards_lock;
  List.iter Guard.cancel gs

(* ------------------------------------------------------------------ *)
(* Handlers (worker-domain side) *)

let mode_of_name = function
  | "hierarchical" -> Some Engine.Hierarchical
  | "flat_stream" | "flat-stream" -> Some Engine.Flat_stream
  | "flat_sem" | "flat-sem" -> Some Engine.Flat_sem
  | _ -> None

exception Analysis_error of Guard.Error.t
exception Analysis_degraded of Engine.result

(* the digest is advertised only when already known (load hashes the
   upload; edits invalidate) — forcing a re-hash per reply would cost
   more than the incremental analysis itself *)
let session_header (s : Session.t) =
  ("session", Json.Str s.id)
  :: (if String.equal s.digest "" then []
      else [ "digest", Json.Str s.digest ])

let handle_load t (s : Session.t) ~id ~mode ~guard =
  let mode = Option.value mode ~default:t.cfg.mode in
  s.digest <- Spec.digest s.spec;
  match Engine.warm ~mode ~guard s.spec with
  | Error e ->
    ignore (Session.remove t.table s.id);
    Protocol.fail ~id e
  | Ok (w, r) ->
    s.warm <- Some w;
    s.last_outcomes <- r.outcomes;
    let body =
      Json.Obj
        (session_header s
        @ [ "mode", Json.Str (Engine.mode_name mode);
            "status", Json.Str (Engine.status_name r.status);
            "iterations", Json.Int r.iterations;
            "outcomes", outcomes_json r.outcomes;
            "stats", stats_json r.stats ])
    in
    result_reply ~id body r

let handle_edit (s : Session.t) ~id ~edits ~guard =
  match s.warm with
  | None ->
    unknown_session ~id s.id  (* load failed or still warming *)
  | Some w -> begin
    match
      (* fold the edits over the evolving spec, collecting the touched
         sources/elements of each against the spec it applies to *)
      List.fold_left
        (fun (sp, srcs, els) e ->
          let s', e' = Space.touched sp e in
          Space.apply sp e, s' @ srcs, e' @ els)
        (s.spec, [], []) edits
    with
    | exception Not_found ->
      Protocol.fail ~id
        (Guard.Error.Invalid_spec
           { reason = "edit names an unknown element" })
    | exception Invalid_argument reason ->
      Protocol.fail ~id (Guard.Error.Invalid_spec { reason })
    | new_spec, sources, elements -> begin
      (* the impact closure must cover the topology before AND after
         the edit: a repack's old frames only exist in the former, its
         replacement frames only in the latter *)
      let stale =
        List.sort_uniq String.compare
          (Engine.affected s.spec ~sources ~elements
          @ Engine.affected new_spec ~sources ~elements)
      in
      let before = s.last_outcomes in
      match Engine.warm_update ~guard w ~spec:new_spec ~stale with
      | Error e -> Protocol.fail ~id e
      | Ok r ->
        s.spec <- new_spec;
        s.edits <- s.edits @ edits;
        (* invalidate, don't re-hash: hashing the whole spec costs more
           than the incremental update; Session.content_digest recomputes
           on demand when the analyse cache next needs the address *)
        s.digest <- "";
        s.last_outcomes <- r.outcomes;
        let changed =
          Engine.delta_outcomes ~before ~after:r.outcomes
        in
        let removed =
          List.filter_map
            (fun (b : Engine.element_outcome) ->
              if
                List.exists
                  (fun (a : Engine.element_outcome) ->
                    String.equal a.element b.element)
                  r.outcomes
              then None
              else Some (Json.Str b.element))
            before
        in
        let body =
          Json.Obj
            (session_header s
            @ [ "status", Json.Str (Engine.status_name r.status);
                "iterations", Json.Int r.iterations;
                "changed", outcomes_json changed;
                "removed", Json.Arr removed;
                "stale", Json.Arr (List.map (fun n -> Json.Str n) stale);
                "stats", stats_json r.stats ])
        in
        result_reply ~id body r
    end
  end

let handle_analyse t (s : Session.t) ~id ~guard =
  match s.warm with
  | None -> unknown_session ~id s.id
  | Some w -> begin
    let key =
      Engine.mode_name (Engine.warm_mode w) ^ ":" ^ Session.content_digest s
    in
    let analyse_reply ~hit ~status ~iterations outcomes =
      Protocol.ok ~id
        (Json.Obj
           (session_header s
           @ [ "status", Json.Str status;
               "iterations", Json.Int iterations;
               "cache-hit", Json.Bool hit;
               "outcomes", outcomes ]))
    in
    (* Second memo layer under the cross-session single-flight cache: the
       fully rendered result, in the pinned worker's domain-local scratch,
       keyed by session so eviction can clear exactly this session's
       entries (see the table's [on_evict]).  We always run on the pinned
       worker here, so the table is ours alone. *)
    let scratch = Pool.Service.scratch () in
    let skey = s.id ^ ":" ^ key in
    let replayed =
      match Hashtbl.find_opt scratch skey with
      | None -> None
      | Some rendered -> begin
        match Json.of_string rendered with
        | Ok (Json.Obj [ ("status", Json.Str status);
                         ("iterations", Json.Int iterations);
                         ("outcomes", outcomes) ]) ->
          Some (analyse_reply ~hit:true ~status ~iterations outcomes)
        | Ok _ | Error _ ->
          (* unreadable entry: drop it and recompute *)
          Hashtbl.remove scratch skey;
          None
      end
    in
    match replayed with
    | Some reply -> reply
    | None -> begin
      match
        Explore.Cache.find_or_compute t.cache ~key (fun () ->
          match Engine.warm_update ~guard w ~spec:s.spec ~stale:[] with
          | Error e -> raise (Analysis_error e)
          | Ok r -> begin
            match r.status with
            | Engine.Degraded _ -> raise (Analysis_degraded r)
            | Engine.Converged | Engine.Overloaded ->
              Engine.status_name r.status, r.iterations, r.outcomes
          end)
      with
      | (status, iterations, outcomes), hit ->
        let outcomes = outcomes_json outcomes in
        Hashtbl.replace scratch skey
          (Json.to_string
             (Json.Obj
                [ "status", Json.Str status;
                  "iterations", Json.Int iterations;
                  "outcomes", outcomes ]));
        analyse_reply ~hit ~status ~iterations outcomes
      | exception Analysis_error e -> Protocol.fail ~id e
      | exception Analysis_degraded r ->
        let body =
          Json.Obj
            (session_header s
            @ [ "status", Json.Str (Engine.status_name r.status);
                "iterations", Json.Int r.iterations;
                "cache-hit", Json.Bool false;
                "outcomes", outcomes_json r.outcomes ])
        in
        result_reply ~id body r
    end
  end

let handle_metrics t (s : Session.t) ~id =
  let counters =
    Json.Obj
      (List.map
         (fun (k, v) -> k, Json.Int v)
         (Obs.Metrics.snapshot s.scope))
  in
  let process =
    (* Snapshot.to_json is deterministic JSON; embed it structurally *)
    match Json.of_string (Obs.Snapshot.to_json (Obs.Snapshot.capture ())) with
    | Ok j -> j
    | Error _ -> Json.Null
  in
  Protocol.ok ~id
    (Json.Obj
       (session_header s
       @ [ "requests", Json.Int s.requests;
           "edits", Json.Int (List.length s.edits);
           "sessions", Json.Int (Session.count t.table);
           "evictions", Json.Int (Session.evictions t.table);
           "counters", counters;
           "process", process ]))

let handle_close t (s : Session.t) ~id =
  ignore (Session.remove t.table s.id);
  Protocol.ok ~id (Json.Obj [ "closed", Json.Bool true ])

(* ------------------------------------------------------------------ *)
(* Dispatch (connection-thread side) *)

let admission_reject ~id reason =
  Obs.Metrics.incr c_rejected;
  Protocol.fail ~message:reason ~id Guard.Error.Cancelled

(* Run [job] on the session's pinned worker and wait for its reply.
   The wrapper owns checkin, guard registration and the per-session
   metrics scope; [job] gets the per-request guard. *)
let dispatch t (s : Session.t) ~id job =
  if Pool.Service.depth t.service ~worker:s.worker > t.cfg.max_queue then begin
    Session.checkin t.table s;
    admission_reject ~id "admission: worker queue full"
  end
  else begin
    let slot =
      { s_lock = Mutex.create (); s_cond = Condition.create ();
        s_reply = None }
    in
    let deliver reply =
      Mutex.lock slot.s_lock;
      slot.s_reply <- Some reply;
      Condition.signal slot.s_cond;
      Mutex.unlock slot.s_lock
    in
    let accepted =
      Pool.Service.submit t.service ~worker:s.worker (fun () ->
        let reply =
          Fun.protect
            ~finally:(fun () -> Session.checkin t.table s)
            (fun () ->
              match
                Obs.Metrics.in_scope s.scope (fun () ->
                  let t0 =
                    if Obs.Hist.enabled () then Obs.Trace.now_us () else 0.0
                  in
                  let r = job () in
                  if Obs.Hist.enabled () then
                    Obs.Hist.record h_request
                      (int_of_float ((Obs.Trace.now_us () -. t0) *. 1e3));
                  r)
              with
              | reply -> reply
              | exception Guard.Error.Error e -> Protocol.fail ~id e
              | exception e ->
                Protocol.fail ~id
                  (Guard.Error.Invalid_spec
                     { reason = "internal error: " ^ Printexc.to_string e }))
        in
        deliver reply)
    in
    if not accepted then begin
      Session.checkin t.table s;
      admission_reject ~id "draining: request rejected"
    end
    else begin
      Mutex.lock slot.s_lock;
      while slot.s_reply = None do
        Condition.wait slot.s_cond slot.s_lock
      done;
      let reply = Option.get slot.s_reply in
      Mutex.unlock slot.s_lock;
      reply
    end
  end

let with_request_guard t (req : Protocol.request) f =
  let deadline_ms =
    match req.deadline_ms with
    | Some d -> Some d
    | None -> t.cfg.default_deadline_ms
  in
  let budget =
    match req.budget with Some b -> Some b | None -> t.cfg.default_budget
  in
  let guard = Guard.create ?deadline_ms ?budget () in
  register_guard t guard;
  Fun.protect ~finally:(fun () -> unregister_guard t guard) (fun () -> f guard)

let dispatch_to_session t ~id ~session job =
  match Session.checkout t.table session with
  | None -> unknown_session ~id session
  | Some s -> dispatch t s ~id (fun () -> job s)

let handle_request t (req : Protocol.request) =
  Obs.Metrics.incr c_requests;
  let id = req.req_id in
  if Atomic.get t.stopping then
    match req.op with
    | Protocol.Ping ->
      Protocol.ok ~id
        (Json.Obj [ "pong", Json.Bool true; "draining", Json.Bool true ])
    | _ -> admission_reject ~id "draining: request rejected"
  else
    match req.op with
    | Protocol.Ping ->
      Protocol.ok ~id
        (Json.Obj
           [ "pong", Json.Bool true;
             "sessions", Json.Int (Session.count t.table);
             "jobs", Json.Int (Pool.Service.jobs t.service);
             "draining", Json.Bool false ])
    | Protocol.Shutdown ->
      (* the reply is written by the caller before the listeners close;
         draining starts immediately after *)
      Protocol.ok ~id (Json.Obj [ "stopping", Json.Bool true ])
    | Protocol.Load { spec_text; mode = mode_name } -> begin
      match
        match mode_name with
        | None -> Ok None
        | Some m -> begin
          match mode_of_name m with
          | Some mode -> Ok (Some mode)
          | None -> Error ("unknown mode " ^ m)
        end
      with
      | Error reason ->
        Protocol.fail ~id (Guard.Error.Invalid_spec { reason })
      | Ok mode -> begin
        match Spec_file.parse spec_text with
        | Error reason ->
          Protocol.fail ~id (Guard.Error.Parse_failure { reason })
        | Ok base -> begin
          (* the spec is built here but only ever *touched* on the
             session's pinned worker; the mailbox lock is the
             happens-before edge *)
          let spec = Spec_file.to_spec base in
          let spec =
            match t.cfg.propagation with
            | None -> spec
            | Some m -> Spec.with_propagation m spec
          in
          match Session.register t.table ~base ~spec ~digest:"" with
          | Error reason -> admission_reject ~id ("admission: " ^ reason)
          | Ok s -> begin
            match Session.checkout t.table s.id with
            | None -> unknown_session ~id s.id
            | Some s ->
              dispatch t s ~id (fun () ->
                with_request_guard t req (fun guard ->
                  handle_load t s ~id ~mode ~guard))
          end
        end
      end
    end
    | Protocol.Edit { session; edits } ->
      dispatch_to_session t ~id ~session (fun s ->
        with_request_guard t req (fun guard ->
          handle_edit s ~id ~edits ~guard))
    | Protocol.Analyse { session } ->
      dispatch_to_session t ~id ~session (fun s ->
        with_request_guard t req (fun guard ->
          handle_analyse t s ~id ~guard))
    | Protocol.Metrics { session } ->
      dispatch_to_session t ~id ~session (fun s -> handle_metrics t s ~id)
    | Protocol.Close { session } ->
      dispatch_to_session t ~id ~session (fun s -> handle_close t s ~id)

(* ------------------------------------------------------------------ *)
(* Connection loop *)

let send fd reply =
  match
    Protocol.write_frame fd (Json.to_string (Protocol.reply_to_json reply))
  with
  | () -> true
  | exception Unix.Unix_error _ -> false

let handle_connection t fd =
  let reader = Protocol.reader fd in
  let rec loop () =
    match Protocol.read_frame ~max_frame:t.cfg.max_frame reader with
    | Error Protocol.Closed -> ()
    | Error e ->
      (* header/payload desync is unrecoverable: best-effort fault
         reply, then drop the connection *)
      Obs.Metrics.incr c_protocol_errors;
      ignore
        (send fd
           (Protocol.fail ~id:0
              (Guard.Error.Parse_failure
                 { reason = Protocol.frame_error_to_string e })))
    | Ok payload -> begin
      match
        match Json.of_string payload with
        | Error reason -> Error reason
        | Ok j -> Protocol.request_of_json j
      with
      | Error reason ->
        (* frame boundaries intact: report and keep serving *)
        Obs.Metrics.incr c_protocol_errors;
        if
          send fd
            (Protocol.fail ~id:0 (Guard.Error.Parse_failure { reason }))
        then loop ()
      | Ok req ->
        let reply =
          match handle_request t req with
          | reply -> reply
          | exception e ->
            Protocol.fail ~id:req.req_id
              (Guard.Error.Invalid_spec
                 { reason = "internal error: " ^ Printexc.to_string e })
        in
        let wrote = send fd reply in
        if req.op = Protocol.Shutdown then initiate_stop t;
        if wrote && not (req.op = Protocol.Shutdown) then loop ()
    end
  in
  (match loop () with () -> () | exception _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Listeners and accept loop *)

let unix_listener path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let tcp_listener (host, port) =
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      try (Unix.gethostbyname host).Unix.h_addr_list.(0)
      with Not_found -> Unix.inet_addr_loopback)
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (addr, port));
  Unix.listen fd 64;
  fd

let run cfg =
  if cfg.unix_path = None && cfg.tcp = None then
    invalid_arg "Server.run: no listener configured";
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let stop_r, stop_w = Unix.pipe () in
  let service = Pool.Service.create ~jobs:cfg.jobs ~label:"serve.pool" () in
  let t =
    {
      cfg;
      service;
      (* pin against the service's clamped worker count, not the
         requested one, or sessions land on non-existent workers *)
      table =
        Session.table
          (* a departing session's reply memos live in its pinned
             worker's scratch; clear them there (mailbox ordering runs
             the clear after any in-flight jobs of the session) *)
          ~on_evict:(fun s ->
            ignore
              (Pool.Service.clear_scratch service ~worker:s.Session.worker
                 ~prefix:(s.Session.id ^ ":")))
          ~max_sessions:cfg.max_sessions
          ~jobs:(Pool.Service.jobs service) ();
      cache = Explore.Cache.create ();
      stopping = Atomic.make false;
      stop_w;
      guards_lock = Mutex.create ();
      active_guards = [];
    }
  in
  let listeners =
    (match cfg.unix_path with Some p -> [ unix_listener p ] | None -> [])
    @ match cfg.tcp with Some hp -> [ tcp_listener hp ] | None -> []
  in
  let prev_term =
    Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> initiate_stop t))
  in
  let prev_int =
    Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> initiate_stop t))
  in
  let conns_lock = Mutex.create () in
  let conns = ref [] in
  Log.info (fun m ->
    m "serving (%d workers, %d max sessions)%s%s"
      (Pool.Service.jobs t.service)
      cfg.max_sessions
      (match cfg.unix_path with
       | Some p -> Printf.sprintf " unix:%s" p
       | None -> "")
      (match cfg.tcp with
       | Some (h, p) -> Printf.sprintf " tcp:%s:%d" h p
       | None -> ""));
  let rec accept_loop () =
    if not (Atomic.get t.stopping) then begin
      match Unix.select (stop_r :: listeners) [] [] (-1.) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | readable, _, _ ->
        List.iter
          (fun fd ->
            if fd <> stop_r then begin
              match Unix.accept fd with
              | exception Unix.Unix_error _ -> ()
              | conn_fd, _ ->
                let th =
                  Thread.create (fun () -> handle_connection t conn_fd) ()
                in
                Mutex.lock conns_lock;
                conns := (th, conn_fd) :: !conns;
                Mutex.unlock conns_lock
            end)
          readable;
        accept_loop ()
    end
  in
  accept_loop ();
  Log.info (fun m -> m "draining");
  (* stop accepting *)
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    listeners;
  (match cfg.unix_path with
   | Some p -> (try Unix.unlink p with Unix.Unix_error _ -> ())
   | None -> ());
  (* grace period: in-flight requests finish under their own guards;
     stragglers are cancelled when it elapses.  The watchdog polls a
     drained flag so a clean shutdown never waits the full period. *)
  let drained = Atomic.make false in
  let watchdog =
    Thread.create
      (fun () ->
        let deadline = Unix.gettimeofday () +. (cfg.drain_ms /. 1000.) in
        while
          (not (Atomic.get drained)) && Unix.gettimeofday () < deadline
        do
          Thread.delay 0.05
        done;
        if not (Atomic.get drained) then cancel_active_guards t)
      ()
  in
  (* drains every mailbox, then joins the worker domains: every
     dispatched request gets its reply delivered *)
  Pool.Service.shutdown t.service;
  Atomic.set drained true;
  (* unblock connection readers; threads close their own fds *)
  Mutex.lock conns_lock;
  let remaining = !conns in
  Mutex.unlock conns_lock;
  List.iter
    (fun (_, fd) ->
      try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    remaining;
  List.iter (fun (th, _) -> Thread.join th) remaining;
  Thread.join watchdog;
  Sys.set_signal Sys.sigterm prev_term;
  Sys.set_signal Sys.sigint prev_int;
  (try Unix.close stop_r with Unix.Unix_error _ -> ());
  (try Unix.close stop_w with Unix.Unix_error _ -> ());
  Log.info (fun m -> m "stopped")
