module Engine = Cpa_system.Engine
module Spec = Cpa_system.Spec
module Spec_file = Cpa_system.Spec_file

type t = {
  id : string;
  worker : int;
  scope : Obs.Metrics.scope;
  base : Spec_file.t;
  mutable edits : Explore.Space.edit list;
  mutable spec : Spec.t;
  mutable warm : Engine.warm option;
  mutable last_outcomes : Engine.element_outcome list;
  mutable digest : string;
  mutable last_used : float;
  mutable inflight : int;
  mutable requests : int;
}

type table = {
  lock : Mutex.t;
  sessions : (string, t) Hashtbl.t;
  max_sessions : int;
  jobs : int;
  on_evict : t -> unit;
  mutable next_id : int;
  mutable evicted : int;
}

let c_opened = Obs.Metrics.counter "serve.sessions.opened"
let c_evicted = Obs.Metrics.counter "serve.sessions.evicted"

let table ?(on_evict = fun _ -> ()) ~max_sessions ~jobs () =
  if max_sessions < 1 then invalid_arg "Session.table: max_sessions < 1";
  if jobs < 1 then invalid_arg "Session.table: jobs < 1";
  {
    lock = Mutex.create ();
    sessions = Hashtbl.create 16;
    max_sessions;
    jobs;
    on_evict;
    next_id = 1;
    evicted = 0;
  }

let locked tbl f =
  Mutex.lock tbl.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock tbl.lock) f

(* Deterministic pin: all jobs of one session land on one worker domain,
   which is what keeps its unsynchronised curve memos single-domain. *)
let pin_worker tbl id = Hashtbl.hash id mod tbl.jobs

let evict_lru tbl =
  let victim =
    Hashtbl.fold
      (fun _ s acc ->
        if s.inflight > 0 then acc
        else
          match acc with
          | Some best when best.last_used <= s.last_used -> acc
          | _ -> Some s)
      tbl.sessions None
  in
  match victim with
  | None -> None
  | Some s ->
    Hashtbl.remove tbl.sessions s.id;
    tbl.evicted <- tbl.evicted + 1;
    Obs.Metrics.incr c_evicted;
    Some s

let register tbl ~base ~spec ~digest =
  let result, victim =
    locked tbl (fun () ->
      let victim =
        if Hashtbl.length tbl.sessions >= tbl.max_sessions then
          evict_lru tbl
        else None
      in
      if Hashtbl.length tbl.sessions >= tbl.max_sessions then
        Error "session table full and every session is busy", victim
      else begin
        let id = Printf.sprintf "s-%d" tbl.next_id in
        tbl.next_id <- tbl.next_id + 1;
        let s =
          {
            id;
            worker = pin_worker tbl id;
            scope = Obs.Metrics.scope ("serve.session:" ^ id);
            base;
            edits = [];
            spec;
            warm = None;
            last_outcomes = [];
            digest;
            last_used = Unix.gettimeofday ();
            inflight = 0;
            requests = 0;
          }
        in
        Hashtbl.replace tbl.sessions id s;
        Obs.Metrics.incr c_opened;
        Ok s, victim
      end)
  in
  (* fire outside the table lock: the handler typically submits a
     scratch-clear job to the victim's pinned worker *)
  (match victim with Some v -> tbl.on_evict v | None -> ());
  result

let content_digest s =
  if String.equal s.digest "" then s.digest <- Spec.digest s.spec;
  s.digest

let find tbl id = locked tbl (fun () -> Hashtbl.find_opt tbl.sessions id)

let checkout tbl id =
  locked tbl (fun () ->
    match Hashtbl.find_opt tbl.sessions id with
    | None -> None
    | Some s ->
      s.inflight <- s.inflight + 1;
      s.requests <- s.requests + 1;
      s.last_used <- Unix.gettimeofday ();
      Some s)

let checkin tbl s =
  locked tbl (fun () -> s.inflight <- Stdlib.max 0 (s.inflight - 1))

let remove tbl id =
  let removed =
    locked tbl (fun () ->
      match Hashtbl.find_opt tbl.sessions id with
      | None -> None
      | Some s ->
        Hashtbl.remove tbl.sessions id;
        Some s)
  in
  match removed with
  | None -> false
  | Some s ->
    tbl.on_evict s;
    true

let count tbl = locked tbl (fun () -> Hashtbl.length tbl.sessions)

let ids tbl =
  locked tbl (fun () ->
    Hashtbl.fold (fun id _ acc -> id :: acc) tbl.sessions []
    |> List.sort String.compare)

let evictions tbl = locked tbl (fun () -> tbl.evicted)
