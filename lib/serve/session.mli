(** Session table of the serving daemon.

    A session is one loaded system with its warm {!Cpa_system.Engine}
    resolution context, its accumulated edit history, and a private
    {!Obs.Metrics} scope that every request executed on its behalf runs
    under.  Sessions are pinned to one {!Explore.Pool.Service} worker
    ([worker = hash id mod jobs]): the warm context's cached streams
    carry unsynchronised curve memo tables, so all analysis state of a
    session must only ever be touched from its worker's domain.  The
    table itself (registration, lookup, eviction) is mutex-protected
    and may be used from any thread.

    Analysis fields ([spec], [warm], [last_outcomes], [digest]) are
    written exclusively by worker jobs; the happens-before edge to later
    jobs of the same session is the worker mailbox. *)

module Engine = Cpa_system.Engine
module Spec = Cpa_system.Spec
module Spec_file = Cpa_system.Spec_file

type t = {
  id : string;
  worker : int;  (** pinned {!Explore.Pool.Service} worker index *)
  scope : Obs.Metrics.scope;  (** per-session accumulation cell set *)
  base : Spec_file.t;  (** the uploaded description (pure data) *)
  mutable edits : Explore.Space.edit list;
      (** accumulated edit history, oldest first *)
  mutable spec : Spec.t;  (** current system (worker-domain owned) *)
  mutable warm : Engine.warm option;  (** [None] until [load] finishes *)
  mutable last_outcomes : Engine.element_outcome list;
  mutable digest : string;
      (** content address of [spec]; [""] = stale, recomputed lazily by
          {!content_digest} (edits invalidate instead of re-hashing) *)
  mutable last_used : float;  (** [Unix.gettimeofday] of last dispatch *)
  mutable inflight : int;  (** dispatched, not yet completed requests *)
  mutable requests : int;  (** requests ever dispatched *)
}

type table

val table :
  ?on_evict:(t -> unit) -> max_sessions:int -> jobs:int -> unit -> table
(** [on_evict] fires — outside the table lock — whenever a session
    leaves the table, by LRU eviction or by {!remove}.  The server uses
    it to clear the session's entries from its pinned worker's
    {!Explore.Pool.Service} scratch; without that, per-session memo
    state keyed on the worker would outlive the session. *)

val register :
  table -> base:Spec_file.t -> spec:Spec.t -> digest:string ->
  (t, string) result
(** Creates a session (fresh id, worker pin, scope) and inserts it,
    evicting the least-recently-used idle session if the table is full;
    [Error] when every session is busy and nothing can be evicted.
    The caller dispatches the warming job afterwards. *)

val content_digest : t -> string
(** Memoized {!Spec.digest} of the session's current spec. Edits clear
    [digest] rather than re-hashing — a warm session only pays the hash
    when something consumes the content address (the analyse cache
    key). Worker-domain only, like every other analysis field. *)

val find : table -> string -> t option

val checkout : table -> string -> t option
(** {!find}, also marking the session busy ([inflight + 1]) and touching
    [last_used] — call when dispatching a request, and pair each
    checkout with exactly one {!checkin}. *)

val checkin : table -> t -> unit

val remove : table -> string -> bool
(** Drops the session from the table (its warm state is garbage) and
    fires [on_evict].  [false] when the id is unknown. *)

val count : table -> int

val ids : table -> string list
(** Session ids, sorted. *)

val evictions : table -> int
(** Sessions evicted by LRU pressure since the table was created. *)
