(** Blocking client of the serving daemon.

    One {!t} is one connection with an auto-incrementing request id; it
    is not thread-safe (use one connection per client thread — the
    protocol is strictly request/reply per connection).  All calls
    return the decoded {!Protocol.reply}; transport and decode failures
    are [Error] strings.  A reply with a non-[Success] status is still
    [Ok] — inspect [reply.status] / [reply.error]; {!exit_code} maps it
    onto the CLI exit-code taxonomy. *)

type addr =
  [ `Unix of string  (** Unix-domain socket path *)
  | `Tcp of string * int  (** host, port *)
  ]

type t

val connect : ?max_frame:int -> addr -> (t, string) result
val close : t -> unit

val request :
  ?deadline_ms:float -> ?budget:int -> t -> Protocol.op ->
  (Protocol.reply, string) result
(** Sends one request and blocks for its reply (mismatched reply ids
    are an [Error]). *)

val exit_code : Protocol.reply -> int
(** [status_code] of the reply — by construction the same 0/1/3/4
    taxonomy as {!Guard.Error.exit_code}. *)

(** {1 Convenience wrappers} *)

val load :
  ?deadline_ms:float -> ?budget:int -> ?mode:string -> t -> spec:string ->
  (Protocol.reply, string) result

val edit :
  ?deadline_ms:float -> ?budget:int -> t -> session:string ->
  Explore.Space.edit list -> (Protocol.reply, string) result

val analyse :
  ?deadline_ms:float -> ?budget:int -> t -> session:string ->
  (Protocol.reply, string) result

val metrics : t -> session:string -> (Protocol.reply, string) result
val close_session : t -> session:string -> (Protocol.reply, string) result
val ping : t -> (Protocol.reply, string) result
val shutdown : t -> (Protocol.reply, string) result

val session_id : Protocol.reply -> string option
(** The ["session"] field of a reply body (set by [load]). *)
