module Json = Protocol.Json

type addr =
  [ `Unix of string
  | `Tcp of string * int
  ]

type t = {
  fd : Unix.file_descr;
  reader : Protocol.reader;
  max_frame : int;
  mutable next_id : int;
}

let connect ?(max_frame = Protocol.default_max_frame) addr =
  match
    match addr with
    | `Unix path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX path)
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      fd
    | `Tcp (host, port) ->
      let inet =
        try Unix.inet_addr_of_string host
        with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_INET (inet, port))
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      fd
  with
  | fd -> Ok { fd; reader = Protocol.reader fd; max_frame; next_id = 1 }
  | exception Unix.Unix_error (err, _, _) ->
    Error ("connect: " ^ Unix.error_message err)
  | exception Not_found -> Error "connect: unknown host"

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let request ?deadline_ms ?budget t op =
  let id = t.next_id in
  t.next_id <- id + 1;
  let req = Protocol.request ?deadline_ms ?budget ~id op in
  match
    Protocol.write_frame t.fd
      (Json.to_string (Protocol.request_to_json req))
  with
  | exception Unix.Unix_error (err, _, _) ->
    Error ("send: " ^ Unix.error_message err)
  | () -> begin
    match Protocol.read_frame ~max_frame:t.max_frame t.reader with
    | Error e -> Error (Protocol.frame_error_to_string e)
    | Ok payload -> begin
      match Json.of_string payload with
      | Error e -> Error e
      | Ok j -> begin
        match Protocol.reply_of_json j with
        | Error e -> Error e
        | Ok reply ->
          (* id 0 = a protocol-level fault the server could not tie to
             a request id *)
          if reply.Protocol.rep_id = id || reply.Protocol.rep_id = 0 then
            Ok reply
          else
            Error
              (Printf.sprintf "reply id %d does not match request %d"
                 reply.Protocol.rep_id id)
      end
    end
  end

let exit_code (reply : Protocol.reply) = Protocol.status_code reply.status

let load ?deadline_ms ?budget ?mode t ~spec =
  request ?deadline_ms ?budget t (Protocol.Load { spec_text = spec; mode })

let edit ?deadline_ms ?budget t ~session edits =
  request ?deadline_ms ?budget t (Protocol.Edit { session; edits })

let analyse ?deadline_ms ?budget t ~session =
  request ?deadline_ms ?budget t (Protocol.Analyse { session })

let metrics t ~session = request t (Protocol.Metrics { session })
let close_session t ~session = request t (Protocol.Close { session })
let ping t = request t Protocol.Ping
let shutdown t = request t Protocol.Shutdown

let session_id (reply : Protocol.reply) =
  Option.bind (Json.member "session" reply.body) Json.to_str
