type format =
  | Json
  | Jsonl

let add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let add_value b = function
  | Event.Str s -> add_json_string b s
  | Event.Int i -> Buffer.add_string b (string_of_int i)
  | Event.Float f ->
    (* JSON has no NaN/infinity literals *)
    if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.6g" f)
    else add_json_string b (string_of_float f)
  | Event.Bool v -> Buffer.add_string b (if v then "true" else "false")

let add_args b attrs =
  Buffer.add_string b "\"args\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      add_json_string b k;
      Buffer.add_char b ':';
      add_value b v)
    attrs;
  Buffer.add_char b '}'

let add_event b e =
  let common name ph ts =
    Buffer.add_string b "{\"name\":";
    add_json_string b name;
    Buffer.add_string b (Printf.sprintf ",\"cat\":\"hem\",\"ph\":%S" ph);
    Buffer.add_string b (Printf.sprintf ",\"ts\":%.3f,\"pid\":1,\"tid\":1," ts)
  in
  (match e with
  | Event.Span_begin { name; ts; attrs } ->
    common name "B" ts;
    add_args b attrs
  | Event.Span_end { name; ts; attrs } ->
    common name "E" ts;
    add_args b attrs
  | Event.Instant { name; ts; attrs } ->
    common name "i" ts;
    Buffer.add_string b "\"s\":\"t\",";
    add_args b attrs
  | Event.Counter { name; ts; value } ->
    common name "C" ts;
    Buffer.add_string b (Printf.sprintf "\"args\":{\"value\":%d}" value));
  Buffer.add_char b '}'

let event_json e =
  let b = Buffer.create 128 in
  add_event b e;
  Buffer.contents b

let to_string ?(format = Json) events =
  let b = Buffer.create 4096 in
  (match format with
  | Json ->
    Buffer.add_string b "{\"traceEvents\":[\n";
    List.iteri
      (fun i e ->
        if i > 0 then Buffer.add_string b ",\n";
        add_event b e)
      events;
    Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\"}\n"
  | Jsonl ->
    List.iter
      (fun e ->
        add_event b e;
        Buffer.add_char b '\n')
      events);
  Buffer.contents b

let file ?format path =
  let format =
    match format with
    | Some f -> f
    | None -> if Filename.check_suffix path ".jsonl" then Jsonl else Json
  in
  let events = ref [] in
  let emit e = events := e :: !events in
  let flush () =
    let oc = open_out path in
    output_string oc (to_string ~format (List.rev !events));
    close_out oc
  in
  Sink.make ~flush emit
