(* Span-stream replay into an aggregated call tree.  The builder keys
   children by refined span name so repeated calls fold into one node,
   and keeps insertion order only as a tiebreak — presentation sorts by
   cost. *)

type node = {
  key : string;
  calls : int;
  total_us : float;
  self_us : float;
  children : node list;
}

(* Mutable builder node: child time is accumulated separately so self
   time falls out as total - in_children at freeze time. *)
type bnode = {
  b_key : string;
  mutable b_calls : int;
  mutable b_total : float;
  mutable b_child_total : float;
  b_children : (string, bnode) Hashtbl.t;
  mutable b_order : string list; (* child keys, reverse insertion order *)
}

let bnode key =
  {
    b_key = key;
    b_calls = 0;
    b_total = 0.0;
    b_child_total = 0.0;
    b_children = Hashtbl.create 4;
    b_order = [];
  }

type t = { root : bnode }

(* The attribute that distinguishes instances of a span: busy_window
   spans carry [element], engine phases carry [resource] or [stream],
   and so on.  First match wins; non-string values stringify. *)
let refine_keys = [ "element"; "resource"; "stream"; "frame"; "mode" ]

let refined name (attrs : Event.attr list) =
  let value_str = function
    | Event.Str s -> s
    | Event.Int i -> string_of_int i
    | Event.Float f -> Printf.sprintf "%g" f
    | Event.Bool b -> string_of_bool b
  in
  let rec first = function
    | [] -> name
    | k :: rest -> begin
      match List.assoc_opt k attrs with
      | Some v -> name ^ ":" ^ value_str v
      | None -> first rest
    end
  in
  first refine_keys

let child_of parent key =
  match Hashtbl.find_opt parent.b_children key with
  | Some c -> c
  | None ->
    let c = bnode key in
    Hashtbl.add parent.b_children key c;
    parent.b_order <- key :: parent.b_order;
    c

let of_events events =
  let root = bnode "(root)" in
  (* Open-span stack: (node, begin_ts, parent). *)
  let stack = ref [] in
  let last_ts = ref 0.0 in
  let close node t0 parent ts =
    let dt = ts -. t0 in
    let dt = if dt < 0.0 then 0.0 else dt in
    node.b_calls <- node.b_calls + 1;
    node.b_total <- node.b_total +. dt;
    parent.b_child_total <- parent.b_child_total +. dt
  in
  List.iter
    (fun ev ->
      (match ev with
      | Event.Span_begin { name; ts; attrs } ->
        let parent =
          match !stack with [] -> root | (n, _, _) :: _ -> n
        in
        let node = child_of parent (refined name attrs) in
        stack := (node, ts, parent) :: !stack
      | Event.Span_end { name = _; ts; _ } -> begin
        match !stack with
        | [] -> () (* end without begin: ring buffer lost the opening *)
        | (node, t0, parent) :: rest ->
          close node t0 parent ts;
          stack := rest
      end
      | Event.Instant _ | Event.Counter _ -> ());
      last_ts := Event.ts ev)
    events;
  (* Truncated stream: close whatever is still open at the last
     timestamp, innermost first. *)
  List.iter (fun (node, t0, parent) -> close node t0 parent !last_ts) !stack;
  { root }

let rec freeze b =
  let children =
    List.rev_map
      (fun key -> freeze (Hashtbl.find b.b_children key))
      b.b_order
  in
  let children =
    List.stable_sort (fun a b -> compare b.total_us a.total_us) children
  in
  let self = b.b_total -. b.b_child_total in
  {
    key = b.b_key;
    calls = b.b_calls;
    total_us = b.b_total;
    self_us = (if self < 0.0 then 0.0 else self);
    children;
  }

let roots t = (freeze t.root).children
let total_us t = List.fold_left (fun acc n -> acc +. n.total_us) 0.0 (roots t)

let top ?(n = 10) t =
  let agg : (string, int ref * float ref * float ref) Hashtbl.t =
    Hashtbl.create 32
  in
  let rec walk node =
    let calls, total, self =
      match Hashtbl.find_opt agg node.key with
      | Some cell -> cell
      | None ->
        let cell = (ref 0, ref 0.0, ref 0.0) in
        Hashtbl.add agg node.key cell;
        cell
    in
    calls := !calls + node.calls;
    total := !total +. node.total_us;
    self := !self +. node.self_us;
    List.iter walk node.children
  in
  List.iter walk (roots t);
  let rows =
    Hashtbl.fold
      (fun key (calls, total, self) acc ->
        (key, !calls, !total, !self) :: acc)
      agg []
  in
  let rows =
    List.sort
      (fun (ka, _, _, sa) (kb, _, _, sb) ->
        match compare sb sa with 0 -> compare ka kb | c -> c)
      rows
  in
  List.filteri (fun i _ -> i < n) rows

let collapsed t =
  let buf = Buffer.create 1024 in
  let lines = ref [] in
  let rec walk path node =
    let path = if path = "" then node.key else path ^ ";" ^ node.key in
    let self = int_of_float (Float.round node.self_us) in
    if self > 0 then lines := Printf.sprintf "%s %d" path self :: !lines;
    List.iter (walk path) node.children
  in
  List.iter (walk "") (roots t);
  List.iter
    (fun l ->
      Buffer.add_string buf l;
      Buffer.add_char buf '\n')
    (List.sort compare !lines);
  Buffer.contents buf

let pp_top ?(n = 10) ppf t =
  let rows = top ~n t in
  let total = total_us t in
  Format.fprintf ppf "@[<v>%-42s %8s %12s %12s %6s@ " "phase" "calls"
    "total ms" "self ms" "self%";
  List.iter
    (fun (key, calls, total_ms, self_ms) ->
      let pct = if total > 0.0 then 100.0 *. self_ms /. total else 0.0 in
      Format.fprintf ppf "%-42s %8d %12.3f %12.3f %5.1f%%@ " key calls
        (total_ms /. 1000.0) (self_ms /. 1000.0) pct)
    rows;
  Format.fprintf ppf "traced total: %.3f ms@]" (total /. 1000.0)
