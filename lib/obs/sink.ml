type level =
  | Spans
  | Full

type t = {
  emit : Event.t -> unit;
  flush : unit -> unit;
}

let make ?(flush = fun () -> ()) emit = { emit; flush }

(* Atomics so worker domains can read the installed-sink state without a
   data race; installation itself is a main-domain affair (see mli). *)
let current : t option Atomic.t = Atomic.make None
let current_level = Atomic.make Full

let flush_current () =
  match Atomic.get current with
  | Some s -> s.flush ()
  | None -> ()

let install ?(level = Full) s =
  flush_current ();
  Atomic.set current (Some s);
  Atomic.set current_level level

let uninstall () =
  flush_current ();
  Atomic.set current None;
  Atomic.set current_level Full

let installed () = Atomic.get current
let enabled () = Atomic.get current != None
let level () = Atomic.get current_level

let enabled_full () =
  match Atomic.get current with
  | Some _ -> Atomic.get current_level = Full
  | None -> false

let null = make (fun _ -> ())

let memory ?(capacity = 65536) () =
  let q : Event.t Queue.t = Queue.create () in
  let sink =
    make (fun e ->
      Queue.push e q;
      if Queue.length q > capacity then ignore (Queue.pop q))
  in
  sink, fun () -> List.of_seq (Queue.to_seq q)

let log_src = Logs.Src.create "obs" ~doc:"observability event bridge"

let logs_bridge ?(src = log_src) () =
  make (fun e ->
    Logs.debug ~src (fun m -> m "%a" Event.pp e))
