type level =
  | Spans
  | Full

type t = {
  emit : Event.t -> unit;
  flush : unit -> unit;
}

let make ?(flush = fun () -> ()) emit = { emit; flush }

let current : t option ref = ref None
let current_level = ref Full

let flush_current () =
  match !current with
  | Some s -> s.flush ()
  | None -> ()

let install ?(level = Full) s =
  flush_current ();
  current := Some s;
  current_level := level

let uninstall () =
  flush_current ();
  current := None;
  current_level := Full

let installed () = !current
let enabled () = !current != None
let level () = !current_level

let enabled_full () =
  match !current with
  | Some _ -> !current_level = Full
  | None -> false

let null = make (fun _ -> ())

let memory ?(capacity = 65536) () =
  let q : Event.t Queue.t = Queue.create () in
  let sink =
    make (fun e ->
      Queue.push e q;
      if Queue.length q > capacity then ignore (Queue.pop q))
  in
  sink, fun () -> List.of_seq (Queue.to_seq q)

let log_src = Logs.Src.create "obs" ~doc:"observability event bridge"

let logs_bridge ?(src = log_src) () =
  make (fun e ->
    Logs.debug ~src (fun m -> m "%a" Event.pp e))
