type value =
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool

type attr = string * value

type t =
  | Span_begin of { name : string; ts : float; attrs : attr list }
  | Span_end of { name : string; ts : float; attrs : attr list }
  | Instant of { name : string; ts : float; attrs : attr list }
  | Counter of { name : string; ts : float; value : int }

let name = function
  | Span_begin { name; _ }
  | Span_end { name; _ }
  | Instant { name; _ }
  | Counter { name; _ } ->
    name

let ts = function
  | Span_begin { ts; _ } | Span_end { ts; _ } | Instant { ts; _ }
  | Counter { ts; _ } ->
    ts

let pp_value ppf = function
  | Str s -> Format.pp_print_string ppf s
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.fprintf ppf "%g" f
  | Bool b -> Format.pp_print_bool ppf b

let pp_attrs ppf = function
  | [] -> ()
  | attrs ->
    Format.fprintf ppf " {%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (fun ppf (k, v) -> Format.fprintf ppf "%s=%a" k pp_value v))
      attrs

let pp ppf = function
  | Span_begin { name; ts; attrs } ->
    Format.fprintf ppf "[%.1f] B %s%a" ts name pp_attrs attrs
  | Span_end { name; ts; attrs } ->
    Format.fprintf ppf "[%.1f] E %s%a" ts name pp_attrs attrs
  | Instant { name; ts; attrs } ->
    Format.fprintf ppf "[%.1f] I %s%a" ts name pp_attrs attrs
  | Counter { name; ts; value } ->
    Format.fprintf ppf "[%.1f] C %s=%d" ts name value
