(* Snapshot capture copies scalar totals and histogram summaries into
   plain immutable data so serialisation is divorced from the live
   registries.  JSON output is deterministic: the source lists arrive
   sorted by name and the schema has no optional keys. *)

type hist_summary = {
  h_count : int;
  h_min : int;
  h_max : int;
  h_sum : int;
  h_p50 : int;
  h_p90 : int;
  h_p99 : int;
  h_buckets : (int * int * int) list;
}

type t = {
  counters : (string * int) list;
  gauges : (string * int) list;
  hists : (string * hist_summary) list;
}

let summarise h =
  {
    h_count = Hist.count h;
    h_min = Hist.min_value h;
    h_max = Hist.max_value h;
    h_sum = Hist.sum h;
    h_p50 = Hist.p50 h;
    h_p90 = Hist.p90 h;
    h_p99 = Hist.p99 h;
    h_buckets = Hist.buckets h;
  }

let capture () =
  {
    counters = Metrics.totals ();
    gauges = Metrics.gauges ();
    hists = List.map (fun (k, h) -> k, summarise h) (Hist.all ());
  }

(* --- JSON ------------------------------------------------------------- *)

let add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_int_object buf entries =
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      add_json_string buf k;
      Buffer.add_char buf ':';
      Buffer.add_string buf (string_of_int v))
    entries;
  Buffer.add_char buf '}'

let add_hist buf (s : hist_summary) =
  Buffer.add_string buf "{\"count\":";
  Buffer.add_string buf (string_of_int s.h_count);
  Buffer.add_string buf ",\"min\":";
  Buffer.add_string buf (string_of_int s.h_min);
  Buffer.add_string buf ",\"max\":";
  Buffer.add_string buf (string_of_int s.h_max);
  Buffer.add_string buf ",\"sum\":";
  Buffer.add_string buf (string_of_int s.h_sum);
  Buffer.add_string buf ",\"p50\":";
  Buffer.add_string buf (string_of_int s.h_p50);
  Buffer.add_string buf ",\"p90\":";
  Buffer.add_string buf (string_of_int s.h_p90);
  Buffer.add_string buf ",\"p99\":";
  Buffer.add_string buf (string_of_int s.h_p99);
  Buffer.add_string buf ",\"buckets\":[";
  List.iteri
    (fun i (lo, hi, c) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "[%d,%d,%d]" lo hi c))
    s.h_buckets;
  Buffer.add_string buf "]}"

let to_json t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"counters\":";
  add_int_object buf t.counters;
  Buffer.add_string buf ",\"gauges\":";
  add_int_object buf t.gauges;
  Buffer.add_string buf ",\"histograms\":{";
  List.iteri
    (fun i (k, s) ->
      if i > 0 then Buffer.add_char buf ',';
      add_json_string buf k;
      Buffer.add_char buf ':';
      add_hist buf s)
    t.hists;
  Buffer.add_string buf "}}\n";
  Buffer.contents buf

(* --- Prometheus text format ------------------------------------------- *)

let sanitise name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let to_prometheus t =
  let buf = Buffer.create 4096 in
  let line name v =
    Buffer.add_string buf name;
    Buffer.add_char buf ' ';
    Buffer.add_string buf (string_of_int v);
    Buffer.add_char buf '\n'
  in
  List.iter
    (fun (k, v) ->
      let name = sanitise k in
      Buffer.add_string buf ("# TYPE " ^ name ^ " counter\n");
      line name v)
    t.counters;
  List.iter
    (fun (k, v) ->
      let name = sanitise k in
      Buffer.add_string buf ("# TYPE " ^ name ^ " gauge\n");
      line name v)
    t.gauges;
  List.iter
    (fun (k, s) ->
      let name = sanitise k in
      Buffer.add_string buf ("# TYPE " ^ name ^ " summary\n");
      let quantile q v =
        Buffer.add_string buf
          (Printf.sprintf "%s{quantile=\"%s\"} %d\n" name q v)
      in
      quantile "0.5" s.h_p50;
      quantile "0.9" s.h_p90;
      quantile "0.99" s.h_p99;
      line (name ^ "_sum") s.h_sum;
      line (name ^ "_count") s.h_count)
    t.hists;
  Buffer.contents buf

let write ~render path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render t))

let write_json path t = write ~render:to_json path t
let write_prometheus path t = write ~render:to_prometheus path t
