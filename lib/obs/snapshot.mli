(** Machine-readable telemetry export.

    A snapshot captures the process-wide telemetry state at one instant:
    every interned {!Metrics} counter total, every gauge, and a summary
    of every registered {!Hist} histogram (count/min/max/sum plus
    p50/p90/p99 and the non-empty buckets).  Two serialisations:

    - {!to_json}: a deterministic JSON object — keys sorted, fixed
      schema [{"counters": {..}, "gauges": {..}, "histograms": {..}}] —
      so snapshots diff cleanly and bench JSON stays comparable across
      runs;
    - {!to_prometheus}: Prometheus text exposition format (counters and
      gauges as-is, histograms as summaries with p50/p90/p99 quantiles),
      names sanitised to the [[a-zA-Z0-9_:]] alphabet.

    Capturing reads atomics and registry tables only; it does not stop
    recording, so capture after the work being measured (post
    [Domain.join] for worker telemetry). *)

type t

val capture : unit -> t
(** The current counters, gauges, and registered histograms. *)

val to_json : t -> string
(** Deterministic, self-contained JSON (ends with a newline). *)

val to_prometheus : t -> string
(** Prometheus text exposition format (ends with a newline). *)

val write_json : string -> t -> unit
(** [write_json path t] writes {!to_json} to [path] (truncating). *)

val write_prometheus : string -> t -> unit
