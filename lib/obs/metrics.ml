type counter = {
  key : string;
  id : int;
  total : int Atomic.t;
}

type scope = {
  sname : string;
  (* per-counter cells indexed by counter id; grown on demand.  A scope
     belongs to the domain that bumps it: cells are plain (unsynchronised)
     ints, made visible to other domains only by a happens-before edge
     such as [Domain.join] (see the mli). *)
  mutable cells : int array;
}

type attachment = scope list

(* Interning is rare (module initialisation, scope-name reuse) but may
   happen from worker domains, so the registries are mutex-protected.
   Bumps never take the lock. *)
let registry_lock = Mutex.create ()
let registry : (string, counter) Hashtbl.t = Hashtbl.create 32
let next_id = ref 0

let counter key =
  Mutex.protect registry_lock (fun () ->
    match Hashtbl.find_opt registry key with
    | Some c -> c
    | None ->
      let c = { key; id = !next_id; total = Atomic.make 0 } in
      incr next_id;
      Hashtbl.add registry key c;
      c)

let counter_name c = c.key

let scope sname = { sname; cells = [||] }
let scope_name s = s.sname

let rec next_pow2 k n = if k > n then k else next_pow2 (k * 2) n

(* Bumps sit on memoization fast paths (millions of calls per analysis),
   so the common shapes — no scope, one scope — must stay branch-cheap
   and allocation-free; the cell array is grown out of line. *)
let[@inline never] grow_and_bump s id n =
  let len = Array.length s.cells in
  let grown = Array.make (next_pow2 16 id) 0 in
  Array.blit s.cells 0 grown 0 len;
  s.cells <- grown;
  grown.(id) <- grown.(id) + n

let[@inline] bump s id n =
  let cells = s.cells in
  if id < Array.length cells then
    Array.unsafe_set cells id (Array.unsafe_get cells id + n)
  else grow_and_bump s id n

let rec bump_rest ss id n =
  match ss with
  | [] -> ()
  | s :: rest ->
    bump s id n;
    bump_rest rest id n

let[@inline] bump_all ss id n =
  match ss with
  | [] -> ()
  | [ s ] -> bump s id n
  | s :: rest ->
    bump s id n;
    bump_rest rest id n

(* The active-scope stack is domain-local: each domain pushes and reads
   only its own stack, so worker-domain instrumentation cannot race. *)
let stack_key : scope list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let in_scope s f =
  let stack = Domain.DLS.get stack_key in
  stack := s :: !stack;
  Fun.protect
    ~finally:(fun () ->
      match !stack with
      | _ :: rest -> stack := rest
      | [] -> ())
    f

let active () = !(Domain.DLS.get stack_key)
let attach () = active ()

let[@inline] add c n =
  ignore (Atomic.fetch_and_add c.total n);
  let stack = !(Domain.DLS.get stack_key) in
  bump_all stack c.id n

let[@inline] incr c = add c 1

let[@inline] add_attached att c n =
  ignore (Atomic.fetch_and_add c.total n);
  match att with
  | [] -> bump_all !(Domain.DLS.get stack_key) c.id n
  | ss -> bump_all ss c.id n

let total c = Atomic.get c.total
let reset_total c = Atomic.set c.total 0

let read s c = if c.id < Array.length s.cells then s.cells.(c.id) else 0

let snapshot s =
  Mutex.protect registry_lock (fun () ->
    Hashtbl.fold
      (fun key c acc ->
        let v = read s c in
        if v <> 0 then (key, v) :: acc else acc)
      registry [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let totals () =
  Mutex.protect registry_lock (fun () ->
    Hashtbl.fold
      (fun key c acc -> (key, Atomic.get c.total) :: acc)
      registry [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* gauges *)

type gauge = {
  gkey : string;
  value : int Atomic.t;
}

let gauge_registry : (string, gauge) Hashtbl.t = Hashtbl.create 16

let gauge gkey =
  Mutex.protect registry_lock (fun () ->
    match Hashtbl.find_opt gauge_registry gkey with
    | Some g -> g
    | None ->
      let g = { gkey; value = Atomic.make 0 } in
      Hashtbl.add gauge_registry gkey g;
      g)

let gauge_name g = g.gkey
let set g v = Atomic.set g.value v
let get g = Atomic.get g.value

let gauges () =
  Mutex.protect registry_lock (fun () ->
    Hashtbl.fold
      (fun key g acc -> (key, Atomic.get g.value) :: acc)
      gauge_registry [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
