type counter = {
  key : string;
  id : int;
  mutable total : int;
}

type scope = {
  sname : string;
  (* per-counter cells indexed by counter id; grown on demand *)
  mutable cells : int array;
}

type attachment = scope list

let registry : (string, counter) Hashtbl.t = Hashtbl.create 32
let next_id = ref 0

let counter key =
  match Hashtbl.find_opt registry key with
  | Some c -> c
  | None ->
    let c = { key; id = !next_id; total = 0 } in
    incr next_id;
    Hashtbl.add registry key c;
    c

let counter_name c = c.key

let scope sname = { sname; cells = [||] }
let scope_name s = s.sname

let rec next_pow2 k n = if k > n then k else next_pow2 (k * 2) n

(* Bumps sit on memoization fast paths (millions of calls per analysis),
   so the common shapes — no scope, one scope — must stay branch-cheap
   and allocation-free; the cell array is grown out of line. *)
let[@inline never] grow_and_bump s id n =
  let len = Array.length s.cells in
  let grown = Array.make (next_pow2 16 id) 0 in
  Array.blit s.cells 0 grown 0 len;
  s.cells <- grown;
  grown.(id) <- grown.(id) + n

let[@inline] bump s id n =
  let cells = s.cells in
  if id < Array.length cells then
    Array.unsafe_set cells id (Array.unsafe_get cells id + n)
  else grow_and_bump s id n

let rec bump_rest ss id n =
  match ss with
  | [] -> ()
  | s :: rest ->
    bump s id n;
    bump_rest rest id n

let[@inline] bump_all ss id n =
  match ss with
  | [] -> ()
  | [ s ] -> bump s id n
  | s :: rest ->
    bump s id n;
    bump_rest rest id n

let stack : scope list ref = ref []

let in_scope s f =
  stack := s :: !stack;
  Fun.protect
    ~finally:(fun () ->
      match !stack with
      | _ :: rest -> stack := rest
      | [] -> ())
    f

let active () = !stack
let attach () = !stack

let[@inline] add c n =
  c.total <- c.total + n;
  bump_all !stack c.id n

let[@inline] incr c = add c 1

let[@inline] add_attached att c n =
  c.total <- c.total + n;
  match att with
  | [] -> bump_all !stack c.id n
  | ss -> bump_all ss c.id n

let total c = c.total
let reset_total c = c.total <- 0

let read s c = if c.id < Array.length s.cells then s.cells.(c.id) else 0

let snapshot s =
  Hashtbl.fold
    (fun key c acc ->
      let v = read s c in
      if v <> 0 then (key, v) :: acc else acc)
    registry []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* gauges *)

type gauge = {
  gkey : string;
  mutable value : int;
}

let gauge_registry : (string, gauge) Hashtbl.t = Hashtbl.create 16

let gauge gkey =
  match Hashtbl.find_opt gauge_registry gkey with
  | Some g -> g
  | None ->
    let g = { gkey; value = 0 } in
    Hashtbl.add gauge_registry gkey g;
    g

let gauge_name g = g.gkey
let set g v = g.value <- v
let get g = g.value

let gauges () =
  Hashtbl.fold (fun key g acc -> (key, g.value) :: acc) gauge_registry []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
