(** Chrome [trace_event] exporter.

    Serializes {!Event.t} streams into the JSON trace format understood by
    [chrome://tracing] and {{:https://ui.perfetto.dev}Perfetto}: span
    begin/end map to ["B"]/["E"] duration events, instants to ["i"], and
    counter samples to ["C"] (rendered as a value track).

    Two output shapes are supported: {!Json} is the standard
    [{"traceEvents": [...]}] object; {!Jsonl} writes one event object per
    line (newline-delimited JSON, convenient for streaming and for
    [grep]-based post-processing; Perfetto accepts it as well). *)

type format =
  | Json
  | Jsonl

val event_json : Event.t -> string
(** One event as a self-contained JSON object (no trailing newline). *)

val to_string : ?format:format -> Event.t list -> string
(** Serializes a complete trace. *)

val file : ?format:format -> string -> Sink.t
(** [file path] is a sink that records every event and writes the complete
    trace to [path] on [flush] (truncating; flushing repeatedly rewrites
    the file with the events seen so far).  The default {!format} is
    chosen from the file extension: [.jsonl] selects {!Jsonl}, anything
    else {!Json}. *)
