let enabled = Sink.enabled

let clock : (unit -> float) ref = ref (fun () -> Unix.gettimeofday () *. 1e6)

let last_ts = ref neg_infinity

let set_clock f =
  clock := f;
  last_ts := neg_infinity

let now_us () =
  let t = !clock () in
  let t = if t < !last_ts then !last_ts else t in
  last_ts := t;
  t

let emit e =
  match Sink.installed () with
  | Some s -> s.Sink.emit e
  | None -> ()

let span_begin ?(attrs = []) name =
  if Sink.enabled () then
    emit (Event.Span_begin { name; ts = now_us (); attrs })

let span_end ?(attrs = []) name =
  if Sink.enabled () then
    emit (Event.Span_end { name; ts = now_us (); attrs })

let with_span ?(attrs = []) ?end_attrs name f =
  match Sink.installed () with
  | None -> f ()
  | Some s ->
    s.Sink.emit (Event.Span_begin { name; ts = now_us (); attrs });
    Fun.protect
      ~finally:(fun () ->
        let attrs =
          match end_attrs with
          | None -> []
          | Some g -> g ()
        in
        s.Sink.emit (Event.Span_end { name; ts = now_us (); attrs }))
      f

let instant ?(attrs = []) name =
  if Sink.enabled_full () then
    emit (Event.Instant { name; ts = now_us (); attrs })

let counter name value =
  if Sink.enabled_full () then
    emit (Event.Counter { name; ts = now_us (); value })
