(* Log-bucketed histograms in the HDR style: values below 16 get their
   own bucket; above that each power-of-two octave is split into 8
   linear sub-buckets, bounding the relative bucket width at 12.5%.
   All arithmetic is on non-negative ints, so the table needs
   (62+1)*8 = 504 cells on a 64-bit build — small enough to keep one
   flat array per histogram and make merging a plain element-wise
   addition. *)

let sub_bits = 3
let sub_count = 1 lsl sub_bits (* 8 *)
let octaves = Sys.int_size - 1 (* value bits of a non-negative int *)
let n_buckets = (octaves - sub_bits + 1) * sub_count

type t = {
  buckets : int array;
  mutable count : int;
  mutable sum : int;
  mutable min_v : int; (* valid iff count > 0 *)
  mutable max_v : int;
}

let make () =
  { buckets = Array.make n_buckets 0; count = 0; sum = 0; min_v = 0; max_v = 0 }

(* Position of the highest set bit; [v] must be positive. *)
let msb v =
  let rec go v acc = if v > 1 then go (v lsr 1) (acc + 1) else acc in
  go v 0

let bucket_of v =
  if v < sub_count * 2 then v
  else begin
    let exp = msb v - sub_bits in
    (* top sub_bits+1 bits of v: in [sub_count, 2*sub_count) *)
    let m = v lsr exp in
    (exp * sub_count) + m
  end

(* Inclusive value range covered by bucket [i]; inverse of [bucket_of]. *)
let bucket_bounds i =
  if i < sub_count * 2 then i, i
  else begin
    let exp = (i lsr sub_bits) - 1 in
    let m = sub_count + (i land (sub_count - 1)) in
    m lsl exp, ((m + 1) lsl exp) - 1
  end

let record h v =
  let v = if v < 0 then 0 else v in
  let i = bucket_of v in
  h.buckets.(i) <- h.buckets.(i) + 1;
  h.sum <- h.sum + v;
  if h.count = 0 then begin
    h.min_v <- v;
    h.max_v <- v
  end
  else begin
    if v < h.min_v then h.min_v <- v;
    if v > h.max_v then h.max_v <- v
  end;
  h.count <- h.count + 1

let count h = h.count
let sum h = h.sum
let min_value h = if h.count = 0 then 0 else h.min_v
let max_value h = if h.count = 0 then 0 else h.max_v

let percentile h p =
  if h.count = 0 then 0
  else begin
    let p = if p < 0.0 then 0.0 else if p > 100.0 then 100.0 else p in
    let rank =
      let r = int_of_float (ceil (p /. 100.0 *. float_of_int h.count)) in
      if r < 1 then 1 else r
    in
    let rec walk i seen =
      if i >= n_buckets then max_value h
      else begin
        let seen = seen + h.buckets.(i) in
        if seen >= rank then begin
          let _, hi = bucket_bounds i in
          min hi h.max_v
        end
        else walk (i + 1) seen
      end
    in
    walk 0 0
  end

let p50 h = percentile h 50.0
let p90 h = percentile h 90.0
let p99 h = percentile h 99.0

let merge_into ~into src =
  if src.count > 0 then begin
    for i = 0 to n_buckets - 1 do
      if src.buckets.(i) <> 0 then
        into.buckets.(i) <- into.buckets.(i) + src.buckets.(i)
    done;
    if into.count = 0 then begin
      into.min_v <- src.min_v;
      into.max_v <- src.max_v
    end
    else begin
      if src.min_v < into.min_v then into.min_v <- src.min_v;
      if src.max_v > into.max_v then into.max_v <- src.max_v
    end;
    into.count <- into.count + src.count;
    into.sum <- into.sum + src.sum
  end

let merge a b =
  let h = make () in
  merge_into ~into:h a;
  merge_into ~into:h b;
  h

let clear h =
  Array.fill h.buckets 0 n_buckets 0;
  h.count <- 0;
  h.sum <- 0;
  h.min_v <- 0;
  h.max_v <- 0

let buckets h =
  let out = ref [] in
  for i = n_buckets - 1 downto 0 do
    if h.buckets.(i) <> 0 then begin
      let lo, hi = bucket_bounds i in
      out := (lo, hi, h.buckets.(i)) :: !out
    end
  done;
  !out

(* --- registry --------------------------------------------------------- *)

let registry : (string, t) Hashtbl.t = Hashtbl.create 32
let registry_lock = Mutex.create ()

let hist name =
  Mutex.lock registry_lock;
  let h =
    match Hashtbl.find_opt registry name with
    | Some h -> h
    | None ->
      let h = make () in
      Hashtbl.add registry name h;
      h
  in
  Mutex.unlock registry_lock;
  h

let all () =
  Mutex.lock registry_lock;
  let entries = Hashtbl.fold (fun k h acc -> (k, h) :: acc) registry [] in
  Mutex.unlock registry_lock;
  List.sort (fun (a, _) (b, _) -> compare a b) entries

let clear_all () =
  Mutex.lock registry_lock;
  Hashtbl.iter (fun _ h -> clear h) registry;
  Mutex.unlock registry_lock

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled v = Atomic.set enabled_flag v

(* --- rendering -------------------------------------------------------- *)

let pp ppf h =
  if h.count = 0 then Format.fprintf ppf "(empty)"
  else begin
    let bs = buckets h in
    let widest = List.fold_left (fun acc (_, _, c) -> max acc c) 0 bs in
    Format.fprintf ppf "@[<v>";
    List.iter
      (fun (lo, hi, c) ->
        let bar_w =
          let w = c * 40 / widest in
          if w < 1 then 1 else w
        in
        Format.fprintf ppf "%12d..%-12d %8d %s@ " lo hi c
          (String.make bar_w '#'))
      bs;
    Format.fprintf ppf "count %d  p50 %d  p90 %d  p99 %d  max %d@]" h.count
      (p50 h) (p90 h) (p99 h) (max_value h)
  end
