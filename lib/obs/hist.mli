(** Log-bucketed value histograms (latency distributions).

    A histogram counts integer samples — nanoseconds by convention for
    durations, but any non-negative unit works (residuals, work items) —
    into buckets whose width grows geometrically: exact up to 15, then
    each power-of-two octave split into [8] linear sub-buckets, so any
    recorded value lands in a bucket whose bounds are within 12.5% of it.
    Percentile queries walk the bucket table and return the bucket's
    upper bound clamped to the exact recorded maximum, which makes
    [percentile h 100.0 = max_value h] and single-sample histograms
    exact.

    Merging adds bucket counts (and combines min/max/sum), so it is
    associative and commutative — per-worker histograms recorded on
    separate domains can be folded into one distribution after the
    domains are joined, in any order, with the same result.

    {b Cost discipline.}  Recording is an array increment plus a handful
    of bit operations and never allocates; still, producing the {e
    sample} usually costs a clock read, so instrumented code guards with
    {!enabled} — the process-wide histogram switch, off by default —
    exactly as tracing code guards with [Trace.enabled].  With the
    switch off an instrumented hot path pays one atomic load per probe.

    {b Domain safety.}  Bucket cells are plain ints: a [t] must be
    recorded into by one domain at a time; cross-domain aggregation goes
    through {!merge_into} after a happens-before edge (the
    [Explore.Pool] pattern: one local histogram per worker, merged after
    the join).  The interning registry itself is mutex-protected. *)

type t

val make : unit -> t
(** A fresh, unregistered histogram (all zero). *)

val hist : string -> t
(** [hist name] interns (or retrieves) the registered histogram [name];
    registered histograms appear in {!all} and in [Snapshot] exports. *)

val enabled : unit -> bool
(** The process-wide recording switch (default [false]).  Purely
    advisory: {!record} itself always works — the switch exists so call
    sites can skip the clock reads that produce samples. *)

val set_enabled : bool -> unit

val record : t -> int -> unit
(** [record h v] counts sample [v]; negative values clamp to 0. *)

val count : t -> int
(** Samples recorded so far. *)

val sum : t -> int
val min_value : t -> int
(** Smallest recorded sample; [0] when empty. *)

val max_value : t -> int
(** Largest recorded sample; [0] when empty. *)

val percentile : t -> float -> int
(** [percentile h p] for [p] in [0.0 .. 100.0]: an upper bound on the
    value at rank [ceil (p/100 * count)], exact to the bucket width
    (≤ 12.5% relative error) and clamped to [max_value h].  [0] when
    empty. *)

val p50 : t -> int
val p90 : t -> int
val p99 : t -> int

val merge_into : into:t -> t -> unit
(** Adds [t]'s buckets and stats into [into] ([t] is unchanged). *)

val merge : t -> t -> t
(** A fresh histogram holding both distributions. *)

val clear : t -> unit

val buckets : t -> (int * int * int) list
(** Non-empty buckets in increasing value order, as
    [(lo, hi, count)] with [lo <= v <= hi] for every counted [v]. *)

val all : unit -> (string * t) list
(** Registered histograms, sorted by name. *)

val clear_all : unit -> unit
(** Clears every registered histogram (totals and buckets). *)

val pp : Format.formatter -> t -> unit
(** Multi-line ASCII rendering: one row per non-empty bucket with a
    proportional bar, plus a count/p50/p90/p99/max summary line. *)
