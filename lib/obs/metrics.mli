(** Named counters and gauges with per-scope attribution.

    The registry replaces ad-hoc global counter records: an instrumented
    module interns a {!counter} once and bumps it on the hot path; a
    consumer that wants to attribute work to one region (e.g. one engine
    analysis) opens a {!scope} and reads the counter's per-scope cell
    afterwards.  Unlike snapshot/diff over global monotone counters, scoped
    cells stay correct when several attributed regions interleave — work
    can be charged to the scope that created the data structure doing it
    (see {!attach}) even if it executes inside another scope's extent.

    Costs are tuned for hot paths: a counter bump with no active scope is
    one atomic increment plus a domain-local-storage read; with scopes it
    adds one array store per active scope.  Nothing allocates after
    counter interning.

    {b Domain safety.}  Global counter totals and gauges are atomics, so
    concurrent bumps from worker domains never lose updates.  The
    active-scope stack is domain-local ({!Domain.DLS}): a scope entered in
    one domain is invisible to the others, and worker instrumentation is
    charged to the worker's own scopes.  Scope {e cells} are intentionally
    unsynchronised — a scope must be bumped by a single domain; its cells
    may be read from another domain only after a happens-before edge such
    as [Domain.join] on the bumping domain (the pattern used by
    [Explore.Pool]: one scope per worker, snapshots read after the
    join). *)

type counter
(** A named, process-global monotone counter. *)

type scope
(** A named accumulation cell set.  Scopes are cheap to create and are
    meant to be short-lived (one per analysis / request). *)

type attachment = scope list
(** The scopes captured by {!attach} at data-structure creation time. *)

val counter : string -> counter
(** [counter key] interns (or retrieves) the counter named [key]. *)

val counter_name : counter -> string

val scope : string -> scope
(** [scope name] creates a fresh, inactive scope. *)

val scope_name : scope -> string

val in_scope : scope -> (unit -> 'a) -> 'a
(** [in_scope s f] runs [f] with [s] pushed on the calling domain's
    active-scope stack (exception-safe).  Counter bumps during the extent
    are charged to [s] (and to any enclosing active scopes).  Do not share
    one scope between concurrently running domains. *)

val active : unit -> attachment
(** The calling domain's active scope stack, innermost first. *)

val attach : unit -> attachment
(** Alias of {!active}, read at data-structure creation time and passed to
    {!add_attached} later: evaluations of a memoized structure are then
    charged to the scopes that built it, whenever they happen. *)

val add : counter -> int -> unit
(** Bump the global total and every active scope. *)

val incr : counter -> unit

val add_attached : attachment -> counter -> int -> unit
(** Like {!add}, but charge the captured [attachment] scopes instead of the
    active stack.  An empty attachment (structure created outside any
    scope, e.g. a shared input stream) falls back to the active stack, so
    shared-structure work is charged to whoever drives it. *)

val total : counter -> int
(** Process-global monotone total. *)

val reset_total : counter -> unit
(** Resets the global total to zero; scope cells are unaffected. *)

val read : scope -> counter -> int
(** Work charged to [scope] so far. *)

val snapshot : scope -> (string * int) list
(** All non-zero counters of a scope, sorted by name. *)

val totals : unit -> (string * int) list
(** Every interned counter with its process-global total (zeros
    included), sorted by name — the registry dump [Snapshot] exports. *)

(** {1 Gauges} *)

type gauge
(** A named last-value cell (no scoping). *)

val gauge : string -> gauge
val gauge_name : gauge -> string
val set : gauge -> int -> unit
val get : gauge -> int
val gauges : unit -> (string * int) list
(** All gauges with their current values, sorted by name. *)
