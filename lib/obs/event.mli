(** Structured observability events.

    An event is what instrumented code hands to the installed {!Sink}: the
    begin/end markers of a hierarchical span, a point-in-time instant, or a
    counter sample.  Timestamps are monotonic microseconds as produced by
    {!Trace.now_us}; attributes are flat key/value pairs. *)

type value =
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool

type attr = string * value

type t =
  | Span_begin of { name : string; ts : float; attrs : attr list }
  | Span_end of { name : string; ts : float; attrs : attr list }
      (** Closes the innermost open span of the same [name]; well-formed
          event sequences nest spans strictly (emitted via
          {!Trace.with_span}). *)
  | Instant of { name : string; ts : float; attrs : attr list }
  | Counter of { name : string; ts : float; value : int }

val name : t -> string
val ts : t -> float

val pp_value : Format.formatter -> value -> unit
val pp : Format.formatter -> t -> unit
(** One-line human-readable rendering (used by the [Logs] bridge sink). *)
