(** Span and counter emission API for instrumented code.

    All functions are no-ops (one ref read, no allocation) when no sink is
    installed.  Call sites that build attribute lists should still guard
    with {!enabled} so the list is not allocated on the disabled path:

    {[
      let run () = ...hot code... in
      if Obs.Trace.enabled () then
        Obs.Trace.with_span "busy_window"
          ~attrs:[ "element", Obs.Event.Str name ]
          ~end_attrs:(fun () -> [ "q_max", Obs.Event.Int !q ])
          run
      else run ()
    ]} *)

val enabled : unit -> bool
(** Same as {!Sink.enabled}. *)

val now_us : unit -> float
(** Monotonic timestamp in microseconds: the pluggable clock (default
    [Unix.gettimeofday], scaled) clamped to be non-decreasing. *)

val set_clock : (unit -> float) -> unit
(** Replaces the wall clock; the replacement must return microseconds.
    Useful for deterministic tests. *)

val span_begin : ?attrs:Event.attr list -> string -> unit
val span_end : ?attrs:Event.attr list -> string -> unit

val with_span :
  ?attrs:Event.attr list ->
  ?end_attrs:(unit -> Event.attr list) ->
  string ->
  (unit -> 'a) ->
  'a
(** [with_span name f] emits a begin event, runs [f], and emits the
    matching end event (also on exceptions).  [end_attrs] is evaluated
    after [f] so the end event can carry results computed inside the span.
    When no sink is installed, [f] is called directly. *)

val instant : ?attrs:Event.attr list -> string -> unit
(** Point event; only emitted at sink level {!Sink.Full}. *)

val counter : string -> int -> unit
(** Counter sample; only emitted at sink level {!Sink.Full}. *)
