(** Cost attribution from trace spans.

    [of_events] replays a recorded event stream (e.g. from
    [Sink.memory]) and folds the span begin/end pairs into a call tree
    whose nodes are keyed by span name refined with the most specific
    identifying attribute present ([element], [resource], [stream],
    [mode], [frame]) — so every busy-window analysis of ["T1"] lands on
    the ["busy_window:T1"] node rather than one undifferentiated
    ["busy_window"].  Each node carries the call count, total
    (inclusive) time and self time (total minus children); sibling
    calls with the same key aggregate into one node.

    Unbalanced streams are tolerated: an end without a begin is
    dropped, a begin without an end is closed at the last timestamp
    seen, so a truncated ring buffer still yields a (partially
    attributed) tree rather than an error.

    Two exports: {!top}, the N most expensive nodes by self time
    (the "where did the milliseconds go" table), and {!collapsed},
    Brendan Gregg's collapsed-stack text — one line per tree path,
    [root;child;leaf <self-µs>] — which any flamegraph renderer
    accepts.  Self times partition wall time: summing the self column
    (or the collapsed weights) reproduces the total traced time. *)

type node = {
  key : string;  (** span name, plus [:attr] refinement when present *)
  calls : int;
  total_us : float;  (** inclusive time across all calls *)
  self_us : float;  (** total minus time in child spans *)
  children : node list;  (** ordered by decreasing [total_us] *)
}

type t

val of_events : Event.t list -> t
(** Builds the cost tree from events in emission order; non-span events
    are ignored. *)

val roots : t -> node list
(** Top-level spans, ordered by decreasing total time. *)

val total_us : t -> float
(** Total traced time: the sum of root totals (= sum of all self
    times). *)

val top : ?n:int -> t -> (string * int * float * float) list
(** [top ~n t] aggregates nodes across the whole tree by key and
    returns the [n] (default 10) largest as
    [(key, calls, total_us, self_us)], ordered by decreasing self
    time.  Because a key can appear at several depths, its aggregated
    total may exceed wall time (recursion); self times never
    double-count. *)

val collapsed : t -> string
(** Collapsed-stack text: one [path;to;node <self-µs>] line per tree
    node with non-zero self time, rounded to integer microseconds.
    Lines are sorted, as flamegraph toolchains expect. *)

val pp_top : ?n:int -> Format.formatter -> t -> unit
(** Renders {!top} as an aligned table with a header and a totals
    line. *)
