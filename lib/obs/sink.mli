(** Pluggable event sinks.

    At most one sink is installed per process.  Instrumented code checks
    {!enabled} before building attributes, so with no sink installed the
    tracing layer costs one atomic read per probe and allocates nothing.

    Reading the installed state ({!enabled}, {!installed}) is safe from
    any domain; {!install} / {!uninstall} and event {e emission} belong to
    the main domain — built-in sinks do not serialise concurrent [emit]
    calls.  Worker-domain telemetry is either counted through the
    domain-safe {!Metrics} registry or emitted retroactively (with
    explicit timestamps) after the workers are joined, as [Explore.Pool]
    does. *)

type level =
  | Spans  (** span begin/end events only *)
  | Full  (** spans plus instants and counter samples *)

type t = {
  emit : Event.t -> unit;
  flush : unit -> unit;
}

val make : ?flush:(unit -> unit) -> (Event.t -> unit) -> t

val install : ?level:level -> t -> unit
(** Installs [t] as the process sink (replacing any previous one, which is
    flushed first).  [level] defaults to {!Full}. *)

val uninstall : unit -> unit
(** Flushes and removes the installed sink; a no-op when none is
    installed. *)

val installed : unit -> t option
val enabled : unit -> bool
val level : unit -> level
(** The installed level; {!Full} when no sink is installed. *)

val enabled_full : unit -> bool
(** A sink is installed at {!Full} level (instants/counters wanted). *)

(** {1 Built-in sinks} *)

val null : t
(** Drops everything (useful to measure instrumentation overhead). *)

val memory : ?capacity:int -> unit -> t * (unit -> Event.t list)
(** [memory ()] is an in-memory ring buffer keeping the most recent
    [capacity] (default [65536]) events, and a function returning them in
    emission order. *)

val logs_bridge : ?src:Logs.src -> unit -> t
(** Forwards every event as a [Logs.debug] message on [src] (default: the
    ["obs"] source). *)
