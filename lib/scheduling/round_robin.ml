module Count = Timebase.Count
module Interval = Timebase.Interval
module Stream = Event_model.Stream

type share = {
  task : Rt_task.t;
  quantum : int;
}

let response_time ?(window_limit = Busy_window.default_window_limit) ?q_limit
    ~shares ~task () =
  let own =
    match List.find_opt (fun s -> s.task == task) shares with
    | Some s -> s
    | None ->
      raise
        (Guard.Error.Error
           (Guard.Error.Invalid_spec
              {
                reason =
                  Printf.sprintf "Round_robin: task %s has no share"
                    task.Rt_task.name;
              }))
  in
  if own.quantum < 1 then
    raise
      (Guard.Error.Error
         (Guard.Error.Invalid_spec
            {
              reason =
                Printf.sprintf "Round_robin: quantum of %s < 1"
                  task.Rt_task.name;
            }));
  let others = List.filter (fun s -> s.task != task) shares in
  let c_plus = Interval.hi task.Rt_task.cet in
  let finish q =
    let demand = q * c_plus in
    let rounds = (demand + own.quantum - 1) / own.quantum in
    let interference_of w (s : share) =
      match Stream.eta_plus s.task.Rt_task.activation w with
      | Count.Fin n ->
        Stdlib.min (n * Interval.hi s.task.Rt_task.cet) (rounds * s.quantum)
      | Count.Inf ->
        (* the quantum bound still applies *)
        rounds * s.quantum
    in
    let step w =
      demand + List.fold_left (fun acc s -> acc + interference_of w s) 0 others
    in
    Busy_window.fixpoint ~limit:window_limit ~init:demand step
  in
  Busy_window.max_response ~label:task.Rt_task.name ?q_limit
    ~best_case:(Interval.lo task.Rt_task.cet)
    ~arrival:(Stream.delta_min task.Rt_task.activation)
    ~finish ()

let analyse ?window_limit ?q_limit shares =
  List.map
    (fun s ->
      s.task, response_time ?window_limit ?q_limit ~shares ~task:s.task ())
    shares
