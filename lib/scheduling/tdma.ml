module Interval = Timebase.Interval
module Stream = Event_model.Stream

type slot = {
  task : Rt_task.t;
  length : int;
}

let cycle_length slots =
  List.fold_left (fun acc s -> acc + s.length) 0 slots

let service ~slot ~cycle w =
  let effective = w - (cycle - slot) in
  if effective <= 0 then 0
  else ((effective / cycle) * slot) + Stdlib.min slot (effective mod cycle)

(* Least window w with service w >= demand, by exponential + binary
   search over the monotone service bound. *)
let invert_service ~slot ~cycle ~limit demand =
  if demand <= 0 then Some 0
  else begin
    let rec widen w = if service ~slot ~cycle w >= demand then Some w
      else if w > limit then None
      else widen (w * 2)
    in
    match widen 1 with
    | None -> None
    | Some hi ->
      let rec bisect lo hi =
        if hi - lo <= 1 then hi
        else
          let mid = lo + ((hi - lo) / 2) in
          if service ~slot ~cycle mid >= demand then bisect lo mid
          else bisect mid hi
      in
      Some (if service ~slot ~cycle 1 >= demand then 1 else bisect 1 hi)
  end

(* Best-case completion: the activation lands exactly on the task's slot
   start, consuming [k] complete slots plus a final partial one. *)
let best_case ~slot ~cycle c =
  let k = (c - 1) / slot in
  (k * cycle) + (c - (k * slot))

let response_time ?(window_limit = Busy_window.default_window_limit) ?q_limit
    ~slots ~task () =
  let own =
    match List.find_opt (fun s -> s.task == task) slots with
    | Some s -> s
    | None ->
      raise
        (Guard.Error.Error
           (Guard.Error.Invalid_spec
              {
                reason =
                  Printf.sprintf "Tdma: task %s owns no slot"
                    task.Rt_task.name;
              }))
  in
  if own.length < 1 then
    raise
      (Guard.Error.Error
         (Guard.Error.Invalid_spec
            {
              reason =
                Printf.sprintf "Tdma: slot length of %s < 1"
                  task.Rt_task.name;
            }));
  let cycle = cycle_length slots in
  let c_plus = Interval.hi task.Rt_task.cet in
  let finish q =
    invert_service ~slot:own.length ~cycle ~limit:window_limit (q * c_plus)
  in
  Busy_window.max_response ~label:task.Rt_task.name ?q_limit
    ~best_case:(best_case ~slot:own.length ~cycle (Interval.lo task.Rt_task.cet))
    ~arrival:(Stream.delta_min task.Rt_task.activation)
    ~finish ()

let analyse ?window_limit ?q_limit slots =
  List.map
    (fun s -> s.task, response_time ?window_limit ?q_limit ~slots ~task:s.task ())
    slots
