module Time = Timebase.Time
module Count = Timebase.Count
module Interval = Timebase.Interval
module Stream = Event_model.Stream

type outcome =
  | Bounded of Interval.t
  | Unbounded of string

let pp_outcome ppf = function
  | Bounded i -> Interval.pp ppf i
  | Unbounded reason -> Format.fprintf ppf "unbounded (%s)" reason

let response_interval = function
  | Bounded i -> Some i
  | Unbounded _ -> None

let default_window_limit = 1_000_000

let default_q_limit = 4096

(* Observability counters (global, monotone; snapshot and diff to
   attribute work to one analysis). *)
type counters = {
  busy_windows : int;
  window_iterations : int;
  activations : int;
}

let n_busy_windows = ref 0
let n_window_iterations = ref 0
let n_activations = ref 0

let counters () =
  {
    busy_windows = !n_busy_windows;
    window_iterations = !n_window_iterations;
    activations = !n_activations;
  }

let reset_counters () =
  n_busy_windows := 0;
  n_window_iterations := 0;
  n_activations := 0

let counters_diff a b =
  {
    busy_windows = a.busy_windows - b.busy_windows;
    window_iterations = a.window_iterations - b.window_iterations;
    activations = a.activations - b.activations;
  }

let fixpoint ~limit ~init f =
  let rec iterate w =
    incr n_window_iterations;
    if w > limit then None
    else
      let w' = f w in
      if w' < w then invalid_arg "Busy_window.fixpoint: non-monotone step"
      else if w' = w then Some w
      else iterate w'
  in
  iterate init

let max_response ?(q_limit = default_q_limit) ~best_case ~arrival ~finish () =
  incr n_busy_windows;
  let rec loop q worst =
    incr n_activations;
    if q > q_limit then
      Unbounded (Printf.sprintf "busy period exceeds %d activations" q_limit)
    else
      match arrival q with
      | Time.Inf ->
        (* fewer than q activations can share a busy period *)
        Bounded (Interval.make ~lo:best_case ~hi:worst)
      | Time.Fin arr -> begin
        match finish q with
        | None -> Unbounded "busy window diverges (overload)"
        | Some fin ->
          let worst = Stdlib.max worst (fin - arr) in
          let continue_period =
            match arrival (q + 1) with
            | Time.Inf -> false
            | Time.Fin next -> fin > next
          in
          if continue_period then loop (q + 1) worst
          else Bounded (Interval.make ~lo:best_case ~hi:worst)
      end
  in
  loop 1 0

let max_backlog ?(q_limit = default_q_limit) ~arrival ~arrivals_in ~finish () =
  incr n_busy_windows;
  let rec loop q worst =
    incr n_activations;
    if q > q_limit then
      Error (Printf.sprintf "busy period exceeds %d activations" q_limit)
    else
      match arrival q with
      | Time.Inf -> Ok worst
      | Time.Fin _ -> begin
        match finish q with
        | None -> Error "busy window diverges (overload)"
        | Some fin -> begin
          match arrivals_in fin with
          | Error _ as e -> e
          | Ok arrived ->
            let worst = Stdlib.max worst (arrived - (q - 1)) in
            let continue_period =
              match arrival (q + 1) with
              | Time.Inf -> false
              | Time.Fin next -> fin > next
            in
            if continue_period then loop (q + 1) worst else Ok worst
        end
      end
  in
  loop 1 1

let interference ~tasks ~window =
  let rec total = function
    | [] -> Ok 0
    | (task : Rt_task.t) :: rest -> begin
      match Stream.eta_plus task.activation window with
      | Count.Fin n -> begin
        match total rest with
        | Ok acc -> Ok (acc + (n * Interval.hi task.cet))
        | Error _ as e -> e
      end
      | Count.Inf ->
        Error
          (Printf.sprintf "unbounded arrivals of %s in window %d" task.name
             window)
    end
  in
  total tasks

let higher_priority ~than tasks =
  List.filter
    (fun (t : Rt_task.t) -> t != than && t.priority <= than.Rt_task.priority)
    tasks

let lower_priority ~than tasks =
  List.filter (fun (t : Rt_task.t) -> t.priority > than.Rt_task.priority) tasks
