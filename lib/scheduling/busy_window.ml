module Time = Timebase.Time
module Count = Timebase.Count
module Interval = Timebase.Interval
module Stream = Event_model.Stream

type outcome =
  | Bounded of Interval.t
  | Unbounded of string

let pp_outcome ppf = function
  | Bounded i -> Interval.pp ppf i
  | Unbounded reason -> Format.fprintf ppf "unbounded (%s)" reason

let response_interval = function
  | Bounded i -> Some i
  | Unbounded _ -> None

let default_window_limit = 1_000_000

let default_q_limit = 4096

(* Observability counters, routed through the Obs.Metrics registry so
   work is attributable to the metrics scope of the enclosing analysis. *)
module Metrics = Obs.Metrics

let c_busy_windows = Metrics.counter "busy_window.windows"
let c_window_iterations = Metrics.counter "busy_window.window_iterations"
let c_activations = Metrics.counter "busy_window.activations"
let c_demand_evals = Metrics.counter "busy_window.demand_evals"
let c_demand_probes = Metrics.counter "busy_window.demand_probes"

type counters = {
  busy_windows : int;
  window_iterations : int;
  activations : int;
  demand_evals : int;
  demand_probes : int;
}

let counters_of read =
  {
    busy_windows = read c_busy_windows;
    window_iterations = read c_window_iterations;
    activations = read c_activations;
    demand_evals = read c_demand_evals;
    demand_probes = read c_demand_probes;
  }

let counters () = counters_of Metrics.total

let counters_in scope = counters_of (Metrics.read scope)

let reset_counters () =
  List.iter Metrics.reset_total
    [
      c_busy_windows; c_window_iterations; c_activations; c_demand_evals;
      c_demand_probes;
    ]

let counters_diff a b =
  {
    busy_windows = a.busy_windows - b.busy_windows;
    window_iterations = a.window_iterations - b.window_iterations;
    activations = a.activations - b.activations;
    demand_evals = a.demand_evals - b.demand_evals;
    demand_probes = a.demand_probes - b.demand_probes;
  }

let fixpoint ~limit ~init f =
  let rec iterate w =
    Metrics.incr c_window_iterations;
    Guard.tick ();
    if w > limit then None
    else
      let w' = f w in
      if w' < w then invalid_arg "Busy_window.fixpoint: non-monotone step"
      else if w' = w then Some w
      else iterate w'
  in
  iterate init

(* Wraps one busy-window computation in a span carrying the element name,
   the q-range explored and the fixpoint/activation work it cost.  The
   disabled path runs [run] directly: no attribute lists are built and
   nothing is allocated. *)
let spanned ?label ~q_reached run =
  if Obs.Trace.enabled () then begin
    let w0 = Metrics.total c_window_iterations in
    let a0 = Metrics.total c_activations in
    Obs.Trace.with_span "busy_window"
      ~attrs:
        [ "element", Obs.Event.Str (Option.value label ~default:"<anon>") ]
      ~end_attrs:(fun () ->
        [
          "q_max", Obs.Event.Int !q_reached;
          "window_iterations",
          Obs.Event.Int (Metrics.total c_window_iterations - w0);
          "activations", Obs.Event.Int (Metrics.total c_activations - a0);
        ])
      run
  end
  else run ()

let max_response ?label ?(q_limit = default_q_limit) ?record ~best_case
    ~arrival ~finish () =
  Metrics.incr c_busy_windows;
  if Guard.Inject.armed () then
    Guard.Inject.fire
      ("busy_window:" ^ Option.value label ~default:"<anon>");
  let q_reached = ref 0 in
  let rec loop q worst =
    Metrics.incr c_activations;
    Guard.tick ();
    q_reached := q;
    if q > q_limit then
      Unbounded (Printf.sprintf "busy period exceeds %d activations" q_limit)
    else
      match arrival q with
      | Time.Inf ->
        (* fewer than q activations can share a busy period *)
        Bounded (Interval.make ~lo:best_case ~hi:worst)
      | Time.Fin arr -> begin
        match finish q with
        | None -> Unbounded "busy window diverges (overload)"
        | Some fin ->
          (match record with
           | None -> ()
           | Some f -> f ~q ~arr ~fin);
          let worst = Stdlib.max worst (fin - arr) in
          let continue_period =
            match arrival (q + 1) with
            | Time.Inf -> false
            | Time.Fin next -> fin > next
          in
          if continue_period then loop (q + 1) worst
          else Bounded (Interval.make ~lo:best_case ~hi:worst)
      end
  in
  spanned ?label ~q_reached (fun () -> loop 1 0)

(* Accumulates the per-activation (arrival, completion) pairs emitted by
   [max_response ~record] into an [Event_model.Propagation.profile].  The
   pairs arrive in increasing q with monotone columns (arrivals are a
   delta_min curve; completions are least fixed points of per-q window
   equations that grow pointwise with q), which is exactly the profile
   constructor's contract. *)
let profile_collector () =
  let arrs = ref [] and fins = ref [] in
  let record ~q:_ ~arr ~fin =
    arrs := arr :: !arrs;
    fins := fin :: !fins
  in
  let get () =
    match !arrs with
    | [] -> None
    | _ ->
      Some
        (Event_model.Propagation.profile
           ~arrivals:(Array.of_list (List.rev !arrs))
           ~finishes:(Array.of_list (List.rev !fins)))
  in
  record, get

let max_backlog ?label ?(q_limit = default_q_limit) ~arrival ~arrivals_in
    ~finish () =
  Metrics.incr c_busy_windows;
  let q_reached = ref 0 in
  let rec loop q worst =
    Metrics.incr c_activations;
    Guard.tick ();
    q_reached := q;
    if q > q_limit then
      Error (Printf.sprintf "busy period exceeds %d activations" q_limit)
    else
      match arrival q with
      | Time.Inf -> Ok worst
      | Time.Fin _ -> begin
        match finish q with
        | None -> Error "busy window diverges (overload)"
        | Some fin -> begin
          match arrivals_in fin with
          | Error _ as e -> e
          | Ok arrived ->
            let worst = Stdlib.max worst (arrived - (q - 1)) in
            let continue_period =
              match arrival (q + 1) with
              | Time.Inf -> false
              | Time.Fin next -> fin > next
            in
            if continue_period then loop (q + 1) worst else Ok worst
        end
      end
  in
  spanned ?label ~q_reached (fun () -> loop 1 1)

(* SoA interference kernel: the per-probe work of [interference] —
   walking a task list, boxing every arrival count, restarting the
   eta_plus pseudo-inversion from scratch — dominates busy-window
   convergence on deep systems.  A [Demand.t] snapshots the
   higher-priority set once (activation curves, C+ values) and keeps a
   resumable search hint per task: convergence loops probe the same
   curves with monotonically growing windows, so each search can start
   where the previous one ended instead of re-running the exponential
   phase (satellite of ISSUE 6: hoisting repeated identical probes). *)
module Demand = struct
  module Curve = Event_model.Curve

  type t = {
    curves : Curve.t array;  (* activation delta_min curves *)
    cets : int array;  (* worst-case execution times (C+) *)
    names : string array;
    hints : int array;  (* resumable lower bounds for count_lt *)
  }

  let make tasks =
    let arr = Array.of_list tasks in
    {
      curves =
        Array.map
          (fun (t : Rt_task.t) -> Stream.delta_min_curve t.activation)
          arr;
      cets = Array.map (fun (t : Rt_task.t) -> Interval.hi t.cet) arr;
      names = Array.map (fun (t : Rt_task.t) -> t.name) arr;
      hints = Array.make (Array.length arr) 1;
    }

  let size t = Array.length t.cets
  let name t i = t.names.(i)

  let count t ~i ~window =
    if window <= 0 then 0
    else begin
      Metrics.incr c_demand_probes;
      match
        Curve.count_lt_packed t.curves.(i) ~lo:t.hints.(i) ~limit:window
      with
      | c ->
        t.hints.(i) <- c + 1;
        c
      | exception Curve.Unbounded _ -> -1
    end

  let eval t ~window =
    Metrics.incr c_demand_evals;
    let n = Array.length t.cets in
    let rec go i acc =
      if i >= n then Ok acc
      else begin
        let c = count t ~i ~window in
        if c < 0 then Error i else go (i + 1) (acc + (c * t.cets.(i)))
      end
    in
    go 0 0
end

let interference ~tasks ~window =
  let rec total = function
    | [] -> Ok 0
    | (task : Rt_task.t) :: rest -> begin
      match Stream.eta_plus task.activation window with
      | Count.Fin n -> begin
        match total rest with
        | Ok acc -> Ok (acc + (n * Interval.hi task.cet))
        | Error _ as e -> e
      end
      | Count.Inf ->
        Error
          (Printf.sprintf "unbounded arrivals of %s in window %d" task.name
             window)
    end
  in
  total tasks

let higher_priority ~than tasks =
  List.filter
    (fun (t : Rt_task.t) -> t != than && t.priority <= than.Rt_task.priority)
    tasks

let lower_priority ~than tasks =
  List.filter (fun (t : Rt_task.t) -> t.priority > than.Rt_task.priority) tasks
