module Interval = Timebase.Interval
module Stream = Event_model.Stream

type t = {
  period : int;
  budget : int;
}

let make ~period ~budget =
  if period < 1 then invalid_arg "Periodic_resource.make: period < 1";
  if budget < 1 || budget > period then
    invalid_arg "Periodic_resource.make: need 1 <= budget <= period";
  { period; budget }

(* Shin & Lee supply bound function: the worst window starts right after
   a budget was delivered as early as possible, yielding an initial
   blackout of 2 (period - budget). *)
let supply r t =
  let blackout = r.period - r.budget in
  if t <= blackout then 0
  else begin
    let k = (t - blackout) / r.period in
    let partial = t - blackout - (k * r.period) - blackout in
    (k * r.budget) + Stdlib.max 0 (Stdlib.min r.budget partial)
  end

let supply_inverse r demand =
  if demand <= 0 then 0
  else begin
    (* supply grows by [budget] every [period]: jump close, then walk *)
    let blackout = r.period - r.budget in
    let rec walk t =
      if supply r t >= demand then t else walk (t + 1)
    in
    walk (blackout + (((demand - 1) / r.budget) * r.period))
  end

let utilization_percent r = 100 * r.budget / r.period

let spp_response_time ?(window_limit = Busy_window.default_window_limit)
    ?q_limit ~resource ~task ~others () =
  let hp = Busy_window.higher_priority ~than:task others in
  let c_plus = Interval.hi task.Rt_task.cet in
  let finish q =
    let diverged = ref None in
    let own = q * c_plus in
    let step w =
      match Busy_window.interference ~tasks:hp ~window:w with
      | Ok demand -> supply_inverse resource (own + demand)
      | Error reason ->
        diverged := Some reason;
        w
    in
    match
      Busy_window.fixpoint ~limit:window_limit
        ~init:(supply_inverse resource own)
        step
    with
    | Some w when !diverged = None -> Some w
    | Some _ | None -> None
  in
  Busy_window.max_response ~label:task.Rt_task.name ?q_limit
    ~best_case:(Interval.lo task.Rt_task.cet)
    ~arrival:(Stream.delta_min task.Rt_task.activation)
    ~finish ()

let edf_schedulable ?window_limit ~resource tasks =
  (* Scan windows starting from the supply-stretched plain busy period,
     and keep doubling the horizon until the supply-demand margin stops
     shrinking — once the supply slope dominates the demand slope the
     margin grows monotonically and no later window can violate. *)
  let limit =
    match window_limit with
    | Some l -> l
    | None -> Busy_window.default_window_limit
  in
  match Edf.busy_period ~window_limit:limit tasks with
  | Error _ as e -> e
  | Ok plain ->
    let margin t =
      match Edf.demand_bound tasks t with
      | Ok demand -> Ok (supply resource t - demand)
      | Error _ as e -> e
    in
    let rec scan t horizon =
      if t > horizon then begin
        match margin horizon, margin (2 * horizon) with
        | Ok m1, Ok m2 when m2 >= m1 -> Ok ()
        | Ok _, Ok _ ->
          if 2 * horizon > limit then
            Error "margin still shrinking at the window limit (overload?)"
          else scan (horizon + 1) (2 * horizon)
        | Error e, _ | _, Error e -> Error e
      end
      else begin
        match margin t with
        | Ok m when m >= 0 -> scan (t + 1) horizon
        | Ok _ ->
          Error
            (Printf.sprintf "demand exceeds supply in window %d" t)
        | Error _ as e -> e
      end
    in
    scan 1 (Stdlib.max resource.period (supply_inverse resource plain))

let bounded_under budget ~window_limit ~period tasks =
  let resource = make ~period ~budget in
  List.for_all
    (fun task ->
      let others = List.filter (fun t -> t != task) tasks in
      match
        spp_response_time ?window_limit:(Some window_limit) ~resource ~task
          ~others ()
      with
      | Busy_window.Bounded _ -> true
      | Busy_window.Unbounded _ -> false)
    tasks

let bisect_min_budget ~period good =
  if not (good period) then None
  else begin
    let rec search lo hi =
      (* invariant: not (good lo), good hi *)
      if hi - lo <= 1 then hi
      else
        let mid = lo + ((hi - lo) / 2) in
        if good mid then search lo mid else search mid hi
    in
    if good 1 then Some 1 else Some (search 1 period)
  end

let min_budget_spp ?(window_limit = Busy_window.default_window_limit) ~period
    tasks =
  bisect_min_budget ~period (fun budget ->
    bounded_under budget ~window_limit ~period tasks)

let min_budget_edf ?window_limit ~period tasks =
  bisect_min_budget ~period (fun budget ->
    edf_schedulable ?window_limit ~resource:(make ~period ~budget) tasks
    = Ok ())

let pp ppf r = Format.fprintf ppf "(Pi=%d, Theta=%d)" r.period r.budget
