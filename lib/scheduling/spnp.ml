module Count = Timebase.Count
module Interval = Timebase.Interval
module Stream = Event_model.Stream

let blocking ~task ~others =
  Busy_window.lower_priority ~than:task others
  |> List.fold_left
       (fun acc (t : Rt_task.t) -> Stdlib.max acc (Interval.hi t.cet))
       0

(* Completion of the q-th instance: it starts once blocking, the q-1 own
   predecessors, and all higher-priority arrivals (up to and including the
   start instant) are served, then transmits non-preemptively. *)
let completion ~window_limit ~task ~others q =
  let hp = Busy_window.higher_priority ~than:task others in
  let c_plus = Interval.hi task.Rt_task.cet in
  let block = blocking ~task ~others in
  let diverged = ref None in
  let own_queued = block + ((q - 1) * c_plus) in
  let step w =
    match Busy_window.interference ~tasks:hp ~window:(w + 1) with
    | Ok demand -> own_queued + demand
    | Error reason ->
      diverged := Some reason;
      w
  in
  match Busy_window.fixpoint ~limit:window_limit ~init:own_queued step with
  | Some start when !diverged = None -> Some (start + c_plus)
  | Some _ | None -> None

(* Kernel path: blocking and the higher-priority snapshot are hoisted
   out of the per-q loop, interference goes through the resumable
   [Busy_window.Demand] kernel, and the start-time fixpoint for q
   warm-starts at the (q-1)-th start time (sound for the same reason as
   in [Spp]: the queued-own term grows by [C+] per q, so the previous
   fixpoint satisfies [f_q w' = w' + C+ >= w'] and iteration from it
   still converges to the least fixed point). *)
let make_finish ~window_limit ~task ~others =
  if not !Event_model.Kernels.enabled then completion ~window_limit ~task ~others
  else begin
    let hp = Busy_window.higher_priority ~than:task others in
    let demand = Busy_window.Demand.make hp in
    let c_plus = Interval.hi task.Rt_task.cet in
    let block = blocking ~task ~others in
    let prev = ref 0 in
    fun q ->
      let own_queued = block + ((q - 1) * c_plus) in
      let diverged = ref false in
      let step w =
        match Busy_window.Demand.eval demand ~window:(w + 1) with
        | Ok d -> own_queued + d
        | Error _ ->
          diverged := true;
          w
      in
      match
        Busy_window.fixpoint ~limit:window_limit
          ~init:(Stdlib.max own_queued !prev) step
      with
      | Some start when not !diverged ->
        prev := start;
        Some (start + c_plus)
      | Some _ | None -> None
  end

let response_time ?(window_limit = Busy_window.default_window_limit) ?q_limit
    ?record ~task ~others () =
  Busy_window.max_response ~label:task.Rt_task.name ?q_limit ?record
    ~best_case:(Interval.lo task.Rt_task.cet)
    ~arrival:(Stream.delta_min task.Rt_task.activation)
    ~finish:(make_finish ~window_limit ~task ~others)
    ()

let backlog_bound ?(window_limit = Busy_window.default_window_limit) ?q_limit
    ~task ~others () =
  let activation = task.Rt_task.activation in
  let arrivals_in w =
    match Stream.eta_plus activation w with
    | Count.Fin n -> Ok n
    | Count.Inf ->
      Error
        (Printf.sprintf "unbounded arrivals of %s in window %d"
           task.Rt_task.name w)
  in
  Busy_window.max_backlog ~label:task.Rt_task.name ?q_limit
    ~arrival:(Stream.delta_min activation)
    ~arrivals_in
    ~finish:(make_finish ~window_limit ~task ~others)
    ()

let analyse ?window_limit ?q_limit tasks =
  List.map
    (fun task ->
      let others = List.filter (fun t -> t != task) tasks in
      task, response_time ?window_limit ?q_limit ~task ~others ())
    tasks

let analyse_profiled ?window_limit ?q_limit tasks =
  List.map
    (fun task ->
      let others = List.filter (fun t -> t != task) tasks in
      let record, profile = Busy_window.profile_collector () in
      let outcome =
        response_time ?window_limit ?q_limit ~record ~task ~others ()
      in
      let profile =
        match outcome with
        | Busy_window.Bounded _ -> profile ()
        | Busy_window.Unbounded _ -> None
      in
      task, outcome, profile)
    tasks
