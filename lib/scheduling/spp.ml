module Count = Timebase.Count
module Interval = Timebase.Interval
module Stream = Event_model.Stream

(* Completion time of the q-th activation within the level-i busy
   period: least fixed point of w = B + q C+ + interference(w), where B
   is an optional blocking term for shared resources (priority-inversion
   bound of the locking protocol in use). *)
let completion ~window_limit ~blocking ~task ~others q =
  let hp = Busy_window.higher_priority ~than:task others in
  let c_plus = Interval.hi task.Rt_task.cet in
  let diverged = ref None in
  let own = blocking + (q * c_plus) in
  let step w =
    match Busy_window.interference ~tasks:hp ~window:w with
    | Ok demand -> own + demand
    | Error reason ->
      diverged := Some reason;
      w
  in
  match Busy_window.fixpoint ~limit:window_limit ~init:own step with
  | Some w when !diverged = None -> Some w
  | Some _ | None -> None

(* Kernel path: the higher-priority set is snapshot once per analysed
   task (not once per q), the interference queries go through the
   resumable [Busy_window.Demand] kernel, and the fixpoint for the q-th
   activation warm-starts at the (q-1)-th completion [w'].  Warm start
   is sound: the window equation [f_q] is monotone with
   [f_q w' = own_q - own_(q-1) + w' >= w'] (since [w'] is the previous
   fixpoint of the same demand term and [own] grows by [C+] per q), so
   iterating from [w'] still reaches the least fixed point of [f_q] —
   every iterate stays [<= lfp] — while skipping the ramp-up from
   [own_q].  Query windows therefore never decrease across the whole
   busy period, which is exactly the hint contract of [Demand]. *)
let make_finish ~window_limit ~blocking ~task ~others =
  if not !Event_model.Kernels.enabled then
    completion ~window_limit ~blocking ~task ~others
  else begin
    let hp = Busy_window.higher_priority ~than:task others in
    let demand = Busy_window.Demand.make hp in
    let c_plus = Interval.hi task.Rt_task.cet in
    let prev = ref 0 in
    fun q ->
      let own = blocking + (q * c_plus) in
      let diverged = ref false in
      let step w =
        match Busy_window.Demand.eval demand ~window:w with
        | Ok d -> own + d
        | Error _ ->
          diverged := true;
          w
      in
      match
        Busy_window.fixpoint ~limit:window_limit
          ~init:(Stdlib.max own !prev) step
      with
      | Some w when not !diverged ->
        prev := w;
        Some w
      | Some _ | None -> None
  end

let response_time ?(window_limit = Busy_window.default_window_limit) ?q_limit
    ?record ?(blocking = 0) ~task ~others () =
  if blocking < 0 then
    raise
      (Guard.Error.Error
         (Guard.Error.Invalid_spec
            {
              reason =
                Printf.sprintf "Spp: negative blocking for %s"
                  task.Rt_task.name;
            }));
  Busy_window.max_response ~label:task.Rt_task.name ?q_limit ?record
    ~best_case:(Interval.lo task.Rt_task.cet)
    ~arrival:(Stream.delta_min task.Rt_task.activation)
    ~finish:(make_finish ~window_limit ~blocking ~task ~others)
    ()

let backlog_bound ?(window_limit = Busy_window.default_window_limit) ?q_limit
    ?(blocking = 0) ~task ~others () =
  let activation = task.Rt_task.activation in
  let arrivals_in w =
    match Stream.eta_plus activation w with
    | Count.Fin n -> Ok n
    | Count.Inf ->
      Error
        (Printf.sprintf "unbounded arrivals of %s in window %d"
           task.Rt_task.name w)
  in
  Busy_window.max_backlog ~label:task.Rt_task.name ?q_limit
    ~arrival:(Stream.delta_min activation)
    ~arrivals_in
    ~finish:(make_finish ~window_limit ~blocking ~task ~others)
    ()

let analyse ?window_limit ?q_limit tasks =
  List.map
    (fun task ->
      let others = List.filter (fun t -> t != task) tasks in
      task, response_time ?window_limit ?q_limit ~task ~others ())
    tasks

let analyse_profiled ?window_limit ?q_limit tasks =
  List.map
    (fun task ->
      let others = List.filter (fun t -> t != task) tasks in
      let record, profile = Busy_window.profile_collector () in
      let outcome =
        response_time ?window_limit ?q_limit ~record ~task ~others ()
      in
      let profile =
        match outcome with
        | Busy_window.Bounded _ -> profile ()
        | Busy_window.Unbounded _ -> None
      in
      task, outcome, profile)
    tasks
