(** Static-priority non-preemptive response-time analysis.

    Models priority-arbitrated, non-preemptive resources such as the CAN
    bus of the paper's example.  The q-th instance in the busy period
    {e starts} at the least fixed point of
    [w = B_i + (q-1) * C+_i + sum_{j in hp(i)} eta_plus_j(w + 1) * C+_j]
    where [B_i] is the longest lower-priority transmission that can block
    (non-preemptive arbitration), and finishes [C+_i] later.  The [w + 1]
    closure accounts for an interferer arriving at the very instant
    arbitration is decided (discrete time). *)

val response_time :
  ?window_limit:int ->
  ?q_limit:int ->
  ?record:(q:int -> arr:int -> fin:int -> unit) ->
  task:Rt_task.t ->
  others:Rt_task.t list ->
  unit ->
  Busy_window.outcome
(** [record] observes the per-activation busy-window completions (see
    {!Busy_window.max_response}). *)

val backlog_bound :
  ?window_limit:int ->
  ?q_limit:int ->
  task:Rt_task.t ->
  others:Rt_task.t list ->
  unit ->
  (int, string) result
(** Bound on the number of simultaneously queued instances of the
    message — the transmit queue depth the node needs. *)

val analyse :
  ?window_limit:int ->
  ?q_limit:int ->
  Rt_task.t list ->
  (Rt_task.t * Busy_window.outcome) list
(** [analyse tasks] runs {!response_time} for every message of an SPNP
    resource (e.g. every frame on a CAN bus). *)

val analyse_profiled :
  ?window_limit:int ->
  ?q_limit:int ->
  Rt_task.t list ->
  (Rt_task.t * Busy_window.outcome * Event_model.Propagation.profile option)
  list
(** Like {!analyse}, but additionally collects each message's busy-window
    completion profile (for busy-window output propagation).  The
    profile is [None] for unbounded outcomes. *)
