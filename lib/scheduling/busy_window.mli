(** Shared machinery of the busy-window technique (Lehoczky).

    Local analyses compute, per activation index [q], the completion time
    of the q-th activation within the critical-instant busy period, via a
    least-fixed-point iteration over a monotone window equation; the
    worst-case response time is the maximum over all activations inside
    the busy period. *)

type outcome =
  | Bounded of Timebase.Interval.t
      (** best-/worst-case response times [\[r-:r+\]] *)
  | Unbounded of string
      (** no bound below the divergence limits (overload), with reason *)

val pp_outcome : Format.formatter -> outcome -> unit

val response_interval : outcome -> Timebase.Interval.t option

val default_window_limit : int
(** Cap on busy-window length before declaring divergence (1_000_000). *)

val default_q_limit : int
(** Cap on the number of activations examined in one busy period (4096). *)

val fixpoint : limit:int -> init:int -> (int -> int) -> int option
(** [fixpoint ~limit ~init f] is the least fixed point of the monotone
    function [f] reached by iterating from [init]; [None] if the iterate
    exceeds [limit].
    @raise Invalid_argument if an iterate decreases (non-monotone [f]). *)

val max_response :
  ?label:string ->
  ?q_limit:int ->
  ?record:(q:int -> arr:int -> fin:int -> unit) ->
  best_case:int ->
  arrival:(int -> Timebase.Time.t) ->
  finish:(int -> int option) ->
  unit ->
  outcome
(** [max_response ~best_case ~arrival ~finish ()] runs the busy-period
    enumeration: for [q = 1, 2, ...], [finish q] is the absolute
    completion time of the q-th activation ([None] = divergent window),
    [arrival q] its earliest arrival (the activation stream's
    [delta_min q]).  The enumeration stops at the first [q] whose
    completion does not overlap the arrival of activation [q + 1].
    Returns [Bounded [best_case : max_q (finish q - arrival q)]].

    [record], when given, is called once per explored activation with
    its index [q], earliest arrival [arr] and worst-case completion
    [fin] (both relative to the busy-window start) — the per-activation
    completion profile consumed by busy-window output propagation
    ({!Event_model.Propagation}).  It observes exactly the activations
    of the returned bound, in increasing [q].

    When a tracing sink is installed, the computation is wrapped in a
    ["busy_window"] span labelled with [label] (the element name) and
    attributed with the explored q-range and fixpoint work; with no sink
    the span layer is skipped entirely. *)

val profile_collector :
  unit ->
  (q:int -> arr:int -> fin:int -> unit)
  * (unit -> Event_model.Propagation.profile option)
(** [profile_collector ()] is a [(record, get)] pair: pass [record] to
    {!max_response} and call [get ()] afterwards to obtain the collected
    busy-window completion profile ([None] when no activation was
    explored).  Only meaningful when the enumeration returned [Bounded]
    — a divergent window leaves a partial, unusable profile. *)

val max_backlog :
  ?label:string ->
  ?q_limit:int ->
  arrival:(int -> Timebase.Time.t) ->
  arrivals_in:(int -> (int, string) result) ->
  finish:(int -> int option) ->
  unit ->
  (int, string) result
(** [max_backlog ~arrival ~arrivals_in ~finish ()] bounds the number of
    simultaneously pending activations (the activation buffer the
    element needs): within the critical-instant busy period, while the
    q-th activation is in service at most [arrivals_in (finish q) - (q - 1)]
    activations are pending.  [arrivals_in w] is the element's own
    [eta_plus] over a window of size [w]. *)

(** SoA interference kernel with resumable arrival searches.

    One [Demand.t] snapshots a task set (activation curves and [C+]
    values, structure-of-arrays) and serves arrival-demand queries for
    the convergence loop of one local analysis.  Each task carries a
    search hint that resumes the eta_plus pseudo-inversion where the
    previous query ended; this is only sound when the query windows for
    a given task never decrease over the kernel's lifetime — which holds
    in busy-window fixpoints (windows grow within an iteration and, with
    warm-started fixpoints, across activation indices [q]) and in EDF
    demand scans (windows grow with [dt]).  Build a fresh kernel per
    analysed task; do not share one across analyses or domains. *)
module Demand : sig
  type t

  val make : Rt_task.t list -> t
  (** Snapshot the task set in list order. *)

  val size : t -> int

  val name : t -> int -> string
  (** Name of the i-th task (error reporting). *)

  val count : t -> i:int -> window:int -> int
  (** Arrival count [eta_plus_i window] of the i-th task, or [-1] when
      it is unbounded.  [0] when [window <= 0].  Windows passed for a
      given [i] must be non-decreasing across calls. *)

  val eval : t -> window:int -> (int, int) result
  (** Total demand [sum_i count i * C+_i] over a uniform window, or
      [Error i] for the first task with unbounded arrivals. *)
end

val interference :
  tasks:Rt_task.t list -> window:int -> (int, string) result
(** [interference ~tasks ~window] is the cumulated worst-case demand
    [sum_j eta_plus_j window * C+_j] of [tasks] in a window; [Error] if
    some arrival count is unbounded. *)

val higher_priority : than:Rt_task.t -> Rt_task.t list -> Rt_task.t list
(** Tasks with priority strictly smaller or equal (but not the task
    itself, compared physically) — equal priorities are conservatively
    treated as interference. *)

val lower_priority : than:Rt_task.t -> Rt_task.t list -> Rt_task.t list
(** Tasks with strictly larger priority value. *)

(** {1 Observability} *)

type counters = {
  busy_windows : int;  (** {!max_response} / {!max_backlog} invocations *)
  window_iterations : int;  (** {!fixpoint} steps *)
  activations : int;  (** busy-period activation indices explored *)
  demand_evals : int;  (** {!Demand.eval} kernel sweeps *)
  demand_probes : int;  (** per-task curve probes inside the kernel *)
}

val counters : unit -> counters
(** Process-global monotone totals (registry counters [busy_window.*]). *)

val counters_in : Obs.Metrics.scope -> counters
(** Busy-window work charged to one metrics scope. *)

val reset_counters : unit -> unit
(** Resets the global totals; scoped cells are unaffected. *)

val counters_diff : counters -> counters -> counters
(** [counters_diff a b] is the per-field difference [a - b]. *)
