(** Static-priority preemptive response-time analysis.

    The classic busy-window analysis for SPP resources (CPUs in the
    paper's example) with arbitrary activation event streams and arbitrary
    deadlines: the q-th activation in the level-i busy period completes at
    the least fixed point of
    [w = q * C+_i + sum_{j in hp(i)} eta_plus_j(w) * C+_j].
    Equal priorities are conservatively treated as interference. *)

val response_time :
  ?window_limit:int ->
  ?q_limit:int ->
  ?record:(q:int -> arr:int -> fin:int -> unit) ->
  ?blocking:int ->
  task:Rt_task.t ->
  others:Rt_task.t list ->
  unit ->
  Busy_window.outcome
(** Response-time interval of [task] given the other tasks sharing the
    resource.  The best case is the task's best-case execution time.
    [blocking] (default 0) adds a per-busy-window blocking term — the
    priority-inversion bound of a shared-resource locking protocol.
    [record] observes the per-activation busy-window completions (see
    {!Busy_window.max_response}). *)

val backlog_bound :
  ?window_limit:int ->
  ?q_limit:int ->
  ?blocking:int ->
  task:Rt_task.t ->
  others:Rt_task.t list ->
  unit ->
  (int, string) result
(** Bound on the number of simultaneously pending activations of [task]
    — the activation queue the task needs (see
    {!Busy_window.max_backlog}). *)

val analyse :
  ?window_limit:int ->
  ?q_limit:int ->
  Rt_task.t list ->
  (Rt_task.t * Busy_window.outcome) list
(** [analyse tasks] runs {!response_time} for every task of an SPP
    resource. *)

val analyse_profiled :
  ?window_limit:int ->
  ?q_limit:int ->
  Rt_task.t list ->
  (Rt_task.t * Busy_window.outcome * Event_model.Propagation.profile option)
  list
(** Like {!analyse}, but additionally collects each task's busy-window
    completion profile (for busy-window output propagation).  The
    profile is [None] for unbounded outcomes. *)
