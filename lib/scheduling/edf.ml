module Count = Timebase.Count
module Interval = Timebase.Interval
module Stream = Event_model.Stream

type task = {
  task : Rt_task.t;
  deadline : int;
}

let check_tasks tasks =
  List.iter
    (fun t ->
      if t.deadline < 1 then
        raise
          (Guard.Error.Error
             (Guard.Error.Invalid_spec
                {
                  reason =
                    Printf.sprintf "Edf: deadline of %s < 1"
                      t.task.Rt_task.name;
                })))
    tasks

let demand_bound tasks dt =
  let rec total = function
    | [] -> Ok 0
    | t :: rest ->
      if dt < t.deadline then total rest
      else begin
        match Stream.eta_plus t.task.Rt_task.activation (dt - t.deadline + 1) with
        | Count.Fin n -> begin
          match total rest with
          | Ok acc -> Ok (acc + (n * Interval.hi t.task.Rt_task.cet))
          | Error _ as e -> e
        end
        | Count.Inf ->
          Error
            (Printf.sprintf "unbounded arrivals of %s" t.task.Rt_task.name)
      end
  in
  total tasks

let busy_period ?(window_limit = Busy_window.default_window_limit) tasks =
  check_tasks tasks;
  let rt_tasks = List.map (fun t -> t.task) tasks in
  let failure = ref None in
  let step =
    if not !Event_model.Kernels.enabled then fun w ->
      match Busy_window.interference ~tasks:rt_tasks ~window:w with
      | Ok demand -> Stdlib.max 1 demand
      | Error reason ->
        failure := Some reason;
        w
    else begin
      (* resumable kernel: fixpoint windows only grow *)
      let demand = Busy_window.Demand.make rt_tasks in
      fun w ->
        match Busy_window.Demand.eval demand ~window:w with
        | Ok d -> Stdlib.max 1 d
        | Error i ->
          failure :=
            Some
              (Printf.sprintf "unbounded arrivals of %s in window %d"
                 (Busy_window.Demand.name demand i) w);
          w
    end
  in
  match Busy_window.fixpoint ~limit:window_limit ~init:1 step with
  | Some l when !failure = None -> Ok l
  | Some _ -> Error (Option.get !failure)
  | None -> Error "busy period diverges (overload)"

(* Kernel variant of [demand_bound]: one SoA snapshot serves the whole
   [dt = 1 .. l] scan; per-task windows [dt - deadline + 1] grow with
   [dt], matching the resumable-hint contract. *)
let demand_bound_kernel tasks =
  let arr = Array.of_list tasks in
  let demand = Busy_window.Demand.make (List.map (fun t -> t.task) tasks) in
  fun dt ->
    let n = Array.length arr in
    let rec total i acc =
      if i >= n then Ok acc
      else begin
        let t = arr.(i) in
        if dt < t.deadline then total (i + 1) acc
        else begin
          match
            Busy_window.Demand.count demand ~i ~window:(dt - t.deadline + 1)
          with
          | -1 ->
            Error
              (Printf.sprintf "unbounded arrivals of %s" t.task.Rt_task.name)
          | c -> total (i + 1) (acc + (c * Interval.hi t.task.Rt_task.cet))
        end
      end
    in
    total 0 0

let schedulable ?window_limit tasks =
  check_tasks tasks;
  let run () =
    match busy_period ?window_limit tasks with
    | Error _ as e -> e
    | Ok l ->
      let demand =
        if !Event_model.Kernels.enabled then demand_bound_kernel tasks
        else demand_bound tasks
      in
      let rec scan dt =
        if dt > l then Ok ()
        else begin
          match demand dt with
          | Ok d when d <= dt -> scan (dt + 1)
          | Ok d ->
            Error
              (Printf.sprintf "demand %d exceeds window %d (busy period %d)" d
                 dt l)
          | Error _ as e -> e
        end
      in
      scan 1
  in
  if Obs.Trace.enabled () then
    Obs.Trace.with_span "edf.schedulable"
      ~attrs:[ "tasks", Obs.Event.Int (List.length tasks) ]
      run
  else run ()

let analyse ?window_limit tasks =
  check_tasks tasks;
  let verdict = schedulable ?window_limit tasks in
  List.map
    (fun t ->
      let outcome =
        match verdict with
        | Ok () ->
          Busy_window.Bounded
            (Interval.make
               ~lo:(Interval.lo t.task.Rt_task.cet)
               ~hi:t.deadline)
        | Error reason -> Busy_window.Unbounded reason
      in
      t.task, outcome)
    tasks
