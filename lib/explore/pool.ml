type worker_stat = {
  worker : int;
  tasks : int;
  busy_us : float;
  counters : (string * int) list;
}

let c_tasks = Obs.Metrics.counter "explore.pool.tasks"
let c_maps = Obs.Metrics.counter "explore.pool.maps"

let default_jobs () = Domain.recommended_domain_count ()

let now_us () = Unix.gettimeofday () *. 1e6

(* One worker's loop: pull indices from the shared counter until the
   queue is drained, recording results (and the first exception) by
   index so the merge is schedule-independent. *)
let worker_loop ~label ~queue ~n ~f ~results ~errors w =
  let scope = Obs.Metrics.scope (Printf.sprintf "%s.worker%d" label w) in
  let tasks = ref 0 in
  let busy = ref 0.0 in
  let t_begin = now_us () in
  Obs.Metrics.in_scope scope (fun () ->
    let rec drain () =
      let i = Atomic.fetch_and_add queue 1 in
      if i < n then begin
        Obs.Metrics.incr c_tasks;
        Stdlib.incr tasks;
        let t0 = now_us () in
        (match f i with
         | v -> results.(i) <- Some v
         | exception e -> errors.(i) <- Some e);
        busy := !busy +. (now_us () -. t0);
        drain ()
      end
    in
    drain ());
  let t_end = now_us () in
  ( { worker = w; tasks = !tasks; busy_us = !busy;
      counters = Obs.Metrics.snapshot scope },
    t_begin,
    t_end )

(* Worker spans are emitted from the calling domain after the join, with
   the timestamps recorded by the workers: sinks never see concurrent
   emissions (see Obs.Sink). *)
let emit_worker_spans label stats =
  match Obs.Sink.installed () with
  | None -> ()
  | Some sink ->
    List.iter
      (fun (stat, t_begin, t_end) ->
        let name = Printf.sprintf "%s.worker%d" label stat.worker in
        sink.Obs.Sink.emit
          (Obs.Event.Span_begin { name; ts = t_begin; attrs = [] });
        sink.Obs.Sink.emit
          (Obs.Event.Span_end
             {
               name;
               ts = t_end;
               attrs =
                 [
                   "tasks", Obs.Event.Int stat.tasks;
                   "busy_us", Obs.Event.Int (int_of_float stat.busy_us);
                 ];
             }))
      stats

let map_stats ?jobs ?(label = "explore.pool") f n =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Pool.map: jobs < 1";
  if n < 0 then invalid_arg "Pool.map: negative size";
  Obs.Metrics.incr c_maps;
  let results = Array.make n None in
  let errors = Array.make n None in
  let queue = Atomic.make 0 in
  let run = worker_loop ~label ~queue ~n ~f ~results ~errors in
  let stats =
    Obs.Trace.with_span
      ~attrs:[ "jobs", Obs.Event.Int jobs; "items", Obs.Event.Int n ]
      (label ^ ".map")
    @@ fun () ->
    if jobs = 1 then [ run 0 ]
    else begin
      let domains =
        (* the calling domain is worker 0; jobs - 1 helpers are spawned *)
        List.init (jobs - 1) (fun k -> Domain.spawn (fun () -> run (k + 1)))
      in
      let mine = run 0 in
      mine :: List.map Domain.join domains
    end
  in
  let stats = List.sort (fun (a, _, _) (b, _, _) -> compare a.worker b.worker) stats in
  emit_worker_spans label stats;
  Array.iteri
    (fun i -> function Some e -> raise e | None -> ignore i)
    errors;
  ( List.init n (fun i ->
        match results.(i) with
        | Some v -> v
        | None -> assert false),
    List.map (fun (stat, _, _) -> stat) stats )

let map ?jobs ?label f n = fst (map_stats ?jobs ?label f n)
