type worker_stat = {
  worker : int;
  tasks : int;
  busy_us : float;
  counters : (string * int) list;
}

type 'a outcome =
  | Complete of 'a list
  | Interrupted of {
      completed : 'a list;
      reason : Guard.Error.t;
      attempted : int;
    }

let c_tasks = Obs.Metrics.counter "explore.pool.tasks"
let c_maps = Obs.Metrics.counter "explore.pool.maps"
let c_interrupts = Obs.Metrics.counter "explore.pool.interrupts"

let default_jobs () = Domain.recommended_domain_count ()

let now_us () = Unix.gettimeofday () *. 1e6

(* One worker's loop: pull indices from the shared counter until the
   queue is drained, the pool is stopped, or the guard trips; results
   (and the first exception per item) are recorded by index so the merge
   is schedule-independent.  A guard trip publishes its reason into
   [stop] (first trip wins) and every worker drains out at its next
   claim.  An exception escaping the claim path itself — e.g. an
   injected worker crash — is captured per worker, never lost. *)
let worker_loop ~label ~queue ~n ~f ~results ~errors ~guard ~stop w =
  let scope = Obs.Metrics.scope (Printf.sprintf "%s.worker%d" label w) in
  let tasks = ref 0 in
  let busy = ref 0.0 in
  let crash = ref None in
  let t_begin = now_us () in
  Obs.Metrics.in_scope scope (fun () ->
    let rec drain () =
      match Atomic.get stop with
      | Some _ -> ()
      | None ->
        let i = Atomic.fetch_and_add queue 1 in
        if i < n then begin
          match
            if Guard.Inject.armed () then
              Guard.Inject.fire (Printf.sprintf "%s.item:%d" label i);
            Guard.check guard
          with
          | () ->
            Obs.Metrics.incr c_tasks;
            Stdlib.incr tasks;
            let t0 = now_us () in
            (match f i with
             | v -> results.(i) <- Some v
             | exception e -> errors.(i) <- Some e);
            busy := !busy +. (now_us () -. t0);
            drain ()
          | exception Guard.Error.Error r when Guard.Error.is_interrupt r ->
            ignore (Atomic.compare_and_set stop None (Some r))
        end
    in
    match drain () with
    | () -> ()
    | exception e -> crash := Some e);
  let t_end = now_us () in
  ( { worker = w; tasks = !tasks; busy_us = !busy;
      counters = Obs.Metrics.snapshot scope },
    t_begin,
    t_end,
    !crash )

(* Worker spans are emitted from the calling domain after the join, with
   the timestamps recorded by the workers: sinks never see concurrent
   emissions (see Obs.Sink). *)
let emit_worker_spans label stats =
  match Obs.Sink.installed () with
  | None -> ()
  | Some sink ->
    List.iter
      (fun (stat, t_begin, t_end, _) ->
        let name = Printf.sprintf "%s.worker%d" label stat.worker in
        sink.Obs.Sink.emit
          (Obs.Event.Span_begin { name; ts = t_begin; attrs = [] });
        sink.Obs.Sink.emit
          (Obs.Event.Span_end
             {
               name;
               ts = t_end;
               attrs =
                 [
                   "tasks", Obs.Event.Int stat.tasks;
                   "busy_us", Obs.Event.Int (int_of_float stat.busy_us);
                 ];
             }))
      stats

let map_guarded ?jobs ?(label = "explore.pool") ?(guard = Guard.none) f n =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Pool.map: jobs < 1";
  if n < 0 then invalid_arg "Pool.map: negative size";
  Obs.Metrics.incr c_maps;
  let results = Array.make n None in
  let errors = Array.make n None in
  let queue = Atomic.make 0 in
  let stop : Guard.Error.t option Atomic.t = Atomic.make None in
  let run =
    worker_loop ~label ~queue ~n ~f ~results ~errors ~guard ~stop
  in
  let stats =
    Obs.Trace.with_span
      ~attrs:[ "jobs", Obs.Event.Int jobs; "items", Obs.Event.Int n ]
      (label ^ ".map")
    @@ fun () ->
    if jobs = 1 then [ run 0 ]
    else begin
      (* The calling domain is worker 0; jobs - 1 helpers are spawned
         one at a time so that a spawn failing mid-way can still join
         every domain already running: the queue is starved first, so
         the live helpers drain out promptly, then all are joined and
         the spawn failure is re-raised — no domain is ever leaked. *)
      let spawned = ref [] in
      match
        for k = 1 to jobs - 1 do
          if Guard.Inject.armed () then
            Guard.Inject.fire (Printf.sprintf "%s.spawn:%d" label k);
          let d = Domain.spawn (fun () -> run k) in
          spawned := d :: !spawned
        done
      with
      | () ->
        let mine = run 0 in
        mine :: List.map Domain.join (List.rev !spawned)
      | exception e ->
        Atomic.set queue n;
        List.iter (fun d -> ignore (Domain.join d)) !spawned;
        raise e
    end
  in
  let stats =
    List.sort
      (fun (a, _, _, _) (b, _, _, _) -> compare a.worker b.worker)
      stats
  in
  emit_worker_spans label stats;
  let worker_stats = List.map (fun (stat, _, _, _) -> stat) stats in
  (* Worker-level crashes, in worker order, so the surfaced one is
     deterministic. *)
  let crashes =
    List.filter_map
      (fun (stat, _, _, crash) ->
        Option.map (fun e -> (stat.worker, e)) crash)
      stats
  in
  (* [c] is the length of the contiguous completed prefix.  Everything
     before it succeeded; what stopped item [c] decides the outcome:
     its own error (smallest-index error wins, deterministically), a
     worker crash, or the recorded interruption reason. *)
  let c = ref n in
  (try
     for i = 0 to n - 1 do
       match results.(i) with
       | None ->
         c := i;
         raise Exit
       | Some _ -> ()
     done
   with Exit -> ());
  let c = !c in
  if c = n then begin
    (match crashes with (_, e) :: _ -> raise e | [] -> ());
    ( Complete (List.init n (fun i -> Option.get results.(i))),
      worker_stats )
  end
  else
    match errors.(c) with
    | Some e -> raise e
    | None -> begin
      match crashes with
      | (_, e) :: _ -> raise e
      | [] -> begin
        match Atomic.get stop with
        | Some reason ->
          Obs.Metrics.incr c_interrupts;
          let attempted =
            Array.fold_left
              (fun acc -> function Some _ -> acc + 1 | None -> acc)
              0 results
          in
          ( Interrupted
              {
                completed = List.init c (fun i -> Option.get results.(i));
                reason;
                attempted;
              },
            worker_stats )
        | None -> assert false
      end
    end

let map_stats ?jobs ?label f n =
  match map_guarded ?jobs ?label f n with
  | Complete vs, stats -> vs, stats
  | Interrupted { reason; _ }, _ ->
    (* without a caller-supplied guard an interruption can only come
       from an injected trip; surface it as the error it is *)
    raise (Guard.Error.Error reason)

let map ?jobs ?label f n = fst (map_stats ?jobs ?label f n)
