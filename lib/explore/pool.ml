type worker_stat = {
  worker : int;
  tasks : int;
  steals : int;
  busy_us : float;
  idle_us : float;
  counters : (string * int) list;
}

type 'a outcome =
  | Complete of 'a list
  | Interrupted of {
      completed : 'a list;
      reason : Guard.Error.t;
      attempted : int;
    }

let c_tasks = Obs.Metrics.counter "explore.pool.tasks"
let c_maps = Obs.Metrics.counter "explore.pool.maps"
let c_interrupts = Obs.Metrics.counter "explore.pool.interrupts"
let c_steals = Obs.Metrics.counter "explore.pool.steals"
let g_deque_hwm = Obs.Metrics.gauge "explore.pool.deque_hwm"

let default_jobs () = Domain.recommended_domain_count ()

(* Spawning more domains than the machine has cores makes OCaml 5
   throughput collapse (every minor collection is a stop-the-world
   handshake across all domains), which is exactly the jobs=4 slowdown
   BENCH_3 recorded on a 1-core box.  [jobs] is therefore a request;
   the pool runs [min jobs cores] domains unless the caller explicitly
   oversubscribes (tests exercising spawn paths, overhead benchmarks). *)
let effective_jobs ?(oversubscribe = false) jobs =
  if oversubscribe then jobs
  else Stdlib.max 1 (Stdlib.min jobs (Domain.recommended_domain_count ()))

let now_us () = Unix.gettimeofday () *. 1e6

(* ------------------------------------------------------------------ *)
(* Legacy claiming: one atomic round-trip per item, guard checked and
   injection site fired before every claim.  This is the only schedule
   whose interruption behaviour is deterministic across jobs counts
   (claims are globally ascending, so when the guard trips at item [k]
   every item below [k] has already been claimed and therefore completes
   before the join), so it is kept for every guarded or fault-injected
   map.  Unguarded maps — the throughput path — use the chunked
   work-stealing scheduler below instead. *)
let worker_loop_items ~label ~queue ~n ~f ~results ~errors ~guard ~stop ~tasks
    ~hist () =
  let rec drain () =
    match Atomic.get stop with
    | Some _ -> ()
    | None ->
      let i = Atomic.fetch_and_add queue 1 in
      if i < n then begin
        match
          if Guard.Inject.armed () then
            Guard.Inject.fire (Printf.sprintf "%s.item:%d" label i);
          Guard.check guard
        with
        | () ->
          Obs.Metrics.incr c_tasks;
          Stdlib.incr tasks;
          (match
             match hist with
             | None -> f i
             | Some h ->
               let t0 = now_us () in
               let v = f i in
               Obs.Hist.record h (int_of_float ((now_us () -. t0) *. 1e3));
               v
           with
          | v -> results.(i) <- Some v
          | exception e -> errors.(i) <- Some e);
          drain ()
        | exception Guard.Error.Error r when Guard.Error.is_interrupt r ->
          ignore (Atomic.compare_and_set stop None (Some r))
      end
  in
  drain ()

(* ------------------------------------------------------------------ *)
(* Chunked scheduler: workers claim contiguous chunks off the shared
   counter (one atomic op per chunk, not per item) into a per-worker
   deque; the owner drains its deque from the front in small private
   batches, and when both the shared counter and its own deque run dry
   it steals the back half of a peer's remainder — classic bounded
   work-stealing, which fixes the tail imbalance block-splitting would
   otherwise reintroduce.  Only reachable when no guard can trip, so
   workers never abandon claimed items and the merge is a total,
   schedule-independent function of [f]. *)

type deque = {
  mutable d_lo : int;  (* next index the owner will take *)
  mutable d_hi : int;  (* exclusive upper bound of the remainder *)
  mutable d_hwm : int;  (* deepest remainder this deque ever held *)
  d_lock : Mutex.t;
}

let chunk_size ~n ~workers =
  Stdlib.max 1 (Stdlib.min 64 (n / (4 * workers)))

let mini_batch = 8

let worker_loop_chunked ~queue ~n ~chunk ~f ~results ~errors ~deques ~tasks
    ~hist w =
  let workers = Array.length deques in
  let mine = deques.(w) in
  let run_range lo hi =
    for i = lo to hi - 1 do
      Obs.Metrics.incr c_tasks;
      Stdlib.incr tasks;
      match
        match hist with
        | None -> f i
        | Some h ->
          let t0 = now_us () in
          let v = f i in
          Obs.Hist.record h (int_of_float ((now_us () -. t0) *. 1e3));
          v
      with
      | v -> results.(i) <- Some v
      | exception e -> errors.(i) <- Some e
    done
  in
  (* take up to [mini_batch] items from the front of [dq] *)
  let take_front dq =
    Mutex.lock dq.d_lock;
    let lo = dq.d_lo in
    let take = Stdlib.min mini_batch (dq.d_hi - lo) in
    if take > 0 then dq.d_lo <- lo + take;
    Mutex.unlock dq.d_lock;
    if take > 0 then Some (lo, lo + take) else None
  in
  (* steal the back half of a peer's remainder into [mine] *)
  let steal () =
    let rec try_victim k =
      if k >= workers then false
      else begin
        let v = (w + 1 + k) mod workers in
        if v = w then try_victim (k + 1)
        else begin
          let dq = deques.(v) in
          Mutex.lock dq.d_lock;
          let len = dq.d_hi - dq.d_lo in
          let got =
            if len <= 0 then None
            else begin
              let take = (len + 1) / 2 in
              let lo = dq.d_hi - take in
              dq.d_hi <- lo;
              Some (lo, lo + take)
            end
          in
          Mutex.unlock dq.d_lock;
          match got with
          | Some (lo, hi) ->
            Obs.Metrics.incr c_steals;
            Mutex.lock mine.d_lock;
            mine.d_lo <- lo;
            mine.d_hi <- hi;
            if hi - lo > mine.d_hwm then mine.d_hwm <- hi - lo;
            Mutex.unlock mine.d_lock;
            true
          | None -> try_victim (k + 1)
        end
      end
    in
    try_victim 0
  in
  let rec drain () =
    match take_front mine with
    | Some (lo, hi) ->
      run_range lo hi;
      drain ()
    | None ->
      let i = Atomic.fetch_and_add queue chunk in
      if i < n then begin
        let hi = Stdlib.min n (i + chunk) in
        Mutex.lock mine.d_lock;
        mine.d_lo <- i;
        mine.d_hi <- hi;
        if hi - i > mine.d_hwm then mine.d_hwm <- hi - i;
        Mutex.unlock mine.d_lock;
        drain ()
      end
      else if steal () then drain ()
  in
  drain ()

(* One worker: telemetry wrapper around whichever drain loop the map
   selected; results (and the first exception per item) are recorded by
   index so the merge is schedule-independent.  An exception escaping
   the claim path itself — e.g. an injected worker crash — is captured
   per worker, never lost. *)
let worker ~label ~drain w =
  let scope = Obs.Metrics.scope (Printf.sprintf "%s.worker%d" label w) in
  let tasks = ref 0 in
  let crash = ref None in
  (* One local histogram per worker (plain cells, single writer); the
     caller merges them into the registered distribution after the
     join.  [idle_us] is filled in post-join too — a worker cannot
     know how long it out-waited its peers. *)
  let hist = if Obs.Hist.enabled () then Some (Obs.Hist.make ()) else None in
  let t_begin = now_us () in
  Obs.Metrics.in_scope scope (fun () ->
    match drain ~tasks ~hist w with () -> () | exception e -> crash := Some e);
  let t_end = now_us () in
  ( { worker = w; tasks = !tasks; steals = Obs.Metrics.read scope c_steals;
      busy_us = t_end -. t_begin; idle_us = 0.0;
      counters = Obs.Metrics.snapshot scope },
    t_begin,
    t_end,
    !crash,
    hist )

(* Worker spans are emitted from the calling domain after the join, with
   the timestamps recorded by the workers: sinks never see concurrent
   emissions (see Obs.Sink). *)
let emit_worker_spans label stats =
  match Obs.Sink.installed () with
  | None -> ()
  | Some sink ->
    List.iter
      (fun (stat, t_begin, t_end) ->
        let name = Printf.sprintf "%s.worker%d" label stat.worker in
        sink.Obs.Sink.emit
          (Obs.Event.Span_begin { name; ts = t_begin; attrs = [] });
        sink.Obs.Sink.emit
          (Obs.Event.Span_end
             {
               name;
               ts = t_end;
               attrs =
                 [
                   "tasks", Obs.Event.Int stat.tasks;
                   "steals", Obs.Event.Int stat.steals;
                   "busy_us", Obs.Event.Int (int_of_float stat.busy_us);
                   "idle_us", Obs.Event.Int (int_of_float stat.idle_us);
                 ];
             }))
      stats

let map_guarded ?jobs ?oversubscribe ?(label = "explore.pool")
    ?(guard = Guard.none) f n =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Pool.map: jobs < 1";
  if n < 0 then invalid_arg "Pool.map: negative size";
  Obs.Metrics.incr c_maps;
  let workers = effective_jobs ?oversubscribe jobs in
  let results = Array.make n None in
  let errors = Array.make n None in
  let queue = Atomic.make 0 in
  let stop : Guard.Error.t option Atomic.t = Atomic.make None in
  (* Guarded or fault-injected maps need the deterministic per-item
     claim order; unguarded maps take the chunked scheduler. *)
  let use_items = guard != Guard.none || Guard.Inject.armed () in
  let deques =
    if use_items then [||]
    else
      Array.init workers (fun _ ->
        { d_lo = 0; d_hi = 0; d_hwm = 0; d_lock = Mutex.create () })
  in
  let drain =
    if use_items then fun ~tasks ~hist _w ->
      worker_loop_items ~label ~queue ~n ~f ~results ~errors ~guard ~stop
        ~tasks ~hist ()
    else begin
      let chunk = chunk_size ~n ~workers in
      fun ~tasks ~hist w ->
        worker_loop_chunked ~queue ~n ~chunk ~f ~results ~errors ~deques
          ~tasks ~hist w
    end
  in
  let run = worker ~label ~drain in
  let stats =
    Obs.Trace.with_span
      ~attrs:
        [
          "jobs", Obs.Event.Int jobs;
          "workers", Obs.Event.Int workers;
          "items", Obs.Event.Int n;
        ]
      (label ^ ".map")
    @@ fun () ->
    if workers = 1 then [ run 0 ]
    else begin
      (* The calling domain is worker 0; workers - 1 helpers are spawned
         one at a time so that a spawn failing mid-way can still join
         every domain already running: the queue is starved first, so
         the live helpers drain out promptly, then all are joined and
         the spawn failure is re-raised — no domain is ever leaked. *)
      let spawned = ref [] in
      match
        for k = 1 to workers - 1 do
          if Guard.Inject.armed () then
            Guard.Inject.fire (Printf.sprintf "%s.spawn:%d" label k);
          let d = Domain.spawn (fun () -> run k) in
          spawned := d :: !spawned
        done
      with
      | () ->
        let mine = run 0 in
        mine :: List.map Domain.join (List.rev !spawned)
      | exception e ->
        Atomic.set queue n;
        List.iter (fun d -> ignore (Domain.join d)) !spawned;
        raise e
    end
  in
  let stats =
    List.sort
      (fun (a, _, _, _, _) (b, _, _, _, _) -> compare a.worker b.worker)
      stats
  in
  (* Tail imbalance: a worker idles from its own finish until the last
     worker finishes — computable only here, after every t_end is in. *)
  let t_last =
    List.fold_left
      (fun acc (_, _, t_end, _, _) -> Stdlib.max acc t_end)
      neg_infinity stats
  in
  let stats =
    List.map
      (fun (stat, t_b, t_e, crash, hist) ->
        { stat with idle_us = Stdlib.max 0.0 (t_last -. t_e) },
        t_b, t_e, crash, hist)
      stats
  in
  if Array.length deques > 0 then
    Obs.Metrics.set g_deque_hwm
      (Array.fold_left (fun acc d -> Stdlib.max acc d.d_hwm) 0 deques);
  (* Per-worker task-duration histograms fold into one registered
     distribution; the join above is the happens-before edge Hist
     requires. *)
  List.iter
    (fun (_, _, _, _, hist) ->
      match hist with
      | Some h ->
        Obs.Hist.merge_into ~into:(Obs.Hist.hist (label ^ ".task_ns")) h
      | None -> ())
    stats;
  emit_worker_spans label (List.map (fun (s, b, e, _, _) -> s, b, e) stats);
  let worker_stats = List.map (fun (stat, _, _, _, _) -> stat) stats in
  (* Worker-level crashes, in worker order, so the surfaced one is
     deterministic. *)
  let crashes =
    List.filter_map
      (fun (stat, _, _, crash, _) ->
        Option.map (fun e -> (stat.worker, e)) crash)
      stats
  in
  (* [c] is the length of the contiguous completed prefix.  Everything
     before it succeeded; what stopped item [c] decides the outcome:
     its own error (smallest-index error wins, deterministically), a
     worker crash, or the recorded interruption reason. *)
  let c = ref n in
  (try
     for i = 0 to n - 1 do
       match results.(i) with
       | None ->
         c := i;
         raise Exit
       | Some _ -> ()
     done
   with Exit -> ());
  let c = !c in
  if c = n then begin
    (match crashes with (_, e) :: _ -> raise e | [] -> ());
    ( Complete (List.init n (fun i -> Option.get results.(i))),
      worker_stats )
  end
  else
    match errors.(c) with
    | Some e -> raise e
    | None -> begin
      match crashes with
      | (_, e) :: _ -> raise e
      | [] -> begin
        match Atomic.get stop with
        | Some reason ->
          Obs.Metrics.incr c_interrupts;
          let attempted =
            Array.fold_left
              (fun acc -> function Some _ -> acc + 1 | None -> acc)
              0 results
          in
          ( Interrupted
              {
                completed = List.init c (fun i -> Option.get results.(i));
                reason;
                attempted;
              },
            worker_stats )
        | None -> assert false
      end
    end

let map_stats ?jobs ?oversubscribe ?label f n =
  match map_guarded ?jobs ?oversubscribe ?label f n with
  | Complete vs, stats -> vs, stats
  | Interrupted { reason; _ }, _ ->
    (* without a caller-supplied guard an interruption can only come
       from an injected trip; surface it as the error it is *)
    raise (Guard.Error.Error reason)

let map ?jobs ?oversubscribe ?label f n =
  fst (map_stats ?jobs ?oversubscribe ?label f n)

(* ------------------------------------------------------------------ *)
(* Persistent worker service *)

module Service = struct
  let c_jobs = Obs.Metrics.counter "explore.pool.service.jobs"
  let c_rejected = Obs.Metrics.counter "explore.pool.service.rejected"
  let c_scratch_cleared = Obs.Metrics.counter "explore.pool.service.scratch_cleared"

  (* Domain-local scratch: memo storage owned by one worker domain.
     Sessions pin all their jobs to one worker, so entries keyed by a
     session-prefixed string are written and read by a single domain
     with no synchronisation — the same locality contract as the curve
     memo tables.  The flip side of keeping such state out of the
     session record is that dropping the session does not drop the
     scratch: owners must clear their prefix (via {!clear_scratch})
     when a session closes or is evicted, or the worker accumulates
     entries no live session can ever address again. *)
  let scratch_key : (string, string) Hashtbl.t Domain.DLS.key =
    Domain.DLS.new_key (fun () -> Hashtbl.create 32)

  let scratch () = Domain.DLS.get scratch_key

  let scratch_drop_prefix prefix =
    let tbl = Domain.DLS.get scratch_key in
    let doomed =
      Hashtbl.fold
        (fun k _ acc ->
          if String.starts_with ~prefix k then k :: acc else acc)
        tbl []
    in
    List.iter (Hashtbl.remove tbl) doomed;
    let n = List.length doomed in
    if n > 0 then Obs.Metrics.add c_scratch_cleared n

  (* One mailbox per worker: jobs are pinned, never stolen.  The pin is
     the point — a serving session's cached streams carry unsynchronised
     memo tables, so every job touching one session must run on the same
     domain.  Stealing would break that; tail imbalance is acceptable
     for a server (sessions are long-lived, load balancing happens at
     session-placement time). *)
  type mailbox = {
    m_lock : Mutex.t;
    m_cond : Condition.t;
    m_queue : (unit -> unit) Queue.t;
    mutable m_stopping : bool;
  }

  type t = {
    label : string;
    boxes : mailbox array;
    domains : unit Domain.t array;
  }

  let worker_loop box =
    let rec loop () =
      Mutex.lock box.m_lock;
      while Queue.is_empty box.m_queue && not box.m_stopping do
        Condition.wait box.m_cond box.m_lock
      done;
      if Queue.is_empty box.m_queue then begin
        (* stopping and drained *)
        Mutex.unlock box.m_lock;
        ()
      end
      else begin
        let job = Queue.pop box.m_queue in
        Mutex.unlock box.m_lock;
        (* a job must not kill its worker; result/error delivery is the
           submitter's wrapper's business *)
        (try job () with _ -> ());
        loop ()
      end
    in
    loop ()

  let create ?jobs ?(label = "explore.pool.service") () =
    let jobs = match jobs with Some j -> j | None -> default_jobs () in
    if jobs < 1 then invalid_arg "Pool.Service.create: jobs < 1";
    let jobs = effective_jobs jobs in
    let boxes =
      Array.init jobs (fun _ ->
        {
          m_lock = Mutex.create ();
          m_cond = Condition.create ();
          m_queue = Queue.create ();
          m_stopping = false;
        })
    in
    let domains =
      Array.map (fun box -> Domain.spawn (fun () -> worker_loop box)) boxes
    in
    { label; boxes; domains }

  let label t = t.label
  let jobs t = Array.length t.boxes

  let submit t ~worker job =
    if worker < 0 || worker >= Array.length t.boxes then
      invalid_arg "Pool.Service.submit: worker out of range";
    let box = t.boxes.(worker) in
    Mutex.lock box.m_lock;
    let accepted = not box.m_stopping in
    if accepted then begin
      Queue.push job box.m_queue;
      Condition.signal box.m_cond
    end;
    Mutex.unlock box.m_lock;
    Obs.Metrics.incr (if accepted then c_jobs else c_rejected);
    accepted

  let clear_scratch t ~worker ~prefix =
    if worker < 0 || worker >= Array.length t.boxes then
      invalid_arg "Pool.Service.clear_scratch: worker out of range";
    submit t ~worker (fun () -> scratch_drop_prefix prefix)

  let depth t ~worker =
    if worker < 0 || worker >= Array.length t.boxes then
      invalid_arg "Pool.Service.depth: worker out of range";
    let box = t.boxes.(worker) in
    Mutex.lock box.m_lock;
    let d = Queue.length box.m_queue in
    Mutex.unlock box.m_lock;
    d

  let shutdown t =
    Array.iter
      (fun box ->
        Mutex.lock box.m_lock;
        box.m_stopping <- true;
        Condition.broadcast box.m_cond;
        Mutex.unlock box.m_lock)
      t.boxes;
    Array.iter Domain.join t.domains
end
