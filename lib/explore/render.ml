module Engine = Cpa_system.Engine

let short_digest d = if String.length d > 8 then String.sub d 0 8 else d

let mode_tag = function
  | Engine.Hierarchical -> "hem"
  | Engine.Flat_stream -> "flat_stream"
  | Engine.Flat_sem -> "flat"

let latency_cell (m : Summary.mode_summary) =
  if m.metrics.degraded then "degraded"
  else if not m.metrics.converged then "diverged"
  else
    match m.metrics.worst_latency with
    | Some l -> string_of_int l
    | None -> "-"

let summary_line fmt (report : Driver.report) =
  Format.fprintf fmt "%d variants, %d unique, %d cache hits"
    (List.length report.rows) report.cache.entries report.cache.hits;
  match report.interrupted with
  | None -> ()
  | Some reason ->
    Format.fprintf fmt "; interrupted (%s): completed prefix only"
      (Guard.Error.to_string reason)

let timing_line fmt (report : Driver.report) =
  Format.fprintf fmt "jobs %d, wall %.1f ms;" report.jobs report.wall_ms;
  List.iter
    (fun (w : Pool.worker_stat) ->
      Format.fprintf fmt " worker%d: %d tasks %.1f ms" w.worker w.tasks
        (w.busy_us /. 1000.0);
      if w.steals > 0 then Format.fprintf fmt " (%d steals)" w.steals;
      if w.idle_us >= 100.0 then
        Format.fprintf fmt " (idle %.1f ms)" (w.idle_us /. 1000.0))
    report.workers

(* The headline mode of a row: hierarchical when evaluated, otherwise the
   first evaluated mode. *)
let headline (s : Summary.t) =
  match Summary.mode_summary s Engine.Hierarchical with
  | Some m -> Some m
  | None -> ( match s.modes with m :: _ -> Some m | [] -> None)

let label_width rows =
  List.fold_left
    (fun acc (r : Driver.row) -> Stdlib.max acc (String.length r.label))
    7 rows

let table fmt (report : Driver.report) =
  let w = label_width report.rows in
  Format.fprintf fmt "%-*s %-8s %9s %9s %7s %7s %8s %5s %4s@." w "variant"
    "digest" "R+ hem" "R+ flat" "red%" "util%" "margin%" "iters" "dup";
  List.iter
    (fun (r : Driver.row) ->
      match r.summary with
      | Error e ->
        Format.fprintf fmt "%-*s %-8s error: %s@." w r.label
          (short_digest r.digest) e
      | Ok s ->
        let cell mode =
          match Summary.mode_summary s mode with
          | Some m -> latency_cell m
          | None -> ""
        in
        let red =
          match Summary.reduction_pct s with
          | Some p -> Printf.sprintf "%.1f" p
          | None -> "-"
        in
        let util, margin, iters =
          match headline s with
          | Some m ->
            ( Printf.sprintf "%.1f" m.metrics.max_util_pct,
              Printf.sprintf "%.1f" m.metrics.margin_pct,
              string_of_int m.metrics.iterations )
          | None -> "-", "-", "-"
        in
        Format.fprintf fmt "%-*s %-8s %9s %9s %7s %7s %8s %5s %4s@." w
          r.label (short_digest r.digest)
          (cell Engine.Hierarchical)
          (cell Engine.Flat_sem)
          red util margin iters
          (if r.cache_hit then "dup" else ""))
    report.rows;
  Format.fprintf fmt "%a@." summary_line report

let csv_mode_line fmt (r : Driver.row) (s : Summary.t)
    (m : Summary.mode_summary) =
  let red =
    if m.mode = Engine.Hierarchical then
      match Summary.reduction_pct s with
      | Some p -> Printf.sprintf "%.2f" p
      | None -> ""
    else ""
  in
  Format.fprintf fmt "%s,%s,%b,%s,%b,%b,%s,%.2f,%.2f,%d,%s@." r.label
    r.digest r.cache_hit (mode_tag m.mode) m.metrics.converged
    m.metrics.degraded
    (match m.metrics.worst_latency with
     | Some l -> string_of_int l
     | None -> "")
    m.metrics.max_util_pct m.metrics.margin_pct m.metrics.iterations red

let csv fmt (report : Driver.report) =
  Format.fprintf fmt
    "label,digest,cache_hit,mode,converged,degraded,worst_latency,max_util_pct,margin_pct,iterations,reduction_pct@.";
  List.iter
    (fun (r : Driver.row) ->
      match r.summary with
      | Error e ->
        Format.fprintf fmt "%s,%s,%b,error,,,,,,,%s@." r.label r.digest
          r.cache_hit (String.map (function ',' -> ';' | c -> c) e)
      | Ok s -> List.iter (csv_mode_line fmt r s) s.modes)
    report.rows

let json_string s =
  let buffer = Buffer.create (String.length s + 2) in
  Buffer.add_char buffer '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.add_char buffer '"';
  Buffer.contents buffer

let json fmt (report : Driver.report) =
  Format.fprintf fmt "{@.  \"variants\": [@.";
  let last_row = List.length report.rows - 1 in
  List.iteri
    (fun i (r : Driver.row) ->
      Format.fprintf fmt "    {\"label\": %s, \"digest\": %s, \"cache_hit\": %b"
        (json_string r.label) (json_string r.digest) r.cache_hit;
      (match r.summary with
       | Error e -> Format.fprintf fmt ", \"error\": %s}" (json_string e)
       | Ok s ->
         Format.fprintf fmt ", \"modes\": [";
         let last_mode = List.length s.modes - 1 in
         List.iteri
           (fun j (m : Summary.mode_summary) ->
             Format.fprintf fmt
               "{\"mode\": %s, \"converged\": %b, \"degraded\": %b, \
                \"worst_latency\": %s, \
                \"max_util_pct\": %.2f, \"margin_pct\": %.2f, \
                \"iterations\": %d}%s"
               (json_string (mode_tag m.mode))
               m.metrics.converged m.metrics.degraded
               (match m.metrics.worst_latency with
                | Some l -> string_of_int l
                | None -> "null")
               m.metrics.max_util_pct m.metrics.margin_pct
               m.metrics.iterations
               (if j = last_mode then "" else ", "))
           s.modes;
         Format.fprintf fmt "]";
         (match Summary.reduction_pct s with
          | Some p -> Format.fprintf fmt ", \"reduction_pct\": %.2f" p
          | None -> ());
         Format.fprintf fmt "}");
      Format.fprintf fmt "%s@." (if i = last_row then "" else ","))
    report.rows;
  Format.fprintf fmt
    "  ],@.  \"cache\": {\"lookups\": %d, \"hits\": %d, \"entries\": %d}"
    report.cache.lookups report.cache.hits report.cache.entries;
  (match report.interrupted with
  | None -> ()
  | Some reason ->
    Format.fprintf fmt ",@.  \"interrupted\": %s"
      (json_string (Guard.Error.to_string reason)));
  Format.fprintf fmt "@.}@."

let pareto_table fmt (report : Driver.report) ~mode =
  let front = Driver.pareto report ~mode in
  Format.fprintf fmt "Pareto front (%s): %d of %d variants@."
    (mode_tag mode) (List.length front) (List.length report.rows);
  let w = label_width front in
  List.iter
    (fun (r : Driver.row) ->
      match r.summary with
      | Error _ -> ()
      | Ok s -> begin
        match Summary.mode_summary s mode with
        | None -> ()
        | Some m ->
          Format.fprintf fmt "  %-*s R+=%s util=%.1f%% margin=%.1f%%@." w
            r.label (latency_cell m) m.metrics.max_util_pct
            m.metrics.margin_pct
      end)
    front
