(** Content-addressed, single-flight result cache.

    Keys are content digests (see [Cpa_system.Spec.digest]); values are
    immutable analysis summaries.  The cache is shared between the pool's
    worker domains behind a mutex, and computation is {e single-flight}:
    the first worker to claim a key computes it while later claimants
    block until the value is published.  So every key is computed exactly
    once, and {!stats} are deterministic — for a fixed work list, [hits]
    is always [lookups - distinct keys] no matter how many domains ran or
    how the scheduler interleaved them.

    Values are published under the lock and must be immutable (they are
    read concurrently afterwards); never cache structures with live memo
    state such as specs, streams or engine results — cache the extracted
    summary instead. *)

type 'a t

type stats = {
  lookups : int;
  hits : int;  (** lookups served (or awaited) from an earlier compute *)
  entries : int;  (** distinct keys computed *)
}

val create : unit -> 'a t

val find_or_compute : 'a t -> key:string -> (unit -> 'a) -> 'a * bool
(** [find_or_compute t ~key f] returns the cached value for [key],
    computing it with [f] on a miss; the boolean is [true] on a hit
    (including waits on an in-flight compute).  [f] runs outside the
    lock.  If [f] raises, the claim is released, every waiter retries
    (one of them re-runs [f]), and the exception propagates to the
    claimant. *)

val stats : 'a t -> stats
