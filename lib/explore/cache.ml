type 'a entry =
  | Pending
  | Done of 'a

type 'a t = {
  lock : Mutex.t;
  published : Condition.t;
  table : (string, 'a entry) Hashtbl.t;
  mutable lookups : int;
  mutable hits : int;
}

type stats = {
  lookups : int;
  hits : int;
  entries : int;
}

let create () =
  {
    lock = Mutex.create ();
    published = Condition.create ();
    table = Hashtbl.create 64;
    lookups = 0;
    hits = 0;
  }

let find_or_compute t ~key f =
  Mutex.lock t.lock;
  t.lookups <- t.lookups + 1;
  let rec claim () =
    match Hashtbl.find_opt t.table key with
    | Some (Done v) ->
      t.hits <- t.hits + 1;
      Mutex.unlock t.lock;
      v, true
    | Some Pending ->
      Condition.wait t.published t.lock;
      claim ()
    | None ->
      Hashtbl.replace t.table key Pending;
      Mutex.unlock t.lock;
      let v =
        try f ()
        with e ->
          (* release the claim so a waiter can retry the compute *)
          Mutex.lock t.lock;
          Hashtbl.remove t.table key;
          Condition.broadcast t.published;
          Mutex.unlock t.lock;
          raise e
      in
      Mutex.lock t.lock;
      Hashtbl.replace t.table key (Done v);
      Condition.broadcast t.published;
      Mutex.unlock t.lock;
      v, false
  in
  claim ()

let stats t =
  Mutex.protect t.lock (fun () ->
    {
      lookups = t.lookups;
      hits = t.hits;
      entries = Hashtbl.length t.table;
    })
