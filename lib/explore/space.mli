(** Design-space description: variants as pure-data edits of a base system.

    A variant is a list of {!edit}s applied to a freshly built base spec.
    Edits are plain data — no closures over streams — so a work list can
    be fanned out to worker domains and each worker rebuilds its spec
    (and therefore its curve memo tables) domain-locally, as the
    {!Pool} contract requires.  Identical specs produced by different
    edit paths collide on [Spec.digest] and are analysed once. *)

module Spec = Cpa_system.Spec

type edit =
  | Source_period of { source : string; period : int }
      (** replace the named source with a strictly periodic stream *)
  | Source_jitter of {
      source : string;
      period : int;
      jitter : int;
      d_min : int;
    }  (** replace the named source with a periodic-with-jitter stream *)
  | Cet_scale of { task : string; percent : int }
      (** scale the task's execution-time interval (rounded up, floor 1) *)
  | Task_priority of { task : string; priority : int }
  | Frame_priority of { frame : string; priority : int }
  | Frame_tx of { frame : string; tx : Timebase.Interval.t }
  | Propagation_mode of {
      task : string option;
      mode : Event_model.Propagation.mode;
    }
      (** set a task's output-propagation override, or ([task = None])
          the spec-wide default mode *)
  | Backend of {
      resource : string;
      backend : Spec.backend;
    }
      (** switch the named resource's local analysis between the
          busy-window ([Cpa]) and curve ([Rtc]) backends *)
  | Repack of packing
      (** reassign the signals of a bus to a new set of frames *)

(** A signal-to-frame layout for one bus: [groups] partitions the names
    of every signal currently transported on the bus; group [i] becomes
    frame ["LF<i+1>"] with priority [i + 1], send type [Direct], and a
    transmission time derived from a {!Comstack.Layout} packing
    [bits_per_signal] bits per signal at [bit_time] time units per bit.
    Activations referencing a repacked signal are re-pointed to its new
    frame.  Signal transfer properties are preserved, except that a group
    consisting only of pending signals has them promoted to triggering —
    a direct frame with no triggering signal could never be sent. *)
and packing = {
  bus : string;
  groups : string list list;
  bits_per_signal : int;
  bit_time : int;
}

val edit_label : edit -> string
(** Compact human-readable rendering, e.g. ["S3.period=500"],
    ["T3.cet=150%"], ["layout=sig1+sig2|sig3"]. *)

val apply : Spec.t -> edit -> Spec.t
(** @raise Not_found when the edit names an unknown element.
    @raise Invalid_argument for malformed packings (wrong signal set,
    payload overflow, or a [From_frame] reference to a repacked frame,
    which has no unambiguous target). *)

val apply_all : Spec.t -> edit list -> Spec.t

val touched : Spec.t -> edit -> string list * string list
(** [(sources, elements)] the edit rewrites, evaluated against the
    {e pre-edit} spec.  A [Repack] reports both the frames currently on
    the bus and the ["LF<i>"] frames it will create, so callers holding
    warm analysis state can invalidate replaced and replacement elements
    alike.  Purely syntactic — never raises, even for edits [apply]
    would reject. *)

(** {1 Axes and grids} *)

type axis = {
  axis_name : string;
  points : (string * edit) list;  (** point label (no axis prefix), edit *)
}

type variant = {
  label : string;
  edits : edit list;
}

val axis : string -> (string * edit) list -> axis

val int_axis : string -> (int -> edit) -> int list -> axis
(** Points labelled by their integer value. *)

val grid : axis list -> variant list
(** Cross product, first axis varying slowest; labels are the
    [" "]-joined ["axis=point"] pairs.  The grid of no axes is the single
    unlabelled identity variant. *)

(** {1 Layout enumeration} *)

val packings :
  ?max_frames:int ->
  ?bits_per_signal:int ->
  ?bit_time:int ->
  Spec.t ->
  bus:string ->
  unit ->
  packing list
(** All set partitions of the signals currently on [bus] into at most
    [max_frames] (default: the signal count) frames whose payload fits a
    CAN frame, in a deterministic order; [bits_per_signal] defaults to
    [8], [bit_time] to [1].  The partition mirroring the current
    assignment is included.  Feed each through [Repack] to sweep frame
    layouts.
    @raise Not_found when [bus] has no frames. *)

val packing_variants :
  ?max_frames:int ->
  ?bits_per_signal:int ->
  ?bit_time:int ->
  Spec.t ->
  bus:string ->
  unit ->
  variant list
(** {!packings} wrapped as labelled single-edit variants. *)
