(** The exploration driver: fan a variant family out over the domain
    {!Pool}, deduplicate through the content-addressed {!Cache}, and
    merge deterministically.

    Running the same work list with any [--jobs] value produces the same
    {!report} rows, the same cache statistics (single-flight computes
    each digest exactly once) and the same Pareto fronts; only [wall_ms]
    and the per-worker telemetry vary. *)

module Spec = Cpa_system.Spec
module Engine = Cpa_system.Engine

type item = {
  label : string;
  build : unit -> Spec.t;
      (** must build the spec — streams included — from scratch on every
          call: it runs on a worker domain and the resulting curves must
          be domain-local (see {!Pool}) *)
}

val item_of_variant : base:(unit -> Spec.t) -> Space.variant -> item
(** The worker builds [base ()] and applies the variant's edits. *)

val items_of_variants :
  base:(unit -> Spec.t) -> Space.variant list -> item list

val item_of_description : label:string -> Cpa_system.Spec_file.t -> item
(** Rebuilds the spec from the parsed description ([Spec_file.to_spec])
    worker-side; descriptions are pure data and safe to share. *)

type row = {
  label : string;
  digest : string;
  summary : (Summary.t, string) result;
      (** [Error] carries the engine's rejection reason (invalid variant,
          cyclic dependencies) *)
  cache_hit : bool;  (** served from an earlier identical variant *)
}

type report = {
  rows : row list;  (** in item order *)
  jobs : int;
  modes : Engine.mode list;
  cache : Cache.stats;
      (** renormalised to the returned prefix when [interrupted] *)
  wall_ms : float;
  workers : Pool.worker_stat list;
  interrupted : Guard.Error.t option;
      (** [Some reason] when the sweep was stopped by the guard: [rows]
          is then the contiguous completed prefix of the work list *)
}

val run :
  ?jobs:int ->
  ?modes:Engine.mode list ->
  ?guard:Guard.t ->
  item list ->
  report
(** Evaluates every item ([modes] defaults to {!Summary.default_modes},
    [jobs] to {!Pool.default_jobs}).  Item-level analysis errors are
    captured in the rows; only programming errors (unknown edit targets,
    malformed packings) escape as exceptions.

    With [guard], the sweep stops cooperatively when the token trips
    (deadline, budget, cancellation): every worker domain is joined and
    the report carries the deterministic completed prefix in [rows] plus
    the reason in [interrupted] — completed work is never discarded.
    Interruption granularity is one variant; the engine runs inside
    items are not themselves guarded. *)

val pareto : report -> mode:Engine.mode -> row list
(** The non-dominated rows for [mode] (see {!Summary.pareto}), in item
    order; rows with errors never participate. *)
