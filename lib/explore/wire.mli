(** Wire-level (de)serialization of {!Space} edit lists.

    The serving layer ships system deltas over sockets as JSON; the
    sweep driver builds the same edits programmatically.  This module is
    the single codec both share, so a delta captured from a client can
    be replayed through the driver (and vice versa) byte-for-byte.

    The rendering is {e canonical}: objects carry their keys in a fixed
    order, integers print without padding, and no insignificant
    whitespace is emitted — so [parse (print edits) = Ok edits] and the
    printed form of equal edit lists is byte-identical (the qcheck
    property in [test_serve.ml]). *)

(** A minimal self-contained JSON value — the repository deliberately
    carries no external JSON dependency.  [to_string] escapes control
    characters and emits objects in key order; [of_string] accepts
    arbitrary whitespace and [\uXXXX] escapes (decoded to UTF-8). *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact, deterministic rendering (no trailing newline). *)

  val of_string : string -> (t, string) result
  (** Parses one JSON value; trailing garbage after the value is an
      error.  Errors carry a byte offset. *)

  val member : string -> t -> t option
  (** Object field lookup; [None] on non-objects too. *)

  val to_int : t -> int option
  (** [Int n] (and integral [Float]) as [Some n]. *)

  val to_str : t -> string option
end

val edit_to_json : Space.edit -> Json.t
(** One edit as a tagged object, e.g.
    [{"edit":"cet-scale","task":"T3","percent":120}]. *)

val edit_of_json : Json.t -> (Space.edit, string) result

val edits_to_json : Space.edit list -> Json.t
(** The list as a JSON array. *)

val edits_of_json : Json.t -> (Space.edit list, string) result
(** Fails on the first malformed element, with its index in the
    message. *)

val print : Space.edit list -> string
(** [Json.to_string] of {!edits_to_json} — the canonical wire form. *)

val parse : string -> (Space.edit list, string) result
(** Inverse of {!print}: [parse (print edits) = Ok edits]. *)
