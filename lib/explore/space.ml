module Spec = Cpa_system.Spec
module Interval = Timebase.Interval
module Stream = Event_model.Stream

type edit =
  | Source_period of { source : string; period : int }
  | Source_jitter of {
      source : string;
      period : int;
      jitter : int;
      d_min : int;
    }
  | Cet_scale of { task : string; percent : int }
  | Task_priority of { task : string; priority : int }
  | Frame_priority of { frame : string; priority : int }
  | Frame_tx of { frame : string; tx : Interval.t }
  | Propagation_mode of {
      task : string option;
      mode : Event_model.Propagation.mode;
    }
  | Backend of {
      resource : string;
      backend : Spec.backend;
    }
  | Repack of packing

and packing = {
  bus : string;
  groups : string list list;
  bits_per_signal : int;
  bit_time : int;
}

let packing_label p =
  String.concat "|" (List.map (String.concat "+") p.groups)

let edit_label = function
  | Source_period { source; period } ->
    Printf.sprintf "%s.period=%d" source period
  | Source_jitter { source; period; jitter; _ } ->
    Printf.sprintf "%s.period=%d+j%d" source period jitter
  | Cet_scale { task; percent } -> Printf.sprintf "%s.cet=%d%%" task percent
  | Task_priority { task; priority } ->
    Printf.sprintf "%s.prio=%d" task priority
  | Frame_priority { frame; priority } ->
    Printf.sprintf "%s.prio=%d" frame priority
  | Frame_tx { frame; tx } ->
    Printf.sprintf "%s.tx=%s" frame (Interval.to_string tx)
  | Propagation_mode { task = None; mode } ->
    Printf.sprintf "propagation=%s" (Event_model.Propagation.mode_name mode)
  | Propagation_mode { task = Some task; mode } ->
    Printf.sprintf "%s.propagation=%s" task
      (Event_model.Propagation.mode_name mode)
  | Backend { resource; backend } ->
    Printf.sprintf "%s.backend=%s" resource
      (match backend with Spec.Cpa -> "cpa" | Spec.Rtc -> "rtc")
  | Repack p -> "layout=" ^ packing_label p

let replace_source spec ~source stream =
  let found = ref false in
  let sources =
    List.map
      (fun (name, s) ->
        if String.equal name source then begin
          found := true;
          name, stream
        end
        else name, s)
      spec.Spec.sources
  in
  if not !found then raise Not_found;
  { spec with sources }

let update_task spec ~task f =
  let found = ref false in
  let tasks =
    List.map
      (fun (k : Spec.task) ->
        if String.equal k.task_name task then begin
          found := true;
          f k
        end
        else k)
      spec.Spec.tasks
  in
  if not !found then raise Not_found;
  { spec with tasks }

let update_frame spec ~frame f =
  let found = ref false in
  let frames =
    List.map
      (fun (fr : Spec.frame) ->
        if String.equal fr.frame_name frame then begin
          found := true;
          f fr
        end
        else fr)
      spec.Spec.frames
  in
  if not !found then raise Not_found;
  { spec with frames }

(* ------------------------------------------------------------------ *)
(* Repacking *)

(* The frame a repacked signal landed in, indexed by signal name. *)
let frame_of_signal assignment signal =
  match List.assoc_opt signal assignment with
  | Some frame -> frame
  | None -> raise Not_found

let rewrite ~repacked ~assignment activation =
  let rec go = function
    | (Spec.From_source _ | Spec.From_output _) as a -> a
    | Spec.From_signal { frame; signal } when List.mem frame repacked ->
      Spec.From_signal { frame = frame_of_signal assignment signal; signal }
    | Spec.From_signal _ as a -> a
    | Spec.From_frame f when List.mem f repacked ->
      invalid_arg
        (Printf.sprintf
           "Space.Repack: activation references repacked frame %s" f)
    | Spec.From_frame _ as a -> a
    | Spec.Or_of acts -> Spec.Or_of (List.map go acts)
    | Spec.And_of acts -> Spec.And_of (List.map go acts)
  in
  go activation

let apply_packing spec p =
  let on_bus, others =
    List.partition
      (fun (f : Spec.frame) -> String.equal f.bus p.bus)
      spec.Spec.frames
  in
  if on_bus = [] then raise Not_found;
  let repacked = List.map (fun (f : Spec.frame) -> f.Spec.frame_name) on_bus in
  let bindings =
    List.concat_map
      (fun (f : Spec.frame) ->
        List.map (fun (s : Spec.signal_binding) -> s.Spec.signal_name, s)
          f.Spec.signals)
      on_bus
  in
  (* the groups must partition exactly the signals currently on the bus *)
  let grouped = List.concat p.groups in
  let current = List.map fst bindings in
  let sorted = List.sort String.compare in
  if sorted grouped <> sorted current then
    invalid_arg
      (Printf.sprintf
         "Space.Repack: groups must partition the signals of bus %s" p.bus);
  let new_frames =
    List.mapi
      (fun i group ->
        let name = Printf.sprintf "LF%d" (i + 1) in
        let layout =
          match
            Comstack.Layout.make
              (List.map
                 (fun s ->
                   { Comstack.Layout.field_name = s;
                     bits = p.bits_per_signal })
                 group)
          with
          | Ok l -> l
          | Error e -> invalid_arg ("Space.Repack: " ^ e)
        in
        let tx = Comstack.Layout.tx_interval ~bit_time:p.bit_time layout in
        let signals = List.map (fun s -> List.assoc s bindings) group in
        (* A direct frame needs at least one triggering signal; a group
           made entirely of pending signals would be un-sendable, so
           promote its signals to triggering (every write sends). *)
        let signals =
          if
            List.exists
              (fun (s : Spec.signal_binding) ->
                s.property = Hem.Model.Triggering)
              signals
          then signals
          else
            List.map
              (fun (s : Spec.signal_binding) ->
                { s with property = Hem.Model.Triggering })
              signals
        in
        Spec.frame ~name ~bus:p.bus ~send_type:Comstack.Frame.Direct
          ~tx_time:tx ~priority:(i + 1) ~signals ())
      p.groups
  in
  let assignment =
    List.concat
      (List.mapi
         (fun i group ->
           let name = Printf.sprintf "LF%d" (i + 1) in
           List.map (fun s -> s, name) group)
         p.groups)
  in
  let fix = rewrite ~repacked ~assignment in
  let new_frames =
    List.map
      (fun (f : Spec.frame) ->
        { f with
          signals =
            List.map
              (fun (s : Spec.signal_binding) -> { s with origin = fix s.origin })
              f.Spec.signals })
      new_frames
  in
  let others =
    List.map
      (fun (f : Spec.frame) ->
        { f with
          signals =
            List.map
              (fun (s : Spec.signal_binding) -> { s with origin = fix s.origin })
              f.Spec.signals })
      others
  in
  let tasks =
    List.map
      (fun (k : Spec.task) -> { k with activation = fix k.activation })
      spec.Spec.tasks
  in
  { spec with tasks; frames = others @ new_frames }

(* ------------------------------------------------------------------ *)

let apply spec = function
  | Source_period { source; period } ->
    replace_source spec ~source (Stream.periodic ~name:source ~period)
  | Source_jitter { source; period; jitter; d_min } ->
    replace_source spec ~source
      (Stream.periodic_jitter ~name:source ~period ~jitter ~d_min ())
  | Cet_scale { task; percent } ->
    Cpa_system.Sensitivity.scale_cet spec ~task ~percent
  | Task_priority { task; priority } ->
    update_task spec ~task (fun k -> { k with priority })
  | Frame_priority { frame; priority } ->
    update_frame spec ~frame (fun f -> { f with frame_priority = priority })
  | Frame_tx { frame; tx } ->
    update_frame spec ~frame (fun f -> { f with tx_time = tx })
  | Propagation_mode { task = None; mode } -> Spec.with_propagation mode spec
  | Propagation_mode { task = Some task; mode } ->
    update_task spec ~task (fun k -> { k with propagation = Some mode })
  | Backend { resource; backend } ->
    let found = ref false in
    let resources =
      List.map
        (fun (r : Spec.resource) ->
          if String.equal r.res_name resource then begin
            found := true;
            { r with backend }
          end
          else r)
        spec.Spec.resources
    in
    if not !found then raise Not_found;
    { spec with resources }
  | Repack p -> apply_packing spec p

let apply_all spec edits = List.fold_left apply spec edits

(* Evaluated against the PRE-edit spec: a Repack names the frames that
   exist before the layout change plus the LF<i> frames it creates, so a
   warm engine can invalidate both the replaced and the replacement
   elements. *)
let touched spec = function
  | Source_period { source; _ } | Source_jitter { source; _ } ->
    [ source ], []
  | Cet_scale { task; _ } | Task_priority { task; _ } -> [], [ task ]
  | Frame_priority { frame; _ } | Frame_tx { frame; _ } -> [], [ frame ]
  | Propagation_mode { task = Some task; _ } -> [], [ task ]
  | Propagation_mode { task = None; _ } ->
    (* a default-mode change can re-derive every task output *)
    [], List.map (fun (k : Spec.task) -> k.task_name) spec.Spec.tasks
  | Backend { resource; _ } ->
    (* swapping the local analysis re-derives every element mapped to
       the resource *)
    ( [],
      List.filter_map
        (fun (k : Spec.task) ->
          if String.equal k.resource resource then Some k.task_name else None)
        spec.Spec.tasks
      @ List.filter_map
          (fun (f : Spec.frame) ->
            if String.equal f.bus resource then Some f.frame_name else None)
          spec.Spec.frames )
  | Repack p ->
    let old_frames =
      List.filter_map
        (fun (f : Spec.frame) ->
          if String.equal f.bus p.bus then Some f.frame_name else None)
        spec.Spec.frames
    in
    let new_frames =
      List.mapi (fun i _ -> Printf.sprintf "LF%d" (i + 1)) p.groups
    in
    [], old_frames @ new_frames

(* ------------------------------------------------------------------ *)
(* Axes and grids *)

type axis = {
  axis_name : string;
  points : (string * edit) list;
}

type variant = {
  label : string;
  edits : edit list;
}

let axis axis_name points = { axis_name; points }

let int_axis axis_name make values =
  { axis_name;
    points = List.map (fun v -> string_of_int v, make v) values }

let grid axes =
  let rec go = function
    | [] -> [ { label = ""; edits = [] } ]
    | ax :: rest ->
      let tails = go rest in
      List.concat_map
        (fun (point_label, edit) ->
          let prefix = Printf.sprintf "%s=%s" ax.axis_name point_label in
          List.map
            (fun tail ->
              {
                label =
                  (if tail.label = "" then prefix
                   else prefix ^ " " ^ tail.label);
                edits = edit :: tail.edits;
              })
            tails)
        ax.points
  in
  go axes

(* ------------------------------------------------------------------ *)
(* Layout enumeration *)

(* Set partitions in a deterministic order: the partition keeping the
   element order of the input, with each new element appended to every
   existing group in turn and then as a fresh singleton group. *)
let rec set_partitions = function
  | [] -> [ [] ]
  | x :: rest ->
    List.concat_map
      (fun partition ->
        let rec insert before = function
          | [] -> [ List.rev_append before [ [ x ] ] ]
          | group :: after ->
            (List.rev_append before ((group @ [ x ]) :: after))
            :: insert (group :: before) after
        in
        insert [] partition)
      (set_partitions rest)

let packings ?max_frames ?(bits_per_signal = 8) ?(bit_time = 1) spec ~bus () =
  let on_bus =
    List.filter (fun (f : Spec.frame) -> String.equal f.bus bus)
      spec.Spec.frames
  in
  if on_bus = [] then raise Not_found;
  let signals =
    List.concat_map
      (fun (f : Spec.frame) ->
        List.map (fun (s : Spec.signal_binding) -> s.Spec.signal_name)
          f.Spec.signals)
      on_bus
  in
  let max_frames =
    match max_frames with Some m -> m | None -> List.length signals
  in
  let fits group =
    match
      Comstack.Layout.make
        (List.map
           (fun s -> { Comstack.Layout.field_name = s; bits = bits_per_signal })
           group)
    with
    | Ok _ -> true
    | Error _ -> false
  in
  List.filter_map
    (fun groups ->
      if List.length groups <= max_frames && List.for_all fits groups then
        Some { bus; groups; bits_per_signal; bit_time }
      else None)
    (set_partitions signals)

let packing_variants ?max_frames ?bits_per_signal ?bit_time spec ~bus () =
  List.map
    (fun p -> { label = "layout=" ^ packing_label p; edits = [ Repack p ] })
    (packings ?max_frames ?bits_per_signal ?bit_time spec ~bus ())
