(** Deterministic renderings of exploration reports.

    Everything except {!timing_line} depends only on the report rows and
    cache statistics, which are independent of [--jobs] — the CLI prints
    these on stdout and the byte-identity determinism guard in
    [scripts/check.sh] diffs them across job counts.  {!timing_line}
    carries wall-clock and per-worker telemetry and belongs on stderr. *)

val table : Format.formatter -> Driver.report -> unit
(** Aligned text: one row per variant with the hierarchical / flat
    worst-case latencies, the reduction, utilization and margin (of the
    hierarchical run when present, the first mode otherwise), and a [dup]
    marker for cache hits; ends with {!summary_line}. *)

val csv : Format.formatter -> Driver.report -> unit
(** One line per (variant, mode):
    [label,digest,cache_hit,mode,converged,worst_latency,max_util_pct,margin_pct,iterations,reduction_pct]. *)

val json : Format.formatter -> Driver.report -> unit
(** A single JSON object with per-variant, per-mode metrics and the
    cache statistics. *)

val pareto_table :
  Format.formatter -> Driver.report -> mode:Cpa_system.Engine.mode -> unit
(** The non-dominated variants for [mode], one per line. *)

val summary_line : Format.formatter -> Driver.report -> unit
(** ["N variants, U unique, H cache hits"] — deterministic. *)

val timing_line : Format.formatter -> Driver.report -> unit
(** Wall time, job count and per-worker task/busy telemetry.  Not
    deterministic; print to stderr. *)
