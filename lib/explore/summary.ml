module Engine = Cpa_system.Engine
module Interval = Timebase.Interval

type metrics = {
  converged : bool;
  degraded : bool;
  worst_latency : int option;
  max_util_pct : float;
  margin_pct : float;
  iterations : int;
}

type mode_summary = {
  mode : Engine.mode;
  metrics : metrics;
  responses : (string * Interval.t option) list;
}

type t = {
  digest : string;
  modes : mode_summary list;
}

let default_modes = [ Engine.Hierarchical; Engine.Flat_sem ]

let summarise_result (result : Engine.result) =
  let responses =
    List.map
      (fun (o : Engine.element_outcome) ->
        ( o.element,
          match o.outcome with
          | Scheduling.Busy_window.Bounded i -> Some i
          | Scheduling.Busy_window.Unbounded _ -> None ))
      result.outcomes
  in
  let worst_latency =
    List.fold_left
      (fun acc (_, r) ->
        match acc, r with
        | Some worst, Some i -> Some (Stdlib.max worst (Interval.hi i))
        | _, None | None, _ -> None)
      (Some 0) responses
  in
  let max_util_pct =
    List.fold_left
      (fun acc (_, u) -> Stdlib.max acc u)
      0.0
      (Cpa_system.Report.utilizations result)
  in
  {
    mode = result.mode;
    metrics =
      {
        converged = result.converged;
        degraded =
          (match result.status with
          | Engine.Degraded _ -> true
          | Engine.Converged | Engine.Overloaded -> false);
        worst_latency;
        max_util_pct;
        margin_pct = 100.0 -. max_util_pct;
        iterations = result.iterations;
      };
    responses;
  }

let evaluate ?(modes = default_modes) ~digest spec =
  let rec go acc = function
    | [] -> Ok { digest; modes = List.rev acc }
    | mode :: rest -> begin
      match Engine.analyse ~mode spec with
      | Error e ->
        Error
          (Printf.sprintf "%s: %s" (Engine.mode_name mode)
             (Guard.Error.to_string e))
      | Ok result -> go (summarise_result result :: acc) rest
    end
  in
  go [] modes

let mode_summary t mode = List.find_opt (fun m -> m.mode = mode) t.modes

let reduction_pct t =
  match mode_summary t Engine.Hierarchical, mode_summary t Engine.Flat_sem with
  | Some hem, Some flat -> begin
    match hem.metrics.worst_latency, flat.metrics.worst_latency with
    | Some h, Some f when f > 0 ->
      Some (100.0 *. float_of_int (f - h) /. float_of_int f)
    | _ -> None
  end
  | _ -> None

(* Pareto: (latency, util, -margin), all minimised. *)
let objectives ~mode t =
  match mode_summary t mode with
  | None -> None
  | Some m ->
    if not m.metrics.converged then None
    else
      Option.map
        (fun latency ->
          ( latency,
            m.metrics.max_util_pct,
            -.m.metrics.margin_pct ))
        m.metrics.worst_latency

let dominates (a1, a2, a3) (b1, b2, b3) =
  a1 <= b1 && a2 <= b2 && a3 <= b3 && (a1 < b1 || a2 < b2 || a3 < b3)

let pareto ~mode ts =
  let objs = List.mapi (fun i t -> i, objectives ~mode t) ts in
  List.filter_map
    (fun (i, o) ->
      match o with
      | None -> None
      | Some oi ->
        if
          List.exists
            (fun (_, o') ->
              match o' with Some oj -> dominates oj oi | None -> false)
            objs
        then None
        else Some i)
    objs
