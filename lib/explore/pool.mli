(** Fixed-size domain pool with a chunked work queue, work stealing and
    a deterministic merge.

    [map ~jobs f n] evaluates [f 0 .. f (n - 1)] on a pool of domains
    pulling work from a shared queue and returns the results {e in index
    order}, so the output is independent of [jobs] and of how the
    scheduler interleaved the workers.

    {b Effective parallelism.}  [jobs] is a {e request}: the pool runs
    [min jobs (Domain.recommended_domain_count ())] worker domains
    (see {!effective_jobs}), because oversubscribing cores makes OCaml 5
    throughput collapse — every minor collection is a stop-the-world
    handshake across all domains.  Results are unaffected (the merge is
    index-ordered either way); only the schedule changes.  Pass
    [~oversubscribe:true] to force one domain per requested job (spawn-
    path tests, overhead measurements).  [effective_jobs _ = 1] runs
    everything in the calling domain (no spawn), which is the baseline
    the determinism guard compares against.

    {b Scheduling.}  Unguarded maps claim {e chunks} of indices off the
    shared queue (one atomic operation per chunk instead of one per
    item) into a per-worker deque; owners drain their deque from the
    front in small batches while idle workers steal the back half of a
    peer's remainder, so the tail stays balanced without per-item
    round-trips.  Maps with a real guard — or with fault injection
    armed — fall back to per-item claims in globally ascending order,
    which is what makes the interrupted prefix deterministic across
    jobs counts (see {!map_guarded}).

    {b Domain-locality contract.}  [f] runs on a worker domain.  Every
    mutable structure it touches must be created inside the call — in
    particular specs and their event streams, whose memoized curves are
    not synchronised (see [Event_model.Curve]).  This is why the
    exploration drivers take {e builders} ([unit -> Spec.t]) and apply
    edits worker-side instead of accepting pre-built specs: a [Spec.t]
    built once in the parent domain and probed from several workers would
    race on its curve memo tables.

    Telemetry: every worker runs under its own [Obs.Metrics] scope
    ([<label>.worker<i>]), whose snapshot is returned in
    {!worker_stat.counters}; the pool bumps the global counters
    [explore.pool.tasks], [explore.pool.maps], [explore.pool.interrupts]
    and [explore.pool.steals], and records the deepest per-worker deque
    remainder of the last chunked map in the gauge
    [explore.pool.deque_hwm].  When [Obs.Hist.enabled], each worker
    times its items into a private histogram and the pool merges them
    into the registered distribution [<label>.task_ns] after the join.
    When a tracing sink is installed, one [<label>.worker<i>] span per
    worker (with [tasks] / [steals] / [busy_us] / [idle_us] attributes)
    is emitted {e after} the join, with explicit timestamps, so worker
    domains never touch the sink concurrently. *)

type worker_stat = {
  worker : int;  (** worker index, [0 .. effective_jobs - 1] *)
  tasks : int;  (** queue items this worker executed *)
  steals : int;  (** deque back-halves this worker stole from peers *)
  busy_us : float;  (** wall time of the worker's drain loop *)
  idle_us : float;
      (** tail imbalance: how long this worker's peers kept running
          after it finished (0 for the last finisher) *)
  counters : (string * int) list;
      (** non-zero metrics charged to the worker's scope, sorted by name *)
}

(** Result of a guarded map.  [Interrupted] carries the {e contiguous
    completed prefix} [f 0 .. f (c - 1)]: items at or beyond [c] may
    also have completed on other workers before the stop propagated
    ([attempted] counts all completions), but only the prefix is
    deterministic, so only the prefix is returned. *)
type 'a outcome =
  | Complete of 'a list
  | Interrupted of {
      completed : 'a list;  (** the contiguous prefix, in index order *)
      reason : Guard.Error.t;
      attempted : int;  (** items that completed anywhere in the queue *)
    }

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the hardware parallelism. *)

val effective_jobs : ?oversubscribe:bool -> int -> int
(** Number of worker domains a map with this [jobs] request will run:
    [max 1 (min jobs (default_jobs ()))], or [jobs] itself when
    [oversubscribe] is set. *)

val map :
  ?jobs:int -> ?oversubscribe:bool -> ?label:string -> (int -> 'a) -> int ->
  'a list
(** [map ~jobs f n] is [[f 0; ...; f (n - 1)]], evaluated on
    [effective_jobs jobs] domains.  [jobs] defaults to {!default_jobs};
    [label] (default ["explore.pool"]) names the metric scopes and
    spans.  If any [f i] raises, the exception of the {e smallest}
    failing index is re-raised after all workers have been joined
    (deterministic error too).
    @raise Invalid_argument when [jobs < 1] or [n < 0]. *)

val map_stats :
  ?jobs:int -> ?oversubscribe:bool -> ?label:string -> (int -> 'a) -> int ->
  'a list * worker_stat list
(** Like {!map}, also returning per-worker telemetry (in worker order;
    one entry per {e effective} worker). *)

val map_guarded :
  ?jobs:int ->
  ?oversubscribe:bool ->
  ?label:string ->
  ?guard:Guard.t ->
  (int -> 'a) ->
  int ->
  'a outcome * worker_stat list
(** Like {!map_stats}, but checks [guard] before every claim: when it
    trips (cancellation, deadline, budget), every worker stops at its
    next claim, all domains are joined, and the call returns
    [Interrupted] with the completed prefix instead of raising.  [f]
    itself runs unguarded — interruption granularity is one queue item.
    Guarded maps (and maps with fault injection armed) claim items
    one at a time in globally ascending order — chunking never changes
    interruption semantics.

    Error precedence after the join (all deterministic): the smallest
    index whose [f i] raised wins; then the lowest-numbered worker's
    crash (an exception escaping the claim path itself); then the
    interruption.  On all paths every spawned domain has been joined —
    including when [Domain.spawn] itself fails mid-way, in which case
    the already-running helpers are drained, joined, and the spawn
    failure re-raised.

    Fault-injection sites (see {!Guard.Inject}): ["<label>.item:<i>"]
    fired by the claiming worker before executing item [i] (a [Crash]
    there is a worker death, a [Trip] a forced stop), and
    ["<label>.spawn:<k>"] fired before spawning helper
    [k <= effective_jobs - 1] (combine with [~oversubscribe:true] to
    exercise spawns regardless of the machine's core count). *)

(** Persistent worker domains with pinned per-worker mailboxes — the
    long-running counterpart of {!map} for servers.  Where a map spawns
    domains per call and merges once, a service keeps [jobs] domains
    alive and lets callers submit jobs to a {e specific} worker: jobs
    pinned to the same worker run sequentially on the same domain, which
    is how a serving session honours the pool's domain-locality contract
    (its cached streams' curve memo tables are unsynchronised, so every
    request touching one session must run where the session lives).
    There is deliberately no stealing between mailboxes.

    Jobs are [unit -> unit] thunks; delivering results (and exceptions —
    a raising job is swallowed, the worker survives) is the submitter's
    wrapper's concern.  Metrics: [explore.pool.service.jobs] accepted,
    [explore.pool.service.rejected] refused after shutdown began. *)
module Service : sig
  type t

  val create : ?jobs:int -> ?label:string -> unit -> t
  (** Spawns [effective_jobs jobs] worker domains ([jobs] defaults to
      {!default_jobs}; [label] defaults to ["explore.pool.service"]).
      @raise Invalid_argument when [jobs < 1]. *)

  val jobs : t -> int
  (** Number of worker domains actually running. *)

  val label : t -> string

  val submit : t -> worker:int -> (unit -> unit) -> bool
  (** Enqueue a job on worker [worker]'s mailbox; [false] when the
      service is shutting down (the job was not enqueued).
      @raise Invalid_argument when [worker] is outside [0 .. jobs-1]. *)

  val depth : t -> worker:int -> int
  (** Jobs currently queued (not yet started) on a worker — the
      admission-control signal.
      @raise Invalid_argument when [worker] is outside [0 .. jobs-1]. *)

  val scratch : unit -> (string, string) Hashtbl.t
  (** The calling {e domain}'s scratch table ({!Domain.DLS}-backed).
      Jobs running on a worker see that worker's private table; entries
      are never shared or stolen, so no synchronisation is needed.  By
      convention entries belonging to one pinned owner (a serving
      session) use keys prefixed with its id, so {!clear_scratch} can
      drop them when the owner goes away. *)

  val clear_scratch : t -> worker:int -> prefix:string -> bool
  (** Submit a job to worker [worker] removing every scratch entry whose
      key starts with [prefix] — mailbox ordering guarantees the clear
      runs after any in-flight jobs of the departing owner.  Cleared
      entries are counted in [explore.pool.service.scratch_cleared].
      Returns [false] when the service is shutting down (worker scratch
      dies with its domain, so nothing leaks).
      @raise Invalid_argument when [worker] is outside [0 .. jobs-1]. *)

  val shutdown : t -> unit
  (** Stop accepting jobs, let every worker drain its mailbox, and join
      all worker domains.  Idempotent in effect but must only be called
      once. *)
end
