(** Immutable per-variant analysis summaries.

    A summary is the pure data extracted from one or more engine runs on
    a variant — safe to publish through the shared result {!Cache} and to
    read from any domain, unlike [Engine.result] (which carries resolver
    closures over live memo state). *)

module Engine = Cpa_system.Engine

type metrics = {
  converged : bool;
  degraded : bool;
      (** the engine run was cut short (deadline, budget, cancellation
          or iteration cap) and returned widened conservative bounds —
          [worst_latency] is then usually [None] and must not be read as
          a genuine overload *)
  worst_latency : int option;
      (** largest worst-case response over all elements; [None] when any
          element is unbounded *)
  max_util_pct : float;  (** highest resource load, percent *)
  margin_pct : float;
      (** load margin [100 - max_util_pct]: how much uniform scaling
          headroom the busiest resource retains (negative when
          overloaded) *)
  iterations : int;
}

type mode_summary = {
  mode : Engine.mode;
  metrics : metrics;
  responses : (string * Timebase.Interval.t option) list;
      (** per-element response bounds, in the engine's element order *)
}

type t = {
  digest : string;  (** [Spec.digest] of the evaluated variant *)
  modes : mode_summary list;  (** one entry per requested mode, in order *)
}

val default_modes : Engine.mode list
(** [[Hierarchical; Flat_sem]] — the paper's comparison. *)

val evaluate :
  ?modes:Engine.mode list -> digest:string -> Cpa_system.Spec.t ->
  (t, string) result
(** Analyses the spec in every requested mode ([default_modes] when
    omitted).  Must run in the domain that built the spec. *)

val mode_summary : t -> Engine.mode -> mode_summary option

val reduction_pct : t -> float option
(** Worst-case latency reduction of [Hierarchical] over [Flat_sem], in
    percent, when both modes were evaluated and bounded. *)

(** {1 Pareto front}

    Objectives per mode: minimise worst-case latency, minimise peak
    utilization, maximise load margin.  Only converged summaries with a
    bounded latency participate. *)

val pareto : mode:Engine.mode -> t list -> int list
(** Indices (ascending) of the non-dominated summaries.  A summary
    dominates another when it is no worse in all three objectives and
    strictly better in at least one; equal-objective duplicates are all
    kept, so the front is independent of input order. *)
