module Spec = Cpa_system.Spec
module Engine = Cpa_system.Engine

type item = {
  label : string;
  build : unit -> Spec.t;
}

let item_of_variant ~base (v : Space.variant) =
  { label = v.Space.label; build = (fun () -> Space.apply_all (base ()) v.Space.edits) }

let items_of_variants ~base variants =
  List.map (item_of_variant ~base) variants

let item_of_description ~label description =
  { label; build = (fun () -> Cpa_system.Spec_file.to_spec description) }

type row = {
  label : string;
  digest : string;
  summary : (Summary.t, string) result;
  cache_hit : bool;
}

type report = {
  rows : row list;
  jobs : int;
  modes : Engine.mode list;
  cache : Cache.stats;
  wall_ms : float;
  workers : Pool.worker_stat list;
  interrupted : Guard.Error.t option;
}

(* Per-domain scratch for spec canonicalisation: one buffer per worker,
   grown once and reused for every item the worker digests, instead of
   allocating (and re-growing) a fresh buffer per spec.  Digest values
   are unchanged, so cache keys — and the cache-hit invariants the
   driver tests pin down — are unaffected. *)
let digest_scratch : Buffer.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Buffer.create 4096)

let run ?jobs ?(modes = Summary.default_modes) ?(guard = Guard.none) items =
  let jobs =
    match jobs with Some j -> j | None -> Pool.default_jobs ()
  in
  let cache : (Summary.t, string) result Cache.t = Cache.create () in
  let items = Array.of_list items in
  let t0 = Unix.gettimeofday () in
  let outcome, workers =
    Pool.map_guarded ~jobs ~label:"explore" ~guard
      (fun i ->
        let item = items.(i) in
        let spec = item.build () in
        let digest = Spec.digest_with (Domain.DLS.get digest_scratch) spec in
        let summary, _raced_hit =
          Cache.find_or_compute cache ~key:digest (fun () ->
            Summary.evaluate ~modes ~digest spec)
        in
        { label = item.label; digest; summary; cache_hit = false })
      (Array.length items)
  in
  let rows, interrupted =
    match outcome with
    | Pool.Complete rows -> rows, None
    | Pool.Interrupted { completed; reason; _ } -> completed, Some reason
  in
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  (* Which worker won the single-flight race is schedule-dependent, so
     the per-row hit flag is normalised on the merged order: the first
     occurrence of a digest is the miss, every later one the hit.  This
     keeps the whole report independent of --jobs. *)
  let seen = Hashtbl.create 64 in
  let rows =
    List.map
      (fun r ->
        if Hashtbl.mem seen r.digest then { r with cache_hit = true }
        else begin
          Hashtbl.add seen r.digest ();
          r
        end)
      rows
  in
  (* A complete run reports the cache's own statistics (deterministic by
     single-flight).  An interrupted run's cache may hold computes for
     items beyond the returned prefix, and how many is schedule-
     dependent — so the stats are renormalised to the prefix, keeping
     the report byte-identical at any job count for a deterministic
     interruption point. *)
  let cache_stats =
    match interrupted with
    | None -> Cache.stats cache
    | Some _ ->
      let lookups = List.length rows in
      let entries =
        List.length (List.filter (fun r -> not r.cache_hit) rows)
      in
      { Cache.lookups; entries; hits = lookups - entries }
  in
  { rows; jobs; modes; cache = cache_stats; wall_ms; workers; interrupted }

let pareto report ~mode =
  let ok_rows =
    List.filter_map
      (fun r ->
        match r.summary with Ok s -> Some (r, s) | Error _ -> None)
      report.rows
  in
  let front =
    Summary.pareto ~mode (List.map snd ok_rows)
  in
  List.filteri (fun i _ -> List.mem i front) (List.map fst ok_rows)
