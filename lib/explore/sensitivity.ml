module Engine = Cpa_system.Engine

let schedulable ?mode spec =
  match Engine.analyse ?mode spec with
  | Ok result -> result.Engine.converged
  | Error _ -> false

(* [k] interior probe points of the open interval (lo, hi), distinct and
   ascending; fewer when the interval is narrow. *)
let probe_points ~lo ~hi k =
  let width = hi - lo in
  let rec collect acc j =
    if j = 0 then acc
    else
      let p = lo + (j * width / (k + 1)) in
      let acc = if p > lo && p < hi && not (List.mem p acc) then p :: acc else acc in
      collect acc (j - 1)
  in
  collect [] k

module Sens = Cpa_system.Sensitivity

(* Largest x in [lo, hi] with [good x], for a monotone predicate (true
   then false), evaluating up to [jobs] probes per round in parallel.
   Parallel evaluation of a monotone predicate cannot change the answer,
   only the bracket-shrinking rate, so this matches serial bisection
   exactly.  Like [Sensitivity.search_max], both endpoints are probed
   first (in parallel) so degenerate searches — empty interval, nothing
   feasible, or endpoint feasibility contradicting monotonicity — return
   a structured verdict instead of a conflated [None] or an inverted
   bracket. *)
let multisect_max ~jobs ~label ~lo ~hi good : Sens.verdict =
  if lo > hi then Sens.Empty_interval { lo; hi }
  else
    let endpoints =
      if hi = lo then
        let g = good lo in
        [ g; g ]
      else
        Pool.map ~jobs ~label (fun i -> good (if i = 0 then lo else hi)) 2
    in
    match endpoints with
    | [ false; false ] -> Sens.No_margin
    | [ false; true ] ->
      Sens.Non_monotone { lo_feasible = false; hi_feasible = true }
    | [ true; true ] -> Sens.Margin hi
    | [ true; false ] ->
      let rec search lo hi =
        (* invariant: good lo, not (good hi) *)
        if hi - lo <= 1 then Sens.Margin lo
        else begin
          let points = probe_points ~lo ~hi jobs in
          let points = Array.of_list points in
          let verdicts =
            Pool.map ~jobs ~label
              (fun i -> good points.(i))
              (Array.length points)
          in
          (* tightest bracket: the largest good probe and smallest bad one *)
          let lo', hi' =
            List.fold_left2
              (fun (l, h) p v ->
                if v then (Stdlib.max l p, h) else (l, Stdlib.min h p))
              (lo, hi) (Array.to_list points) verdicts
          in
          search lo' hi'
        end
      in
      search lo hi
    | _ -> assert false

let max_cet_scale_verdict ?jobs ?mode ?(limit_percent = 10_000) ~build ~task
    () =
  let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
  let good percent =
    schedulable ?mode
      (Cpa_system.Sensitivity.scale_cet (build ()) ~task ~percent)
  in
  multisect_max ~jobs ~label:"explore.sensitivity" ~lo:100 ~hi:limit_percent
    good

let max_cet_scale ?jobs ?mode ?limit_percent ~build ~task () =
  match max_cet_scale_verdict ?jobs ?mode ?limit_percent ~build ~task () with
  | Sens.Margin p -> Some p
  | Sens.No_margin | Sens.Non_monotone _ | Sens.Empty_interval _ -> None

let min_source_period_verdict ?jobs ?mode ~rebuild ~lo ~hi () =
  let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
  let good period = schedulable ?mode (rebuild period) in
  (* smallest good period: multisect_max on the negated axis, with the
     verdict mapped back (endpoints swap under negation) *)
  match
    multisect_max ~jobs ~label:"explore.sensitivity" ~lo:(-hi) ~hi:(-lo)
      (fun neg -> good (-neg))
  with
  | Sens.Margin neg -> Sens.Margin (-neg)
  | Sens.No_margin -> Sens.No_margin
  | Sens.Non_monotone { lo_feasible; hi_feasible } ->
    Sens.Non_monotone
      { lo_feasible = hi_feasible; hi_feasible = lo_feasible }
  | Sens.Empty_interval _ -> Sens.Empty_interval { lo; hi }

let min_source_period ?jobs ?mode ~rebuild ~lo ~hi () =
  if lo > hi then invalid_arg "Sensitivity.min_source_period: lo > hi";
  match min_source_period_verdict ?jobs ?mode ~rebuild ~lo ~hi () with
  | Sens.Margin p -> Some p
  | Sens.No_margin | Sens.Non_monotone _ | Sens.Empty_interval _ -> None
