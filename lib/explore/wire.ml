(* Canonical JSON codec for Space edit lists.  Hand-rolled: the repo
   carries no external JSON dependency, and the serving protocol needs a
   full value parser anyway (requests are JSON objects). *)

module Interval = Timebase.Interval
module Spec = Cpa_system.Spec

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  (* --- printing ---------------------------------------------------- *)

  let add_string buf s =
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'

  let rec add buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f ->
      (* round-trippable and never "inf"/"nan" (invalid JSON) *)
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.17g" f)
    | Str s -> add_string buf s
    | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          add buf item)
        items;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          add_string buf k;
          Buffer.add_char buf ':';
          add buf v)
        fields;
      Buffer.add_char buf '}'

  let to_string v =
    let buf = Buffer.create 128 in
    add buf v;
    Buffer.contents buf

  (* --- parsing ----------------------------------------------------- *)

  exception Fail of int * string

  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Fail (!pos, msg)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let skip_ws () =
      while
        !pos < n
        && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        advance ()
      done
    in
    let expect c =
      match peek () with
      | Some got when Char.equal got c -> advance ()
      | Some got -> fail (Printf.sprintf "expected %c, got %c" c got)
      | None -> fail (Printf.sprintf "expected %c, got end of input" c)
    in
    let literal word value =
      if !pos + String.length word <= n
         && String.equal (String.sub s !pos (String.length word)) word
      then begin
        pos := !pos + String.length word;
        value
      end
      else fail ("invalid literal, expected " ^ word)
    in
    (* UTF-8 encoding of one \uXXXX scalar (surrogate pairs unsupported:
       edits and protocol payloads are names and numbers) *)
    let add_utf8 buf code =
      if code < 0x80 then Buffer.add_char buf (Char.chr code)
      else if code < 0x800 then begin
        Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
      end
      else begin
        Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
        Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
      end
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec loop () =
        if !pos >= n then fail "unterminated string";
        let c = s.[!pos] in
        advance ();
        if Char.equal c '"' then Buffer.contents buf
        else if Char.equal c '\\' then begin
          (if !pos >= n then fail "unterminated escape");
          let e = s.[!pos] in
          advance ();
          (match e with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'n' -> Buffer.add_char buf '\n'
           | 'r' -> Buffer.add_char buf '\r'
           | 't' -> Buffer.add_char buf '\t'
           | 'u' ->
             if !pos + 4 > n then fail "truncated \\u escape";
             let hex = String.sub s !pos 4 in
             pos := !pos + 4;
             let code =
               match int_of_string_opt ("0x" ^ hex) with
               | Some c -> c
               | None -> fail "invalid \\u escape"
             in
             add_utf8 buf code
           | _ -> fail "unknown escape");
          loop ()
        end
        else begin
          Buffer.add_char buf c;
          loop ()
        end
      in
      loop ()
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && is_num_char s.[!pos] do
        advance ()
      done;
      let text = String.sub s start (!pos - start) in
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> begin
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail ("invalid number " ^ text)
      end
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              items (v :: acc)
            | Some ']' ->
              advance ();
              List.rev (v :: acc)
            | _ -> fail "expected , or ] in array"
          in
          Arr (items [])
        end
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            k, v
          in
          let rec fields acc =
            let f = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              fields (f :: acc)
            | Some '}' ->
              advance ();
              List.rev (f :: acc)
            | _ -> fail "expected , or } in object"
          in
          Obj (fields [])
        end
      | Some _ -> parse_number ()
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage after value";
      v
    with
    | v -> Ok v
    | exception Fail (at, msg) ->
      Error (Printf.sprintf "json: %s at byte %d" msg at)

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None

  let to_int = function
    | Int n -> Some n
    | Float f when Float.is_integer f -> Some (int_of_float f)
    | _ -> None

  let to_str = function
    | Str s -> Some s
    | _ -> None
end

(* --- edit codec ----------------------------------------------------- *)

open Json

let edit_to_json (e : Space.edit) =
  match e with
  | Space.Source_period { source; period } ->
    Obj [ "edit", Str "source-period"; "source", Str source;
          "period", Int period ]
  | Space.Source_jitter { source; period; jitter; d_min } ->
    Obj [ "edit", Str "source-jitter"; "source", Str source;
          "period", Int period; "jitter", Int jitter; "d-min", Int d_min ]
  | Space.Cet_scale { task; percent } ->
    Obj [ "edit", Str "cet-scale"; "task", Str task; "percent", Int percent ]
  | Space.Task_priority { task; priority } ->
    Obj [ "edit", Str "task-priority"; "task", Str task;
          "priority", Int priority ]
  | Space.Frame_priority { frame; priority } ->
    Obj [ "edit", Str "frame-priority"; "frame", Str frame;
          "priority", Int priority ]
  | Space.Frame_tx { frame; tx } ->
    Obj [ "edit", Str "frame-tx"; "frame", Str frame;
          "tx", Arr [ Int (Interval.lo tx); Int (Interval.hi tx) ] ]
  | Space.Propagation_mode { task; mode } ->
    let mode = Str (Event_model.Propagation.mode_name mode) in
    Obj
      (("edit", Str "propagation")
       :: (match task with
           | Some t -> [ "task", Str t; "mode", mode ]
           | None -> [ "mode", mode ]))
  | Space.Backend { resource; backend } ->
    Obj
      [ "edit", Str "backend"; "resource", Str resource;
        "backend",
        Str (match backend with Spec.Cpa -> "cpa" | Spec.Rtc -> "rtc") ]
  | Space.Repack { bus; groups; bits_per_signal; bit_time } ->
    Obj
      [ "edit", Str "repack"; "bus", Str bus;
        "groups",
        Arr (List.map (fun g -> Arr (List.map (fun s -> Str s) g)) groups);
        "bits-per-signal", Int bits_per_signal; "bit-time", Int bit_time ]

let field kind key extract j =
  match Option.bind (member key j) extract with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: missing or malformed %S" kind key)

let ( let* ) = Result.bind

let edit_of_json j =
  match Option.bind (member "edit" j) to_str with
  | None -> Error "edit: missing \"edit\" tag"
  | Some "source-period" ->
    let* source = field "source-period" "source" to_str j in
    let* period = field "source-period" "period" to_int j in
    Ok (Space.Source_period { source; period })
  | Some "source-jitter" ->
    let* source = field "source-jitter" "source" to_str j in
    let* period = field "source-jitter" "period" to_int j in
    let* jitter = field "source-jitter" "jitter" to_int j in
    let* d_min = field "source-jitter" "d-min" to_int j in
    Ok (Space.Source_jitter { source; period; jitter; d_min })
  | Some "cet-scale" ->
    let* task = field "cet-scale" "task" to_str j in
    let* percent = field "cet-scale" "percent" to_int j in
    Ok (Space.Cet_scale { task; percent })
  | Some "task-priority" ->
    let* task = field "task-priority" "task" to_str j in
    let* priority = field "task-priority" "priority" to_int j in
    Ok (Space.Task_priority { task; priority })
  | Some "frame-priority" ->
    let* frame = field "frame-priority" "frame" to_str j in
    let* priority = field "frame-priority" "priority" to_int j in
    Ok (Space.Frame_priority { frame; priority })
  | Some "frame-tx" ->
    let* frame = field "frame-tx" "frame" to_str j in
    let* tx =
      match member "tx" j with
      | Some (Arr [ lo; hi ]) -> begin
        match to_int lo, to_int hi with
        | Some lo, Some hi -> Ok (Interval.make ~lo ~hi)
        | _ -> Error "frame-tx: non-integer bound in \"tx\""
      end
      | _ -> Error "frame-tx: expected \"tx\":[lo,hi]"
    in
    Ok (Space.Frame_tx { frame; tx })
  | Some "propagation" ->
    let* mode_name = field "propagation" "mode" to_str j in
    let* mode =
      match Event_model.Propagation.mode_of_name mode_name with
      | Some m -> Ok m
      | None ->
        Error (Printf.sprintf "propagation: unknown mode %S" mode_name)
    in
    (* "task" is optional: absent = spec-wide default; when present it
       must be a string *)
    let* task =
      match member "task" j with
      | None -> Ok None
      | Some v -> begin
        match to_str v with
        | Some t -> Ok (Some t)
        | None -> Error "propagation: malformed \"task\""
      end
    in
    Ok (Space.Propagation_mode { task; mode })
  | Some "backend" ->
    let* resource = field "backend" "resource" to_str j in
    let* name = field "backend" "backend" to_str j in
    let* backend =
      match name with
      | "cpa" -> Ok Spec.Cpa
      | "rtc" -> Ok Spec.Rtc
      | other -> Error (Printf.sprintf "backend: unknown backend %S" other)
    in
    Ok (Space.Backend { resource; backend })
  | Some "repack" ->
    let* bus = field "repack" "bus" to_str j in
    let* groups =
      match member "groups" j with
      | Some (Arr gs) ->
        List.fold_left
          (fun acc g ->
            let* acc = acc in
            match g with
            | Arr names ->
              let* group =
                List.fold_left
                  (fun acc name ->
                    let* acc = acc in
                    match to_str name with
                    | Some s -> Ok (s :: acc)
                    | None -> Error "repack: non-string signal name")
                  (Ok []) names
              in
              Ok (List.rev group :: acc)
            | _ -> Error "repack: group is not an array")
          (Ok []) gs
        |> Result.map List.rev
      | _ -> Error "repack: missing \"groups\" array"
    in
    let* bits_per_signal = field "repack" "bits-per-signal" to_int j in
    let* bit_time = field "repack" "bit-time" to_int j in
    Ok (Space.Repack { bus; groups; bits_per_signal; bit_time })
  | Some other -> Error (Printf.sprintf "edit: unknown kind %S" other)

let edits_to_json edits = Arr (List.map edit_to_json edits)

let edits_of_json = function
  | Arr items ->
    let rec go i acc = function
      | [] -> Ok (List.rev acc)
      | j :: rest -> begin
        match edit_of_json j with
        | Ok e -> go (i + 1) (e :: acc) rest
        | Error msg -> Error (Printf.sprintf "edit %d: %s" i msg)
      end
    in
    go 0 [] items
  | _ -> Error "edits: expected a JSON array"

let print edits = Json.to_string (edits_to_json edits)

let parse text =
  match Json.of_string text with
  | Error e -> Error e
  | Ok j -> edits_of_json j
