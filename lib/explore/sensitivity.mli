(** Pool-parallel sensitivity searches.

    The serial [Cpa_system.Sensitivity] bisections evaluate one probe per
    round; these re-implementations evaluate [jobs] probes per round on
    the domain {!Pool} (multisection), shrinking the bracket by a factor
    of [jobs + 1] instead of [2] while returning the {e same} answer: for
    a monotone schedulability predicate the largest/smallest feasible
    value is unique, so the result is independent of [jobs] — asserted by
    the test suite against the serial implementation.

    Both searches take spec {e builders} rather than specs: probes run on
    worker domains, and each must construct its spec (and curves)
    domain-locally — passing a pre-built spec here would share curve memo
    tables across domains (see {!Pool} and [Event_model.Curve]). *)

val multisect_max :
  jobs:int ->
  label:string ->
  lo:int ->
  hi:int ->
  (int -> bool) ->
  Cpa_system.Sensitivity.verdict
(** The parallel counterpart of [Cpa_system.Sensitivity.search_max]:
    both endpoints are probed (in parallel) first, so degenerate
    searches return the same structured verdicts as the serial
    implementation ([No_margin], [Non_monotone], [Empty_interval])
    instead of looping or conflating them with a missing margin. *)

val max_cet_scale_verdict :
  ?jobs:int ->
  ?mode:Cpa_system.Engine.mode ->
  ?limit_percent:int ->
  build:(unit -> Cpa_system.Spec.t) ->
  task:string ->
  unit ->
  Cpa_system.Sensitivity.verdict

val min_source_period_verdict :
  ?jobs:int ->
  ?mode:Cpa_system.Engine.mode ->
  rebuild:(int -> Cpa_system.Spec.t) ->
  lo:int ->
  hi:int ->
  unit ->
  Cpa_system.Sensitivity.verdict

val max_cet_scale :
  ?jobs:int ->
  ?mode:Cpa_system.Engine.mode ->
  ?limit_percent:int ->
  build:(unit -> Cpa_system.Spec.t) ->
  task:string ->
  unit ->
  int option
(** Same contract as [Cpa_system.Sensitivity.max_cet_scale] on
    [build ()]: the largest percentage (up to [limit_percent], default
    [10_000]) keeping the system schedulable, [None] when it is not
    schedulable even at 100 %. *)

val min_source_period :
  ?jobs:int ->
  ?mode:Cpa_system.Engine.mode ->
  rebuild:(int -> Cpa_system.Spec.t) ->
  lo:int ->
  hi:int ->
  unit ->
  int option
(** Same contract as [Cpa_system.Sensitivity.min_source_period];
    [rebuild] must be safe to call from worker domains (build streams
    afresh, capture no mutable state). *)
