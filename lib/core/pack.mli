(** The pack hierarchical stream constructor Omega_pa (paper, Definition 8).

    Models a communication layer that packs signals from several input
    streams into frames.  Triggering inputs cause a frame transmission on
    every event; pending inputs are latched into a register and transported
    by whatever frame is sent next.  The outer stream (frame activations)
    is the OR-combination of the triggering inputs (eqs. 3-4 restricted to
    the triggering set T); the inner streams describe, per input, the
    distance between frames that transport a {e fresh} value of that
    input:

    - triggering input (eqs. 5-6): the frame distances equal the signal
      distances;
    - pending input (eqs. 7-8):
      [delta_min' n = max (delta_min n - delta_plus_out 2) (delta_min_out n)]
      and [delta_plus' n = inf] (a pending value may never be refreshed).

    A frame that is also sent periodically (periodic or mixed frame types)
    is modelled by adding its timer as an additional triggering input. *)

type input = {
  label : string;
  kind : Model.signal_kind;
  stream : Event_model.Stream.t;
}

val input :
  ?kind:Model.signal_kind -> string -> Event_model.Stream.t -> input
(** Convenience constructor; [kind] defaults to [Triggering]. *)

val pack : ?name:string -> input list -> Model.t
(** [pack inputs] builds the hierarchical event model of the packed frame
    stream.  [name] names the outer stream (default derived from input
    labels).

    @raise Invalid_argument if [inputs] is empty or contains no triggering
    input (a frame with only pending inputs is never transmitted). *)

(** {1 Degradation warnings}

    Eq. (7) subtracts the maximum frame gap [delta_plus_out 2] from a
    pending signal's distances.  When the outer stream has an unbounded
    2-distance (e.g. a sporadic triggering input), that subtraction is
    clamped and the pending inner stream silently degrades to the trivial
    outer bound — sound, but a precision cliff worth surfacing.  The
    verification layer installs a hook to report it ([--selfcheck]). *)

type warning = {
  frame : string;  (** name of the packed frame / outer stream *)
  signal : string;  (** label of the affected pending input *)
  reason : string;
}

val set_warn_hook : (warning -> unit) -> unit
(** Installs the process-wide degradation hook.  Install before spawning
    worker domains and keep the callback domain-safe; it runs inside
    [pack]. *)

val clear_warn_hook : unit -> unit
