(* Ψ_pa: spans are cheap relative to downstream use of the unpacked
   streams, but they mark *where* receivers pull inner models out of a
   hierarchy, which is the interesting propagation point in a trace. *)

let spanned ~label ~arity run =
  if Obs.Trace.enabled () then
    Obs.Trace.with_span "hem.unpack"
      ~attrs:
        [ "select", Obs.Event.Str label; "inners", Obs.Event.Int arity ]
      run
  else run ()

let unpack h =
  spanned ~label:"*" ~arity:(Model.arity h) (fun () ->
    List.map (fun (i : Model.inner) -> i.stream) (Model.inners h))

let unpack_nth h i =
  spanned ~label:(string_of_int i) ~arity:(Model.arity h) (fun () ->
    match List.nth_opt (Model.inners h) i with
    | Some inner -> inner.stream
    | None -> invalid_arg "Deconstruct.unpack_nth: index out of range")

let unpack_label h label =
  spanned ~label ~arity:(Model.arity h) (fun () ->
    (Model.find_inner h label).stream)
