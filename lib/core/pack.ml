module Time = Timebase.Time
module Stream = Event_model.Stream
module Combine = Event_model.Combine

type input = {
  label : string;
  kind : Model.signal_kind;
  stream : Stream.t;
}

let input ?(kind = Model.Triggering) label stream = { label; kind; stream }

type warning = {
  frame : string;
  signal : string;
  reason : string;
}

let warn_hook : (warning -> unit) option Atomic.t = Atomic.make None

let set_warn_hook f = Atomic.set warn_hook (Some f)

let clear_warn_hook () = Atomic.set warn_hook None

let warn ~frame ~signal reason =
  match Atomic.get warn_hook with
  | None -> ()
  | Some f -> f { frame; signal; reason }

(* Ω_pa proper: builds the hierarchical model once inputs are validated. *)
let build ~name ~inputs ~triggering =
  let outer = Combine.or_combine ~name triggering in
  (* eq. (7) uses the maximum distance between two frames. *)
  let frame_gap = Stream.delta_plus outer 2 in
  let inner_of_input i =
    match i.kind with
    | Model.Triggering ->
      (* eqs. (5)-(6): frames carrying this signal inherit its timing *)
      { Model.label = i.label; kind = i.kind; stream = i.stream }
    | Model.Pending ->
      if not (Time.is_finite frame_gap) then
        warn ~frame:name ~signal:i.label
          "outer delta_plus 2 is unbounded: eq. (7) degrades to the \
           trivial outer bound for this pending signal";
      let delta_min n =
        (* eq. (7): the first of n pending values may just miss a frame and
           wait a full frame gap; the frames themselves are spaced at least
           delta_min_out n apart. *)
        Time.max
          (Time.sub_clamped (Stream.delta_min i.stream n) frame_gap)
          (Stream.delta_min outer n)
      in
      let delta_plus _ = Time.Inf (* eq. (8) *) in
      let stream =
        Stream.make
          ~name:(Printf.sprintf "%s@%s" i.label name)
          ~delta_min ~delta_plus
      in
      { Model.label = i.label; kind = i.kind; stream }
  in
  Model.make ~outer ~inners:(List.map inner_of_input inputs) ~rule:Model.Packed

let pack ?name inputs =
  if inputs = [] then invalid_arg "Pack.pack: no inputs";
  let triggering =
    List.filter_map
      (fun i ->
        match i.kind with
        | Model.Triggering -> Some i.stream
        | Model.Pending -> None)
      inputs
  in
  if triggering = [] then
    invalid_arg "Pack.pack: a frame needs at least one triggering input";
  let name =
    match name with
    | Some n -> n
    | None ->
      Printf.sprintf "pack(%s)"
        (String.concat "," (List.map (fun i -> i.label) inputs))
  in
  let run () = build ~name ~inputs ~triggering in
  if Obs.Trace.enabled () then
    Obs.Trace.with_span "hem.pack"
      ~attrs:
        [
          "name", Obs.Event.Str name;
          "inputs", Obs.Event.Int (List.length inputs);
          "triggering", Obs.Event.Int (List.length triggering);
          "pending",
          Obs.Event.Int (List.length inputs - List.length triggering);
        ]
      run
  else run ()
