module Time = Timebase.Time
module Count = Timebase.Count
module Interval = Timebase.Interval
module Stream = Event_model.Stream
module Task_op = Event_model.Task_op

let simultaneity s =
  match Stream.eta_plus s 1 with
  | Count.Fin n -> n
  | Count.Inf ->
    invalid_arg "Inner_update.simultaneity: unbounded simultaneous arrivals"

let update_inner ~spread ~r_minus ~k stream label =
  let shift = spread + ((k - 1) * r_minus) in
  let delta_min n =
    Time.max
      (Time.sub_clamped (Stream.delta_min stream n) (Time.of_int shift))
      (Time.of_int ((n - 1) * r_minus))
  in
  let delta_plus n = Time.add (Stream.delta_plus stream n) (Time.of_int shift) in
  Stream.make ~name:(Printf.sprintf "upd(%s)" label) ~delta_min ~delta_plus

let apply_response ?simultaneity:k_override ~response h =
  match Model.rule h with
  | Model.Packed ->
    let r_minus = Interval.lo response in
    let spread = Interval.width response in
    let run () =
      let k =
        match k_override with
        | Some k when k < 1 ->
          invalid_arg "Inner_update.apply_response: simultaneity < 1"
        | Some k -> k
        | None -> simultaneity (Model.outer h)
      in
      let outer = Task_op.output ~response (Model.outer h) in
      let h' = Model.map_inner_streams
          (fun (i : Model.inner) ->
            update_inner ~spread ~r_minus ~k i.stream i.label)
          h
      in
      Model.make ~outer ~inners:(Model.inners h') ~rule:(Model.rule h)
    in
    if Obs.Trace.enabled () then
      Obs.Trace.with_span "hem.inner_update"
        ~attrs:
          [
            "inners", Obs.Event.Int (Model.arity h);
            "r_minus", Obs.Event.Int r_minus;
            "spread", Obs.Event.Int spread;
          ]
        run
    else run ()
