(** Deterministic fault injection for resilience tests.

    Instrumented code names {e sites} — stable strings such as
    ["engine.iteration:3"], ["explore.item:7"], ["explore.spawn:2"] or
    ["busy_window:T3"] — and calls {!fire} when passing them.  Tests
    {!arm} a fault at a chosen site; the registry is process-global and
    domain-safe, so a fault armed in the test domain fires in whichever
    worker domain reaches the site first.

    Zero-cost when unarmed: production call sites guard the site-string
    construction behind {!armed}, which is a single atomic read. *)

type fault =
  | Crash of string  (** raise [Failure msg] — a scripted worker crash *)
  | Trip of Error.t
      (** raise [Error.Error e] — e.g. a forced deadline/budget trip *)
  | Slow_us of int  (** sleep for the given number of microseconds *)
  | Act of (unit -> unit)
      (** run a scripted action at the site, e.g. cancel a guard token *)

val arm : ?after:int -> ?times:int -> site:string -> fault -> unit
(** [arm ~site f] schedules [f] at the [after]-th visit of [site]
    (default: the first), firing on [times] consecutive visits
    (default 1) and inert afterwards.  Multiple faults may be armed at
    distinct or identical sites; they fire independently. *)

val armed : unit -> bool
(** Whether any fault is currently armed.  One atomic read; call sites
    use it to skip site-string formatting on the production path. *)

val fire : string -> unit
(** [fire site] triggers matching armed faults.  No-op when nothing
    matches.  [Crash] and [Trip] faults raise; [Slow_us] and [Act]
    return after their effect. *)

val reset : unit -> unit
(** Disarms everything (tests call it between cases). *)
