type t =
  | Cancelled
  | Deadline_exceeded of { deadline_ms : float }
  | Budget_exhausted of { budget : int }
  | Diverged of { iterations : int }
  | Cycle of { element : string }
  | Invalid_spec of { reason : string }
  | Parse_failure of { reason : string }
  | Injected of { site : string }

exception Error of t

let is_interrupt = function
  | Cancelled | Deadline_exceeded _ | Budget_exhausted _ -> true
  | Diverged _ | Cycle _ | Invalid_spec _ | Parse_failure _ | Injected _ ->
    false

let to_string = function
  | Cancelled -> "cancelled"
  | Deadline_exceeded { deadline_ms } ->
    Printf.sprintf "deadline of %g ms exceeded" deadline_ms
  | Budget_exhausted { budget } ->
    Printf.sprintf "work budget of %d unit(s) exhausted" budget
  | Diverged { iterations } ->
    Printf.sprintf "no fixed point within %d iteration(s)" iterations
  | Cycle { element } ->
    Printf.sprintf "cyclic stream dependency involving %s" element
  | Invalid_spec { reason } -> Printf.sprintf "invalid spec: %s" reason
  | Parse_failure { reason } -> Printf.sprintf "parse failure: %s" reason
  | Injected { site } -> Printf.sprintf "injected fault at %s" site

let pp ppf e = Format.pp_print_string ppf (to_string e)

let exit_code = function
  | Cancelled -> 4
  | Deadline_exceeded _ | Budget_exhausted _ | Diverged _ -> 3
  | Cycle _ | Invalid_spec _ | Parse_failure _ | Injected _ -> 1

let () =
  Printexc.register_printer (function
    | Error e -> Some (Printf.sprintf "Guard.Error.Error(%s)" (to_string e))
    | _ -> None)
