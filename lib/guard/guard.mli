(** Cooperative cancellation, wall-clock deadlines and work budgets.

    A guard token is created once per long-running entry point
    ([Engine.analyse], an exploration sweep, a verification batch) and
    polled at cheap, frequent checkpoints: the engine checks it at every
    global iteration, and the scheduling analyses {!tick} the ambient
    token once per busy-window activation and fixpoint step — which is
    also the unit the budget is denominated in.

    Trips are {e sticky}: once a token reports an interrupt reason it
    reports the same reason forever, so every checkpoint of a tripped
    computation agrees on why it stopped.  The first trip emits an
    [Obs] instant event and bumps a [guard.trips.*] metric.

    The {e ambient} token is carried in domain-local storage so deep
    callees (curve evaluation loops, busy windows) need no extra
    parameter.  When nothing installed a token, {!ambient} returns
    {!none} and {!tick} is two loads and a branch — the same
    zero-cost-when-absent contract as the [?selfcheck] hook. *)

module Error = Error
module Inject = Inject

type t

val none : t
(** The inert token: never trips, costs a branch to check. *)

val create : ?deadline_ms:float -> ?budget:int -> unit -> t
(** A fresh token.  [deadline_ms] is relative to now; [budget] is in
    work units (busy-window activations + fixpoint steps).  Omitted
    limits never trip; the token remains cancellable. *)

val active : t -> bool
(** [false] only for {!none}. *)

val cancel : t -> unit
(** Triggers the token from any domain; idempotent. *)

val poll : t -> Error.t option
(** The sticky trip reason, checking cancellation, then budget, then
    deadline on first trip.  [None] while the token is clean. *)

val check : t -> unit
(** Raises [Error.Error r] if {!poll} reports [r]. *)

val spend : t -> int -> unit
(** Consumes work units from the budget, then {!check}s. *)

val deadline_ms : t -> float option
val budget : t -> int option

val consumed : t -> int
(** Work units spent against the budget so far; [0] when no budget was
    set. *)

val slack_ms : t -> float option
(** Time remaining before the deadline (negative once past it); [None]
    when no deadline was set. *)

val observe_completion : t -> unit
(** Records this token's end-of-run distributions — remaining deadline
    slack into the [guard.deadline_slack_us] histogram (clamped at 0)
    and budget consumption into [guard.budget_consumed] — when
    histograms are enabled.  Call once, where the guarded computation
    finishes; inert tokens and unset limits record nothing.  Must be
    called from one domain at a time (histogram cells are
    unsynchronised). *)

(** {1 Ambient token} *)

val ambient : unit -> t
(** The calling domain's installed token, or {!none}. *)

val with_ambient : t -> (unit -> 'a) -> 'a
(** Installs a token for the extent of the callback (exception-safe,
    restores the previous token). *)

val tick : ?cost:int -> unit -> unit
(** [spend (ambient ()) cost] — the checkpoint instrumented code drops
    into hot loops.  No-op when no token is installed. *)
