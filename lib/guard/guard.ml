module Error = Error
module Inject = Inject

type t = {
  is_active : bool;
  cancelled : bool Atomic.t;
  rel_deadline_ms : float;  (* as requested, for reporting; infinity = none *)
  deadline_us : float;  (* absolute wall-clock trip point *)
  budget_limit : int;  (* as requested; max_int = none *)
  budget_left : int Atomic.t;
  tripped : Error.t option Atomic.t;  (* sticky first trip *)
}

let none =
  {
    is_active = false;
    cancelled = Atomic.make false;
    rel_deadline_ms = infinity;
    deadline_us = infinity;
    budget_limit = max_int;
    budget_left = Atomic.make max_int;
    tripped = Atomic.make None;
  }

let now_us () = Unix.gettimeofday () *. 1e6

let create ?deadline_ms ?budget () =
  let rel_deadline_ms = Option.value deadline_ms ~default:infinity in
  let budget_limit = Option.value budget ~default:max_int in
  {
    is_active = true;
    cancelled = Atomic.make false;
    rel_deadline_ms;
    deadline_us =
      (if rel_deadline_ms = infinity then infinity
       else now_us () +. (rel_deadline_ms *. 1e3));
    budget_limit;
    budget_left = Atomic.make budget_limit;
    tripped = Atomic.make None;
  }

let active g = g.is_active
let cancel g = Atomic.set g.cancelled true

let deadline_ms g =
  if g.rel_deadline_ms = infinity then None else Some g.rel_deadline_ms

let budget g = if g.budget_limit = max_int then None else Some g.budget_limit

let c_cancelled = Obs.Metrics.counter "guard.trips.cancelled"
let c_deadline = Obs.Metrics.counter "guard.trips.deadline"
let c_budget = Obs.Metrics.counter "guard.trips.budget"

let record_trip g reason =
  (* The first trip wins and is the only one reported through obs, so
     a token polled from several domains tells one coherent story. *)
  if Atomic.compare_and_set g.tripped None (Some reason) then begin
    (match reason with
    | Error.Cancelled -> Obs.Metrics.incr c_cancelled
    | Error.Deadline_exceeded _ -> Obs.Metrics.incr c_deadline
    | Error.Budget_exhausted _ -> Obs.Metrics.incr c_budget
    | _ -> ());
    if Obs.Trace.enabled () then
      Obs.Trace.instant "guard.trip"
        ~attrs:[ ("reason", Obs.Event.Str (Error.to_string reason)) ]
  end;
  match Atomic.get g.tripped with Some r -> r | None -> reason

let poll g =
  if not g.is_active then None
  else
    match Atomic.get g.tripped with
    | Some _ as r -> r
    | None ->
      if Atomic.get g.cancelled then Some (record_trip g Error.Cancelled)
      else if Atomic.get g.budget_left <= 0 then
        Some (record_trip g (Error.Budget_exhausted { budget = g.budget_limit }))
      else if now_us () > g.deadline_us then
        Some
          (record_trip g
             (Error.Deadline_exceeded { deadline_ms = g.rel_deadline_ms }))
      else None

let check g =
  match poll g with None -> () | Some r -> raise (Error.Error r)

let spend g cost =
  if g.is_active then begin
    if g.budget_limit <> max_int then
      ignore (Atomic.fetch_and_add g.budget_left (-cost));
    check g
  end

let consumed g =
  if g.budget_limit = max_int then 0
  else Stdlib.max 0 (g.budget_limit - Atomic.get g.budget_left)

let slack_ms g =
  if g.deadline_us = infinity then None
  else Some ((g.deadline_us -. now_us ()) /. 1e3)

let h_slack = Obs.Hist.hist "guard.deadline_slack_us"
let h_consumed = Obs.Hist.hist "guard.budget_consumed"

let observe_completion g =
  if g.is_active && Obs.Hist.enabled () then begin
    if g.deadline_us <> infinity then begin
      let slack_us = g.deadline_us -. now_us () in
      Obs.Hist.record h_slack
        (int_of_float (if slack_us < 0.0 then 0.0 else slack_us))
    end;
    if g.budget_limit <> max_int then Obs.Hist.record h_consumed (consumed g)
  end

let key = Domain.DLS.new_key (fun () -> none)
let ambient () = Domain.DLS.get key

let with_ambient g f =
  let prev = Domain.DLS.get key in
  Domain.DLS.set key g;
  Fun.protect ~finally:(fun () -> Domain.DLS.set key prev) f

let tick ?(cost = 1) () =
  let g = Domain.DLS.get key in
  if g.is_active then spend g cost
