type fault =
  | Crash of string
  | Trip of Error.t
  | Slow_us of int
  | Act of (unit -> unit)

type entry = {
  site : string;
  fault : fault;
  mutable skips : int;  (* visits to ignore before firing *)
  mutable fires : int;  (* remaining firing visits *)
}

(* [armed_count] is the hot-path gate: it counts armed entries that can
   still fire, and call sites read it (through {!armed}) before building
   a site string.  The entry list itself is mutated under [lock] only. *)
let armed_count = Atomic.make 0
let lock = Mutex.create ()
let entries : entry list ref = ref []

let armed () = Atomic.get armed_count > 0

let arm ?(after = 1) ?(times = 1) ~site fault =
  if after < 1 then invalid_arg "Inject.arm: after < 1";
  if times < 1 then invalid_arg "Inject.arm: times < 1";
  Mutex.lock lock;
  entries := { site; fault; skips = after - 1; fires = times } :: !entries;
  Mutex.unlock lock;
  Atomic.incr armed_count

let reset () =
  Mutex.lock lock;
  entries := [];
  Mutex.unlock lock;
  Atomic.set armed_count 0

let c_fired = Obs.Metrics.counter "guard.injected_faults"

let claim site =
  (* Pull at most one firing fault per visit, oldest armed first, so a
     test arming two faults at one site sees them in order. *)
  Mutex.lock lock;
  let fired = ref None in
  List.iter
    (fun e ->
      if !fired = None && String.equal e.site site && e.fires > 0 then
        if e.skips > 0 then e.skips <- e.skips - 1
        else begin
          e.fires <- e.fires - 1;
          if e.fires = 0 then Atomic.decr armed_count;
          fired := Some e.fault
        end)
    (List.rev !entries);
  Mutex.unlock lock;
  !fired

let fire site =
  if armed () then
    match claim site with
    | None -> ()
    | Some fault -> (
      Obs.Metrics.incr c_fired;
      if Obs.Trace.enabled () then
        Obs.Trace.instant "guard.inject"
          ~attrs:[ ("site", Obs.Event.Str site) ];
      match fault with
      | Crash msg -> failwith msg
      | Trip e -> raise (Error.Error e)
      | Slow_us us -> Unix.sleepf (float_of_int us /. 1e6)
      | Act f -> f ())
